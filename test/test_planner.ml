(* Integration tests for the full planner: the paper's Tiny and Small
   instances, all five level scenarios, failure modes, plan validity. *)

module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Replay = Sekitei_core.Replay
module Compile = Sekitei_core.Compile
module Problem = Sekitei_core.Problem
module Postprocess = Sekitei_core.Postprocess
module Media = Sekitei_domains.Media
module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Scenarios = Sekitei_harness.Scenarios
module G = Sekitei_network.Generators
module T = Sekitei_network.Topology

let solve (sc : Scenarios.t) level =
  let leveling = Media.leveling level sc.Scenarios.app in
  ( Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling),
    Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling )

let expect_plan what (report : Planner.report) =
  match report.Planner.result with
  | Ok p -> p
  | Error r -> Alcotest.failf "%s: no plan (%a)" what Planner.pp_failure r

let expect_failure what (report : Planner.report) =
  match report.Planner.result with
  | Ok _ -> Alcotest.failf "%s: unexpected plan" what
  | Error r -> r

(* ---------------- Tiny (paper Figures 3-4) ---------------- *)

let test_tiny_greedy_fails () =
  let o, _ = solve (Scenarios.tiny ()) Media.A in
  match expect_failure "tiny A" o with
  | Planner.Resource_exhausted -> ()
  | r -> Alcotest.failf "wrong reason: %a" Planner.pp_failure r

let test_tiny_b_plan () =
  let o, _ = solve (Scenarios.tiny ()) Media.B in
  let p = expect_plan "tiny B" o in
  Alcotest.(check int) "7 actions" 7 (Plan.length p);
  (* With [0,100) infima at 0, the bound is the action count. *)
  Alcotest.(check (float 1e-9)) "bound = length" 7. p.Plan.cost_lb

let test_tiny_cde_optimal () =
  let sc = Scenarios.tiny () in
  let bounds =
    List.map
      (fun level ->
        let o, _ = solve sc level in
        (expect_plan "tiny" o).Plan.cost_lb)
      [ Media.C; Media.D; Media.E ]
  in
  List.iter
    (fun b -> Alcotest.(check (float 1e-9)) "same optimal bound" 52.45 b)
    bounds

let test_tiny_plan_contents () =
  let o, pb = solve (Scenarios.tiny ()) Media.C in
  let p = expect_plan "tiny C" o in
  let placements = Plan.placements pb p in
  List.iter
    (fun comp ->
      Alcotest.(check bool) (comp ^ " placed") true
        (List.mem_assoc comp placements))
    [ "Splitter"; "Zip"; "Unzip"; "Merger"; "Client" ];
  Alcotest.(check (option int)) "splitter at server" (Some 0)
    (List.assoc_opt "Splitter" placements);
  Alcotest.(check (option int)) "merger at client" (Some 1)
    (List.assoc_opt "Merger" placements);
  (* The M stream itself never crosses the 70-unit link. *)
  List.iter
    (fun (iface, _, _) ->
      Alcotest.(check bool) "only Z and I cross" true
        (List.mem iface [ "Z"; "I" ]))
    (Plan.crossings pb p)

let test_tiny_delivers_demand () =
  let o, pb = solve (Scenarios.tiny ()) Media.C in
  let p = expect_plan "tiny C" o in
  let m = Problem.iface_index pb "M" in
  let delivered =
    List.find_map
      (fun (i, n, v) -> if i = m && n = 1 then Some v else None)
      p.Plan.metrics.Replay.delivered
  in
  Alcotest.(check bool) "at least demand" true (Option.get delivered >= 90.)

(* ---------------- Small (paper Figure 9) ---------------- *)

let test_small_b_shortest () =
  let o, _ = solve (Scenarios.small ()) Media.B in
  let p = expect_plan "small B" o in
  Alcotest.(check int) "10 actions" 10 (Plan.length p);
  Alcotest.(check (float 1e-6)) "LAN peak 100" 100. p.Plan.metrics.Replay.lan_peak

let test_small_c_optimal () =
  let o, _ = solve (Scenarios.small ()) Media.C in
  let p = expect_plan "small C" o in
  Alcotest.(check int) "13 actions" 13 (Plan.length p);
  Alcotest.(check (float 1e-6)) "LAN peak 65" 65. p.Plan.metrics.Replay.lan_peak;
  Alcotest.(check (float 1e-9)) "bound" 76. p.Plan.cost_lb

let test_small_optimal_cheaper_than_shortest () =
  (* Under the C cost bounds, the 13-action plan must beat the 10-action
     plan's bound-evaluated cost; the planner's choice proves it. *)
  let o_b, _ = solve (Scenarios.small ()) Media.B in
  let o_c, _ = solve (Scenarios.small ()) Media.C in
  let pb' = expect_plan "B" o_b and pc = expect_plan "C" o_c in
  Alcotest.(check bool) "C realized <= B realized" true
    (pc.Plan.metrics.Replay.realized_cost
    <= pb'.Plan.metrics.Replay.realized_cost)

let test_small_greedy_fails () =
  let sc = Scenarios.small () in
  let o = Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app) in
  match expect_failure "small greedy" o with
  | Planner.Resource_exhausted -> ()
  | r -> Alcotest.failf "wrong reason: %a" Planner.pp_failure r

let test_small_d_e_match_c () =
  let sc = Scenarios.small () in
  List.iter
    (fun level ->
      let o, _ = solve sc level in
      let p = expect_plan "small" o in
      Alcotest.(check int) "13 actions" 13 (Plan.length p);
      Alcotest.(check (float 1e-9)) "bound 76" 76. p.Plan.cost_lb)
    [ Media.D; Media.E ]

(* ---------------- soundness: every plan validates ---------------- *)

let test_plans_replay_from_init () =
  List.iter
    (fun (sc, level) ->
      let o, pb = solve sc level in
      match o.Planner.result with
      | Error _ -> ()
      | Ok p -> (
          match Replay.run pb ~mode:Replay.From_init p.Plan.steps with
          | Ok m ->
              (* metrics must agree with the plan's own record *)
              Alcotest.(check (float 1e-6)) "stable lan peak"
                p.Plan.metrics.Replay.lan_peak m.Replay.lan_peak
          | Error f ->
              Alcotest.failf "%s/%s invalid plan: %s" sc.Scenarios.name
                (Media.scenario_name level) f.Replay.reason))
    (List.concat_map
       (fun sc -> List.map (fun l -> (sc, l)) Media.all_scenarios)
       [ Scenarios.tiny (); Scenarios.small () ])

let test_cost_lb_below_realized () =
  List.iter
    (fun level ->
      let o, _ = solve (Scenarios.small ()) level in
      match o.Planner.result with
      | Error _ -> ()
      | Ok p ->
          Alcotest.(check bool) "bound <= realized" true
            (p.Plan.cost_lb <= p.Plan.metrics.Replay.realized_cost +. 1e-9))
    Media.all_scenarios

(* ---------------- optimality vs exhaustive baseline ---------------- *)

let test_optimality_exhaustive_micro () =
  (* On a micro-instance small enough for exhaustive enumeration, the A*
     answer must be the true optimum.  Three nodes in a line, one stream S
     (supply 20, demand >= 10), a useless Booster component tempting the
     search; all plans up to length 4 over all leveled actions are
     enumerated and replayed. *)
  let module E = Sekitei_expr.Expr in
  let topo = G.line 3 in
  let app =
    {
      Model.interfaces =
        [ Model.iface ~properties:[ Model.property "ibw" ] "S" ];
      components =
        [
          Model.component ~provides:[ "S" ]
            ~effects:[ ("S", "ibw", E.Const 20.) ]
            ~placeable:false "Src";
          Model.component ~requires:[ "S" ]
            ~conditions:[ E.parse_cond "S.ibw >= 10" ]
            ~place_cost:(E.parse "1 + S.ibw / 10") "Snk";
          Model.component ~requires:[ "S" ] ~provides:[ "S" ]
            ~effects:[ ("S", "ibw", E.parse "S.ibw") ]
            ~consumes:[ ("cpu", E.parse "S.ibw / 10") ]
            ~place_cost:(E.parse "2 + S.ibw / 10") "Booster";
        ];
      pre_placed = [ ("Src", 0) ];
      goals = [ Model.Placed ("Snk", 2) ];
    }
  in
  let leveling =
    Leveling.with_iface Leveling.empty "S" "ibw" [ 10.; 15.; 20. ]
  in
  let pb = Compile.compile topo app leveling in
  let o = Planner.plan (Planner.request topo app ~leveling) in
  let best =
    match o.Planner.result with
    | Ok p -> p
    | Error r -> Alcotest.failf "micro: no plan (%a)" Planner.pp_failure r
  in
  (* Exhaustive enumeration: all action sequences up to length 4. *)
  let goal = pb.Problem.goal_props.(0) in
  let cheapest = ref Float.infinity in
  let rec dfs tail_rev cost depth =
    (if
       List.exists
         (fun (a : Sekitei_core.Action.t) ->
           Array.exists (fun p -> p = goal) a.Sekitei_core.Action.add_closure)
         tail_rev
       && Result.is_ok (Replay.run pb ~mode:Replay.From_init (List.rev tail_rev))
     then if cost < !cheapest then cheapest := cost);
    if depth < 4 then
      Array.iter
        (fun (a : Sekitei_core.Action.t) ->
          dfs (a :: tail_rev) (cost +. a.Sekitei_core.Action.cost_lb) (depth + 1))
        pb.Problem.actions
  in
  dfs [] 0. 0;
  Alcotest.(check (float 1e-9)) "A* matches exhaustive optimum" !cheapest
    best.Plan.cost_lb

(* ---------------- failure injection ---------------- *)

let test_unreachable_goal () =
  let app = Media.app ~server:0 ~client:1 () in
  let topo = T.make ~nodes:[ T.node 0 "n0"; T.node 1 "n1" ] ~links:[] in
  let o = Planner.plan (Planner.request topo app ~leveling:(Media.leveling Media.C app)) in
  match expect_failure "partitioned" o with
  | Planner.Unreachable_goal _ -> ()
  | r -> Alcotest.failf "wrong reason: %a" Planner.pp_failure r

let test_invalid_spec_reported () =
  let app = Media.app ~server:0 ~client:1 () in
  let bad = { app with Model.goals = [] } in
  let o = Planner.plan (Planner.request (G.line_kinds [ T.Wan ]) bad) in
  match expect_failure "invalid" o with
  | Planner.Invalid_spec _ -> ()
  | r -> Alcotest.failf "wrong reason: %a" Planner.pp_failure r

let test_search_budget () =
  let sc = Scenarios.small () in
  let config =
    { Planner.default_config with Planner.rg_max_expansions = 1 }
  in
  let o =
    Planner.plan
      (Planner.request ~config sc.Scenarios.topo sc.Scenarios.app
         ~leveling:(Media.leveling Media.C sc.Scenarios.app))
  in
  match expect_failure "budget" o with
  | Planner.Search_limit _ -> ()
  | r -> Alcotest.failf "wrong reason: %a" Planner.pp_failure r

let test_insufficient_cpu_everywhere () =
  (* CPU 1 on every node: only the direct (impossible) route exists. *)
  let topo =
    T.make
      ~nodes:[ T.node ~cpu:1. 0 "n0"; T.node ~cpu:1. 1 "n1" ]
      ~links:[ T.link T.Wan 0 0 1 ]
  in
  let app = Media.app ~server:0 ~client:1 () in
  let o = Planner.plan (Planner.request topo app ~leveling:(Media.leveling Media.D app)) in
  (* Compile-time pruning of CPU-infeasible placements can make the goal
     logically unreachable; either failure reason is correct. *)
  match expect_failure "no cpu" o with
  | Planner.Resource_exhausted | Planner.Unreachable_goal _ -> ()
  | r -> Alcotest.failf "wrong reason: %a" Planner.pp_failure r

let test_direct_when_wide_enough () =
  (* A 150-unit link admits the direct 2-action plan; the planner must
     prefer it over any splitting contraption. *)
  let topo = G.line_kinds [ T.Lan ] in
  let app = Media.app ~server:0 ~client:1 () in
  let o = Planner.plan (Planner.request topo app ~leveling:(Media.leveling Media.C app)) in
  let p = expect_plan "direct" o in
  Alcotest.(check int) "cross + client" 2 (Plan.length p)

let test_stats_populated () =
  let o, _ = solve (Scenarios.tiny ()) Media.C in
  let s = o.Planner.stats in
  Alcotest.(check bool) "actions" true (s.Planner.total_actions > 0);
  Alcotest.(check bool) "plrg" true (s.Planner.plrg_props > 0);
  Alcotest.(check bool) "rg" true (s.Planner.rg_created > 0);
  Alcotest.(check bool) "time" true (s.Planner.t_total_ms >= 0.)

(* ---------------- batch executor ---------------- *)

let batch_requests () =
  List.concat_map
    (fun level ->
      List.map
        (fun (sc : Scenarios.t) ->
          let leveling = Media.leveling level sc.Scenarios.app in
          Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling)
        [ Scenarios.tiny (); Scenarios.small () ])
    [ Media.B; Media.C ]

let test_plan_batch_matches_sequential () =
  (* Parallel batch planning must be observationally identical to mapping
     [plan] sequentially: same plans, same costs, same search stats, in
     input order. *)
  let seq = List.map Planner.plan (batch_requests ()) in
  List.iter
    (fun jobs ->
      let par = Planner.plan_batch ~jobs (batch_requests ()) in
      Alcotest.(check int)
        "one report per request" (List.length seq) (List.length par);
      List.iter2
        (fun (a : Planner.report) (b : Planner.report) ->
          (match (a.Planner.result, b.Planner.result) with
          | Ok p1, Ok p2 ->
              Alcotest.(check (list string))
                "same plan" (Plan.labels p1) (Plan.labels p2);
              Alcotest.(check (float 1e-9))
                "same cost" p1.Plan.cost_lb p2.Plan.cost_lb
          | Error r1, Error r2 ->
              Alcotest.(check bool) "same failure" true (r1 = r2)
          | _ -> Alcotest.fail "sequential and batch outcomes diverge");
          Alcotest.(check int) "same rg_created" a.Planner.stats.Planner.rg_created
            b.Planner.stats.Planner.rg_created;
          Alcotest.(check int) "same rg_expanded"
            a.Planner.stats.Planner.rg_expanded
            b.Planner.stats.Planner.rg_expanded)
        seq par)
    [ 1; 2; 4 ]

let test_plan_batch_empty () =
  Alcotest.(check int) "empty batch" 0 (List.length (Planner.plan_batch []))

(* ---------------- postprocess ---------------- *)

let test_postprocess_minimizes () =
  let topo = G.line_kinds [ T.Lan ] in
  let app = Media.app ~server:0 ~client:1 () in
  let o = Planner.plan (Planner.request topo app) in
  let pb = Compile.compile topo app Leveling.empty in
  let p = expect_plan "greedy rich" o in
  match Postprocess.minimize pb p with
  | Some r ->
      (* demand 90 out of 200 supply: minimal scale near 0.45 *)
      Alcotest.(check bool) "scale below 0.5" true (r.Postprocess.scale < 0.5);
      Alcotest.(check bool) "scale above 0.4" true (r.Postprocess.scale > 0.4)
  | None -> Alcotest.fail "postprocess found nothing"

let test_postprocess_rejects_invalid () =
  (* A plan that does not replay yields None. *)
  let o, pb = solve (Scenarios.tiny ()) Media.C in
  let p = expect_plan "tiny" o in
  let broken = { p with Plan.steps = List.tl p.Plan.steps } in
  Alcotest.(check bool) "None on broken plan" true
    (Postprocess.minimize pb broken = None)

let suite =
  [
    ("tiny: greedy fails (scenario 1)", `Quick, test_tiny_greedy_fails);
    ("tiny: B finds 7-action plan", `Quick, test_tiny_b_plan);
    ("tiny: C/D/E optimal bound", `Quick, test_tiny_cde_optimal);
    ("tiny: plan contents", `Quick, test_tiny_plan_contents);
    ("tiny: delivers demand", `Quick, test_tiny_delivers_demand);
    ("small: B shortest 10 actions", `Quick, test_small_b_shortest);
    ("small: C optimal 13 actions", `Quick, test_small_c_optimal);
    ("small: optimal cheaper", `Quick, test_small_optimal_cheaper_than_shortest);
    ("small: greedy fails", `Quick, test_small_greedy_fails);
    ("small: D/E match C", `Quick, test_small_d_e_match_c);
    ("plans replay from init", `Quick, test_plans_replay_from_init);
    ("cost bound below realized", `Quick, test_cost_lb_below_realized);
    ("optimality vs exhaustive (micro)", `Slow, test_optimality_exhaustive_micro);
    ("unreachable goal", `Quick, test_unreachable_goal);
    ("invalid spec reported", `Quick, test_invalid_spec_reported);
    ("search budget", `Quick, test_search_budget);
    ("insufficient cpu everywhere", `Quick, test_insufficient_cpu_everywhere);
    ("direct plan when wide enough", `Quick, test_direct_when_wide_enough);
    ("stats populated", `Quick, test_stats_populated);
    ("plan_batch matches sequential", `Quick, test_plan_batch_matches_sequential);
    ("plan_batch empty", `Quick, test_plan_batch_empty);
    ("postprocess minimizes", `Quick, test_postprocess_minimizes);
    ("postprocess rejects invalid", `Quick, test_postprocess_rejects_invalid);
  ]
