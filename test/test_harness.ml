(* Tests for the evaluation harness: scenario construction, Table 1/2
   generation, figure text. *)

module Scenarios = Sekitei_harness.Scenarios
module Table2 = Sekitei_harness.Table2
module Figures = Sekitei_harness.Figures
module Media = Sekitei_domains.Media
module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Replay = Sekitei_core.Replay
module T = Sekitei_network.Topology
module R = Sekitei_network.Routing

let contains hay needle =
  Sekitei_spec.Str_split.split_once hay needle <> None

(* ---------------- scenarios ---------------- *)

let test_tiny_shape () =
  let sc = Scenarios.tiny () in
  Alcotest.(check int) "2 nodes" 2 (T.node_count sc.Scenarios.topo);
  Alcotest.(check (float 0.)) "70-unit link" 70.
    (T.link_resource sc.Scenarios.topo 0 "lbw")

let test_small_shape () =
  let sc = Scenarios.small () in
  Alcotest.(check int) "6 nodes" 6 (T.node_count sc.Scenarios.topo);
  Alcotest.(check (option int)) "4-link path" (Some 4)
    (R.hop_distance sc.Scenarios.topo sc.Scenarios.server sc.Scenarios.client);
  (* exactly one WAN link on the path *)
  match R.shortest_path sc.Scenarios.topo sc.Scenarios.server sc.Scenarios.client with
  | Some p ->
      let wan =
        List.filter
          (fun lid -> (T.get_link sc.Scenarios.topo lid).T.kind = T.Wan)
          p.R.path_links
      in
      Alcotest.(check int) "one WAN hop" 1 (List.length wan)
  | None -> Alcotest.fail "no path"

let test_large_shape () =
  let sc = Scenarios.large () in
  Alcotest.(check int) "93 nodes" 93 (T.node_count sc.Scenarios.topo);
  Alcotest.(check bool) "connected" true (T.is_connected sc.Scenarios.topo);
  Alcotest.(check (option int)) "LAN-WAN-WAN-LAN path" (Some 4)
    (R.hop_distance sc.Scenarios.topo sc.Scenarios.server sc.Scenarios.client);
  match R.shortest_path sc.Scenarios.topo sc.Scenarios.server sc.Scenarios.client with
  | Some p ->
      let kinds =
        List.map (fun lid -> (T.get_link sc.Scenarios.topo lid).T.kind) p.R.path_links
      in
      Alcotest.(check bool) "LAN,WAN,WAN,LAN" true
        (kinds = [ T.Lan; T.Wan; T.Wan; T.Lan ])
  | None -> Alcotest.fail "no path"

let test_large_deterministic () =
  let a = Scenarios.large () and b = Scenarios.large () in
  Alcotest.(check int) "same server" a.Scenarios.server b.Scenarios.server;
  Alcotest.(check int) "same client" a.Scenarios.client b.Scenarios.client;
  Alcotest.(check int) "same links"
    (T.link_count a.Scenarios.topo) (T.link_count b.Scenarios.topo)

let test_with_weights () =
  let sc = Scenarios.with_weights ~cross_weight:2. ~place_weight:0.5 (Scenarios.tiny ()) in
  (* heavier crossings roughly double the plan bound's crossing part *)
  let o =
    Planner.plan
      (Planner.request sc.Scenarios.topo sc.Scenarios.app
         ~leveling:(Media.leveling Media.C sc.Scenarios.app))
  in
  match o.Planner.result with
  | Ok p -> Alcotest.(check bool) "bound changed" true (p.Plan.cost_lb <> 52.45)
  | Error _ -> Alcotest.fail "should still plan"

(* ---------------- table 2 ---------------- *)

let test_table2_cell_tiny () =
  let row = Table2.run_cell (Scenarios.tiny ()) Media.C in
  (match row.Table2.plan with
  | Some p -> Alcotest.(check int) "7 actions" 7 (Plan.length p)
  | None -> Alcotest.fail "expected plan");
  Alcotest.(check string) "network name" "Tiny" row.Table2.network

let test_table2_run_and_render () =
  let rows =
    Table2.run
      ~networks:[ Scenarios.tiny () ]
      ~levels:[ Media.A; Media.B; Media.C ]
      ()
  in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  let rendered = Table2.render rows in
  Alcotest.(check bool) "mentions Tiny" true (contains rendered "Tiny");
  Alcotest.(check bool) "A shows no plan" true (contains rendered "no plan");
  Alcotest.(check bool) "has headers" true (contains rendered "reserved LAN bw")

let test_row_summary () =
  let row = Table2.run_cell (Scenarios.tiny ()) Media.A in
  Alcotest.(check bool) "summary mentions no plan" true
    (contains (Table2.row_summary row) "no plan")

(* ---------------- figures ---------------- *)

let test_table1_text () =
  let t = Figures.table1 () in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains t needle))
    [ "[0,inf)"; "[90,100)"; "[31,62)"; "Table 1" ]

let test_fig3_4_text () =
  let t = Figures.fig3_4 () in
  Alcotest.(check bool) "greedy fails" true (contains t "NO PLAN");
  Alcotest.(check bool) "7-action plan" true (contains t "7 actions");
  Alcotest.(check bool) "paper wording" true (contains t "place Splitter on n0")

let test_fig5_text () =
  let t = Figures.fig5 ~weights:[ 0.5; 2.0 ] () in
  Alcotest.(check bool) "direct route appears" true (contains t "3 links direct");
  Alcotest.(check bool) "zip route appears" true (contains t "Zip/Unzip")

let test_fig9_text () =
  let t = Figures.fig9 () in
  Alcotest.(check bool) "10 actions" true (contains t "10 actions");
  Alcotest.(check bool) "13 actions" true (contains t "13 actions")

let test_fig10_text () =
  let t = Figures.fig10 () in
  Alcotest.(check bool) "93 nodes" true (contains t "nodes: 93");
  let dot = Figures.fig10 ~dot:true () in
  Alcotest.(check bool) "dot graph" true (contains dot "graph topology")

let test_ablation_text () =
  let t = Figures.postprocess_ablation () in
  Alcotest.(check bool) "throttles" true (contains t "post-processing throttles");
  Alcotest.(check bool) "levels required" true (contains t "resource levels are required")

(* ---------------- csv export ---------------- *)

let test_csv_export () =
  let rows =
    Table2.run ~networks:[ Scenarios.tiny () ] ~levels:[ Media.A; Media.C ] ()
  in
  let csv = Sekitei_harness.Csv_export.table2_csv rows in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check bool) "header first" true
    (contains (List.hd lines) "network,levels,found");
  Alcotest.(check bool) "A row marks no plan" true
    (List.exists (fun l -> contains l "Tiny,A,0") lines);
  Alcotest.(check bool) "C row found with 7 actions" true
    (List.exists (fun l -> contains l "Tiny,C,1,52.45,7") lines);
  (* every data line has the header's arity *)
  let arity l = List.length (String.split_on_char ',' l) in
  List.iter
    (fun l -> Alcotest.(check int) "arity" (arity (List.hd lines)) (arity l))
    lines

(* ---------------- bench baseline gate ---------------- *)

module Bench_json = Sekitei_harness.Bench_json

let bench_record ?(scenario = "Tiny-C") ?(search_ms = 10.) ?(rg_created = 100)
    ?(slrg_ms = 5.) () =
  {
    Bench_json.scenario;
    actions = 48;
    rg_created;
    rg_expanded = 15;
    rg_duplicates = 2;
    slrg_cache_hits = 14;
    slrg_suffix_harvested = 15;
    slrg_bound_promoted = 8;
    slrg_deferred = 90;
    slrg_saved = 70;
    search_ms;
    search_ms_p50 = search_ms;
    search_ms_p90 = search_ms;
    search_ms_p99 = search_ms;
    warm_search_ms = 4.;
    compile_ms = 0.1;
    plrg_ms = 0.02;
    slrg_ms;
    rg_ms = 9.;
    minor_words = 120_000.;
    major_collections = 1;
    jobs = 1;
    wall_ms_batch = 11.;
  }

let test_baseline_diff () =
  let base = bench_record () in
  let baseline = Bench_json.to_json [ base ] in
  (* Unchanged run: every delta is 0, nothing regresses. *)
  (match Bench_json.diff_baseline ~baseline [ base ] with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok deltas ->
      Alcotest.(check int) "one delta per gated metric"
        (List.length Bench_json.gated_metrics)
        (List.length deltas);
      List.iter
        (fun d -> Alcotest.(check (float 1e-9)) "no change" 0. d.Bench_json.d_pct)
        deltas;
      Alcotest.(check int) "no regressions" 0
        (List.length (Bench_json.regressions ~max_regress:50. deltas)));
  (* Inflated current run: search_ms doubled trips the gate, the exact
     rg_created and the improved slrg_ms do not. *)
  let slow = bench_record ~search_ms:20. ~slrg_ms:2. () in
  match Bench_json.diff_baseline ~baseline [ slow ] with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok deltas -> (
      match Bench_json.regressions ~max_regress:50. deltas with
      | [ d ] ->
          Alcotest.(check string) "search_ms trips" "search_ms"
            d.Bench_json.d_metric;
          Alcotest.(check (float 1e-6)) "+100%" 100. d.Bench_json.d_pct
      | ds -> Alcotest.failf "expected 1 regression, got %d" (List.length ds))

let test_baseline_diff_errors () =
  let r = bench_record () in
  (match Bench_json.diff_baseline ~baseline:"not json" [ r ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed baseline accepted");
  (match Bench_json.diff_baseline ~baseline:"{}" [ r ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-array baseline accepted");
  let other = Bench_json.to_json [ bench_record ~scenario:"Small-C" () ] in
  match Bench_json.diff_baseline ~baseline:other [ r ] with
  | Error e ->
      Alcotest.(check bool) "names the missing scenario" true
        (contains e "Tiny-C")
  | Ok _ -> Alcotest.fail "missing scenario accepted"

let suite =
  [
    ("tiny shape", `Quick, test_tiny_shape);
    ("small shape", `Quick, test_small_shape);
    ("large shape", `Quick, test_large_shape);
    ("large deterministic", `Quick, test_large_deterministic);
    ("with weights", `Quick, test_with_weights);
    ("table2 cell", `Quick, test_table2_cell_tiny);
    ("table2 run/render", `Quick, test_table2_run_and_render);
    ("row summary", `Quick, test_row_summary);
    ("table1 text", `Quick, test_table1_text);
    ("fig3-4 text", `Quick, test_fig3_4_text);
    ("fig5 text", `Quick, test_fig5_text);
    ("fig9 text", `Quick, test_fig9_text);
    ("fig10 text", `Quick, test_fig10_text);
    ("ablation text", `Quick, test_ablation_text);
    ("csv export", `Quick, test_csv_export);
    ("baseline diff", `Quick, test_baseline_diff);
    ("baseline diff errors", `Quick, test_baseline_diff_errors);
  ]
