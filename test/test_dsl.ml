(* Unit tests for the specification DSL: parsing, error reporting,
   printing round-trips. *)

module Dsl = Sekitei_spec.Dsl
module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module T = Sekitei_network.Topology
module E = Sekitei_expr.Expr

let minimal =
  {|
interface S {
  property ibw degradable;
  cost 1 + ibw / 10;
  levels ibw: 10, 20;
}
component Src { provides S; effect S.ibw := 20; anchored; }
component Snk { requires S; condition S.ibw >= 10; cost 1; }
network {
  node a cpu 30;
  node b cpu 30;
  link a -- b lan lbw 100;
}
deploy {
  place Src on a;
  goal Snk on b;
}
|}

let parse text = Dsl.parse_document text

let test_minimal_parses () =
  let doc = parse minimal in
  Alcotest.(check int) "two interfaces... one" 1
    (List.length doc.Dsl.app.Model.interfaces);
  Alcotest.(check int) "two components" 2
    (List.length doc.Dsl.app.Model.components);
  Alcotest.(check bool) "topology present" true (doc.Dsl.topo <> None);
  Alcotest.(check int) "goal count" 1 (List.length doc.Dsl.app.Model.goals)

let test_network_details () =
  let doc = parse minimal in
  let topo = Option.get doc.Dsl.topo in
  Alcotest.(check int) "nodes" 2 (T.node_count topo);
  Alcotest.(check (float 0.)) "bw" 100. (T.link_resource topo 0 "lbw");
  Alcotest.(check string) "names resolve" "a" (T.get_node topo 0).T.node_name

let test_levels_parsed () =
  let doc = parse minimal in
  Alcotest.(check int) "levels" 3
    (List.length (Leveling.iface_levels doc.Dsl.leveling "S" "ibw"))

let test_anchored () =
  let doc = parse minimal in
  let src = Option.get (Model.find_component doc.Dsl.app "Src") in
  Alcotest.(check bool) "anchored" false src.Model.placeable;
  let snk = Option.get (Model.find_component doc.Dsl.app "Snk") in
  Alcotest.(check bool) "placeable" true snk.Model.placeable

let test_comments_ignored () =
  let doc = parse ("# leading comment\n" ^ minimal ^ "\n# trailing\n") in
  Alcotest.(check int) "components" 2 (List.length doc.Dsl.app.Model.components)

let test_available_goal () =
  let doc =
    parse
      (Sekitei_spec.Str_split.split_once minimal "goal Snk on b;"
      |> Option.get
      |> fun (a, b) -> a ^ "goal S.ibw >= 15 on b;" ^ b)
  in
  match doc.Dsl.app.Model.goals with
  | [ Model.Available ("S", "ibw", 1, v) ] ->
      Alcotest.(check (float 0.)) "threshold" 15. v
  | _ -> Alcotest.fail "expected Available goal"

let test_property_default_and_tag () =
  let doc =
    parse
      {|
interface X {
  property ibw upgradable;
  property lat = 3 neither;
  cost 1;
}
component C { requires X; cost 1; }
deploy { goal C on n0; }
|}
  in
  let x = Option.get (Model.find_iface doc.Dsl.app "X") in
  let lat = Option.get (Model.find_property x "lat") in
  Alcotest.(check (float 0.)) "default" 3. lat.Model.prop_default;
  Alcotest.(check bool) "tag neither" true (lat.Model.prop_tag = Model.Neither);
  let ibw = Option.get (Model.find_property x "ibw") in
  Alcotest.(check bool) "tag upgradable" true (ibw.Model.prop_tag = Model.Upgradable)

let test_top_level_link_levels () =
  let doc = parse (minimal ^ "\nlevels link.lbw: 31, 62;\n") in
  Alcotest.(check int) "link levels" 3
    (List.length (Leveling.link_levels doc.Dsl.leveling "lbw"))

let expect_error text =
  match Dsl.parse_document text with
  | _ -> Alcotest.failf "expected Dsl_error for %S" text
  | exception Dsl.Dsl_error _ -> ()

let test_errors () =
  expect_error "interface X {";
  expect_error "frobnicate Y { }";
  expect_error "interface X { property; }";
  expect_error "component C { requires }";
  expect_error "network { link a -- b lan; }";
  (* link before nodes *)
  expect_error "network { node a cpu 30; link a -- zz lan; }";
  expect_error "deploy { place X at n0; }";
  expect_error "stray statement;"

let test_bad_expression_reported () =
  expect_error
    {|
interface X { property ibw; cost 1 +; }
component C { requires X; cost 1; }
deploy { goal C on n0; }
|}

let test_roundtrip_media () =
  (* The programmatic media app prints to DSL and reparses equivalently. *)
  let app = Sekitei_domains.Media.app ~server:0 ~client:1 () in
  let leveling = Sekitei_domains.Media.leveling Sekitei_domains.Media.C app in
  let topo = Sekitei_network.Generators.line_kinds [ T.Wan ] in
  let text = Dsl.print_document ~topo app leveling in
  let doc = Dsl.parse_document text in
  Alcotest.(check int) "interfaces" 4 (List.length doc.Dsl.app.Model.interfaces);
  Alcotest.(check int) "components" 6 (List.length doc.Dsl.app.Model.components);
  let topo2 = Option.get doc.Dsl.topo in
  Alcotest.(check int) "nodes" (T.node_count topo) (T.node_count topo2);
  (* and it still plans identically *)
  let o1 = Sekitei_core.Planner.plan (Sekitei_core.Planner.request topo app ~leveling) in
  let o2 = Sekitei_core.Planner.plan (Sekitei_core.Planner.request topo2 doc.Dsl.app ~leveling:doc.Dsl.leveling) in
  match (o1.Sekitei_core.Planner.result, o2.Sekitei_core.Planner.result) with
  | Ok p1, Ok p2 ->
      Alcotest.(check (float 1e-9)) "same cost bound"
        p1.Sekitei_core.Plan.cost_lb p2.Sekitei_core.Plan.cost_lb;
      Alcotest.(check int) "same length"
        (Sekitei_core.Plan.length p1) (Sekitei_core.Plan.length p2)
  | _ -> Alcotest.fail "round-trip changed the planning outcome"

let test_print_without_topo () =
  let app = Sekitei_domains.Media.app ~server:0 ~client:1 () in
  let text = Dsl.print_document app Leveling.empty in
  Alcotest.(check bool) "node ids printed as n<i>" true
    (Sekitei_spec.Str_split.split_once text "place Server on n0" <> None)

let test_expression_fidelity () =
  (* Parsed effects match the expected ASTs. *)
  let doc = parse minimal in
  let src = Option.get (Model.find_component doc.Dsl.app "Src") in
  match src.Model.effects with
  | [ ("S", "ibw", e) ] ->
      Alcotest.(check string) "const effect" "20" (E.to_string e)
  | _ -> Alcotest.fail "unexpected effects"

let suite =
  [
    ("minimal parses", `Quick, test_minimal_parses);
    ("network details", `Quick, test_network_details);
    ("levels parsed", `Quick, test_levels_parsed);
    ("anchored", `Quick, test_anchored);
    ("comments ignored", `Quick, test_comments_ignored);
    ("available goal", `Quick, test_available_goal);
    ("property default and tag", `Quick, test_property_default_and_tag);
    ("top-level link levels", `Quick, test_top_level_link_levels);
    ("errors", `Quick, test_errors);
    ("bad expression reported", `Quick, test_bad_expression_reported);
    ("round-trip media", `Quick, test_roundtrip_media);
    ("print without topo", `Quick, test_print_without_topo);
    ("expression fidelity", `Quick, test_expression_fidelity);
  ]
