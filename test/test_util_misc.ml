(* Unit tests for Union_find, Running_stats, Ascii_table, Timer and
   Domain_pool. *)

module UF = Sekitei_util.Union_find
module RS = Sekitei_util.Running_stats
module Table = Sekitei_util.Ascii_table
module Timer = Sekitei_util.Timer
module Pool = Sekitei_util.Domain_pool

(* ---------------- Union_find ---------------- *)

let test_uf_singletons () =
  let t = UF.create 5 in
  Alcotest.(check int) "count" 5 (UF.count t);
  for i = 0 to 4 do
    Alcotest.(check int) "own root" i (UF.find t i)
  done

let test_uf_union () =
  let t = UF.create 4 in
  Alcotest.(check bool) "first union merges" true (UF.union t 0 1);
  Alcotest.(check bool) "repeat union no-op" false (UF.union t 0 1);
  Alcotest.(check bool) "same" true (UF.same t 0 1);
  Alcotest.(check bool) "not same" false (UF.same t 0 2);
  Alcotest.(check int) "count after one union" 3 (UF.count t)

let test_uf_transitive () =
  let t = UF.create 6 in
  ignore (UF.union t 0 1);
  ignore (UF.union t 1 2);
  ignore (UF.union t 3 4);
  Alcotest.(check bool) "transitive" true (UF.same t 0 2);
  Alcotest.(check bool) "separate component" false (UF.same t 0 3);
  ignore (UF.union t 2 3);
  Alcotest.(check bool) "merged" true (UF.same t 0 4);
  Alcotest.(check int) "two components left" 2 (UF.count t)

(* ---------------- Running_stats ---------------- *)

let test_rs_basic () =
  let s = RS.of_list [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "count" 4 (RS.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (RS.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (RS.min s);
  Alcotest.(check (float 1e-9)) "max" 4. (RS.max s);
  Alcotest.(check (float 1e-9)) "total" 10. (RS.total s);
  (* Sample variance of 1..4 = 5/3 *)
  Alcotest.(check (float 1e-9)) "variance" (5. /. 3.) (RS.variance s)

let test_rs_constant () =
  let s = RS.of_list [ 7.; 7.; 7. ] in
  Alcotest.(check (float 1e-9)) "variance of constant" 0. (RS.variance s);
  Alcotest.(check (float 1e-9)) "stddev of constant" 0. (RS.stddev s)

let test_rs_single () =
  let s = RS.of_list [ 5. ] in
  Alcotest.(check (float 1e-9)) "variance of single" 0. (RS.variance s)

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check (float 1e-9)) "median" 3. (RS.percentile 0.5 xs);
  Alcotest.(check (float 1e-9)) "p0" 1. (RS.percentile 0. xs);
  Alcotest.(check (float 1e-9)) "p100" 5. (RS.percentile 1. xs);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 2. (RS.percentile 0.25 xs)

let test_percentile_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Running_stats.percentile: empty") (fun () ->
      ignore (RS.percentile 0.5 []));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Running_stats.percentile: p not in [0,1]") (fun () ->
      ignore (RS.percentile 1.5 [ 1. ]))

(* ---------------- Reservoir ---------------- *)

let test_reservoir_exact_under_capacity () =
  (* Below capacity the reservoir holds the whole sample, so its
     percentiles equal the list-based ones exactly. *)
  let xs = List.init 100 (fun i -> float_of_int ((i * 37) mod 100)) in
  let r = RS.Reservoir.create ~capacity:128 () in
  List.iter (RS.Reservoir.add r) xs;
  Alcotest.(check int) "count" 100 (RS.Reservoir.count r);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f" (p *. 100.))
        (RS.percentile p xs)
        (RS.Reservoir.percentile r p))
    [ 0.; 0.25; 0.5; 0.9; 0.99; 1. ]

let test_reservoir_overflow () =
  let r = RS.Reservoir.create ~capacity:64 () in
  for i = 1 to 10_000 do
    RS.Reservoir.add r (float_of_int i)
  done;
  Alcotest.(check int) "count is stream length" 10_000 (RS.Reservoir.count r);
  Alcotest.(check int) "retains capacity" 64
    (List.length (RS.Reservoir.to_list r));
  List.iter
    (fun v ->
      Alcotest.(check bool) "retained values from the stream" true
        (v >= 1. && v <= 10_000.))
    (RS.Reservoir.to_list r);
  let p50 = RS.Reservoir.percentile r 0.5 in
  Alcotest.(check bool) "median estimate in range" true
    (p50 >= 1. && p50 <= 10_000.)

let test_reservoir_deterministic () =
  (* Fixed PRNG seed: two identical streams keep identical samples. *)
  let run () =
    let r = RS.Reservoir.create ~capacity:32 () in
    for i = 1 to 1000 do
      RS.Reservoir.add r (float_of_int (i * i mod 997))
    done;
    RS.Reservoir.to_list r
  in
  Alcotest.(check (list (float 1e-12))) "same retained sample" (run ()) (run ())

let test_reservoir_invalid () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Running_stats.Reservoir.create: capacity <= 0")
    (fun () -> ignore (RS.Reservoir.create ~capacity:0 ()));
  let r = RS.Reservoir.create () in
  Alcotest.check_raises "empty"
    (Invalid_argument "Running_stats.Reservoir.percentile: empty") (fun () ->
      ignore (RS.Reservoir.percentile r 0.5));
  RS.Reservoir.add r 1.;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Running_stats.percentile: p not in [0,1]") (fun () ->
      ignore (RS.Reservoir.percentile r (-0.1)))

(* ---------------- Ascii_table ---------------- *)

let test_table_render () =
  let out = Table.render_rows [ "a"; "b" ] [ [ "1"; "22" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "has header" true
    (String.length out > 0
    && String.split_on_char '\n' out |> List.exists (fun l ->
           let has_a =
             String.length l > 0
             && String.index_opt l 'a' <> None
             && String.index_opt l 'b' <> None
           in
           has_a));
  (* All non-empty lines have equal width. *)
  let widths =
    String.split_on_char '\n' out
    |> List.filter (fun l -> l <> "")
    |> List.map String.length
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "uniform width" 1 (List.length widths)

let test_table_arity_mismatch () =
  let t = Table.create [ "x"; "y" ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Ascii_table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "only one" ])

let test_table_alignment () =
  let out =
    Table.render_rows ~aligns:[ Table.Right ] [ "n" ] [ [ "1" ]; [ "100" ] ]
  in
  (* The right-aligned "1" is padded on the left. *)
  Alcotest.(check bool) "right aligned" true
    (String.split_on_char '\n' out |> List.exists (fun l ->
         Sekitei_spec.Str_split.split_once l "|   1 |" <> None))

let test_float_cell () =
  Alcotest.(check string) "integer compact" "63" (Table.float_cell 63.);
  Alcotest.(check string) "fraction" "72.85" (Table.float_cell 72.85)

(* ---------------- Timer ---------------- *)

let test_timer_monotone () =
  let t = Timer.start () in
  let x = ref 0 in
  for i = 1 to 100_000 do
    x := !x + i
  done;
  Alcotest.(check bool) "elapsed non-negative" true (Timer.elapsed_ms t >= 0.)

let test_timer_time () =
  let result, ms = Timer.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 result;
  Alcotest.(check bool) "ms non-negative" true (ms >= 0.)

(* ---------------- Domain_pool ---------------- *)

exception Boom of int

let test_pool_preserves_order () =
  let xs = List.init 100 Fun.id in
  let expect = List.map (fun x -> (2 * x) + 1) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "ordered results with jobs=%d" jobs)
        expect
        (Pool.map ~jobs (fun x -> (2 * x) + 1) xs))
    [ 1; 2; 4; 7 ]

let test_pool_jobs_one_sequential () =
  (* jobs=1 must be a plain List.map on the calling domain: effects run
     left to right, exactly once each. *)
  let trace = ref [] in
  let out =
    Pool.map ~jobs:1
      (fun x ->
        trace := x :: !trace;
        x * x)
      [ 3; 1; 4; 1; 5 ]
  in
  Alcotest.(check (list int)) "results" [ 9; 1; 16; 1; 25 ] out;
  Alcotest.(check (list int)) "left-to-right effects" [ 3; 1; 4; 1; 5 ]
    (List.rev !trace)

let test_pool_empty_and_clamp () =
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~jobs:8 Fun.id []);
  Alcotest.(check (list int))
    "jobs clamped to list length" [ 10 ]
    (Pool.map ~jobs:8 (fun x -> 10 * x) [ 1 ]);
  Alcotest.(check bool) "default jobs positive" true (Pool.default_jobs () >= 1)

let test_pool_exception_propagates () =
  List.iter
    (fun jobs ->
      match
        Pool.map ~jobs
          (fun x -> if x mod 3 = 2 then raise (Boom x) else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom x ->
          (* The earliest-index failure wins regardless of domain
             scheduling. *)
          Alcotest.(check int)
            (Printf.sprintf "earliest failure with jobs=%d" jobs)
            2 x)
    [ 1; 3 ]

let suite =
  [
    ("union-find singletons", `Quick, test_uf_singletons);
    ("pool preserves order", `Quick, test_pool_preserves_order);
    ("pool jobs=1 sequential", `Quick, test_pool_jobs_one_sequential);
    ("pool empty and clamp", `Quick, test_pool_empty_and_clamp);
    ("pool exception propagates", `Quick, test_pool_exception_propagates);
    ("union-find union", `Quick, test_uf_union);
    ("union-find transitive", `Quick, test_uf_transitive);
    ("stats basic", `Quick, test_rs_basic);
    ("stats constant", `Quick, test_rs_constant);
    ("stats single", `Quick, test_rs_single);
    ("percentile", `Quick, test_percentile);
    ("percentile invalid", `Quick, test_percentile_invalid);
    ("reservoir exact under capacity", `Quick, test_reservoir_exact_under_capacity);
    ("reservoir overflow", `Quick, test_reservoir_overflow);
    ("reservoir deterministic", `Quick, test_reservoir_deterministic);
    ("reservoir invalid", `Quick, test_reservoir_invalid);
    ("table render", `Quick, test_table_render);
    ("table arity mismatch", `Quick, test_table_arity_mismatch);
    ("table alignment", `Quick, test_table_alignment);
    ("float cell", `Quick, test_float_cell);
    ("timer monotone", `Quick, test_timer_monotone);
    ("timer time", `Quick, test_timer_time);
  ]
