(* Telemetry unit tests: span nesting, the memory sink's event record,
   counter aggregation, the JSONL encoding round-trip, and the shared
   JSON parser itself. *)

module Telemetry = Sekitei_telemetry.Telemetry
module Json = Sekitei_util.Json
module Planner = Sekitei_core.Planner
module Media = Sekitei_domains.Media
module Scenarios = Sekitei_harness.Scenarios

let with_memory f =
  let sink, events = Telemetry.memory () in
  let t = Telemetry.create [ sink ] in
  f t;
  Telemetry.close t;
  events ()

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  let events =
    with_memory (fun t ->
        Telemetry.with_span t "outer" (fun () ->
            Telemetry.with_span t "inner" (fun () -> ());
            Telemetry.with_span t "inner" (fun () -> ())))
  in
  (* Every begin has a matching end, and at each point the currently open
     ids form a stack (a child always ends before its parent). *)
  let open_ids = ref [] in
  let max_depth = ref 0 in
  List.iter
    (function
      | Telemetry.Span_begin { id; parent; _ } ->
          let expected_parent =
            match !open_ids with [] -> 0 | p :: _ -> p
          in
          Alcotest.(check int) "parent is innermost open" expected_parent parent;
          open_ids := id :: !open_ids;
          max_depth := max !max_depth (List.length !open_ids)
      | Telemetry.Span_end { id; _ } -> (
          match !open_ids with
          | top :: rest ->
              Alcotest.(check int) "ends innermost open span" top id;
              open_ids := rest
          | [] -> Alcotest.fail "span_end with no open span")
      | _ -> ())
    events;
  Alcotest.(check (list int)) "all spans closed" [] !open_ids;
  Alcotest.(check int) "nested two deep" 2 !max_depth

let test_span_tree_shape () =
  let events =
    with_memory (fun t ->
        Telemetry.with_span t "root" (fun () ->
            Telemetry.with_span t "a" (fun () -> ());
            Telemetry.with_span t "b" (fun () -> ())))
  in
  let begins =
    List.filter_map
      (function
        | Telemetry.Span_begin { id; parent; name; _ } -> Some (id, parent, name)
        | _ -> None)
      events
  in
  match begins with
  | [ (root_id, 0, "root"); (a_id, pa, "a"); (_, pb, "b") ] ->
      Alcotest.(check int) "a under root" root_id pa;
      Alcotest.(check int) "b under root" root_id pb;
      Alcotest.(check bool) "ids distinct" true (root_id <> a_id)
  | _ -> Alcotest.failf "unexpected span_begin events (%d)" (List.length begins)

let test_end_span_duration () =
  let sink, _ = Telemetry.memory () in
  let t = Telemetry.create [ sink ] in
  let sp = Telemetry.begin_span t "work" in
  let d = Telemetry.end_span t sp in
  Alcotest.(check bool) "duration non-negative" true (d >= 0.);
  (* The null handle still measures durations. *)
  let sp = Telemetry.begin_span Telemetry.null "work" in
  let d = Telemetry.end_span Telemetry.null sp in
  Alcotest.(check bool) "null duration non-negative" true (d >= 0.)

(* ---------------- counters ---------------- *)

let test_counters_sum () =
  let events =
    with_memory (fun t ->
        Telemetry.count t "x" 3;
        Telemetry.count t "x" 4;
        Telemetry.count t "y" 1;
        Alcotest.(check int) "running total" 7 (Telemetry.counter_total t "x");
        Telemetry.flush_counters t)
  in
  let totals =
    List.filter_map
      (function
        | Telemetry.Counter { name; total; _ } -> Some (name, total)
        | _ -> None)
      events
  in
  (* close flushes again; the last total per name is authoritative. *)
  let last name =
    List.fold_left
      (fun acc (n, v) -> if n = name then Some v else acc)
      None totals
  in
  Alcotest.(check (option int)) "x sums" (Some 7) (last "x");
  Alcotest.(check (option int)) "y sums" (Some 1) (last "y")

let test_null_is_inert () =
  Alcotest.(check bool) "null disabled" false (Telemetry.enabled Telemetry.null);
  Alcotest.(check int) "no heartbeat" 0
    (Telemetry.progress_interval Telemetry.null);
  Telemetry.count Telemetry.null "x" 5;
  Alcotest.(check int) "null counts nothing" 0
    (Telemetry.counter_total Telemetry.null "x")

(* ---------------- JSONL encoding ---------------- *)

let test_event_json_roundtrip () =
  let ev =
    Telemetry.Span_end
      {
        id = 7;
        name = "q";
        t_ms = 1.5;
        dur_ms = 0.25;
        attrs = [ ("n", Telemetry.Int 3); ("ok", Telemetry.Bool true) ];
      }
  in
  let s = Json.to_string (Telemetry.json_of_event ev) in
  match Json.of_string s with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok j ->
      Alcotest.(check (option string)) "ev" (Some "span_end")
        (Option.bind (Json.member "ev" j) Json.to_str);
      Alcotest.(check (option int)) "id" (Some 7)
        (Option.bind (Json.member "id" j) Json.to_int);
      Alcotest.(check (option int)) "attr n" (Some 3)
        (Option.bind (Json.member "n" j) Json.to_int)

let test_json_parser () =
  (match Json.of_string "{\"a\": [1, 2.5, \"x\\n\"], \"b\": null}" with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Str "x\n" ]); ("b", Json.Null) ]) ->
      ()
  | Ok j -> Alcotest.failf "unexpected parse: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Json.of_string "{\"a\": }" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let test_json_unicode () =
  let parse_str s =
    match Json.of_string s with
    | Ok (Json.Str v) -> v
    | Ok j -> Alcotest.failf "not a string: %s" (Json.to_string j)
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  (* BMP escape decodes to real UTF-8 (not '?') *)
  Alcotest.(check string) "latin-1 escape" "caf\xc3\xa9"
    (parse_str "\"caf\\u00e9\"");
  Alcotest.(check string) "CJK escape" "\xe6\xbc\xa2" (parse_str "\"\\u6f22\"");
  (* surrogate pair combines into one supplementary code point (U+1F600) *)
  Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80"
    (parse_str "\"\\ud83d\\ude00\"");
  (* unpaired surrogates become U+FFFD, never a mangled byte *)
  Alcotest.(check string) "lone high surrogate" "\xef\xbf\xbdx"
    (parse_str "\"\\ud83dx\"");
  Alcotest.(check string) "lone low surrogate" "\xef\xbf\xbd"
    (parse_str "\"\\ude00\"");
  (* raw UTF-8 written by the emitter survives a round trip *)
  let s = "na\xc3\xafve \xe6\xbc\xa2\xf0\x9f\x98\x80" in
  (match Json.of_string (Json.to_string (Json.Str s)) with
  | Ok (Json.Str v) -> Alcotest.(check string) "round trip" s v
  | Ok j -> Alcotest.failf "unexpected parse: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  match Json.of_string "\"\\ud83d\\uqqqq\"" with
  | Ok _ -> Alcotest.fail "bad hex accepted"
  | Error _ -> ()

(* ---------------- planner integration ---------------- *)

(* A traced run must emit a well-formed phase tree: plan at the root,
   the four phase spans under it, and leveling under compile. *)
let test_planner_span_tree () =
  let sink, events = Telemetry.memory () in
  let telemetry = Telemetry.create [ sink ] in
  let sc = Scenarios.tiny () in
  let leveling = Media.leveling Media.C sc.Scenarios.app in
  let report =
    Planner.plan
      (Planner.request ~telemetry sc.Scenarios.topo sc.Scenarios.app ~leveling)
  in
  Telemetry.close telemetry;
  Alcotest.(check bool) "plan found" true (Result.is_ok report.Planner.result);
  let begins =
    List.filter_map
      (function
        | Telemetry.Span_begin { id; parent; name; _ } -> Some (id, parent, name)
        | _ -> None)
      (events ())
  in
  let find name =
    List.find_map
      (fun (id, parent, n) -> if n = name then Some (id, parent) else None)
      begins
  in
  match (find "plan", find "compile", find "leveling") with
  | Some (plan_id, 0), Some (compile_id, compile_parent), Some (_, leveling_parent)
    ->
      Alcotest.(check int) "compile under plan" plan_id compile_parent;
      Alcotest.(check int) "leveling under compile" compile_id leveling_parent;
      List.iter
        (fun phase ->
          match find phase with
          | Some (_, parent) ->
              Alcotest.(check int) (phase ^ " under plan") plan_id parent
          | None -> Alcotest.failf "missing %s span" phase)
        [ "plrg"; "slrg"; "rg" ]
  | _ -> Alcotest.fail "missing plan/compile/leveling spans"

(* Phase timings must be populated even with the null telemetry, and the
   report must agree with the stats record on sizes. *)
let test_null_report_phases () =
  let sc = Scenarios.tiny () in
  let leveling = Media.leveling Media.C sc.Scenarios.app in
  let r =
    Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling)
  in
  let ph = r.Planner.phases in
  Alcotest.(check int) "compile items = actions"
    r.Planner.stats.Planner.total_actions ph.Planner.compile.Planner.items;
  Alcotest.(check int) "rg items = created" r.Planner.stats.Planner.rg_created
    ph.Planner.rg.Planner.items;
  Alcotest.(check bool) "rg time measured" true (ph.Planner.rg.Planner.ms >= 0.);
  Alcotest.(check bool) "slrg time measured" true
    (ph.Planner.slrg.Planner.ms >= 0.)

(* The JSONL sink must flush on every progress event so a live trace can
   be tailed mid-search: the heartbeat line has to be on disk before the
   channel is closed. *)
let test_jsonl_flushes_on_progress () =
  let path = Filename.temp_file "sekitei_jsonl" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let t = Telemetry.create [ Telemetry.jsonl oc ] in
      Telemetry.progress t "rg.progress" [ ("expanded", Telemetry.Int 7) ];
      (* Read back through an independent descriptor, before close. *)
      let ic = open_in path in
      let line =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> try input_line ic with End_of_file -> "")
      in
      Alcotest.(check bool) "progress line on disk before close" true
        (String.length line > 0);
      (match Sekitei_util.Json.of_string line with
      | Ok j ->
          Alcotest.(check (option string))
            "is the progress event" (Some "progress")
            (Option.bind (Sekitei_util.Json.member "ev" j)
               Sekitei_util.Json.to_str)
      | Error e -> Alcotest.failf "unparseable flushed line: %s" e);
      Telemetry.close t;
      close_out oc)

let suite =
  [
    Alcotest.test_case "spans well nested" `Quick test_span_nesting;
    Alcotest.test_case "jsonl flushes on progress" `Quick
      test_jsonl_flushes_on_progress;
    Alcotest.test_case "memory sink span tree" `Quick test_span_tree_shape;
    Alcotest.test_case "end_span returns duration" `Quick test_end_span_duration;
    Alcotest.test_case "counters sum" `Quick test_counters_sum;
    Alcotest.test_case "null handle inert" `Quick test_null_is_inert;
    Alcotest.test_case "event json roundtrip" `Quick test_event_json_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "json unicode" `Quick test_json_unicode;
    Alcotest.test_case "planner span tree" `Quick test_planner_span_tree;
    Alcotest.test_case "null report phases" `Quick test_null_report_phases;
  ]
