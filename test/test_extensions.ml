(* Tests for the extensions beyond the paper's core: redeployment
   (section 6 future work), the web-service security domain, deployment
   DOT rendering, and the cost-adjustment hook. *)

module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Compile = Sekitei_core.Compile
module Redeploy = Sekitei_core.Redeploy
module Deployment_dot = Sekitei_core.Deployment_dot
module Media = Sekitei_domains.Media
module Webservice = Sekitei_domains.Webservice
module Scenarios = Sekitei_harness.Scenarios
module Topology = Sekitei_network.Topology
module G = Sekitei_network.Generators

let contains hay needle = Sekitei_spec.Str_split.split_once hay needle <> None

(* ---------------- cost adjustment hook ---------------- *)

let test_adjust_changes_bound () =
  let sc = Scenarios.tiny () in
  let leveling = Media.leveling Media.C sc.Scenarios.app in
  let base = Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling) in
  let adjusted =
    Planner.plan
      ~adjust:(fun ~comp ~node:_ -> if comp = "Zip" then 10. else 0.)
      (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling)
  in
  match (base.Planner.result, adjusted.Planner.result) with
  | Ok b, Ok a ->
      Alcotest.(check (float 1e-9)) "surcharge shows in bound"
        (b.Plan.cost_lb +. 10.) a.Plan.cost_lb
  | _ -> Alcotest.fail "both must plan"

let test_adjust_never_negative () =
  (* A massive discount cannot push any action cost below zero, so the
     bound stays non-negative and A* stays admissible. *)
  let sc = Scenarios.tiny () in
  let leveling = Media.leveling Media.C sc.Scenarios.app in
  let o =
    Planner.plan
      ~adjust:(fun ~comp:_ ~node:_ -> -1e9)
      (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling)
  in
  match o.Planner.result with
  | Ok p -> Alcotest.(check bool) "bound >= 0" true (p.Plan.cost_lb >= 0.)
  | Error r -> Alcotest.failf "no plan: %a" Planner.pp_failure r

(* ---------------- redeploy ---------------- *)

let small_deployment () =
  let sc = Scenarios.small () in
  let leveling = Media.leveling Media.D sc.Scenarios.app in
  let pb = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
  match (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling)).Planner.result with
  | Ok p -> (sc, leveling, pb, p)
  | Error r -> Alcotest.failf "initial plan failed: %a" Planner.pp_failure r

let test_redeploy_keeps_when_unchanged () =
  let sc, leveling, pb, p = small_deployment () in
  let previous = Plan.placements pb p in
  let o = Redeploy.replan ~previous sc.Scenarios.topo sc.Scenarios.app leveling in
  match o.Planner.result with
  | Ok p' ->
      let d = Redeploy.diff ~previous pb p' in
      Alcotest.(check int) "all kept" (List.length previous) (List.length d.Redeploy.kept);
      Alcotest.(check int) "none moved" 0 (List.length d.Redeploy.moved);
      Alcotest.(check int) "none added" 0 (List.length d.Redeploy.added)
  | Error r -> Alcotest.failf "replan failed: %a" Planner.pp_failure r

let test_redeploy_discount_lowers_bound () =
  let sc, leveling, pb, p = small_deployment () in
  let previous = Plan.placements pb p in
  let o = Redeploy.replan ~previous sc.Scenarios.topo sc.Scenarios.app leveling in
  match o.Planner.result with
  | Ok p' ->
      Alcotest.(check bool) "discounted bound" true (p'.Plan.cost_lb < p.Plan.cost_lb)
  | Error r -> Alcotest.failf "replan failed: %a" Planner.pp_failure r

let test_redeploy_migrates_on_cpu_loss () =
  let sc, leveling, pb, p = small_deployment () in
  let previous = Plan.placements pb p in
  (* Kill CPU on the server node: Splitter and Zip must move. *)
  let crippled =
    Topology.make
      ~nodes:
        (Array.to_list (Topology.nodes sc.Scenarios.topo)
        |> List.map (fun (n : Topology.node) ->
               if n.Topology.node_id = 4 then
                 { n with Topology.node_resources = [ ("cpu", 5.) ] }
               else n))
      ~links:(Array.to_list (Topology.links sc.Scenarios.topo))
  in
  let o = Redeploy.replan ~previous crippled sc.Scenarios.app leveling in
  match o.Planner.result with
  | Ok p' ->
      let pb' = Compile.compile crippled sc.Scenarios.app leveling in
      let d = Redeploy.diff ~previous pb' p' in
      Alcotest.(check bool) "splitter moved" true
        (List.exists (fun (c, _, _) -> c = "Splitter") d.Redeploy.moved);
      Alcotest.(check bool) "client kept" true
        (List.mem ("Client", 0) d.Redeploy.kept)
  | Error r -> Alcotest.failf "adaptation failed: %a" Planner.pp_failure r

let test_redeploy_diff_shapes () =
  let _, _, pb, p = small_deployment () in
  let placements = Plan.placements pb p in
  (* Pretend the previous deployment had the Client elsewhere and an extra
     component that disappears. *)
  let previous = ("Client", 3) :: ("Ghost", 2)
                 :: List.remove_assoc "Client" placements in
  let d = Redeploy.diff ~previous pb p in
  Alcotest.(check bool) "client moved" true
    (List.exists (fun (c, a, b) -> c = "Client" && a = 3 && b = 0) d.Redeploy.moved);
  Alcotest.(check (list (pair string int))) "ghost removed" [ ("Ghost", 2) ]
    d.Redeploy.removed

let test_policy_extremes () =
  (* With a prohibitive migration surcharge and no discount, replanning
     after a CPU loss still succeeds (fresh placement is cheaper than
     migration but both remain possible). *)
  let sc, leveling, _, p = small_deployment () in
  let pb = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
  let previous = Plan.placements pb p in
  let policy = { Redeploy.keep_discount = 0.; migrate_surcharge = 1000. } in
  let o = Redeploy.replan ~policy ~previous sc.Scenarios.topo sc.Scenarios.app leveling in
  match o.Planner.result with
  | Ok p' ->
      let d = Redeploy.diff ~previous pb p' in
      Alcotest.(check int) "nobody migrates" 0 (List.length d.Redeploy.moved)
  | Error r -> Alcotest.failf "replan failed: %a" Planner.pp_failure r

(* ---------------- webservice domain ---------------- *)

let ws_solve secure =
  let topo = Webservice.topology ~secure in
  let app = Webservice.app ~backend:0 ~consumer:(List.length secure) () in
  let leveling = Webservice.leveling app in
  let pb = Compile.compile topo app leveling in
  ((Planner.plan (Planner.request topo app ~leveling)).Planner.result, pb)

let test_ws_secure_path_direct () =
  match ws_solve [ 1; 1; 1 ] with
  | Ok p, pb ->
      Alcotest.(check int) "direct" 4 (Plan.length p);
      Alcotest.(check bool) "no crypto" true
        (not (List.mem_assoc "Encryptor" (Plan.placements pb p)))
  | Error r, _ -> Alcotest.failf "no plan: %a" Planner.pp_failure r

let test_ws_insecure_middle_bracketed () =
  match ws_solve [ 1; 0; 1 ] with
  | Ok p, pb ->
      let placements = Plan.placements pb p in
      Alcotest.(check (option int)) "encrypt before the hole" (Some 1)
        (List.assoc_opt "Encryptor" placements);
      Alcotest.(check (option int)) "decrypt after the hole" (Some 2)
        (List.assoc_opt "Decryptor" placements);
      (* plaintext only on secure links *)
      List.iter
        (fun (iface, src, dst) ->
          if iface = "P" then
            Alcotest.(check bool) "P on secure hops only" true
              ((src, dst) = (0, 1) || (src, dst) = (2, 3)))
        (Plan.crossings pb p)
  | Error r, _ -> Alcotest.failf "no plan: %a" Planner.pp_failure r

let test_ws_fully_insecure_end_to_end () =
  match ws_solve [ 0; 0; 0 ] with
  | Ok p, pb ->
      let placements = Plan.placements pb p in
      Alcotest.(check (option int)) "encrypt at source" (Some 0)
        (List.assoc_opt "Encryptor" placements);
      Alcotest.(check (option int)) "decrypt at sink" (Some 3)
        (List.assoc_opt "Decryptor" placements)
  | Error r, _ -> Alcotest.failf "no plan: %a" Planner.pp_failure r

let test_ws_valid_spec () =
  let topo = Webservice.topology ~secure:[ 1; 0 ] in
  Alcotest.(check int) "valid" 0
    (List.length
       (Sekitei_spec.Validate.check topo (Webservice.app ~backend:0 ~consumer:2 ())))

(* ---------------- deployment DOT ---------------- *)

let test_deployment_dot () =
  let sc = Scenarios.tiny () in
  let leveling = Media.leveling Media.C sc.Scenarios.app in
  let pb = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
  match (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling)).Planner.result with
  | Ok p ->
      let dot = Deployment_dot.render pb p in
      List.iter
        (fun needle -> Alcotest.(check bool) needle true (contains dot needle))
        [ "digraph deployment"; "Splitter"; "Server"; "n0 -> n1"; "label=\"Z\"" ]
  | Error r -> Alcotest.failf "no plan: %a" Planner.pp_failure r

let suite =
  [
    ("adjust changes bound", `Quick, test_adjust_changes_bound);
    ("adjust never negative", `Quick, test_adjust_never_negative);
    ("redeploy keeps when unchanged", `Quick, test_redeploy_keeps_when_unchanged);
    ("redeploy discount lowers bound", `Quick, test_redeploy_discount_lowers_bound);
    ("redeploy migrates on cpu loss", `Quick, test_redeploy_migrates_on_cpu_loss);
    ("redeploy diff shapes", `Quick, test_redeploy_diff_shapes);
    ("policy extremes", `Quick, test_policy_extremes);
    ("webservice: secure path direct", `Quick, test_ws_secure_path_direct);
    ("webservice: insecure middle bracketed", `Quick, test_ws_insecure_middle_bracketed);
    ("webservice: fully insecure", `Quick, test_ws_fully_insecure_end_to_end);
    ("webservice: valid spec", `Quick, test_ws_valid_spec);
    ("deployment dot", `Quick, test_deployment_dot);
  ]
