The CLI plans the paper's Tiny instance with scenario C levels:

  $ sekitei plan --network tiny --levels C | head -10
  Planning Tiny with level scenario C...
  Plan (7 actions, cost bound 52.45, realized cost 57.5):
  place Splitter on n0,
  place Zip on n0,
  cross with Z stream from n0 to n1,
  place Unzip on n1,
  cross with I stream from n0 to n1,
  place Merger on n1,
  place Client on n1.
  LAN peak 0, WAN peak 65; delivered:

Scenario A (greedy) reports failure with a non-zero exit:

  $ sekitei plan --network tiny --levels A > /dev/null 2>&1
  [1]

Spec files validate and plan:

  $ sekitei validate spec.file
  specification is valid

  $ sekitei plan --spec spec.file | head -6
  Plan (4 actions, cost bound 9.6, realized cost 11):
  place Encode on cam,
  cross with E stream from cam to hub,
  cross with E stream from hub to tv,
  place Viewer on tv.
  LAN peak 10, WAN peak 10; delivered:

Table 1 prints the level scenarios:

  $ sekitei table1 | grep "| C"
  | C        | [0,90), [90,100), [100,inf)                   | [0,inf)                   |

Tracing writes a JSONL span tree covering every planner phase:

  $ sekitei plan --network tiny --levels C --trace trace.jsonl > /dev/null
  $ for ev in plan compile leveling plrg slrg rg replay; do
  >   grep -q "\"ev\": \"span_begin\".*\"name\": \"$ev\"" trace.jsonl || echo "missing $ev"
  > done
  $ grep -c '"ev": "counter"' trace.jsonl > /dev/null && echo counters present
  counters present
