The CLI plans the paper's Tiny instance with scenario C levels:

  $ sekitei plan --network tiny --levels C | head -10
  Planning Tiny with level scenario C...
  Plan (7 actions, cost bound 52.45, realized cost 57.5):
  place Splitter on n0,
  place Zip on n0,
  cross with Z stream from n0 to n1,
  place Unzip on n1,
  cross with I stream from n0 to n1,
  place Merger on n1,
  place Client on n1.
  LAN peak 0, WAN peak 65; delivered:

Scenario A (greedy) reports failure with a non-zero exit:

  $ sekitei plan --network tiny --levels A > /dev/null 2>&1
  [1]

Spec files validate and plan:

  $ sekitei validate spec.file
  specification is valid

  $ sekitei plan --spec spec.file | head -6
  Plan (4 actions, cost bound 9.6, realized cost 11):
  place Encode on cam,
  cross with E stream from cam to hub,
  cross with E stream from hub to tv,
  place Viewer on tv.
  LAN peak 10, WAN peak 10; delivered:

Batch mode plans many spec files in one invocation (--jobs picks the
worker-domain count; output order is always argument order):

  $ sekitei batch --jobs 2 spec.file spec.file
  spec.file: plan cost 9.6 (4 actions)
  spec.file: plan cost 9.6 (4 actions)

Long-lived sessions: a script drives one session through plans and
topology updates.  The first plan compiles (cold); re-plans are warm and
report the invalidation work of intervening updates:

  $ cat > session.script <<'EOF'
  > # replan twice, then degrade the hub->tv link
  > plan
  > plan
  > update set-link 1 lbw 12
  > plan
  > EOF
  $ sekitei session --spec spec.file session.script
  plan 1 (cold): cost 9.6 (4 actions), invalidated=0 evicted=0
  plan 2 (warm): cost 9.6 (4 actions), invalidated=0 evicted=0
  update set-link 1 lbw 12: ok (3 nodes, 2 links)
  plan 3 (warm): cost 9.6 (4 actions), invalidated=8 evicted=11

Removing the only route makes the next plan fail with a non-zero exit.
Link ids are stable: the surviving link keeps id 0, and the removed id 1
is never reused:

  $ cat > fail.script <<'EOF'
  > plan
  > update remove-link 1
  > plan
  > EOF
  $ sekitei session --spec spec.file fail.script
  plan 1 (cold): cost 9.6 (4 actions), invalidated=0 evicted=0
  update remove-link 1: ok (3 nodes, 1 links)
  plan 2 (warm): no plan: goal logically unreachable (placed(Viewer,tv)), invalidated=8 evicted=11
  [1]

An update naming a removed link is rejected as a script error — the id
is stale, not silently forwarded to a neighbor:

  $ cat > stale.script <<'EOF'
  > plan
  > update remove-link 1
  > update set-link 1 lbw 50
  > EOF
  $ sekitei session --spec spec.file stale.script
  plan 1 (cold): cost 9.6 (4 actions), invalidated=0 evicted=0
  update remove-link 1: ok (3 nodes, 1 links)
  stale.script:3: update set-link 1 lbw 50: link 1 was removed by an earlier update
  [2]

So is one naming an id the topology never issued:

  $ cat > unknown.script <<'EOF'
  > update set-link 9 lbw 50
  > EOF
  $ sekitei session --spec spec.file unknown.script
  unknown.script:1: update set-link 9 lbw 50: Mutate.set_link_resource: unknown link 9
  [2]

Script errors name the offending line and exit 2:

  $ echo "frobnicate 1" > bad.script
  $ sekitei session --spec spec.file bad.script
  bad.script:1: unknown command "frobnicate" (expected plan/metrics/update)
  [2]

--deadline bounds a request's wall clock; an exhausted budget names the
phase that gave up:

  $ sekitei plan --spec spec.file --deadline 0 | head -1
  No plan: deadline exceeded in compile phase

--flight arms the always-on flight recorder: a failed plan dumps the
ring as JSONL, and the trace report summarizes the moments before the
failure:

  $ sekitei plan --spec spec.file --deadline 0 --flight fl.jsonl | tail -1
  flight dump written to fl.jsonl
  $ head -1 fl.jsonl
  {"ev": "flight_dump", "capacity": 512, "recorded": 5, "dropped": 0}
  $ ../tools/trace_report.exe fl.jsonl | head -3
  flight-recorder dump: 5 event(s) recorded, ring capacity 512, 0 rotated out
  
  no plan: deadline exceeded in compile phase


The metrics subcommand plans and exposes the session's lifetime
metrics; counters are deterministic, and --check validates the
exposition schema (on stderr, so scrapers reading stdout are unaffected):

  $ sekitei metrics --spec spec.file | grep -E '^(session_plans|session_plans_ok|rg_searches) '
  rg_searches 1
  session_plans 1
  session_plans_ok 1
  $ sekitei metrics --spec spec.file --repeat 3 --check > metrics.prom
  exposition schema: ok
  $ grep '^session_plans ' metrics.prom
  session_plans 3
  $ sekitei metrics --spec spec.file --format json --check > /dev/null
  exposition schema: ok

A session script's metrics verb exposes the same registry mid-session:

  $ printf 'plan\nmetrics\n' > metrics.script
  $ sekitei session --spec spec.file metrics.script | grep -E '^(session_plans|session_cold_plans) '
  session_cold_plans 1
  session_plans 1

Table 1 prints the level scenarios:

  $ sekitei table1 | grep "| C"
  | C        | [0,90), [90,100), [100,inf)                   | [0,inf)                   |

Tracing writes a JSONL span tree covering every planner phase:

  $ sekitei plan --network tiny --levels C --trace trace.jsonl > /dev/null
  $ for ev in plan compile leveling plrg slrg rg replay; do
  >   grep -q "\"ev\": \"span_begin\".*\"name\": \"$ev\"" trace.jsonl || echo "missing $ev"
  > done
  $ grep -c '"ev": "counter"' trace.jsonl > /dev/null && echo counters present
  counters present

The trace report renders the span tree; --self gives the flat
exclusive-time profile instead (timings vary, so only check shape):

  $ ../tools/trace_report.exe trace.jsonl | head -2 | grep -o 'span\|calls\|total ms\|self ms' | tr '\n' ' '
  span calls total ms self ms 
  $ ../tools/trace_report.exe --self trace.jsonl | grep -c 'self %'
  1
  $ ../tools/trace_report.exe --self trace.jsonl | grep -cE '^\| (rg|slrg) '
  2

A trace cut off mid-line (killed process, interrupted dump) is still
readable — the partial tail is skipped with a warning, not a parse
abort:

  $ head -c $(($(wc -c < trace.jsonl) - 20)) trace.jsonl > truncated.jsonl
  $ ../tools/trace_report.exe truncated.jsonl | tail -1
  warning: trailing line truncated mid-object (dump or killed trace) — skipped

--explain tabulates the solved plan: per-action cost-bound
contributions (the column total is exactly the optimized plan cost),
chosen levels, and each step's binding resource constraint with slack:

  $ sekitei plan --network small --levels C --explain | sed -n '/^Explanation/,/total/p'
  Explanation:
  +----+---------------------------+---------+----------+-------------------+-----------------+-----+------+-------+
  | #  |          action           | cost lb | realized |      levels       |     binding     | cap | used | slack |
  +----+---------------------------+---------+----------+-------------------+-----------------+-----+------+-------+
  |  0 | place(Splitter,n4)[M:1]   |      10 |       11 | T[63,70) I[27,30) | cpu@n4          |  30 |   27 |     3 |
  |  1 | place(Zip,n4)[T:1]        |    7.30 |        8 | Z[31.5,35)        | cpu@n4          |  30 |   27 |     3 |
  |  2 | cross(Z,n4->n3)[1]        |    4.15 |     4.50 | Z[31.5,35)        | lbw@n3-n4 (LAN) | 150 |   65 |    85 |
  |  3 | cross(Z,n3->n2)[1]        |    4.15 |     4.50 | Z[31.5,35)        | lbw@n2-n3 (WAN) |  70 |   65 |     5 |
  |  4 | cross(Z,n2->n1)[1]        |    4.15 |     4.50 | Z[31.5,35)        | lbw@n1-n2 (LAN) | 150 |   65 |    85 |
  |  5 | cross(Z,n1->n0)[1]        |    4.15 |     4.50 | Z[31.5,35)        | lbw@n0-n1 (LAN) | 150 |   65 |    85 |
  |  6 | place(Unzip,n0)[Z:1]      |    7.30 |        8 | T[63,70)          | cpu@n0          |  30 |   27 |     3 |
  |  7 | cross(I,n4->n3)[1]        |    3.70 |        4 | I[27,30)          | lbw@n3-n4 (LAN) | 150 |   65 |    85 |
  |  8 | cross(I,n3->n2)[1]        |    3.70 |        4 | I[27,30)          | lbw@n2-n3 (WAN) |  70 |   65 |     5 |
  |  9 | cross(I,n2->n1)[1]        |    3.70 |        4 | I[27,30)          | lbw@n1-n2 (LAN) | 150 |   65 |    85 |
  | 10 | cross(I,n1->n0)[1]        |    3.70 |        4 | I[27,30)          | lbw@n0-n1 (LAN) | 150 |   65 |    85 |
  | 11 | place(Merger,n0)[T:1,I:1] |      10 |       11 | M[90,100)         | cpu@n0          |  30 |   27 |     3 |
  | 12 | place(Client,n0)[M:1]     |      10 |       11 | M[90,100)         | cpu@n0          |  30 |   27 |     3 |
  +----+---------------------------+---------+----------+-------------------+-----------------+-----+------+-------+
  |    | total                     |   76.00 |       83 |                   |                 |     |      |       |

--hquality profiles the search heuristics along the solution path;
admissibility violations must be zero:

  $ sekitei plan --network small --levels C --hquality | sed -n '/^Heuristic quality/,/^plan cost/p'
  Heuristic quality:
  +-----------+---------+----------+------+-------+-------+---------+------------+
  | heuristic | samples | mean err | p50  |  p90  |  p99  | max err | violations |
  +-----------+---------+----------+------+-------+-------+---------+------------+
  | slrg      |      14 |     1.71 | 1.00 |  4.40 |  5.00 |    5.00 |          0 |
  | plrg      |      14 |     5.76 | 1.00 | 16.80 | 16.80 |   16.80 |          0 |
  +-----------+---------+----------+------+-------+-------+---------+------------+
  plan cost 76.00; 14 path node(s), 116 expansion(s), wasted-work ratio 0.88

On an out-of-budget search --explain emits the frontier certificate:

  $ sekitei plan --network small --levels C --explain --rg-budget 1 | sed -n '/^Certificate/,/^Stats/p' | sed '$d'
  Certificate:
  search budget exhausted: best frontier bound f = 71
    best-f node actions:
      place(Client,n0)[M:1]
    unmet preconditions:
      avail(M,n0,L1=[90,100))
