(* Advanced planner scenarios: multiple goals, multiple sources,
   upgradable properties, plan module details, deterministic output. *)

module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Replay = Sekitei_core.Replay
module Compile = Sekitei_core.Compile
module Problem = Sekitei_core.Problem
module Media = Sekitei_domains.Media
module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module E = Sekitei_expr.Expr
module G = Sekitei_network.Generators
module T = Sekitei_network.Topology

let expect_plan what (report : Planner.report) =
  match report.Planner.result with
  | Ok p -> p
  | Error r -> Alcotest.failf "%s: no plan (%a)" what Planner.pp_failure r

(* ---------------- multiple goals ---------------- *)

let two_client_app ~server ~client1 ~client2 =
  let base = Media.app ~server ~client:client1 () in
  (* Second client component with the same requirements. *)
  let client2_comp =
    Model.component ~requires:[ "M" ]
      ~conditions:[ E.parse_cond "M.ibw >= 90" ]
      ~place_cost:(E.parse "1 + M.ibw / 10")
      "Client2"
  in
  {
    base with
    Model.components = base.Model.components @ [ client2_comp ];
    goals = [ Model.Placed ("Client", client1); Model.Placed ("Client2", client2) ];
  }

let test_two_clients_star () =
  (* Server at the hub, two clients on separate 150-unit spokes: both
     direct deliveries fit. *)
  let topo = G.star 2 in
  let app = two_client_app ~server:0 ~client1:1 ~client2:2 in
  let leveling = Media.leveling Media.C app in
  let p = expect_plan "two clients" (Planner.plan (Planner.request topo app ~leveling)) in
  let pb = Compile.compile topo app leveling in
  let placements = Plan.placements pb p in
  Alcotest.(check (option int)) "client1 at 1" (Some 1)
    (List.assoc_opt "Client" placements);
  Alcotest.(check (option int)) "client2 at 2" (Some 2)
    (List.assoc_opt "Client2" placements);
  (* 2 crossings + 2 placements *)
  Alcotest.(check int) "4 actions" 4 (Plan.length p)

let test_two_clients_shared_bottleneck () =
  (* Both clients behind the same first hop: the stream is multicast -
     one crossing of the shared link serves both subtrees, and each spoke
     then carries its own copy.  Both demands must be met by the replay. *)
  let topo =
    T.make
      ~nodes:(List.init 4 (fun i -> T.node ~cpu:60. i (Printf.sprintf "n%d" i)))
      ~links:
        [ T.link ~bw:150. T.Lan 0 0 1; T.link ~bw:150. T.Lan 1 1 2;
          T.link ~bw:150. T.Lan 2 1 3 ]
  in
  let app = two_client_app ~server:0 ~client1:2 ~client2:3 in
  let leveling = Media.leveling Media.C app in
  let p = expect_plan "shared bottleneck" (Planner.plan (Planner.request topo app ~leveling)) in
  (* Whatever shape it found must replay and deliver both demands. *)
  let pb = Compile.compile topo app leveling in
  match Replay.run pb ~mode:Replay.From_init p.Plan.steps with
  | Ok m ->
      let m_i = Problem.iface_index pb "M" in
      List.iter
        (fun node ->
          let v =
            List.find_map
              (fun (i, n, x) -> if i = m_i && n = node then Some x else None)
              m.Replay.delivered
          in
          Alcotest.(check bool)
            (Printf.sprintf "client node %d served" node)
            true
            (match v with Some x -> x >= 90. | None -> false))
        [ 2; 3 ]
  | Error f -> Alcotest.failf "invalid plan: %s" f.Replay.reason

(* ---------------- multiple sources ---------------- *)

let test_two_servers_nearest_wins () =
  (* Two servers at opposite ends of a line; the client sits next to one
     of them: the optimal plan uses the near server (1 crossing). *)
  let topo = G.line 5 in
  let app = Media.app ~server:0 ~client:3 () in
  let app =
    { app with Model.pre_placed = [ ("Server", 0); ("Server", 4) ] }
  in
  let leveling = Media.leveling Media.C app in
  let p = expect_plan "two servers" (Planner.plan (Planner.request topo app ~leveling)) in
  let pb = Compile.compile topo app leveling in
  Alcotest.(check int) "one crossing + client" 2 (Plan.length p);
  match Plan.crossings pb p with
  | [ ("M", 4, 3) ] -> ()
  | other ->
      Alcotest.failf "expected cross from n4, got %s"
        (String.concat ";"
           (List.map (fun (i, a, b) -> Printf.sprintf "%s %d->%d" i a b) other))

(* ---------------- upgradable properties ---------------- *)

let test_upgradable_property () =
  (* A "quality floor" stream: availability at a low value implies
     availability at higher values (e.g. a guaranteed minimum).  The
     consumer demands the value NOT exceed a budget - satisfiable only
     because upgradable availability includes the whole upper range and
     the meet keeps the current lower bound. *)
  let iface =
    Model.iface
      ~cross_transforms:[ ("qual", E.parse "qual") ]
      ~cross_consumes:[]
      ~cross_cost:(E.Const 1.)
      ~properties:[ Model.property ~tag:Model.Upgradable "qual" ]
      "Q"
  in
  let app =
    {
      Model.interfaces = [ iface ];
      components =
        [
          Model.component ~provides:[ "Q" ]
            ~effects:[ ("Q", "qual", E.Const 3.) ]
            ~placeable:false "Src";
          Model.component ~requires:[ "Q" ]
            ~conditions:[ E.parse_cond "Q.qual >= 5" ]
            ~place_cost:(E.Const 1.) "Snk";
        ];
      pre_placed = [ ("Src", 0) ];
      goals = [ Model.Placed ("Snk", 1) ];
    }
  in
  let topo = G.line 2 in
  let leveling = Leveling.with_iface Leveling.empty "Q" "qual" [ 5. ] in
  let p = expect_plan "upgradable" (Planner.plan (Planner.request topo app ~leveling)) in
  Alcotest.(check int) "cross + place" 2 (Plan.length p)

let test_neither_tag_exact () =
  (* A Neither-tagged property is not throttleable: a supply of exactly 50
     can only satisfy levels containing 50. *)
  let iface =
    Model.iface
      ~cross_transforms:[ ("v", E.parse "v") ]
      ~cross_consumes:[]
      ~cross_cost:(E.Const 1.)
      ~properties:[ Model.property ~tag:Model.Neither "v" ]
      "X"
  in
  let app cond =
    {
      Model.interfaces = [ iface ];
      components =
        [
          Model.component ~provides:[ "X" ]
            ~effects:[ ("X", "v", E.Const 50.) ]
            ~placeable:false "Src";
          Model.component ~requires:[ "X" ]
            ~conditions:[ E.parse_cond cond ]
            ~place_cost:(E.Const 1.) "Snk";
        ];
      pre_placed = [ ("Src", 0) ];
      goals = [ Model.Placed ("Snk", 1) ];
    }
  in
  let topo = G.line 2 in
  let leveling = Leveling.with_iface Leveling.empty "X" "v" [ 40.; 60. ] in
  (match (Planner.plan (Planner.request topo (app "X.v >= 45") ~leveling)).Planner.result with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "50 satisfies >=45: %a" Planner.pp_failure r);
  match (Planner.plan (Planner.request topo (app "X.v >= 60") ~leveling)).Planner.result with
  | Ok _ -> Alcotest.fail "a fixed 50 cannot satisfy >= 60"
  | Error _ -> ()

(* ---------------- determinism ---------------- *)

let test_planner_deterministic () =
  let run () =
    let sc = Sekitei_harness.Scenarios.small () in
    let leveling = Media.leveling Media.C sc.Sekitei_harness.Scenarios.app in
    let o =
      Planner.plan
        (Planner.request sc.Sekitei_harness.Scenarios.topo
           sc.Sekitei_harness.Scenarios.app ~leveling)
    in
    match o.Planner.result with
    | Ok p -> (Plan.labels p, p.Plan.cost_lb, o.Planner.stats.Planner.rg_created)
    | Error _ -> Alcotest.fail "no plan"
  in
  let l1, c1, n1 = run () in
  let l2, c2, n2 = run () in
  Alcotest.(check (list string)) "same plan" l1 l2;
  Alcotest.(check (float 0.)) "same bound" c1 c2;
  Alcotest.(check int) "same search size" n1 n2

(* ---------------- plan module ---------------- *)

let test_plan_rendering () =
  let sc = Sekitei_harness.Scenarios.tiny () in
  let leveling = Media.leveling Media.C sc.Sekitei_harness.Scenarios.app in
  let pb =
    Compile.compile sc.Sekitei_harness.Scenarios.topo
      sc.Sekitei_harness.Scenarios.app leveling
  in
  let p =
    expect_plan "tiny"
      (Planner.plan
         (Planner.request sc.Sekitei_harness.Scenarios.topo
            sc.Sekitei_harness.Scenarios.app ~leveling))
  in
  let text = Plan.to_string pb p in
  Alcotest.(check bool) "paper phrasing" true
    (Sekitei_spec.Str_split.split_once text "cross with Z stream from n0 to n1"
    <> None);
  Alcotest.(check bool) "terminated" true (String.length text > 0 && text.[String.length text - 1] = '.');
  Alcotest.(check int) "labels arity" (Plan.length p) (List.length (Plan.labels p));
  Alcotest.(check int) "placements + crossings = length" (Plan.length p)
    (List.length (Plan.placements pb p) + List.length (Plan.crossings pb p))

let suite =
  [
    ("two clients on a star", `Quick, test_two_clients_star);
    ("two clients, shared bottleneck", `Quick, test_two_clients_shared_bottleneck);
    ("two servers: nearest wins", `Quick, test_two_servers_nearest_wins);
    ("upgradable property", `Quick, test_upgradable_property);
    ("neither tag is exact", `Quick, test_neither_tag_exact);
    ("planner deterministic", `Quick, test_planner_deterministic);
    ("plan rendering", `Quick, test_plan_rendering);
  ]
