(* Static preflight analyzer and independent plan certifier. *)

module I = Sekitei_util.Interval
module D = Sekitei_util.Diagnostic
module T = Sekitei_network.Topology
module Media = Sekitei_domains.Media
module Scenarios = Sekitei_harness.Scenarios
module Dsl = Sekitei_spec.Dsl
module Validate = Sekitei_spec.Validate
module Compile = Sekitei_core.Compile
module Problem = Sekitei_core.Problem
module Action = Sekitei_core.Action
module Plan = Sekitei_core.Plan
module Planner = Sekitei_core.Planner
module Preflight = Sekitei_analysis.Preflight
module Certify = Sekitei_analysis.Certify

let tiny level =
  let sc = Scenarios.tiny () in
  let leveling = Media.leveling level sc.Scenarios.app in
  (sc, Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling, leveling)

let codes diags = List.map (fun (d : D.t) -> d.D.code) diags

let has_code code diags = List.mem code (codes diags)

(* The capacity-starved diamond of examples/specs/infeasible.spec: the
   encoder demands 100 CPU on 40-CPU nodes, so the encoded stream is
   unproducible and the goal provably unreachable. *)
let diamond_spec =
  {|
interface V {
  property ibw degradable;
  cross ibw := min(ibw, link.lbw);
  consume link.lbw -= min(ibw, link.lbw);
  cost 1 + ibw / 10;
  levels ibw: 40, 50;
}
interface E {
  property ibw degradable;
  cross ibw := min(ibw, link.lbw);
  consume link.lbw -= min(ibw, link.lbw);
  cost 1 + ibw / 10;
  levels ibw: 8, 10;
}
component Camera { provides V; effect V.ibw := 50; anchored; }
component Encode {
  requires V;
  provides E;
  effect E.ibw := V.ibw / 5;
  consume node.cpu -= 100;
  cost 1 + V.ibw / 10;
}
component Viewer { requires E; condition E.ibw >= 8; cost 1; }
network {
  node src cpu 40;
  node left cpu 40;
  node right cpu 40;
  node dst cpu 40;
  link src -- left lan lbw 100;
  link src -- right lan lbw 100;
  link left -- dst wan lbw 10;
  link right -- dst wan lbw 10;
}
deploy { place Camera on src; goal Viewer on dst; }
|}

let compile_spec spec =
  let doc = Dsl.parse_document spec in
  let topo = Option.get doc.Dsl.topo in
  (topo, doc.Dsl.app, Compile.compile topo doc.Dsl.app doc.Dsl.leveling)

(* ---------------- preflight ---------------- *)

let test_preflight_clean () =
  let _, pb, _ = tiny Media.C in
  Alcotest.(check (list string)) "no diagnostics" [] (codes (Preflight.check pb))

let test_preflight_infeasible () =
  let _, _, pb = compile_spec diamond_spec in
  let diags = Preflight.check pb in
  Alcotest.(check bool) "goal placement infeasible" true
    (has_code "SKT106" diags);
  Alcotest.(check bool) "PLRG-unreachable goal" true (has_code "SKT105" diags);
  Alcotest.(check bool) "encoder unplaceable warning" true
    (has_code "SKT102" diags);
  Alcotest.(check int) "exit code errors" 2 (D.exit_code diags);
  Alcotest.(check bool) "actions were pruned" true (pb.Problem.pruned_actions > 0)

let test_preflight_level_grid () =
  let _, pb, _ = tiny Media.C in
  (* Doctor one interface's grid: a gap between [0,10) and [20,inf), a
     shape the DSL's cutpoint constructor cannot produce. *)
  let levels = Array.copy pb.Problem.iface_levels in
  levels.(0) <- [| I.make 0. 10.; I.make 20. Float.infinity |];
  let pb' = { pb with Problem.iface_levels = levels } in
  Alcotest.(check bool) "grid gap warned" true
    (has_code "SKT103" (Preflight.check pb'));
  (* Overlapping grids are also flagged. *)
  levels.(0) <- [| I.make 0. 30.; I.make 20. Float.infinity |];
  let pb' = { pb with Problem.iface_levels = levels } in
  let diags = Preflight.check pb' in
  Alcotest.(check bool) "grid overlap warned" true (has_code "SKT103" diags);
  Alcotest.(check int) "warnings exit 1" 1 (D.exit_code diags)

let test_preflight_topology_cut () =
  (* Three nodes, but only nodes 0-1 are connected: the client on node 2
     sits across a cut from every producer of M. *)
  let topo =
    T.make
      ~nodes:(List.init 3 (fun i -> T.node ~cpu:30. i (Printf.sprintf "n%d" i)))
      ~links:[ T.link ~bw:100. T.Lan 0 0 1 ]
  in
  let app = Media.app ~server:0 ~client:2 () in
  let leveling = Media.leveling Media.C app in
  let pb = Compile.compile topo app leveling in
  let diags = Preflight.check pb in
  Alcotest.(check bool) "topology cut reported" true (has_code "SKT104" diags);
  Alcotest.(check int) "cut is an error" 2 (D.exit_code diags)

let test_preflight_no_producer () =
  (* An interface nothing provides is suspicious but not fatal. *)
  let spec =
    {|
interface V {
  property ibw degradable;
  cross ibw := min(ibw, link.lbw);
  consume link.lbw -= min(ibw, link.lbw);
  cost 1;
  levels ibw: 50;
}
interface Ghost {
  property ibw degradable;
  cross ibw := ibw;
  cost 1;
  levels ibw: 10;
}
component Camera { provides V; effect V.ibw := 50; anchored; }
component Viewer { requires V; cost 1; }
network {
  node a cpu 30;
  node b cpu 30;
  link a -- b lan lbw 100;
}
deploy { place Camera on a; goal Viewer on b; }
|}
  in
  let _, _, pb = compile_spec spec in
  let diags = Preflight.check pb in
  Alcotest.(check bool) "unproduced interface warned" true
    (has_code "SKT101" diags);
  Alcotest.(check int) "warning only" 1 (D.exit_code diags)

(* ---------------- validator diagnostics ---------------- *)

let test_validate_codes () =
  let doc =
    Dsl.parse_document
      {|
interface V {
  property ibw degradable;
  cross ibw := min(ibw, link.lbw);
  cost 1;
  levels ibw: 50;
}
component Camera { provides V; effect V.ibw := 50; anchored; }
component Viewer { requires Nothing; cost 1; }
network {
  node a cpu 30;
  node b cpu 30;
  link a -- b lan lbw 100;
}
deploy { place Camera on a; goal Viewer on b; }
|}
  in
  let topo = Option.get doc.Dsl.topo in
  let diags = Validate.check_diagnostics topo doc.Dsl.app in
  Alcotest.(check bool) "dangling requires has SKT004" true
    (has_code "SKT004" diags);
  Alcotest.(check bool) "all validation findings are errors" true
    (List.for_all (fun (d : D.t) -> d.D.severity = D.Error) diags);
  (* The thin legacy wrapper sees the same findings. *)
  Alcotest.(check int) "legacy issue list agrees" (List.length diags)
    (List.length (Validate.check topo doc.Dsl.app))

(* ---------------- diagnostic type ---------------- *)

let test_diagnostic_rendering () =
  let w = D.warning ~code:"SKT103" ~loc:"interface M" "grid gap" in
  let e =
    D.error ~code:"SKT104" ~loc:"goal g" ~evidence:[ ("iface", "M") ]
      "cut found"
  in
  Alcotest.(check int) "empty exits 0" 0 (D.exit_code []);
  Alcotest.(check int) "warning exits 1" 1 (D.exit_code [ w ]);
  Alcotest.(check int) "error dominates" 2 (D.exit_code [ w; e ]);
  Alcotest.(check (list string)) "errors sort first" [ "SKT104"; "SKT103" ]
    (codes (D.by_severity [ w; e ]));
  Alcotest.(check string) "text rendering" "error[SKT104] goal g: cut found (iface=M)"
    (D.to_string e);
  let json = Sekitei_util.Json.to_string (D.to_json e) in
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json carries the code" true (contains "SKT104" json)

(* ---------------- certifier ---------------- *)

let plan_tiny () =
  let sc, pb, leveling = tiny Media.C in
  match
    (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling))
      .Planner.result
  with
  | Ok p -> (pb, p)
  | Error _ -> Alcotest.fail "tiny scenario C should solve"

let test_certify_accepts () =
  let pb, p = plan_tiny () in
  Alcotest.(check (list string)) "emitted plan certifies" []
    (codes (Certify.check pb p));
  Alcotest.(check bool) "ok agrees" true (Certify.ok pb p)

let test_certify_rejects_cost () =
  let pb, p = plan_tiny () in
  let steps =
    match p.Plan.steps with
    | a :: rest -> { a with Action.cost_lb = a.Action.cost_lb +. 1. } :: rest
    | [] -> Alcotest.fail "plan has steps"
  in
  let mutated = { p with Plan.steps = steps } in
  Alcotest.(check (list string)) "cost tamper detected" [ "SKT207" ]
    (codes (Certify.check pb mutated))

let test_certify_rejects_order () =
  let pb, p = plan_tiny () in
  if List.length p.Plan.steps < 2 then Alcotest.fail "plan too short"
  else
    let mutated = { p with Plan.steps = List.rev p.Plan.steps } in
    Alcotest.(check (list string)) "broken ordering detected" [ "SKT201" ]
      (codes (Certify.check pb mutated))

let test_certify_rejects_level () =
  let pb, p = plan_tiny () in
  let shifted = ref false in
  let steps =
    List.map
      (fun (a : Action.t) ->
        if (not !shifted) && Array.length a.Action.in_levels > 0 then begin
          shifted := true;
          {
            a with
            Action.in_levels =
              Array.map
                (fun (i, ivl) ->
                  (i, I.make (I.lo ivl +. 1000.) (I.hi ivl +. 1000.)))
                a.Action.in_levels;
          }
        end
        else a)
      p.Plan.steps
  in
  if not !shifted then Alcotest.fail "no step consumes a stream"
  else
    let mutated = { p with Plan.steps = steps } in
    Alcotest.(check (list string)) "impossible level detected" [ "SKT202" ]
      (codes (Certify.check pb mutated))

let test_certify_rejects_total_cost () =
  let pb, p = plan_tiny () in
  let mutated = { p with Plan.cost_lb = p.Plan.cost_lb +. 0.5 } in
  Alcotest.(check (list string)) "total bound tamper detected" [ "SKT207" ]
    (codes (Certify.check pb mutated))

let test_certifier_hook () =
  (* With the hook installed, config.certify re-validates every emitted
     plan inside the session; clean plans pass through unchanged. *)
  Certify.install ();
  let sc, _, leveling = tiny Media.C in
  let config = { Planner.default_config with Planner.certify = true } in
  match
    (Planner.plan
       (Planner.request ~config sc.Scenarios.topo sc.Scenarios.app ~leveling))
      .Planner.result
  with
  | Ok _ -> ()
  | Error r ->
      Alcotest.failf "certified run failed: %a" Planner.pp_failure r

let suite =
  [
    Alcotest.test_case "preflight: clean scenario" `Quick test_preflight_clean;
    Alcotest.test_case "preflight: capacity-starved diamond" `Quick
      test_preflight_infeasible;
    Alcotest.test_case "preflight: level-grid anomalies" `Quick
      test_preflight_level_grid;
    Alcotest.test_case "preflight: topology cut" `Quick
      test_preflight_topology_cut;
    Alcotest.test_case "preflight: unproduced interface" `Quick
      test_preflight_no_producer;
    Alcotest.test_case "validate: structured diagnostics" `Quick
      test_validate_codes;
    Alcotest.test_case "diagnostic: rendering and exit codes" `Quick
      test_diagnostic_rendering;
    Alcotest.test_case "certify: accepts emitted plan" `Quick
      test_certify_accepts;
    Alcotest.test_case "certify: rejects cost tamper" `Quick
      test_certify_rejects_cost;
    Alcotest.test_case "certify: rejects reordering" `Quick
      test_certify_rejects_order;
    Alcotest.test_case "certify: rejects impossible level" `Quick
      test_certify_rejects_level;
    Alcotest.test_case "certify: rejects total bound tamper" `Quick
      test_certify_rejects_total_cost;
    Alcotest.test_case "certify: session hook round-trip" `Quick
      test_certifier_hook;
  ]
