Static preflight analysis over a feasible spec: clean report, exit 0.

  $ sekitei check --spec ../examples/specs/video.spec
  33 leveled action(s); pruned 2 dead
  0 error(s), 0 warning(s)

The capacity-starved diamond is proven infeasible without any RG
search: grounding filters every Encode placement, the PLRG relaxation
never reaches the goal, and the command exits 2.

  $ sekitei check --spec ../examples/specs/infeasible.spec
  error[SKT106] goal placed(Viewer,dst): no resource-feasible leveled placement of the goal component on its goal node survives grounding (placements_elsewhere=false)
  error[SKT105] goal placed(Viewer,dst): unreachable in the PLRG relaxation: no admissible support chain from the initial state
  warning[SKT102] component Encode: no resource-feasible leveled placement on any node survives grounding (demand exceeds every capacity at every level)
  16 leveled action(s); pruned 32 dead
  2 error(s), 1 warning(s)
  [2]

The same report as machine-readable JSON (same exit code):

  $ sekitei check --spec ../examples/specs/infeasible.spec --format json
  {"actions": 16, "pruned_actions": 32, "errors": 2, "warnings": 1, "diagnostics": [{"severity": "error", "code": "SKT106", "loc": "goal placed(Viewer,dst)", "message": "no resource-feasible leveled placement of the goal component on its goal node survives grounding", "evidence": {"placements_elsewhere": "false"}}, {"severity": "error", "code": "SKT105", "loc": "goal placed(Viewer,dst)", "message": "unreachable in the PLRG relaxation: no admissible support chain from the initial state", "evidence": {}}, {"severity": "warning", "code": "SKT102", "loc": "component Encode", "message": "no resource-feasible leveled placement on any node survives grounding (demand exceeds every capacity at every level)", "evidence": {}}]}
  [2]

Built-in scenarios work too:

  $ sekitei check --network tiny --levels C
  48 leveled action(s); pruned 0 dead
  0 error(s), 0 warning(s)

Specification errors surface as SKT0xx diagnostics before compilation:

  $ cat > broken.spec << 'EOF'
  > interface M {
  >   property ibw degradable;
  >   levels ibw: 10, 20;
  > }
  > component A {
  >   provides M;
  >   effect M.ibw := nosuchvar * 2;
  > }
  > network {
  >   node n0 cpu 10;
  > }
  > deploy {
  > }
  > EOF
  $ sekitei check --spec broken.spec
  error[SKT002] component A: effect references unknown variable nosuchvar
  error[SKT006] goal: no goals
  2 error(s), 0 warning(s)
  [2]

Plans emitted with --verify pass the independent certifier:

  $ sekitei plan --spec spec.file --verify | tail -1
  plan independently certified
