(* Property-based tests (QCheck, run through alcotest): interval
   arithmetic soundness, expression evaluation laws, heap ordering,
   generator invariants, and end-to-end planner soundness on randomized
   instances. *)

module Q = QCheck
module I = Sekitei_util.Interval
module Heap = Sekitei_util.Heap
module Prng = Sekitei_util.Prng
module E = Sekitei_expr.Expr
module G = Sekitei_network.Generators
module T = Sekitei_network.Topology
module Media = Sekitei_domains.Media
module Leveling = Sekitei_spec.Leveling
module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Replay = Sekitei_core.Replay
module Compile = Sekitei_core.Compile
module Problem = Sekitei_core.Problem
module Plrg = Sekitei_core.Plrg
module Slrg = Sekitei_core.Slrg
module Rg = Sekitei_core.Rg

let count = 200

(* ---------------- interval properties ---------------- *)

let pos_float = Q.Gen.map (fun x -> Float.abs x +. 0.001) (Q.Gen.float_bound_exclusive 1000.)

let interval_gen =
  Q.Gen.map2
    (fun lo w -> I.make lo (lo +. w))
    pos_float pos_float

let arb_interval = Q.make ~print:I.to_string interval_gen

let prop_inter_subset =
  Q.Test.make ~count ~name:"inter is a subset of both"
    (Q.pair arb_interval arb_interval)
    (fun (a, b) ->
      match I.inter a b with
      | None -> true
      | Some c -> I.subset c a && I.subset c b)

let prop_inter_commutative =
  Q.Test.make ~count ~name:"inter commutative"
    (Q.pair arb_interval arb_interval)
    (fun (a, b) ->
      match (I.inter a b, I.inter b a) with
      | Some x, Some y -> I.equal x y
      | None, None -> true
      | _ -> false)

let prop_hull_superset =
  Q.Test.make ~count ~name:"hull contains both"
    (Q.pair arb_interval arb_interval)
    (fun (a, b) ->
      let h = I.hull a b in
      I.subset a h && I.subset b h)

let prop_add_sound =
  Q.Test.make ~count ~name:"add encloses pointwise sums"
    (Q.triple arb_interval arb_interval (Q.float_range 0. 1.))
    (fun (a, b, t) ->
      let x = I.lo a +. (t *. (I.hi a -. I.lo a)) in
      let y = I.lo b +. (t *. (I.hi b -. I.lo b)) in
      let s = I.add a b in
      I.lo s -. 1e-6 <= x +. y && x +. y <= I.hi s +. 1e-6)

let prop_scale_width =
  Q.Test.make ~count ~name:"scale multiplies width"
    (Q.pair arb_interval (Q.float_range 0.1 10.))
    (fun (a, k) ->
      Float.abs (I.width (I.scale k a) -. (k *. I.width a)) < 1e-6)

let prop_interval_ops_wellformed =
  (* add/sub/scale must return intervals honoring the lo <= hi invariant
     outright — Interval.sub used to silently swap inverted bounds, which
     could only mask a corrupted operand. *)
  Q.Test.make ~count ~name:"add/sub/scale preserve lo <= hi"
    (Q.triple arb_interval arb_interval (Q.float_range 0. 10.))
    (fun (a, b, k) ->
      let ok i = I.lo i <= I.hi i in
      ok (I.add a b) && ok (I.sub a b) && ok (I.scale k a))

let prop_cutpoints_partition =
  Q.Test.make ~count ~name:"cutpoint levels partition [0,inf)"
    (Q.pair (Q.list_of_size (Q.Gen.int_range 1 6) (Q.float_range 0.5 500.))
       (Q.float_range 0. 600.))
    (fun (cuts, x) ->
      let cuts = List.sort_uniq compare cuts in
      let levels = I.of_cutpoints cuts in
      List.length (List.filter (I.mem x) levels) = 1)

(* ---------------- expression properties ---------------- *)

(* Random monotone-friendly expressions over x and y: constants are
   non-negative; division only by positive constants. *)
let expr_gen =
  let open Q.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun c -> E.Const (Float.abs c)) (float_bound_exclusive 50.);
                oneofl [ E.Var "x"; E.Var "y" ];
              ]
          else
            let sub = self (n / 2) in
            oneof
              [
                map2 (fun a b -> E.Add (a, b)) sub sub;
                map2 (fun a b -> E.Sub (a, b)) sub sub;
                map2 (fun a b -> E.Min (a, b)) sub sub;
                map2 (fun a b -> E.Max (a, b)) sub sub;
                map2
                  (fun a c -> E.Mul (a, E.Const (Float.abs c)))
                  sub (float_bound_exclusive 10.);
                map2
                  (fun a c -> E.Div (a, E.Const (Float.abs c +. 0.5)))
                  sub (float_bound_exclusive 10.);
              ])
        (min n 6))

let arb_expr = Q.make ~print:E.to_string expr_gen

let prop_parse_print_roundtrip =
  Q.Test.make ~count ~name:"parse (to_string e) evaluates like e" arb_expr
    (fun e ->
      let env v = match v with "x" -> 3.25 | "y" -> 7.5 | _ -> raise Not_found in
      let v1 = E.eval ~env e in
      let v2 = E.eval ~env (E.parse (E.to_string e)) in
      Float.abs (v1 -. v2) <= 1e-9 *. Float.max 1. (Float.abs v1))

let prop_simplify_preserves =
  Q.Test.make ~count ~name:"simplify preserves evaluation" arb_expr (fun e ->
      let env v = match v with "x" -> 2.5 | "y" -> 0.75 | _ -> raise Not_found in
      let v1 = E.eval ~env e and v2 = E.eval ~env (E.simplify e) in
      Float.abs (v1 -. v2) <= 1e-9 *. Float.max 1. (Float.abs v1))

let prop_interval_encloses =
  Q.Test.make ~count ~name:"interval evaluation encloses point evaluation"
    (Q.triple arb_expr (Q.float_range 0. 1.) (Q.float_range 0. 1.))
    (fun (e, tx, ty) ->
      let ix = I.make 1. 9. and iy = I.make 2. 4. in
      let ienv v = match v with "x" -> ix | "y" -> iy | _ -> raise Not_found in
      let enclosure = E.eval_interval ~env:ienv e in
      let x = I.lo ix +. (tx *. (I.hi ix -. I.lo ix)) in
      let y = I.lo iy +. (ty *. (I.hi iy -. I.lo iy)) in
      let env v = match v with "x" -> x | "y" -> y | _ -> raise Not_found in
      let v = E.eval ~env e in
      I.lo enclosure -. 1e-6 <= v && v <= I.hi enclosure +. 1e-6)

let prop_monotonicity_sampled =
  Q.Test.make ~count ~name:"claimed monotonicity holds on samples" arb_expr
    (fun e ->
      let eval_at x =
        E.eval ~env:(function "x" -> x | "y" -> 3. | _ -> raise Not_found) e
      in
      match E.monotonicity e "x" with
      | E.Increasing ->
          eval_at 1. <= eval_at 2. +. 1e-9 && eval_at 2. <= eval_at 8. +. 1e-9
      | E.Decreasing ->
          eval_at 1. +. 1e-9 >= eval_at 2. && eval_at 2. +. 1e-9 >= eval_at 8.
      | E.Constant ->
          Float.abs (eval_at 1. -. eval_at 8.) <= 1e-9
      | E.Unknown -> true)

(* ---------------- heap property ---------------- *)

let prop_heap_sorts =
  Q.Test.make ~count ~name:"heap drains in sorted order"
    (Q.list (Q.float_range (-100.) 100.))
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.add h ~prio:x x) xs;
      let drained = List.map snd (Heap.to_sorted_list h) in
      drained = List.sort compare xs)

(* ---------------- prng property ---------------- *)

let prop_prng_bounds =
  Q.Test.make ~count ~name:"prng int stays in bounds"
    (Q.pair (Q.map (fun i -> Int64.of_int i) Q.int) (Q.int_range 1 1000))
    (fun (seed, n) ->
      let t = Prng.create ~seed in
      let ok = ref true in
      for _ = 1 to 20 do
        let v = Prng.int t n in
        if v < 0 || v >= n then ok := false
      done;
      !ok)

(* ---------------- generator properties ---------------- *)

let prop_transit_stub_connected =
  Q.Test.make ~count:30 ~name:"transit-stub networks connected with right size"
    (Q.quad (Q.map Int64.of_int Q.int) (Q.int_range 1 4) (Q.int_range 0 3)
       (Q.int_range 1 6))
    (fun (seed, transit, stubs, stub_size) ->
      let rng = Prng.create ~seed in
      let t =
        G.transit_stub ~rng ~transit ~stubs_per_transit:stubs ~stub_size ()
      in
      T.is_connected t
      && T.node_count t = transit * (1 + (stubs * stub_size)))

(* ---------------- planner soundness on random instances ---------------- *)

(* Random 3-node line networks with random bandwidths and CPU, shared by
   the end-to-end planner properties below. *)
let media_line_instance (bw1, bw2, cpu, demand) =
  let topo =
    T.make
      ~nodes:(List.init 3 (fun i -> T.node ~cpu i (Printf.sprintf "n%d" i)))
      ~links:[ T.link ~bw:bw1 T.Lan 0 0 1; T.link ~bw:bw2 T.Wan 1 1 2 ]
  in
  let app = Media.app ~demand ~server:0 ~client:2 () in
  let leveling =
    Leveling.propagate app
      (Leveling.with_iface Leveling.empty "M" "ibw"
         [ demand; demand +. 10.; 150. ])
  in
  (topo, app, leveling)

let arb_instance =
  Q.quad (Q.float_range 20. 160.) (Q.float_range 20. 160.)
    (Q.float_range 5. 60.) (Q.float_range 30. 110.)

(* Whenever the planner returns a plan it must replay from the initial
   state and deliver the demand. *)
let prop_planner_sound =
  (* A tight RG budget keeps pathological random instances cheap; a
     budget-exceeded outcome counts as "no plan", which the property
     accepts. *)
  let config =
    { Planner.default_config with Planner.rg_max_expansions = 5_000 }
  in
  Q.Test.make ~count:25 ~name:"planner plans always validate" arb_instance
    (fun inst ->
      let (_, _, _, demand) = inst in
      let topo, app, leveling = media_line_instance inst in
      let pb = Compile.compile topo app leveling in
      match (Planner.plan (Planner.request ~config topo app ~leveling)).Planner.result with
      | Error _ -> true (* infeasibility is an acceptable outcome *)
      | Ok p -> (
          match Replay.run pb ~mode:Replay.From_init p.Plan.steps with
          | Error _ -> false
          | Ok m ->
              let m_i = Problem.iface_index pb "M" in
              let delivered =
                List.find_map
                  (fun (i, n, v) -> if i = m_i && n = 2 then Some v else None)
                  m.Replay.delivered
              in
              (match delivered with
              | Some v -> v >= demand -. 1e-6
              | None -> false)
              && p.Plan.cost_lb <= m.Replay.realized_cost +. 1e-6))

(* ---------------- telemetry is observation-only ---------------- *)

(* Running the planner with a memory-sink telemetry handle must return
   exactly the same plan, cost and search statistics as the null handle:
   tracing observes the search, it never steers it. *)
let prop_telemetry_transparent =
  let config =
    { Planner.default_config with Planner.rg_max_expansions = 5_000 }
  in
  Q.Test.make ~count:15 ~name:"telemetry never changes the outcome"
    arb_instance
    (fun inst ->
      let topo, app, leveling = media_line_instance inst in
      let quiet = Planner.plan (Planner.request ~config topo app ~leveling) in
      let sink, events = Sekitei_telemetry.Telemetry.memory () in
      let telemetry = Sekitei_telemetry.Telemetry.create [ sink ] in
      let traced =
        Planner.plan (Planner.request ~config ~telemetry topo app ~leveling)
      in
      Sekitei_telemetry.Telemetry.close telemetry;
      let same_result =
        match (quiet.Planner.result, traced.Planner.result) with
        | Ok p1, Ok p2 ->
            Plan.labels p1 = Plan.labels p2
            && Float.abs (p1.Plan.cost_lb -. p2.Plan.cost_lb) < 1e-9
        | Error r1, Error r2 -> r1 = r2
        | _ -> false
      in
      let s1 = quiet.Planner.stats and s2 = traced.Planner.stats in
      same_result
      && s1.Planner.rg_created = s2.Planner.rg_created
      && s1.Planner.rg_expanded = s2.Planner.rg_expanded
      && s1.Planner.rg_duplicates = s2.Planner.rg_duplicates
      && s1.Planner.slrg_nodes = s2.Planner.slrg_nodes
      && s1.Planner.slrg_cache_hits = s2.Planner.slrg_cache_hits
      && s1.Planner.slrg_suffix_harvested = s2.Planner.slrg_suffix_harvested
      && s1.Planner.slrg_bound_promoted = s2.Planner.slrg_bound_promoted
      && s1.Planner.order_repaired = s2.Planner.order_repaired
      && events () <> [])

(* ---------------- recorded heuristics are admissible ---------------- *)

(* The h-quality profiler records (g, h_slrg, h_plrg) for every node on
   the accepted solution path; both heuristics must satisfy
   h <= C* - g (the realized cost-to-go) or the optimality claim is
   void.  Randomizing the SLRG query budget exercises the bounded-answer
   path of the oracle: answers cut off by the budget are still lower
   bounds and must stay admissible. *)
let prop_h_admissible =
  let module Scenarios = Sekitei_harness.Scenarios in
  let gen =
    Q.Gen.triple
      (Q.Gen.oneofl [ `Tiny; `Small ])
      (Q.Gen.oneofl [ Media.B; Media.C; Media.D; Media.E ])
      (Q.Gen.int_range 100 5_000)
  in
  let print (net, level, budget) =
    Printf.sprintf "%s-%s slrg_budget=%d"
      (match net with `Tiny -> "Tiny" | `Small -> "Small")
      (Media.scenario_name level) budget
  in
  Q.Test.make ~count:20 ~name:"profiled h admissible on the solution path"
    (Q.make ~print gen)
    (fun (net, level, budget) ->
      let sc =
        match net with
        | `Tiny -> Scenarios.tiny ()
        | `Small -> Scenarios.small ()
      in
      let config =
        { Planner.default_config with
          Planner.profile_h = true;
          slrg_query_budget = budget;
          rg_max_expansions = 20_000 }
      in
      let leveling = Media.leveling level sc.Scenarios.app in
      let r =
        Planner.plan
          (Planner.request ~config sc.Scenarios.topo sc.Scenarios.app ~leveling)
      in
      match (r.Planner.result, r.Planner.hquality) with
      | Error _, _ -> true (* some levels are infeasible; that's fine *)
      | Ok _, (None | Some []) -> false (* solved + profiled must sample *)
      | Ok p, Some samples ->
          List.for_all
            (fun (s : Rg.hsample) ->
              let togo = p.Plan.cost_lb -. s.Rg.g in
              s.Rg.h_slrg <= togo +. 1e-6 && s.Rg.h_plrg <= togo +. 1e-6)
            samples)

(* ---------------- order repair equals brute force ---------------- *)

let rec insert_everywhere x = function
  | [] -> [ [ x ] ]
  | y :: ys ->
      (x :: y :: ys) :: List.map (fun l -> y :: l) (insert_everywhere x ys)

let rec permutations = function
  | [] -> [ [] ]
  | x :: xs -> List.concat_map (insert_everywhere x) (permutations xs)

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* The backtracking order repair must agree with brute-force search over
   all permutations of the tail: it finds a feasible execution order
   exactly when one exists (tails capped at 6 actions, 720 permutations).
   Both a shuffled feasible plan and a random strict subset of it are
   checked, exercising the recoverable and unrecoverable polarities. *)
let prop_repair_equals_bruteforce =
  let config =
    { Planner.default_config with Planner.rg_max_expansions = 5_000 }
  in
  Q.Test.make ~count:20 ~name:"order repair matches brute-force feasibility"
    (Q.pair arb_instance (Q.int_range 0 9999))
    (fun (inst, seed) ->
      let topo, app, leveling = media_line_instance inst in
      let pb = Compile.compile topo app leveling in
      match
        (Planner.plan (Planner.request ~config topo app ~leveling))
          .Planner.result
      with
      | Error _ -> true
      | Ok p when List.length p.Plan.steps > 6 -> true
      | Ok p ->
          let rng = Prng.create ~seed:(Int64.of_int seed) in
          let check tail =
            let feasible =
              List.exists
                (fun o -> Result.is_ok (Replay.run pb ~mode:Replay.From_init o))
                (permutations tail)
            in
            match Rg.repair_order pb (shuffle rng tail) with
            | Some (order, _) ->
                feasible
                && Result.is_ok (Replay.run pb ~mode:Replay.From_init order)
            | None -> not feasible
          in
          check p.Plan.steps
          &&
          match p.Plan.steps with
          | [] | [ _ ] -> true
          | steps ->
              let drop = Prng.int rng (List.length steps) in
              check (List.filteri (fun i _ -> i <> drop) steps))

(* ---------------- SLRG suffix harvesting is exact ---------------- *)

(* Every solved cache entry left behind by a planner run — queried roots
   and suffix-harvested chain sets alike — must equal what a fresh,
   effectively unbounded oracle computes for that set from scratch. *)
let prop_slrg_harvest_agrees =
  Q.Test.make ~count:15 ~name:"SLRG harvested entries agree with fresh oracle"
    arb_instance
    (fun inst ->
      let topo, app, leveling = media_line_instance inst in
      let pb = Compile.compile topo app leveling in
      let plrg = Plrg.build pb in
      if not (Plrg.goals_reachable plrg) then true
      else begin
        let slrg = Slrg.create pb plrg in
        ignore (Rg.search ~max_expansions:2_000 pb plrg slrg);
        let fresh = Slrg.create ~query_budget:1_000_000 pb plrg in
        let ok = ref true in
        Slrg.iter_solved slrg (fun set cost ->
            let c = Slrg.query_set fresh (Array.copy set) in
            let agree =
              if Float.is_finite cost || Float.is_finite c then
                Float.abs (c -. cost) <= 1e-6
              else true
            in
            if not agree then ok := false);
        !ok
      end)

(* ---------------- deferred heuristic is outcome-identical ---------------- *)

(* Deferred (two-stage) SLRG evaluation preserves the search outcome:
   a node is only processed once its refined f-value is proven minimal in
   the frontier, so the admissibility argument — and with it solvability
   and the optimal cost bound — carries over unchanged.

   The property deliberately does NOT demand a bit-identical replay.
   Exact oracle values are path-independent only mathematically: a set
   with several equally-optimal support paths gets its cached cost from
   whichever query harvested it first, float addition is not associative,
   and deferred evaluation issues a different query sequence than eager —
   so h-values can disagree in the last ulp.  An ulp is enough to swap
   f-tied nodes in the frontier, which perturbs [rg_expanded] /
   [rg_created] and can make the search return a different equally-cheap
   optimum (observed on ~2% of random media-line instances).  What must
   survive any tie-break: the result constructor, the optimal cost bound,
   and a budget-cutoff's admissible best-f evidence, all up to fp noise.

   The generous per-query budget removes the other divergence source
   (the same proviso {!Session} documents for warm-vs-cold replans): a
   budget-exhausted query records a bound that depends on the shared
   escalation pool, which the two modes drain differently. *)
let prop_defer_identical =
  Q.Test.make ~count:15
    ~name:"deferred h preserves outcome and optimal cost" arb_instance
    (fun inst ->
      let topo, app, leveling = media_line_instance inst in
      let run defer_h =
        let config =
          {
            Planner.default_config with
            Planner.rg_max_expansions = 5_000;
            slrg_query_budget = 1_000_000;
            defer_h;
          }
        in
        Planner.plan (Planner.request ~config topo app ~leveling)
      in
      let eager = run false and deferred = run true in
      let close a b = Float.abs (a -. b) <= 1e-6 in
      let same_result =
        match (eager.Planner.result, deferred.Planner.result) with
        | Ok p1, Ok p2 -> close p1.Plan.cost_lb p2.Plan.cost_lb
        | ( Error (Planner.Search_limit { best_f = f1; _ }),
            Error (Planner.Search_limit { best_f = f2; _ }) ) ->
            close f1 f2
        | Error r1, Error r2 -> r1 = r2
        | _ -> false
      in
      let s1 = eager.Planner.stats and s2 = deferred.Planner.stats in
      same_result
      && s1.Planner.slrg_deferred = 0
      && s2.Planner.slrg_deferred >= s2.Planner.slrg_saved
      && s2.Planner.slrg_saved >= 0)

(* ---------------- warm session re-plans equal cold plans ---------------- *)

(* The Session contract: after any sequence of deltas, a warm re-plan
   agrees with a cold plan of the session's current topology on the
   result constructor and the optimal cost bound (tie-breaks may differ
   — the same ulp provisos as [prop_defer_identical] above, and the
   generous query budget removes the budget-exhaustion divergence
   source).  Each random case threads 1-3 resource deltas through one
   session; deltas that make the spec infeasible are fine — warm and
   cold must then fail with the same constructor. *)
let prop_warm_equals_cold =
  let arb =
    Q.pair arb_instance
      (Q.list_of_size (Q.Gen.int_range 1 3)
         (Q.triple (Q.int_range 0 5) (Q.float_range 5. 160.) Q.bool))
  in
  Q.Test.make ~count:15 ~name:"session warm re-plan equals cold plan" arb
    (fun (inst, deltas) ->
      let topo, app, leveling = media_line_instance inst in
      let config =
        {
          Planner.default_config with
          Planner.rg_max_expansions = 5_000;
          slrg_query_budget = 1_000_000;
        }
      in
      let session =
        Planner.Session.create (Planner.request ~config topo app ~leveling)
      in
      ignore (Planner.Session.plan session);
      List.iter
        (fun (site, value, is_node) ->
          let delta =
            if is_node then
              Planner.Session.Set_node_resource
                { node = site mod 3; resource = "cpu"; value }
            else
              Planner.Session.Set_link_resource
                { link = site mod 2; resource = "lbw"; value }
          in
          ignore (Planner.Session.update session delta))
        deltas;
      let warm = Planner.Session.plan session in
      let cold =
        Planner.plan
          (Planner.request ~config
             (Planner.Session.topology session)
             app ~leveling)
      in
      let close a b = Float.abs (a -. b) <= 1e-6 in
      match (warm.Planner.result, cold.Planner.result) with
      | Ok p1, Ok p2 -> close p1.Plan.cost_lb p2.Plan.cost_lb
      | ( Error (Planner.Search_limit { best_f = f1; _ }),
          Error (Planner.Search_limit { best_f = f2; _ }) ) ->
          close f1 f2
      | Error r1, Error r2 -> r1 = r2
      | _ -> false)

(* ---------------- stable link identities ---------------- *)

(* The tentpole contract, pure topology level: across ANY sequence of
   mutations, a link id either still denotes the same physical link
   (same endpoints, same kind) or raises Stale_link from every id-keyed
   accessor — it never aliases a surviving neighbor, the failure mode of
   the old dense renumbering.  The id space and node count never shrink,
   the dense iteration view is exactly the live ids in ascending order,
   and no live link touches a failed node. *)
let prop_link_identity_stable =
  let arb =
    Q.pair (Q.int_range 0 3)
      (Q.list_of_size (Q.Gen.int_range 1 8)
         (Q.triple (Q.int_range 0 3) Q.small_nat (Q.float_range 1. 200.)))
  in
  Q.Test.make ~count:600
    ~name:"link ids denote the same physical link forever" arb
    (fun (shape, deltas) ->
      let module Mutate = Sekitei_network.Mutate in
      let t0 =
        match shape with
        | 0 -> G.line 5
        | 1 -> G.ring 6
        | 2 -> G.grid 3 3
        | _ -> G.star 4
      in
      let pick_live t site =
        let live = T.links t in
        if Array.length live = 0 then None
        else Some (live.(site mod Array.length live)).T.link_id
      in
      let apply t (op, site, v) =
        match op with
        | 0 -> (
            match pick_live t site with
            | None -> t
            | Some id -> Mutate.set_link_resource t id "lbw" v)
        | 1 -> Mutate.set_node_resource t (site mod T.node_count t) "cpu" v
        | 2 -> (
            match pick_live t site with
            | None -> t
            | Some id -> Mutate.remove_link t id)
        | _ -> (
            let alive =
              List.filter (T.node_alive t)
                (List.init (T.node_count t) Fun.id)
            in
            match alive with
            | [] -> t
            | _ -> Mutate.fail_node t (List.nth alive (site mod List.length alive)))
      in
      let t = List.fold_left apply t0 deltas in
      let ids = List.init (T.link_id_bound t) Fun.id in
      T.node_count t = T.node_count t0
      && T.link_id_bound t = T.link_id_bound t0
      && List.for_all
           (fun id ->
             if T.link_is_live t id then
               let l = T.get_link t id and o = T.get_link t0 id in
               l.T.ends = o.T.ends && l.T.kind = o.T.kind
             else
               (match T.get_link t id with
               | _ -> false
               | exception T.Stale_link i -> i = id)
               && (match T.link_resource t id "lbw" with
                  | _ -> false
                  | exception T.Stale_link _ -> true)
               && (match T.peer t id 0 with
                  | _ -> false
                  | exception T.Stale_link _ -> true))
           ids
      && Array.to_list (Array.map (fun l -> l.T.link_id) (T.links t))
         = List.filter (T.link_is_live t) ids
      && Array.for_all
           (fun (l : T.link) ->
             let a, b = l.T.ends in
             T.node_alive t a && T.node_alive t b)
           (T.links t))

(* The same contract observed end to end through the planner: after
   random delta sequences (including removals and node failures), the
   warm re-plan still agrees with a cold plan, and every link id the
   plan or its audit report exposes is live in the current topology and
   denotes exactly the link the Cross action claims to traverse. *)
let prop_plan_ids_stable =
  let diamond () =
    let topo =
      T.make
        ~nodes:
          (List.init 4 (fun i -> T.node ~cpu:30. i (Printf.sprintf "n%d" i)))
        ~links:
          [
            T.link ~bw:150. T.Lan 0 0 1;
            T.link ~bw:150. T.Lan 1 1 3;
            T.link ~bw:150. T.Lan 2 0 2;
            T.link ~bw:150. T.Lan 3 2 3;
          ]
    in
    let app = Media.app ~server:0 ~client:3 () in
    (topo, app, Media.leveling Media.C app)
  in
  let arb =
    Q.list_of_size (Q.Gen.int_range 1 3)
      (Q.triple (Q.int_range 0 3) Q.small_nat (Q.float_range 40. 160.))
  in
  Q.Test.make ~count:20 ~name:"plan/audit link ids stay valid across deltas"
    arb
    (fun deltas ->
      let module Session = Planner.Session in
      let module Action = Sekitei_core.Action in
      let module Audit = Sekitei_core.Audit in
      let topo, app, leveling = diamond () in
      let config =
        {
          Planner.default_config with
          Planner.rg_max_expansions = 5_000;
          slrg_query_budget = 1_000_000;
        }
      in
      let session = Session.create (Planner.request ~config topo app ~leveling) in
      ignore (Session.plan session);
      List.iter
        (fun (op, site, v) ->
          let t = Session.topology session in
          let live = T.links t in
          let live_id () = (live.(site mod Array.length live)).T.link_id in
          let delta =
            match op with
            | 0 when Array.length live > 0 ->
                Some
                  (Session.Set_link_resource
                     { link = live_id (); resource = "lbw"; value = v })
            | 1 ->
                Some
                  (Session.Set_node_resource
                     { node = site mod 4; resource = "cpu"; value = v })
            | 2 when Array.length live > 1 ->
                Some (Session.Remove_link { link = live_id () })
            | _ -> (
                (* only fail relay nodes, keeping the app's endpoints *)
                match List.filter (T.node_alive t) [ 1; 2 ] with
                | [] -> None
                | cand ->
                    Some
                      (Session.Fail_node
                         { node = List.nth cand (site mod List.length cand) }))
          in
          Option.iter (fun d -> ignore (Session.update session d)) delta)
        deltas;
      let warm = Session.plan session in
      let cur = Session.topology session in
      let cold = Planner.plan (Planner.request ~config cur app ~leveling) in
      let closef a b = Float.abs (a -. b) <= 1e-6 in
      let same_outcome =
        match (warm.Planner.result, cold.Planner.result) with
        | Ok p1, Ok p2 -> closef p1.Plan.cost_lb p2.Plan.cost_lb
        | ( Error (Planner.Search_limit { best_f = f1; _ }),
            Error (Planner.Search_limit { best_f = f2; _ }) ) ->
            closef f1 f2
        | Error r1, Error r2 -> r1 = r2
        | _ -> false
      in
      same_outcome
      &&
      match warm.Planner.result with
      | Error _ -> true
      | Ok p ->
          List.for_all
            (fun (a : Action.t) ->
              match a.Action.kind with
              | Action.Place { node; _ } -> T.node_alive cur node
              | Action.Cross { link; src; dst; _ } ->
                  T.link_is_live cur link
                  && (let l = T.get_link cur link in
                      l.T.ends = (src, dst) || l.T.ends = (dst, src))
                  && T.node_alive cur src && T.node_alive cur dst)
            p.Plan.steps
          &&
          let pb = Compile.compile cur app leveling in
          (match Audit.of_plan pb p with
          | Error _ -> false
          | Ok a ->
              List.for_all
                (fun (r : Audit.link_row) ->
                  T.link_is_live cur r.Audit.link
                  && (T.get_link cur r.Audit.link).T.kind = r.Audit.kind)
                a.Audit.links))

(* ---------------- leveling propagation property ---------------- *)

let prop_propagation_wellformed =
  Q.Test.make ~count:50 ~name:"propagated cutpoints strictly increasing"
    (Q.list_of_size (Q.Gen.int_range 1 5) (Q.float_range 1. 300.))
    (fun cuts ->
      let cuts = List.sort_uniq compare cuts in
      let app = Media.app ~server:0 ~client:1 () in
      let l =
        Leveling.propagate app
          (Leveling.with_iface Leveling.empty "M" "ibw" cuts)
      in
      List.for_all
        (fun (_, _, derived) ->
          let rec increasing = function
            | a :: (b :: _ as rest) -> a < b && increasing rest
            | _ -> true
          in
          increasing derived && List.for_all (fun c -> c > 0.) derived)
        (Leveling.iface_cutpoints l))

(* ---------------- certification and pruning ---------------- *)

module Certify = Sekitei_analysis.Certify
module D = Sekitei_util.Diagnostic
module Action = Sekitei_core.Action

let plan_of inst =
  let topo, app, leveling = media_line_instance inst in
  let config =
    { Planner.default_config with Planner.rg_max_expansions = 5_000 }
  in
  let pb = Compile.compile topo app leveling in
  match (Planner.plan (Planner.request ~config topo app ~leveling)).Planner.result with
  | Ok p -> Some (pb, p)
  | Error _ -> None

(* Every plan the planner emits passes the independent certifier. *)
let prop_plans_certify =
  Q.Test.make ~count:25 ~name:"emitted plans certify clean" arb_instance
    (fun inst ->
      match plan_of inst with
      | None -> true
      | Some (pb, p) -> Certify.check pb p = [])

let first_code pb p =
  match Certify.check pb p with
  | [] -> None
  | d :: _ -> Some d.D.code

(* Doctored plans are rejected, each with the matching SKT code: a
   reversed plan breaks a precondition, a shifted input level cannot be
   met by any stream, a bumped per-action bound disagrees with the
   specification's cost formula, and a rerouted crossing names a link
   that does not join its endpoints. *)
let prop_mutations_rejected =
  Q.Test.make ~count:25 ~name:"mutated plans are rejected" arb_instance
    (fun inst ->
      match plan_of inst with
      | None -> true
      | Some (pb, p) ->
          let reversed_ok =
            List.length p.Plan.steps < 2
            || first_code pb { p with Plan.steps = List.rev p.Plan.steps }
               = Some "SKT201"
          in
          let shifted =
            List.map
              (fun (a : Action.t) ->
                {
                  a with
                  Action.in_levels =
                    Array.map
                      (fun (i, ivl) ->
                        (i, I.make (I.lo ivl +. 1000.) (I.hi ivl +. 1000.)))
                      a.Action.in_levels;
                })
              p.Plan.steps
          in
          let level_ok =
            List.for_all
              (fun (a : Action.t) -> Array.length a.Action.in_levels = 0)
              p.Plan.steps
            || first_code pb { p with Plan.steps = shifted } = Some "SKT202"
          in
          let bumped =
            match p.Plan.steps with
            | a :: rest ->
                { a with Action.cost_lb = a.Action.cost_lb +. 1. } :: rest
            | [] -> []
          in
          let cost_ok =
            p.Plan.steps = []
            || first_code pb { p with Plan.steps = bumped } = Some "SKT207"
          in
          let rerouted =
            List.map
              (fun (a : Action.t) ->
                match a.Action.kind with
                | Action.Cross { iface; link; src; dst } ->
                    {
                      a with
                      Action.kind =
                        Action.Cross { iface; link = 1 - link; src; dst };
                    }
                | Action.Place _ -> a)
              p.Plan.steps
          in
          let reroute_ok =
            List.for_all
              (fun (a : Action.t) ->
                match a.Action.kind with
                | Action.Cross _ -> false
                | Action.Place _ -> true)
              p.Plan.steps
            || first_code pb { p with Plan.steps = rerouted } = Some "SKT208"
          in
          reversed_ok && level_ok && cost_ok && reroute_ok)

(* Dead-action pruning is invisible to the search: an instance whose
   leveling carries a cutpoint above the achievable maximum (the media
   server supplies 200) prunes the unreachable levels, and the RG run
   over the pruned problem returns bit-for-bit the plan of the unpruned
   one — same labels, same cost bound, same realized cost. *)
let prop_prune_bit_identical =
  Q.Test.make ~count:15 ~name:"pruning leaves plans bit-identical"
    arb_instance
    (fun inst ->
      let bw1, bw2, cpu, demand = inst in
      let topo, app, _ = media_line_instance (bw1, bw2, cpu, demand) in
      let leveling =
        Leveling.propagate app
          (Leveling.with_iface Leveling.empty "M" "ibw"
             [ demand; demand +. 10.; 150.; 250. ])
      in
      let pruned = Compile.compile ~prune:true topo app leveling in
      let unpruned = Compile.compile ~prune:false topo app leveling in
      let search pb =
        let plrg = Plrg.build pb in
        let slrg = Slrg.create pb plrg in
        Rg.search ~max_expansions:5_000 pb plrg slrg
      in
      pruned.Problem.pruned_actions > 0
      &&
      match (search pruned, search unpruned) with
      | (Rg.Solution (t1, m1, c1), _), (Rg.Solution (t2, m2, c2), _) ->
          List.map (fun (a : Action.t) -> a.Action.label) t1
          = List.map (fun (a : Action.t) -> a.Action.label) t2
          && Float.equal c1 c2
          && Float.equal m1.Replay.realized_cost m2.Replay.realized_cost
      | (Rg.Exhausted, _), (Rg.Exhausted, _) -> true
      | ( (Rg.Budget_exceeded { best_f = f1; _ }, _),
          (Rg.Budget_exceeded { best_f = f2; _ }, _) ) ->
          (* Neither search finished inside the budget: pruning must not
             have changed the admissible bound either. *)
          Float.equal f1 f2
      | _ -> false)

let to_alcotest = List.map QCheck_alcotest.to_alcotest

let suite =
  to_alcotest
    [
      prop_inter_subset;
      prop_inter_commutative;
      prop_hull_superset;
      prop_add_sound;
      prop_scale_width;
      prop_interval_ops_wellformed;
      prop_cutpoints_partition;
      prop_parse_print_roundtrip;
      prop_simplify_preserves;
      prop_interval_encloses;
      prop_monotonicity_sampled;
      prop_heap_sorts;
      prop_prng_bounds;
      prop_transit_stub_connected;
      prop_planner_sound;
      prop_telemetry_transparent;
      prop_h_admissible;
      prop_repair_equals_bruteforce;
      prop_slrg_harvest_agrees;
      prop_defer_identical;
      prop_warm_equals_cold;
      prop_link_identity_stable;
      prop_plan_ids_stable;
      prop_propagation_wellformed;
      prop_plans_certify;
      prop_mutations_rejected;
      prop_prune_bit_identical;
    ]
