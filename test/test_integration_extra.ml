(* Cross-cutting integration tests: scenario E end-to-end with link-level
   checks, DSL round-trips for domains with cross conditions and
   multi-property interfaces, CLI-facing spec files. *)

module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Compile = Sekitei_core.Compile
module Audit = Sekitei_core.Audit
module Media = Sekitei_domains.Media
module Webservice = Sekitei_domains.Webservice
module Gridflow = Sekitei_domains.Gridflow
module Dsl = Sekitei_spec.Dsl
module Model = Sekitei_spec.Model
module Scenarios = Sekitei_harness.Scenarios

let contains hay needle = Sekitei_spec.Str_split.split_once hay needle <> None

let test_audit_scenario_e () =
  (* The E plan carries checked link levels; the audit must still balance
     exactly (4 links x 65 on Small). *)
  let sc = Scenarios.small () in
  let leveling = Media.leveling Media.E sc.Scenarios.app in
  let pb = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
  match (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling)).Planner.result with
  | Error r -> Alcotest.failf "no plan: %a" Planner.pp_failure r
  | Ok p -> (
      match Audit.of_plan pb p with
      | Error e -> Alcotest.failf "audit: %s" e
      | Ok a ->
          Alcotest.(check int) "four links" 4 (List.length a.Audit.links);
          List.iter
            (fun (r : Audit.link_row) ->
              Alcotest.(check (float 1e-6)) "65 each" 65. r.Audit.used)
            a.Audit.links)

let test_webservice_dsl_roundtrip () =
  (* Cross conditions (link.secure >= 1) survive printing and reparsing,
     and the reparsed spec plans identically. *)
  let secure = [ 1; 0; 1 ] in
  let topo = Webservice.topology ~secure in
  let app = Webservice.app ~backend:0 ~consumer:3 () in
  let leveling = Webservice.leveling app in
  let text = Dsl.print_document ~topo app leveling in
  Alcotest.(check bool) "cross condition printed" true
    (contains text "condition link.secure >= 1");
  let doc = Dsl.parse_document text in
  let topo2 = Option.get doc.Dsl.topo in
  match
    ( (Planner.plan (Planner.request topo app ~leveling)).Planner.result,
      (Planner.plan (Planner.request topo2 doc.Dsl.app ~leveling:doc.Dsl.leveling)).Planner.result )
  with
  | Ok p1, Ok p2 ->
      Alcotest.(check int) "same length" (Plan.length p1) (Plan.length p2);
      Alcotest.(check (float 1e-9)) "same bound" p1.Plan.cost_lb p2.Plan.cost_lb
  | _ -> Alcotest.fail "round-trip changed plannability"

let test_gridflow_dsl_roundtrip () =
  (* Multi-property interfaces (ibw + lat) round-trip, including latency
     cross transforms and non-zero property defaults. *)
  let topo = Gridflow.topology ~link_lats:[ 5.; 5. ] ~bws:[ 150.; 150. ] in
  let app = Gridflow.app ~storage:0 ~consumer:2 () in
  let leveling = Gridflow.leveling app in
  let text = Dsl.print_document ~topo app leveling in
  Alcotest.(check bool) "latency transform printed" true
    (contains text "cross lat := lat + link.lat");
  let doc = Dsl.parse_document text in
  let topo2 = Option.get doc.Dsl.topo in
  Alcotest.(check (float 0.)) "link lat preserved" 5.
    (Sekitei_network.Topology.link_resource topo2 0 "lat");
  match (Planner.plan (Planner.request topo2 doc.Dsl.app ~leveling:doc.Dsl.leveling)).Planner.result with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "reparsed gridflow: %a" Planner.pp_failure r

let test_spec_file_on_disk () =
  (* The shipped example spec parses, validates and plans. *)
  let path = "../examples/specs/video.spec" in
  let path =
    if Sys.file_exists path then path else "examples/specs/video.spec"
  in
  if Sys.file_exists path then begin
    let doc = Dsl.load_file path in
    let topo = Option.get doc.Dsl.topo in
    Alcotest.(check int) "issues" 0
      (List.length (Sekitei_spec.Validate.check topo doc.Dsl.app));
    match (Planner.plan (Planner.request topo doc.Dsl.app ~leveling:doc.Dsl.leveling)).Planner.result with
    | Ok p -> Alcotest.(check int) "4 actions" 4 (Plan.length p)
    | Error r -> Alcotest.failf "no plan: %a" Planner.pp_failure r
  end

let test_goal_and_available_mix () =
  (* A Placed goal and an Available goal in the same problem. *)
  let sc = Scenarios.tiny () in
  let app =
    {
      sc.Scenarios.app with
      Model.goals =
        [ Model.Placed ("Client", 1); Model.Available ("M", "ibw", 1, 95.) ];
    }
  in
  let leveling = Media.leveling Media.C app in
  match (Planner.plan (Planner.request sc.Scenarios.topo app ~leveling)).Planner.result with
  | Ok p ->
      (* the sink adds one zero-cost placement *)
      Alcotest.(check int) "8 actions" 8 (Plan.length p)
  | Error r -> Alcotest.failf "no plan: %a" Planner.pp_failure r

let test_available_goal_too_high () =
  let sc = Scenarios.tiny () in
  let app =
    { sc.Scenarios.app with Model.goals = [ Model.Available ("M", "ibw", 1, 150.) ] }
  in
  let leveling = Media.leveling Media.C app in
  match (Planner.plan (Planner.request sc.Scenarios.topo app ~leveling)).Planner.result with
  | Ok _ -> Alcotest.fail "cannot deliver 150 over a 70-unit link"
  | Error _ -> ()

let suite =
  [
    ("audit scenario E", `Quick, test_audit_scenario_e);
    ("webservice DSL round-trip", `Quick, test_webservice_dsl_roundtrip);
    ("gridflow DSL round-trip", `Quick, test_gridflow_dsl_roundtrip);
    ("spec file on disk", `Quick, test_spec_file_on_disk);
    ("mixed goal kinds", `Quick, test_goal_and_available_mix);
    ("available goal too high", `Quick, test_available_goal_too_high);
  ]
