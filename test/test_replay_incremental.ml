(* Tests for the incremental-replay search engine:

   - the Replay snapshot/extend API agrees with from-scratch Replay.run
     over random action tails (accept/reject outcome AND metrics);
   - extend is persistent (branching from one parent never cross-talks);
   - RG duplicate detection never changes the returned plan cost on the
     Tiny/Small scenarios;
   - the machine-readable bench pipeline emits schema-valid JSON. *)

module Q = QCheck
module Compile = Sekitei_core.Compile
module Problem = Sekitei_core.Problem
module Action = Sekitei_core.Action
module Replay = Sekitei_core.Replay
module Plrg = Sekitei_core.Plrg
module Slrg = Sekitei_core.Slrg
module Rg = Sekitei_core.Rg
module Media = Sekitei_domains.Media
module Scenarios = Sekitei_harness.Scenarios
module Bench_json = Sekitei_harness.Bench_json
module G = Sekitei_network.Generators
module T = Sekitei_network.Topology

let tiny_pb level =
  let app = Media.app ~server:0 ~client:1 () in
  let leveling = Media.leveling level app in
  Compile.compile (G.line_kinds [ T.Wan ]) app leveling

(* ---------------- extend == run equivalence ---------------- *)

let run_incremental pb ~mode tail =
  let rec go rs = function
    | [] -> Ok (Replay.rstate_metrics pb rs)
    | a :: rest -> (
        match Replay.extend pb ~mode rs a with
        | Ok rs' -> go rs' rest
        | Error f -> Error f)
  in
  go (Replay.initial pb) tail

let same_float a b = (Float.is_nan a && Float.is_nan b) || a = b

let same_metrics (a : Replay.metrics) (b : Replay.metrics) =
  same_float a.Replay.realized_cost b.Replay.realized_cost
  && same_float a.Replay.lan_peak b.Replay.lan_peak
  && same_float a.Replay.wan_peak b.Replay.wan_peak
  && same_float a.Replay.lan_total b.Replay.lan_total
  && same_float a.Replay.wan_total b.Replay.wan_total
  && a.Replay.node_cpu_used = b.Replay.node_cpu_used
  && a.Replay.link_used = b.Replay.link_used
  && a.Replay.delivered = b.Replay.delivered

let same_outcome from_scratch incremental =
  match (from_scratch, incremental) with
  | Ok m1, Ok m2 -> same_metrics m1 m2
  | Error (f1 : Replay.failure), Error f2 ->
      f1.Replay.failed_index = f2.Replay.failed_index
      && f1.Replay.failed_action = f2.Replay.failed_action
      && f1.Replay.reason = f2.Replay.reason
  | _ -> false

let tail_gen pb =
  let n = Array.length pb.Problem.actions in
  Q.Gen.(
    map
      (List.map (fun i -> pb.Problem.actions.(i)))
      (list_size (0 -- 8) (int_bound (n - 1))))

let arb_tail pb =
  Q.make
    ~print:(fun tail ->
      String.concat "; " (List.map (fun a -> a.Action.label) tail))
    (tail_gen pb)

let prop_equiv level mode mode_name =
  let pb = tiny_pb level in
  Q.Test.make ~count:500
    ~name:(Printf.sprintf "extend == run (%s)" mode_name)
    (arb_tail pb)
    (fun tail ->
      same_outcome (Replay.run pb ~mode tail) (run_incremental pb ~mode tail))

let prop_equiv_optimistic = prop_equiv Media.C Replay.Optimistic "optimistic, C"
let prop_equiv_from_init = prop_equiv Media.C Replay.From_init "from-init, C"

let prop_equiv_regression =
  prop_equiv Media.C Replay.Regression "regression, C"

let prop_equiv_greedy =
  prop_equiv Media.A Replay.Optimistic "optimistic, greedy A"

let prop_equiv_regression_e =
  prop_equiv Media.E Replay.Regression "regression, E"

(* ---------------- persistence of parent states ---------------- *)

let test_extend_persistent () =
  let pb = tiny_pb Media.C in
  let parent = Replay.initial pb in
  let splitter =
    Array.to_list pb.Problem.actions
    |> List.filter (fun (a : Action.t) ->
           match a.Action.kind with
           | Action.Place { comp; node = 0 } ->
               Problem.comp_index pb "Splitter" = comp
           | _ -> false)
    |> List.hd
  in
  let snapshot rs = Replay.rstate_metrics pb rs in
  let before = snapshot parent in
  (match Replay.extend pb ~mode:Replay.Optimistic parent splitter with
  | Ok child ->
      Alcotest.(check bool)
        "child advanced" true
        (Replay.rstate_length child = 1 && Replay.rstate_cost child >= 0.)
  | Error f -> Alcotest.failf "extend failed: %s" f.Replay.reason);
  (* The parent must be untouched and re-extensible with identical results. *)
  Alcotest.(check bool) "parent unchanged" true (same_metrics before (snapshot parent));
  match
    ( Replay.extend pb ~mode:Replay.Optimistic parent splitter,
      Replay.extend pb ~mode:Replay.Optimistic parent splitter )
  with
  | Ok a, Ok b ->
      Alcotest.(check bool)
        "re-extension deterministic" true
        (same_metrics (Replay.rstate_metrics pb a) (Replay.rstate_metrics pb b))
  | _ -> Alcotest.fail "re-extension failed"

(* ---------------- duplicate detection preserves plan cost ------------ *)

let search_cost ~dedup pb =
  let plrg = Plrg.build pb in
  let slrg = Slrg.create pb plrg in
  match Rg.search ~dedup pb plrg slrg with
  | Rg.Solution (_, _, cost), _ -> Some cost
  | (Rg.Exhausted | Rg.Budget_exceeded _ | Rg.Deadline_reached _), _ -> None

let check_dedup_neutral name pb expected =
  let with_dedup = search_cost ~dedup:true pb in
  let without = search_cost ~dedup:false pb in
  Alcotest.(check (option (float 1e-9)))
    (name ^ ": dedup on == off") without with_dedup;
  Alcotest.(check (option (float 1e-9))) (name ^ ": cost") expected with_dedup

let test_dedup_tiny () =
  check_dedup_neutral "tiny-C" (tiny_pb Media.C) (Some 52.45)

let test_dedup_small () =
  let sc = Scenarios.small () in
  let leveling = Media.leveling Media.C sc.Scenarios.app in
  let pb = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
  check_dedup_neutral "small-C" pb (Some 76.)

let test_dedup_counts_duplicates () =
  let pb = tiny_pb Media.C in
  let plrg = Plrg.build pb in
  let slrg = Slrg.create pb plrg in
  let _, s = Rg.search ~dedup:true pb plrg slrg in
  Alcotest.(check bool) "duplicates detected" true (s.Rg.duplicates > 0);
  let slrg' = Slrg.create pb plrg in
  let _, s' = Rg.search ~dedup:false pb plrg slrg' in
  Alcotest.(check int) "dedup off counts none" 0 s'.Rg.duplicates;
  Alcotest.(check bool)
    "dedup shrinks the search" true
    (s.Rg.created <= s'.Rg.created)

(* ---------------- bench JSON schema ---------------- *)

let test_bench_json_schema () =
  let r = Bench_json.measure (Scenarios.tiny ()) Media.C in
  Alcotest.(check bool) "actions positive" true (r.Bench_json.actions > 0);
  Alcotest.(check bool) "created positive" true (r.Bench_json.rg_created > 0);
  let doc = Bench_json.to_json [ r ] in
  (match Bench_json.validate doc with
  | Ok n -> Alcotest.(check int) "one record" 1 n
  | Error e -> Alcotest.failf "schema: %s" e);
  Alcotest.(check bool) "phase timings cover the search" true
    (r.Bench_json.plrg_ms >= 0.
    && r.Bench_json.slrg_ms >= 0.
    && r.Bench_json.rg_ms >= 0.
    && r.Bench_json.compile_ms >= 0.);
  Alcotest.(check bool) "slrg cache counters present and sane" true
    (r.Bench_json.slrg_cache_hits >= 0
    && r.Bench_json.slrg_suffix_harvested >= 0
    && r.Bench_json.slrg_bound_promoted >= 0);
  let tagged = Bench_json.to_json ~tag:"test" [ r; r ] in
  (match Bench_json.validate tagged with
  | Ok n -> Alcotest.(check int) "two records" 2 n
  | Error e -> Alcotest.failf "schema (tagged): %s" e);
  (match Bench_json.parse_check tagged with
  | Ok n -> Alcotest.(check int) "parses as two records" 2 n
  | Error e -> Alcotest.failf "parse_check: %s" e);
  (match Bench_json.parse_check "[{\"scenario\": \"x\"}]" with
  | Ok _ -> Alcotest.fail "incomplete record accepted"
  | Error _ -> ());
  match Bench_json.validate "{\"not\": \"an array\"}" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_equiv_optimistic;
      prop_equiv_from_init;
      prop_equiv_regression;
      prop_equiv_greedy;
      prop_equiv_regression_e;
    ]
  @ [
      ("extend is persistent", `Quick, test_extend_persistent);
      ("dedup neutral on tiny-C", `Quick, test_dedup_tiny);
      ("dedup neutral on small-C", `Quick, test_dedup_small);
      ("dedup counts duplicates", `Quick, test_dedup_counts_duplicates);
      ("bench json schema", `Quick, test_bench_json_schema);
    ]
