(* Unit tests for Sekitei_core.Plrg and Sekitei_core.Slrg. *)

module Compile = Sekitei_core.Compile
module Problem = Sekitei_core.Problem
module Prop = Sekitei_core.Prop
module Plrg = Sekitei_core.Plrg
module Slrg = Sekitei_core.Slrg
module Media = Sekitei_domains.Media
module Model = Sekitei_spec.Model
module G = Sekitei_network.Generators
module T = Sekitei_network.Topology

let tiny level =
  let app = Media.app ~server:0 ~client:1 () in
  Compile.compile (G.line_kinds [ T.Wan ]) app (Media.leveling level app)

let test_init_props_cost_zero () =
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  Array.iteri
    (fun pid holds ->
      if holds then
        Alcotest.(check (float 0.)) "init prop free" 0. (Plrg.cost plrg pid))
    pb.Problem.init

let test_goal_reachable () =
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  Alcotest.(check bool) "reachable" true (Plrg.goals_reachable plrg);
  Array.iter
    (fun g ->
      Alcotest.(check bool) "finite goal cost" true
        (Float.is_finite (Plrg.cost plrg g)))
    pb.Problem.goal_props

let test_goal_unreachable_partitioned () =
  (* No links at all: the client node can never receive M. *)
  let app = Media.app ~server:0 ~client:1 () in
  let topo = T.make ~nodes:[ T.node 0 "n0"; T.node 1 "n1" ] ~links:[] in
  let pb = Compile.compile topo app (Media.leveling Media.C app) in
  let plrg = Plrg.build pb in
  Alcotest.(check bool) "unreachable" false (Plrg.goals_reachable plrg)

let test_costs_admissible () =
  (* PLRG costs are lower bounds: the known 7-action plan costs 52.45,
     and the goal's PLRG estimate must not exceed it. *)
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let goal = pb.Problem.goal_props.(0) in
  Alcotest.(check bool) "cost admissible" true (Plrg.cost plrg goal <= 52.45 +. 1e-9)

let test_costs_monotone_structure () =
  (* Availability of M on the far node costs strictly more than on the
     server node (it needs at least one action). *)
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let m = Problem.iface_index pb "M" in
  let near = Prop.avail_id pb.Problem.props ~iface:m ~node:0 ~level:2 in
  let far = Prop.avail_id pb.Problem.props ~iface:m ~node:1 ~level:2 in
  Alcotest.(check (float 0.)) "near free" 0. (Plrg.cost plrg near);
  Alcotest.(check bool) "far costs" true (Plrg.cost plrg far > 0.)

let test_relevant_actions_subset () =
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let relevant = Plrg.relevant_actions plrg in
  Alcotest.(check bool) "nonempty" true (relevant <> []);
  Alcotest.(check bool) "subset of all" true
    (List.for_all (fun aid -> aid >= 0 && aid < Array.length pb.Problem.actions) relevant);
  List.iter
    (fun aid ->
      Alcotest.(check bool) "flag agrees" true (Plrg.action_relevant plrg aid))
    relevant

let test_stats_counts () =
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let props, actions = Plrg.stats plrg in
  Alcotest.(check bool) "props positive" true (props > 0);
  Alcotest.(check int) "action count matches list" actions
    (List.length (Plrg.relevant_actions plrg))

(* ---------------- SLRG ---------------- *)

let test_slrg_empty_set () =
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let slrg = Slrg.create pb plrg in
  Alcotest.(check (float 0.)) "empty set free" 0. (Slrg.query slrg [])

let test_slrg_init_set () =
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let slrg = Slrg.create pb plrg in
  let server = Problem.comp_index pb "Server" in
  let placed = Prop.placed_id pb.Problem.props ~comp:server ~node:0 in
  Alcotest.(check (float 0.)) "init prop free" 0. (Slrg.query slrg [ placed ])

let test_slrg_at_least_plrg () =
  (* The SLRG estimate dominates the PLRG estimate (it accounts for
     serialization). *)
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let slrg = Slrg.create pb plrg in
  let goal = pb.Problem.goal_props.(0) in
  Alcotest.(check bool) "slrg >= plrg" true
    (Slrg.query slrg [ goal ] >= Plrg.cost plrg goal -. 1e-9)

let test_slrg_admissible () =
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let slrg = Slrg.create pb plrg in
  let goal = pb.Problem.goal_props.(0) in
  (* The real optimal plan bound is 52.45. *)
  Alcotest.(check bool) "admissible" true (Slrg.query slrg [ goal ] <= 52.45 +. 1e-9)

let test_slrg_set_cost_exceeds_singletons () =
  (* Achieving two distant props together costs at least as much as the
     dearest one alone. *)
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let slrg = Slrg.create pb plrg in
  let t = Problem.iface_index pb "T" and i = Problem.iface_index pb "I" in
  let pt = Prop.avail_id pb.Problem.props ~iface:t ~node:1 ~level:1 in
  let pi = Prop.avail_id pb.Problem.props ~iface:i ~node:1 ~level:1 in
  let both = Slrg.query slrg [ pt; pi ] in
  Alcotest.(check bool) "pair >= each" true
    (both >= Slrg.query slrg [ pt ] -. 1e-9
    && both >= Slrg.query slrg [ pi ] -. 1e-9)

let test_slrg_memoized () =
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let slrg = Slrg.create pb plrg in
  let goal = pb.Problem.goal_props.(0) in
  let first = Slrg.query slrg [ goal ] in
  let nodes_after_first = Slrg.nodes_generated slrg in
  let second = Slrg.query slrg [ goal ] in
  Alcotest.(check (float 0.)) "same answer" first second;
  Alcotest.(check int) "no new nodes" nodes_after_first (Slrg.nodes_generated slrg)

let test_slrg_unreachable_infinite () =
  let app = Media.app ~server:0 ~client:1 () in
  let topo = T.make ~nodes:[ T.node 0 "n0"; T.node 1 "n1" ] ~links:[] in
  let pb = Compile.compile topo app (Media.leveling Media.C app) in
  let plrg = Plrg.build pb in
  let slrg = Slrg.create pb plrg in
  let goal = pb.Problem.goal_props.(0) in
  Alcotest.(check bool) "infinite" false
    (Float.is_finite (Slrg.query slrg [ goal ]))

let test_slrg_budget_fallback_admissible () =
  (* With an absurdly small budget the query still returns an admissible
     bound (>= the PLRG value, <= the true optimum). *)
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let slrg = Slrg.create ~query_budget:1 pb plrg in
  let goal = pb.Problem.goal_props.(0) in
  let v = Slrg.query slrg [ goal ] in
  Alcotest.(check bool) "between plrg and optimum" true
    (v >= Plrg.cost plrg goal -. 1e-9 && v <= 52.45 +. 1e-9)

let test_slrg_cache_hits_counted () =
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let slrg = Slrg.create pb plrg in
  let goal = pb.Problem.goal_props.(0) in
  ignore (Slrg.query slrg [ goal ]);
  Alcotest.(check int) "first query misses" 0 (Slrg.cache_hits slrg);
  ignore (Slrg.query slrg [ goal ]);
  Alcotest.(check int) "second query hits" 1 (Slrg.cache_hits slrg)

let test_slrg_bound_escalation () =
  (* A query_budget:1 oracle starts with only an exhausted bound for the
     goal set; re-queries escalate the budget geometrically, the answers
     are monotone non-decreasing (each run keeps the strongest bound),
     and within the escalation cap the oracle converges to the value a
     huge-budget oracle computes outright, promoting the cached bound to
     a solved entry on the way. *)
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let small = Slrg.create ~query_budget:1 pb plrg in
  let big = Slrg.create ~query_budget:1_000_000 pb plrg in
  let goal = pb.Problem.goal_props.(0) in
  let exact = Slrg.query big [ goal ] in
  let prev = ref neg_infinity in
  let final = ref Float.nan in
  for _ = 1 to 10 do
    let v = Slrg.query small [ goal ] in
    Alcotest.(check bool) "monotone under escalation" true (v >= !prev -. 1e-9);
    prev := v;
    final := v
  done;
  Alcotest.(check (float 1e-9)) "escalates to the exact value" exact !final;
  Alcotest.(check bool) "bound promoted to solved" true
    (Slrg.bound_promoted small >= 1);
  (* Once solved, further queries are pure cache hits. *)
  let hits = Slrg.cache_hits small in
  ignore (Slrg.query small [ goal ]);
  Alcotest.(check int) "post-promotion query hits cache" (hits + 1)
    (Slrg.cache_hits small)

let test_slrg_harvest_agrees_with_fresh () =
  (* Every suffix-harvested solved entry must equal what a fresh,
     effectively unbounded oracle computes for the same set from
     scratch — harvesting is a cache fill, not an approximation. *)
  let pb = tiny Media.C in
  let plrg = Plrg.build pb in
  let slrg = Slrg.create pb plrg in
  let goal = pb.Problem.goal_props.(0) in
  ignore (Slrg.query slrg [ goal ]);
  Alcotest.(check bool) "harvested beyond the root" true
    (Slrg.suffix_harvested slrg > 0);
  let fresh = Slrg.create ~query_budget:1_000_000 pb plrg in
  let checked = ref 0 in
  Slrg.iter_solved slrg (fun set cost ->
      incr checked;
      let c = Slrg.query_set fresh (Array.copy set) in
      let agree =
        if Float.is_finite cost || Float.is_finite c then
          Float.abs (c -. cost) <= 1e-6
        else true
      in
      Alcotest.(check bool) "harvested entry agrees" true agree);
  Alcotest.(check bool) "solved cache non-trivial" true (!checked > 1)

(* ---------------- Propset interner ---------------- *)

module Propset = Sekitei_core.Propset

let test_interner_canonicalizes () =
  let i = Propset.Interner.create () in
  let h1 = Propset.Interner.intern i [| 1; 4; 9 |] in
  let h2 = Propset.Interner.intern i [| 1; 4; 9 |] in
  Alcotest.(check int) "same id for equal sets" h1.Propset.id h2.Propset.id;
  Alcotest.(check bool) "physically shared representative" true
    (h1.Propset.set == h2.Propset.set);
  let h3 = Propset.Interner.intern i [| 1; 4 |] in
  Alcotest.(check bool) "distinct sets get distinct ids" true
    (h3.Propset.id <> h1.Propset.id);
  Alcotest.(check int) "two distinct sets interned" 2 (Propset.Interner.size i)

let test_interner_dense_ids () =
  let i = Propset.Interner.create () in
  let sets = [ [| 0 |]; [| 0; 1 |]; [| 2; 5; 7 |]; [||] ] in
  List.iteri
    (fun k s ->
      let h = Propset.Interner.intern i s in
      Alcotest.(check int) "ids are dense in first-seen order" k h.Propset.id;
      let back = Propset.Interner.get i h.Propset.id in
      Alcotest.(check bool) "get returns the registered handle" true
        (back.Propset.set == h.Propset.set))
    sets;
  Alcotest.(check bool) "unknown id rejected" true
    (match Propset.Interner.get i 99 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ctx_regress_memo_interns () =
  let pb = tiny Media.C in
  let ctx = Propset.make_ctx pb in
  let goal =
    Propset.intern ctx
      (Propset.canonical_array pb pb.Problem.goal_props)
  in
  let a = pb.Problem.actions.(0) in
  let r1 = Propset.regress_h ctx goal a in
  let r2 = Propset.regress_h ctx goal a in
  Alcotest.(check int) "memoized regression returns same handle"
    r1.Propset.id r2.Propset.id;
  Alcotest.(check bool) "regression result is canonical" true
    (Propset.equal r1.Propset.set
       (Propset.canonical_array pb r1.Propset.set));
  Alcotest.(check bool) "ids stay below interned count" true
    (r1.Propset.id < Propset.interned_count ctx)

let suite =
  [
    ("plrg init props cost zero", `Quick, test_init_props_cost_zero);
    ("interner canonicalizes", `Quick, test_interner_canonicalizes);
    ("interner dense ids", `Quick, test_interner_dense_ids);
    ("ctx regression memo interns", `Quick, test_ctx_regress_memo_interns);
    ("plrg goal reachable", `Quick, test_goal_reachable);
    ("plrg goal unreachable partitioned", `Quick, test_goal_unreachable_partitioned);
    ("plrg admissible", `Quick, test_costs_admissible);
    ("plrg cost structure", `Quick, test_costs_monotone_structure);
    ("plrg relevant actions", `Quick, test_relevant_actions_subset);
    ("plrg stats", `Quick, test_stats_counts);
    ("slrg empty set", `Quick, test_slrg_empty_set);
    ("slrg init set", `Quick, test_slrg_init_set);
    ("slrg dominates plrg", `Quick, test_slrg_at_least_plrg);
    ("slrg admissible", `Quick, test_slrg_admissible);
    ("slrg set vs singletons", `Quick, test_slrg_set_cost_exceeds_singletons);
    ("slrg memoized", `Quick, test_slrg_memoized);
    ("slrg unreachable infinite", `Quick, test_slrg_unreachable_infinite);
    ("slrg budget fallback", `Quick, test_slrg_budget_fallback_admissible);
    ("slrg cache hits counted", `Quick, test_slrg_cache_hits_counted);
    ("slrg bound escalation", `Quick, test_slrg_bound_escalation);
    ("slrg harvest agrees with fresh", `Quick, test_slrg_harvest_agrees_with_fresh);
  ]
