(* Plan explanations, unsolvability certificates, and the
   heuristic-quality profiler. *)

module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Explain = Sekitei_core.Explain
module Replay = Sekitei_core.Replay
module Rg = Sekitei_core.Rg
module Hquality = Sekitei_harness.Hquality
module Media = Sekitei_domains.Media
module Model = Sekitei_spec.Model
module Scenarios = Sekitei_harness.Scenarios
module T = Sekitei_network.Topology

let solve ?(config = Planner.default_config) (sc : Scenarios.t) level =
  let leveling = Media.leveling level sc.Scenarios.app in
  Planner.plan
    (Planner.request ~config sc.Scenarios.topo sc.Scenarios.app ~leveling)

let explaining = { Planner.default_config with Planner.explain = true }

let expect_plan what (report : Planner.report) =
  match report.Planner.result with
  | Ok p -> p
  | Error r -> Alcotest.failf "%s: no plan (%a)" what Planner.pp_failure r

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

(* ---------------- explanations ---------------- *)

(* The cost-lb column total must equal the plan's optimized bound
   bit-for-bit: Explain sums in the search's own accumulation order. *)
let test_explain_total_exact () =
  List.iter
    (fun (sc, level) ->
      let o = solve ~config:explaining sc level in
      let p = expect_plan "explain" o in
      match o.Planner.explanation with
      | None -> Alcotest.fail "no explanation on a solved explain run"
      | Some ex ->
          Alcotest.(check bool)
            "total equals cost_lb exactly" true
            (ex.Explain.plan_cost = p.Plan.cost_lb);
          Alcotest.(check int)
            "one step per action" (Plan.length p)
            (List.length ex.Explain.steps))
    [
      (Scenarios.tiny (), Media.C);
      (Scenarios.small (), Media.C);
      (Scenarios.small (), Media.E);
    ]

let test_explain_bindings () =
  let o = solve ~config:explaining (Scenarios.small ()) Media.C in
  let _ = expect_plan "bindings" o in
  match o.Planner.explanation with
  | None -> Alcotest.fail "no explanation"
  | Some ex ->
      List.iter
        (fun (s : Explain.step) ->
          match s.Explain.binding with
          | None -> Alcotest.failf "step %d has no binding" s.Explain.index
          | Some b ->
              Alcotest.(check bool)
                "feasible step has non-negative slack" true
                (b.Explain.slack >= 0.);
              Alcotest.(check bool)
                "consumption within capacity" true
                (b.Explain.total_used <= b.Explain.capacity);
              Alcotest.(check bool)
                "step consumption part of the total" true
                (b.Explain.step_used <= b.Explain.total_used +. 1e-9))
        ex.Explain.steps;
      let rendered = Explain.render ex in
      Alcotest.(check bool)
        "render has a totals row" true
        (contains rendered "total")

let test_explain_realized_matches_metrics () =
  let o = solve ~config:explaining (Scenarios.small ()) Media.C in
  let p = expect_plan "realized" o in
  match o.Planner.explanation with
  | None -> Alcotest.fail "no explanation"
  | Some ex ->
      Alcotest.(check (float 1e-6))
        "realized total matches replay metrics"
        p.Plan.metrics.Replay.realized_cost ex.Explain.realized_cost

let test_explain_off_by_default () =
  let o = solve (Scenarios.small ()) Media.C in
  Alcotest.(check bool) "no explanation" true (o.Planner.explanation = None);
  Alcotest.(check bool) "no certificate" true (o.Planner.certificate = None);
  Alcotest.(check bool) "no hquality" true (o.Planner.hquality = None)

(* ---------------- certificates ---------------- *)

let test_unreachable_certificate () =
  (* Partitioned network: the client's island cannot receive M. *)
  let app = Media.app ~server:0 ~client:1 () in
  let topo = T.make ~nodes:[ T.node 0 "n0"; T.node 1 "n1" ] ~links:[] in
  let o =
    Planner.plan
      (Planner.request ~config:explaining topo app
         ~leveling:(Media.leveling Media.C app))
  in
  (match o.Planner.result with
  | Ok _ -> Alcotest.fail "partitioned instance solved"
  | Error (Planner.Unreachable_goal _) -> ()
  | Error r -> Alcotest.failf "wrong reason: %a" Planner.pp_failure r);
  match o.Planner.certificate with
  | Some (Explain.Unreachable_cut { goal; cut; chain }) ->
      Alcotest.(check bool) "goal named" true (goal <> "");
      Alcotest.(check bool) "cut named" true (cut <> "");
      Alcotest.(check bool) "chain starts at the goal" true
        (match chain with g :: _ -> g = goal | [] -> false);
      Alcotest.(check bool) "chain ends at the cut" true
        (match List.rev chain with c :: _ -> c = cut | [] -> false);
      Alcotest.(check bool) "render names the cut" true
        (contains
           (Explain.render_certificate
              (Explain.Unreachable_cut { goal; cut; chain }))
           cut)
  | Some (Explain.Search_frontier _) ->
      Alcotest.fail "frontier certificate for an unreachable goal"
  | None -> Alcotest.fail "no certificate on an explained unreachable run"

let test_frontier_certificate () =
  let config = { explaining with Planner.rg_max_expansions = 1 } in
  let o = solve ~config (Scenarios.small ()) Media.C in
  (match o.Planner.result with
  | Error (Planner.Search_limit _) -> ()
  | Ok _ -> Alcotest.fail "budget-1 search solved Small-C"
  | Error r -> Alcotest.failf "wrong reason: %a" Planner.pp_failure r);
  match o.Planner.certificate with
  | Some (Explain.Search_frontier { best_f; tail; unmet }) ->
      Alcotest.(check bool) "positive admissible bound" true (best_f > 0.);
      Alcotest.(check bool) "frontier tail non-empty" true (tail <> []);
      Alcotest.(check bool) "unmet preconditions listed" true (unmet <> [])
  | Some (Explain.Unreachable_cut _) ->
      Alcotest.fail "unreachable certificate for a budget failure"
  | None -> Alcotest.fail "no certificate on an explained budget failure"

(* ---------------- heuristic quality ---------------- *)

let profiling = { Planner.default_config with Planner.profile_h = true }

let test_hquality_zero_violations () =
  List.iter
    (fun (sc, level) ->
      let o = solve ~config:profiling sc level in
      let _ = expect_plan "profile" o in
      match Hquality.of_report o with
      | None -> Alcotest.fail "no quality report on a profiled solved run"
      | Some hq ->
          Alcotest.(check int) "slrg admissible" 0 hq.Hquality.slrg.Hquality.violations;
          Alcotest.(check int) "plrg admissible" 0 hq.Hquality.plrg.Hquality.violations;
          Alcotest.(check bool) "path sampled" true (hq.Hquality.path_nodes > 0);
          Alcotest.(check bool) "wasted ratio in [0,1]" true
            (hq.Hquality.wasted_ratio >= 0. && hq.Hquality.wasted_ratio <= 1.);
          (* SLRG refines PLRG, so its error cannot be larger on average. *)
          Alcotest.(check bool) "slrg at least as informed as plrg" true
            (hq.Hquality.slrg.Hquality.mean_err
            <= hq.Hquality.plrg.Hquality.mean_err +. 1e-9))
    [
      (Scenarios.tiny (), Media.C);
      (Scenarios.tiny (), Media.D);
      (Scenarios.small (), Media.C);
      (Scenarios.small (), Media.E);
    ]

let test_hquality_samples_on_path () =
  let o = solve ~config:profiling (Scenarios.small ()) Media.C in
  let p = expect_plan "samples" o in
  match o.Planner.hquality with
  | None | Some [] -> Alcotest.fail "no samples"
  | Some samples ->
      (* One sample per push of a solution-path node, the root included:
         exactly plan length + 1 samples, with g growing along the
         recorded chain (root first). *)
      Alcotest.(check int) "one sample per path node" (Plan.length p + 1)
        (List.length samples);
      (match samples with
      | root :: _ ->
          Alcotest.(check (float 1e-9)) "root starts at g=0" 0. root.Rg.g
      | [] -> ());
      let rec monotone = function
        | (a : Rg.hsample) :: (b :: _ as rest) ->
            a.Rg.g <= b.Rg.g +. 1e-9 && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "g non-decreasing root-to-goal" true
        (monotone samples);
      let render = Hquality.render (Option.get (Hquality.of_report o)) in
      Alcotest.(check bool) "render names both phases" true
        (contains render "slrg" && contains render "plrg")

let suite =
  [
    Alcotest.test_case "explain: totals exact" `Quick test_explain_total_exact;
    Alcotest.test_case "explain: bindings and slack" `Quick test_explain_bindings;
    Alcotest.test_case "explain: realized cost" `Quick
      test_explain_realized_matches_metrics;
    Alcotest.test_case "explain: off by default" `Quick test_explain_off_by_default;
    Alcotest.test_case "certificate: unreachable cut" `Quick
      test_unreachable_certificate;
    Alcotest.test_case "certificate: search frontier" `Quick
      test_frontier_certificate;
    Alcotest.test_case "hquality: zero violations" `Quick
      test_hquality_zero_violations;
    Alcotest.test_case "hquality: path samples" `Quick
      test_hquality_samples_on_path;
  ]
