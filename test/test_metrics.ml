(* Always-on metrics layer: histogram properties (merge laws, percentile
   accuracy against the exact sample), registry shard merging across
   domains, flight-recorder ring semantics and the planner's
   dump-on-failure hook, counter handles, jsonl flushing, and the
   exposition encoders' schema validators. *)

module Q = QCheck
module Histogram = Sekitei_util.Histogram
module Running_stats = Sekitei_util.Running_stats
module Telemetry = Sekitei_telemetry.Telemetry
module Registry = Sekitei_telemetry.Registry
module Export = Sekitei_telemetry.Export
module Planner = Sekitei_core.Planner
module Session = Sekitei_core.Planner.Session
module Scenarios = Sekitei_harness.Scenarios
module Media = Sekitei_domains.Media

let of_values vs =
  let h = Histogram.create () in
  List.iter (Histogram.add h) vs;
  h

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------------- histogram units ---------------- *)

let test_histogram_basics () =
  let h = of_values [ 0.; 1.; 10.; 100.; 1e-12; 5. ] in
  Alcotest.(check int) "count includes zero bucket" 6 (Histogram.count h);
  Alcotest.(check int) "zero bucket: 0 and sub-min" 2 (Histogram.zero_count h);
  Alcotest.(check (float 1e-9)) "min" 0. (Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 100. (Histogram.max_value h);
  Alcotest.(check (float 1e-6)) "sum" 116. (Histogram.sum h);
  (* Bucketed estimates stay within the configured relative error. *)
  List.iter
    (fun (v, p) ->
      let est = Histogram.percentile h p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within 1%% of %g (got %g)" (100. *. p) v est)
        true
        (Float.abs (est -. v) <= (0.01 *. v) +. 1e-9))
    [ (1., 0.4); (100., 1.0) ];
  Alcotest.(check (float 1e-9)) "p0 hits the zero bucket" 0.
    (Histogram.percentile h 0.)

let test_histogram_empty_and_errors () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check bool) "empty min is nan" true
    (Float.is_nan (Histogram.min_value h));
  (try
     ignore (Histogram.percentile h 0.5);
     Alcotest.fail "percentile on empty should raise"
   with Invalid_argument _ -> ());
  (try
     ignore (Histogram.create ~rel_error:1.5 ());
     Alcotest.fail "rel_error 1.5 should raise"
   with Invalid_argument _ -> ());
  let other = Histogram.create ~rel_error:0.05 () in
  try
    ignore (Histogram.merge h other);
    Alcotest.fail "merging mismatched rel_error should raise"
  with Invalid_argument _ -> ()

(* ---------------- histogram properties ---------------- *)

let arb_values = Q.list_of_size Q.Gen.(int_range 0 60) (Q.float_range 0. 1000.)
let nan_eq a b = (Float.is_nan a && Float.is_nan b) || a = b

(* Everything that must merge exactly: bucket contents (int counts),
   totals, extremes.  [sum] is float addition and merging only
   reassociates it, so it gets an epsilon instead. *)
let agree a b =
  Histogram.buckets a = Histogram.buckets b
  && Histogram.count a = Histogram.count b
  && Histogram.zero_count a = Histogram.zero_count b
  && nan_eq (Histogram.min_value a) (Histogram.min_value b)
  && nan_eq (Histogram.max_value a) (Histogram.max_value b)
  && Float.abs (Histogram.sum a -. Histogram.sum b)
     <= 1e-9 *. (1. +. Float.abs (Histogram.sum a))

let prop_merge_commutative =
  Q.Test.make ~count:200 ~name:"histogram merge commutative"
    (Q.pair arb_values arb_values) (fun (xs, ys) ->
      let a = of_values xs and b = of_values ys in
      agree (Histogram.merge a b) (Histogram.merge b a))

let prop_merge_associative =
  Q.Test.make ~count:200 ~name:"histogram merge associative"
    (Q.triple arb_values arb_values arb_values) (fun (xs, ys, zs) ->
      let a = of_values xs and b = of_values ys and c = of_values zs in
      agree
        (Histogram.merge (Histogram.merge a b) c)
        (Histogram.merge a (Histogram.merge b c)))

let prop_count_conservation =
  Q.Test.make ~count:200 ~name:"merge conserves counts"
    (Q.pair arb_values arb_values) (fun (xs, ys) ->
      let a = of_values xs and b = of_values ys in
      let m = Histogram.merge a b in
      Histogram.count m = List.length xs + List.length ys
      && Histogram.count a + Histogram.count b = Histogram.count m
      && Histogram.zero_count a + Histogram.zero_count b
         = Histogram.zero_count m)

let prop_percentile_accuracy =
  (* At p = k/(n-1), Running_stats.percentile's linear interpolation
     lands exactly on the k-th order statistic, so the bucketed estimate
     must sit within the configured relative error of the exact sample
     value there. *)
  Q.Test.make ~count:300 ~name:"percentile within rel error of exact sample"
    (Q.pair
       (Q.list_of_size Q.Gen.(int_range 1 60) (Q.float_range 0.001 1000.))
       Q.small_nat)
    (fun (vs, k) ->
      let n = List.length vs in
      let k = k mod n in
      let p = if n = 1 then 0. else float_of_int k /. float_of_int (n - 1) in
      let exact = Running_stats.percentile p vs in
      let est = Histogram.percentile (of_values vs) p in
      Float.abs (est -. exact) <= (0.01 *. exact) +. 1e-9)

(* ---------------- registry ---------------- *)

let record_values reg n =
  Registry.count reg "work.items" n;
  let h = Registry.histogram reg "work.ms" in
  for i = 1 to 100 do
    Registry.observe h (float_of_int (n * i))
  done;
  Registry.set_gauge reg "work.last" (float_of_int n)

let test_registry_shards () =
  let reg = Registry.create () in
  let d1 = Domain.spawn (fun () -> record_values reg 1) in
  let d2 = Domain.spawn (fun () -> record_values reg 2) in
  Domain.join d1;
  Domain.join d2;
  record_values reg 3;
  let snap = Registry.snapshot reg in
  Alcotest.(check int) "counters sum across shards" 6
    (Registry.counter_value snap "work.items");
  Alcotest.(check (float 1e-9)) "gauge takes the latest write" 3.
    (Option.get (Registry.gauge_value snap "work.last"));
  let merged = Option.get (Registry.histogram_value snap "work.ms") in
  (* The shard-merged histogram equals single-domain recording of the
     same values. *)
  let ref_reg = Registry.create () in
  List.iter (record_values ref_reg) [ 1; 2; 3 ];
  let expected =
    Option.get (Registry.histogram_value (Registry.snapshot ref_reg) "work.ms")
  in
  Alcotest.(check int) "300 samples" 300 (Histogram.count merged);
  Alcotest.(check bool) "shard merge == single-domain recording" true
    (Histogram.buckets merged = Histogram.buckets expected
    && Histogram.sum merged = Histogram.sum expected)

let prop_snapshot_merge_is_recording_split =
  (* merge_snapshots over a split recording equals one registry fed
     everything — the law the batch planner's shared registry and any
     multi-process scrape aggregation rely on. *)
  Q.Test.make ~count:100 ~name:"snapshot merge == unsplit recording"
    (Q.pair arb_values arb_values) (fun (xs, ys) ->
      let feed vs =
        let r = Registry.create () in
        let h = Registry.histogram r "m" in
        List.iter (Registry.observe h) vs;
        Registry.count r "n" (List.length vs);
        Registry.snapshot r
      in
      let merged = Registry.merge_snapshots (feed xs) (feed ys) in
      let whole = feed (xs @ ys) in
      Registry.counter_value merged "n" = Registry.counter_value whole "n"
      &&
      match
        ( Registry.histogram_value merged "m",
          Registry.histogram_value whole "m" )
      with
      | Some a, Some b -> Histogram.buckets a = Histogram.buckets b
      | None, None -> true
      | _ -> false)

(* ---------------- flight recorder ---------------- *)

let counter_ev i =
  Telemetry.Counter { name = "e"; total = i; t_ms = float_of_int i }

let ev_totals evs =
  List.filter_map
    (function Telemetry.Counter { total; _ } -> Some total | _ -> None)
    evs

let test_ring_wraparound () =
  let fl = Telemetry.Flight.create ~capacity:4 () in
  Alcotest.(check int) "capacity" 4 (Telemetry.Flight.capacity fl);
  Alcotest.(check (list int)) "empty ring" []
    (ev_totals (Telemetry.Flight.events fl));
  for i = 1 to 10 do
    Telemetry.Flight.record fl (counter_ev i)
  done;
  Alcotest.(check int) "recorded counts beyond capacity" 10
    (Telemetry.Flight.recorded fl);
  Alcotest.(check (list int)) "retains the last 4, oldest first"
    [ 7; 8; 9; 10 ]
    (ev_totals (Telemetry.Flight.events fl));
  Alcotest.(check (option string)) "no dump path" None
    (Telemetry.Flight.dump_to_path fl)

let test_ring_dump_format () =
  let path = Filename.temp_file "sekitei_flight" ".jsonl" in
  let fl = Telemetry.Flight.create ~capacity:2 ~dump_path:path () in
  List.iter (Telemetry.Flight.record fl) [ counter_ev 1; counter_ev 2; counter_ev 3 ];
  Alcotest.(check (option string)) "dumps to the configured path"
    (Some path)
    (Telemetry.Flight.dump_to_path fl);
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "meta line + 2 retained events" 3 (List.length lines);
  let meta = List.hd lines in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in meta") true
        (Sekitei_spec.Str_split.split_once meta needle <> None))
    [ "flight_dump"; "\"capacity\": 2"; "\"recorded\": 3"; "\"dropped\": 1" ];
  Sys.remove path

let test_dump_on_failure () =
  let path = Filename.temp_file "sekitei_flight" ".jsonl" in
  let fl = Telemetry.Flight.create ~dump_path:path () in
  let telemetry = Telemetry.create ~flight:fl [] in
  let sc = Scenarios.tiny () in
  let config = { Planner.default_config with deadline_ms = Some 0. } in
  let o =
    Planner.plan
      (Planner.request ~config ~telemetry sc.Scenarios.topo sc.Scenarios.app
         ~leveling:(Media.leveling Media.C sc.Scenarios.app))
  in
  (match o.Planner.result with
  | Error (Planner.Deadline_exceeded _) -> ()
  | Ok _ -> Alcotest.fail "deadline 0 should not produce a plan"
  | Error _ -> Alcotest.fail "expected Deadline_exceeded");
  let body = read_file path in
  Alcotest.(check bool) "dump written with meta line" true
    (Sekitei_spec.Str_split.split_once body "flight_dump" <> None);
  Alcotest.(check bool) "dump carries the failure evidence" true
    (Sekitei_spec.Str_split.split_once body "deadline" <> None);
  Sys.remove path

(* ---------------- telemetry counters & jsonl ---------------- *)

let test_counter_handle () =
  let sink, events = Telemetry.memory () in
  let t = Telemetry.create [ sink ] in
  let c = Telemetry.counter t "x" in
  Telemetry.incr c 5;
  Telemetry.incr c 5;
  Telemetry.count t "x" 1;
  Alcotest.(check int) "handle and name share the cell" 11
    (Telemetry.counter_total t "x");
  Telemetry.flush_counters t;
  let flushed =
    List.filter_map
      (function
        | Telemetry.Counter { name = "x"; total; _ } -> Some total | _ -> None)
      (events ())
  in
  Alcotest.(check (list int)) "flushed total" [ 11 ] flushed;
  (* Under null everything is inert and no state accumulates. *)
  let nc = Telemetry.counter Telemetry.null "x" in
  Telemetry.incr nc 3;
  Telemetry.count Telemetry.null "x" 7;
  Alcotest.(check int) "null records nothing" 0
    (Telemetry.counter_total Telemetry.null "x")

let test_jsonl_root_flush () =
  let path = Filename.temp_file "sekitei_trace" ".jsonl" in
  let oc = open_out path in
  let t = Telemetry.create [ Telemetry.jsonl oc ] in
  Telemetry.with_span t "root" (fun () ->
      Telemetry.with_span t "child" (fun () -> ()));
  (* No close yet: the root Span_end must have flushed the channel, so a
     concurrent reader (live tail, postmortem of a killed process) sees
     the whole span tree. *)
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "4 events visible before close" 4 (List.length lines);
  Telemetry.close t;
  close_out oc;
  Sys.remove path

(* ---------------- exposition ---------------- *)

let test_export_validators () =
  let reg = Registry.create () in
  Registry.count reg "session.plans" 3;
  Registry.set_gauge reg "plan.last_cost" 52.45;
  let h = Registry.histogram reg "plan.total_ms" in
  List.iter (Registry.observe h) [ 0.; 0.4; 12.; 250. ];
  let snap = Registry.snapshot reg in
  (match Export.validate_prometheus (Export.to_prometheus snap) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "prometheus rejected: %s" e);
  match Export.validate_json (Export.to_json snap) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "json rejected: %s" e

let test_session_metrics () =
  let sc = Scenarios.tiny () in
  let session =
    Session.create
      (Planner.request sc.Scenarios.topo sc.Scenarios.app
         ~leveling:(Media.leveling Media.C sc.Scenarios.app))
  in
  (match (Session.plan session).Planner.result with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "tiny-C should plan");
  ignore (Session.plan session : Planner.report);
  let snap = Session.metrics_snapshot session in
  let counter = Registry.counter_value snap in
  Alcotest.(check int) "session.plans" 2 (counter "session.plans");
  Alcotest.(check int) "session.plans_ok" 2 (counter "session.plans_ok");
  Alcotest.(check int) "one cold plan" 1 (counter "session.cold_plans");
  Alcotest.(check int) "one warm plan" 1 (counter "session.warm_plans");
  Alcotest.(check int) "rg.searches" 2 (counter "rg.searches");
  (match Registry.histogram_value snap "plan.total_ms" with
  | Some h -> Alcotest.(check int) "plan.total_ms samples" 2 (Histogram.count h)
  | None -> Alcotest.fail "plan.total_ms histogram missing");
  match Registry.gauge_value snap "plan.last_cost" with
  | Some c -> Alcotest.(check (float 1e-6)) "last cost" 52.45 c
  | None -> Alcotest.fail "plan.last_cost gauge missing"

let qcheck =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_merge_commutative;
      prop_merge_associative;
      prop_count_conservation;
      prop_percentile_accuracy;
      prop_snapshot_merge_is_recording_split;
    ]

let suite =
  [
    ("histogram basics", `Quick, test_histogram_basics);
    ("histogram empty/errors", `Quick, test_histogram_empty_and_errors);
    ("registry shards", `Quick, test_registry_shards);
    ("flight ring wraparound", `Quick, test_ring_wraparound);
    ("flight dump format", `Quick, test_ring_dump_format);
    ("flight dump on failure", `Quick, test_dump_on_failure);
    ("counter handles", `Quick, test_counter_handle);
    ("jsonl root flush", `Quick, test_jsonl_root_flush);
    ("export validators", `Quick, test_export_validators);
    ("session metrics", `Quick, test_session_metrics);
  ]
  @ qcheck
