(* Aggregated test runner for the whole repository. *)

let () =
  Alcotest.run "sekitei"
    [
      ("util.interval", Test_interval.suite);
      ("util.heap", Test_heap.suite);
      ("util.prng", Test_prng.suite);
      ("util.misc", Test_util_misc.suite);
      ("expr", Test_expr.suite);
      ("network", Test_network.suite);
      ("spec", Test_spec.suite);
      ("spec.dsl", Test_dsl.suite);
      ("core.compile", Test_core_compile.suite);
      ("core.replay", Test_core_replay.suite);
      ("core.replay.incremental", Test_replay_incremental.suite);
      ("core.graphs", Test_core_graphs.suite);
      ("core.planner", Test_planner.suite);
      ("core.session", Test_session.suite);
      ("core.explain", Test_explain.suite);
      ("domains", Test_domains.suite);
      ("harness", Test_harness.suite);
      ("core.planner.advanced", Test_planner_advanced.suite);
      ("extensions", Test_extensions.suite);
      ("telemetry", Test_telemetry.suite);
      ("metrics", Test_metrics.suite);
      ("analysis", Test_analysis.suite);
      ("tools", Test_tools.suite);
      ("integration", Test_integration_extra.suite);
      ("properties", Test_qcheck.suite);
    ]
