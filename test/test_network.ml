(* Unit tests for Sekitei_network: topology model, generators, routing,
   DOT export. *)

module T = Sekitei_network.Topology
module G = Sekitei_network.Generators
module R = Sekitei_network.Routing
module Dot = Sekitei_network.Dot
module Prng = Sekitei_util.Prng

(* ---------------- topology ---------------- *)

let small_topo () =
  T.make
    ~nodes:[ T.node 0 "a"; T.node ~cpu:60. 1 "b"; T.node 2 "c" ]
    ~links:[ T.link T.Lan 0 0 1; T.link ~bw:40. T.Wan 1 1 2 ]

let test_counts () =
  let t = small_topo () in
  Alcotest.(check int) "nodes" 3 (T.node_count t);
  Alcotest.(check int) "links" 2 (T.link_count t)

let test_resources () =
  let t = small_topo () in
  Alcotest.(check (float 0.)) "default cpu" 30. (T.node_resource t 0 "cpu");
  Alcotest.(check (float 0.)) "custom cpu" 60. (T.node_resource t 1 "cpu");
  Alcotest.(check (float 0.)) "lan default bw" 150. (T.link_resource t 0 "lbw");
  Alcotest.(check (float 0.)) "custom bw" 40. (T.link_resource t 1 "lbw");
  Alcotest.check_raises "missing resource" Not_found (fun () ->
      ignore (T.node_resource t 0 "gpu"))

let test_adjacency () =
  let t = small_topo () in
  Alcotest.(check (list (pair int int))) "middle node" [ (0, 0); (2, 1) ]
    (T.adjacent t 1);
  Alcotest.(check (list (pair int int))) "leaf" [ (1, 0) ] (T.adjacent t 0)

let test_find_link () =
  let t = small_topo () in
  Alcotest.(check bool) "forward" true (T.find_link t 0 1 <> None);
  Alcotest.(check bool) "symmetric" true (T.find_link t 1 0 <> None);
  Alcotest.(check bool) "absent" true (T.find_link t 0 2 = None)

let test_peer () =
  let t = small_topo () in
  Alcotest.(check int) "peer of 0 on link 0" 1 (T.peer t 0 0);
  Alcotest.(check int) "peer of 1 on link 0" 0 (T.peer t 0 1)

let test_node_by_name () =
  let t = small_topo () in
  Alcotest.(check int) "by name" 1 (T.node_by_name t "b").T.node_id;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (T.node_by_name t "zz"))

let test_invalid_construction () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad node ids" true
    (raises (fun () ->
         ignore (T.make ~nodes:[ T.node 1 "x" ] ~links:[])));
  Alcotest.(check bool) "self loop" true
    (raises (fun () ->
         ignore
           (T.make ~nodes:[ T.node 0 "x" ] ~links:[ T.link T.Lan 0 0 0 ])));
  Alcotest.(check bool) "endpoint out of range" true
    (raises (fun () ->
         ignore
           (T.make ~nodes:[ T.node 0 "x" ] ~links:[ T.link T.Lan 0 0 7 ])))

let test_connectivity () =
  let t = small_topo () in
  Alcotest.(check bool) "connected" true (T.is_connected t);
  let disconnected =
    T.make ~nodes:[ T.node 0 "a"; T.node 1 "b" ] ~links:[]
  in
  Alcotest.(check bool) "disconnected" false (T.is_connected disconnected);
  let empty = T.make ~nodes:[] ~links:[] in
  Alcotest.(check bool) "empty is connected" true (T.is_connected empty)

let test_resource_names () =
  let t =
    T.make
      ~nodes:[ T.node ~resources:[ ("mem", 8.) ] 0 "a" ]
      ~links:[]
  in
  Alcotest.(check (list string)) "node resources" [ "cpu"; "mem" ]
    (List.sort compare (T.node_resource_names t))

(* ---------------- stable identities ---------------- *)

(* Every id-keyed accessor must raise Stale_link on a tombstoned id —
   never answer with a surviving neighbor's data. *)
let test_stale_link_accessors () =
  let t = Sekitei_network.Mutate.remove_link (small_topo ()) 0 in
  let stale f = Alcotest.check_raises "stale" (T.Stale_link 0) f in
  stale (fun () -> ignore (T.get_link t 0));
  stale (fun () -> ignore (T.link_resource t 0 "lbw"));
  stale (fun () -> ignore (T.peer t 0 0));
  stale (fun () -> ignore (T.with_link_resources t 0 []));
  (* dead links vanish from iteration and queries without renumbering *)
  Alcotest.(check int) "live count" 1 (T.link_count t);
  Alcotest.(check int) "id space keeps the slot" 2 (T.link_id_bound t);
  Alcotest.(check bool) "find_link skips dead" true (T.find_link t 0 1 = None);
  Alcotest.(check (list (pair int int))) "adjacency skips dead" [ (2, 1) ]
    (T.adjacent t 1);
  Alcotest.(check bool) "survivor keeps id" true (T.link_is_live t 1);
  Alcotest.(check (pair int int)) "survivor same ends" (1, 2)
    (T.get_link t 1).T.ends;
  (* out-of-range is a usage error, not staleness *)
  Alcotest.check_raises "out of range" (Invalid_argument "Topology.get_link")
    (fun () -> ignore (T.get_link t 5));
  Alcotest.(check bool) "out of range not live" false (T.link_is_live t 5);
  Alcotest.(check bool) "negative not live" false (T.link_is_live t (-1))

let test_node_liveness () =
  let t = small_topo () in
  Alcotest.(check bool) "fresh nodes alive" true
    (List.for_all (T.node_alive t) [ 0; 1; 2 ]);
  Alcotest.(check (list int)) "no failures" [] (T.failed_nodes t);
  Alcotest.(check (list int)) "no dead links" [] (T.dead_links t);
  let t' = Sekitei_network.Mutate.fail_node t 1 in
  Alcotest.(check bool) "failed node dead" false (T.node_alive t' 1);
  Alcotest.(check (list int)) "failure recorded" [ 1 ] (T.failed_nodes t');
  Alcotest.(check (list int)) "incident links tombstoned" [ 0; 1 ]
    (T.dead_links t');
  Alcotest.(check int) "node count unchanged" 3 (T.node_count t');
  Alcotest.check_raises "node_alive out of range"
    (Invalid_argument "Topology.node_alive") (fun () ->
      ignore (T.node_alive t' 9))

(* ---------------- generators ---------------- *)

let test_line () =
  let t = G.line 5 in
  Alcotest.(check int) "nodes" 5 (T.node_count t);
  Alcotest.(check int) "links" 4 (T.link_count t);
  Alcotest.(check bool) "connected" true (T.is_connected t)

let test_line_kinds () =
  let t = G.line_kinds [ T.Lan; T.Wan; T.Lan ] in
  Alcotest.(check int) "nodes" 4 (T.node_count t);
  Alcotest.(check (float 0.)) "wan bw" 70. (T.link_resource t 1 "lbw");
  Alcotest.(check (float 0.)) "lan bw" 150. (T.link_resource t 0 "lbw")

let test_ring () =
  let t = G.ring 6 in
  Alcotest.(check int) "links" 6 (T.link_count t);
  Alcotest.(check bool) "connected" true (T.is_connected t);
  Array.iter
    (fun n -> Alcotest.(check int) "degree 2" 2 (List.length (T.adjacent t n.T.node_id)))
    (T.nodes t)

let test_star () =
  let t = G.star 5 in
  Alcotest.(check int) "nodes" 6 (T.node_count t);
  Alcotest.(check int) "hub degree" 5 (List.length (T.adjacent t 0))

let test_grid () =
  let t = G.grid 3 4 in
  Alcotest.(check int) "nodes" 12 (T.node_count t);
  Alcotest.(check int) "links" ((2 * 4) + (3 * 3)) (T.link_count t);
  Alcotest.(check bool) "connected" true (T.is_connected t)

let test_transit_stub_shape () =
  let rng = Prng.create ~seed:123L in
  let t = G.transit_stub ~rng ~transit:3 ~stubs_per_transit:3 ~stub_size:10 () in
  Alcotest.(check int) "93 nodes" 93 (T.node_count t);
  Alcotest.(check bool) "connected" true (T.is_connected t);
  (* every stub reaches its transit via a WAN uplink: count WAN links >=
     transit ring + uplinks *)
  let wan =
    Array.fold_left
      (fun n (l : T.link) -> if l.T.kind = T.Wan then n + 1 else n)
      0 (T.links t)
  in
  Alcotest.(check bool) "enough WAN links" true (wan >= 3 + 9)

let test_transit_stub_deterministic () =
  let gen seed =
    let rng = Prng.create ~seed in
    G.transit_stub ~rng ~transit:2 ~stubs_per_transit:2 ~stub_size:5 ()
  in
  let a = gen 55L and b = gen 55L in
  Alcotest.(check int) "same link count" (T.link_count a) (T.link_count b);
  Array.iteri
    (fun i (l : T.link) ->
      Alcotest.(check (pair int int)) "same ends" l.T.ends (T.get_link b i).T.ends)
    (T.links a)

let test_transit_stub_resources () =
  let rng = Prng.create ~seed:9L in
  let t = G.transit_stub ~rng ~transit:2 ~stubs_per_transit:1 ~stub_size:4 () in
  Array.iter
    (fun (l : T.link) ->
      let bw = T.link_resource t l.T.link_id "lbw" in
      match l.T.kind with
      | T.Lan -> Alcotest.(check (float 0.)) "lan 150" 150. bw
      | T.Wan -> Alcotest.(check (float 0.)) "wan 70" 70. bw)
    (T.links t)

(* ---------------- routing ---------------- *)

let routing_topo () =
  (* 0-1-2-3 path plus shortcut 0-4-3 with narrow links *)
  T.make
    ~nodes:(List.init 5 (fun i -> T.node i (Printf.sprintf "n%d" i)))
    ~links:
      [
        T.link ~bw:100. T.Lan 0 0 1;
        T.link ~bw:100. T.Lan 1 1 2;
        T.link ~bw:100. T.Lan 2 2 3;
        T.link ~bw:20. T.Lan 3 0 4;
        T.link ~bw:20. T.Lan 4 4 3;
      ]

let test_shortest_path () =
  let t = routing_topo () in
  match R.shortest_path t 0 3 with
  | Some p ->
      Alcotest.(check (list int)) "2 hops via shortcut" [ 0; 4; 3 ] p.R.hops
  | None -> Alcotest.fail "no path"

let test_shortest_path_self () =
  let t = routing_topo () in
  match R.shortest_path t 2 2 with
  | Some p ->
      Alcotest.(check (list int)) "self" [ 2 ] p.R.hops;
      Alcotest.(check int) "no links" 0 (List.length p.R.path_links)
  | None -> Alcotest.fail "no self path"

let test_shortest_unreachable () =
  let t = T.make ~nodes:[ T.node 0 "a"; T.node 1 "b" ] ~links:[] in
  Alcotest.(check bool) "unreachable" true (R.shortest_path t 0 1 = None)

let test_dijkstra_weighted () =
  let t = routing_topo () in
  (* Weight = 1/bw: prefers the wide 3-hop path. *)
  let weight (l : T.link) = 1. /. List.assoc "lbw" l.T.link_resources in
  match R.dijkstra t ~weight 0 3 with
  | Some p -> Alcotest.(check (list int)) "wide path" [ 0; 1; 2; 3 ] p.R.hops
  | None -> Alcotest.fail "no path"

let test_widest_path () =
  let t = routing_topo () in
  match R.widest_path t 0 3 with
  | Some (p, width) ->
      Alcotest.(check (list int)) "widest hops" [ 0; 1; 2; 3 ] p.R.hops;
      Alcotest.(check (float 0.)) "bottleneck" 100. width
  | None -> Alcotest.fail "no path"

let test_hop_distance () =
  let t = routing_topo () in
  Alcotest.(check (option int)) "distance" (Some 2) (R.hop_distance t 0 3);
  Alcotest.(check (option int)) "adjacent" (Some 1) (R.hop_distance t 0 1);
  Alcotest.(check (option int)) "self" (Some 0) (R.hop_distance t 1 1)

let test_simple_paths () =
  let t = routing_topo () in
  let paths = R.simple_paths t ~max_hops:3 0 3 in
  Alcotest.(check int) "both routes" 2 (List.length paths);
  let paths1 = R.simple_paths t ~max_hops:2 0 3 in
  Alcotest.(check int) "only shortcut fits" 1 (List.length paths1)

let test_path_links_consistent () =
  let t = routing_topo () in
  match R.shortest_path t 1 4 with
  | Some p ->
      Alcotest.(check int) "links = hops - 1"
        (List.length p.R.hops - 1)
        (List.length p.R.path_links)
  | None -> Alcotest.fail "no path"

(* ---------------- DOT ---------------- *)

let test_dot_output () =
  let t = small_topo () in
  let dot = Dot.to_dot ~highlight:[ 0 ] t in
  Alcotest.(check bool) "graph keyword" true
    (Sekitei_spec.Str_split.split_once dot "graph topology" <> None);
  Alcotest.(check bool) "edge present" true
    (Sekitei_spec.Str_split.split_once dot "0 -- 1" <> None);
  Alcotest.(check bool) "wan styled" true
    (Sekitei_spec.Str_split.split_once dot "style=bold" <> None);
  Alcotest.(check bool) "highlight" true
    (Sekitei_spec.Str_split.split_once dot "fillcolor=lightblue" <> None)

let suite =
  [
    ("counts", `Quick, test_counts);
    ("resources", `Quick, test_resources);
    ("adjacency", `Quick, test_adjacency);
    ("find link", `Quick, test_find_link);
    ("peer", `Quick, test_peer);
    ("node by name", `Quick, test_node_by_name);
    ("invalid construction", `Quick, test_invalid_construction);
    ("connectivity", `Quick, test_connectivity);
    ("resource names", `Quick, test_resource_names);
    ("stale link accessors", `Quick, test_stale_link_accessors);
    ("node liveness", `Quick, test_node_liveness);
    ("gen line", `Quick, test_line);
    ("gen line kinds", `Quick, test_line_kinds);
    ("gen ring", `Quick, test_ring);
    ("gen star", `Quick, test_star);
    ("gen grid", `Quick, test_grid);
    ("gen transit-stub shape", `Quick, test_transit_stub_shape);
    ("gen transit-stub deterministic", `Quick, test_transit_stub_deterministic);
    ("gen transit-stub resources", `Quick, test_transit_stub_resources);
    ("shortest path", `Quick, test_shortest_path);
    ("shortest path self", `Quick, test_shortest_path_self);
    ("shortest unreachable", `Quick, test_shortest_unreachable);
    ("dijkstra weighted", `Quick, test_dijkstra_weighted);
    ("widest path", `Quick, test_widest_path);
    ("hop distance", `Quick, test_hop_distance);
    ("simple paths", `Quick, test_simple_paths);
    ("path links consistent", `Quick, test_path_links_consistent);
    ("dot output", `Quick, test_dot_output);
  ]
