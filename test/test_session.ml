(* Tests for long-lived planning sessions: warm re-plans, delta
   invalidation, incremental recompilation, and deadline tokens. *)

module Planner = Sekitei_core.Planner
module Session = Sekitei_core.Planner.Session
module Plan = Sekitei_core.Plan
module Compile = Sekitei_core.Compile
module Plrg = Sekitei_core.Plrg
module Slrg = Sekitei_core.Slrg
module Rg = Sekitei_core.Rg
module Problem = Sekitei_core.Problem
module Deadline = Sekitei_util.Deadline
module Scenarios = Sekitei_harness.Scenarios
module Media = Sekitei_domains.Media
module T = Sekitei_network.Topology
module Mutate = Sekitei_network.Mutate

let close = Alcotest.(check (float 1e-6))

let small_request () =
  let sc = Scenarios.small () in
  (sc, Planner.request sc.Scenarios.topo sc.Scenarios.app
         ~leveling:(Media.leveling Media.C sc.Scenarios.app))

let cost_of label (r : Planner.report) =
  match r.Planner.result with
  | Ok p -> p.Plan.cost_lb
  | Error reason ->
      Alcotest.failf "%s: expected a plan, got %a" label Planner.pp_failure
        reason

(* ---------------- warm re-plans ---------------- *)

let test_warm_skips_compile () =
  let _, req = small_request () in
  let session = Session.create req in
  Alcotest.(check bool) "cold before first plan" false (Session.is_warm session);
  let cold = Session.plan session in
  Alcotest.(check bool) "warm after first plan" true (Session.is_warm session);
  let warm = Session.plan session in
  (* The compile/plrg work belongs to the first report; the warm request
     reports zero phase time while keeping the item counts. *)
  Alcotest.(check bool) "cold run compiled" true
    (cold.Planner.phases.Planner.compile.Planner.items > 0);
  close "warm compile ms" 0. warm.Planner.phases.Planner.compile.Planner.ms;
  close "warm plrg ms" 0. warm.Planner.phases.Planner.plrg.Planner.ms;
  Alcotest.(check int) "warm keeps action count"
    cold.Planner.phases.Planner.compile.Planner.items
    warm.Planner.phases.Planner.compile.Planner.items;
  close "same cost" (cost_of "cold" cold) (cost_of "warm" warm);
  Alcotest.(check int) "no invalidation without updates" 0
    warm.Planner.stats.Planner.invalidated_actions;
  Alcotest.(check int) "no eviction without updates" 0
    warm.Planner.stats.Planner.evicted_entries

let test_one_shot_plan_is_cold_session () =
  let _, req = small_request () in
  let one_shot = Planner.plan req in
  let session = Session.create req in
  let cold = Session.plan session in
  close "same cost" (cost_of "one-shot" one_shot) (cost_of "session" cold);
  Alcotest.(check int) "same rg_created"
    one_shot.Planner.stats.Planner.rg_created
    cold.Planner.stats.Planner.rg_created;
  Alcotest.(check int) "same slrg_nodes"
    one_shot.Planner.stats.Planner.slrg_nodes
    cold.Planner.stats.Planner.slrg_nodes

(* After an update, the warm re-plan must agree with a cold plan of the
   session's current topology (same result constructor and cost bound —
   see the fp provisos in session.mli), and the invalidation counters
   must surface the incremental work. *)
let test_update_then_warm_equals_cold () =
  let sc, req = small_request () in
  let session = Session.create req in
  ignore (Session.plan session);
  ignore
    (Session.update session
       (Session.Set_link_resource { link = 2; resource = "lbw"; value = 66. }));
  let warm = Session.plan session in
  Alcotest.(check bool) "update invalidated actions" true
    (warm.Planner.stats.Planner.invalidated_actions > 0);
  Alcotest.(check bool) "update evicted oracle entries" true
    (warm.Planner.stats.Planner.evicted_entries > 0);
  let cold =
    Planner.plan
      (Planner.request (Session.topology session) sc.Scenarios.app
         ~leveling:req.Planner.leveling)
  in
  close "warm == cold cost" (cost_of "cold" cold) (cost_of "warm" warm);
  (* Counters are consumed by the report: a further re-plan with no new
     updates is clean again. *)
  let again = Session.plan session in
  Alcotest.(check int) "counters consumed" 0
    again.Planner.stats.Planner.invalidated_actions

let test_update_to_infeasible_and_back () =
  let sc, req = small_request () in
  let session = Session.create req in
  let cost0 = cost_of "initial" (Session.plan session) in
  (* Starve the WAN link below the smallest deliverable level... *)
  ignore
    (Session.update session
       (Session.Set_link_resource { link = 2; resource = "lbw"; value = 1. }));
  (match (Session.plan session).Planner.result with
  | Error (Planner.Unreachable_goal _ | Planner.Resource_exhausted) -> ()
  | Error reason ->
      Alcotest.failf "unexpected failure: %a" Planner.pp_failure reason
  | Ok _ -> Alcotest.fail "plan should be infeasible at 1 unit of WAN bw");
  (* ...then restore it: the session must recover the original plan. *)
  let original = T.link_resource sc.Scenarios.topo 2 "lbw" in
  ignore
    (Session.update session
       (Session.Set_link_resource
          { link = 2; resource = "lbw"; value = original }));
  close "recovered cost" cost0 (cost_of "recovered" (Session.plan session))

(* ---------------- remove-link identity stability ---------------- *)

(* A diamond: two equal-cost server->client routes.  Removing one leg
   tombstones it while the survivors keep their ids; the session must
   keep planning against the mutated topology exactly as a cold run does
   (the historical bug class: grounded Cross actions naming stale link
   ids after a dense renumbering — now impossible by construction). *)
let diamond () =
  let topo =
    T.make
      ~nodes:(List.init 4 (fun i -> T.node ~cpu:30. i (Printf.sprintf "n%d" i)))
      ~links:
        [
          T.link ~bw:150. T.Lan 0 0 1;
          T.link ~bw:150. T.Lan 1 1 3;
          T.link ~bw:150. T.Lan 2 0 2;
          T.link ~bw:150. T.Lan 3 2 3;
        ]
  in
  let app = Media.app ~server:0 ~client:3 () in
  (topo, app, Media.leveling Media.C app)

let test_remove_link_replan () =
  let topo, app, leveling = diamond () in
  let session = Session.create (Planner.request topo app ~leveling) in
  let cost0 = cost_of "diamond" (Session.plan session) in
  (* Drop the n2->n3 leg: the n0->n1->n3 route must carry the stream. *)
  ignore (Session.update session (Session.Remove_link { link = 3 }));
  Alcotest.(check int) "3 links survive" 3
    (T.link_count (Session.topology session));
  let warm = Session.plan session in
  let cold =
    Planner.plan (Planner.request (Session.topology session) app ~leveling)
  in
  close "warm == cold after removal" (cost_of "cold" cold)
    (cost_of "warm" warm);
  Alcotest.(check bool) "one-route cost >= two-route cost" true
    (cost_of "warm" warm >= cost0 -. 1e-6);
  (* Link ids are stable: surviving link 1 (n1->n3) keeps its id after
     the removal, so starving it must now kill the only remaining
     route. *)
  ignore
    (Session.update session
       (Session.Set_link_resource { link = 1; resource = "lbw"; value = 1. }));
  match (Session.plan session).Planner.result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no route should survive"

(* A delta naming a bad site id must be rejected before anything
   mutates: Stale_link for tombstoned links, Invalid_argument for ids
   that never existed — and the session must stay consistent and
   replannable on its previous topology. *)
let test_update_rejects_bad_ids () =
  let topo, app, leveling = diamond () in
  let session = Session.create (Planner.request topo app ~leveling) in
  ignore (Session.plan session);
  Alcotest.check_raises "never-issued link id"
    (Invalid_argument "Mutate.set_link_resource: unknown link 4") (fun () ->
      ignore
        (Session.update session
           (Session.Set_link_resource
              { link = 4; resource = "lbw"; value = 1. })));
  Alcotest.check_raises "never-issued node id"
    (Invalid_argument "Mutate.fail_node: unknown node 99") (fun () ->
      ignore (Session.update session (Session.Fail_node { node = 99 })));
  ignore (Session.update session (Session.Remove_link { link = 3 }));
  Alcotest.check_raises "tombstoned link id" (T.Stale_link 3) (fun () ->
      ignore
        (Session.update session
           (Session.Set_link_resource
              { link = 3; resource = "lbw"; value = 1. })));
  Alcotest.check_raises "double removal" (T.Stale_link 3) (fun () ->
      ignore (Session.update session (Session.Remove_link { link = 3 })));
  (* rejected deltas left the session consistent: it still plans, and
     agrees with a cold run of its current (post-removal) topology *)
  let warm = Session.plan session in
  let cold =
    Planner.plan (Planner.request (Session.topology session) app ~leveling)
  in
  close "still warm == cold" (cost_of "cold" cold) (cost_of "warm" warm);
  Alcotest.(check bool) "the valid removal did apply" false
    (T.link_is_live (Session.topology session) 3)

let test_fail_node_replan () =
  let topo, app, leveling = diamond () in
  let session = Session.create (Planner.request topo app ~leveling) in
  ignore (Session.plan session);
  (* Failing n2 removes both its links; route through n1 survives. *)
  ignore (Session.update session (Session.Fail_node { node = 2 }));
  Alcotest.(check int) "2 links survive" 2
    (T.link_count (Session.topology session));
  let warm = Session.plan session in
  let cold =
    Planner.plan (Planner.request (Session.topology session) app ~leveling)
  in
  close "warm == cold after node failure" (cost_of "cold" cold)
    (cost_of "warm" warm)

(* ---------------- incremental recompilation ---------------- *)

(* Compile.recompile's contract: the reused-and-patched problem is
   structurally identical to a cold compile of the mutated topology —
   same actions in the same order (act_ids are reassigned in cold order),
   same propositions, same cost bounds. *)
let test_recompile_equals_cold_compile () =
  let sc = Scenarios.small () in
  let leveling = Media.leveling Media.C sc.Scenarios.app in
  let old = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
  let topo' = Mutate.set_link_resource sc.Scenarios.topo 2 "lbw" 66. in
  let pb, invalidated =
    Compile.recompile ~old
      ~node_touched:(fun _ -> false)
      ~link_touched:(fun l -> l = 2)
      topo' sc.Scenarios.app leveling
  in
  let fresh = Compile.compile topo' sc.Scenarios.app leveling in
  Alcotest.(check bool) "some actions invalidated" true (invalidated > 0);
  Alcotest.(check int) "same action count"
    (Array.length fresh.Problem.actions)
    (Array.length pb.Problem.actions);
  Alcotest.(check bool) "identical actions" true
    (pb.Problem.actions = fresh.Problem.actions)

(* ---------------- deadlines ---------------- *)

let test_deadline_compile_phase () =
  let _, req = small_request () in
  let config =
    { Planner.default_config with Planner.deadline_ms = Some 0. }
  in
  match (Planner.plan { req with Planner.config }).Planner.result with
  | Error (Planner.Deadline_exceeded { phase; expansions; best_f }) ->
      Alcotest.(check string) "gave up compiling" "compile" phase;
      Alcotest.(check int) "no expansions" 0 expansions;
      Alcotest.(check bool) "no frontier evidence" true (best_f = None)
  | Error reason ->
      Alcotest.failf "unexpected failure: %a" Planner.pp_failure reason
  | Ok _ -> Alcotest.fail "a 0ms deadline cannot produce a plan"

(* Deterministic mid-search expiry via a counting token fed straight to
   the RG search: the result must carry the same admissible best-f
   evidence a budget cutoff reports. *)
let test_deadline_mid_rg () =
  let sc = Scenarios.small () in
  let leveling = Media.leveling Media.C sc.Scenarios.app in
  let pb = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
  let plrg = Plrg.build pb in
  let slrg = Slrg.create pb plrg in
  let optimal =
    match Rg.search ~max_expansions:500_000 pb plrg slrg with
    | Rg.Solution (_, _, cost), _ -> cost
    | _ -> Alcotest.fail "Small-C must be solvable"
  in
  let slrg' = Slrg.create pb plrg in
  match
    Rg.search ~max_expansions:500_000 ~deadline:(Deadline.counting 10) pb plrg
      slrg'
  with
  | Rg.Deadline_reached { expansions; best_f; _ }, stats ->
      Alcotest.(check bool) "stopped early" true (expansions <= 10);
      Alcotest.(check int) "stats agree" expansions stats.Rg.expanded;
      Alcotest.(check bool) "best_f admissible" true
        (best_f <= optimal +. 1e-6);
      Alcotest.(check bool) "best_f positive" true (best_f > 0.)
  | (Rg.Solution _ | Rg.Exhausted | Rg.Budget_exceeded _), _ ->
      Alcotest.fail "expected Deadline_reached"

(* An expired session request leaves the state intact: the next request
   without a deadline plans normally (and warm). *)
let test_deadline_does_not_poison_session () =
  let _, req = small_request () in
  let session = Session.create req in
  let cost0 = cost_of "initial" (Session.plan session) in
  let strict =
    Session.create
      { req with
        Planner.config =
          { req.Planner.config with Planner.deadline_ms = Some 0. } }
  in
  (match (Session.plan strict).Planner.result with
  | Error (Planner.Deadline_exceeded _) -> ()
  | _ -> Alcotest.fail "strict session should expire");
  (* The original session is untouched and still warm. *)
  Alcotest.(check bool) "still warm" true (Session.is_warm session);
  close "still plans" cost0 (cost_of "replan" (Session.plan session))

let suite =
  [
    ("warm skips compile", `Quick, test_warm_skips_compile);
    ("one-shot == cold session", `Quick, test_one_shot_plan_is_cold_session);
    ("update then warm == cold", `Quick, test_update_then_warm_equals_cold);
    ("infeasible and back", `Quick, test_update_to_infeasible_and_back);
    ("remove link, replan", `Quick, test_remove_link_replan);
    ("update rejects bad ids", `Quick, test_update_rejects_bad_ids);
    ("fail node, replan", `Quick, test_fail_node_replan);
    ("recompile == cold compile", `Quick, test_recompile_equals_cold_compile);
    ("deadline in compile", `Quick, test_deadline_compile_phase);
    ("deadline mid-RG", `Quick, test_deadline_mid_rg);
    ("deadline leaves session intact", `Quick,
     test_deadline_does_not_poison_session);
  ]
