(* Unit tests for Sekitei_util.Heap: ordering, FIFO tie-breaking,
   secondary priority, growth. *)

module Heap = Sekitei_util.Heap

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check (option (pair string (float 0.)))) "peek" None (Heap.peek h);
  Alcotest.(check (option (pair string (float 0.)))) "pop" None (Heap.pop h)

let test_single () =
  let h = Heap.create () in
  Heap.add h ~prio:3. "x";
  Alcotest.(check (option (pair string (float 0.)))) "peek" (Some ("x", 3.))
    (Heap.peek h);
  Alcotest.(check int) "length after peek" 1 (Heap.length h);
  Alcotest.(check (option (pair string (float 0.)))) "pop" (Some ("x", 3.))
    (Heap.pop h);
  Alcotest.(check bool) "empty after pop" true (Heap.is_empty h)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.add h ~prio:p v)
    [ (5., "e"); (1., "a"); (3., "c"); (2., "b"); (4., "d") ];
  let drained = List.map fst (Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "ascending" [ "a"; "b"; "c"; "d"; "e" ] drained

let test_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.add h ~prio:1. v) [ "first"; "second"; "third" ];
  let drained = List.map fst (Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "insertion order among ties"
    [ "first"; "second"; "third" ] drained

let test_prio2 () =
  let h = Heap.create () in
  Heap.add h ~prio:1. ~prio2:0. "shallow";
  Heap.add h ~prio:1. ~prio2:(-5.) "deep";
  Alcotest.(check (option (pair string (float 0.))))
    "deeper (lower prio2) first" (Some ("deep", 1.)) (Heap.pop h)

let test_growth () =
  let h = Heap.create_sized 2 in
  for i = 999 downto 0 do
    Heap.add h ~prio:(float_of_int i) i
  done;
  Alcotest.(check int) "length" 1000 (Heap.length h);
  let drained = List.map fst (Heap.to_sorted_list h) in
  Alcotest.(check (list int)) "sorted" (List.init 1000 Fun.id) drained

let test_insertions_counter () =
  let h = Heap.create () in
  Heap.add h ~prio:1. 1;
  Heap.add h ~prio:2. 2;
  ignore (Heap.pop h);
  Alcotest.(check int) "insertions counts lifetime" 2 (Heap.insertions h)

let test_clear () =
  let h = Heap.create () in
  Heap.add h ~prio:1. 1;
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h)

let test_nan_rejected () =
  let h = Heap.create () in
  Alcotest.check_raises "nan prio" (Invalid_argument "Heap.add: NaN priority")
    (fun () -> Heap.add h ~prio:Float.nan 1)

let test_nan_prio2_rejected () =
  (* A NaN tiebreaker would poison [before]'s comparisons just like a NaN
     primary priority, silently corrupting the heap order. *)
  let h = Heap.create () in
  Alcotest.check_raises "nan prio2"
    (Invalid_argument "Heap.add: NaN secondary priority") (fun () ->
      Heap.add h ~prio:1. ~prio2:Float.nan 1)

let test_pop_exn () =
  let h = Heap.create () in
  Alcotest.check_raises "pop_exn empty" Not_found (fun () ->
      ignore (Heap.pop_exn h))

let test_interleaved () =
  (* Mixed adds and pops keep the min invariant. *)
  let h = Heap.create () in
  Heap.add h ~prio:5. 5;
  Heap.add h ~prio:1. 1;
  Alcotest.(check (option (pair int (float 0.)))) "pop 1" (Some (1, 1.)) (Heap.pop h);
  Heap.add h ~prio:0. 0;
  Heap.add h ~prio:9. 9;
  Alcotest.(check (option (pair int (float 0.)))) "pop 0" (Some (0, 0.)) (Heap.pop h);
  Alcotest.(check (option (pair int (float 0.)))) "pop 5" (Some (5, 5.)) (Heap.pop h);
  Alcotest.(check (option (pair int (float 0.)))) "pop 9" (Some (9, 9.)) (Heap.pop h)

let suite =
  [
    ("empty", `Quick, test_empty);
    ("single", `Quick, test_single);
    ("ordering", `Quick, test_ordering);
    ("fifo ties", `Quick, test_fifo_ties);
    ("secondary priority", `Quick, test_prio2);
    ("growth", `Quick, test_growth);
    ("insertions counter", `Quick, test_insertions_counter);
    ("clear", `Quick, test_clear);
    ("nan rejected", `Quick, test_nan_rejected);
    ("nan prio2 rejected", `Quick, test_nan_prio2_rejected);
    ("pop_exn", `Quick, test_pop_exn);
    ("interleaved", `Quick, test_interleaved);
  ]
