(* Tests for the operator tooling: topology mutation, deployment audit,
   automatic level suggestion, node-resource leveling. *)

module T = Sekitei_network.Topology
module Mutate = Sekitei_network.Mutate
module G = Sekitei_network.Generators
module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Compile = Sekitei_core.Compile
module Audit = Sekitei_core.Audit
module Media = Sekitei_domains.Media
module Leveling = Sekitei_spec.Leveling
module Scenarios = Sekitei_harness.Scenarios

let contains hay needle = Sekitei_spec.Str_split.split_once hay needle <> None

(* ---------------- mutate ---------------- *)

let test_set_link_resource () =
  let t = G.line 3 in
  let t' = Mutate.set_link_resource t 1 "lbw" 42. in
  Alcotest.(check (float 0.)) "changed" 42. (T.link_resource t' 1 "lbw");
  Alcotest.(check (float 0.)) "others untouched" 150. (T.link_resource t' 0 "lbw");
  Alcotest.(check (float 0.)) "original untouched" 150. (T.link_resource t 1 "lbw")

let test_set_node_resource () =
  let t = G.line 3 in
  let t' = Mutate.set_node_resource t 2 "cpu" 5. in
  Alcotest.(check (float 0.)) "changed" 5. (T.node_resource t' 2 "cpu");
  Alcotest.(check (float 0.)) "others untouched" 30. (T.node_resource t' 0 "cpu")

let test_scale_links () =
  let t = G.line_kinds [ T.Lan; T.Wan ] in
  let t' = Mutate.scale_links ~kind:T.Wan t "lbw" 0.5 in
  Alcotest.(check (float 0.)) "wan halved" 35. (T.link_resource t' 1 "lbw");
  Alcotest.(check (float 0.)) "lan untouched" 150. (T.link_resource t' 0 "lbw");
  let t'' = Mutate.scale_links t "lbw" 2. in
  Alcotest.(check (float 0.)) "all scaled" 300. (T.link_resource t'' 0 "lbw")

let test_remove_link () =
  let t = G.line 4 in
  let t' = Mutate.remove_link t 1 in
  Alcotest.(check int) "one fewer" 2 (T.link_count t');
  Alcotest.(check bool) "now disconnected" false (T.is_connected t');
  (* survivors keep their original (stable) ids *)
  Alcotest.(check (list int)) "stable ids" [ 0; 2 ]
    (Array.to_list (Array.map (fun l -> l.T.link_id) (T.links t')));
  Alcotest.(check int) "id space unchanged" 3 (T.link_id_bound t');
  Alcotest.(check (list int)) "tombstone recorded" [ 1 ] (T.dead_links t');
  Alcotest.(check bool) "liveness bit" false (T.link_is_live t' 1);
  Alcotest.check_raises "get_link on dead id" (T.Stale_link 1) (fun () ->
      ignore (T.get_link t' 1));
  (* survivor 2 still denotes the same physical link n2-n3 *)
  let l2 = T.get_link t' 2 in
  Alcotest.(check (pair int int)) "same endpoints" (2, 3) l2.T.ends

let test_fail_node () =
  let t = G.star 3 in
  let t' = Mutate.fail_node t 0 in
  Alcotest.(check (float 0.)) "cpu zeroed" 0. (T.node_resource t' 0 "cpu");
  Alcotest.(check int) "links gone" 0 (T.link_count t');
  Alcotest.(check int) "nodes stay" 4 (T.node_count t');
  Alcotest.(check bool) "hub marked dead" false (T.node_alive t' 0);
  Alcotest.(check bool) "spokes alive" true (T.node_alive t' 1);
  Alcotest.(check (list int)) "failure recorded" [ 0 ] (T.failed_nodes t');
  (* incident links are tombstoned, not renumbered away *)
  Alcotest.(check int) "id space unchanged" 3 (T.link_id_bound t');
  Alcotest.check_raises "incident link stale" (T.Stale_link 0) (fun () ->
      ignore (T.get_link t' 0))

let test_mutate_rejects_bad_ids () =
  let t = G.line 3 in
  Alcotest.check_raises "set_link_resource unknown id"
    (Invalid_argument "Mutate.set_link_resource: unknown link 9") (fun () ->
      ignore (Mutate.set_link_resource t 9 "lbw" 1.));
  Alcotest.check_raises "set_node_resource unknown id"
    (Invalid_argument "Mutate.set_node_resource: unknown node 7") (fun () ->
      ignore (Mutate.set_node_resource t 7 "cpu" 1.));
  Alcotest.check_raises "remove_link unknown id"
    (Invalid_argument "Topology.get_link") (fun () ->
      ignore (Mutate.remove_link t 9));
  Alcotest.check_raises "fail_node unknown id"
    (Invalid_argument "Mutate.fail_node: unknown node 7") (fun () ->
      ignore (Mutate.fail_node t 7));
  (* a tombstoned link is Stale, not unknown *)
  let t' = Mutate.remove_link t 0 in
  Alcotest.check_raises "set on removed link" (T.Stale_link 0) (fun () ->
      ignore (Mutate.set_link_resource t' 0 "lbw" 1.));
  Alcotest.check_raises "double removal" (T.Stale_link 0) (fun () ->
      ignore (Mutate.remove_link t' 0))

let test_mutation_replans () =
  (* End to end: degrade the tiny WAN link below the split streams' need
     and the planner reports infeasibility. *)
  let sc = Scenarios.tiny () in
  let leveling = Media.leveling Media.C sc.Scenarios.app in
  let degraded = Mutate.set_link_resource sc.Scenarios.topo 0 "lbw" 50. in
  match (Planner.plan (Planner.request degraded sc.Scenarios.app ~leveling)).Planner.result with
  | Ok _ -> Alcotest.fail "Z+I = 65 cannot fit 50"
  | Error _ -> ()

(* ---------------- audit ---------------- *)

let audit_small () =
  let sc = Scenarios.small () in
  let leveling = Media.leveling Media.C sc.Scenarios.app in
  let pb = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
  match (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling)).Planner.result with
  | Ok p -> (pb, p)
  | Error r -> Alcotest.failf "no plan: %a" Planner.pp_failure r

let test_audit_tables () =
  let pb, p = audit_small () in
  match Audit.of_plan pb p with
  | Error e -> Alcotest.failf "audit failed: %s" e
  | Ok a ->
      Alcotest.(check int) "plan length" 13 a.Audit.plan_length;
      (* 4 links carry Z+I = 65 each *)
      Alcotest.(check int) "four links used" 4 (List.length a.Audit.links);
      List.iter
        (fun (r : Audit.link_row) ->
          Alcotest.(check (float 1e-6)) "Z+I per link" 65. r.Audit.used)
        a.Audit.links;
      (* CPU used on server and client nodes only *)
      Alcotest.(check int) "two nodes used" 2 (List.length a.Audit.nodes);
      let text = Audit.to_string pb a in
      List.iter
        (fun needle -> Alcotest.(check bool) needle true (contains text needle))
        [ "link utilization"; "node utilization"; "streams"; "WAN"; "93%" ]

let test_audit_rejects_invalid () =
  let pb, p = audit_small () in
  let broken = { p with Plan.steps = List.tl p.Plan.steps } in
  match Audit.of_plan pb broken with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must reject a non-replaying plan"

(* ---------------- level suggestion ---------------- *)

let test_suggest_media () =
  let app = Media.app ~server:0 ~client:1 () in
  let l = Leveling.suggest app in
  let m_cuts =
    List.find_map
      (fun (i, p, cuts) -> if i = "M" && p = "ibw" then Some cuts else None)
      (Leveling.iface_cutpoints l)
  in
  match m_cuts with
  | None -> Alcotest.fail "no cutpoints suggested for M"
  | Some cuts ->
      Alcotest.(check bool) "demand is a cutpoint" true (List.mem 90. cuts);
      Alcotest.(check bool) "band above demand" true (List.mem 99.00000000000001 cuts || List.mem 99. cuts);
      Alcotest.(check bool) "supply is a cutpoint" true (List.mem 200. cuts);
      (* derived interfaces got proportional cuts *)
      Alcotest.(check bool) "T derived" true
        (List.exists (fun (i, _, _) -> i = "T") (Leveling.iface_cutpoints l))

let test_suggest_plans_optimally () =
  (* Suggested levels must solve Tiny and reach the Small optimum's
     structure (13 actions, LAN peak < 70). *)
  List.iter
    (fun (sc : Scenarios.t) ->
      let l = Leveling.suggest sc.Scenarios.app in
      match (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling:l)).Planner.result with
      | Ok p ->
          if sc.Scenarios.name = "Small" then begin
            Alcotest.(check int) "13 actions" 13 (Plan.length p);
            Alcotest.(check bool) "LAN peak below raw stream" true
              (p.Plan.metrics.Sekitei_core.Replay.lan_peak < 70.)
          end
      | Error r ->
          Alcotest.failf "%s with suggested levels: %a" sc.Scenarios.name
            Planner.pp_failure r)
    [ Scenarios.tiny (); Scenarios.small () ]

let test_suggest_beats_fixed_band () =
  (* The suggested expansion band (90..99) wastes less LAN bandwidth than
     scenario C's 90..100. *)
  let sc = Scenarios.small () in
  let l = Leveling.suggest sc.Scenarios.app in
  let c = Media.leveling Media.C sc.Scenarios.app in
  match
    ( (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling:l)).Planner.result,
      (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling:c)).Planner.result )
  with
  | Ok ps, Ok pc ->
      Alcotest.(check bool) "tighter band, lower LAN use" true
        (ps.Plan.metrics.Sekitei_core.Replay.lan_peak
        <= pc.Plan.metrics.Sekitei_core.Replay.lan_peak +. 1e-9)
  | _ -> Alcotest.fail "both must plan"

let test_suggest_validation () =
  let app = Media.app ~server:0 ~client:1 () in
  Alcotest.check_raises "expansion must exceed 1"
    (Invalid_argument "Leveling.suggest: expansion must be > 1") (fun () ->
      ignore (Leveling.suggest ~expansion:1. app));
  Alcotest.check_raises "intermediate non-negative"
    (Invalid_argument "Leveling.suggest: negative intermediate") (fun () ->
      ignore (Leveling.suggest ~intermediate:(-1) app))

(* ---------------- node-resource leveling ---------------- *)

let test_node_cpu_leveling () =
  (* The paper expects that "for some problems it might be beneficial to
     discretize such resources as node CPU": leveling CPU multiplies the
     action count and adds checked node levels, without changing the
     plan. *)
  let sc = Scenarios.tiny () in
  let base = Media.leveling Media.C sc.Scenarios.app in
  let leveled = Leveling.with_node base "cpu" [ 10.; 20. ] in
  let pb_base = Compile.compile sc.Scenarios.topo sc.Scenarios.app base in
  let pb_lvl = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveled in
  Alcotest.(check bool) "more actions" true
    (Array.length pb_lvl.Sekitei_core.Problem.actions
    > Array.length pb_base.Sekitei_core.Problem.actions);
  Alcotest.(check bool) "checked node levels present" true
    (Array.exists
       (fun (a : Sekitei_core.Action.t) ->
         Array.length a.Sekitei_core.Action.checked_node > 0)
       pb_lvl.Sekitei_core.Problem.actions);
  match
    ( (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling:base)).Planner.result,
      (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling:leveled)).Planner.result )
  with
  | Ok p1, Ok p2 ->
      Alcotest.(check int) "same plan length" (Plan.length p1) (Plan.length p2)
  | _ -> Alcotest.fail "both must plan"

let suite =
  [
    ("mutate: set link resource", `Quick, test_set_link_resource);
    ("mutate: set node resource", `Quick, test_set_node_resource);
    ("mutate: scale links", `Quick, test_scale_links);
    ("mutate: remove link", `Quick, test_remove_link);
    ("mutate: fail node", `Quick, test_fail_node);
    ("mutate: rejects bad ids", `Quick, test_mutate_rejects_bad_ids);
    ("mutate: degraded network replans", `Quick, test_mutation_replans);
    ("audit: tables", `Quick, test_audit_tables);
    ("audit: rejects invalid", `Quick, test_audit_rejects_invalid);
    ("suggest: media cutpoints", `Quick, test_suggest_media);
    ("suggest: plans optimally", `Quick, test_suggest_plans_optimally);
    ("suggest: beats fixed band", `Quick, test_suggest_beats_fixed_band);
    ("suggest: validation", `Quick, test_suggest_validation);
    ("node cpu leveling", `Quick, test_node_cpu_leveling);
  ]
