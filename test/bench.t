The machine-readable bench mode writes a schema-valid document and, with
--check, re-parses it through the JSON schema checker (the `make check`
entry point); the default tracked set is Tiny-C, Small-C and Large-C:

  $ ../bench/main.exe --json --check --out bench.json
  bench json: 3 records ok

  $ grep -c '"scenario"' bench.json
  3

Every record carries the SLRG cache reuse counters:

  $ grep -c '"slrg_cache_hits"' bench.json
  3
