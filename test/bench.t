The machine-readable bench mode writes a schema-valid document and, with
--check, re-parses it through the JSON schema checker (the `make check`
entry point); the default tracked set is Tiny-C, Small-C and Large-C:

  $ ../bench/main.exe --json --check --out bench.json
  bench json: 3 records ok

  $ grep -c '"scenario"' bench.json
  3

Every record carries the SLRG cache reuse counters, the deferred-
evaluation counters, the per-phase GC figures and the batch fields:

  $ grep -c '"slrg_cache_hits"' bench.json
  3
  $ grep -c '"slrg_deferred"' bench.json
  3
  $ grep -c '"minor_words"' bench.json
  3
  $ grep -c '"jobs": 1' bench.json
  3

--repeat N times each scenario N times and records the median (counters
come from the first run; they are identical across repeats anyway):

  $ ../bench/main.exe --json --check --repeat 2 --out repeat.json
  bench json: 3 records ok

Without --warm the warm_search_ms field is recorded as 0.0 (schema
stays fixed); with it, each scenario is re-planned through a warm
planning session and the field carries a real timing:

  $ grep -c '"warm_search_ms": 0.0,' bench.json
  3
  $ ../bench/main.exe --json --check --warm --out warm.json
  bench json: 3 records ok
  $ grep -c '"warm_search_ms"' warm.json
  3
  $ grep -c '"warm_search_ms": 0.0,' warm.json
  0
  [1]

--baseline diffs the run against a checked-in baseline and gates on
regression.  Against the just-written baseline everything is within
tolerance and the gate passes (the tolerance is generous here because
back-to-back sub-millisecond timings are noisy; rg_created is exact
either way):

  $ ../bench/main.exe --json --check --out bench2.json --baseline bench.json --max-regress 1000
  bench json: 3 records ok
  bench gate: ok (max regress 1000%)

A doctored baseline with implausibly fast timings trips the gate with a
non-zero exit:

  $ sed 's/"search_ms": [0-9.]*/"search_ms": 0.000001/' bench.json > fast.json
  $ ../bench/main.exe --json --check --out bench3.json --baseline fast.json --max-regress 50 > gate.out 2>&1; echo "exit $?"
  exit 1
  $ grep -c 'regressed >50%' gate.out
  1

A baseline missing a tracked scenario is an error, not a silent pass:

  $ echo '[]' > empty.json
  $ ../bench/main.exe --json --check --out bench4.json --baseline empty.json > /dev/null 2> err.out; echo "exit $?"
  exit 1
  $ grep -c 'no record for' err.out
  1
