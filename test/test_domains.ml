(* Integration tests for the chain (Figure 5) and gridflow domains, and
   the media domain's level-scenario builders. *)

module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Compile = Sekitei_core.Compile
module Chain = Sekitei_domains.Chain
module Gridflow = Sekitei_domains.Gridflow
module Media = Sekitei_domains.Media
module Leveling = Sekitei_spec.Leveling
module Validate = Sekitei_spec.Validate
module I = Sekitei_util.Interval
module T = Sekitei_network.Topology
module G = Sekitei_network.Generators

(* ---------------- media ---------------- *)

let test_media_scenarios_table1 () =
  let app = Media.app ~server:0 ~client:1 () in
  let levels sc = Leveling.iface_levels (Media.leveling sc app) "M" "ibw" in
  Alcotest.(check int) "A: one level" 1 (List.length (levels Media.A));
  Alcotest.(check int) "B: two levels" 2 (List.length (levels Media.B));
  Alcotest.(check int) "C: three levels" 3 (List.length (levels Media.C));
  Alcotest.(check int) "D: five levels" 5 (List.length (levels Media.D));
  Alcotest.(check int) "E: five levels" 5 (List.length (levels Media.E));
  Alcotest.(check int) "E: link leveled" 3
    (List.length (Leveling.link_levels (Media.leveling Media.E app) "lbw"));
  Alcotest.(check int) "D: link unleveled" 1
    (List.length (Leveling.link_levels (Media.leveling Media.D app) "lbw"))

let test_media_validates_everywhere () =
  List.iter
    (fun (sc : Sekitei_harness.Scenarios.t) ->
      Alcotest.(check int)
        (sc.Sekitei_harness.Scenarios.name ^ " valid")
        0
        (List.length
           (Validate.check sc.Sekitei_harness.Scenarios.topo
              sc.Sekitei_harness.Scenarios.app)))
    [ Sekitei_harness.Scenarios.tiny (); Sekitei_harness.Scenarios.small () ]

let test_media_custom_supply_demand () =
  (* With 100 supply and 60 demand over a 70-link, the direct plan works. *)
  let topo = G.line_kinds [ T.Wan ] in
  let app = Media.app ~supply:100. ~demand:60. ~server:0 ~client:1 () in
  let leveling =
    Leveling.propagate app (Leveling.with_iface Leveling.empty "M" "ibw" [ 60.; 70. ])
  in
  match (Planner.plan (Planner.request topo app ~leveling)).Planner.result with
  | Ok p -> Alcotest.(check int) "direct" 2 (Plan.length p)
  | Error r -> Alcotest.failf "no plan: %a" Planner.pp_failure r

(* ---------------- chain (Figure 5) ---------------- *)

let chain_uses_zip alpha =
  let topo = Chain.topology () in
  let app = Chain.app ~cross_weight:alpha () in
  let leveling = Chain.leveling app in
  let pb = Compile.compile topo app leveling in
  match (Planner.plan (Planner.request topo app ~leveling)).Planner.result with
  | Ok p ->
      Some
        (List.exists (fun (n, _) -> String.equal n "Zip") (Plan.placements pb p))
  | Error _ -> None

let test_chain_cheap_links_direct () =
  Alcotest.(check (option bool)) "direct at alpha=0.5" (Some false)
    (chain_uses_zip 0.5)

let test_chain_dear_links_compress () =
  Alcotest.(check (option bool)) "zip at alpha=2" (Some true) (chain_uses_zip 2.)

let test_chain_crossover_monotone () =
  (* Once compression wins it keeps winning as links get dearer. *)
  let flips =
    List.map chain_uses_zip [ 0.25; 0.5; 1.0; 1.5; 2.0; 4.0 ]
    |> List.map Option.get
  in
  let rec monotone = function
    | true :: false :: _ -> false
    | _ :: rest -> monotone rest
    | [] -> true
  in
  Alcotest.(check bool) "single crossover" true (monotone flips);
  Alcotest.(check bool) "actually flips" true
    (List.exists Fun.id flips && List.exists not flips)

let test_chain_valid_spec () =
  Alcotest.(check int) "valid" 0
    (List.length (Validate.check (Chain.topology ()) (Chain.app ())))

(* ---------------- gridflow ---------------- *)

let gridflow_solve ?deadline () =
  let topo =
    Gridflow.topology ~link_lats:[ 5.; 5.; 5. ] ~bws:[ 150.; 30.; 150. ]
  in
  let app = Gridflow.app ?deadline ~storage:0 ~consumer:3 () in
  let leveling = Gridflow.leveling app in
  ((Planner.plan (Planner.request topo app ~leveling)).Planner.result, Compile.compile topo app leveling)

let test_gridflow_plans () =
  match gridflow_solve () with
  | Ok p, pb ->
      (* Analyze must run at the storage side of the narrow link: the raw
         120-unit F cannot cross the 30-unit middle link. *)
      let placements = Plan.placements pb p in
      Alcotest.(check bool) "analyze on storage side" true
        (match List.assoc_opt "Analyze" placements with
        | Some n -> n <= 1
        | None -> false)
  | Error r, _ -> Alcotest.failf "no plan: %a" Planner.pp_failure r

let test_gridflow_deadline_prunes () =
  (* Total latency is 15 (links) + 5 (analyze) = 20. *)
  (match gridflow_solve ~deadline:20. () with
  | Ok _, _ -> ()
  | Error r, _ -> Alcotest.failf "20 should work: %a" Planner.pp_failure r);
  match gridflow_solve ~deadline:19. () with
  | Ok _, _ -> Alcotest.fail "19 must be infeasible"
  | Error _, _ -> ()

let test_gridflow_latency_metric () =
  match gridflow_solve () with
  | Ok p, _pb ->
      Alcotest.(check bool) "cost positive" true (p.Plan.cost_lb > 0.)
  | Error r, _ -> Alcotest.failf "no plan: %a" Planner.pp_failure r

let test_gridflow_valid_spec () =
  let topo = Gridflow.topology ~link_lats:[ 1. ] ~bws:[ 100. ] in
  Alcotest.(check int) "valid" 0
    (List.length (Validate.check topo (Gridflow.app ~storage:0 ~consumer:1 ())))

let test_gridflow_narrow_everywhere () =
  (* All links 15 units: R needs at least 20 at the consumer, but any
     crossing caps it at 15; the instance is infeasible and must be
     reported as such, not crash. *)
  let topo = Gridflow.topology ~link_lats:[ 1.; 1. ] ~bws:[ 15.; 15. ] in
  let app = Gridflow.app ~storage:0 ~consumer:2 () in
  let leveling = Gridflow.leveling app in
  match (Planner.plan (Planner.request topo app ~leveling)).Planner.result with
  | Ok _ -> Alcotest.fail "cannot deliver 20 units of R through 15-unit links"
  | Error _ -> ()

let suite =
  [
    ("media scenario levels (Table 1)", `Quick, test_media_scenarios_table1);
    ("media validates", `Quick, test_media_validates_everywhere);
    ("media custom supply/demand", `Quick, test_media_custom_supply_demand);
    ("chain: cheap links go direct", `Quick, test_chain_cheap_links_direct);
    ("chain: dear links compress", `Quick, test_chain_dear_links_compress);
    ("chain: single crossover", `Quick, test_chain_crossover_monotone);
    ("chain: valid spec", `Quick, test_chain_valid_spec);
    ("gridflow: plans", `Quick, test_gridflow_plans);
    ("gridflow: deadline prunes", `Quick, test_gridflow_deadline_prunes);
    ("gridflow: metrics", `Quick, test_gridflow_latency_metric);
    ("gridflow: valid spec", `Quick, test_gridflow_valid_spec);
    ("gridflow: infeasible narrow", `Quick, test_gridflow_narrow_everywhere);
  ]
