(* Media stream delivery over the paper's Small network (Figure 9).

   The 6-node network routes the server's media stream across three LAN
   links and one WAN link.  With coarse levels (scenario B) the planner
   finds the shortest 10-action plan, which ships the raw 100-unit stream
   over the LANs; with finer levels (scenario C) it discovers that
   splitting and compressing at the server saves 35% of LAN bandwidth at
   the price of three more actions - and proves it cheaper under the
   bandwidth-proportional cost function.

   Run with: dune exec examples/media_delivery.exe *)

module Media = Sekitei_domains.Media
module Scenarios = Sekitei_harness.Scenarios
module Planner = Sekitei_core.Planner
module Compile = Sekitei_core.Compile
module Plan = Sekitei_core.Plan
module Replay = Sekitei_core.Replay

let describe name sc level =
  let leveling = Media.leveling level sc.Scenarios.app in
  let pb = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
  match (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling)).Planner.result with
  | Ok p ->
      Format.printf "== %s ==@." name;
      Format.printf "%s@." (Plan.to_string pb p);
      Format.printf
        "actions: %d | cost bound: %g | realized cost: %g | peak LAN use: %g \
         | peak WAN use: %g@.@."
        (Plan.length p) p.Plan.cost_lb p.Plan.metrics.Replay.realized_cost
        p.Plan.metrics.Replay.lan_peak p.Plan.metrics.Replay.wan_peak
  | Error r -> Format.printf "== %s ==@.no plan: %a@.@." name Planner.pp_failure r

let () =
  let sc = Scenarios.small () in
  Format.printf
    "Small network: server n4 -LAN- n3 -WAN(70)- n2 -LAN- n1 -LAN- n0 client@.@.";
  describe "Scenario B: coarse levels find the shortest plan" sc Media.B;
  describe "Scenario C: finer levels find the resource-optimal plan" sc Media.C;
  (* The greedy baseline fails outright. *)
  (match (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app)).Planner.result with
  | Ok _ -> Format.printf "greedy unexpectedly found a plan@."
  | Error r ->
      Format.printf
        "Original greedy Sekitei (no levels): %a - it insists on pushing all \
         200 units, which no node can split within 30 CPU units.@."
        Planner.pp_failure r)
