(* Grid workflow deployment with a latency deadline.

   The gridflow domain models a Pegasus-style task graph: a storage
   service streams a dataset F; an Analyze task reduces it 4:1 into a
   result stream R; the consumer needs 20 units of R within a latency
   deadline.  Links carry both bandwidth and latency, and the middle link
   is narrow (30 units) - the planner must decide where to run Analyze
   (and whether to compress F) so that both the bandwidth and the
   accumulated latency constraints hold.

   Run with: dune exec examples/grid_workflow.exe *)

module Gridflow = Sekitei_domains.Gridflow
module Planner = Sekitei_core.Planner
module Compile = Sekitei_core.Compile
module Plan = Sekitei_core.Plan

let () =
  let topo =
    Gridflow.topology ~link_lats:[ 5.; 5.; 5. ] ~bws:[ 150.; 30.; 150. ]
  in
  Format.printf
    "Line network n0..n3; middle link only 30 bandwidth units; each link \
     adds 5 latency units.@.Storage at n0 streams 120 units of F; consumer \
     at n3 needs R = F/4 >= 20 within the deadline.@.@.";
  List.iter
    (fun deadline ->
      let app = Gridflow.app ~deadline ~storage:0 ~consumer:3 () in
      let leveling = Gridflow.leveling app in
      let pb = Compile.compile topo app leveling in
      Format.printf "deadline %g: " deadline;
      match (Planner.plan (Planner.request topo app ~leveling)).Planner.result with
      | Ok p ->
          Format.printf "%d-action plan (cost bound %g)@.  %s@." (Plan.length p)
            p.Plan.cost_lb
            (String.concat "; "
               (String.split_on_char '\n' (Plan.to_string pb p)))
      | Error r -> Format.printf "no plan (%a)@." Planner.pp_failure r)
    [ 60.; 40.; 25.; 10. ]
