(* Defining a CPP entirely in the textual specification language.

   The DSL mirrors the paper's component specifications (Figure 2) and
   level declarations (Figure 6).  This example describes a tiny
   video-transcoding deployment: a camera streams raw video V; an Encode
   component shrinks it 5:1 into E; the viewer needs at least 8 units of E
   across a 10-unit link - so the encoder must sit on the camera's side.

   Run with: dune exec examples/custom_spec.exe *)

let spec =
  {|
interface V {
  property ibw degradable;
  cross ibw := min(ibw, link.lbw);
  consume link.lbw -= min(ibw, link.lbw);
  cost 1 + ibw / 10;
  levels ibw: 40, 50;
}

interface E {
  property ibw degradable;
  cross ibw := min(ibw, link.lbw);
  consume link.lbw -= min(ibw, link.lbw);
  cost 1 + ibw / 10;
  levels ibw: 8, 10;
}

component Camera {
  provides V;
  effect V.ibw := 50;
  anchored;
}

component Encode {
  requires V;
  provides E;
  effect E.ibw := V.ibw / 5;
  consume node.cpu -= V.ibw / 2;
  cost 1 + V.ibw / 10;
}

component Viewer {
  requires E;
  condition E.ibw >= 8;
  cost 1;
}

network {
  node cam cpu 30;
  node hub cpu 30;
  node tv cpu 30;
  link cam -- hub lan lbw 100;
  link hub -- tv wan lbw 10;
}

deploy {
  place Camera on cam;
  goal Viewer on tv;
}
|}

module Dsl = Sekitei_spec.Dsl
module Planner = Sekitei_core.Planner
module Compile = Sekitei_core.Compile
module Plan = Sekitei_core.Plan

let () =
  let doc = Dsl.parse_document spec in
  let topo = Option.get doc.Dsl.topo in
  let pb = Compile.compile topo doc.Dsl.app doc.Dsl.leveling in
  match (Planner.plan (Planner.request topo doc.Dsl.app ~leveling:doc.Dsl.leveling)).Planner.result with
  | Ok p ->
      Format.printf "Plan (%d actions, cost bound %g):@.%s@." (Plan.length p)
        p.Plan.cost_lb (Plan.to_string pb p);
      (* The printer round-trips, so specs can be generated too. *)
      Format.printf "@.Round-tripped spec is %d bytes of DSL text.@."
        (String.length (Dsl.print_document ~topo doc.Dsl.app doc.Dsl.leveling))
  | Error r -> Format.printf "no plan: %a@." Planner.pp_failure r
