(* The Figure 5 cost tradeoff: longer network paths vs extra computation.

   A 100-unit text stream can reach the client over three wide links
   (no processing) or over two narrow links with Zip/Unzip components at
   each end.  Sweeping the relative price of link bandwidth against node
   computation shows the planner flipping between the two deployments at
   the crossover point - the paper's argument for cost-function-driven
   planning.

   Run with: dune exec examples/cost_tradeoff.exe *)

module Chain = Sekitei_domains.Chain
module Planner = Sekitei_core.Planner
module Compile = Sekitei_core.Compile
module Plan = Sekitei_core.Plan

let () =
  let topo = Chain.topology () in
  Format.printf
    "Routes from server n0 to client n3:@.  wide:   n0 -150- n1 -150- n2 \
     -150- n3 (3 crossings)@.  narrow: n0 -60- n4 -60- n3 (2 crossings, \
     needs Zip/Unzip)@.@.";
  Format.printf "%-18s %-10s %-12s %s@." "link-cost weight" "actions"
    "cost bound" "route chosen";
  List.iter
    (fun alpha ->
      let app = Chain.app ~cross_weight:alpha () in
      let leveling = Chain.leveling app in
      let pb = Compile.compile topo app leveling in
      match (Planner.plan (Planner.request topo app ~leveling)).Planner.result with
      | Ok p ->
          let zip =
            List.exists (fun (n, _) -> String.equal n "Zip") (Plan.placements pb p)
          in
          Format.printf "%-18g %-10d %-12g %s@." alpha (Plan.length p)
            p.Plan.cost_lb
            (if zip then "narrow + Zip/Unzip" else "wide, no processing")
      | Error r -> Format.printf "%-18g no plan (%a)@." alpha Planner.pp_failure r)
    [ 0.25; 0.5; 0.75; 1.0; 1.05; 1.1; 1.25; 1.5; 2.0; 4.0 ]
