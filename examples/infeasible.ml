(* Proving infeasibility without searching.

   A capacity-starved diamond: the camera's stream has two routes to the
   viewer, but the encoder every route needs demands 100 CPU units on
   nodes that offer 40.  Grounding emits no Encode placement anywhere,
   the encoded stream E becomes unproducible, and dead-action pruning
   cascades through everything downstream — so the static preflight
   analyzer can return a proof of infeasibility (error diagnostics with
   stable SKT codes) without ever starting the SLRG/RG search.

   The same analysis is available from the command line:
     sekitei check --spec examples/specs/infeasible.spec

   Run with: dune exec examples/infeasible.exe *)

let spec =
  {|
interface V {
  property ibw degradable;
  cross ibw := min(ibw, link.lbw);
  consume link.lbw -= min(ibw, link.lbw);
  cost 1 + ibw / 10;
  levels ibw: 40, 50;
}

interface E {
  property ibw degradable;
  cross ibw := min(ibw, link.lbw);
  consume link.lbw -= min(ibw, link.lbw);
  cost 1 + ibw / 10;
  levels ibw: 8, 10;
}

component Camera {
  provides V;
  effect V.ibw := 50;
  anchored;
}

component Encode {
  requires V;
  provides E;
  effect E.ibw := V.ibw / 5;
  consume node.cpu -= 100;
  cost 1 + V.ibw / 10;
}

component Viewer {
  requires E;
  condition E.ibw >= 8;
  cost 1;
}

network {
  node src cpu 40;
  node left cpu 40;
  node right cpu 40;
  node dst cpu 40;
  link src -- left lan lbw 100;
  link src -- right lan lbw 100;
  link left -- dst wan lbw 10;
  link right -- dst wan lbw 10;
}

deploy {
  place Camera on src;
  goal Viewer on dst;
}
|}

module Dsl = Sekitei_spec.Dsl
module Compile = Sekitei_core.Compile
module Problem = Sekitei_core.Problem
module Preflight = Sekitei_analysis.Preflight
module Diagnostic = Sekitei_util.Diagnostic

let () =
  let doc = Dsl.parse_document spec in
  let topo = Option.get doc.Dsl.topo in
  let pb = Compile.compile topo doc.Dsl.app doc.Dsl.leveling in
  Format.printf "compiled %d leveled action(s); %d proven dead and pruned@."
    (Array.length pb.Problem.actions) pb.Problem.pruned_actions;
  let diags = Preflight.check pb in
  List.iter
    (fun d -> print_endline (Diagnostic.to_string d))
    (Diagnostic.by_severity diags);
  match Diagnostic.errors diags with
  | [] -> Format.printf "no infeasibility proof found; a search could run@."
  | _ :: _ ->
      Format.printf
        "provably infeasible: the goal cannot be reached on this network — \
         no search was needed@."
