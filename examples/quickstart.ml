(* Quickstart: solve the paper's Figure 3 instance in ~40 lines.

   Two nodes joined by a 70-unit WAN link; the server (node n0) supplies up
   to 200 units of a media stream M; the client (node n1) needs at least
   90.  Sending M directly is impossible (the link caps it at 70), and the
   greedy planner cannot afford to split the full 200 units (CPU!), so the
   leveled planner throttles the stream into the [90,100) level and routes
   it through Splitter/Zip - exactly the paper's Figure 4 plan.

   Run with: dune exec examples/quickstart.exe *)

module Topology = Sekitei_network.Topology
module Generators = Sekitei_network.Generators
module Media = Sekitei_domains.Media
module Planner = Sekitei_core.Planner
module Compile = Sekitei_core.Compile
module Plan = Sekitei_core.Plan

let () =
  (* 1. The network: one WAN link of 70 bandwidth units. *)
  let topo = Generators.line_kinds [ Topology.Wan ] in

  (* 2. The application: the media-delivery component library with the
     server anchored on node 0 and the client wanted on node 1. *)
  let app = Media.app ~server:0 ~client:1 () in

  (* 3. Resource levels: Table 1's scenario C (cutpoints 90 and 100 on the
     M stream, proportional levels derived for T, I and Z). *)
  let leveling = Media.leveling Media.C app in

  (* 4. Plan. *)
  match (Planner.plan (Planner.request topo app ~leveling)).Planner.result with
  | Ok plan ->
      let pb = Compile.compile topo app leveling in
      Format.printf "Found a %d-action plan (cost bound %g):@.%s@."
        (Plan.length plan) plan.Plan.cost_lb
        (Plan.to_string pb plan)
  | Error reason ->
      Format.printf "No plan: %a@." Planner.pp_failure reason
