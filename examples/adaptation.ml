(* Adapting an existing deployment to a changed environment.

   The paper's future work (section 6) proposes repairing deployments
   with migration operators whose cost differs from initial placement.
   The Redeploy module implements this through per-placement cost
   adjustments: keeping a component where it already runs is discounted,
   moving a component type to another node pays a migration surcharge.

   This example deploys the media application on the Small network, then
   adapts it to two events: a WAN degradation the current placement
   survives (everything kept), and a CPU failure at the server node that
   forces the Splitter/Zip pair to migrate one hop downstream.

   Run with: dune exec examples/adaptation.exe *)

module Topology = Sekitei_network.Topology
module Media = Sekitei_domains.Media
module Scenarios = Sekitei_harness.Scenarios
module Planner = Sekitei_core.Planner
module Compile = Sekitei_core.Compile
module Plan = Sekitei_core.Plan
module Redeploy = Sekitei_core.Redeploy

module Mutate = Sekitei_network.Mutate

(* Link ids are stable across every Mutate operation, so iterating the
   original topology's ids while folding mutations is always safe — even
   across remove_link/fail_node, where a held id either still denotes
   the same physical link or raises Topology.Stale_link instead of
   silently aliasing a neighbor. *)
let degrade_wan topo new_bw =
  Array.fold_left
    (fun acc (l : Topology.link) ->
      match l.Topology.kind with
      | Topology.Wan -> Mutate.set_link_resource acc l.Topology.link_id "lbw" new_bw
      | Topology.Lan -> acc)
    topo (Topology.links topo)

let cripple_node topo node new_cpu =
  Mutate.set_node_resource topo node "cpu" new_cpu

let () =
  let sc = Scenarios.small () in
  let leveling = Media.leveling Media.D sc.Scenarios.app in
  let pb0 = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
  match (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling)).Planner.result with
  | Error r -> Format.printf "initial planning failed: %a@." Planner.pp_failure r
  | Ok p0 ->
      Format.printf "Initial deployment (%d actions, cost bound %g):@.%s@.@."
        (Plan.length p0) p0.Plan.cost_lb (Plan.to_string pb0 p0);
      let previous = Plan.placements pb0 p0 in
      (* Adaptation decisions are interactive: cap the search so that
         infeasible environments are reported within seconds. *)
      let config =
        { Planner.default_config with Planner.rg_max_expansions = 50_000 }
      in
      let adapt label topo =
        Format.printf "--- %s ---@." label;
        let outcome =
          Redeploy.replan ~config ~previous topo sc.Scenarios.app leveling
        in
        (match outcome.Planner.result with
        | Ok p ->
            let pb = Compile.compile topo sc.Scenarios.app leveling in
            Format.printf "adapted plan (%d actions, adjusted cost bound %g)@."
              (Plan.length p) p.Plan.cost_lb;
            Format.printf "%a@." Redeploy.pp_diff (Redeploy.diff ~previous pb p)
        | Error r ->
            Format.printf "no feasible adaptation: %a@." Planner.pp_failure r);
        Format.printf "@."
      in
      adapt "WAN degrades 70 -> 66 (placement survives)"
        (degrade_wan sc.Scenarios.topo 66.);
      adapt "server node n4 CPU drops to 5 (Splitter/Zip must migrate)"
        (cripple_node sc.Scenarios.topo 4 5.);
      adapt "WAN degrades 70 -> 40 (no adaptation possible)"
        (degrade_wan sc.Scenarios.topo 40.)
