(* Qualitative constraints: deploying a web-service pipeline across
   partially trusted networks.

   The backend's plaintext response stream P may only cross links marked
   secure; an Encryptor/Decryptor pair (25% bandwidth overhead, CPU cost)
   lets it traverse untrusted segments.  The planner brackets exactly the
   untrusted portion of the path - or goes direct when everything is
   trusted.

   Run with: dune exec examples/secure_pipeline.exe *)

module Webservice = Sekitei_domains.Webservice
module Planner = Sekitei_core.Planner
module Compile = Sekitei_core.Compile
module Plan = Sekitei_core.Plan
module Deployment_dot = Sekitei_core.Deployment_dot

let describe secure =
  let topo = Webservice.topology ~secure in
  let app = Webservice.app ~backend:0 ~consumer:(List.length secure) () in
  let leveling = Webservice.leveling app in
  let pb = Compile.compile topo app leveling in
  Format.printf "links [%s]: "
    (String.concat "; "
       (List.map (fun s -> if s = 1 then "secure" else "open") secure));
  match (Planner.plan (Planner.request topo app ~leveling)).Planner.result with
  | Ok p ->
      Format.printf "%d actions, cost bound %g@.  %s@.@." (Plan.length p)
        p.Plan.cost_lb
        (String.concat "; " (String.split_on_char '\n' (Plan.to_string pb p)))
  | Error r -> Format.printf "no plan (%a)@.@." Planner.pp_failure r

let () =
  Format.printf
    "Backend on n0 streams 80 units of plaintext P; consumer on n3 needs 40.@.\
     P may only cross secure links; PE (encrypted, +25%% size) crosses \
     anything.@.@.";
  List.iter describe [ [ 1; 1; 1 ]; [ 1; 0; 1 ]; [ 0; 0; 0 ]; [ 0; 1; 0 ] ];
  (* Render the bracketed deployment as DOT for documentation. *)
  let secure = [ 1; 0; 1 ] in
  let topo = Webservice.topology ~secure in
  let app = Webservice.app ~backend:0 ~consumer:3 () in
  let leveling = Webservice.leveling app in
  let pb = Compile.compile topo app leveling in
  match (Planner.plan (Planner.request topo app ~leveling)).Planner.result with
  | Ok p ->
      Format.printf "DOT rendering of the bracketed deployment:@.%s@."
        (Deployment_dot.render pb p)
  | Error _ -> ()
