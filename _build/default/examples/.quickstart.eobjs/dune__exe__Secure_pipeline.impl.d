examples/secure_pipeline.ml: Format List Sekitei_core Sekitei_domains String
