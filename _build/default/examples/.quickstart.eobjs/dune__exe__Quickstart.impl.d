examples/quickstart.ml: Format Sekitei_core Sekitei_domains Sekitei_network
