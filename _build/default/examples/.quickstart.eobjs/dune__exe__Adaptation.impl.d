examples/adaptation.ml: Array Format Sekitei_core Sekitei_domains Sekitei_harness Sekitei_network
