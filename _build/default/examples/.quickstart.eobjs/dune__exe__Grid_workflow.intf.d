examples/grid_workflow.mli:
