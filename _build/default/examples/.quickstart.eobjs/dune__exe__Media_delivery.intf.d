examples/media_delivery.mli:
