examples/adaptation.mli:
