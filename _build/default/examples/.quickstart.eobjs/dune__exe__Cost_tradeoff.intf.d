examples/cost_tradeoff.mli:
