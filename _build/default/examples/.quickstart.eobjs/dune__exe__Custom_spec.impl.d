examples/custom_spec.ml: Format Option Sekitei_core Sekitei_spec String
