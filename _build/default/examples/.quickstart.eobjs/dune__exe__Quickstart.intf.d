examples/quickstart.mli:
