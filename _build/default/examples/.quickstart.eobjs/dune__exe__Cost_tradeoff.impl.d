examples/cost_tradeoff.ml: Format List Sekitei_core Sekitei_domains String
