examples/grid_workflow.ml: Format List Sekitei_core Sekitei_domains String
