(* Unit tests for Sekitei_core.Replay: optimistic vs from-init execution,
   throttling, consumption accounting, metrics. *)

module Compile = Sekitei_core.Compile
module Problem = Sekitei_core.Problem
module Action = Sekitei_core.Action
module Replay = Sekitei_core.Replay
module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Media = Sekitei_domains.Media
module G = Sekitei_network.Generators
module T = Sekitei_network.Topology

let tiny level =
  let app = Media.app ~server:0 ~client:1 () in
  let leveling = Media.leveling level app in
  Compile.compile (G.line_kinds [ T.Wan ]) app leveling

(* Find a unique action by predicate. *)
let find_action pb pred =
  match Array.to_list pb.Problem.actions |> List.filter pred with
  | [ a ] -> a
  | [] -> Alcotest.fail "no matching action"
  | many ->
      Alcotest.failf "ambiguous action (%d matches)" (List.length many)

let place_action pb comp_name ~node ~in_level =
  let comp = Problem.comp_index pb comp_name in
  find_action pb (fun (a : Action.t) ->
      match a.Action.kind with
      | Action.Place { comp = c; node = n } ->
          c = comp && n = node
          && (a.Action.in_levels = [||]
             || Array.exists
                  (fun (_, ivl) -> Sekitei_util.Interval.lo ivl = in_level)
                  a.Action.in_levels)
      | _ -> false)

let cross_action pb iface_name ~src ~in_lo =
  let iface = Problem.iface_index pb iface_name in
  find_action pb (fun (a : Action.t) ->
      match a.Action.kind with
      | Action.Cross { iface = i; src = s; _ } ->
          i = iface && s = src
          && Array.for_all
               (fun (_, ivl) -> Sekitei_util.Interval.lo ivl = in_lo)
               a.Action.in_levels
      | _ -> false)

(* The canonical 7-action tiny plan at level [90,100). *)
let tiny_plan pb =
  [
    place_action pb "Splitter" ~node:0 ~in_level:90.;
    place_action pb "Zip" ~node:0 ~in_level:63.;
    cross_action pb "Z" ~src:0 ~in_lo:31.5;
    cross_action pb "I" ~src:0 ~in_lo:27.;
    place_action pb "Unzip" ~node:1 ~in_level:31.5;
    place_action pb "Merger" ~node:1 ~in_level:63.;
    place_action pb "Client" ~node:1 ~in_level:90.;
  ]

let test_full_replay_succeeds () =
  let pb = tiny Media.C in
  match Replay.run pb ~mode:Replay.From_init (tiny_plan pb) with
  | Ok m ->
      Alcotest.(check (float 1e-6)) "wan peak Z+I" 65. m.Replay.wan_peak;
      Alcotest.(check (float 1e-6)) "lan peak none" 0. m.Replay.lan_peak;
      (* Splitter (20) + Zip (7) on node 0 *)
      Alcotest.(check (float 1e-6)) "cpu at server" 27.
        (List.assoc 0 m.Replay.node_cpu_used);
      Alcotest.(check (float 1e-6)) "cpu at client" 27.
        (List.assoc 1 m.Replay.node_cpu_used);
      (* delivered M at the client operates at the 100 cutpoint *)
      let m_i = Problem.iface_index pb "M" in
      let delivered =
        List.find_map
          (fun (i, n, v) -> if i = m_i && n = 1 then Some v else None)
          m.Replay.delivered
      in
      Alcotest.(check (option (float 1e-6))) "delivers 100" (Some 100.) delivered
  | Error f -> Alcotest.failf "replay failed: %s" f.Replay.reason

let test_replay_order_dependent () =
  (* Consuming Z at node 1 before it has been produced fails from-init but
     is optimistically allowed. *)
  let pb = tiny Media.C in
  let tail = [ place_action pb "Unzip" ~node:1 ~in_level:31.5 ] in
  (match Replay.run pb ~mode:Replay.From_init tail with
  | Ok _ -> Alcotest.fail "should fail: Z not yet available"
  | Error f ->
      Alcotest.(check bool) "mentions Z" true
        (Sekitei_spec.Str_split.split_once f.Replay.reason "Z" <> None));
  match Replay.run pb ~mode:Replay.Optimistic tail with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "optimistic should pass: %s" f.Replay.reason

let test_greedy_cpu_failure () =
  (* Scenario A: placing the splitter at the full 200 units blows the
     CPU budget even optimistically (the greedy failure mode). *)
  let pb = tiny Media.A in
  let splitter = place_action pb "Splitter" ~node:0 ~in_level:0. in
  match Replay.run pb ~mode:Replay.Optimistic [ splitter ] with
  | Ok _ -> Alcotest.fail "should exceed CPU at max utilization"
  | Error f ->
      Alcotest.(check bool) "cpu mentioned" true
        (Sekitei_spec.Str_split.split_once f.Replay.reason "cpu" <> None)

let test_leveled_cpu_ok () =
  (* The same placement throttled into [90,100) fits. *)
  let pb = tiny Media.C in
  let splitter = place_action pb "Splitter" ~node:0 ~in_level:90. in
  match Replay.run pb ~mode:Replay.Optimistic [ splitter ] with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "unexpected failure: %s" f.Replay.reason

let test_link_capacity_accumulates () =
  (* Z consumes 35 then I consumes 30 of the 70-unit link; a second Z
     crossing has no room left. *)
  let pb = tiny Media.C in
  let z = cross_action pb "Z" ~src:0 ~in_lo:31.5 in
  let i = cross_action pb "I" ~src:0 ~in_lo:27. in
  let pre =
    [
      place_action pb "Splitter" ~node:0 ~in_level:90.;
      place_action pb "Zip" ~node:0 ~in_level:63.;
    ]
  in
  (match Replay.run pb ~mode:Replay.From_init (pre @ [ z; i ]) with
  | Ok m ->
      Alcotest.(check (float 1e-6)) "link fully used minus 5" 65. m.Replay.wan_peak
  | Error f -> Alcotest.failf "unexpected: %s" f.Replay.reason);
  (* crossing the T stream (63 units at operating point 70) after Z and I
     no longer fits: min(.,5) degrades below its level *)
  let t = cross_action pb "T" ~src:0 ~in_lo:63. in
  match Replay.run pb ~mode:Replay.From_init (pre @ [ z; i; t ]) with
  | Ok _ -> Alcotest.fail "T should not fit next to Z and I"
  | Error _ -> ()

let test_source_scale () =
  let pb = tiny Media.C in
  let plan = tiny_plan pb in
  (* Scaling supply to 60% (120 units) still admits the [90,100) level;
     scaling to 40% (80) breaks it. *)
  (match Replay.run ~source_scale:0.6 pb ~mode:Replay.From_init plan with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "60%% should work: %s" f.Replay.reason);
  match Replay.run ~source_scale:0.4 pb ~mode:Replay.From_init plan with
  | Ok _ -> Alcotest.fail "40% supply cannot reach the [90,100) level"
  | Error _ -> ()

let test_metrics_cost_positive () =
  let pb = tiny Media.C in
  match Replay.run pb ~mode:Replay.From_init (tiny_plan pb) with
  | Ok m -> Alcotest.(check bool) "realized cost positive" true (m.Replay.realized_cost > 0.)
  | Error f -> Alcotest.failf "unexpected: %s" f.Replay.reason

let test_empty_tail () =
  let pb = tiny Media.C in
  match Replay.run pb ~mode:Replay.From_init [] with
  | Ok m ->
      Alcotest.(check (float 0.)) "no cost" 0. m.Replay.realized_cost;
      Alcotest.(check (float 0.)) "no lan use" 0. m.Replay.lan_peak
  | Error _ -> Alcotest.fail "empty tail must succeed"

let test_failure_reports_action () =
  let pb = tiny Media.A in
  let splitter = place_action pb "Splitter" ~node:0 ~in_level:0. in
  match Replay.run pb ~mode:Replay.From_init [ splitter ] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
      Alcotest.(check int) "index" 0 f.Replay.failed_index;
      Alcotest.(check bool) "label mentions Splitter" true
        (Sekitei_spec.Str_split.split_once f.Replay.failed_action "Splitter" <> None)

let suite =
  [
    ("full replay succeeds", `Quick, test_full_replay_succeeds);
    ("replay order dependent", `Quick, test_replay_order_dependent);
    ("greedy cpu failure", `Quick, test_greedy_cpu_failure);
    ("leveled cpu ok", `Quick, test_leveled_cpu_ok);
    ("link capacity accumulates", `Quick, test_link_capacity_accumulates);
    ("source scale", `Quick, test_source_scale);
    ("metrics cost positive", `Quick, test_metrics_cost_positive);
    ("empty tail", `Quick, test_empty_tail);
    ("failure reports action", `Quick, test_failure_reports_action);
  ]
