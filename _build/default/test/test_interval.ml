(* Unit tests for Sekitei_util.Interval: construction, membership,
   arithmetic, satisfiability, cutpoints. *)

module I = Sekitei_util.Interval

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let ivl = Alcotest.testable (fun fmt i -> I.pp fmt i) I.equal

let test_make_basic () =
  let i = I.make 1. 5. in
  check_float "lo" 1. (I.lo i);
  check_float "hi" 5. (I.hi i)

let test_make_unbounded () =
  let i = I.make 3. Float.infinity in
  check_bool "hi infinite" true (Float.is_finite (I.hi i) = false);
  check_bool "not a point" false (I.is_point i)

let test_make_empty_raises () =
  Alcotest.check_raises "hi <= lo" I.Empty_interval (fun () ->
      ignore (I.make 5. 5.));
  Alcotest.check_raises "reversed" I.Empty_interval (fun () ->
      ignore (I.make 5. 1.));
  Alcotest.check_raises "nan" I.Empty_interval (fun () ->
      ignore (I.make Float.nan 1.));
  Alcotest.check_raises "infinite lo" I.Empty_interval (fun () ->
      ignore (I.make Float.infinity Float.infinity))

let test_point () =
  let p = I.point 7. in
  check_bool "is point" true (I.is_point p);
  check_bool "mem itself" true (I.mem 7. p);
  check_bool "not mem other" false (I.mem 7.1 p)

let test_point_infinite_raises () =
  Alcotest.check_raises "point inf" I.Empty_interval (fun () ->
      ignore (I.point Float.infinity))

let test_full () =
  check_bool "0 in full" true (I.mem 0. I.full);
  check_bool "1e300 in full" true (I.mem 1e300 I.full);
  check_bool "neg not in full" false (I.mem (-1.) I.full)

let test_mem_half_open () =
  let i = I.make 2. 4. in
  check_bool "lo included" true (I.mem 2. i);
  check_bool "mid included" true (I.mem 3. i);
  check_bool "hi excluded" false (I.mem 4. i);
  check_bool "below" false (I.mem 1.9 i)

let test_operating_point () =
  check_float "finite hi" 4. (I.operating_point ~cap:100. (I.make 2. 4.));
  check_float "unbounded uses cap" 100.
    (I.operating_point ~cap:100. (I.make 2. Float.infinity));
  check_float "point" 7. (I.operating_point ~cap:100. (I.point 7.))

let test_inter () =
  Alcotest.(check (option ivl))
    "overlap" (Some (I.make 3. 4.))
    (I.inter (I.make 1. 4.) (I.make 3. 6.));
  Alcotest.(check (option ivl)) "disjoint" None (I.inter (I.make 1. 2.) (I.make 3. 4.));
  Alcotest.(check (option ivl))
    "touching half-open" None
    (I.inter (I.make 1. 3.) (I.make 3. 4.));
  Alcotest.(check (option ivl))
    "point inside" (Some (I.point 2.))
    (I.inter (I.point 2.) (I.make 1. 3.));
  Alcotest.(check (option ivl))
    "point on lo boundary" (Some (I.point 1.))
    (I.inter (I.point 1.) (I.make 1. 3.))

let test_hull () =
  Alcotest.check ivl "hull" (I.make 1. 6.) (I.hull (I.make 1. 2.) (I.make 5. 6.))

let test_subset () =
  check_bool "subset" true (I.subset (I.make 2. 3.) (I.make 1. 4.));
  check_bool "not subset" false (I.subset (I.make 0. 3.) (I.make 1. 4.));
  check_bool "self" true (I.subset (I.make 1. 4.) (I.make 1. 4.))

let test_add () =
  Alcotest.check ivl "add" (I.make 4. 6.) (I.add (I.make 1. 2.) (I.make 3. 4.));
  let p = I.add (I.point 1.) (I.point 2.) in
  check_bool "points add to point" true (I.is_point p);
  check_float "point sum" 3. (I.lo p)

let test_sub () =
  let d = I.sub (I.make 5. 7.) (I.point 2.) in
  check_float "sub lo" 3. (I.lo d);
  check_float "sub hi" 5. (I.hi d);
  (* enclosure may span negatives *)
  let d2 = I.sub (I.make 0. 1.) (I.make 0. 1.) in
  check_float "sub self lo" (-1.) (I.lo d2);
  check_float "sub self hi" 1. (I.hi d2)

let test_scale () =
  Alcotest.check ivl "scale 2" (I.make 2. 4.) (I.scale 2. (I.make 1. 2.));
  check_bool "scale 0 is point" true (I.is_point (I.scale 0. (I.make 1. 2.)));
  Alcotest.check ivl "scale unbounded"
    (I.make 2. Float.infinity)
    (I.scale 2. (I.make 1. Float.infinity));
  Alcotest.check_raises "negative scale"
    (Invalid_argument "Interval.scale: negative factor") (fun () ->
      ignore (I.scale (-1.) I.full))

let test_shift () =
  Alcotest.check ivl "shift" (I.make 11. 12.) (I.shift 10. (I.make 1. 2.))

let test_min_max_scalar () =
  Alcotest.check ivl "min caps" (I.make 1. 3.) (I.min_scalar 3. (I.make 1. 5.));
  check_bool "min collapses to point" true
    (I.is_point (I.min_scalar 1. (I.make 1. 5.)));
  Alcotest.check ivl "max floors" (I.make 3. 5.) (I.max_scalar 3. (I.make 1. 5.))

let test_min_max_pointwise () =
  Alcotest.check ivl "min_" (I.make 1. 3.) (I.min_ (I.make 1. 5.) (I.make 2. 3.));
  Alcotest.check ivl "max_" (I.make 2. 5.) (I.max_ (I.make 1. 5.) (I.make 2. 3.))

let test_sat_ge () =
  check_bool "interval reaches" true (I.sat_ge (I.make 0. 100.) 90.);
  check_bool "half-open misses hi" false (I.sat_ge (I.make 70. 90.) 90.);
  check_bool "point ge" true (I.sat_ge (I.point 90.) 90.);
  check_bool "point below" false (I.sat_ge (I.point 89.) 90.)

let test_sat_le () =
  check_bool "lo below" true (I.sat_le (I.make 0. 100.) 50.);
  check_bool "lo at" true (I.sat_le (I.make 50. 100.) 50.);
  check_bool "lo above" false (I.sat_le (I.make 51. 100.) 50.)

let test_sat_eq () =
  check_bool "overlapping sat" true (I.sat_eq (I.make 0. 10.) (I.make 5. 20.));
  check_bool "disjoint unsat" false (I.sat_eq (I.make 0. 5.) (I.make 6. 20.))

let test_of_cutpoints () =
  let levels = I.of_cutpoints [ 30.; 70. ] in
  Alcotest.(check int) "three levels" 3 (List.length levels);
  Alcotest.check ivl "first" (I.make 0. 30.) (List.nth levels 0);
  Alcotest.check ivl "second" (I.make 30. 70.) (List.nth levels 1);
  Alcotest.check ivl "third" (I.make 70. Float.infinity) (List.nth levels 2)

let test_of_cutpoints_empty () =
  Alcotest.(check int) "single full level" 1 (List.length (I.of_cutpoints []))

let test_of_cutpoints_invalid () =
  Alcotest.check_raises "not increasing"
    (Invalid_argument "Interval.of_cutpoints: not strictly increasing")
    (fun () -> ignore (I.of_cutpoints [ 70.; 30. ]));
  Alcotest.check_raises "zero cutpoint"
    (Invalid_argument "Interval.of_cutpoints: not strictly increasing")
    (fun () -> ignore (I.of_cutpoints [ 0.; 30. ]))

let test_of_points () =
  Alcotest.check ivl "hull of points" (I.make 1. 9.) (I.of_points [ 3.; 1.; 9. ]);
  check_bool "single point" true (I.is_point (I.of_points [ 4. ]));
  Alcotest.check ivl "with infinity"
    (I.make 2. Float.infinity)
    (I.of_points [ 2.; Float.infinity ])

let test_to_string () =
  Alcotest.(check string) "half open" "[1,2)" (I.to_string (I.make 1. 2.));
  Alcotest.(check string) "unbounded" "[1,inf)"
    (I.to_string (I.make 1. Float.infinity));
  Alcotest.(check string) "point" "{3}" (I.to_string (I.point 3.))

let test_cutpoints_partition () =
  (* Every non-negative value falls in exactly one level. *)
  let levels = I.of_cutpoints [ 30.; 70.; 90.; 100. ] in
  List.iter
    (fun x ->
      let hits = List.length (List.filter (I.mem x) levels) in
      Alcotest.(check int) (Printf.sprintf "x=%g in one level" x) 1 hits)
    [ 0.; 29.9; 30.; 69.; 70.; 89.9; 90.; 99.; 100.; 1e6 ]

let suite =
  [
    ("make basic", `Quick, test_make_basic);
    ("make unbounded", `Quick, test_make_unbounded);
    ("make empty raises", `Quick, test_make_empty_raises);
    ("point", `Quick, test_point);
    ("point infinite raises", `Quick, test_point_infinite_raises);
    ("full", `Quick, test_full);
    ("mem half-open", `Quick, test_mem_half_open);
    ("operating point", `Quick, test_operating_point);
    ("inter", `Quick, test_inter);
    ("hull", `Quick, test_hull);
    ("subset", `Quick, test_subset);
    ("add", `Quick, test_add);
    ("sub", `Quick, test_sub);
    ("scale", `Quick, test_scale);
    ("shift", `Quick, test_shift);
    ("min/max scalar", `Quick, test_min_max_scalar);
    ("min/max pointwise", `Quick, test_min_max_pointwise);
    ("sat_ge", `Quick, test_sat_ge);
    ("sat_le", `Quick, test_sat_le);
    ("sat_eq", `Quick, test_sat_eq);
    ("of_cutpoints", `Quick, test_of_cutpoints);
    ("of_cutpoints empty", `Quick, test_of_cutpoints_empty);
    ("of_cutpoints invalid", `Quick, test_of_cutpoints_invalid);
    ("of_points", `Quick, test_of_points);
    ("to_string", `Quick, test_to_string);
    ("cutpoints partition", `Quick, test_cutpoints_partition);
  ]
