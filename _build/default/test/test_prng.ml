(* Unit tests for Sekitei_util.Prng: determinism, ranges, shuffling. *)

module Prng = Sekitei_util.Prng

let test_determinism () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_different_seeds () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  Alcotest.(check bool) "different streams" false (Prng.next a = Prng.next b)

let test_int_range () =
  let t = Prng.create ~seed:7L in
  for _ = 1 to 1000 do
    let v = Prng.int t 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done

let test_int_bound_one () =
  let t = Prng.create ~seed:7L in
  for _ = 1 to 10 do
    Alcotest.(check int) "bound 1 gives 0" 0 (Prng.int t 1)
  done

let test_int_invalid () =
  let t = Prng.create ~seed:7L in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int t 0))

let test_int_covers () =
  (* All residues appear over enough draws. *)
  let t = Prng.create ~seed:9L in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int t 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let t = Prng.create ~seed:11L in
  for _ = 1 to 1000 do
    let v = Prng.float t 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (v >= 0. && v < 3.5)
  done

let test_bool_probability () =
  let t = Prng.create ~seed:13L in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Prng.bool t 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (rate > 0.25 && rate < 0.35)

let test_range_inclusive () =
  let t = Prng.create ~seed:17L in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 1000 do
    let v = Prng.range t 3 5 in
    Alcotest.(check bool) "in [3,5]" true (v >= 3 && v <= 5);
    if v = 3 then seen_lo := true;
    if v = 5 then seen_hi := true
  done;
  Alcotest.(check bool) "endpoints reachable" true (!seen_lo && !seen_hi)

let test_shuffle_permutation () =
  let t = Prng.create ~seed:19L in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_shuffle_deterministic () =
  let mk () =
    let t = Prng.create ~seed:23L in
    let arr = Array.init 20 Fun.id in
    Prng.shuffle t arr;
    arr
  in
  Alcotest.(check (array int)) "same seed, same shuffle" (mk ()) (mk ())

let test_choice () =
  let t = Prng.create ~seed:29L in
  for _ = 1 to 100 do
    let v = Prng.choice t [ 1; 2; 3 ] in
    Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choice: empty list")
    (fun () -> ignore (Prng.choice t []))

let test_sample () =
  let t = Prng.create ~seed:31L in
  let s = Prng.sample t 3 [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "size" 3 (List.length s);
  Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare s));
  List.iter
    (fun x -> Alcotest.(check bool) "drawn from source" true (List.mem x [ 1; 2; 3; 4; 5 ]))
    s;
  Alcotest.check_raises "too many" (Invalid_argument "Prng.sample: k > length")
    (fun () -> ignore (Prng.sample t 6 [ 1; 2 ]))

let test_split_independent () =
  let t = Prng.create ~seed:37L in
  let child = Prng.split t in
  (* Child stream differs from the parent's continuation. *)
  Alcotest.(check bool) "split differs" false (Prng.next child = Prng.next t)

let test_int_nonnegative_stress () =
  (* Regression: Int64->int truncation used to go negative. *)
  let t = Prng.create ~seed:0xDEADBEEFL in
  for _ = 1 to 100_000 do
    let v = Prng.int t 1_000_000 in
    if v < 0 then Alcotest.fail "negative draw"
  done

let suite =
  [
    ("determinism", `Quick, test_determinism);
    ("different seeds", `Quick, test_different_seeds);
    ("int range", `Quick, test_int_range);
    ("int bound one", `Quick, test_int_bound_one);
    ("int invalid", `Quick, test_int_invalid);
    ("int covers", `Quick, test_int_covers);
    ("float range", `Quick, test_float_range);
    ("bool probability", `Quick, test_bool_probability);
    ("range inclusive", `Quick, test_range_inclusive);
    ("shuffle permutation", `Quick, test_shuffle_permutation);
    ("shuffle deterministic", `Quick, test_shuffle_deterministic);
    ("choice", `Quick, test_choice);
    ("sample", `Quick, test_sample);
    ("split independent", `Quick, test_split_independent);
    ("int non-negative stress", `Quick, test_int_nonnegative_stress);
  ]
