(* Unit tests for Sekitei_core.Prop and Sekitei_core.Compile: interning,
   grounding, leveling, pruning, the initial state and goal rewriting. *)

module Prop = Sekitei_core.Prop
module Action = Sekitei_core.Action
module Compile = Sekitei_core.Compile
module Problem = Sekitei_core.Problem
module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Media = Sekitei_domains.Media
module G = Sekitei_network.Generators
module T = Sekitei_network.Topology
module I = Sekitei_util.Interval

(* ---------------- Prop interner ---------------- *)

let test_prop_roundtrip () =
  let t = Prop.create ~n_comps:3 ~n_nodes:4 ~levels_per_iface:[| 2; 5 |] in
  let all = List.init (Prop.count t) Fun.id in
  List.iter
    (fun id ->
      Alcotest.(check int) "id round-trip" id (Prop.id t (Prop.of_id t id)))
    all

let test_prop_count () =
  let t = Prop.create ~n_comps:3 ~n_nodes:4 ~levels_per_iface:[| 2; 5 |] in
  Alcotest.(check int) "count" ((3 * 4) + (4 * 2) + (4 * 5)) (Prop.count t)

let test_prop_distinct () =
  let t = Prop.create ~n_comps:2 ~n_nodes:3 ~levels_per_iface:[| 3 |] in
  let ids =
    List.concat
      [
        List.concat_map
          (fun c -> List.init 3 (fun n -> Prop.placed_id t ~comp:c ~node:n))
          [ 0; 1 ];
        List.concat_map
          (fun n -> List.init 3 (fun l -> Prop.avail_id t ~iface:0 ~node:n ~level:l))
          [ 0; 1; 2 ];
      ]
  in
  Alcotest.(check int) "all distinct" (List.length ids)
    (List.length (List.sort_uniq compare ids))

(* ---------------- compile: shared fixtures ---------------- *)

let tiny_topo () = G.line_kinds [ T.Wan ]
let app () = Media.app ~server:0 ~client:1 ()

let compile_with level =
  let app = app () in
  Compile.compile (tiny_topo ()) app (Media.leveling level app)

let test_action_counts_grow () =
  let count level = Array.length (compile_with level).Problem.actions in
  let a = count Media.A and b = count Media.B and c = count Media.C in
  let d = count Media.D and e = count Media.E in
  Alcotest.(check bool) "A < B" true (a < b);
  Alcotest.(check bool) "B < C" true (b < c);
  Alcotest.(check bool) "C < D" true (c < d);
  Alcotest.(check bool) "D < E (link leveling multiplies)" true (d < e)

let test_greedy_single_level () =
  let pb = compile_with Media.A in
  Array.iter
    (fun levels ->
      Alcotest.(check int) "one level per iface" 1 (Array.length levels))
    pb.Problem.iface_levels

let test_initial_state () =
  let pb = compile_with Media.C in
  let server = Problem.comp_index pb "Server" in
  let m = Problem.iface_index pb "M" in
  Alcotest.(check bool) "server placed" true
    pb.Problem.init.(Prop.placed_id pb.Problem.props ~comp:server ~node:0);
  (* M degradable with capacity 200: every level is initially available
     on the server node, none on the client node. *)
  for level = 0 to Array.length pb.Problem.iface_levels.(m) - 1 do
    Alcotest.(check bool) "avail at server" true
      pb.Problem.init.(Prop.avail_id pb.Problem.props ~iface:m ~node:0 ~level);
    Alcotest.(check bool) "not at client" false
      pb.Problem.init.(Prop.avail_id pb.Problem.props ~iface:m ~node:1 ~level)
  done

let test_sources () =
  let pb = compile_with Media.C in
  match pb.Problem.sources with
  | [ s ] ->
      Alcotest.(check int) "server node" 0 s.Problem.src_node;
      Alcotest.(check (float 0.)) "capacity" 200. (I.hi s.Problem.src_interval)
  | _ -> Alcotest.fail "expected one source"

let test_iface_max () =
  let pb = compile_with Media.C in
  let check name v =
    Alcotest.(check (float 1e-6)) name v
      pb.Problem.iface_max.(Problem.iface_index pb name)
  in
  check "M" 200.;
  check "T" 140.;
  check "I" 60.;
  check "Z" 70.

let test_cross_dominance_pruning () =
  (* No cross action carries M at a level whose infimum exceeds the link
     capacity of 70: those would degrade to a lower level and are
     dominance-pruned (the paper's example). *)
  let pb = compile_with Media.C in
  let m = Problem.iface_index pb "M" in
  Array.iter
    (fun (a : Action.t) ->
      match a.Action.kind with
      | Action.Cross { iface; _ } when iface = m ->
          Array.iter
            (fun (_, ivl) ->
              Alcotest.(check bool)
                (Printf.sprintf "M cross input %s below capacity"
                   (I.to_string ivl))
                true
                (I.lo ivl < 70.))
            a.Action.in_levels
      | _ -> ())
    pb.Problem.actions

let test_place_actions_per_node () =
  let pb = compile_with Media.B in
  (* The anchored Server gets no place actions. *)
  Array.iter
    (fun (a : Action.t) ->
      match a.Action.kind with
      | Action.Place { comp; _ } ->
          Alcotest.(check bool) "never places Server" false
            (String.equal pb.Problem.comps.(comp).Model.comp_name "Server")
      | Action.Cross _ -> ())
    pb.Problem.actions

let test_merger_ratio_pruning () =
  (* Merger in-level combinations must satisfy T*3 == I*7, which keeps
     only the diagonal pairs. *)
  let pb = compile_with Media.C in
  let merger = Problem.comp_index pb "Merger" in
  let t_i = Problem.iface_index pb "T" and i_i = Problem.iface_index pb "I" in
  Array.iter
    (fun (a : Action.t) ->
      match a.Action.kind with
      | Action.Place { comp; _ } when comp = merger ->
          let level_of iface =
            Array.to_list a.Action.in_levels
            |> List.find_map (fun (i, ivl) -> if i = iface then Some ivl else None)
            |> Option.get
          in
          let t_ivl = level_of t_i and i_ivl = level_of i_i in
          (* proportional: T bounds = 7/3 of I bounds *)
          Alcotest.(check (float 1e-6)) "diagonal levels"
            (I.lo t_ivl *. 3.)
            (I.lo i_ivl *. 7.)
      | _ -> ())
    pb.Problem.actions

let test_add_closure_degradable () =
  (* A cross achieving level 1 of a degradable stream also supports level
     0 via its add-closure. *)
  let pb = compile_with Media.C in
  let m = Problem.iface_index pb "M" in
  let found = ref false in
  Array.iter
    (fun (a : Action.t) ->
      match a.Action.kind with
      | Action.Cross { iface; dst; _ } when iface = m ->
          Array.iter
            (fun pid ->
              match Prop.of_id pb.Problem.props pid with
              | Prop.Avail (_, _, l) when l >= 1 ->
                  found := true;
                  let lower =
                    Prop.avail_id pb.Problem.props ~iface:m ~node:dst ~level:(l - 1)
                  in
                  Alcotest.(check bool) "closure includes lower level" true
                    (Array.exists (fun q -> q = lower) a.Action.add_closure)
              | _ -> ())
            a.Action.add
      | _ -> ())
    pb.Problem.actions;
  ignore !found

let test_supports_consistency () =
  (* supports is the inverse of add_closure. *)
  let pb = compile_with Media.B in
  Array.iteri
    (fun pid actions ->
      List.iter
        (fun aid ->
          Alcotest.(check bool) "support really adds" true
            (Array.exists (fun q -> q = pid)
               pb.Problem.actions.(aid).Action.add_closure))
        actions)
    pb.Problem.supports

let test_costs_nonnegative () =
  let pb = compile_with Media.E in
  Array.iter
    (fun (a : Action.t) ->
      Alcotest.(check bool) "cost bound >= 0" true (a.Action.cost_lb >= 0.))
    pb.Problem.actions

let test_available_goal_rewritten () =
  let app = app () in
  let app =
    { app with Model.goals = [ Model.Available ("M", "ibw", 1, 90.) ] }
  in
  let pb = Compile.compile (tiny_topo ()) app (Media.leveling Media.C app) in
  Alcotest.(check int) "one goal prop" 1 (Array.length pb.Problem.goal_props);
  (* ... and a synthetic sink component exists, placeable only on node 1 *)
  let sink =
    Array.to_list pb.Problem.comps
    |> List.find_opt (fun (c : Model.component) ->
           String.length c.Model.comp_name >= 6
           && String.sub c.Model.comp_name 0 6 = "__goal")
  in
  Alcotest.(check bool) "sink exists" true (sink <> None);
  Array.iter
    (fun (a : Action.t) ->
      match a.Action.kind with
      | Action.Place { comp; node }
        when String.length pb.Problem.comps.(comp).Model.comp_name >= 6
             && String.sub pb.Problem.comps.(comp).Model.comp_name 0 6 = "__goal"
        ->
          Alcotest.(check int) "sink restricted to goal node" 1 node
      | _ -> ())
    pb.Problem.actions

let test_preplaced_with_requires_rejected () =
  let app = app () in
  let bad = { app with Model.pre_placed = [ ("Client", 0) ] } in
  Alcotest.(check bool) "compile error" true
    (try
       ignore (Compile.compile (tiny_topo ()) bad (Media.leveling Media.A bad));
       false
     with Compile.Compile_error _ -> true)

let test_checked_link_levels_scenario_e () =
  (* Scenario E actions carry checked link-bandwidth levels. *)
  let pb = compile_with Media.E in
  let has_checked =
    Array.exists
      (fun (a : Action.t) -> Array.length a.Action.checked_link > 0)
      pb.Problem.actions
  in
  Alcotest.(check bool) "checked link levels present" true has_checked;
  (* ... while scenario C actions carry none. *)
  let pb_c = compile_with Media.C in
  Array.iter
    (fun (a : Action.t) ->
      Alcotest.(check int) "no checked levels in C" 0
        (Array.length a.Action.checked_link))
    pb_c.Problem.actions

let suite =
  [
    ("prop round-trip", `Quick, test_prop_roundtrip);
    ("prop count", `Quick, test_prop_count);
    ("prop distinct", `Quick, test_prop_distinct);
    ("action counts grow with levels", `Quick, test_action_counts_grow);
    ("greedy single level", `Quick, test_greedy_single_level);
    ("initial state", `Quick, test_initial_state);
    ("sources", `Quick, test_sources);
    ("iface max fixpoint", `Quick, test_iface_max);
    ("cross dominance pruning", `Quick, test_cross_dominance_pruning);
    ("anchored components not placed", `Quick, test_place_actions_per_node);
    ("merger ratio pruning", `Quick, test_merger_ratio_pruning);
    ("degradable add closure", `Quick, test_add_closure_degradable);
    ("supports consistency", `Quick, test_supports_consistency);
    ("costs non-negative", `Quick, test_costs_nonnegative);
    ("available goal rewritten", `Quick, test_available_goal_rewritten);
    ("pre-placed with requires rejected", `Quick, test_preplaced_with_requires_rejected);
    ("checked link levels (E)", `Quick, test_checked_link_levels_scenario_e);
  ]
