(* Unit tests for Sekitei_expr.Expr: evaluation, interval evaluation,
   satisfiability, monotonicity analysis, simplification, parsing and
   printing. *)

module E = Sekitei_expr.Expr
module I = Sekitei_util.Interval

let env_of bindings v =
  match List.assoc_opt v bindings with
  | Some x -> x
  | None -> raise (E.Unbound_variable v)

let ienv_of bindings v =
  match List.assoc_opt v bindings with
  | Some x -> x
  | None -> raise (E.Unbound_variable v)

let check_eval msg expected expr bindings =
  Alcotest.(check (float 1e-9)) msg expected (E.eval ~env:(env_of bindings) expr)

(* ---------------- point evaluation ---------------- *)

let test_eval_arith () =
  check_eval "const" 5. (E.Const 5.) [];
  check_eval "var" 3. (E.Var "x") [ ("x", 3.) ];
  check_eval "add" 7. (E.parse "x + 4") [ ("x", 3.) ];
  check_eval "sub" (-1.) (E.parse "x - 4") [ ("x", 3.) ];
  check_eval "mul" 12. (E.parse "x * 4") [ ("x", 3.) ];
  check_eval "div" 0.75 (E.parse "x / 4") [ ("x", 3.) ];
  check_eval "neg" (-3.) (E.parse "-x") [ ("x", 3.) ];
  check_eval "min" 3. (E.parse "min(x, 4)") [ ("x", 3.) ];
  check_eval "max" 4. (E.parse "max(x, 4)") [ ("x", 3.) ]

let test_eval_precedence () =
  check_eval "mul before add" 14. (E.parse "2 + 3 * 4") [];
  check_eval "parens" 20. (E.parse "(2 + 3) * 4") [];
  check_eval "left assoc sub" (-5.) (E.parse "2 - 3 - 4") [];
  check_eval "div chain" 2. (E.parse "16 / 4 / 2") []

let test_eval_paper_formulas () =
  (* The Merger specification from Figure 2. *)
  let bindings = [ ("T.ibw", 63.); ("I.ibw", 27.) ] in
  check_eval "merger cpu" 18. (E.parse "(T.ibw + I.ibw) / 5") bindings;
  check_eval "merger output" 90. (E.parse "T.ibw + I.ibw") bindings;
  Alcotest.(check bool) "merger ratio holds" true
    (E.holds ~env:(env_of bindings) (E.parse_cond "T.ibw * 3 == I.ibw * 7"))

let test_eval_unbound () =
  Alcotest.check_raises "unbound" (E.Unbound_variable "y") (fun () ->
      ignore (E.eval ~env:(env_of []) (E.Var "y")))

let test_eval_div_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (E.eval ~env:(env_of []) (E.parse "1 / 0")))

let test_holds () =
  let env = env_of [ ("x", 5.) ] in
  Alcotest.(check bool) "ge true" true (E.holds ~env (E.parse_cond "x >= 5"));
  Alcotest.(check bool) "gt false" false (E.holds ~env (E.parse_cond "x > 5"));
  Alcotest.(check bool) "le true" true (E.holds ~env (E.parse_cond "x <= 5"));
  Alcotest.(check bool) "lt false" false (E.holds ~env (E.parse_cond "x < 5"));
  Alcotest.(check bool) "and" true (E.holds ~env (E.parse_cond "x >= 1 && x <= 9"));
  Alcotest.(check bool) "or" true (E.holds ~env (E.parse_cond "x < 0 || x > 4"));
  Alcotest.(check bool) "eq tolerant" true
    (E.holds ~env:(env_of [ ("x", 0.1 +. 0.2) ]) (E.parse_cond "x == 0.3"))

(* ---------------- interval evaluation ---------------- *)

let test_interval_linear () =
  let env = ienv_of [ ("x", I.make 10. 20.) ] in
  let r = E.eval_interval ~env (E.parse "x * 2 + 1") in
  Alcotest.(check (float 1e-9)) "lo" 21. (I.lo r);
  Alcotest.(check (float 1e-9)) "hi" 41. (I.hi r)

let test_interval_min_capacity () =
  (* The paper's capacity capping: min(M.ibw, 70) *)
  let env = ienv_of [ ("M.ibw", I.make 90. 100.) ] in
  let r = E.eval_interval ~env (E.parse "min(M.ibw, 70)") in
  Alcotest.(check (float 1e-9)) "capped lo" 70. (I.lo r);
  Alcotest.(check (float 1e-9)) "capped hi" 70. (I.hi r)

let test_interval_unbounded () =
  let env = ienv_of [ ("x", I.make 100. Float.infinity) ] in
  let r = E.eval_interval ~env (E.parse "x / 5") in
  Alcotest.(check (float 1e-9)) "lo" 20. (I.lo r);
  Alcotest.(check bool) "hi infinite" false (Float.is_finite (I.hi r))

let test_interval_div_by_zero_interval () =
  let env = ienv_of [ ("x", I.make 0. 1.) ] in
  Alcotest.check_raises "divisor spans zero" Division_by_zero (fun () ->
      ignore (E.eval_interval ~env (E.parse "5 / x")))

let test_interval_encloses_samples () =
  (* Soundness: sampled point evaluations always land inside the interval
     enclosure. *)
  let exprs =
    [
      "x + y"; "x - y"; "x * y"; "min(x, y)"; "max(x, y)"; "x * 7 / 10";
      "(x + y) / 5"; "min(x, 70) + max(y, 3)";
    ]
  in
  let ix = I.make 2. 9. and iy = I.make 1. 4. in
  let ienv = ienv_of [ ("x", ix); ("y", iy) ] in
  List.iter
    (fun text ->
      let e = E.parse text in
      let enclosure = E.eval_interval ~env:ienv e in
      List.iter
        (fun fx ->
          List.iter
            (fun fy ->
              let v = E.eval ~env:(env_of [ ("x", fx); ("y", fy) ]) e in
              if not (I.lo enclosure -. 1e-9 <= v && v <= I.hi enclosure +. 1e-9)
              then
                Alcotest.failf "%s: %g outside %s" text v (I.to_string enclosure))
            [ 1.; 2.; 3.99 ])
        [ 2.; 5.; 8.99 ])
    exprs

(* ---------------- satisfiability ---------------- *)

let test_sat_half_open () =
  (* [70,90) cannot satisfy >= 90 but [90,100) can - the exact boundary
     behaviour the client's bandwidth demand relies on. *)
  let sat cond lo hi =
    E.sat ~env:(ienv_of [ ("x", I.make lo hi) ]) (E.parse_cond cond)
  in
  Alcotest.(check bool) "[70,90) vs >=90" false (sat "x >= 90" 70. 90.);
  Alcotest.(check bool) "[90,100) vs >=90" true (sat "x >= 90" 90. 100.);
  Alcotest.(check bool) "[0,100) vs >=90" true (sat "x >= 90" 0. 100.);
  Alcotest.(check bool) "[100,inf) vs <=90" false (sat "x <= 90" 100. Float.infinity)

let test_sat_eq_ratio () =
  let env l_t l_i =
    ienv_of [ ("T.ibw", l_t); ("I.ibw", l_i) ]
  in
  let cond = E.parse_cond "T.ibw * 3 == I.ibw * 7" in
  Alcotest.(check bool) "matched levels sat" true
    (E.sat ~env:(env (I.make 63. 70.) (I.make 27. 30.)) cond);
  Alcotest.(check bool) "mismatched levels unsat" false
    (E.sat ~env:(env (I.make 63. 70.) (I.make 0. 27.)) cond)

let test_sat_conjunction () =
  let env = ienv_of [ ("x", I.make 0. 10.) ] in
  Alcotest.(check bool) "conjunction" true
    (E.sat ~env (E.parse_cond "x >= 5 && x <= 20"));
  Alcotest.(check bool) "impossible branch" false
    (E.sat ~env (E.parse_cond "x >= 15 && x <= 20"));
  Alcotest.(check bool) "disjunction rescues" true
    (E.sat ~env (E.parse_cond "x >= 15 || x <= 20"))

(* ---------------- analysis ---------------- *)

let test_vars () =
  Alcotest.(check (list string)) "vars in order" [ "b"; "a"; "c" ]
    (E.vars (E.parse "b + a * b - c"));
  Alcotest.(check (list string)) "cond vars" [ "x"; "y" ]
    (E.cond_vars (E.parse_cond "x >= 1 && y < x"))

let mono = Alcotest.testable
    (fun fmt m ->
      Format.pp_print_string fmt
        (match m with
        | E.Increasing -> "inc"
        | E.Decreasing -> "dec"
        | E.Constant -> "const"
        | E.Unknown -> "unknown"))
    ( = )

let test_monotonicity () =
  let m text v = E.monotonicity (E.parse text) v in
  Alcotest.check mono "linear inc" E.Increasing (m "x * 2 + 1" "x");
  Alcotest.check mono "neg dec" E.Decreasing (m "-x" "x");
  Alcotest.check mono "sub dec in rhs" E.Decreasing (m "10 - x" "x");
  Alcotest.check mono "absent const" E.Constant (m "y + 1" "x");
  Alcotest.check mono "min inc" E.Increasing (m "min(x, 70)" "x");
  Alcotest.check mono "div by const inc" E.Increasing (m "x / 5" "x");
  Alcotest.check mono "scaled by neg const" E.Decreasing (m "x * (0 - 2)" "x");
  Alcotest.check mono "x*x unknown" E.Unknown (m "x * x" "x");
  Alcotest.check mono "denominator unknown" E.Unknown (m "1 / x" "x")

let test_easier_when_lower () =
  let e text v = E.easier_when_lower (E.parse_cond text) v in
  Alcotest.(check (option bool)) "consumption constraint" (Some true)
    (e "30 >= x / 5" "x");
  Alcotest.(check (option bool)) "demand constraint" (Some false)
    (e "x >= 90" "x");
  Alcotest.(check (option bool)) "unrelated" (Some true) (e "y >= 3" "x");
  Alcotest.(check (option bool)) "equality undecidable" None
    (e "x == 30" "x")

let test_simplify () =
  let s text = E.to_string (E.simplify (E.parse text)) in
  Alcotest.(check string) "fold consts" "7" (s "3 + 4");
  Alcotest.(check string) "x + 0" "x" (s "x + 0");
  Alcotest.(check string) "1 * x" "x" (s "1 * x");
  Alcotest.(check string) "x * 0" "0" (s "x * 0");
  Alcotest.(check string) "x / 1" "x" (s "x / 1");
  Alcotest.(check string) "nested" "x" (s "(x + 0) * 1")

let test_simplify_preserves_value () =
  let exprs = [ "x * 2 + 0 * y"; "(x + 0) / 1"; "min(x, 3 + 4)"; "x - 0 + y * 1" ] in
  let env = env_of [ ("x", 2.5); ("y", 4.) ] in
  List.iter
    (fun text ->
      let e = E.parse text in
      Alcotest.(check (float 1e-9)) text (E.eval ~env e)
        (E.eval ~env (E.simplify e)))
    exprs

(* ---------------- parsing and printing ---------------- *)

let test_parse_identifiers () =
  Alcotest.(check string) "dotted" "M.ibw" (E.to_string (E.parse "M.ibw"));
  Alcotest.(check string) "underscore" "a_b" (E.to_string (E.parse "a_b"));
  (* min/max as plain identifiers still work when not applied *)
  Alcotest.(check string) "min as name" "min + 1" (E.to_string (E.parse "min + 1"))

let test_parse_errors () =
  let fails text = match E.parse text with
    | _ -> Alcotest.failf "expected parse error for %S" text
    | exception E.Parse_error _ -> ()
  in
  fails "";
  fails "1 +";
  fails "min(1)";
  fails "x ^ 2";
  fails "(1 + 2";
  fails "1 2"

let test_parse_cond_errors () =
  let fails text = match E.parse_cond text with
    | _ -> Alcotest.failf "expected parse error for %S" text
    | exception E.Parse_error _ -> ()
  in
  fails "x >";
  fails "x >= 1 &&";
  fails "x"

let test_roundtrip () =
  let exprs =
    [
      "x + y * z"; "(x + y) * z"; "min(x, 70) / 5"; "-x + 3"; "x - y - z";
      "x / y / z"; "max(min(x, y), 1 + 2)"; "1 + M.ibw / 10";
    ]
  in
  List.iter
    (fun text ->
      let printed = E.to_string (E.parse text) in
      let reparsed = E.to_string (E.parse printed) in
      Alcotest.(check string) text printed reparsed)
    exprs

let test_cond_roundtrip () =
  let conds =
    [
      "x >= 90"; "x * 3 == y * 7"; "x >= 1 && y <= 2"; "x < 1 || y > 2";
      "(x >= 1 && y <= 2) || z == 3"; "true";
    ]
  in
  List.iter
    (fun text ->
      let printed = E.cond_to_string (E.parse_cond text) in
      let reparsed = E.cond_to_string (E.parse_cond printed) in
      Alcotest.(check string) text printed reparsed)
    conds

let test_roundtrip_semantics () =
  (* Printing then reparsing preserves evaluation, not just syntax. *)
  let env = env_of [ ("x", 3.); ("y", 5.); ("z", 2.) ] in
  List.iter
    (fun text ->
      let e = E.parse text in
      let e' = E.parse (E.to_string e) in
      Alcotest.(check (float 1e-9)) text (E.eval ~env e) (E.eval ~env e'))
    [ "x - y - z"; "x - (y - z)"; "x / y * z"; "x + y * z - 1"; "-x * y" ]

let suite =
  [
    ("eval arithmetic", `Quick, test_eval_arith);
    ("eval precedence", `Quick, test_eval_precedence);
    ("eval paper formulas", `Quick, test_eval_paper_formulas);
    ("eval unbound", `Quick, test_eval_unbound);
    ("eval div by zero", `Quick, test_eval_div_zero);
    ("holds", `Quick, test_holds);
    ("interval linear", `Quick, test_interval_linear);
    ("interval min capacity", `Quick, test_interval_min_capacity);
    ("interval unbounded", `Quick, test_interval_unbounded);
    ("interval div by zero", `Quick, test_interval_div_by_zero_interval);
    ("interval encloses samples", `Quick, test_interval_encloses_samples);
    ("sat half-open", `Quick, test_sat_half_open);
    ("sat ratio equality", `Quick, test_sat_eq_ratio);
    ("sat conjunction", `Quick, test_sat_conjunction);
    ("vars", `Quick, test_vars);
    ("monotonicity", `Quick, test_monotonicity);
    ("easier when lower", `Quick, test_easier_when_lower);
    ("simplify", `Quick, test_simplify);
    ("simplify preserves value", `Quick, test_simplify_preserves_value);
    ("parse identifiers", `Quick, test_parse_identifiers);
    ("parse errors", `Quick, test_parse_errors);
    ("parse cond errors", `Quick, test_parse_cond_errors);
    ("print/parse round-trip", `Quick, test_roundtrip);
    ("cond round-trip", `Quick, test_cond_roundtrip);
    ("round-trip semantics", `Quick, test_roundtrip_semantics);
  ]
