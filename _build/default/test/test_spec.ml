(* Unit tests for Sekitei_spec: Model constructors, Leveling (cutpoints,
   propagation, tag analysis), Validate. *)

module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Validate = Sekitei_spec.Validate
module Media = Sekitei_domains.Media
module E = Sekitei_expr.Expr
module I = Sekitei_util.Interval
module G = Sekitei_network.Generators
module T = Sekitei_network.Topology

let ivl = Alcotest.testable (fun fmt i -> I.pp fmt i) I.equal

(* ---------------- model ---------------- *)

let test_iface_defaults () =
  let i = Model.iface ~properties:[ Model.property "ibw" ] "X" in
  Alcotest.(check string) "default transform" "min(ibw, link.lbw)"
    (E.to_string (List.assoc "ibw" i.Model.cross_transforms));
  Alcotest.(check string) "default consumption" "min(ibw, link.lbw)"
    (E.to_string (List.assoc "lbw" i.Model.cross_consumes));
  Alcotest.(check string) "default cost" "1 + ibw / 10"
    (E.to_string i.Model.cross_cost)

let test_iface_no_properties () =
  Alcotest.check_raises "needs a property"
    (Invalid_argument "Model.iface: at least one property required") (fun () ->
      ignore (Model.iface ~properties:[] "X"))

let test_component_defaults () =
  let c = Model.component "C" in
  Alcotest.(check bool) "placeable" true c.Model.placeable;
  Alcotest.(check (list string)) "no requires" [] c.Model.requires

let test_lookups () =
  let app = Media.app ~server:0 ~client:1 () in
  Alcotest.(check bool) "find iface" true (Model.find_iface app "M" <> None);
  Alcotest.(check bool) "missing iface" true (Model.find_iface app "Q" = None);
  Alcotest.(check bool) "find comp" true (Model.find_component app "Zip" <> None);
  let m = Option.get (Model.find_iface app "M") in
  Alcotest.(check string) "primary" "ibw" (Model.primary_property m).Model.prop_name;
  Alcotest.(check string) "qualified" "M.ibw" (Model.qualified "M" "ibw")

(* ---------------- leveling ---------------- *)

let test_leveling_empty () =
  Alcotest.(check bool) "trivial" true (Leveling.is_trivial Leveling.empty);
  Alcotest.(check (list ivl)) "default full" [ I.full ]
    (Leveling.iface_levels Leveling.empty "M" "ibw")

let test_leveling_with_iface () =
  let l = Leveling.with_iface Leveling.empty "M" "ibw" [ 90.; 100. ] in
  Alcotest.(check bool) "not trivial" false (Leveling.is_trivial l);
  Alcotest.(check (list ivl)) "three levels"
    [ I.make 0. 90.; I.make 90. 100.; I.make 100. Float.infinity ]
    (Leveling.iface_levels l "M" "ibw");
  Alcotest.(check (list ivl)) "other iface unleveled" [ I.full ]
    (Leveling.iface_levels l "T" "ibw")

let test_leveling_replace () =
  let l = Leveling.with_iface Leveling.empty "M" "ibw" [ 90. ] in
  let l = Leveling.with_iface l "M" "ibw" [ 50. ] in
  Alcotest.(check (list ivl)) "replaced"
    [ I.make 0. 50.; I.make 50. Float.infinity ]
    (Leveling.iface_levels l "M" "ibw")

let test_leveling_invalid_cuts () =
  Alcotest.check_raises "descending"
    (Invalid_argument "Interval.of_cutpoints: not strictly increasing")
    (fun () -> ignore (Leveling.with_iface Leveling.empty "M" "ibw" [ 5.; 3. ]))

let test_leveling_link () =
  let l = Leveling.with_link Leveling.empty "lbw" [ 31.; 62. ] in
  Alcotest.(check int) "three levels" 3
    (List.length (Leveling.link_levels l "lbw"));
  Alcotest.(check (list ivl)) "node untouched" [ I.full ]
    (Leveling.node_levels l "cpu")

let test_propagation_media () =
  (* Scenario C cutpoints on M propagate proportionally to T, I, Z. *)
  let app = Media.app ~server:0 ~client:1 () in
  let l =
    Leveling.propagate app
      (Leveling.with_iface Leveling.empty "M" "ibw" [ 90.; 100. ])
  in
  let cuts iface =
    List.find_map
      (fun (i, p, cuts) -> if i = iface && p = "ibw" then Some cuts else None)
      (Leveling.iface_cutpoints l)
  in
  Alcotest.(check (option (list (float 1e-9)))) "T = 0.7 M"
    (Some [ 63.; 70. ]) (cuts "T");
  Alcotest.(check (option (list (float 1e-9)))) "I = 0.3 M"
    (Some [ 27.; 30. ]) (cuts "I");
  Alcotest.(check (option (list (float 1e-9)))) "Z = T/2"
    (Some [ 31.5; 35. ]) (cuts "Z");
  Alcotest.(check (option (list (float 1e-9)))) "M unchanged"
    (Some [ 90.; 100. ]) (cuts "M")

let test_propagation_fixpoint_stable () =
  (* Propagating twice changes nothing. *)
  let app = Media.app ~server:0 ~client:1 () in
  let once =
    Leveling.propagate app
      (Leveling.with_iface Leveling.empty "M" "ibw" [ 30.; 70.; 90.; 100. ])
  in
  let twice = Leveling.propagate app once in
  Alcotest.(check int) "same cutpoint table"
    (List.length (Leveling.iface_cutpoints once))
    (List.length (Leveling.iface_cutpoints twice))

let test_propagation_empty_seed () =
  let app = Media.app ~server:0 ~client:1 () in
  let l = Leveling.propagate app Leveling.empty in
  Alcotest.(check bool) "nothing to propagate" true (Leveling.is_trivial l)

let test_tag_analysis_media () =
  let app = Media.app ~server:0 ~client:1 () in
  let tags = Leveling.analyze_tags app in
  (* Z never appears in conditions, so the analysis tags it degradable.
     T and I are tied by the Merger ratio equality, and M is demanded
     (>= 90) by the client: the conservative analysis must not call any
     of them degradable. *)
  let tag_of iface =
    List.find_map
      (fun (i, _, t) -> if i = iface then Some t else None)
      tags
  in
  Alcotest.(check bool) "Z degradable" true (tag_of "Z" = Some Model.Degradable);
  Alcotest.(check bool) "T blocked by ratio" true (tag_of "T" <> Some Model.Degradable);
  Alcotest.(check bool) "M not auto-degradable" true (tag_of "M" <> Some Model.Degradable)

(* ---------------- validate ---------------- *)

let tiny_topo () = G.line_kinds [ T.Wan ]

let test_validate_clean () =
  let app = Media.app ~server:0 ~client:1 () in
  Alcotest.(check int) "no issues" 0 (List.length (Validate.check (tiny_topo ()) app))

let test_validate_unknown_interface () =
  let app = Media.app ~server:0 ~client:1 () in
  let bad =
    { app with
      Model.components =
        Model.component ~requires:[ "Nope" ] "Bad" :: app.Model.components }
  in
  let issues = Validate.check (tiny_topo ()) bad in
  Alcotest.(check bool) "caught" true
    (List.exists
       (fun i -> Sekitei_spec.Str_split.split_once i.Validate.what "Nope" <> None)
       issues)

let test_validate_unknown_variable () =
  let app = Media.app ~server:0 ~client:1 () in
  let bad =
    { app with
      Model.components =
        Model.component ~requires:[ "M" ]
          ~conditions:[ E.parse_cond "Q.ibw >= 1" ]
          "Bad"
        :: app.Model.components }
  in
  Alcotest.(check bool) "caught" true (Validate.check (tiny_topo ()) bad <> [])

let test_validate_unknown_node_resource () =
  let app = Media.app ~server:0 ~client:1 () in
  let bad =
    { app with
      Model.components =
        Model.component ~requires:[ "M" ]
          ~consumes:[ ("gpu", E.parse "M.ibw") ]
          "Bad"
        :: app.Model.components }
  in
  Alcotest.(check bool) "caught" true (Validate.check (tiny_topo ()) bad <> [])

let test_validate_nonmonotone_effect () =
  let app = Media.app ~server:0 ~client:1 () in
  let bad =
    { app with
      Model.components =
        Model.component ~requires:[ "T" ] ~provides:[ "Z" ]
          ~effects:[ ("Z", "ibw", E.parse "T.ibw * T.ibw") ]
          "Quadratic"
        :: app.Model.components }
  in
  let issues = Validate.check (tiny_topo ()) bad in
  Alcotest.(check bool) "monotonicity flagged" true
    (List.exists
       (fun i ->
         Sekitei_spec.Str_split.split_once i.Validate.what "monotone" <> None)
       issues)

let test_validate_unset_provide () =
  let app = Media.app ~server:0 ~client:1 () in
  let bad =
    { app with
      Model.components =
        Model.component ~requires:[ "T" ] ~provides:[ "Z" ] "Forgetful"
        :: app.Model.components }
  in
  let issues = Validate.check (tiny_topo ()) bad in
  Alcotest.(check bool) "unset provide flagged" true
    (List.exists
       (fun i -> Sekitei_spec.Str_split.split_once i.Validate.what "never sets" <> None)
       issues)

let test_validate_goal_errors () =
  let app = Media.app ~server:0 ~client:1 () in
  let bad = { app with Model.goals = [ Model.Placed ("Ghost", 0) ] } in
  Alcotest.(check bool) "unknown goal component" true
    (Validate.check (tiny_topo ()) bad <> []);
  let bad2 = { app with Model.goals = [ Model.Placed ("Client", 99) ] } in
  Alcotest.(check bool) "node out of range" true
    (Validate.check (tiny_topo ()) bad2 <> []);
  let bad3 = { app with Model.goals = [] } in
  Alcotest.(check bool) "no goals" true (Validate.check (tiny_topo ()) bad3 <> [])

let test_validate_duplicates () =
  let app = Media.app ~server:0 ~client:1 () in
  let dup = { app with Model.interfaces = app.Model.interfaces @ [ List.hd app.Model.interfaces ] } in
  Alcotest.(check bool) "duplicate interface flagged" true
    (Validate.check (tiny_topo ()) dup <> [])

let test_validate_exn () =
  let app = Media.app ~server:0 ~client:1 () in
  Validate.check_exn (tiny_topo ()) app;
  let bad = { app with Model.goals = [] } in
  Alcotest.(check bool) "raises" true
    (try
       Validate.check_exn (tiny_topo ()) bad;
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ("iface defaults", `Quick, test_iface_defaults);
    ("iface needs property", `Quick, test_iface_no_properties);
    ("component defaults", `Quick, test_component_defaults);
    ("lookups", `Quick, test_lookups);
    ("leveling empty", `Quick, test_leveling_empty);
    ("leveling with_iface", `Quick, test_leveling_with_iface);
    ("leveling replace", `Quick, test_leveling_replace);
    ("leveling invalid cuts", `Quick, test_leveling_invalid_cuts);
    ("leveling link", `Quick, test_leveling_link);
    ("propagation media", `Quick, test_propagation_media);
    ("propagation fixpoint", `Quick, test_propagation_fixpoint_stable);
    ("propagation empty seed", `Quick, test_propagation_empty_seed);
    ("tag analysis media", `Quick, test_tag_analysis_media);
    ("validate clean", `Quick, test_validate_clean);
    ("validate unknown interface", `Quick, test_validate_unknown_interface);
    ("validate unknown variable", `Quick, test_validate_unknown_variable);
    ("validate unknown node resource", `Quick, test_validate_unknown_node_resource);
    ("validate non-monotone effect", `Quick, test_validate_nonmonotone_effect);
    ("validate unset provide", `Quick, test_validate_unset_provide);
    ("validate goal errors", `Quick, test_validate_goal_errors);
    ("validate duplicates", `Quick, test_validate_duplicates);
    ("validate exn", `Quick, test_validate_exn);
  ]
