  $ sekitei plan --network tiny --levels C | head -10
  $ sekitei plan --network tiny --levels A > /dev/null 2>&1
  $ sekitei validate spec.file
  $ sekitei plan --spec spec.file | head -6
  $ sekitei table1 | grep "| C"
