test/test_heap.ml: Alcotest Float Fun List Sekitei_util
