test/test_dsl.ml: Alcotest List Option Sekitei_core Sekitei_domains Sekitei_expr Sekitei_network Sekitei_spec
