test/test_domains.ml: Alcotest Fun List Option Sekitei_core Sekitei_domains Sekitei_harness Sekitei_network Sekitei_spec Sekitei_util String
