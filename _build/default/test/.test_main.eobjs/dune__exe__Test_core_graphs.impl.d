test/test_core_graphs.ml: Alcotest Array Float List Sekitei_core Sekitei_domains Sekitei_network Sekitei_spec
