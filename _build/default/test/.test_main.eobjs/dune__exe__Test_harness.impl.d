test/test_harness.ml: Alcotest List Sekitei_core Sekitei_domains Sekitei_harness Sekitei_network Sekitei_spec String
