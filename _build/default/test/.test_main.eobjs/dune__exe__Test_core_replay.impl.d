test/test_core_replay.ml: Alcotest Array List Sekitei_core Sekitei_domains Sekitei_network Sekitei_spec Sekitei_util
