test/test_expr.ml: Alcotest Float Format List Sekitei_expr Sekitei_util
