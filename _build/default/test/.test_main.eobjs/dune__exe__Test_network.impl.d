test/test_network.ml: Alcotest Array List Printf Sekitei_network Sekitei_spec Sekitei_util
