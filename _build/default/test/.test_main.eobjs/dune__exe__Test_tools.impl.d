test/test_tools.ml: Alcotest Array List Sekitei_core Sekitei_domains Sekitei_harness Sekitei_network Sekitei_spec
