test/test_planner.ml: Alcotest Array Float List Option Result Sekitei_core Sekitei_domains Sekitei_expr Sekitei_harness Sekitei_network Sekitei_spec
