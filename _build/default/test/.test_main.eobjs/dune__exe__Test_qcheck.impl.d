test/test_qcheck.ml: Float Int64 List Printf QCheck QCheck_alcotest Sekitei_core Sekitei_domains Sekitei_expr Sekitei_network Sekitei_spec Sekitei_util
