test/test_interval.ml: Alcotest Float List Printf Sekitei_util
