test/test_spec.ml: Alcotest Float List Option Sekitei_domains Sekitei_expr Sekitei_network Sekitei_spec Sekitei_util
