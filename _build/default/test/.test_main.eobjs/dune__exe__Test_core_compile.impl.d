test/test_core_compile.ml: Alcotest Array Fun List Option Printf Sekitei_core Sekitei_domains Sekitei_network Sekitei_spec Sekitei_util String
