test/test_util_misc.ml: Alcotest List Sekitei_spec Sekitei_util String
