type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next t in
  { state = mix seed }

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     small bounds used in topology generation.  Shifting by 2 leaves 62
     bits, which always fit OCaml's 63-bit native int non-negatively. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t p = float t 1.0 < p
let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: hi < lo";
  lo + int t (hi - lo + 1)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choice t = function
  | [] -> invalid_arg "Prng.choice: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let sample t k xs =
  let n = List.length xs in
  if k > n then invalid_arg "Prng.sample: k > length";
  let arr = Array.of_list xs in
  shuffle t arr;
  Array.to_list (Array.sub arr 0 k)
