(** Half-open real intervals [lo, hi), with [hi] possibly infinite.

    Intervals are the core abstraction behind resource levels and optimistic
    resource maps (paper sections 3.1 and 3.2.3).  A level with cutpoints
    [90; 100] yields the interval [90, 100); its {e operating point} is the
    upper cutpoint (the throttle value the deployed system runs at), and its
    {e infimum} is used for admissible cost lower bounds. *)

type t = private { lo : float; hi : float }

exception Empty_interval

(** [make lo hi] is the interval [lo, hi).  @raise Empty_interval when
    [hi <= lo] or either bound is NaN. *)
val make : float -> float -> t

(** [make_opt lo hi] is [Some (make lo hi)], or [None] when empty. *)
val make_opt : float -> float -> t option

(** The full interval [0, infinity) — the default level of an unleveled
    resource. *)
val full : t

(** [point x] is a degenerate closed interval containing exactly [x],
    represented as [x, x] (the only closed intervals we allow). *)
val point : float -> t

val lo : t -> float
val hi : t -> float

(** [is_point i] is true for degenerate intervals produced by {!point}. *)
val is_point : t -> bool

(** Membership under half-open semantics: [lo <= x < hi], except points,
    where [x = lo]. *)
val mem : float -> t -> bool

(** The throttle value a deployment operates at inside this interval:
    [hi] when finite, otherwise [cap].  [cap] must be finite. *)
val operating_point : cap:float -> t -> float

(** Intersection; [None] when the result is empty. *)
val inter : t -> t -> t option

(** Convex hull (smallest interval containing both). *)
val hull : t -> t -> t

val equal : t -> t -> bool
val subset : t -> t -> bool
val overlaps : t -> t -> bool

(** Interval arithmetic.  All functions return the exact image interval for
    the (monotone) operation. *)

val add : t -> t -> t
val sub : t -> t -> t

(** [scale k i] multiplies by a non-negative constant [k]. *)
val scale : float -> t -> t

(** [shift c i] translates by [c]. *)
val shift : float -> t -> t

(** Pointwise min/max against a scalar (e.g. capacity capping
    [min(M.ibw, Link.lbw)]). *)
val min_scalar : float -> t -> t
val max_scalar : float -> t -> t

(** Pointwise binary min/max of intervals. *)
val min_ : t -> t -> t
val max_ : t -> t -> t

(** Satisfiability of comparisons: does some [x] in the interval satisfy the
    relation against [c]? *)

val sat_ge : t -> float -> bool
val sat_gt : t -> float -> bool
val sat_le : t -> float -> bool
val sat_lt : t -> float -> bool

(** [sat_eq a b] — can values drawn from [a] and [b] be equal? *)
val sat_eq : t -> t -> bool

val width : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [of_points xs] is the smallest interval containing every point in [xs]
    (a point interval when all coincide).  Upper bounds may be infinite.
    @raise Invalid_argument on an empty list, NaN, or an infinite lower
    bound. *)
val of_points : float list -> t

(** [of_cutpoints cuts] turns a sorted list of strictly positive cutpoints
    [c1 < c2 < ...] into levels [[0,c1); [c1,c2); ...; [cn, inf)].
    An empty list yields [[full]].
    @raise Invalid_argument if the cutpoints are not strictly increasing and
    positive. *)
val of_cutpoints : float list -> t list
