(** Plain-text table rendering for the benchmark harness.

    The evaluation harness reprints the paper's Table 1 and Table 2 rows;
    this module renders aligned ASCII tables from string cells. *)

type align = Left | Right | Center

type t

(** [create headers] starts a table; every later row must have the same
    arity as [headers]. *)
val create : ?aligns:align list -> string list -> t

(** Append a row.  @raise Invalid_argument on arity mismatch. *)
val add_row : t -> string list -> unit

(** Append a horizontal separator between row groups. *)
val add_separator : t -> unit

(** Render with box-drawing in pure ASCII ([+---+]). *)
val render : t -> string

(** [render_rows headers rows] is a one-shot convenience wrapper. *)
val render_rows : ?aligns:align list -> string list -> string list list -> string

(** Format a float compactly ("63", "72.85", "4057.1"). *)
val float_cell : float -> string
