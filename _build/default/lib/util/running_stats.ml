type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minv : float;
  mutable maxv : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; minv = Float.infinity; maxv = Float.neg_infinity; total = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x;
  t.total <- t.total +. x

let count t = t.n
let mean t = t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.minv
let max t = t.maxv
let total t = t.total

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let percentile p xs =
  if xs = [] then invalid_arg "Running_stats.percentile: empty";
  if p < 0. || p > 1. then invalid_arg "Running_stats.percentile: p not in [0,1]";
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  let idx = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor idx) and hi = int_of_float (Float.ceil idx) in
  let frac = idx -. Float.floor idx in
  (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
