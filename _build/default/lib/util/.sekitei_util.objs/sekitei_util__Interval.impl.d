lib/util/interval.ml: Float Format List Printf
