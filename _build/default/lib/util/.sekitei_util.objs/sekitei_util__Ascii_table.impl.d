lib/util/ascii_table.ml: Array Buffer Float List Printf String
