lib/util/running_stats.mli:
