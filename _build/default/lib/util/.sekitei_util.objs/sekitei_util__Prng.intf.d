lib/util/prng.mli:
