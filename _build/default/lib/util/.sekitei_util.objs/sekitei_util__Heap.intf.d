lib/util/heap.mli:
