lib/util/timer.mli:
