lib/util/running_stats.ml: Array Float List
