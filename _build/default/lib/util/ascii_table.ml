type align = Left | Right | Center
type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
  arity : int;
}

let create ?aligns headers =
  let arity = List.length headers in
  let aligns =
    match aligns with
    | Some a when List.length a = arity -> a
    | Some _ -> invalid_arg "Ascii_table.create: aligns arity mismatch"
    | None -> List.map (fun _ -> Left) headers
  in
  { headers; aligns; rows = []; arity }

let add_row t cells =
  if List.length cells <> t.arity then
    invalid_arg "Ascii_table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
        let left = (width - n) / 2 in
        String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter (function Cells c -> update c | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let hline () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit aligns cells =
    List.iteri
      (fun i c ->
        let a = List.nth aligns i in
        Buffer.add_string buf ("| " ^ pad a widths.(i) c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  hline ();
  emit (List.map (fun _ -> Center) t.headers) t.headers;
  hline ();
  List.iter
    (function Cells c -> emit t.aligns c | Separator -> hline ())
    rows;
  hline ();
  Buffer.contents buf

let render_rows ?aligns headers rows =
  let t = create ?aligns headers in
  List.iter (add_row t) rows;
  render t

let float_cell x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x
