(** Disjoint-set forest with path compression and union by rank.

    Used to check connectivity of generated topologies and to wire up the
    transit-stub generator's spanning structure. *)

type t

(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)
val create : int -> t

val find : t -> int -> int

(** [union t a b] merges the two sets; returns [true] when they were
    previously distinct. *)
val union : t -> int -> int -> bool

val same : t -> int -> int -> bool

(** Number of distinct sets remaining. *)
val count : t -> int
