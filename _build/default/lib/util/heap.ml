type 'a entry = { prio : float; prio2 : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create_sized n = { data = Array.make (max n 8) None; size = 0; next_seq = 0 }
let create () = create_sized 16
let is_empty h = h.size = 0
let length h = h.size
let insertions h = h.next_seq

(* An entry [a] sorts before [b] on smaller priority, then smaller
   insertion sequence number. *)
let before a b =
  a.prio < b.prio
  || (a.prio = b.prio
      && (a.prio2 < b.prio2 || (a.prio2 = b.prio2 && a.seq < b.seq)))

let get h i =
  match h.data.(i) with
  | Some e -> e
  | None -> assert false

let grow h =
  let data = Array.make (2 * Array.length h.data) None in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (get h i) (get h parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && before (get h l) (get h !smallest) then smallest := l;
  if r < h.size && before (get h r) (get h !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let add h ~prio ?(prio2 = 0.) value =
  if Float.is_nan prio then invalid_arg "Heap.add: NaN priority";
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- Some { prio; prio2; seq = h.next_seq; value };
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    let e = get h 0 in
    Some (e.value, e.prio)

let pop h =
  if h.size = 0 then None
  else begin
    let top = get h 0 in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    Some (top.value, top.prio)
  end

let pop_exn h = match pop h with Some x -> x | None -> raise Not_found

let clear h =
  Array.fill h.data 0 (Array.length h.data) None;
  h.size <- 0

let to_sorted_list h =
  let rec drain acc = match pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  drain []
