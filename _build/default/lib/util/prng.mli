(** Deterministic splitmix64 pseudo-random number generator.

    Topology generation (the paper's GT-ITM-generated 93-node network,
    Figure 10) must be reproducible, so all randomness in the repository
    flows through explicitly seeded instances of this generator. *)

type t

val create : seed:int64 -> t

(** Independent child stream (split). *)
val split : t -> t

(** Uniform 64-bit value. *)
val next : t -> int64

(** [int t n] is uniform in [0, n).  @raise Invalid_argument if [n <= 0]. *)
val int : t -> int -> int

(** [float t x] is uniform in [0, x). *)
val float : t -> float -> float

(** [bool t p] is true with probability [p]. *)
val bool : t -> float -> bool

(** [range t lo hi] is a uniform integer in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** Uniform element of a non-empty list.  @raise Invalid_argument on []. *)
val choice : t -> 'a list -> 'a

(** [sample t k xs] draws [k] distinct elements (reservoir order preserved
    by index).  @raise Invalid_argument when [k > List.length xs]. *)
val sample : t -> int -> 'a list -> 'a list
