(** Wall-clock timing helpers for planner-phase instrumentation.

    The paper's Table 2 reports total planning time and search-only time
    separately; the planner threads one {!t} per phase. *)

type t

val start : unit -> t

(** Elapsed seconds since [start]. *)
val elapsed_s : t -> float

(** Elapsed milliseconds since [start] (the paper reports ms). *)
val elapsed_ms : t -> float

(** [time f] runs [f ()] and returns its result with elapsed milliseconds. *)
val time : (unit -> 'a) -> 'a * float
