(** Streaming summary statistics (Welford's algorithm).

    Used by the benchmark harness to aggregate per-run planner timings and
    graph sizes across repetitions. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

(** Convenience: statistics over a list in one pass. *)
val of_list : float list -> t

(** [percentile p xs] for [p] in [0,1]; linear interpolation on the sorted
    sample.  @raise Invalid_argument on an empty list or p outside [0,1]. *)
val percentile : float -> float list -> float
