(** Synthetic topology generators.

    The paper evaluates on three networks: a 2-node {e Tiny} instance, a
    6-node {e Small} LAN/WAN instance, and a 93-node {e Large} network
    produced by the GeorgiaTech ITM tool [Zegura et al., Infocom'96].  ITM
    is proprietary-era software; {!transit_stub} is our reimplementation of
    its transit-stub model (seeded, deterministic): a core of transit
    routers joined by WAN links, each sprouting stub domains of LAN-linked
    hosts.  All generators use the paper's resource defaults (CPU 30,
    LAN 150, WAN 70) unless overridden. *)

open Topology

type params = {
  cpu : float;
  lan_bw : float;
  wan_bw : float;
}

val default_params : params

(** [line ~params n] is a chain of [n] nodes joined by LAN links. *)
val line : ?params:params -> int -> t

(** [line_kinds ~params kinds] is a chain whose [i]-th link has the given
    kind, e.g. [[Lan; Lan; Wan; Lan]] builds a 5-node path crossing one WAN
    link. *)
val line_kinds : ?params:params -> link_kind list -> t

val ring : ?params:params -> int -> t

(** [star ~params n] has one hub (node 0) and [n] LAN-linked leaves. *)
val star : ?params:params -> int -> t

(** [grid ~params rows cols] is a LAN mesh. *)
val grid : ?params:params -> int -> int -> t

(** [transit_stub ~rng ~transit ~stubs_per_transit ~stub_size ()] builds a
    two-tier GT-ITM-style network:

    - [transit] core routers joined into a ring plus random WAN chords;
    - each transit router attaches [stubs_per_transit] stub domains of
      [stub_size] hosts; each stub is a random connected LAN subgraph
      (spanning tree plus Waxman-probability extra edges) with one WAN
      uplink to its transit router.

    Total nodes: [transit * (1 + stubs_per_transit * stub_size)].
    The paper's Figure 10 network is [transit:3 ~stubs_per_transit:3
    ~stub_size:10] = 93 nodes. *)
val transit_stub :
  ?params:params ->
  ?extra_edge_prob:float ->
  rng:Sekitei_util.Prng.t ->
  transit:int ->
  stubs_per_transit:int ->
  stub_size:int ->
  unit ->
  t
