(** Graphviz DOT export of topologies (reproduces the paper's Figure 10
    rendering input). *)

(** [to_dot ?highlight topo] renders an undirected graph; WAN links are
    drawn bold, nodes listed in [highlight] are filled. *)
val to_dot : ?highlight:Topology.node_id list -> Topology.t -> string

(** Write the DOT text to a file. *)
val write_file : ?highlight:Topology.node_id list -> Topology.t -> string -> unit
