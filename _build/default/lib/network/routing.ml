open Topology
module Heap = Sekitei_util.Heap

type path = { hops : node_id list; path_links : link_id list }

let reconstruct prev src dst =
  let rec go acc_nodes acc_links node =
    if node = src then { hops = node :: acc_nodes; path_links = acc_links }
    else
      match prev.(node) with
      | Some (p, lid) -> go (node :: acc_nodes) (lid :: acc_links) p
      | None -> assert false
  in
  go [] [] dst

let shortest_path t src dst =
  let n = node_count t in
  if src < 0 || src >= n || dst < 0 || dst >= n then None
  else begin
    let prev = Array.make n None in
    let seen = Array.make n false in
    seen.(src) <- true;
    let q = Queue.create () in
    Queue.add src q;
    let found = ref (src = dst) in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun (v, lid) ->
          if not seen.(v) then begin
            seen.(v) <- true;
            prev.(v) <- Some (u, lid);
            if v = dst then found := true else Queue.add v q
          end)
        (adjacent t u)
    done;
    if !found then Some (reconstruct prev src dst) else None
  end

let dijkstra t ~weight src dst =
  let n = node_count t in
  if src < 0 || src >= n || dst < 0 || dst >= n then None
  else begin
    let dist = Array.make n Float.infinity in
    let prev = Array.make n None in
    let done_ = Array.make n false in
    let heap = Heap.create () in
    dist.(src) <- 0.;
    Heap.add heap ~prio:0. src;
    let rec loop () =
      match Heap.pop heap with
      | None -> ()
      | Some (u, d) ->
          if done_.(u) then loop ()
          else begin
            done_.(u) <- true;
            if u <> dst then begin
              List.iter
                (fun (v, lid) ->
                  let w = weight (get_link t lid) in
                  if w < 0. then invalid_arg "Routing.dijkstra: negative weight";
                  let nd = d +. w in
                  if nd < dist.(v) then begin
                    dist.(v) <- nd;
                    prev.(v) <- Some (u, lid);
                    Heap.add heap ~prio:nd v
                  end)
                (adjacent t u);
              loop ()
            end
          end
    in
    loop ();
    if Float.is_finite dist.(dst) then Some (reconstruct prev src dst) else None
  end

let widest_path t src dst =
  let n = node_count t in
  if src < 0 || src >= n || dst < 0 || dst >= n then None
  else begin
    let width = Array.make n Float.neg_infinity in
    let prev = Array.make n None in
    let done_ = Array.make n false in
    let heap = Heap.create () in
    width.(src) <- Float.infinity;
    (* Max-heap via negated priority. *)
    Heap.add heap ~prio:Float.neg_infinity src;
    let rec loop () =
      match Heap.pop heap with
      | None -> ()
      | Some (u, _) ->
          if done_.(u) then loop ()
          else begin
            done_.(u) <- true;
            List.iter
              (fun (v, lid) ->
                let bw = try link_resource t lid "lbw" with Not_found -> 0. in
                let w = Float.min width.(u) bw in
                if w > width.(v) then begin
                  width.(v) <- w;
                  prev.(v) <- Some (u, lid);
                  Heap.add heap ~prio:(-.w) v
                end)
              (adjacent t u);
            loop ()
          end
    in
    loop ();
    if width.(dst) > Float.neg_infinity then
      Some (reconstruct prev src dst, width.(dst))
    else None
  end

let hop_distance t src dst =
  Option.map (fun p -> List.length p.path_links) (shortest_path t src dst)

let simple_paths t ~max_hops src dst =
  let acc = ref [] in
  let rec go visited rev_nodes rev_links node depth =
    if node = dst then
      acc :=
        { hops = List.rev (node :: rev_nodes); path_links = List.rev rev_links }
        :: !acc
    else if depth < max_hops then
      List.iter
        (fun (v, lid) ->
          if not (List.mem v visited) then
            go (v :: visited) (node :: rev_nodes) (lid :: rev_links) v (depth + 1))
        (adjacent t node)
  in
  go [ src ] [] [] src 0;
  List.rev !acc
