open Topology

let to_dot ?(highlight = []) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph topology {\n  node [shape=circle fontsize=10];\n";
  Array.iter
    (fun n ->
      let attrs =
        if List.mem n.node_id highlight then
          " [style=filled fillcolor=lightblue]"
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s\"]%s;\n" n.node_id n.node_name attrs))
    (nodes t);
  Array.iter
    (fun l ->
      let a, b = l.ends in
      let bw = try List.assoc "lbw" l.link_resources with Not_found -> 0. in
      let style = match l.kind with Wan -> " style=bold color=red" | Lan -> "" in
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d [label=\"%g\"%s];\n" a b bw style))
    (links t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?highlight t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?highlight t))
