lib/network/generators.ml: Array List Printf Sekitei_util Topology
