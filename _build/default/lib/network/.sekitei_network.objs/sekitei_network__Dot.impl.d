lib/network/dot.ml: Array Buffer Fun List Printf Topology
