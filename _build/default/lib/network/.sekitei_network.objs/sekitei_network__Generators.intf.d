lib/network/generators.mli: Sekitei_util Topology
