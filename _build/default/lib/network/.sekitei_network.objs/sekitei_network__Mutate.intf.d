lib/network/mutate.mli: Topology
