lib/network/mutate.ml: Array List Topology
