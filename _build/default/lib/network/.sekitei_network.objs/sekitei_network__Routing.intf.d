lib/network/routing.mli: Topology
