lib/network/dot.mli: Topology
