lib/network/topology.mli:
