lib/network/routing.ml: Array Float List Option Queue Sekitei_util Topology
