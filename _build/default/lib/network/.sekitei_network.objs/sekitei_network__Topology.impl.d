lib/network/topology.ml: Array Fun Hashtbl List Printf String
