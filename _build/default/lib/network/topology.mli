(** Network model: nodes with computational resources, links with
    communication resources.

    The CPP's environment (paper section 2.1) is a wide-area network whose
    nodes carry resources such as CPU and whose links carry resources such
    as bandwidth.  Links are undirected with capacity shared between
    directions; the paper's evaluation distinguishes LAN links (bandwidth
    150) from WAN links (bandwidth 70), and the Table 2 "reserved LAN bw"
    column aggregates consumption per link class. *)

type node_id = int
type link_id = int
type link_kind = Lan | Wan

type node = {
  node_id : node_id;
  node_name : string;
  node_resources : (string * float) list;  (** e.g. [("cpu", 30.)] *)
}

type link = {
  link_id : link_id;
  ends : node_id * node_id;
  kind : link_kind;
  link_resources : (string * float) list;  (** e.g. [("lbw", 150.)] *)
}

type t

(** {1 Construction} *)

(** [make ~nodes ~links] builds a topology.  Node ids must be exactly
    [0 .. n-1]; link endpoints must be valid and distinct.
    @raise Invalid_argument otherwise. *)
val make : nodes:node list -> links:link list -> t

(** Convenience node/link constructors with the paper's defaults
    (CPU 30, LAN bandwidth 150, WAN bandwidth 70). *)
val node : ?cpu:float -> ?resources:(string * float) list -> int -> string -> node

val link :
  ?bw:float -> ?resources:(string * float) list -> link_kind -> int -> int -> int -> link

(** {1 Access} *)

val node_count : t -> int
val link_count : t -> int
val nodes : t -> node array
val links : t -> link array
val get_node : t -> node_id -> node
val get_link : t -> link_id -> link

(** Neighbours with the connecting link: [(peer, link_id)] list. *)
val adjacent : t -> node_id -> (node_id * link_id) list

(** The (lowest-id) link joining two nodes, if any; symmetric. *)
val find_link : t -> node_id -> node_id -> link option

(** [node_resource t id name] looks up a node resource.
    @raise Not_found when absent. *)
val node_resource : t -> node_id -> string -> float

(** [link_resource t id name] looks up a link resource.
    @raise Not_found when absent. *)
val link_resource : t -> link_id -> string -> float

(** The other endpoint of a link. *)
val peer : t -> link_id -> node_id -> node_id

(** [node_by_name t name] finds a node by name.  @raise Not_found *)
val node_by_name : t -> string -> node

val is_connected : t -> bool

(** All resource names appearing on any node (resp. link). *)
val node_resource_names : t -> string list

val link_resource_names : t -> string list
