type node_id = int
type link_id = int
type link_kind = Lan | Wan

type node = {
  node_id : node_id;
  node_name : string;
  node_resources : (string * float) list;
}

type link = {
  link_id : link_id;
  ends : node_id * node_id;
  kind : link_kind;
  link_resources : (string * float) list;
}

type t = {
  node_arr : node array;
  link_arr : link array;
  adj : (node_id * link_id) list array;
}

let default_cpu = 30.
let default_lan_bw = 150.
let default_wan_bw = 70.

let node ?(cpu = default_cpu) ?(resources = []) id name =
  {
    node_id = id;
    node_name = name;
    node_resources = ("cpu", cpu) :: resources;
  }

let link ?bw ?(resources = []) kind id a b =
  let bw =
    match bw with
    | Some bw -> bw
    | None -> ( match kind with Lan -> default_lan_bw | Wan -> default_wan_bw)
  in
  { link_id = id; ends = (a, b); kind; link_resources = ("lbw", bw) :: resources }

let make ~nodes ~links =
  let node_arr = Array.of_list nodes in
  let n = Array.length node_arr in
  Array.iteri
    (fun i nd ->
      if nd.node_id <> i then
        invalid_arg
          (Printf.sprintf "Topology.make: node ids must be 0..n-1 (got %d at %d)"
             nd.node_id i))
    node_arr;
  let link_arr = Array.of_list links in
  Array.iteri
    (fun i l ->
      let a, b = l.ends in
      if l.link_id <> i then
        invalid_arg "Topology.make: link ids must be 0..m-1 in order";
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Topology.make: link endpoint out of range";
      if a = b then invalid_arg "Topology.make: self-loop")
    link_arr;
  let adj = Array.make (max n 1) [] in
  Array.iter
    (fun l ->
      let a, b = l.ends in
      adj.(a) <- (b, l.link_id) :: adj.(a);
      adj.(b) <- (a, l.link_id) :: adj.(b))
    link_arr;
  (* Deterministic neighbour order: by peer id then link id. *)
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  { node_arr; link_arr; adj }

let node_count t = Array.length t.node_arr
let link_count t = Array.length t.link_arr
let nodes t = t.node_arr
let links t = t.link_arr

let get_node t id =
  if id < 0 || id >= node_count t then invalid_arg "Topology.get_node"
  else t.node_arr.(id)

let get_link t id =
  if id < 0 || id >= link_count t then invalid_arg "Topology.get_link"
  else t.link_arr.(id)

let adjacent t id =
  if id < 0 || id >= node_count t then invalid_arg "Topology.adjacent"
  else t.adj.(id)

let find_link t a b =
  let rec scan = function
    | [] -> None
    | (peer, lid) :: rest -> if peer = b then Some (get_link t lid) else scan rest
  in
  if a < 0 || a >= node_count t then None else scan t.adj.(a)

let node_resource t id name = List.assoc name (get_node t id).node_resources
let link_resource t id name = List.assoc name (get_link t id).link_resources

let peer t lid n =
  let l = get_link t lid in
  let a, b = l.ends in
  if n = a then b
  else if n = b then a
  else invalid_arg "Topology.peer: node not an endpoint"

let node_by_name t name =
  match Array.find_opt (fun n -> String.equal n.node_name name) t.node_arr with
  | Some n -> n
  | None -> raise Not_found

let is_connected t =
  let n = node_count t in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let rec dfs i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter (fun (peer, _) -> dfs peer) t.adj.(i)
      end
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

let collect_names proj arr =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (fun x ->
      List.iter
        (fun (name, _) ->
          if not (Hashtbl.mem seen name) then begin
            Hashtbl.add seen name ();
            acc := name :: !acc
          end)
        (proj x))
    arr;
  List.rev !acc

let node_resource_names t = collect_names (fun n -> n.node_resources) t.node_arr
let link_resource_names t = collect_names (fun l -> l.link_resources) t.link_arr
