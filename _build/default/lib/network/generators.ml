open Topology
module Prng = Sekitei_util.Prng
module Union_find = Sekitei_util.Union_find

type params = { cpu : float; lan_bw : float; wan_bw : float }

let default_params = { cpu = 30.; lan_bw = 150.; wan_bw = 70. }

let mk_node p i = node ~cpu:p.cpu i (Printf.sprintf "n%d" i)

let bw_of p = function Lan -> p.lan_bw | Wan -> p.wan_bw

let mk_link p kind id a b = link ~bw:(bw_of p kind) kind id a b

let line_kinds ?(params = default_params) kinds =
  let m = List.length kinds in
  let nodes = List.init (m + 1) (mk_node params) in
  let links = List.mapi (fun i k -> mk_link params k i i (i + 1)) kinds in
  make ~nodes ~links

let line ?(params = default_params) n =
  if n < 1 then invalid_arg "Generators.line: need at least one node";
  line_kinds ~params (List.init (n - 1) (fun _ -> Lan))

let ring ?(params = default_params) n =
  if n < 3 then invalid_arg "Generators.ring: need at least three nodes";
  let nodes = List.init n (mk_node params) in
  let links = List.init n (fun i -> mk_link params Lan i i ((i + 1) mod n)) in
  make ~nodes ~links

let star ?(params = default_params) n =
  if n < 1 then invalid_arg "Generators.star: need at least one leaf";
  let nodes = List.init (n + 1) (mk_node params) in
  let links = List.init n (fun i -> mk_link params Lan i 0 (i + 1)) in
  make ~nodes ~links

let grid ?(params = default_params) rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid";
  let id r c = (r * cols) + c in
  let nodes = List.init (rows * cols) (mk_node params) in
  let links = ref [] in
  let next = ref 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then begin
        links := mk_link params Lan !next (id r c) (id r (c + 1)) :: !links;
        incr next
      end;
      if r + 1 < rows then begin
        links := mk_link params Lan !next (id r c) (id (r + 1) c) :: !links;
        incr next
      end
    done
  done;
  make ~nodes ~links:(List.rev !links)

let transit_stub ?(params = default_params) ?(extra_edge_prob = 0.15) ~rng
    ~transit ~stubs_per_transit ~stub_size () =
  if transit < 1 || stubs_per_transit < 0 || stub_size < 1 then
    invalid_arg "Generators.transit_stub";
  let total = transit * (1 + (stubs_per_transit * stub_size)) in
  let nodes = List.init total (mk_node params) in
  let links = ref [] in
  let next_link = ref 0 in
  let add kind a b =
    links := mk_link params kind !next_link a b :: !links;
    incr next_link
  in
  let link_exists a b =
    List.exists
      (fun l ->
        let x, y = l.ends in
        (x = a && y = b) || (x = b && y = a))
      !links
  in
  (* Transit core: nodes 0 .. transit-1 in a ring (a path when transit = 2),
     plus random WAN chords. *)
  if transit >= 2 then
    for i = 0 to transit - 1 do
      let j = (i + 1) mod transit in
      if i < j || transit > 2 then if not (link_exists i j) then add Wan i j
    done;
  for i = 0 to transit - 1 do
    for j = i + 2 to transit - 1 do
      if (not (link_exists i j)) && Prng.bool rng extra_edge_prob then
        add Wan i j
    done
  done;
  (* Stub domains. *)
  let next_node = ref transit in
  for tr = 0 to transit - 1 do
    for _stub = 1 to stubs_per_transit do
      let members = Array.init stub_size (fun k -> !next_node + k) in
      next_node := !next_node + stub_size;
      (* Random spanning tree: connect each new member to a previous one. *)
      for k = 1 to stub_size - 1 do
        let parent = members.(Prng.int rng k) in
        add Lan parent members.(k)
      done;
      (* Waxman-style extra intra-stub edges. *)
      for a = 0 to stub_size - 1 do
        for b = a + 1 to stub_size - 1 do
          if
            (not (link_exists members.(a) members.(b)))
            && Prng.bool rng extra_edge_prob
          then add Lan members.(a) members.(b)
        done
      done;
      (* WAN uplink from a random stub member to the transit router. *)
      add Wan tr members.(Prng.int rng stub_size)
    done
  done;
  make ~nodes ~links:(List.rev !links)
