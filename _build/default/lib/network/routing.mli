(** Path-finding over topologies.

    The planner itself performs regression search, not routing; these
    utilities support scenario construction (pinning the server/client path
    structure of the paper's networks), validation, and baselines. *)

open Topology

type path = { hops : node_id list; path_links : link_id list }
(** [hops] lists the visited nodes (source first); [path_links] the
    traversed links, so [List.length hops = List.length path_links + 1]. *)

(** Fewest-hops path (BFS).  [None] when unreachable. *)
val shortest_path : t -> node_id -> node_id -> path option

(** Cheapest path under a per-link weight (Dijkstra; weights must be
    non-negative).  [None] when unreachable. *)
val dijkstra : t -> weight:(link -> float) -> node_id -> node_id -> path option

(** Maximum-bottleneck-bandwidth path, using the ["lbw"] link resource.
    Returns the path and its bottleneck.  [None] when unreachable. *)
val widest_path : t -> node_id -> node_id -> (path * float) option

(** Hop distance; [None] when unreachable. *)
val hop_distance : t -> node_id -> node_id -> int option

(** All simple paths up to [max_hops] links, in lexicographic node order
    (for exhaustive baselines on small networks). *)
val simple_paths : t -> max_hops:int -> node_id -> node_id -> path list
