(** The Figure 5 cost-tradeoff domain.

    A text stream [T] (100 units supplied, 90 demanded) must reach the
    client.  Two routes exist: a three-link wide path usable by the raw
    stream, and a two-link narrow path (60 bandwidth units) that only fits
    the compressed stream [Z], requiring Zip/Unzip components.  Which plan
    is cheaper depends on the relative price of link bandwidth
    ([cross_weight]) and node computation ([place_weight]) — the planner
    must flip between them as the weights change. *)

module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Topology = Sekitei_network.Topology

(** Nodes 0..4: server n0; wide path n0-n1-n2-n3; narrow path n0-n4-n3;
    client n3. *)
val topology : unit -> Topology.t

val server : int
val client : int

val app : ?cross_weight:float -> ?place_weight:float -> unit -> Model.app

(** Scenario-C-style levels on [T] (cutpoints 90, 100) with [Z] derived. *)
val leveling : Model.app -> Leveling.t
