module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Topology = Sekitei_network.Topology
module Expr = Sekitei_expr.Expr

let e = Expr.parse
let c = Expr.parse_cond
let server = 0
let client = 3

let topology () =
  Topology.(
    make
      ~nodes:(List.init 5 (fun i -> node i (Printf.sprintf "n%d" i)))
      ~links:
        [
          link ~bw:150. Lan 0 0 1;
          link ~bw:150. Lan 1 1 2;
          link ~bw:150. Lan 2 2 3;
          link ~bw:60. Wan 3 0 4;
          link ~bw:60. Wan 4 4 3;
        ])

let stream ~cross_weight name =
  Model.iface
    ~cross_cost:(e (Printf.sprintf "%g * (1 + ibw / 10)" cross_weight))
    ~properties:[ Model.property ~tag:Model.Degradable "ibw" ]
    name

let app ?(cross_weight = 1.) ?(place_weight = 1.) () =
  let cost expr_text = e (Printf.sprintf "%g * (1 + %s)" place_weight expr_text) in
  {
    Model.interfaces = List.map (stream ~cross_weight) [ "T"; "Z" ];
    components =
      [
        Model.component ~provides:[ "T" ]
          ~effects:[ ("T", "ibw", Expr.Const 100.) ]
          ~placeable:false "Server";
        Model.component ~requires:[ "T" ]
          ~conditions:[ c "T.ibw >= 90" ]
          ~place_cost:(cost "T.ibw / 10") "Client";
        Model.component ~requires:[ "T" ] ~provides:[ "Z" ]
          ~effects:[ ("Z", "ibw", e "T.ibw / 2") ]
          ~consumes:[ ("cpu", e "T.ibw / 10") ]
          ~place_cost:(cost "T.ibw / 10") "Zip";
        Model.component ~requires:[ "Z" ] ~provides:[ "T" ]
          ~effects:[ ("T", "ibw", e "Z.ibw * 2") ]
          ~consumes:[ ("cpu", e "Z.ibw / 5") ]
          ~place_cost:(cost "Z.ibw * 2 / 10") "Unzip";
      ];
    pre_placed = [ ("Server", server) ];
    goals = [ Model.Placed ("Client", client) ];
  }

let leveling app =
  Leveling.propagate app
    (Leveling.with_iface Leveling.empty "T" "ibw" [ 90.; 100. ])
