lib/domains/gridflow.mli: Sekitei_network Sekitei_spec
