lib/domains/chain.mli: Sekitei_network Sekitei_spec
