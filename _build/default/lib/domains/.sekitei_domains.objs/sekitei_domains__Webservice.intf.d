lib/domains/webservice.mli: Sekitei_network Sekitei_spec
