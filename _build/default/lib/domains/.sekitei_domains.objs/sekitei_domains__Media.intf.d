lib/domains/media.mli: Sekitei_spec
