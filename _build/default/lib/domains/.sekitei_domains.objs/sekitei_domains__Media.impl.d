lib/domains/media.ml: List Printf Sekitei_expr Sekitei_spec
