lib/domains/webservice.ml: List Printf Sekitei_expr Sekitei_network Sekitei_spec
