lib/domains/gridflow.ml: List Printf Sekitei_expr Sekitei_network Sekitei_spec
