(** The paper's evaluation application (Figures 1-4): media stream
    delivery.

    A [Server] provides a combined media stream [M] (images + text) of up
    to [supply] bandwidth units; a [Client] on another node requires at
    least [demand] units.  The stream can be transformed en route:

    - [Splitter] divides [M] into a text stream [T] (70%) and an image
      stream [I] (30%) — the ratio is fixed by the Merger condition
      [T.ibw*3 == I.ibw*7] and the paper's reserved-bandwidth figures;
    - [Zip]/[Unzip] halve/double the text stream ([Z] = compressed text);
    - [Merger] recombines [T] and [I] into [M].

    CPU costs (capacity 30 per node): Splitter [M/5], Zip [T/10],
    Unzip [Z/5], Merger [(T+I)/5] — so a Splitter+Zip pair saturates a
    node at ~111 units of [M], the paper's stated bound.

    Plan costs are proportional to processed/transferred bandwidth
    ([1 + bw/10]), matching the paper's Merger example; [cross_weight] and
    [place_weight] scale the two families for the Figure 5 tradeoff
    experiment. *)

module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling

(** [app ~server ~client ()] builds the application specification.
    Defaults: [supply] 200, [demand] 90, weights 1. *)
val app :
  ?supply:float ->
  ?demand:float ->
  ?cross_weight:float ->
  ?place_weight:float ->
  server:int ->
  client:int ->
  unit ->
  Model.app

(** Table 1 resource-level scenarios. *)
type scenario = A | B | C | D | E

val all_scenarios : scenario list
val scenario_name : scenario -> string

(** [leveling scenario app] builds the scenario's cutpoints for [M]
    ([Table 1]) and derives proportional levels for [T], [I], [Z] via
    {!Leveling.propagate}; scenario [E] additionally levels link bandwidth
    at 31 and 62. *)
val leveling : scenario -> Model.app -> Leveling.t
