(** A grid-computing workflow domain (the paper's introduction motivates
    the CPP with Pegasus-style task graphs over logical files).

    A [Storage] service holds a logical dataset [F] (a file streamed at up
    to [supply] units); an [Analyze] task reduces it to a result stream
    [R] (one quarter of the input rate, plus 5 time units of processing
    latency); the [Consumer] requires at least [demand] units of [R]
    {e and} end-to-end latency within [deadline].  [Compress]/[Expand] can
    shrink the file stream to a third for narrow links at extra latency.

    This domain exercises multi-property interfaces: every stream carries
    both [ibw] (leveled, degradable) and [lat] (accumulated across links
    through the [link.lat] resource, checked against the deadline — the
    paper's QoS-pruning example). *)

module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Topology = Sekitei_network.Topology

(** [topology ~link_lats ~bws ()] is a line network whose [i]-th link has
    the given latency and bandwidth. *)
val topology : link_lats:float list -> bws:float list -> Topology.t

val app :
  ?supply:float ->
  ?demand:float ->
  ?deadline:float ->
  storage:int ->
  consumer:int ->
  unit ->
  Model.app

(** Levels on [F.ibw] at the given cutpoints, propagated to [FZ] and [R]. *)
val leveling : ?cuts:float list -> Model.app -> Leveling.t
