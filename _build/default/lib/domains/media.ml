module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Expr = Sekitei_expr.Expr

let e = Expr.parse
let c = Expr.parse_cond

let stream ~cross_weight name =
  Model.iface
    ~cross_cost:(e (Printf.sprintf "%g * (1 + ibw / 10)" cross_weight))
    ~properties:[ Model.property ~tag:Model.Degradable "ibw" ]
    name

let cost ~place_weight expr_text =
  e (Printf.sprintf "%g * (1 + %s)" place_weight expr_text)

let app ?(supply = 200.) ?(demand = 90.) ?(cross_weight = 1.)
    ?(place_weight = 1.) ~server ~client () =
  let interfaces =
    List.map (stream ~cross_weight) [ "M"; "T"; "I"; "Z" ]
  in
  let components =
    [
      Model.component ~provides:[ "M" ]
        ~effects:[ ("M", "ibw", Expr.Const supply) ]
        ~placeable:false "Server";
      Model.component ~requires:[ "M" ]
        ~conditions:[ c (Printf.sprintf "M.ibw >= %g" demand) ]
        ~place_cost:(cost ~place_weight "M.ibw / 10")
        "Client";
      Model.component ~requires:[ "M" ] ~provides:[ "T"; "I" ]
        ~effects:
          [ ("T", "ibw", e "M.ibw * 7 / 10"); ("I", "ibw", e "M.ibw * 3 / 10") ]
        ~consumes:[ ("cpu", e "M.ibw / 5") ]
        ~place_cost:(cost ~place_weight "M.ibw / 10")
        "Splitter";
      Model.component ~requires:[ "T"; "I" ] ~provides:[ "M" ]
        ~conditions:[ c "T.ibw * 3 == I.ibw * 7" ]
        ~effects:[ ("M", "ibw", e "T.ibw + I.ibw") ]
        ~consumes:[ ("cpu", e "(T.ibw + I.ibw) / 5") ]
        ~place_cost:(cost ~place_weight "(T.ibw + I.ibw) / 10")
        "Merger";
      Model.component ~requires:[ "T" ] ~provides:[ "Z" ]
        ~effects:[ ("Z", "ibw", e "T.ibw / 2") ]
        ~consumes:[ ("cpu", e "T.ibw / 10") ]
        ~place_cost:(cost ~place_weight "T.ibw / 10")
        "Zip";
      Model.component ~requires:[ "Z" ] ~provides:[ "T" ]
        ~effects:[ ("T", "ibw", e "Z.ibw * 2") ]
        ~consumes:[ ("cpu", e "Z.ibw / 5") ]
        ~place_cost:(cost ~place_weight "Z.ibw * 2 / 10")
        "Unzip";
    ]
  in
  {
    Model.interfaces;
    components;
    pre_placed = [ ("Server", server) ];
    goals = [ Model.Placed ("Client", client) ];
  }

type scenario = A | B | C | D | E

let all_scenarios = [ A; B; C; D; E ]

let scenario_name = function
  | A -> "A"
  | B -> "B"
  | C -> "C"
  | D -> "D"
  | E -> "E"

let m_cutpoints = function
  | A -> []
  | B -> [ 100. ]
  | C -> [ 90.; 100. ]
  | D | E -> [ 30.; 70.; 90.; 100. ]

let leveling scenario app =
  let base =
    match m_cutpoints scenario with
    | [] -> Leveling.empty
    | cuts -> Leveling.with_iface Leveling.empty "M" "ibw" cuts
  in
  let base =
    match scenario with
    | E -> Leveling.with_link base "lbw" [ 31.; 62. ]
    | A | B | C | D -> base
  in
  Leveling.propagate app base
