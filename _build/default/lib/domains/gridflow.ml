module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Topology = Sekitei_network.Topology
module Expr = Sekitei_expr.Expr

let e = Expr.parse
let c = Expr.parse_cond

let topology ~link_lats ~bws =
  let m = List.length link_lats in
  if List.length bws <> m then invalid_arg "Gridflow.topology: length mismatch";
  Topology.(
    make
      ~nodes:(List.init (m + 1) (fun i -> node i (Printf.sprintf "n%d" i)))
      ~links:
        (List.mapi
           (fun i (lat, bw) ->
             link ~bw ~resources:[ ("lat", lat) ] Lan i i (i + 1))
           (List.combine link_lats bws)))

let stream name =
  Model.iface
    ~cross_transforms:
      [ ("ibw", e "min(ibw, link.lbw)"); ("lat", e "lat + link.lat") ]
    ~cross_consumes:[ ("lbw", e "min(ibw, link.lbw)") ]
    ~cross_cost:(e "1 + ibw / 10")
    ~properties:
      [
        Model.property ~tag:Model.Degradable "ibw";
        Model.property ~default:0. ~tag:Model.Neither "lat";
      ]
    name

let app ?(supply = 120.) ?(demand = 20.) ?(deadline = 40.) ~storage ~consumer
    () =
  {
    Model.interfaces = List.map stream [ "F"; "FZ"; "R" ];
    components =
      [
        Model.component ~provides:[ "F" ]
          ~effects:[ ("F", "ibw", Expr.Const supply); ("F", "lat", Expr.Const 0.) ]
          ~placeable:false "Storage";
        Model.component ~requires:[ "F" ] ~provides:[ "R" ]
          ~effects:
            [ ("R", "ibw", e "F.ibw / 4"); ("R", "lat", e "F.lat + 5") ]
          ~consumes:[ ("cpu", e "F.ibw / 8") ]
          ~place_cost:(e "1 + F.ibw / 10")
          "Analyze";
        Model.component ~requires:[ "F" ] ~provides:[ "FZ" ]
          ~effects:
            [ ("FZ", "ibw", e "F.ibw / 3"); ("FZ", "lat", e "F.lat + 2") ]
          ~consumes:[ ("cpu", e "F.ibw / 10") ]
          ~place_cost:(e "1 + F.ibw / 10")
          "Compress";
        Model.component ~requires:[ "FZ" ] ~provides:[ "F" ]
          ~effects:
            [ ("F", "ibw", e "FZ.ibw * 3"); ("F", "lat", e "FZ.lat + 2") ]
          ~consumes:[ ("cpu", e "FZ.ibw / 5") ]
          ~place_cost:(e "1 + FZ.ibw * 3 / 10")
          "Expand";
        Model.component ~requires:[ "R" ]
          ~conditions:
            [
              c (Printf.sprintf "R.ibw >= %g" demand);
              c (Printf.sprintf "R.lat <= %g" deadline);
            ]
          ~place_cost:(e "1 + R.ibw / 10")
          "Consumer";
      ];
    pre_placed = [ ("Storage", storage) ];
    goals = [ Model.Placed ("Consumer", consumer) ];
  }

let leveling ?(cuts = [ 60.; 80.; 120. ]) app =
  Leveling.propagate app (Leveling.with_iface Leveling.empty "F" "ibw" cuts)
