module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Topology = Sekitei_network.Topology
module Expr = Sekitei_expr.Expr

let e = Expr.parse
let c = Expr.parse_cond

let topology ~secure =
  let m = List.length secure in
  Topology.(
    make
      ~nodes:(List.init (m + 1) (fun i -> node i (Printf.sprintf "n%d" i)))
      ~links:
        (List.mapi
           (fun i s ->
             link ~bw:100. ~resources:[ ("secure", float_of_int s) ]
               (if s = 1 then Lan else Wan)
               i i (i + 1))
           secure))

let app ?(supply = 80.) ?(demand = 40.) ~backend ~consumer () =
  let plaintext =
    Model.iface
      ~cross_conditions:[ c "link.secure >= 1" ]
      ~cross_cost:(e "1 + ibw / 10")
      ~properties:[ Model.property ~tag:Model.Degradable "ibw" ]
      "P"
  in
  let ciphertext =
    Model.iface
      ~cross_cost:(e "1 + ibw / 10")
      ~properties:[ Model.property ~tag:Model.Degradable "ibw" ]
      "PE"
  in
  {
    Model.interfaces = [ plaintext; ciphertext ];
    components =
      [
        Model.component ~provides:[ "P" ]
          ~effects:[ ("P", "ibw", Expr.Const supply) ]
          ~placeable:false "Backend";
        Model.component ~requires:[ "P" ]
          ~conditions:[ c (Printf.sprintf "P.ibw >= %g" demand) ]
          ~place_cost:(e "1 + P.ibw / 10")
          "Consumer";
        (* Encryption adds 25% framing overhead and costs CPU. *)
        Model.component ~requires:[ "P" ] ~provides:[ "PE" ]
          ~effects:[ ("PE", "ibw", e "P.ibw * 5 / 4") ]
          ~consumes:[ ("cpu", e "P.ibw / 8") ]
          ~place_cost:(e "2 + P.ibw / 10")
          "Encryptor";
        Model.component ~requires:[ "PE" ] ~provides:[ "P" ]
          ~effects:[ ("P", "ibw", e "PE.ibw * 4 / 5") ]
          ~consumes:[ ("cpu", e "PE.ibw / 8") ]
          ~place_cost:(e "2 + PE.ibw / 10")
          "Decryptor";
      ];
    pre_placed = [ ("Backend", backend) ];
    goals = [ Model.Placed ("Consumer", consumer) ];
  }

let leveling app =
  Leveling.propagate app
    (Leveling.with_iface Leveling.empty "P" "ibw" [ 40.; 80. ])
