(** A web-service composition domain with qualitative link constraints
    (the paper's introduction cites BPEL/OWL-S web services; section 2.1
    notes "other properties such as link security" as typical resources).

    A [Backend] service emits a sensitive response stream [P] (plaintext)
    that may only cross links with [secure >= 1].  An [Encryptor] turns
    [P] into [PE] (ciphertext, slightly larger) that may cross anything;
    a [Decryptor] restores [P].  The [Consumer] needs the plaintext.  On a
    path with an insecure middle link the planner must bracket it with the
    crypto pair; when the whole path is secure the direct plan wins on
    cost. *)

module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Topology = Sekitei_network.Topology

(** [topology ~secure] is a 4-node line whose [i]-th link carries
    [secure] 1 or 0 (bandwidth 100 everywhere). *)
val topology : secure:int list -> Topology.t

val app : ?supply:float -> ?demand:float -> backend:int -> consumer:int -> unit -> Model.app

(** Levels on [P] at the demand and supply (propagated to [PE]). *)
val leveling : Model.app -> Leveling.t
