lib/harness/scenarios.mli: Sekitei_network Sekitei_spec
