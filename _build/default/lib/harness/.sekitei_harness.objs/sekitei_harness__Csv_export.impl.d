lib/harness/csv_export.ml: Buffer Fun List Printf Sekitei_core Sekitei_domains String Table2
