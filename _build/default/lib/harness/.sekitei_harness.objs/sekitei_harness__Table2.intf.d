lib/harness/table2.mli: Scenarios Sekitei_core Sekitei_domains
