lib/harness/figures.mli:
