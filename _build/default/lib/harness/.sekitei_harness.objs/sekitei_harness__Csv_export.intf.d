lib/harness/csv_export.mli: Table2
