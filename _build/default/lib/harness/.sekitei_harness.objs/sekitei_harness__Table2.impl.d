lib/harness/table2.ml: List Option Printf Result Scenarios Sekitei_core Sekitei_domains Sekitei_util
