lib/harness/scenarios.ml: List Printf Sekitei_domains Sekitei_network Sekitei_spec Sekitei_util
