lib/harness/figures.ml: Array Buffer Float Format List Printf Scenarios Sekitei_core Sekitei_domains Sekitei_network Sekitei_spec Sekitei_util String
