(** Regeneration of the paper's figures (1, 3-5, 9, 10) and Table 1.

    Each function returns printable text; the benchmark executable prints
    them all so [dune exec bench/main.exe] reproduces every exhibit of the
    evaluation section. *)

(** Table 1: the five level scenarios as interval lists (M-stream levels
    derived from the cutpoints, link-bandwidth levels for E). *)
val table1 : unit -> string

(** Figures 3-4: the Tiny instance — greedy (scenario A) fails; leveled
    planning (scenario C) produces the 7-action plan of Figure 4, printed
    in the paper's wording. *)
val fig3_4 : unit -> string

(** Figure 5: the cost-tradeoff sweep on the chain domain — for each
    link-cost weight, which plan the planner picks (direct wide path vs
    compressed narrow path) and its cost bound. *)
val fig5 : ?weights:float list -> unit -> string

(** Figure 9: the Small network — scenario B's shortest (suboptimal) plan
    vs scenario C's optimal plan, with action listings, cost bounds and
    reserved LAN bandwidth. *)
val fig9 : unit -> string

(** Figure 10: the Large transit-stub network — summary statistics and the
    DOT rendering (server and client highlighted). *)
val fig10 : ?dot:bool -> unit -> string

(** Ablation (paper section 2.3): the original greedy planner plus its
    post-processing minimizer on (a) a resource-rich Tiny variant, where
    post-processing recovers efficiency, and (b) the paper's Scenario-1
    instance, where greedy finds nothing to post-process while the leveled
    planner succeeds. *)
val postprocess_ablation : unit -> string
