(** The paper's three evaluation networks (section 4.1).

    All share the resource distribution: LAN links 150 bandwidth units,
    WAN links 70, every node 30 CPU units; the server supplies up to 200
    units of the media stream and the client demands at least 90.

    - {e Tiny}: the two-node network of Figure 3 (one WAN link).
    - {e Small}: a six-node network whose server-client path crosses three
      LAN links and one WAN link (plus one off-path node), so the shortest
      plan ships [M] over the LANs (10 actions) while the optimal plan
      splits at the server (13 actions, Figure 9).
    - {e Large}: a 93-node transit-stub network in the image of the
      paper's GT-ITM-generated Figure 10, with the server and client in
      sibling stub domains one LAN hop from their gateways, so the
      shortest path is LAN-WAN-WAN-LAN. *)

module Topology = Sekitei_network.Topology
module Model = Sekitei_spec.Model

type t = {
  name : string;
  topo : Topology.t;
  server : Topology.node_id;
  client : Topology.node_id;
  app : Model.app;
}

val tiny : unit -> t
val small : unit -> t

(** [large ~seed ()] — deterministic for a given seed; the default seed is
    the one used throughout the benchmarks. *)
val large : ?seed:int64 -> unit -> t

val all : unit -> t list

(** Rebuild a scenario's app with different cost weights (Figure 5). *)
val with_weights : cross_weight:float -> place_weight:float -> t -> t
