(** CSV export of experiment results, for plotting Table 2 and the
    sweeps outside this repository.

    Values are RFC-4180-quoted where needed; the first line is a header.
    The row schema matches {!Table2.row} plus the realized metrics the
    paper's table omits. *)

(** Header + one line per row. *)
val table2_csv : Table2.row list -> string

(** [write_table2 rows path] writes the CSV to a file. *)
val write_table2 : Table2.row list -> string -> unit
