module Topology = Sekitei_network.Topology
module Generators = Sekitei_network.Generators
module Routing = Sekitei_network.Routing
module Model = Sekitei_spec.Model
module Media = Sekitei_domains.Media
module Prng = Sekitei_util.Prng

type t = {
  name : string;
  topo : Topology.t;
  server : Topology.node_id;
  client : Topology.node_id;
  app : Model.app;
}

let make name topo server client =
  { name; topo; server; client; app = Media.app ~server ~client () }

let tiny () = make "Tiny" (Generators.line_kinds [ Topology.Wan ]) 0 1

let small () =
  (* Path n4(server) -LAN- n3 -WAN- n2 -LAN- n1 -LAN- n0(client), plus the
     off-path node n5 hanging off n1; all ids 0..5, links in id order. *)
  let topo =
    Topology.(
      make
        ~nodes:(List.init 6 (fun i -> node i (Printf.sprintf "n%d" i)))
        ~links:
          [
            link Lan 0 0 1;
            link Lan 1 1 2;
            link Wan 2 2 3;
            link Lan 3 3 4;
            link Lan 4 1 5;
          ])
  in
  make "Small" topo 4 0

let default_large_seed = 0xC0FFEEL

(* Pick the server and client in two sibling stub domains of transit router
   0, each one LAN hop inside its stub, so that the shortest path is
   LAN, WAN, WAN, LAN — the structure behind Table 2's Large rows. *)
let large ?(seed = default_large_seed) () =
  let rng = Prng.create ~seed in
  let topo =
    Generators.transit_stub ~rng ~transit:3 ~stubs_per_transit:3 ~stub_size:10 ()
  in
  let gateways =
    List.filter_map
      (fun (peer, lid) ->
        match (Topology.get_link topo lid).Topology.kind with
        | Topology.Wan when peer >= 3 -> Some peer
        | _ -> None)
      (Topology.adjacent topo 0)
    |> List.sort compare
  in
  let stub_of node = (node - 3) / 10 in
  let lan_neighbour gw =
    let candidates =
      List.filter_map
        (fun (peer, lid) ->
          match (Topology.get_link topo lid).Topology.kind with
          | Topology.Lan when stub_of peer = stub_of gw -> Some peer
          | _ -> None)
        (Topology.adjacent topo gw)
    in
    match candidates with c :: _ -> Some c | [] -> None
  in
  let pick () =
    let rec pairs = function
      | g1 :: rest ->
          let found =
            List.find_map
              (fun g2 ->
                if stub_of g1 = stub_of g2 then None
                else
                  match (lan_neighbour g1, lan_neighbour g2) with
                  | Some s, Some c
                    when Routing.hop_distance topo s c = Some 4 ->
                      Some (s, c)
                  | _ -> None)
              rest
          in
          (match found with Some x -> Some x | None -> pairs rest)
      | [] -> None
    in
    pairs gateways
  in
  match pick () with
  | Some (server, client) -> make "Large" topo server client
  | None ->
      invalid_arg
        "Scenarios.large: seed does not produce the required path structure"

let all () = [ tiny (); small (); large () ]

let with_weights ~cross_weight ~place_weight t =
  {
    t with
    app =
      Media.app ~cross_weight ~place_weight ~server:t.server ~client:t.client ();
  }
