(** Regeneration of the paper's Table 2 (scalability evaluation).

    Runs the planner on {Tiny, Small, Large} x {A..E} and reports, per
    run: the plan's cost lower bound, number of actions in the plan,
    peak reserved LAN bandwidth, total leveled actions, PLRG / SLRG / RG
    sizes and planning times (total / search-only), exactly mirroring the
    paper's columns (plus the realized cost, which the paper does not
    print). *)

module Media = Sekitei_domains.Media
module Planner = Sekitei_core.Planner

type row = {
  network : string;
  level_scenario : Media.scenario;
  plan : Sekitei_core.Plan.t option;  (** [None]: no plan found *)
  stats : Planner.stats;
}

(** Run one cell. *)
val run_cell : ?config:Planner.config -> Scenarios.t -> Media.scenario -> row

(** Run the full table.  [networks] defaults to Tiny, Small and Large;
    [levels] to A..E. *)
val run :
  ?config:Planner.config ->
  ?networks:Scenarios.t list ->
  ?levels:Media.scenario list ->
  unit ->
  row list

(** Render in the paper's layout (ASCII). *)
val render : row list -> string

(** One-line summary per row, for logs and tests. *)
val row_summary : row -> string
