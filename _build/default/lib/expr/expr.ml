module I = Sekitei_util.Interval

type var = string

type t =
  | Const of float
  | Var of var
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Min of t * t
  | Max of t * t

type cmp = Ge | Gt | Le | Lt | Eq

type cond = True | Cmp of cmp * t * t | And of cond * cond | Or of cond * cond

let var v = Var v
let const c = Const c
let min_ a b = Min (a, b)
let max_ a b = Max (a, b)

exception Unbound_variable of var

(* ------------------------------------------------------------------ *)
(* Point evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let rec eval ~env e =
  match e with
  | Const c -> c
  | Var v -> env v
  | Neg a -> -.eval ~env a
  | Add (a, b) -> eval ~env a +. eval ~env b
  | Sub (a, b) -> eval ~env a -. eval ~env b
  | Mul (a, b) -> eval ~env a *. eval ~env b
  | Div (a, b) ->
      let d = eval ~env b in
      if d = 0. then raise Division_by_zero else eval ~env a /. d
  | Min (a, b) -> Float.min (eval ~env a) (eval ~env b)
  | Max (a, b) -> Float.max (eval ~env a) (eval ~env b)

let rec holds ~env c =
  match c with
  | True -> true
  | Cmp (op, a, b) -> (
      let x = eval ~env a and y = eval ~env b in
      match op with
      | Ge -> ( >= ) x y
      | Gt -> ( > ) x y
      | Le -> ( <= ) x y
      | Lt -> ( < ) x y
      | Eq ->
          (* Tolerant equality: specification ratios like T*3 == I*7 are
             meant up to floating rounding. *)
          Float.abs (x -. y) <= 1e-9 *. Stdlib.max 1. (Float.abs x))
  | And (a, b) -> holds ~env a && holds ~env b
  | Or (a, b) -> holds ~env a || holds ~env b

(* ------------------------------------------------------------------ *)
(* Interval evaluation                                                 *)
(* ------------------------------------------------------------------ *)

let neg_interval i =
  if not (Float.is_finite (I.hi i)) then
    invalid_arg "Expr: negation of an unbounded interval"
  else if I.is_point i then I.point (-.I.lo i)
  else I.of_points [ -.I.hi i; -.I.lo i ]

(* Corner product with the interval-arithmetic convention 0 * inf = 0. *)
let corner_mul x y =
  let p = x *. y in
  if Float.is_nan p then 0. else p

let mul_interval a b =
  let corners =
    [
      corner_mul (I.lo a) (I.lo b);
      corner_mul (I.lo a) (I.hi b);
      corner_mul (I.hi a) (I.lo b);
      corner_mul (I.hi a) (I.hi b);
    ]
  in
  I.of_points corners

let div_interval a b =
  if ( && ) (( <= ) (I.lo b) 0.) (( >= ) (I.hi b) 0.)
  then raise Division_by_zero
  else
    let corners =
      List.filter
        (fun x -> not (Float.is_nan x))
        [ I.lo a /. I.lo b; I.lo a /. I.hi b; I.hi a /. I.lo b; I.hi a /. I.hi b ]
    in
    let corners =
      (* inf/inf corners drop out; keep the enclosure sound by re-adding an
         infinite upper corner when the numerator is unbounded and the
         divisor positive. *)
      if
        Stdlib.( && )
          (not (Float.is_finite (I.hi a)))
          (( > ) (I.lo b) 0.)
      then Float.infinity :: corners
      else corners
    in
    I.of_points corners

let rec eval_interval ~env e =
  match e with
  | Const c -> I.point c
  | Var v -> env v
  | Neg a -> neg_interval (eval_interval ~env a)
  | Add (a, b) -> I.add (eval_interval ~env a) (eval_interval ~env b)
  | Sub (a, b) -> I.sub (eval_interval ~env a) (eval_interval ~env b)
  | Mul (a, b) -> mul_interval (eval_interval ~env a) (eval_interval ~env b)
  | Div (a, b) -> div_interval (eval_interval ~env a) (eval_interval ~env b)
  | Min (a, b) -> I.min_ (eval_interval ~env a) (eval_interval ~env b)
  | Max (a, b) -> I.max_ (eval_interval ~env a) (eval_interval ~env b)

let rec sat ~env c =
  match c with
  | True -> true
  | Cmp (op, a, b) -> (
      let ia = eval_interval ~env a and ib = eval_interval ~env b in
      match op with
      | Eq -> I.sat_eq ia ib
      | Ge | Gt | Le | Lt -> (
          let d = I.sub ia ib in
          match op with
          | Ge -> I.sat_ge d 0.
          | Gt -> I.sat_gt d 0.
          | Le -> I.sat_le d 0.
          | Lt -> I.sat_lt d 0.
          | Eq -> assert false))
  | And (a, b) -> ( && ) (sat ~env a) (sat ~env b)
  | Or (a, b) -> ( || ) (sat ~env a) (sat ~env b)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let vars e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          acc := v :: !acc
        end
    | Neg a -> go a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b)
      ->
        go a;
        go b
  in
  go e;
  List.rev !acc

let cond_vars c =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let add v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      acc := v :: !acc
    end
  in
  let rec go = function
    | True -> ()
    | Cmp (_, a, b) ->
        List.iter add (vars a);
        List.iter add (vars b)
    | And (a, b) | Or (a, b) ->
        go a;
        go b
  in
  go c;
  List.rev !acc

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Neg a -> (
      match simplify a with
      | Const c -> Const (-.c)
      | Neg b -> b
      | a' -> Neg a')
  | Add (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x +. y)
      | Const 0., e' | e', Const 0. -> e'
      | a', b' -> Add (a', b'))
  | Sub (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x -. y)
      | e', Const 0. -> e'
      | a', b' -> Sub (a', b'))
  | Mul (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x *. y)
      | Const 1., e' | e', Const 1. -> e'
      | Const 0., _ | _, Const 0. -> Const 0.
      | a', b' -> Mul (a', b'))
  | Div (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y when ( <> ) y 0. -> Const (x /. y)
      | e', Const 1. -> e'
      | a', b' -> Div (a', b'))
  | Min (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Float.min x y)
      | a', b' -> Min (a', b'))
  | Max (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Float.max x y)
      | a', b' -> Max (a', b'))


type monotonicity = Increasing | Decreasing | Constant | Unknown

(* Static sign assuming every variable is non-negative (bandwidths, CPU
   shares and latencies all are).  Needed to propagate monotonicity
   through products. *)
type sign = Non_neg | Non_pos | Any_sign

let rec sign_of = function
  | Const c -> if ( >= ) c 0. then Non_neg else Non_pos
  | Var _ -> Non_neg
  | Neg a -> (
      match sign_of a with
      | Non_neg -> Non_pos
      | Non_pos -> Non_neg
      | Any_sign -> Any_sign)
  | Add (a, b) | Min (a, b) | Max (a, b) -> (
      match (sign_of a, sign_of b) with
      | Non_neg, Non_neg -> Non_neg
      | Non_pos, Non_pos -> Non_pos
      | _ -> Any_sign)
  | Sub (a, b) -> (
      match (sign_of a, sign_of b) with
      | Non_neg, Non_pos -> Non_neg
      | Non_pos, Non_neg -> Non_pos
      | _ -> Any_sign)
  | Mul (a, b) | Div (a, b) -> (
      match (sign_of a, sign_of b) with
      | Non_neg, Non_neg | Non_pos, Non_pos -> Non_neg
      | Non_neg, Non_pos | Non_pos, Non_neg -> Non_pos
      | _ -> Any_sign)

let flip = function
  | Increasing -> Decreasing
  | Decreasing -> Increasing
  | m -> m

let join a b =
  match (a, b) with
  | Constant, m | m, Constant -> m
  | Increasing, Increasing -> Increasing
  | Decreasing, Decreasing -> Decreasing
  | _ -> Unknown

let rec monotonicity e v =
  let mentions a = List.mem v (vars a) in
  match e with
  | Const _ -> Constant
  | Var v' -> if String.equal v v' then Increasing else Constant
  | Neg a -> flip (monotonicity a v)
  | Add (a, b) -> join (monotonicity a v) (monotonicity b v)
  | Sub (a, b) -> join (monotonicity a v) (flip (monotonicity b v))
  | Min (a, b) | Max (a, b) -> join (monotonicity a v) (monotonicity b v)
  | Mul (a, b) -> (
      match (mentions a, mentions b) with
      | false, false -> Constant
      | true, true -> Unknown
      | true, false -> scale_mono (monotonicity a v) (sign_of_simplified b)
      | false, true -> scale_mono (monotonicity b v) (sign_of_simplified a))
  | Div (a, b) ->
      if mentions b then Unknown
      else scale_mono (monotonicity a v) (sign_of_simplified b)

and scale_mono m s =
  match s with Non_neg -> m | Non_pos -> flip m | Any_sign -> Unknown

(* Constant-fold before sign analysis so that e.g. (0 - 2) is seen as a
   negative constant. *)
and sign_of_simplified e = sign_of (simplify e)

let easier_when_lower c v =
  (* A condition is easier (or unchanged) when v decreases iff its
     satisfaction is downward-monotone in v. *)
  let rec go = function
    | True -> Some true
    | Cmp (op, a, b) -> (
        let d = monotonicity (Sub (a, b)) v in
        match (op, d) with
        | _, Constant -> Some true
        | (Ge | Gt), Decreasing -> Some true
        | (Ge | Gt), Increasing -> Some false
        | (Le | Lt), Increasing -> Some true
        | (Le | Lt), Decreasing -> Some false
        | Eq, _ -> None
        | _, Unknown -> None)
    | And (a, b) | Or (a, b) -> (
        match (go a, go b) with
        | Some true, Some true -> Some true
        | Some false, Some _ | Some _, Some false -> Some false
        | _ -> None)
  in
  go c

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let prec = function
  | Const _ | Var _ | Min _ | Max _ -> 3
  | Neg _ -> 2
  | Mul _ | Div _ -> 1
  | Add _ | Sub _ -> 0

let float_lit f =
  if Float.is_integer f && ( < ) (Float.abs f) 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips exactly, so printing and
       reparsing preserves evaluation bit-for-bit. *)
    let s = Printf.sprintf "%.12g" f in
    if ( = ) (float_of_string s) f then s else Printf.sprintf "%.17g" f

let rec to_string e =
  let at p child =
    let s = to_string child in
    if ( < ) (prec child) p then "(" ^ s ^ ")" else s
  in
  match e with
  | Const c -> float_lit c
  | Var v -> v
  | Neg a -> "-" ^ at 2 a
  | Add (a, b) -> at 0 a ^ " + " ^ at 1 b
  | Sub (a, b) -> at 0 a ^ " - " ^ at 1 b
  | Mul (a, b) -> at 1 a ^ " * " ^ at 2 b
  | Div (a, b) -> at 1 a ^ " / " ^ at 2 b
  | Min (a, b) -> "min(" ^ to_string a ^ ", " ^ to_string b ^ ")"
  | Max (a, b) -> "max(" ^ to_string a ^ ", " ^ to_string b ^ ")"

let cmp_to_string = function
  | Ge -> ">="
  | Gt -> ">"
  | Le -> "<="
  | Lt -> "<"
  | Eq -> "=="

let rec cond_to_string = function
  | True -> "true"
  | Cmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (to_string a) (cmp_to_string op) (to_string b)
  | And (a, b) -> paren_cond a ^ " && " ^ paren_cond b
  | Or (a, b) -> paren_cond a ^ " || " ^ paren_cond b

and paren_cond c =
  match c with
  | And _ | Or _ -> "(" ^ cond_to_string c ^ ")"
  | _ -> cond_to_string c

let pp fmt e = Format.pp_print_string fmt (to_string e)
let pp_cond fmt c = Format.pp_print_string fmt (cond_to_string c)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type token =
  | TNum of float
  | TIdent of string
  | TLparen
  | TRparen
  | TComma
  | TPlus
  | TMinus
  | TStar
  | TSlash
  | TGe
  | TGt
  | TLe
  | TLt
  | TEq
  | TAnd
  | TOr

let is_ident_char c =
  Stdlib.( || )
    (Stdlib.( || )
       (( && ) (( >= ) c 'a') (( <= ) c 'z'))
       (( && ) (( >= ) c 'A') (( <= ) c 'Z')))
    (Stdlib.( || )
       (( && ) (( >= ) c '0') (( <= ) c '9'))
       (List.mem c [ '_'; '.'; '\'' ]))

let is_digit c = ( && ) (( >= ) c '0') (( <= ) c '9')

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !i)) in
  while ( < ) !i n do
    let c = s.[!i] in
    if ( || ) (Char.equal c ' ') (List.mem c [ '\t'; '\n'; '\r' ]) then
      incr i
    else if is_digit c then begin
      let start = !i in
      while
        Stdlib.( && )
          (( < ) !i n)
          (( || ) (is_digit s.[!i]) (Char.equal s.[!i] '.'))
      do
        incr i
      done;
      let lit = String.sub s start (( - ) !i start) in
      match float_of_string_opt lit with
      | Some f -> push (TNum f)
      | None -> fail ("bad number " ^ lit)
    end
    else if
      Stdlib.( || )
        (( && ) (( >= ) c 'a') (( <= ) c 'z'))
        (Stdlib.( || )
           (( && ) (( >= ) c 'A') (( <= ) c 'Z'))
           (Char.equal c '_'))
    then begin
      let start = !i in
      while ( && ) (( < ) !i n) (is_ident_char s.[!i]) do
        incr i
      done;
      push (TIdent (String.sub s start (( - ) !i start)))
    end
    else begin
      let two =
        if ( < ) (( + ) !i 1) n then String.sub s !i 2 else ""
      in
      match two with
      | ">=" ->
          push TGe;
          i := ( + ) !i 2
      | "<=" ->
          push TLe;
          i := ( + ) !i 2
      | "==" ->
          push TEq;
          i := ( + ) !i 2
      | "&&" ->
          push TAnd;
          i := ( + ) !i 2
      | "||" ->
          push TOr;
          i := ( + ) !i 2
      | _ -> (
          (match c with
          | '(' -> push TLparen
          | ')' -> push TRparen
          | ',' -> push TComma
          | '+' -> push TPlus
          | '-' -> push TMinus
          | '*' -> push TStar
          | '/' -> push TSlash
          | '>' -> push TGt
          | '<' -> push TLt
          | '=' -> push TEq
          | _ -> fail (Printf.sprintf "unexpected character %c" c));
          incr i)
    end
  done;
  Array.of_list (List.rev !toks)

type parser_state = { toks : token array; mutable pos : int }

let peek st =
  if ( < ) st.pos (Array.length st.toks) then Some st.toks.(st.pos)
  else None

let advance st = st.pos <- ( + ) st.pos 1

let expect st tok what =
  match peek st with
  | Some t when ( = ) t tok -> advance st
  | _ -> raise (Parse_error ("expected " ^ what))

let rec parse_expr st =
  let rec loop acc =
    match peek st with
    | Some TPlus ->
        advance st;
        loop (Add (acc, parse_term st))
    | Some TMinus ->
        advance st;
        loop (Sub (acc, parse_term st))
    | _ -> acc
  in
  loop (parse_term st)

and parse_term st =
  let rec loop acc =
    match peek st with
    | Some TStar ->
        advance st;
        loop (Mul (acc, parse_factor st))
    | Some TSlash ->
        advance st;
        loop (Div (acc, parse_factor st))
    | _ -> acc
  in
  loop (parse_factor st)

and parse_factor st =
  match peek st with
  | Some TMinus ->
      advance st;
      Neg (parse_factor st)
  | Some (TNum f) ->
      advance st;
      Const f
  | Some (TIdent ("min" | "max" as fn)) when peek_is_lparen st 1 ->
      advance st;
      expect st TLparen "(";
      let a = parse_expr st in
      expect st TComma ",";
      let b = parse_expr st in
      expect st TRparen ")";
      if String.equal fn "min" then Min (a, b) else Max (a, b)
  | Some (TIdent v) ->
      advance st;
      Var v
  | Some TLparen ->
      advance st;
      let e = parse_expr st in
      expect st TRparen ")";
      e
  | _ -> raise (Parse_error "expected expression")

and peek_is_lparen st offset =
  let i = ( + ) st.pos offset in
  Stdlib.( && )
    (( < ) i (Array.length st.toks))
    (( = ) st.toks.(i) TLparen)

let parse_cmp st =
  let a = parse_expr st in
  match peek st with
  | Some TGe ->
      advance st;
      Cmp (Ge, a, parse_expr st)
  | Some TGt ->
      advance st;
      Cmp (Gt, a, parse_expr st)
  | Some TLe ->
      advance st;
      Cmp (Le, a, parse_expr st)
  | Some TLt ->
      advance st;
      Cmp (Lt, a, parse_expr st)
  | Some TEq ->
      advance st;
      Cmp (Eq, a, parse_expr st)
  | _ -> raise (Parse_error "expected comparison operator")

let rec parse_cond_or st =
  let rec loop acc =
    match peek st with
    | Some TOr ->
        advance st;
        loop (Or (acc, parse_cond_and st))
    | _ -> acc
  in
  loop (parse_cond_and st)

and parse_cond_and st =
  let rec loop acc =
    match peek st with
    | Some TAnd ->
        advance st;
        loop (And (acc, parse_cond_atom st))
    | _ -> acc
  in
  loop (parse_cond_atom st)

and parse_cond_atom st =
  match peek st with
  | Some (TIdent "true") ->
      advance st;
      True
  | Some TLparen -> (
      (* Could be a parenthesized condition or a parenthesized arithmetic
         sub-expression of a comparison; try the condition reading first
         and backtrack. *)
      let saved = st.pos in
      advance st;
      match
        try
          let c = parse_cond_or st in
          expect st TRparen ")";
          Some c
        with Parse_error _ -> None
      with
      | Some c -> c
      | None ->
          st.pos <- saved;
          parse_cmp st)
  | _ -> parse_cmp st

let run_parser f s =
  let st = { toks = tokenize s; pos = 0 } in
  let result = f st in
  if ( < ) st.pos (Array.length st.toks) then
    raise (Parse_error (Printf.sprintf "trailing input in %S" s));
  result

let parse s = run_parser parse_expr s
let parse_cond s = run_parser parse_cond_or s

(* Infix constructors, deliberately last: they shadow the standard
   operators for the rest of the compilation unit only. *)
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( = ) a b = Cmp (Eq, a, b)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
