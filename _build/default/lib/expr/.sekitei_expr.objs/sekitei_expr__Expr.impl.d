lib/expr/expr.ml: Array Char Float Format Hashtbl List Printf Sekitei_util Stdlib String
