lib/expr/expr.mli: Format Sekitei_util
