(** The specification formula language.

    Component and interface specifications (paper Figures 2 and 6) describe
    conditions, effects and costs with real-valued, generally
    {e non-reversible} but {e monotone} functions of resource and property
    variables ([Node.cpu >= (T.ibw + I.ibw)/5], [M.ibw' := min(M.ibw,
    Link.lbw)]).  This module provides the AST, exact point evaluation,
    sound interval evaluation (used by optimistic resource maps), and a
    syntactic monotonicity analysis (used to derive degradable/upgradable
    tags and to justify endpoint evaluation). *)

type var = string
(** Variable names are dot-qualified: ["M.ibw"], ["node.cpu"],
    ["link.lbw"]. *)

type t =
  | Const of float
  | Var of var
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Min of t * t
  | Max of t * t

type cmp = Ge | Gt | Le | Lt | Eq

type cond = True | Cmp of cmp * t * t | And of cond * cond | Or of cond * cond

(** {1 Construction helpers} *)

val var : var -> t
val const : float -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val ( >= ) : t -> t -> cond
val ( > ) : t -> t -> cond
val ( <= ) : t -> t -> cond
val ( < ) : t -> t -> cond
val ( = ) : t -> t -> cond
val ( && ) : cond -> cond -> cond
val ( || ) : cond -> cond -> cond

(** {1 Evaluation} *)

exception Unbound_variable of var

(** Exact evaluation at a point; the environment maps variables to values.
    @raise Unbound_variable when a variable is missing.
    @raise Division_by_zero on division by exactly 0. *)
val eval : env:(var -> float) -> t -> float

(** Exact truth of a condition at a point. *)
val holds : env:(var -> float) -> cond -> bool

(** Sound interval enclosure of the expression's range when each variable
    ranges over its interval.  Exact for expressions where every variable
    occurs once (our specification formulae); an over-approximation in
    general — which is the safe direction for {e optimistic} resource maps.
    @raise Unbound_variable when a variable is missing.
    @raise Division_by_zero when a divisor interval contains 0. *)
val eval_interval : env:(var -> Sekitei_util.Interval.t) -> t -> Sekitei_util.Interval.t

(** Optimistic satisfiability: [true] when some assignment drawing each
    variable independently from its interval satisfies the condition.
    Sound in the optimistic direction: never [false] for a satisfiable
    condition; may be [true] for conditions that couple variables. *)
val sat : env:(var -> Sekitei_util.Interval.t) -> cond -> bool

(** {1 Analysis} *)

(** Free variables, each listed once, in first-occurrence order. *)
val vars : t -> var list

val cond_vars : cond -> var list

type monotonicity = Increasing | Decreasing | Constant | Unknown

(** Syntactic monotonicity of the expression in the given variable.
    [Increasing] means weakly increasing.  The analysis is conservative:
    [Unknown] when the variable occurs on both signs or inside a division
    denominator. *)
val monotonicity : t -> var -> monotonicity

(** Does the condition get easier to satisfy as the variable decreases?
    (conservatively computed; [None] = cannot tell).  Used by the automatic
    degradability analysis (paper section 3.1). *)
val easier_when_lower : cond -> var -> bool option

(** Constant folding and algebraic identities ([x+0], [1*x], ...). *)
val simplify : t -> t

(** {1 Syntax} *)

(** Render with minimal parentheses; [parse] of the output round-trips. *)
val to_string : t -> string

val cond_to_string : cond -> string
val pp : Format.formatter -> t -> unit
val pp_cond : Format.formatter -> cond -> unit

exception Parse_error of string

(** Parse an arithmetic expression: numbers, dotted identifiers, [+ - * /],
    [min(a,b)], [max(a,b)], parentheses.  @raise Parse_error *)
val parse : string -> t

(** Parse a condition: comparisons ([>= > <= < ==]) over expressions,
    combined with [&&] and [||] (([&&] binds tighter).  @raise Parse_error *)
val parse_cond : string -> cond
