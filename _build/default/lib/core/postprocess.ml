type result = { scale : float; metrics : Replay.metrics }

let feasible pb steps scale =
  match Replay.run ~source_scale:scale pb ~mode:Replay.From_init steps with
  | Ok m -> Some m
  | Error _ -> None

let minimize ?(tolerance = 1e-3) pb (plan : Plan.t) =
  match feasible pb plan.Plan.steps 1. with
  | None -> None
  | Some full ->
      (* Invariant: [hi] feasible (metrics [best]), [lo] infeasible. *)
      let rec bisect lo hi best =
        if hi -. lo <= tolerance then { scale = hi; metrics = best }
        else
          let mid = (lo +. hi) /. 2. in
          match feasible pb plan.Plan.steps mid with
          | Some m -> bisect lo mid m
          | None -> bisect mid hi best
      in
      Some
        (match feasible pb plan.Plan.steps tolerance with
        | Some m -> { scale = tolerance; metrics = m }
        | None -> bisect tolerance 1. full)
