module Heap = Sekitei_util.Heap

type stats = {
  created : int;
  expanded : int;
  open_left : int;
  replay_pruned : int;
  final_replay_rejected : int;
}

type result =
  | Solution of Action.t list * Replay.metrics * float
  | Exhausted
  | Budget_exceeded

type node = { tail : Action.t list; set : int array; g : float }

let canonical (pb : Problem.t) props =
  Array.of_list
    (List.sort_uniq compare (List.filter (fun p -> not pb.init.(p)) props))

let regress (pb : Problem.t) set (a : Action.t) =
  let in_closure p = Array.exists (fun q -> q = p) a.Action.add_closure in
  let remaining = Array.to_list set |> List.filter (fun p -> not (in_closure p)) in
  canonical pb (Array.to_list a.Action.pre @ remaining)

let candidate_actions (pb : Problem.t) plrg set =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  Array.iter
    (fun p ->
      List.iter
        (fun aid ->
          if (not (Hashtbl.mem seen aid)) && Plrg.action_relevant plrg aid then begin
            Hashtbl.add seen aid ();
            acc := aid :: !acc
          end)
        pb.supports.(p))
    set;
  List.sort compare !acc

let search ?(max_expansions = 500_000) (pb : Problem.t) plrg slrg =
  let created = ref 0
  and expanded = ref 0
  and replay_pruned = ref 0
  and final_rejected = ref 0 in
  let heap = Heap.create () in
  let push node =
    let h = Slrg.query slrg (Array.to_list node.set) in
    if Float.is_finite h then begin
      incr created;
      Heap.add heap ~prio:(node.g +. h) ~prio2:(-.node.g) node
    end
  in
  push { tail = []; set = canonical pb (Array.to_list pb.goal_props); g = 0. };
  let finish result =
    ( result,
      {
        created = !created;
        expanded = !expanded;
        open_left = Heap.length heap;
        replay_pruned = !replay_pruned;
        final_replay_rejected = !final_rejected;
      } )
  in
  let rec loop () =
    match Heap.pop heap with
    | None -> finish Exhausted
    | Some (node, _f) ->
        if !expanded >= max_expansions then finish Budget_exceeded
        else begin
          incr expanded;
          if Array.length node.set = 0 then begin
            (* Candidate solution: validate against the true initial map. *)
            match Replay.run pb ~mode:Replay.From_init node.tail with
            | Ok metrics -> finish (Solution (node.tail, metrics, node.g))
            | Error _ ->
                incr final_rejected;
                loop ()
          end
          else begin
            List.iter
              (fun aid ->
                let a = pb.actions.(aid) in
                let repeated =
                  List.exists (fun b -> b.Action.act_id = aid) node.tail
                in
                if not repeated then begin
                  let tail' = a :: node.tail in
                  match Replay.run pb ~mode:Replay.Optimistic tail' with
                  | Error _ -> incr replay_pruned
                  | Ok _ ->
                      push
                        {
                          tail = tail';
                          set = regress pb node.set a;
                          g = node.g +. a.Action.cost_lb;
                        }
                end)
              (candidate_actions pb plrg node.set);
            loop ()
          end
        end
  in
  loop ()
