module Topology = Sekitei_network.Topology
module Model = Sekitei_spec.Model

let render (pb : Problem.t) plan =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph deployment {\n  rankdir=LR;\n  node [shape=box fontsize=10];\n";
  let placements = Plan.placements pb plan in
  let crossings = Plan.crossings pb plan in
  (* Only nodes that participate appear; pre-placed anchors included. *)
  let participating =
    List.sort_uniq compare
      (List.map snd placements
      @ List.map snd pb.Problem.app.Model.pre_placed
      @ List.concat_map (fun (_, a, b) -> [ a; b ]) crossings)
  in
  List.iter
    (fun node ->
      let here =
        List.filter_map
          (fun (c, n) -> if n = node then Some c else None)
          (pb.Problem.app.Model.pre_placed @ placements)
      in
      pf "  n%d [label=\"%s\\n%s\"];\n" node
        (Topology.get_node pb.Problem.topo node).Topology.node_name
        (String.concat "\\n" here))
    participating;
  List.iter
    (fun (iface, src, dst) -> pf "  n%d -> n%d [label=\"%s\"];\n" src dst iface)
    crossings;
  pf "}\n";
  Buffer.contents buf

let write_file pb plan file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render pb plan))
