module Heap = Sekitei_util.Heap

module Key = struct
  type t = int array

  let equal = Stdlib.( = )
  let hash = Hashtbl.hash
end

module H = Hashtbl.Make (Key)

type t = {
  problem : Problem.t;
  plrg : Plrg.t;
  query_budget : int;
  solved : float H.t;  (** exact set costs *)
  bounds : float H.t;
      (** admissible lower bounds from budget-exhausted queries; cached so
          repeated RG queries for the same pending set cost nothing *)
  mutable generated : int;
}

let create ?(query_budget = 500) problem plrg =
  {
    problem;
    plrg;
    query_budget;
    solved = H.create 256;
    bounds = H.create 256;
    generated = 0;
  }

let h_max t set =
  Array.fold_left (fun acc p -> Float.max acc (Plrg.cost t.plrg p)) 0. set

(* Canonical set: sorted, deduplicated, with initially-true propositions
   dropped. *)
let canonical (pb : Problem.t) props =
  let filtered = List.filter (fun p -> not pb.init.(p)) props in
  let arr = Array.of_list (List.sort_uniq compare filtered) in
  arr

let regress (pb : Problem.t) set (a : Action.t) =
  (* (set \ add_closure(a)) union pre(a), canonical. *)
  let in_closure p = Array.exists (fun q -> q = p) a.Action.add_closure in
  let remaining = Array.to_list set |> List.filter (fun p -> not (in_closure p)) in
  canonical pb (Array.to_list a.Action.pre @ remaining)

let candidate_actions t set =
  let pb = t.problem in
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  Array.iter
    (fun p ->
      List.iter
        (fun aid ->
          if (not (Hashtbl.mem seen aid)) && Plrg.action_relevant t.plrg aid then begin
            Hashtbl.add seen aid ();
            acc := aid :: !acc
          end)
        pb.supports.(p))
    set;
  List.sort compare !acc

let query t props =
  let pb = t.problem in
  let root = canonical pb props in
  if Array.length root = 0 then 0.
  else
    match H.find_opt t.solved root with
    | Some c -> c
    | None when H.mem t.bounds root -> H.find t.bounds root
    | None ->
        let h_root = h_max t root in
        if not (Float.is_finite h_root) then begin
          H.replace t.solved root Float.infinity;
          Float.infinity
        end
        else begin
          let g_best = H.create 64 in
          let heap = Heap.create () in
          H.replace g_best root 0.;
          Heap.add heap ~prio:h_root (root, 0.);
          t.generated <- t.generated + 1;
          let best_complete = ref Float.infinity in
          let expansions = ref 0 in
          let result = ref None in
          let exact = ref true in
          while !result = None do
            match Heap.peek heap with
            | None ->
                result := Some !best_complete
                (* infinity when nothing completed *)
            | Some ((set, g), f) ->
                if !best_complete <= f then result := Some !best_complete
                else if !expansions >= t.query_budget then begin
                  (* Budget exhausted: the open minimum is still an
                     admissible bound, but not exact. *)
                  exact := false;
                  result := Some (Float.min !best_complete f)
                end
                else begin
                  ignore (Heap.pop heap);
                  let stale =
                    match H.find_opt g_best set with
                    | Some g' -> g' < g -. 1e-12
                    | None -> false
                  in
                  if not stale then begin
                    incr expansions;
                    if Array.length set = 0 then begin
                      best_complete := Float.min !best_complete g;
                      result := Some !best_complete
                    end
                    else
                      List.iter
                        (fun aid ->
                          let a = pb.actions.(aid) in
                          let set' = regress pb set a in
                          let g' = g +. a.Action.cost_lb in
                          match H.find_opt t.solved set' with
                          | Some rest ->
                              best_complete := Float.min !best_complete (g' +. rest)
                          | None -> (
                              let h = h_max t set' in
                              if Float.is_finite h then
                                match H.find_opt g_best set' with
                                | Some g_old when g_old <= g' +. 1e-12 -> ()
                                | _ ->
                                    H.replace g_best set' g';
                                    t.generated <- t.generated + 1;
                                    Heap.add heap ~prio:(g' +. h) (set', g')))
                        (candidate_actions t set)
                  end
                end
          done;
          let cost = Option.get !result in
          if !exact then H.replace t.solved root cost
          else H.replace t.bounds root cost;
          cost
        end

let nodes_generated t = t.generated
