(** Redeployment: repairing an existing deployment after the environment
    changes (the paper's stated future work, section 6: "we also intend to
    use our planner for repairing and adapting existing deployments ...
    separate operators are necessary, because the cost of migration
    differs from that of the initial deployment").

    Rather than separate operator schemas, adaptation is expressed through
    per-placement cost adjustments: re-placing a component where it
    already runs earns [keep_discount] (restarting in place is nearly
    free), while placing a component type that previously ran elsewhere
    pays [migrate_surcharge] (state transfer).  Fresh components pay the
    normal cost.  The A* search then weighs staying put against moving
    exactly as the paper's cost model intends. *)

type policy = {
  keep_discount : float;
      (** subtracted from the placement cost at the previous node *)
  migrate_surcharge : float;
      (** added when the component type moves to a different node *)
}

(** Keep discount 5, migration surcharge 3 — placements are sticky but
    migration is not prohibitive. *)
val default_policy : policy

type diff = {
  kept : (string * int) list;
  moved : (string * int * int) list;  (** component, old node, new node *)
  added : (string * int) list;
  removed : (string * int) list;
}

(** [replan ~previous topo app leveling] plans on the (possibly changed)
    topology with adaptation costs relative to the previous placements. *)
val replan :
  ?config:Planner.config ->
  ?policy:policy ->
  previous:(string * int) list ->
  Sekitei_network.Topology.t ->
  Sekitei_spec.Model.app ->
  Sekitei_spec.Leveling.t ->
  Planner.outcome

(** Placement diff between a previous deployment and a new plan. *)
val diff : previous:(string * int) list -> Problem.t -> Plan.t -> diff

val pp_diff : Format.formatter -> diff -> unit
