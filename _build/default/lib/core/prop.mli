(** Planning propositions with dense integer interning.

    The compiled planning problem (paper section 2.2) manipulates two kinds
    of propositions: [Placed(component, node)] and [Avail(iface, node,
    level)] — the interface's primary property is available at the node
    within the given level interval.  Both are interned into dense ids so
    the graph phases can use arrays. *)

type t =
  | Placed of int * int  (** (component index, node id) *)
  | Avail of int * int * int  (** (iface index, node id, level index) *)

type interner

(** [create ~n_comps ~n_nodes ~levels_per_iface] sizes the dense id space:
    ids [0 .. count-1] cover every possible proposition. *)
val create : n_comps:int -> n_nodes:int -> levels_per_iface:int array -> interner

val count : interner -> int
val id : interner -> t -> int
val of_id : interner -> int -> t

val placed_id : interner -> comp:int -> node:int -> int
val avail_id : interner -> iface:int -> node:int -> level:int -> int

(** Number of levels of an interface (as sized at creation). *)
val levels_of_iface : interner -> int -> int
