(** Deployment audit: a human-readable account of what a plan does to the
    network — per-link utilization, per-node CPU budget, per-stream
    delivery — produced by replaying the plan from the initial state.

    This is the report an operator would review before committing a
    deployment; Table 2's "reserved LAN bw" column is one cell of it. *)

type link_row = {
  link : Sekitei_network.Topology.link_id;
  kind : Sekitei_network.Topology.link_kind;
  capacity : float;
  used : float;
}

type node_row = {
  node : Sekitei_network.Topology.node_id;
  resource : string;
  node_capacity : float;
  node_used : float;
}

type stream_row = {
  iface : string;
  at_node : Sekitei_network.Topology.node_id;
  operating : float;  (** delivered operating point *)
}

type t = {
  plan_length : int;
  cost_bound : float;
  realized_cost : float;
  links : link_row list;  (** only links with non-zero use *)
  nodes : node_row list;  (** only nodes with non-zero use *)
  streams : stream_row list;
}

(** [of_plan problem plan] replays and tabulates.  Returns [Error reason]
    when the plan does not replay from the initial state. *)
val of_plan : Problem.t -> Plan.t -> (t, string) result

(** Render as aligned ASCII tables. *)
val to_string : Problem.t -> t -> string
