module Topology = Sekitei_network.Topology
module Table = Sekitei_util.Ascii_table
module Model = Sekitei_spec.Model

type link_row = {
  link : Topology.link_id;
  kind : Topology.link_kind;
  capacity : float;
  used : float;
}

type node_row = {
  node : Topology.node_id;
  resource : string;
  node_capacity : float;
  node_used : float;
}

type stream_row = { iface : string; at_node : Topology.node_id; operating : float }

type t = {
  plan_length : int;
  cost_bound : float;
  realized_cost : float;
  links : link_row list;
  nodes : node_row list;
  streams : stream_row list;
}

let of_plan (pb : Problem.t) (plan : Plan.t) =
  match Replay.run pb ~mode:Replay.From_init plan.Plan.steps with
  | Error f -> Error (Format.asprintf "%a" Replay.pp_failure f)
  | Ok m ->
      let links =
        List.map
          (fun (lid, used) ->
            let l = Topology.get_link pb.Problem.topo lid in
            {
              link = lid;
              kind = l.Topology.kind;
              capacity = Problem.link_cap pb lid "lbw";
              used;
            })
          m.Replay.link_used
      in
      let nodes =
        List.filter_map
          (fun (node, used) ->
            if used > 1e-9 then
              Some
                {
                  node;
                  resource = "cpu";
                  node_capacity = Problem.node_cap pb node "cpu";
                  node_used = used;
                }
            else None)
          m.Replay.node_cpu_used
      in
      let streams =
        List.map
          (fun (i, n, v) ->
            {
              iface = pb.Problem.ifaces.(i).Model.iface_name;
              at_node = n;
              operating = v;
            })
          m.Replay.delivered
      in
      Ok
        {
          plan_length = Plan.length plan;
          cost_bound = plan.Plan.cost_lb;
          realized_cost = m.Replay.realized_cost;
          links;
          nodes;
          streams;
        }

let to_string (pb : Problem.t) t =
  let buf = Buffer.create 1024 in
  let node_name n = (Topology.get_node pb.Problem.topo n).Topology.node_name in
  Buffer.add_string buf
    (Printf.sprintf "plan: %d actions, cost bound %s, realized cost %s\n"
       t.plan_length
       (Table.float_cell t.cost_bound)
       (Table.float_cell t.realized_cost));
  if t.links <> [] then begin
    Buffer.add_string buf "\nlink utilization:\n";
    Buffer.add_string buf
      (Table.render_rows
         ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
         [ "link"; "kind"; "capacity"; "used"; "%" ]
         (List.map
            (fun r ->
              let a, b = (Topology.get_link pb.Problem.topo r.link).Topology.ends in
              [
                Printf.sprintf "%s--%s" (node_name a) (node_name b);
                (match r.kind with Topology.Lan -> "LAN" | Topology.Wan -> "WAN");
                Table.float_cell r.capacity;
                Table.float_cell r.used;
                Printf.sprintf "%.0f%%" (100. *. r.used /. Float.max r.capacity 1e-9);
              ])
            t.links))
  end;
  if t.nodes <> [] then begin
    Buffer.add_string buf "\nnode utilization:\n";
    Buffer.add_string buf
      (Table.render_rows
         ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
         [ "node"; "resource"; "capacity"; "used" ]
         (List.map
            (fun r ->
              [
                node_name r.node;
                r.resource;
                Table.float_cell r.node_capacity;
                Table.float_cell r.node_used;
              ])
            t.nodes))
  end;
  if t.streams <> [] then begin
    Buffer.add_string buf "\nstreams:\n";
    Buffer.add_string buf
      (Table.render_rows
         ~aligns:[ Table.Left; Table.Left; Table.Right ]
         [ "stream"; "at"; "operating point" ]
         (List.map
            (fun r -> [ r.iface; node_name r.at_node; Table.float_cell r.operating ])
            t.streams))
  end;
  Buffer.contents buf
