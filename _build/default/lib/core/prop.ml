type t = Placed of int * int | Avail of int * int * int

type interner = {
  n_comps : int;
  n_nodes : int;
  levels : int array;  (** per iface *)
  iface_base : int array;  (** id base per iface *)
  total : int;
}

let create ~n_comps ~n_nodes ~levels_per_iface =
  let placed_count = n_comps * n_nodes in
  let iface_base = Array.make (Array.length levels_per_iface) 0 in
  let next = ref placed_count in
  Array.iteri
    (fun i l ->
      iface_base.(i) <- !next;
      next := !next + (n_nodes * l))
    levels_per_iface;
  { n_comps; n_nodes; levels = levels_per_iface; iface_base; total = !next }

let count t = t.total

let placed_id t ~comp ~node =
  assert (comp >= 0 && comp < t.n_comps && node >= 0 && node < t.n_nodes);
  (comp * t.n_nodes) + node

let avail_id t ~iface ~node ~level =
  assert (iface >= 0 && iface < Array.length t.levels);
  assert (node >= 0 && node < t.n_nodes);
  assert (level >= 0 && level < t.levels.(iface));
  t.iface_base.(iface) + (node * t.levels.(iface)) + level

let id t = function
  | Placed (c, n) -> placed_id t ~comp:c ~node:n
  | Avail (i, n, l) -> avail_id t ~iface:i ~node:n ~level:l

let of_id t id =
  if id < t.n_comps * t.n_nodes then Placed (id / t.n_nodes, id mod t.n_nodes)
  else begin
    (* Find the interface whose range contains the id. *)
    let iface = ref (Array.length t.iface_base - 1) in
    while t.iface_base.(!iface) > id do
      decr iface
    done;
    let offset = id - t.iface_base.(!iface) in
    Avail (!iface, offset / t.levels.(!iface), offset mod t.levels.(!iface))
  end

let levels_of_iface t i = t.levels.(i)
