(** The original Sekitei's post-processing resource minimizer (paper
    section 2.3).

    Before resource levels, Sekitei tried to reduce a greedy plan's
    resource consumption {e after} finding it, by throttling the supply to
    the least amount that still satisfies the goals.  The paper's Scenario
    1 shows why this is insufficient: when the greedy planner finds no plan
    at all, there is nothing to post-process.  We reproduce the mechanism
    so the ablation benchmark can demonstrate exactly that.

    The minimizer bisects a uniform scale factor over all source
    capacities, keeping the plan's action sequence fixed, and returns the
    smallest scale whose [From_init] replay still succeeds. *)

type result = {
  scale : float;  (** smallest feasible supply fraction *)
  metrics : Replay.metrics;  (** metrics at that scale *)
}

(** [minimize problem plan] bisects to [tolerance] (default 1e-3).
    Returns [None] when even the unscaled plan fails to replay. *)
val minimize : ?tolerance:float -> Problem.t -> Plan.t -> result option
