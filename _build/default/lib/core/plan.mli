(** Deployment plans: the planner's output (paper Figure 4).

    A plan is the forward-ordered action sequence plus the metrics its
    validated execution produced (operating points, reserved bandwidth per
    link class, realized cost) and the cost lower bound the A* search
    optimized. *)

type t = {
  steps : Action.t list;  (** earliest action first *)
  cost_lb : float;  (** Table 2 "lower bound on cost" *)
  metrics : Replay.metrics;
}

val length : t -> int

(** Figure 4-style listing: "place Splitter on n0" / "cross with Z stream
    from n0 to n1". *)
val to_string : Problem.t -> t -> string

val pp : Problem.t -> Format.formatter -> t -> unit

(** Step labels only (for compact test assertions). *)
val labels : t -> string list

(** Components placed by the plan, with their nodes. *)
val placements : Problem.t -> t -> (string * int) list

(** Links crossed by the plan: (iface name, src, dst). *)
val crossings : Problem.t -> t -> (string * int * int) list
