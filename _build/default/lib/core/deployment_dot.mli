(** Graphviz rendering of a deployed plan: nodes as boxes listing their
    placed components, stream crossings as labelled directed edges (the
    visual language of the paper's Figures 1 and 9). *)

(** [render problem plan] produces a DOT digraph. *)
val render : Problem.t -> Plan.t -> string

val write_file : Problem.t -> Plan.t -> string -> unit
