(** Forward execution of plan tails in optimistic resource maps (paper
    section 3.2.3, Figure 8).

    A tail is a totally ordered action sequence executed front to back.
    Every interface property carries an interval; each action first
    {e meets} the current interval with its assumed level (degradable
    streams may be throttled down into the level, upgradable ones up),
    then checks its conditions for satisfiability, consumes node/link
    resources at the interval supremum (the paper's greedy "maximum
    possible utilization" — which under level-throttling is the realized
    operating point), and finally produces its outputs by monotone
    interval evaluation of the effect formulae.

    Two modes:
    - [Optimistic] — unknown inputs are seeded from the action's assumed
      level capped by the interface's global maximum ({!Problem.t.iface_max});
      used to prune partial plans during RG search.  A failure here is
      definitive: no completion of the tail can succeed.
    - [From_init] — inputs must be produced by earlier actions or the
      initial state; used for the final soundness check and for deployment
      metrics. *)

module I = Sekitei_util.Interval

type mode = Optimistic | From_init

type failure = {
  failed_index : int;  (** position in the tail, -1 for goal checks *)
  failed_action : string;  (** action label or goal description *)
  reason : string;
}

type metrics = {
  realized_cost : float;
      (** cost formulae evaluated at the operating points *)
  lan_peak : float;  (** max bandwidth reserved on any LAN link *)
  wan_peak : float;
  lan_total : float;
  wan_total : float;
  node_cpu_used : (int * float) list;  (** per node, "cpu" consumption *)
  link_used : (int * float) list;
      (** exact per-link ["lbw"] consumption, link id ascending *)
  delivered : (int * int * float) list;
      (** (iface, node, operating value) at every tail-end availability *)
}

type outcome = (metrics, failure) result

(** [run problem ~mode tail] executes the tail (earliest action first).
    [source_scale] (default 1) scales every source's capacity — the hook
    the post-processing optimizer uses to throttle the supply. *)
val run : ?source_scale:float -> Problem.t -> mode:mode -> Action.t list -> outcome

val pp_failure : Format.formatter -> failure -> unit
