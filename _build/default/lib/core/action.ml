module I = Sekitei_util.Interval

type kind =
  | Place of { comp : int; node : int }
  | Cross of { iface : int; link : int; src : int; dst : int }

type t = {
  act_id : int;
  kind : kind;
  pre : int array;
  add : int array;
  add_closure : int array;
  cost_lb : float;
  cost_extra : float;
  in_levels : (int * I.t) array;
  out_levels : (int * I.t) array;
  checked_node : (string * I.t) array;
  checked_link : (string * I.t) array;
  label : string;
}

let pp fmt a = Format.fprintf fmt "%s (cost>=%g)" a.label a.cost_lb
