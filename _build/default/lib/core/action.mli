(** Leveled planning actions (paper section 3.1, "Leveled actions").

    Compilation turns the CPP into two action families — component
    placement and link crossing — and replicates each ground action per
    consistent assignment of resource levels to the interface variables it
    mentions.  Each leveled action carries:

    - its {e logical} preconditions and effects (interned propositions);
    - the level intervals assumed for its inputs and produced for its
      outputs (its {e optimistic resource map} row);
    - the levels of node/link resources it merely {e checks} (the paper's
      unimportant propositions);
    - an admissible cost lower bound (cost formula at interval infima). *)

module I = Sekitei_util.Interval

type kind =
  | Place of { comp : int; node : int }
  | Cross of { iface : int; link : int; src : int; dst : int }

type t = {
  act_id : int;
  kind : kind;
  pre : int array;  (** required propositions (interned) *)
  add : int array;  (** directly achieved propositions *)
  add_closure : int array;
      (** achieved propositions closed under degradability/upgradability *)
  cost_lb : float;
  cost_extra : float;
      (** additive adjustment already folded into [cost_lb] (redeployment
          discounts/surcharges); replay adds it to the realized cost too *)
  in_levels : (int * I.t) array;  (** (iface index, assumed input interval) *)
  out_levels : (int * I.t) array;  (** (iface index, produced interval) *)
  checked_node : (string * I.t) array;
      (** node resource levels assumed (checked, never achieved) *)
  checked_link : (string * I.t) array;
  label : string;
}

val pp : Format.formatter -> t -> unit
