lib/core/planner.mli: Format Plan Sekitei_network Sekitei_spec Stdlib
