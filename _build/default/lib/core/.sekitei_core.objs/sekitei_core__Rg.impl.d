lib/core/rg.ml: Action Array Float Hashtbl List Plrg Problem Replay Sekitei_util Slrg
