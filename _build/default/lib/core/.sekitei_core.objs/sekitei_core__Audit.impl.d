lib/core/audit.ml: Array Buffer Float Format List Plan Printf Problem Replay Sekitei_network Sekitei_spec Sekitei_util
