lib/core/compile.ml: Action Array Float Fun Hashtbl List Option Printf Problem Prop Sekitei_expr Sekitei_network Sekitei_spec Sekitei_util String
