lib/core/replay.mli: Action Format Problem Sekitei_util
