lib/core/postprocess.mli: Plan Problem Replay
