lib/core/plan.ml: Action Array Format List Printf Problem Replay Sekitei_network Sekitei_spec String
