lib/core/prop.mli:
