lib/core/slrg.mli: Plrg Problem
