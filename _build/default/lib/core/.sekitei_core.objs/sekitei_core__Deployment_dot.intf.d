lib/core/deployment_dot.mli: Plan Problem
