lib/core/action.ml: Format Sekitei_util
