lib/core/deployment_dot.ml: Buffer Fun List Plan Printf Problem Sekitei_network Sekitei_spec String
