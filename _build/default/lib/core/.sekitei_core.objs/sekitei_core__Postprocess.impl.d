lib/core/postprocess.ml: Plan Replay
