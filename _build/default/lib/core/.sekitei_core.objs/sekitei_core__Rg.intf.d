lib/core/rg.mli: Action Plrg Problem Replay Slrg
