lib/core/problem.mli: Action Format Prop Sekitei_network Sekitei_spec Sekitei_util
