lib/core/action.mli: Format Sekitei_util
