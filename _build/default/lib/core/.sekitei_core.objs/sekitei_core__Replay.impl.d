lib/core/replay.ml: Action Array Float Format Hashtbl List Printf Problem Sekitei_expr Sekitei_network Sekitei_spec Sekitei_util String
