lib/core/planner.ml: Array Compile Format List Logs Plan Plrg Problem Prop Replay Rg Sekitei_network Sekitei_spec Sekitei_util Slrg Stdlib String
