lib/core/plrg.ml: Action Array Float List Problem Prop Queue Sekitei_util
