lib/core/redeploy.mli: Format Plan Planner Problem Sekitei_network Sekitei_spec
