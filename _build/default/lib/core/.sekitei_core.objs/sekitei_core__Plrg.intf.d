lib/core/plrg.mli: Problem
