lib/core/compile.mli: Problem Sekitei_network Sekitei_spec
