lib/core/prop.ml: Array
