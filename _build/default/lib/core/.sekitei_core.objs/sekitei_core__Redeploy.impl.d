lib/core/redeploy.ml: Format List Plan Planner Printf String
