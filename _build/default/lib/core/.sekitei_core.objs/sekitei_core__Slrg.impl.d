lib/core/slrg.ml: Action Array Float Hashtbl List Option Plrg Problem Sekitei_util Stdlib
