lib/core/plan.mli: Action Format Problem Replay
