lib/core/problem.ml: Action Array Format Printf Prop Sekitei_network Sekitei_spec Sekitei_util String
