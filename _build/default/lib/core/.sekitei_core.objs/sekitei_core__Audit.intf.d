lib/core/audit.mli: Plan Problem Sekitei_network
