(** Phase 3: the main regression graph (paper section 3.2.3).

    A* over totally-ordered plan tails, regressing from the goal
    propositions.  Each node carries the tail built so far and the set of
    propositions still to achieve; expanding a node prepends an action that
    supports at least one pending proposition.  Every new tail is replayed
    forward in its optimistic resource map and pruned on failure (early
    detection of resource and QoS violations).  A node whose pending set is
    empty is a candidate solution; it is accepted only when the tail also
    replays successfully from the true initial state.

    The remaining-cost heuristic is the SLRG set cost; path cost is the sum
    of the leveled actions' cost lower bounds, so the first accepted
    solution minimizes the plan's cost lower bound (paper section 4:
    "our algorithm optimizes the minimum cost of the plan"). *)

type stats = {
  created : int;  (** RG nodes created *)
  expanded : int;
  open_left : int;  (** nodes left in the A* queue at termination *)
  replay_pruned : int;  (** tails discarded by optimistic replay *)
  final_replay_rejected : int;  (** complete tails rejected from the init map *)
}

type result =
  | Solution of Action.t list * Replay.metrics * float  (** tail, metrics, cost bound *)
  | Exhausted  (** no resource-feasible plan (the scenario-A verdict) *)
  | Budget_exceeded

val search : ?max_expansions:int -> Problem.t -> Plrg.t -> Slrg.t -> result * stats
