module Topology = Sekitei_network.Topology
module Model = Sekitei_spec.Model

type t = { steps : Action.t list; cost_lb : float; metrics : Replay.metrics }

let length t = List.length t.steps

let step_to_string (pb : Problem.t) (a : Action.t) =
  let node_name n = (Topology.get_node pb.topo n).Topology.node_name in
  match a.Action.kind with
  | Action.Place { comp; node } ->
      Printf.sprintf "place %s on %s" pb.comps.(comp).Model.comp_name
        (node_name node)
  | Action.Cross { iface; src; dst; _ } ->
      Printf.sprintf "cross with %s stream from %s to %s"
        pb.ifaces.(iface).Model.iface_name (node_name src) (node_name dst)

let to_string pb t =
  String.concat ",\n" (List.map (step_to_string pb) t.steps) ^ "."

let pp pb fmt t = Format.pp_print_string fmt (to_string pb t)

let labels t = List.map (fun (a : Action.t) -> a.Action.label) t.steps

let placements (pb : Problem.t) t =
  List.filter_map
    (fun (a : Action.t) ->
      match a.Action.kind with
      | Action.Place { comp; node } ->
          Some (pb.comps.(comp).Model.comp_name, node)
      | Action.Cross _ -> None)
    t.steps

let crossings (pb : Problem.t) t =
  List.filter_map
    (fun (a : Action.t) ->
      match a.Action.kind with
      | Action.Cross { iface; src; dst; _ } ->
          Some (pb.ifaces.(iface).Model.iface_name, src, dst)
      | Action.Place _ -> None)
    t.steps
