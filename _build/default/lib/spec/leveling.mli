(** Resource levels (paper section 3.1).

    A {e leveling} assigns each interface property and each node/link
    resource a list of cutpoints [c1 < c2 < ...], which induce the level
    intervals [[0,c1); [c1,c2); ...; [cn, inf)].  Unmentioned variables get
    the single level [[0, inf)] — with that leveling everywhere, the
    planner degenerates to the original greedy Sekitei (Table 1,
    scenario A). *)

module I = Sekitei_util.Interval

type t

val empty : t

(** [with_iface t iface prop cutpoints] adds interface-property cutpoints.
    @raise Invalid_argument unless strictly increasing and positive. *)
val with_iface : t -> string -> string -> float list -> t

(** [with_link t resource cutpoints] levels a link resource (Table 1
    scenario E levels ["lbw"] at 31 and 62). *)
val with_link : t -> string -> float list -> t

(** [with_node t resource cutpoints] levels a node resource. *)
val with_node : t -> string -> float list -> t

(** Level intervals for an interface property (singleton [full] when
    unleveled). *)
val iface_levels : t -> string -> string -> I.t list

val link_levels : t -> string -> I.t list
val node_levels : t -> string -> I.t list

(** Is anything actually leveled? *)
val is_trivial : t -> bool

val iface_cutpoints : t -> (string * string * float list) list
val link_cutpoints : t -> (string * float list) list
val node_cutpoints : t -> (string * float list) list

(** [propagate app t] derives cutpoints for interfaces reachable through
    component effects from the already-leveled ones ("bandwidth levels of
    T, I and Z are proportional to those of the M stream", Table 1): each
    seeded cutpoint is pushed through every component effect by point
    evaluation, iterated to a fixpoint.  Interfaces with explicit cutpoints
    keep them. *)
val propagate : Model.app -> t -> t

(** [suggest ?expansion ?intermediate app] proposes cutpoints
    automatically, addressing the paper's open question of level choice
    (sections 4.3 and 6: "the good choice of levels depends on
    requirements of application components"; "the choice of levels needs
    to be performed by a domain expert").

    The heuristic mirrors what the expert does in the paper's scenario C:
    for every interface property that some component condition or goal
    demands at least [d] of, emit cutpoints at [d] (so the demand becomes
    a level boundary), at [d * expansion] (a slightly-above-demand
    operating band, default 1.1 - the paper's "cut exactly around 90"),
    at [intermediate] geometrically spaced points up to the supply, and at
    the supply itself.  Derived interfaces then get proportional levels
    via {!propagate}. *)
val suggest : ?expansion:float -> ?intermediate:int -> Model.app -> t

(** Automatic degradability analysis (paper section 3.1 suggests tags "can
    be obtained automatically by syntactic analysis"): a property is
    degradable if every component condition mentioning it becomes easier
    to satisfy as it decreases and every effect using it is monotone
    non-decreasing; upgradable in the symmetric case.  Returns the tags it
    can determine. *)
val analyze_tags : Model.app -> (string * string * Model.tag) list

val pp : Format.formatter -> t -> unit
