(** Tiny string-splitting helper shared by the DSL parser (the stdlib has
    no substring split). *)

(** [split_once s sep] splits at the first occurrence of [sep]. *)
val split_once : string -> string -> (string * string) option
