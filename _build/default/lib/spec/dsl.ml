module Expr = Sekitei_expr.Expr
module Topology = Sekitei_network.Topology

type document = {
  topo : Topology.t option;
  app : Model.app;
  leveling : Leveling.t;
}

exception Dsl_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Dsl_error s)) fmt

(* --------------------------------------------------------------------- *)
(* Statement scanner: strips comments, then cuts the input into           *)
(* top-level items [keyword name { statements }] or [statement;], where   *)
(* statements inside blocks are ;-separated strings.                      *)
(* --------------------------------------------------------------------- *)

type item =
  | Block of string * string * string list  (** keyword, name, statements *)
  | Stmt of string

let strip_comments s =
  let buf = Buffer.create (String.length s) in
  let in_comment = ref false in
  String.iter
    (fun ch ->
      if !in_comment then begin
        if ch = '\n' then begin
          in_comment := false;
          Buffer.add_char buf ch
        end
      end
      else if ch = '#' then in_comment := true
      else Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let split_statements body =
  String.split_on_char ';' body
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let scan_items text =
  let text = strip_comments text in
  let n = String.length text in
  let items = ref [] in
  let i = ref 0 in
  let skip_ws () =
    while !i < n && (text.[!i] = ' ' || text.[!i] = '\n' || text.[!i] = '\t' || text.[!i] = '\r') do
      incr i
    done
  in
  skip_ws ();
  while !i < n do
    (* Read up to either '{' (block) or ';' (bare statement). *)
    let start = !i in
    while !i < n && text.[!i] <> '{' && text.[!i] <> ';' do
      incr i
    done;
    if !i >= n then begin
      if String.trim (String.sub text start (n - start)) <> "" then
        fail "trailing input without terminator: %S"
          (String.trim (String.sub text start (n - start)))
    end
    else if text.[!i] = ';' then begin
      let stmt = String.trim (String.sub text start (!i - start)) in
      incr i;
      if stmt <> "" then items := Stmt stmt :: !items
    end
    else begin
      (* block *)
      let header = String.trim (String.sub text start (!i - start)) in
      incr i;
      let body_start = !i in
      let depth = ref 1 in
      while !i < n && !depth > 0 do
        (match text.[!i] with
        | '{' -> incr depth
        | '}' -> decr depth
        | _ -> ());
        incr i
      done;
      if !depth > 0 then fail "unterminated block %S" header;
      let body = String.sub text body_start (!i - 1 - body_start) in
      let keyword, name =
        match
          String.split_on_char ' ' header |> List.filter (fun s -> s <> "")
        with
        | [ kw ] -> (kw, "")
        | [ kw; name ] -> (kw, name)
        | _ -> fail "bad block header %S" header
      in
      items := Block (keyword, name, split_statements body) :: !items
    end;
    skip_ws ()
  done;
  List.rev !items

(* --------------------------------------------------------------------- *)
(* Statement helpers                                                      *)
(* --------------------------------------------------------------------- *)

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

(* "effect M.ibw := T.ibw + I.ibw" -> ("M.ibw", "T.ibw + I.ibw") *)
let split_assign stmt what =
  match Str_split.split_once stmt ":=" with
  | Some (lhs, rhs) -> (String.trim lhs, String.trim rhs)
  | None -> fail "%s statement needs ':=' in %S" what stmt

let split_dotted v =
  match String.index_opt v '.' with
  | Some d ->
      (String.sub v 0 d, String.sub v (d + 1) (String.length v - d - 1))
  | None -> fail "expected qualified name X.y, got %S" v

let parse_expr_or_fail what text =
  match Expr.parse text with
  | e -> e
  | exception Expr.Parse_error m -> fail "%s: %s in %S" what m text

let parse_cond_or_fail what text =
  match Expr.parse_cond text with
  | c -> c
  | exception Expr.Parse_error m -> fail "%s: %s in %S" what m text

let drop_prefix prefix stmt =
  let pl = String.length prefix in
  if String.length stmt > pl && String.sub stmt 0 pl = prefix then
    Some (String.trim (String.sub stmt pl (String.length stmt - pl)))
  else None

(* --------------------------------------------------------------------- *)
(* Interface blocks                                                       *)
(* --------------------------------------------------------------------- *)

let parse_tag = function
  | "degradable" -> Model.Degradable
  | "upgradable" -> Model.Upgradable
  | "neither" -> Model.Neither
  | t -> fail "unknown tag %S" t

let parse_property rest =
  (* "ibw degradable" | "lat = 0 neither" | "ibw" *)
  match words rest with
  | [ name ] -> Model.property name
  | [ name; tag ] -> Model.property ~tag:(parse_tag tag) name
  | [ name; "="; v ] -> Model.property ~default:(float_of_string v) name
  | [ name; "="; v; tag ] ->
      Model.property ~default:(float_of_string v) ~tag:(parse_tag tag) name
  | _ -> fail "bad property statement %S" rest

let parse_levels_stmt rest =
  (* "ibw: 30, 70, 90" -> (target, cutpoints) *)
  match String.index_opt rest ':' with
  | None -> fail "levels statement needs ':' in %S" rest
  | Some colon ->
      let target = String.trim (String.sub rest 0 colon) in
      let cuts =
        String.sub rest (colon + 1) (String.length rest - colon - 1)
        |> String.split_on_char ','
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map (fun s ->
               match float_of_string_opt s with
               | Some f -> f
               | None -> fail "bad cutpoint %S" s)
      in
      (target, cuts)

let parse_iface name stmts =
  let properties = ref [] in
  let transforms = ref [] in
  let consumes = ref [] in
  let conditions = ref [] in
  let cost = ref None in
  let levels = ref [] in
  List.iter
    (fun stmt ->
      match drop_prefix "property " stmt with
      | Some rest -> properties := parse_property rest :: !properties
      | None -> (
          match drop_prefix "cross " stmt with
          | Some rest ->
              let lhs, rhs = split_assign rest "cross" in
              transforms :=
                (lhs, parse_expr_or_fail "cross transform" rhs) :: !transforms
          | None -> (
              match drop_prefix "consume " stmt with
              | Some rest ->
                  let lhs, rhs =
                    match Str_split.split_once rest "-=" with
                    | Some (l, r) -> (String.trim l, String.trim r)
                    | None -> fail "consume needs '-=' in %S" stmt
                  in
                  let scope, res = split_dotted lhs in
                  if scope <> "link" then
                    fail "interface consumption must target link.*, got %S" lhs;
                  consumes :=
                    (res, parse_expr_or_fail "cross consumption" rhs) :: !consumes
              | None -> (
                  match drop_prefix "condition " stmt with
                  | Some rest ->
                      conditions :=
                        parse_cond_or_fail "cross condition" rest :: !conditions
                  | None -> (
                      match drop_prefix "cost " stmt with
                      | Some rest ->
                          cost := Some (parse_expr_or_fail "cross cost" rest)
                      | None -> (
                          match drop_prefix "levels " stmt with
                          | Some rest -> levels := parse_levels_stmt rest :: !levels
                          | None -> fail "unknown interface statement %S" stmt))))))
    stmts;
  if !properties = [] then fail "interface %s declares no properties" name;
  let iface =
    Model.iface
      ?cross_transforms:(if !transforms = [] then None else Some (List.rev !transforms))
      ?cross_consumes:(if !consumes = [] then None else Some (List.rev !consumes))
      ~cross_conditions:(List.rev !conditions)
      ?cross_cost:!cost
      ~properties:(List.rev !properties)
      name
  in
  (iface, List.rev_map (fun (p, cuts) -> (name, p, cuts)) !levels)

(* --------------------------------------------------------------------- *)
(* Component blocks                                                       *)
(* --------------------------------------------------------------------- *)

let parse_name_list rest =
  String.split_on_char ',' rest |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let parse_component name stmts =
  let requires = ref [] in
  let provides = ref [] in
  let conditions = ref [] in
  let effects = ref [] in
  let consumes = ref [] in
  let cost = ref None in
  let placeable = ref true in
  List.iter
    (fun stmt ->
      if stmt = "anchored" then placeable := false
      else
        match drop_prefix "requires " stmt with
        | Some rest -> requires := !requires @ parse_name_list rest
        | None -> (
            match drop_prefix "provides " stmt with
            | Some rest -> provides := !provides @ parse_name_list rest
            | None -> (
                match drop_prefix "condition " stmt with
                | Some rest ->
                    conditions :=
                      parse_cond_or_fail "component condition" rest :: !conditions
                | None -> (
                    match drop_prefix "effect " stmt with
                    | Some rest ->
                        let lhs, rhs = split_assign rest "effect" in
                        let iface, prop = split_dotted lhs in
                        effects :=
                          (iface, prop, parse_expr_or_fail "effect" rhs) :: !effects
                    | None -> (
                        match drop_prefix "consume " stmt with
                        | Some rest ->
                            let lhs, rhs =
                              match Str_split.split_once rest "-=" with
                              | Some (l, r) -> (String.trim l, String.trim r)
                              | None -> fail "consume needs '-=' in %S" stmt
                            in
                            let scope, res = split_dotted lhs in
                            if scope <> "node" then
                              fail "component consumption must target node.*, got %S"
                                lhs;
                            consumes :=
                              (res, parse_expr_or_fail "consumption" rhs)
                              :: !consumes
                        | None -> (
                            match drop_prefix "cost " stmt with
                            | Some rest ->
                                cost := Some (parse_expr_or_fail "place cost" rest)
                            | None -> fail "unknown component statement %S" stmt))))))
    stmts;
  Model.component ~requires:!requires ~provides:!provides
    ~conditions:(List.rev !conditions)
    ~effects:(List.rev !effects)
    ~consumes:(List.rev !consumes)
    ?place_cost:!cost ~placeable:!placeable name

(* --------------------------------------------------------------------- *)
(* Network block                                                          *)
(* --------------------------------------------------------------------- *)

let rec parse_resource_pairs acc = function
  | [] -> List.rev acc
  | name :: value :: rest ->
      let v =
        match float_of_string_opt value with
        | Some v -> v
        | None -> fail "bad resource value %S" value
      in
      parse_resource_pairs ((name, v) :: acc) rest
  | [ odd ] -> fail "dangling resource token %S" odd

let parse_network stmts =
  let node_names = Hashtbl.create 16 in
  let nodes = ref [] in
  let links = ref [] in
  let next_node = ref 0 in
  let next_link = ref 0 in
  List.iter
    (fun stmt ->
      match drop_prefix "node " stmt with
      | Some rest -> (
          match words rest with
          | name :: res_tokens ->
              let resources = parse_resource_pairs [] res_tokens in
              let cpu = Option.value (List.assoc_opt "cpu" resources) ~default:30. in
              let extra = List.remove_assoc "cpu" resources in
              if Hashtbl.mem node_names name then fail "duplicate node %S" name;
              Hashtbl.add node_names name !next_node;
              nodes := Topology.node ~cpu ~resources:extra !next_node name :: !nodes;
              incr next_node
          | [] -> fail "empty node statement")
      | None -> (
          match drop_prefix "link " stmt with
          | Some rest -> (
              match words rest with
              | a :: "--" :: b :: kind :: res_tokens ->
                  let kind =
                    match kind with
                    | "lan" -> Topology.Lan
                    | "wan" -> Topology.Wan
                    | k -> fail "unknown link kind %S (lan|wan)" k
                  in
                  let resources = parse_resource_pairs [] res_tokens in
                  let bw = List.assoc_opt "lbw" resources in
                  let extra = List.remove_assoc "lbw" resources in
                  let id_of n =
                    match Hashtbl.find_opt node_names n with
                    | Some id -> id
                    | None -> fail "link references unknown node %S" n
                  in
                  links :=
                    Topology.link ?bw ~resources:extra kind !next_link (id_of a)
                      (id_of b)
                    :: !links;
                  incr next_link
              | _ -> fail "bad link statement %S (want: link a -- b lan|wan ...)" stmt)
          | None -> fail "unknown network statement %S" stmt))
    stmts;
  (Topology.make ~nodes:(List.rev !nodes) ~links:(List.rev !links), node_names)

(* --------------------------------------------------------------------- *)
(* Deploy block                                                           *)
(* --------------------------------------------------------------------- *)

let node_id node_names name =
  match node_names with
  | Some tbl -> (
      match Hashtbl.find_opt tbl name with
      | Some id -> id
      | None -> fail "unknown node %S in deploy block" name)
  | None -> (
      (* No network block: accept n<id> numeric names. *)
      match
        if String.length name > 1 && name.[0] = 'n' then
          int_of_string_opt (String.sub name 1 (String.length name - 1))
        else int_of_string_opt name
      with
      | Some id -> id
      | None -> fail "cannot resolve node %S without a network block" name)

let parse_deploy node_names stmts =
  let pre_placed = ref [] in
  let goals = ref [] in
  List.iter
    (fun stmt ->
      match drop_prefix "place " stmt with
      | Some rest -> (
          match words rest with
          | [ comp; "on"; node ] ->
              pre_placed := (comp, node_id node_names node) :: !pre_placed
          | _ -> fail "bad place statement %S" stmt)
      | None -> (
          match drop_prefix "goal " stmt with
          | Some rest -> (
              match words rest with
              | [ comp; "on"; node ] ->
                  goals := Model.Placed (comp, node_id node_names node) :: !goals
              | [ qualified; ">="; v; "on"; node ] ->
                  let iface, prop = split_dotted qualified in
                  goals :=
                    Model.Available
                      (iface, prop, node_id node_names node, float_of_string v)
                    :: !goals
              | _ -> fail "bad goal statement %S" stmt)
          | None -> fail "unknown deploy statement %S" stmt))
    stmts;
  (List.rev !pre_placed, List.rev !goals)

(* --------------------------------------------------------------------- *)
(* Document                                                               *)
(* --------------------------------------------------------------------- *)

let parse_document text =
  let items = scan_items text in
  let interfaces = ref [] in
  let iface_levels = ref [] in
  let components = ref [] in
  let network = ref None in
  let deploy = ref ([], []) in
  let extra_levels = ref [] in
  List.iter
    (fun item ->
      match item with
      | Block ("interface", name, stmts) ->
          let iface, levels = parse_iface name stmts in
          interfaces := iface :: !interfaces;
          iface_levels := levels @ !iface_levels
      | Block ("component", name, stmts) ->
          components := parse_component name stmts :: !components
      | Block ("network", "", stmts) ->
          if !network <> None then fail "duplicate network block";
          network := Some (parse_network stmts)
      | Block ("deploy", "", stmts) ->
          let names = Option.map snd !network in
          deploy := parse_deploy names stmts
      | Block (kw, _, _) -> fail "unknown block %S" kw
      | Stmt stmt -> (
          match drop_prefix "levels " stmt with
          | Some rest -> extra_levels := parse_levels_stmt rest :: !extra_levels
          | None -> fail "unknown top-level statement %S" stmt))
    items;
  let pre_placed, goals = !deploy in
  let app =
    {
      Model.interfaces = List.rev !interfaces;
      components = List.rev !components;
      pre_placed;
      goals;
    }
  in
  let leveling =
    List.fold_left
      (fun acc (iface, prop, cuts) -> Leveling.with_iface acc iface prop cuts)
      Leveling.empty !iface_levels
  in
  let leveling =
    List.fold_left
      (fun acc (target, cuts) ->
        match split_dotted target with
        | "link", res -> Leveling.with_link acc res cuts
        | "node", res -> Leveling.with_node acc res cuts
        | iface, prop -> Leveling.with_iface acc iface prop cuts)
      leveling !extra_levels
  in
  { topo = Option.map fst !network; app; leveling }

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      parse_document (really_input_string ic len))

(* --------------------------------------------------------------------- *)
(* Printer                                                                *)
(* --------------------------------------------------------------------- *)

let tag_to_string = function
  | Model.Degradable -> "degradable"
  | Model.Upgradable -> "upgradable"
  | Model.Neither -> "neither"

let print_document ?topo (app : Model.app) leveling =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let cuts_for iface prop =
    List.find_map
      (fun (i, p, cuts) ->
        if String.equal i iface && String.equal p prop then Some cuts else None)
      (Leveling.iface_cutpoints leveling)
  in
  List.iter
    (fun (i : Model.iface) ->
      pf "interface %s {\n" i.Model.iface_name;
      List.iter
        (fun (p : Model.property) ->
          if p.Model.prop_default = 0. then
            pf "  property %s %s;\n" p.Model.prop_name (tag_to_string p.Model.prop_tag)
          else
            pf "  property %s = %g %s;\n" p.Model.prop_name p.Model.prop_default
              (tag_to_string p.Model.prop_tag))
        i.Model.properties;
      List.iter
        (fun (p, e) -> pf "  cross %s := %s;\n" p (Expr.to_string e))
        i.Model.cross_transforms;
      List.iter
        (fun (r, e) -> pf "  consume link.%s -= %s;\n" r (Expr.to_string e))
        i.Model.cross_consumes;
      List.iter
        (fun c -> pf "  condition %s;\n" (Expr.cond_to_string c))
        i.Model.cross_conditions;
      pf "  cost %s;\n" (Expr.to_string i.Model.cross_cost);
      List.iter
        (fun (p : Model.property) ->
          match cuts_for i.Model.iface_name p.Model.prop_name with
          | Some cuts when cuts <> [] ->
              pf "  levels %s: %s;\n" p.Model.prop_name
                (String.concat ", " (List.map (Printf.sprintf "%g") cuts))
          | _ -> ())
        i.Model.properties;
      pf "}\n\n")
    app.Model.interfaces;
  List.iter
    (fun (c : Model.component) ->
      pf "component %s {\n" c.Model.comp_name;
      if c.Model.requires <> [] then
        pf "  requires %s;\n" (String.concat ", " c.Model.requires);
      if c.Model.provides <> [] then
        pf "  provides %s;\n" (String.concat ", " c.Model.provides);
      List.iter (fun cd -> pf "  condition %s;\n" (Expr.cond_to_string cd)) c.Model.conditions;
      List.iter
        (fun (i, p, e) -> pf "  effect %s.%s := %s;\n" i p (Expr.to_string e))
        c.Model.effects;
      List.iter
        (fun (r, e) -> pf "  consume node.%s -= %s;\n" r (Expr.to_string e))
        c.Model.consumes;
      pf "  cost %s;\n" (Expr.to_string c.Model.place_cost);
      if not c.Model.placeable then pf "  anchored;\n";
      pf "}\n\n")
    app.Model.components;
  (match topo with
  | None -> ()
  | Some t ->
      pf "network {\n";
      Array.iter
        (fun (n : Topology.node) ->
          pf "  node %s%s;\n" n.Topology.node_name
            (String.concat ""
               (List.map (fun (r, v) -> Printf.sprintf " %s %g" r v) n.Topology.node_resources)))
        (Topology.nodes t);
      Array.iter
        (fun (l : Topology.link) ->
          let a, b = l.Topology.ends in
          pf "  link %s -- %s %s%s;\n"
            (Topology.get_node t a).Topology.node_name
            (Topology.get_node t b).Topology.node_name
            (match l.Topology.kind with Topology.Lan -> "lan" | Topology.Wan -> "wan")
            (String.concat ""
               (List.map (fun (r, v) -> Printf.sprintf " %s %g" r v) l.Topology.link_resources)))
        (Topology.links t);
      pf "}\n\n");
  let node_name id =
    match topo with
    | Some t -> (Topology.get_node t id).Topology.node_name
    | None -> Printf.sprintf "n%d" id
  in
  pf "deploy {\n";
  List.iter
    (fun (comp, node) -> pf "  place %s on %s;\n" comp (node_name node))
    app.Model.pre_placed;
  List.iter
    (fun g ->
      match g with
      | Model.Placed (comp, node) -> pf "  goal %s on %s;\n" comp (node_name node)
      | Model.Available (i, p, node, v) ->
          pf "  goal %s.%s >= %g on %s;\n" i p v (node_name node))
    app.Model.goals;
  pf "}\n";
  List.iter
    (fun (r, cuts) ->
      pf "\nlevels link.%s: %s;\n" r
        (String.concat ", " (List.map (Printf.sprintf "%g") cuts)))
    (Leveling.link_cutpoints leveling);
  List.iter
    (fun (r, cuts) ->
      pf "\nlevels node.%s: %s;\n" r
        (String.concat ", " (List.map (Printf.sprintf "%g") cuts)))
    (Leveling.node_cutpoints leveling);
  Buffer.contents buf
