lib/spec/validate.mli: Format Model Sekitei_network
