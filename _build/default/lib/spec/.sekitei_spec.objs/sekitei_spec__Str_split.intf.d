lib/spec/str_split.mli:
