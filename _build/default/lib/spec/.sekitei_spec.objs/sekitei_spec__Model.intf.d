lib/spec/model.mli: Format Sekitei_expr Sekitei_network
