lib/spec/leveling.mli: Format Model Sekitei_util
