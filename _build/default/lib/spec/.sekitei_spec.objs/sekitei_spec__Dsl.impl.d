lib/spec/dsl.ml: Array Buffer Fun Hashtbl Leveling List Model Option Printf Sekitei_expr Sekitei_network Str_split String
