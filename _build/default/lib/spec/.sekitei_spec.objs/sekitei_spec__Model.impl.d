lib/spec/model.ml: Format List Sekitei_expr Sekitei_network String
