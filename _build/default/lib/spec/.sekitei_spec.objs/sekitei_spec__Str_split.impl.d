lib/spec/str_split.ml: String
