lib/spec/leveling.ml: Float Format Hashtbl List Model Option Sekitei_expr Sekitei_util String
