lib/spec/validate.ml: Array Format List Model Printf Sekitei_expr Sekitei_network String
