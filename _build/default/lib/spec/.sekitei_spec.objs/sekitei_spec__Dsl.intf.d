lib/spec/dsl.mli: Leveling Model Sekitei_network
