(** Textual specification language for CPP instances.

    Mirrors the paper's component specifications (Figures 2 and 6) in a
    plain-text format covering interfaces, components, the network, the
    deployment (pre-placements and goals), and resource levels:

    {v
    interface M {
      property ibw degradable;
      cross ibw := min(ibw, link.lbw);
      consume link.lbw -= min(ibw, link.lbw);
      cost 1 + ibw / 10;
      levels ibw: 30, 70, 90, 100;
    }

    component Merger {
      requires T, I;
      provides M;
      condition T.ibw * 3 == I.ibw * 7;
      effect M.ibw := T.ibw + I.ibw;
      consume node.cpu -= (T.ibw + I.ibw) / 5;
      cost 1 + (T.ibw + I.ibw) / 10;
    }

    network {
      node n0 cpu 30;
      node n1 cpu 30;
      link n0 -- n1 wan lbw 70;
    }

    deploy {
      place Server on n0;
      goal Client on n1;
    }

    levels link.lbw: 31, 62;
    v}

    Comments run from [#] to end of line.  Components may declare
    [anchored;] (not placeable — servers).  Properties may carry a default
    ([property lat = 0 neither;]).  Goals may also demand a property value
    ([goal M.ibw >= 90 on n1;]). *)

type document = {
  topo : Sekitei_network.Topology.t option;  (** absent without a network block *)
  app : Model.app;
  leveling : Leveling.t;
}

exception Dsl_error of string
(** Parse failure with a human-readable location. *)

val parse_document : string -> document

(** Load and parse a file.  @raise Dsl_error and [Sys_error]. *)
val load_file : string -> document

(** Render a document back to DSL text; [parse_document] of the output
    round-trips modulo formatting. *)
val print_document :
  ?topo:Sekitei_network.Topology.t -> Model.app -> Leveling.t -> string
