(** The Component Placement Problem specification model.

    A CPP instance (paper section 2.1) is given by a network topology
    (see {!Sekitei_network.Topology}), a set of {e interface} types (data
    streams with quantitative properties such as bandwidth), a set of
    {e component} types that consume and produce interfaces, an initial
    state (pre-placed components such as the server), and a goal (e.g.
    "the Client component is placed on node 0").

    Formulae are {!Sekitei_expr.Expr} terms over dot-qualified variables:

    - ["T.ibw"] — property [ibw] of interface [T] (component formulae);
    - ["ibw"] — the crossing interface's own property (cross formulae);
    - ["node.cpu"] — available resource of the placement node;
    - ["link.lbw"] — available resource of the crossed link. *)

module Expr = Sekitei_expr.Expr

(** Degradability governs whether availability of a property value implies
    availability of smaller (degradable) or larger (upgradable) values
    (paper section 3.1); bandwidth supply is degradable. *)
type tag = Degradable | Upgradable | Neither

type property = {
  prop_name : string;
  prop_default : float;  (** value when no effect sets it, e.g. latency 0 *)
  prop_tag : tag;
}

type iface = {
  iface_name : string;
  properties : property list;
  cross_transforms : (string * Expr.t) list;
      (** per property: its value after crossing a link, e.g.
          [ibw := min(ibw, link.lbw)] *)
  cross_consumes : (string * Expr.t) list;
      (** link resources consumed by a crossing, e.g.
          [lbw -= min(ibw, link.lbw)] *)
  cross_conditions : Expr.cond list;
  cross_cost : Expr.t;  (** plan-cost contribution of one crossing *)
}

type component = {
  comp_name : string;
  requires : string list;  (** interface names consumed *)
  provides : string list;  (** interface names produced *)
  conditions : Expr.cond list;
  effects : (string * string * Expr.t) list;
      (** [(iface, property, value)] for provided interfaces *)
  consumes : (string * Expr.t) list;
      (** node resources consumed, e.g. [cpu -= (T.ibw + I.ibw)/5] *)
  place_cost : Expr.t;
  placeable : bool;
      (** pre-placed anchors (servers) are not placeable by the planner *)
}

type goal =
  | Placed of string * Sekitei_network.Topology.node_id
      (** component placed on node *)
  | Available of string * string * Sekitei_network.Topology.node_id * float
      (** [(iface, property, node, minimum)] *)

type app = {
  interfaces : iface list;
  components : component list;
  pre_placed : (string * Sekitei_network.Topology.node_id) list;
  goals : goal list;
}

(** {1 Constructors} *)

val property : ?default:float -> ?tag:tag -> string -> property

(** [iface name ~properties ...] with defaults: transform
    [p := min(p, link.lbw)] and consumption [lbw -= min(p, link.lbw)] for
    the first property, no conditions, cost [1 + p/10]. *)
val iface :
  ?cross_transforms:(string * Expr.t) list ->
  ?cross_consumes:(string * Expr.t) list ->
  ?cross_conditions:Expr.cond list ->
  ?cross_cost:Expr.t ->
  properties:property list ->
  string ->
  iface

val component :
  ?requires:string list ->
  ?provides:string list ->
  ?conditions:Expr.cond list ->
  ?effects:(string * string * Expr.t) list ->
  ?consumes:(string * Expr.t) list ->
  ?place_cost:Expr.t ->
  ?placeable:bool ->
  string ->
  component

(** {1 Lookup} *)

val find_iface : app -> string -> iface option
val find_component : app -> string -> component option
val find_property : iface -> string -> property option

(** The variable name a component formula uses for [prop] of [iface]. *)
val qualified : string -> string -> string

(** The distinguished quantitative property of an interface — its first
    one (always [ibw] in the paper's domain). *)
val primary_property : iface -> property

(** {1 Printing} *)

val pp_iface : Format.formatter -> iface -> unit
val pp_component : Format.formatter -> component -> unit
val pp_goal : Format.formatter -> goal -> unit
