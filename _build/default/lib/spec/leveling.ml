module I = Sekitei_util.Interval
module Expr = Sekitei_expr.Expr

type t = {
  iface : ((string * string) * float list) list;
  link : (string * float list) list;
  node : (string * float list) list;
}

let empty = { iface = []; link = []; node = [] }

let check_cuts cuts =
  ignore (I.of_cutpoints cuts);
  cuts

let with_iface t iface prop cuts =
  let key = (iface, prop) in
  { t with iface = (key, check_cuts cuts) :: List.remove_assoc key t.iface }

let with_link t res cuts =
  { t with link = (res, check_cuts cuts) :: List.remove_assoc res t.link }

let with_node t res cuts =
  { t with node = (res, check_cuts cuts) :: List.remove_assoc res t.node }

let levels_of cuts = I.of_cutpoints (Option.value cuts ~default:[])
let iface_levels t iface prop = levels_of (List.assoc_opt (iface, prop) t.iface)
let link_levels t res = levels_of (List.assoc_opt res t.link)
let node_levels t res = levels_of (List.assoc_opt res t.node)

let is_trivial t = t.iface = [] && t.link = [] && t.node = []

let iface_cutpoints t = List.map (fun ((i, p), c) -> (i, p, c)) t.iface
let link_cutpoints t = t.link
let node_cutpoints t = t.node

(* --------------------------------------------------------------------- *)
(* Cutpoint propagation                                                   *)
(* --------------------------------------------------------------------- *)

let dedupe_sorted cuts =
  let sorted = List.sort_uniq compare cuts in
  List.filter (fun c -> c > 0. && Float.is_finite c) sorted

let propagate (app : Model.app) t =
  (* Map from (iface, prop) to known cutpoints; grows to a fixpoint. *)
  let table = Hashtbl.create 16 in
  List.iter (fun (key, cuts) -> Hashtbl.replace table key cuts) t.iface;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 100 do
    changed := false;
    incr rounds;
    List.iter
      (fun (c : Model.component) ->
        (* A component transfers cutpoints when every input property its
           effects mention is already leveled; cutpoints combine
           index-wise (proportional levels share indices). *)
        List.iter
          (fun (out_iface, out_prop, expr) ->
            let key = (out_iface, out_prop) in
            if not (Hashtbl.mem table key) then begin
              let input_vars = Expr.vars expr in
              let resolvable =
                input_vars <> []
                && List.for_all
                     (fun v ->
                       match String.index_opt v '.' with
                       | Some dot ->
                           let iface = String.sub v 0 dot
                           and prop =
                             String.sub v (dot + 1)
                               (String.length v - dot - 1)
                           in
                           Hashtbl.mem table (iface, prop)
                       | None -> false)
                     input_vars
              in
              if resolvable then begin
                let cut_count =
                  List.fold_left
                    (fun acc v ->
                      match String.index_opt v '.' with
                      | Some dot ->
                          let iface = String.sub v 0 dot
                          and prop =
                            String.sub v (dot + 1) (String.length v - dot - 1)
                          in
                          min acc
                            (List.length (Hashtbl.find table (iface, prop)))
                      | None -> acc)
                    max_int input_vars
                in
                if cut_count > 0 && cut_count < max_int then begin
                  let cuts =
                    List.init cut_count (fun idx ->
                        let env v =
                          match String.index_opt v '.' with
                          | Some dot ->
                              let iface = String.sub v 0 dot
                              and prop =
                                String.sub v (dot + 1)
                                  (String.length v - dot - 1)
                              in
                              List.nth (Hashtbl.find table (iface, prop)) idx
                          | None -> raise (Expr.Unbound_variable v)
                        in
                        Expr.eval ~env expr)
                  in
                  let cuts = dedupe_sorted cuts in
                  if cuts <> [] then begin
                    Hashtbl.replace table key cuts;
                    changed := true
                  end
                end
              end
            end)
          c.effects)
      app.components
  done;
  let iface =
    Hashtbl.fold (fun key cuts acc -> (key, cuts) :: acc) table []
    |> List.sort compare
  in
  { t with iface }

(* --------------------------------------------------------------------- *)
(* Cutpoint suggestion                                                    *)
(* --------------------------------------------------------------------- *)

(* Constants demanded of a variable by a condition: c for [v >= c] or
   [c <= v] shapes (and their strict variants), with constant-only
   opposite sides. *)
let demanded_constants cond v =
  let const_of e =
    if Expr.vars e = [] then
      match Expr.eval ~env:(fun x -> raise (Expr.Unbound_variable x)) e with
      | c -> Some c
      | exception (Expr.Unbound_variable _ | Division_by_zero) -> None
    else None
  in
  let rec go acc = function
    | Expr.True -> acc
    | Expr.Cmp ((Expr.Ge | Expr.Gt), Expr.Var v', rhs) when String.equal v v'
      -> (match const_of rhs with Some c -> c :: acc | None -> acc)
    | Expr.Cmp ((Expr.Le | Expr.Lt), lhs, Expr.Var v') when String.equal v v'
      -> (match const_of lhs with Some c -> c :: acc | None -> acc)
    | Expr.Cmp _ -> acc
    | Expr.And (a, b) | Expr.Or (a, b) -> go (go acc a) b
  in
  go [] cond

let suggest ?(expansion = 1.1) ?(intermediate = 1) (app : Model.app) =
  if expansion <= 1. then invalid_arg "Leveling.suggest: expansion must be > 1";
  if intermediate < 0 then invalid_arg "Leveling.suggest: negative intermediate";
  (* Supply per interface primary property: constant effects of pre-placed
     providers. *)
  let supply = Hashtbl.create 8 in
  List.iter
    (fun (comp_name, _) ->
      match
        List.find_opt
          (fun (c : Model.component) -> String.equal c.Model.comp_name comp_name)
          app.components
      with
      | None -> ()
      | Some comp ->
          List.iter
            (fun (iface, prop, e) ->
              if Expr.vars e = [] then
                match Expr.eval ~env:(fun x -> raise (Expr.Unbound_variable x)) e with
                | v ->
                    let key = (iface, prop) in
                    let prev = Option.value (Hashtbl.find_opt supply key) ~default:0. in
                    Hashtbl.replace supply key (Float.max prev v)
                | exception (Expr.Unbound_variable _ | Division_by_zero) -> ())
            comp.Model.effects)
    app.pre_placed;
  (* Demands per (iface, prop) from component conditions and goals. *)
  let demands = Hashtbl.create 8 in
  let record iface prop c =
    if c > 0. && Float.is_finite c then begin
      let key = (iface, prop) in
      let prev = Option.value (Hashtbl.find_opt demands key) ~default:[] in
      Hashtbl.replace demands key (c :: prev)
    end
  in
  List.iter
    (fun (c : Model.component) ->
      List.iter
        (fun cond ->
          List.iter
            (fun v ->
              match String.index_opt v '.' with
              | Some dot when String.sub v 0 dot <> "node" ->
                  let iface = String.sub v 0 dot in
                  let prop = String.sub v (dot + 1) (String.length v - dot - 1) in
                  List.iter (record iface prop) (demanded_constants cond v)
              | _ -> ())
            (Expr.cond_vars cond))
        c.Model.conditions)
    app.components;
  List.iter
    (fun g ->
      match g with
      | Model.Available (iface, prop, _, minv) -> record iface prop minv
      | Model.Placed _ -> ())
    app.goals;
  (* Cutpoints: demands, a band just above each demand, geometric fillers
     up to the supply, and the supply. *)
  let seeded =
    Hashtbl.fold
      (fun (iface, prop) ds acc ->
        let d_max = List.fold_left Float.max 0. ds in
        let s = Option.value (Hashtbl.find_opt supply (iface, prop)) ~default:0. in
        let ladder =
          if s > d_max *. expansion then
            List.init intermediate (fun i ->
                let frac = float_of_int (i + 1) /. float_of_int (intermediate + 1) in
                d_max *. ((s /. d_max) ** frac))
          else []
        in
        let cuts =
          dedupe_sorted
            (ds @ List.map (fun d -> d *. expansion) ds @ ladder
            @ (if s > 0. then [ s ] else []))
        in
        if cuts = [] then acc else (iface, prop, cuts) :: acc)
      demands []
  in
  let base =
    List.fold_left
      (fun acc (iface, prop, cuts) -> with_iface acc iface prop cuts)
      empty seeded
  in
  propagate app base

(* --------------------------------------------------------------------- *)
(* Tag analysis                                                           *)
(* --------------------------------------------------------------------- *)

let analyze_tags (app : Model.app) =
  let verdicts = ref [] in
  List.iter
    (fun (i : Model.iface) ->
      List.iter
        (fun (p : Model.property) ->
          let v = Model.qualified i.iface_name p.prop_name in
          (* Collect every condition and effect across components that
             mentions this property. *)
          let conds =
            List.concat_map
              (fun (c : Model.component) ->
                List.filter (fun cd -> List.mem v (Expr.cond_vars cd)) c.conditions)
              app.components
          in
          let effects =
            List.concat_map
              (fun (c : Model.component) ->
                List.filter_map
                  (fun (_, _, e) ->
                    if List.mem v (Expr.vars e) then Some e else None)
                  c.effects)
              app.components
          in
          let consumption =
            List.concat_map
              (fun (c : Model.component) ->
                List.filter_map
                  (fun (_, e) ->
                    if List.mem v (Expr.vars e) then Some e else None)
                  c.consumes)
              app.components
          in
          let all_effects_monotone =
            List.for_all
              (fun e ->
                match Expr.monotonicity e v with
                | Expr.Increasing | Expr.Constant -> true
                | Expr.Decreasing | Expr.Unknown -> false)
              (effects @ consumption)
          in
          let cond_easiness = List.map (fun c -> Expr.easier_when_lower c v) conds in
          let tag =
            if
              all_effects_monotone
              && List.for_all (fun x -> x = Some true) cond_easiness
            then Some Model.Degradable
            else if
              all_effects_monotone
              && conds <> []
              && List.for_all (fun x -> x = Some false) cond_easiness
            then Some Model.Upgradable
            else None
          in
          match tag with
          | Some tag -> verdicts := (i.iface_name, p.prop_name, tag) :: !verdicts
          | None -> ())
        i.properties)
    app.interfaces;
  List.rev !verdicts

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun ((i, p), cuts) ->
      Format.fprintf fmt "%s.%s: %s@," i p
        (String.concat ", " (List.map string_of_float cuts)))
    (List.sort compare t.iface);
  List.iter
    (fun (r, cuts) ->
      Format.fprintf fmt "link.%s: %s@," r
        (String.concat ", " (List.map string_of_float cuts)))
    t.link;
  List.iter
    (fun (r, cuts) ->
      Format.fprintf fmt "node.%s: %s@," r
        (String.concat ", " (List.map string_of_float cuts)))
    t.node;
  Format.fprintf fmt "@]"
