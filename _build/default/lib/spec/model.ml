module Expr = Sekitei_expr.Expr

type tag = Degradable | Upgradable | Neither

type property = { prop_name : string; prop_default : float; prop_tag : tag }

type iface = {
  iface_name : string;
  properties : property list;
  cross_transforms : (string * Expr.t) list;
  cross_consumes : (string * Expr.t) list;
  cross_conditions : Expr.cond list;
  cross_cost : Expr.t;
}

type component = {
  comp_name : string;
  requires : string list;
  provides : string list;
  conditions : Expr.cond list;
  effects : (string * string * Expr.t) list;
  consumes : (string * Expr.t) list;
  place_cost : Expr.t;
  placeable : bool;
}

type goal =
  | Placed of string * Sekitei_network.Topology.node_id
  | Available of string * string * Sekitei_network.Topology.node_id * float

type app = {
  interfaces : iface list;
  components : component list;
  pre_placed : (string * Sekitei_network.Topology.node_id) list;
  goals : goal list;
}

let property ?(default = 0.) ?(tag = Degradable) name =
  { prop_name = name; prop_default = default; prop_tag = tag }

let capacity_capped p =
  Expr.(min_ (var p) (var "link.lbw"))

let iface ?cross_transforms ?cross_consumes ?(cross_conditions = [])
    ?cross_cost ~properties name =
  let primary =
    match properties with
    | p :: _ -> p.prop_name
    | [] -> invalid_arg "Model.iface: at least one property required"
  in
  let cross_transforms =
    match cross_transforms with
    | Some ts -> ts
    | None -> [ (primary, capacity_capped primary) ]
  in
  let cross_consumes =
    match cross_consumes with
    | Some cs -> cs
    | None -> [ ("lbw", capacity_capped primary) ]
  in
  let cross_cost =
    match cross_cost with
    | Some c -> c
    | None -> Expr.(Add (Const 1., Div (Var primary, Const 10.)))
  in
  { iface_name = name; properties; cross_transforms; cross_consumes;
    cross_conditions; cross_cost }

let component ?(requires = []) ?(provides = []) ?(conditions = [])
    ?(effects = []) ?(consumes = []) ?(place_cost = Expr.Const 1.)
    ?(placeable = true) name =
  { comp_name = name; requires; provides; conditions; effects; consumes;
    place_cost; placeable }

let find_iface app name =
  List.find_opt (fun i -> String.equal i.iface_name name) app.interfaces

let find_component app name =
  List.find_opt (fun c -> String.equal c.comp_name name) app.components

let find_property iface name =
  List.find_opt (fun p -> String.equal p.prop_name name) iface.properties

let qualified iface prop = iface ^ "." ^ prop

let primary_property iface =
  match iface.properties with
  | p :: _ -> p
  | [] -> assert false (* forbidden by the constructor *)

let pp_tag fmt = function
  | Degradable -> Format.pp_print_string fmt "degradable"
  | Upgradable -> Format.pp_print_string fmt "upgradable"
  | Neither -> Format.pp_print_string fmt "neither"

let pp_iface fmt i =
  Format.fprintf fmt "@[<v 2>interface %s {" i.iface_name;
  List.iter
    (fun p ->
      Format.fprintf fmt "@,property %s (default %g, %a);" p.prop_name
        p.prop_default pp_tag p.prop_tag)
    i.properties;
  List.iter
    (fun (p, e) -> Format.fprintf fmt "@,cross %s := %a;" p Expr.pp e)
    i.cross_transforms;
  List.iter
    (fun (r, e) -> Format.fprintf fmt "@,consume link.%s -= %a;" r Expr.pp e)
    i.cross_consumes;
  List.iter
    (fun c -> Format.fprintf fmt "@,condition %a;" Expr.pp_cond c)
    i.cross_conditions;
  Format.fprintf fmt "@,cost %a;" Expr.pp i.cross_cost;
  Format.fprintf fmt "@]@,}"

let pp_component fmt c =
  Format.fprintf fmt "@[<v 2>component %s {" c.comp_name;
  if c.requires <> [] then
    Format.fprintf fmt "@,requires %s;" (String.concat ", " c.requires);
  if c.provides <> [] then
    Format.fprintf fmt "@,provides %s;" (String.concat ", " c.provides);
  List.iter
    (fun cond -> Format.fprintf fmt "@,condition %a;" Expr.pp_cond cond)
    c.conditions;
  List.iter
    (fun (i, p, e) ->
      Format.fprintf fmt "@,effect %s := %a;" (qualified i p) Expr.pp e)
    c.effects;
  List.iter
    (fun (r, e) -> Format.fprintf fmt "@,consume node.%s -= %a;" r Expr.pp e)
    c.consumes;
  Format.fprintf fmt "@,cost %a;" Expr.pp c.place_cost;
  if not c.placeable then Format.fprintf fmt "@,anchored;";
  Format.fprintf fmt "@]@,}"

let pp_goal fmt = function
  | Placed (c, n) -> Format.fprintf fmt "placed(%s, n%d)" c n
  | Available (i, p, n, v) ->
      Format.fprintf fmt "%s.%s >= %g @@ n%d" i p v n
