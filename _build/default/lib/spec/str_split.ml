let split_once s sep =
  let n = String.length s and m = String.length sep in
  if m = 0 then invalid_arg "Str_split.split_once: empty separator";
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sep then
      Some (String.sub s 0 i, String.sub s (i + m) (n - i - m))
    else find (i + 1)
  in
  find 0
