(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (section 4), runs the post-processing and
   level-sensitivity ablations, and finishes with Bechamel
   microbenchmarks of the planner phases. *)

open Bechamel
open Toolkit
module Media = Sekitei_domains.Media
module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Compile = Sekitei_core.Compile
module Plrg = Sekitei_core.Plrg
module Scenarios = Sekitei_harness.Scenarios
module Table2 = Sekitei_harness.Table2
module Figures = Sekitei_harness.Figures
module Table = Sekitei_util.Ascii_table
module Leveling = Sekitei_spec.Leveling

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=');
  flush stdout

(* ------------------------------------------------------------------ *)
(* Paper exhibits                                                      *)
(* ------------------------------------------------------------------ *)

let run_exhibits () =
  section "Table 1: resource level scenarios";
  print_string (Figures.table1 ());
  section "Figures 3-4: Tiny network, greedy failure vs leveled plan";
  print_string (Figures.fig3_4 ());
  section "Figure 5: cost-function tradeoff";
  print_string (Figures.fig5 ());
  section "Figure 9: Small network, suboptimal vs optimal plan";
  print_string (Figures.fig9 ());
  section "Figure 10: Large transit-stub network";
  print_string (Figures.fig10 ());
  section "Table 2: scalability evaluation";
  let rows = Table2.run () in
  print_string (Table2.render rows);
  section "Ablation: original Sekitei post-processing";
  print_string (Figures.postprocess_ablation ())

(* ------------------------------------------------------------------ *)
(* Level-sensitivity sweep (paper section 6, future work)              *)
(* ------------------------------------------------------------------ *)

let level_sensitivity () =
  section "Ablation: number of levels vs planner effort (Small network)";
  let sc = Scenarios.small () in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "M cutpoints"; "actions"; "plan cost bound"; "RG nodes"; "search ms" ]
  in
  let cut_sets =
    [
      [ 100. ];
      [ 90.; 100. ];
      [ 70.; 90.; 100. ];
      [ 30.; 70.; 90.; 100. ];
      [ 15.; 30.; 50.; 70.; 90.; 100. ];
    ]
  in
  List.iter
    (fun cuts ->
      let leveling =
        Leveling.propagate sc.Scenarios.app
          (Leveling.with_iface Leveling.empty "M" "ibw" cuts)
      in
      let o =
        Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling)
      in
      Table.add_row t
        [
          String.concat "," (List.map (Printf.sprintf "%g") cuts);
          string_of_int o.Planner.stats.Planner.total_actions;
          (match o.Planner.result with
          | Ok p -> Table.float_cell p.Plan.cost_lb
          | Error _ -> "no plan");
          string_of_int o.Planner.stats.Planner.rg_created;
          Printf.sprintf "%.0f" o.Planner.stats.Planner.t_search_ms;
        ])
    cut_sets;
  print_string (Table.render t)

(* ------------------------------------------------------------------ *)
(* Network-size scaling sweep                                          *)
(* ------------------------------------------------------------------ *)

(* The paper's abstract promises a characterization of scaling behaviour
   for various network configurations; Table 2 gives three points.  This
   sweep fills in the curve: transit-stub networks of growing size, same
   application, scenario C levels. *)
let size_scaling () =
  section "Scaling: planner effort vs network size (transit-stub, scenario C)";
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "nodes"; "leveled actions"; "PLRG props"; "RG nodes"; "search ms" ]
  in
  List.iter
    (fun stub_size ->
      let rng = Sekitei_util.Prng.create ~seed:0xC0FFEEL in
      let topo =
        Sekitei_network.Generators.transit_stub ~rng ~transit:3
          ~stubs_per_transit:3 ~stub_size ()
      in
      (* server in the first stub, client in the second, both one hop
         inside their stubs when possible *)
      let module R = Sekitei_network.Routing in
      let server = 3 and client = 3 + stub_size in
      if R.hop_distance topo server client <> None then begin
        let app = Sekitei_domains.Media.app ~server ~client () in
        let leveling = Sekitei_domains.Media.leveling Sekitei_domains.Media.C app in
        let o = Planner.plan (Planner.request topo app ~leveling) in
        Table.add_row t
          [
            string_of_int (Sekitei_network.Topology.node_count topo);
            string_of_int o.Planner.stats.Planner.total_actions;
            string_of_int o.Planner.stats.Planner.plrg_props;
            string_of_int o.Planner.stats.Planner.rg_created;
            Printf.sprintf "%.0f" o.Planner.stats.Planner.t_search_ms;
          ]
      end
      else
        (* Keep the row so a generator regression is visible instead of a
           silently shorter table. *)
        Table.add_row t
          [
            string_of_int (Sekitei_network.Topology.node_count topo);
            "-"; "-"; "-"; "skipped (disconnected)";
          ])
    [ 2; 4; 6; 10; 14; 20 ];
  print_string (Table.render t)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let microbenches () =
  let tiny = Scenarios.tiny () in
  let small = Scenarios.small () in
  let solve sc level () =
    let leveling = Media.leveling level sc.Scenarios.app in
    ignore
      (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling))
  in
  let compile sc level () =
    let leveling = Media.leveling level sc.Scenarios.app in
    ignore (Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling)
  in
  let plrg sc level =
    let leveling = Media.leveling level sc.Scenarios.app in
    let pb = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
    fun () -> ignore (Plrg.build pb)
  in
  (* Hot-loop counting under the null handle: this is the cost every
     instrumented search loop pays when nothing listens, and the number
     that must stay branch-cheap (a handful of ns) for the always-on
     claim to hold.  [count] adds a hashtable lookup per call; the
     pre-resolved [counter] handle is the branch + integer add. *)
  let module Telemetry = Sekitei_telemetry.Telemetry in
  let null_count () =
    for _ = 1 to 1000 do
      Telemetry.count Telemetry.null "bench.counter" 1
    done
  in
  let null_incr =
    let c = Telemetry.counter Telemetry.null "bench.counter" in
    fun () ->
      for _ = 1 to 1000 do
        Telemetry.incr c 1
      done
  in
  let registry_observe =
    let module Registry = Sekitei_telemetry.Registry in
    let reg = Registry.create () in
    let h = Registry.histogram reg "bench.hist" in
    fun () ->
      for i = 1 to 1000 do
        Registry.observe h (float_of_int i)
      done
  in
  let tests =
    Test.make_grouped ~name:"sekitei"
      [
        Test.make ~name:"compile/tiny-C" (Staged.stage (compile tiny Media.C));
        Test.make ~name:"compile/small-E" (Staged.stage (compile small Media.E));
        Test.make ~name:"plrg/small-C" (Staged.stage (plrg small Media.C));
        Test.make ~name:"solve/tiny-A-greedy" (Staged.stage (solve tiny Media.A));
        Test.make ~name:"solve/tiny-C" (Staged.stage (solve tiny Media.C));
        Test.make ~name:"solve/small-C" (Staged.stage (solve small Media.C));
        Test.make ~name:"telemetry/null-count-1k" (Staged.stage null_count);
        Test.make ~name:"telemetry/null-incr-1k" (Staged.stage null_incr);
        Test.make ~name:"telemetry/registry-observe-1k"
          (Staged.stage registry_observe);
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~kde:None () in
  section "Bechamel microbenchmarks (per-call wall clock)";
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] in
  List.iter
    (fun name ->
      match Analyze.OLS.estimates (Hashtbl.find results name) with
      | Some (est :: _) ->
          Printf.printf "%-28s %14.1f us/run\n" name (est /. 1e3)
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    (List.sort compare names)

(* ------------------------------------------------------------------ *)
(* Machine-readable mode: --json [--tag TAG] [--out FILE] [--check]    *)
(*                        [--repeat N] [--jobs N] [--warm]             *)
(*                        [--baseline FILE [--max-regress PCT]]        *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let json_mode () =
  let module Bench_json = Sekitei_harness.Bench_json in
  let rec opt_arg flag = function
    | [] | [ _ ] -> None
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> opt_arg flag rest
  in
  let argv = Array.to_list Sys.argv in
  let tag = opt_arg "--tag" argv in
  let out = Option.value (opt_arg "--out" argv) ~default:"BENCH_rg.json" in
  let check = List.mem "--check" argv in
  let baseline = opt_arg "--baseline" argv in
  let max_regress =
    match opt_arg "--max-regress" argv with
    | None -> 50.
    | Some s -> (
        match float_of_string_opt s with
        | Some v -> v
        | None ->
            Printf.eprintf "bench json: bad --max-regress %S\n" s;
            exit 2)
  in
  let int_arg flag default =
    match opt_arg flag argv with
    | None -> default
    | Some s -> (
        match int_of_string_opt s with
        | Some v -> v
        | None ->
            Printf.eprintf "bench json: bad %s %S\n" flag s;
            exit 2)
  in
  let repeat = int_arg "--repeat" 1 in
  (* --jobs 0 (or negative) = one worker per recommended domain. *)
  let jobs =
    match int_arg "--jobs" 1 with
    | j when j >= 1 -> j
    | _ -> Sekitei_util.Domain_pool.default_jobs ()
  in
  (* --warm additionally times session re-plans (warm_search_ms). *)
  let warm = List.mem "--warm" argv in
  (* --no-metrics disarms the registry + flight recorder the bench
     otherwise arms on every run (the production configuration); the
     A/B against a default run is the observability overhead number
     EXPERIMENTS.md tracks. *)
  let metrics_armed = not (List.mem "--no-metrics" argv) in
  let records = Bench_json.run_default ~repeat ~jobs ~warm ~metrics_armed () in
  let doc = Bench_json.to_json ?tag records in
  Bench_json.write_file out doc;
  (if check then
     (* Deterministic output for the cram suite: re-parse what was written
        and report only the record count. *)
     match Bench_json.parse_check doc with
     | Ok n -> Printf.printf "bench json: %d records ok\n" n
     | Error e ->
         Printf.eprintf "bench json: %s\n" e;
         exit 1
   else begin
     print_string doc;
     Printf.eprintf "wrote %s\n" out
   end);
  match baseline with
  | None -> ()
  | Some path -> (
      match Bench_json.diff_baseline ~baseline:(read_file path) records with
      | Error e ->
          Printf.eprintf "bench json: %s\n" e;
          exit 1
      | Ok deltas -> (
          if not check then print_string (Bench_json.render_deltas deltas);
          match Bench_json.regressions ~max_regress deltas with
          | [] ->
              Printf.printf "bench gate: ok (max regress %.0f%%)\n" max_regress
          | bad ->
              Printf.printf "bench gate: %d metric(s) regressed >%.0f%%:\n"
                (List.length bad) max_regress;
              print_string (Bench_json.render_deltas bad);
              exit 1))

let () =
  if Array.exists (fun a -> a = "--json") Sys.argv then json_mode ()
  else begin
    run_exhibits ();
    level_sensitivity ();
    size_scaling ();
    microbenches ();
    print_newline ()
  end
