(** Static preflight analysis of a compiled problem — structural
    infeasibility proofs and suspicious-specification warnings, without
    running the SLRG/RG search.

    Checks performed (codes from {!Sekitei_util.Diagnostic}):

    - [SKT101] (warning) interfaces with no pre-placed source and no
      placeable producing component;
    - [SKT102] (warning) components with no resource-feasible leveled
      placement on any node — their demand exceeds every capacity at
      every level, judged on the same interval infima the compiler's
      admissible cost bounds use;
    - [SKT103] (warning) interface level grids that do not tile
      [[0, inf)] — gaps, overlaps, a positive first cutpoint or a finite
      top (unreachable through the DSL, possible on hand-built problems);
    - [SKT104] (error) a topology cut — union-find over the live links —
      separating every producer of a required interface from a goal
      node, for interfaces producible on the network as a whole;
    - [SKT105] (error) goal propositions unreachable in the PLRG
      relaxation;
    - [SKT106] (error) goal components with no feasible placement
      action on their goal node.

    Dead leveled actions are not diagnosed here: {!Sekitei_core.Compile}
    already prunes them during compilation and reports the count as
    [Problem.pruned_actions] (the [analysis.pruned_actions] counter). *)

(** [check pb] returns all diagnostics, in check order (use
    {!Sekitei_util.Diagnostic.by_severity} to sort errors first).
    [plrg] avoids rebuilding a PLRG the caller already has. *)
val check :
  ?plrg:Sekitei_core.Plrg.t -> Sekitei_core.Problem.t ->
  Sekitei_util.Diagnostic.t list

(** Machine-readable report: action/pruned counts, error/warning
    totals, and the diagnostics sorted errors-first. *)
val report_json :
  Sekitei_core.Problem.t -> Sekitei_util.Diagnostic.t list ->
  Sekitei_util.Json.t
