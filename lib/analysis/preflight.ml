(* Static preflight over a compiled problem: structural infeasibility
   and suspicious-specification checks that need no search.  See the
   code table in {!Sekitei_util.Diagnostic}. *)

module I = Sekitei_util.Interval
module D = Sekitei_util.Diagnostic
module Uf = Sekitei_util.Union_find
module Topology = Sekitei_network.Topology
module Model = Sekitei_spec.Model
module Problem = Sekitei_core.Problem
module Prop = Sekitei_core.Prop
module Action = Sekitei_core.Action
module Plrg = Sekitei_core.Plrg

let node_name (pb : Problem.t) n = (Topology.get_node pb.topo n).Topology.node_name
let iface_name (pb : Problem.t) i = pb.ifaces.(i).Model.iface_name
let comp_name (pb : Problem.t) c = pb.comps.(c).Model.comp_name

(* Goal propositions decoded to (comp, node); [Available] goals were
   rewritten into sink components by compilation, so [Placed] is total. *)
let goal_placements (pb : Problem.t) =
  Array.to_list pb.goal_props
  |> List.filter_map (fun pid ->
         match Prop.of_id pb.props pid with
         | Prop.Placed (c, n) -> Some (c, n)
         | Prop.Avail _ -> None)

(* SKT101: interfaces nothing can produce — no pre-placed source and no
   placeable providing component.  Merely suspicious (the interface may
   be irrelevant to the goals), so a warning; goal-relevant cases are
   errors via the PLRG check. *)
let check_producers (pb : Problem.t) =
  let produced = Array.make (Array.length pb.ifaces) false in
  List.iter
    (fun (s : Problem.source) -> produced.(s.src_iface) <- true)
    pb.sources;
  Array.iter
    (fun (c : Model.component) ->
      if c.Model.placeable then
        List.iter
          (fun prov -> produced.(Problem.iface_index pb prov) <- true)
          c.Model.provides)
    pb.comps;
  let out = ref [] in
  Array.iteri
    (fun i p ->
      if not p then
        out :=
          D.warning ~code:"SKT101"
            ~loc:(Printf.sprintf "interface %s" (iface_name pb i))
            "no pre-placed source and no placeable component produces it"
          :: !out)
    produced;
  List.rev !out

(* SKT102/SKT106: components with no resource-feasible leveled placement
   left after grounding and pruning.  For a goal component the absence on
   its goal node is a proof of infeasibility (SKT106, error); elsewhere
   it is a warning (SKT102). *)
let check_placements (pb : Problem.t) =
  let n_comps = Array.length pb.comps in
  let anywhere = Array.make n_comps false in
  let at = Hashtbl.create 16 in
  Array.iter
    (fun (a : Action.t) ->
      match a.Action.kind with
      | Action.Place { comp; node } ->
          anywhere.(comp) <- true;
          Hashtbl.replace at (comp, node) ()
      | Action.Cross _ -> ())
    pb.actions;
  let goals = goal_placements pb in
  let goal_comps = List.map fst goals in
  let out = ref [] in
  List.iter
    (fun (c, n) ->
      if not (Hashtbl.mem at (c, n)) then
        out :=
          D.error ~code:"SKT106"
            ~loc:(Printf.sprintf "goal placed(%s,%s)" (comp_name pb c) (node_name pb n))
            ~evidence:
              [
                ( "placements_elsewhere",
                  string_of_bool anywhere.(c) );
              ]
            "no resource-feasible leveled placement of the goal component \
             on its goal node survives grounding"
          :: !out)
    goals;
  Array.iteri
    (fun c (comp : Model.component) ->
      if
        comp.Model.placeable && (not anywhere.(c))
        && not (List.mem c goal_comps)
      then
        out :=
          D.warning ~code:"SKT102"
            ~loc:(Printf.sprintf "component %s" comp.Model.comp_name)
            "no resource-feasible leveled placement on any node survives \
             grounding (demand exceeds every capacity at every level)"
          :: !out)
    pb.comps;
  List.rev !out

(* SKT103: interface level grids that do not tile [0, inf).  The DSL's
   cutpoint constructor cannot produce these, but hand-built problems
   can; gaps and overlaps are suspicious rather than provably infeasible
   (plans simply never use the missing values). *)
let check_level_grids (pb : Problem.t) =
  let out = ref [] in
  Array.iteri
    (fun i lvls ->
      let loc = Printf.sprintf "interface %s" (iface_name pb i) in
      let n = Array.length lvls in
      if n > 0 then begin
        if I.lo lvls.(0) > 0. then
          out :=
            D.warning ~code:"SKT103" ~loc
              ~evidence:[ ("first_level", I.to_string lvls.(0)) ]
              "level grid starts above 0: smaller values have no level"
            :: !out;
        for k = 0 to n - 2 do
          let hi = I.hi lvls.(k) and lo = I.lo lvls.(k + 1) in
          if hi < lo then
            out :=
              D.warning ~code:"SKT103" ~loc
                ~evidence:
                  [ ("gap", Printf.sprintf "[%g,%g)" hi lo) ]
                "level grid has a gap between consecutive levels"
              :: !out
          else if hi > lo then
            out :=
              D.warning ~code:"SKT103" ~loc
                ~evidence:
                  [
                    ("levels",
                     I.to_string lvls.(k) ^ " and " ^ I.to_string lvls.(k + 1));
                  ]
                "level grid has overlapping levels: values map to two levels"
              :: !out
        done;
        if Float.is_finite (I.hi lvls.(n - 1)) then
          out :=
            D.warning ~code:"SKT103" ~loc
              ~evidence:[ ("top_level", I.to_string lvls.(n - 1)) ]
              "level grid tops out at a finite value: larger values have \
               no level"
            :: !out
      end)
    pb.iface_levels;
  List.rev !out

(* Interfaces producible using only hosts from [region] (or any alive
   node when [region] is [None]): seed with pre-placed sources, then a
   fixpoint over placeable components that can be hosted there. *)
let producible_ifaces (pb : Problem.t) region =
  let in_region n =
    Topology.node_alive pb.topo n
    && match region with None -> true | Some f -> f n
  in
  let achieved = Array.make (Array.length pb.ifaces) false in
  List.iter
    (fun (s : Problem.source) ->
      if in_region s.src_node then achieved.(s.src_iface) <- true)
    pb.sources;
  let hostable c =
    match pb.comp_allowed_node.(c) with
    | Some only -> in_region only
    | None ->
        let n = Topology.node_count pb.topo in
        let rec any k = k < n && (in_region k || any (k + 1)) in
        any 0
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun c (comp : Model.component) ->
        if comp.Model.placeable && hostable c then
          let ready =
            List.for_all
              (fun r -> achieved.(Problem.iface_index pb r))
              comp.Model.requires
          in
          if ready then
            List.iter
              (fun prov ->
                let o = Problem.iface_index pb prov in
                if not achieved.(o) then begin
                  achieved.(o) <- true;
                  changed := true
                end)
              comp.Model.provides)
      pb.comps
  done;
  achieved

(* SKT104: a topology cut separates every producer of an interface a
   goal component needs from the goal node.  Connected components are
   computed with union-find over the live links; an interface is only
   reported here when it is producible on the network as a whole —
   interfaces nothing can produce anywhere are SKT101/SKT105 territory. *)
let check_topology_cuts (pb : Problem.t) =
  let n = Topology.node_count pb.topo in
  let uf = Uf.create n in
  Array.iter
    (fun (l : Topology.link) ->
      let a, b = l.Topology.ends in
      ignore (Uf.union uf a b))
    (Topology.links pb.topo);
  let globally = producible_ifaces pb None in
  let out = ref [] in
  List.iter
    (fun (c, gn) ->
      let region = Some (fun k -> Uf.same uf k gn) in
      let local = lazy (producible_ifaces pb region) in
      List.iter
        (fun r ->
          let i = Problem.iface_index pb r in
          if globally.(i) && not (Lazy.force local).(i) then
            out :=
              D.error ~code:"SKT104"
                ~loc:
                  (Printf.sprintf "goal placed(%s,%s)" (comp_name pb c)
                     (node_name pb gn))
                ~evidence:[ ("interface", iface_name pb i) ]
                "every producer of a required interface lies across a \
                 topology cut from the goal node"
              :: !out)
        pb.comps.(c).Model.requires)
    (goal_placements pb);
  List.rev !out

(* SKT105: goal propositions the PLRG relaxation cannot reach — the
   planner's own admissible bound already proves these plans impossible,
   before any search. *)
let check_plrg_goals (pb : Problem.t) plrg =
  List.map
    (fun pid ->
      D.error ~code:"SKT105"
        ~loc:(Printf.sprintf "goal %s" (Problem.prop_label pb pid))
        "unreachable in the PLRG relaxation: no admissible support chain \
         from the initial state")
    (Plrg.unreachable_goals plrg)

let check ?plrg (pb : Problem.t) =
  let plrg = match plrg with Some p -> p | None -> Plrg.build pb in
  check_producers pb @ check_placements pb @ check_level_grids pb
  @ check_topology_cuts pb @ check_plrg_goals pb plrg

let report_json (pb : Problem.t) diags =
  Sekitei_util.Json.Obj
    [
      ("actions", Sekitei_util.Json.Int (Array.length pb.actions));
      ("pruned_actions", Sekitei_util.Json.Int pb.pruned_actions);
      ("errors", Sekitei_util.Json.Int (List.length (D.errors diags)));
      ("warnings", Sekitei_util.Json.Int (List.length (D.warnings diags)));
      ("diagnostics", D.list_to_json (D.by_severity diags));
    ]
