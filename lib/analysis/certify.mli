(** Independent plan certifier: forward replay of an emitted plan
    against the compiled {!Sekitei_core.Problem} semantics, plus a
    bit-exact re-derivation of the plan's admissible cost bound from the
    specification's cost formulae.

    The checker is written against the Problem/Model/Expr definitions
    alone and deliberately shares no code with the planner's own replay
    machinery ({!Sekitei_core.Replay}) — a bug there cannot vouch for
    itself here.  Rejections carry the [SKT2xx] codes documented in
    {!Sekitei_util.Diagnostic}. *)

(** [check pb plan] returns [[]] iff the plan certifies; otherwise the
    first rejection encountered during forward replay (check order:
    topology liveness, logical preconditions, stream throttling,
    conditions, checked resource levels, consumption, outputs,
    per-action cost, then goals and the total cost bound). *)
val check :
  Sekitei_core.Problem.t -> Sekitei_core.Plan.t ->
  Sekitei_util.Diagnostic.t list

(** [ok pb plan] = [check pb plan = []]. *)
val ok : Sekitei_core.Problem.t -> Sekitei_core.Plan.t -> bool

(** Register this checker as the {!Sekitei_core.Certifier} hook, making
    [config.certify] (and [--verify]) live.  Idempotent. *)
val install : unit -> unit
