(* Independent plan certifier: replays an emitted plan forward against
   the compiled problem's semantics and re-derives its cost bound from
   the specification formulae.

   Deliberately shares no code with the search layers it audits
   (Rg/Replay/Slrg): the interpreter below is written from the Problem/
   Model/Expr definitions alone, so a bug in the planner's replay
   machinery cannot vouch for itself.  See DESIGN.md. *)

module I = Sekitei_util.Interval
module D = Sekitei_util.Diagnostic
module Expr = Sekitei_expr.Expr
module Topology = Sekitei_network.Topology
module Model = Sekitei_spec.Model
module Problem = Sekitei_core.Problem
module Prop = Sekitei_core.Prop
module Action = Sekitei_core.Action
module Plan = Sekitei_core.Plan

exception Reject of D.t

let reject ~code ~loc ?evidence fmt =
  Printf.ksprintf
    (fun m -> raise (Reject (D.make D.Error ~code ~loc ?evidence m)))
    fmt

let split_var v =
  match String.index_opt v '.' with
  | Some dot ->
      (String.sub v 0 dot, String.sub v (dot + 1) (String.length v - dot - 1))
  | None -> ("", v)

(* Mutable verification state: value intervals per stream and secondary
   property, cumulative resource consumption, and the achieved
   proposition set. *)
type st = {
  streams : (int * int, I.t) Hashtbl.t;
  secondaries : (int * int * string, I.t) Hashtbl.t;
  node_used : (int * string, float) Hashtbl.t;
  link_used : (int * string, float) Hashtbl.t;
  achieved : bool array;
}

let init_state (pb : Problem.t) =
  let st =
    {
      streams = Hashtbl.create 32;
      secondaries = Hashtbl.create 32;
      node_used = Hashtbl.create 32;
      link_used = Hashtbl.create 32;
      achieved = Array.copy pb.init;
    }
  in
  List.iter
    (fun (s : Problem.source) ->
      Hashtbl.replace st.streams (s.src_iface, s.src_node) s.src_interval;
      List.iter
        (fun (p, v) ->
          Hashtbl.replace st.secondaries (s.src_iface, s.src_node, p)
            (I.point v))
        s.src_secondary)
    pb.sources;
  st

(* Static node capacity minus what pre-placed components consumed before
   the plan starts; the reference every consumption check runs against. *)
let node_base (pb : Problem.t) node r =
  List.fold_left
    (fun acc (n, res, amt) ->
      if n = node && String.equal res r then acc -. amt else acc)
    (Problem.node_cap pb node r)
    pb.init_consumed

let node_remaining pb st node r =
  node_base pb node r
  -. Option.value (Hashtbl.find_opt st.node_used (node, r)) ~default:0.

let link_remaining (pb : Problem.t) st link r =
  Problem.link_cap pb link r
  -. Option.value (Hashtbl.find_opt st.link_used (link, r)) ~default:0.

(* Throttle a stream into the level a consumer assumes, under the
   primary property's tag: a degradable stream may be lowered into the
   level, an upgradable one raised, a rigid one must already overlap.
   Half-open suprema are exclusive, so a meet collapsing onto a single
   boundary value only succeeds against an exactly-attainable point. *)
let throttle tag cur assumed =
  let lo, hi =
    match tag with
    | Model.Degradable -> (I.lo assumed, Float.min (I.hi assumed) (I.hi cur))
    | Model.Upgradable -> (Float.max (I.lo assumed) (I.lo cur), I.hi assumed)
    | Model.Neither ->
        (Float.max (I.lo assumed) (I.lo cur), Float.min (I.hi assumed) (I.hi cur))
  in
  if hi > lo then Some (I.make lo hi)
  else if hi = lo && I.is_point cur && I.mem lo assumed then Some (I.point lo)
  else None

(* A checked level on a resource's exact remaining amount: the level
   must contain it, counting full capacity at the top cutpoint as
   satisfying "at least the top cutpoint". *)
let checked_ok rem ivl = I.mem rem ivl || rem = I.hi ivl

let secondary_default (pb : Problem.t) ~loc iface p =
  match Model.find_property pb.ifaces.(iface) p with
  | Some prop -> I.point prop.Model.prop_default
  | None -> reject ~code:"SKT205" ~loc "unknown property %s in a formula" p

let input_stream pb st ~loc iface node assumed =
  let tag = pb.Problem.iface_tags.(iface) in
  let name = pb.Problem.ifaces.(iface).Model.iface_name in
  match Hashtbl.find_opt st.streams (iface, node) with
  | None ->
      reject ~code:"SKT201" ~loc
        "required stream %s is not available on node %d" name node
  | Some cur -> (
      match throttle tag cur assumed with
      | Some eff ->
          Hashtbl.replace st.streams (iface, node) eff;
          eff
      | None ->
          reject ~code:"SKT202" ~loc
            ~evidence:
              [ ("stream", I.to_string cur); ("level", I.to_string assumed) ]
            "stream %s cannot be throttled into the assumed level" name)

let consume tbl ~key ~remaining ~loc ~code ~what amount =
  if not (Float.is_finite amount) then
    reject ~code ~loc "unbounded %s consumption" what;
  if remaining -. amount < -1e-9 then
    reject ~code ~loc
      ~evidence:
        [
          ("remaining", Printf.sprintf "%g" remaining);
          ("demand", Printf.sprintf "%g" amount);
        ]
      "%s overdrawn" what;
  Hashtbl.replace tbl key
    (amount +. Option.value (Hashtbl.find_opt tbl key) ~default:0.)

let narrow_output ~loc out_ivl assumed what =
  match I.inter out_ivl assumed with
  | Some x -> x
  | None ->
      reject ~code:"SKT206" ~loc
        ~evidence:
          [ ("computed", I.to_string out_ivl); ("level", I.to_string assumed) ]
        "computed %s output misses its declared level" what

let store_stream st iface node narrowed =
  let final =
    match Hashtbl.find_opt st.streams (iface, node) with
    | None -> narrowed
    | Some existing -> (
        match I.inter existing narrowed with
        | Some x -> x
        | None -> narrowed (* a fresh production supersedes *))
  in
  Hashtbl.replace st.streams (iface, node) final

(* Re-derivation of the action's admissible cost bound: the spec's cost
   formula at the infimum of the grounding environment — checked level
   intervals for resources, assumed level intervals for stream inputs,
   static capacity otherwise — plus the recorded adjustment.  This is
   the paper's "cost at the most optimistic operating point", recomputed
   from the Model formulae rather than trusted from the action. *)
let recheck_cost ~loc (pb : Problem.t) (a : Action.t) =
  let base =
    match a.Action.kind with
    | Action.Place { comp; node } ->
        let env v =
          match split_var v with
          | "node", r -> (
              match
                Array.find_opt (fun (r', _) -> String.equal r' r)
                  a.Action.checked_node
              with
              | Some (_, ivl) -> I.lo ivl
              | None -> Problem.node_cap pb node r)
          | iface_name, prop_name -> (
              match
                Array.find_opt
                  (fun (i, _) ->
                    String.equal pb.ifaces.(i).Model.iface_name iface_name)
                  a.Action.in_levels
              with
              | Some (i, ivl) ->
                  if String.equal prop_name (Problem.primary pb i) then
                    I.lo ivl
                  else I.lo I.full
              | None -> raise (Expr.Unbound_variable v))
        in
        Expr.eval ~env pb.comps.(comp).Model.place_cost
    | Action.Cross { iface; link; _ } ->
        let in_ivl =
          match a.Action.in_levels with
          | [| (_, ivl) |] -> ivl
          | _ ->
              reject ~code:"SKT207" ~loc
                "crossing does not carry exactly one input level"
        in
        let env v =
          match split_var v with
          | "link", r -> (
              match
                Array.find_opt (fun (r', _) -> String.equal r' r)
                  a.Action.checked_link
              with
              | Some (_, ivl) -> I.lo ivl
              | None -> Problem.link_cap pb link r)
          | "", p ->
              if String.equal p (Problem.primary pb iface) then I.lo in_ivl
              else I.lo I.full
          | _ -> raise (Expr.Unbound_variable v)
        in
        Expr.eval ~env pb.ifaces.(iface).Model.cross_cost
  in
  let expected = base +. a.Action.cost_extra in
  if not (Float.equal expected a.Action.cost_lb) then
    reject ~code:"SKT207" ~loc
      ~evidence:
        [
          ("recomputed", Printf.sprintf "%.17g" expected);
          ("recorded", Printf.sprintf "%.17g" a.Action.cost_lb);
        ]
      "action cost bound differs from the specification's formula at the \
       level infima"

let exec_place pb st ~loc (a : Action.t) comp node =
  if not (Topology.node_alive pb.Problem.topo node) then
    reject ~code:"SKT208" ~loc "placement on failed node %d" node;
  let c : Model.component = pb.Problem.comps.(comp) in
  Array.iter
    (fun (i, assumed) -> ignore (input_stream pb st ~loc i node assumed))
    a.Action.in_levels;
  let env v =
    match split_var v with
    | "node", r -> I.point (node_remaining pb st node r)
    | iface_name, prop_name -> (
        let i = Problem.iface_index pb iface_name in
        if String.equal prop_name (Problem.primary pb i) then
          match Hashtbl.find_opt st.streams (i, node) with
          | Some ivl -> ivl
          | None -> I.full (* a provide not yet computed *)
        else
          match Hashtbl.find_opt st.secondaries (i, node, prop_name) with
          | Some ivl -> ivl
          | None -> secondary_default pb ~loc i prop_name)
  in
  List.iter
    (fun cond ->
      if not (Expr.sat ~env cond) then
        reject ~code:"SKT205" ~loc "condition violated: %s"
          (Expr.cond_to_string cond))
    c.Model.conditions;
  Array.iter
    (fun (r, ivl) ->
      let rem = node_remaining pb st node r in
      if not (checked_ok rem ivl) then
        reject ~code:"SKT202" ~loc
          ~evidence:[ ("remaining", Printf.sprintf "%g" rem) ]
          "checked node level %s on %s violated" (I.to_string ivl) r)
    a.Action.checked_node;
  List.iter
    (fun (r, e) ->
      let amount = I.hi (Expr.eval_interval ~env e) in
      consume st.node_used ~key:(node, r)
        ~remaining:(node_remaining pb st node r)
        ~loc ~code:"SKT203"
        ~what:(Printf.sprintf "node %d resource %s" node r)
        amount)
    c.Model.consumes;
  Array.iter
    (fun (o, assumed) ->
      let prov = pb.Problem.ifaces.(o).Model.iface_name in
      let primary = Problem.primary pb o in
      let effect =
        match
          List.find_opt
            (fun (fi, fp, _) -> String.equal fi prov && String.equal fp primary)
            c.Model.effects
        with
        | Some (_, _, e) -> e
        | None -> reject ~code:"SKT206" ~loc "no effect computes %s" prov
      in
      let narrowed =
        narrow_output ~loc (Expr.eval_interval ~env effect) assumed prov
      in
      store_stream st o node narrowed;
      List.iter
        (fun (p : Model.property) ->
          if not (String.equal p.Model.prop_name primary) then
            let value =
              match
                List.find_opt
                  (fun (fi, fp, _) ->
                    String.equal fi prov && String.equal fp p.Model.prop_name)
                  c.Model.effects
              with
              | Some (_, _, e) -> Expr.eval_interval ~env e
              | None -> I.point p.Model.prop_default
            in
            Hashtbl.replace st.secondaries (o, node, p.Model.prop_name) value)
        pb.Problem.ifaces.(o).Model.properties)
    a.Action.out_levels

let exec_cross pb st ~loc (a : Action.t) iface link src dst =
  (match Topology.get_link pb.Problem.topo link with
  | l ->
      let x, y = l.Topology.ends in
      if not ((x = src && y = dst) || (x = dst && y = src)) then
        reject ~code:"SKT208" ~loc
          "link %d does not join nodes %d and %d" link src dst
  | exception Topology.Stale_link _ ->
      reject ~code:"SKT208" ~loc "link %d was removed from the topology" link);
  let ifc : Model.iface = pb.Problem.ifaces.(iface) in
  let primary = Problem.primary pb iface in
  let assumed_in =
    match a.Action.in_levels with
    | [| (_, ivl) |] -> ivl
    | _ -> reject ~code:"SKT202" ~loc "crossing carries no input level"
  in
  let eff = input_stream pb st ~loc iface src assumed_in in
  let env v =
    match split_var v with
    | "link", r -> I.point (link_remaining pb st link r)
    | "", p ->
        if String.equal p primary then eff
        else (
          match Hashtbl.find_opt st.secondaries (iface, src, p) with
          | Some ivl -> ivl
          | None -> secondary_default pb ~loc iface p)
    | _ -> reject ~code:"SKT205" ~loc "unexpected variable %s in cross formula" v
  in
  List.iter
    (fun cond ->
      if not (Expr.sat ~env cond) then
        reject ~code:"SKT205" ~loc "cross condition violated: %s"
          (Expr.cond_to_string cond))
    ifc.Model.cross_conditions;
  Array.iter
    (fun (r, ivl) ->
      let rem = link_remaining pb st link r in
      if not (checked_ok rem ivl) then
        reject ~code:"SKT202" ~loc
          ~evidence:[ ("remaining", Printf.sprintf "%g" rem) ]
          "checked link level %s on %s violated" (I.to_string ivl) r)
    a.Action.checked_link;
  (* Transforms are evaluated against the pre-consumption environment. *)
  let transformed =
    List.map
      (fun (p : Model.property) ->
        let p = p.Model.prop_name in
        match List.assoc_opt p ifc.Model.cross_transforms with
        | Some e -> (p, Expr.eval_interval ~env e)
        | None ->
            ( p,
              if String.equal p primary then eff
              else
                match Hashtbl.find_opt st.secondaries (iface, src, p) with
                | Some ivl -> ivl
                | None -> secondary_default pb ~loc iface p ))
      ifc.Model.properties
  in
  List.iter
    (fun (r, e) ->
      let amount = I.hi (Expr.eval_interval ~env e) in
      consume st.link_used ~key:(link, r)
        ~remaining:(link_remaining pb st link r)
        ~loc ~code:"SKT204"
        ~what:(Printf.sprintf "link %d resource %s" link r)
        amount)
    ifc.Model.cross_consumes;
  let assumed_out =
    match a.Action.out_levels with
    | [| (_, ivl) |] -> ivl
    | _ -> reject ~code:"SKT206" ~loc "crossing carries no output level"
  in
  List.iter
    (fun (p, ivl) ->
      if String.equal p primary then
        store_stream st iface dst (narrow_output ~loc ivl assumed_out p)
      else Hashtbl.replace st.secondaries (iface, dst, p) ivl)
    transformed

let exec pb st ~loc (a : Action.t) =
  Array.iter
    (fun pid ->
      if not st.achieved.(pid) then
        reject ~code:"SKT201" ~loc "precondition %s not established"
          (Problem.prop_label pb pid))
    a.Action.pre;
  (match a.Action.kind with
  | Action.Place { comp; node } -> exec_place pb st ~loc a comp node
  | Action.Cross { iface; link; src; dst } ->
      exec_cross pb st ~loc a iface link src dst);
  recheck_cost ~loc pb a;
  Array.iter (fun pid -> st.achieved.(pid) <- true) a.Action.add_closure

let run (pb : Problem.t) (plan : Plan.t) =
  let st = init_state pb in
  List.iteri
    (fun k (a : Action.t) ->
      let loc = Printf.sprintf "step %d (%s)" k a.Action.label in
      exec pb st ~loc a)
    plan.Plan.steps;
  Array.iter
    (fun pid ->
      if not st.achieved.(pid) then
        reject ~code:"SKT209"
          ~loc:(Printf.sprintf "goal %s" (Problem.prop_label pb pid))
          "goal proposition not satisfied at end of plan")
    pb.goal_props;
  (* Total bound: g accumulated along the regression path, i.e. the
     per-action bounds summed from the last step to the first. *)
  let recomputed =
    List.fold_left
      (fun acc (a : Action.t) -> acc +. a.Action.cost_lb)
      0.
      (List.rev plan.Plan.steps)
  in
  if not (Float.equal recomputed plan.Plan.cost_lb) then
    reject ~code:"SKT207" ~loc:"plan"
      ~evidence:
        [
          ("recomputed", Printf.sprintf "%.17g" recomputed);
          ("recorded", Printf.sprintf "%.17g" plan.Plan.cost_lb);
        ]
      "plan cost bound differs from the sum of its steps' bounds"

let check pb plan =
  match run pb plan with
  | () -> []
  | exception Reject d -> [ d ]
  | exception e ->
      [
        D.error ~code:"SKT207" ~loc:"plan" "certifier crashed: %s"
          (Printexc.to_string e);
      ]

let ok pb plan = check pb plan = []

let install () =
  Sekitei_core.Certifier.install (fun pb plan ->
      match check pb plan with
      | [] -> Ok ()
      | d :: _ -> Error (D.to_string d))
