(** Network model: nodes with computational resources, links with
    communication resources.

    The CPP's environment (paper section 2.1) is a wide-area network whose
    nodes carry resources such as CPU and whose links carry resources such
    as bandwidth.  Links are undirected with capacity shared between
    directions; the paper's evaluation distinguishes LAN links (bandwidth
    150) from WAN links (bandwidth 70), and the Table 2 "reserved LAN bw"
    column aggregates consumption per link class.

    {b Stable identities.}  Node and link ids are {e persistent}: no
    mutation ({!Sekitei_network.Mutate}) ever renumbers a surviving id.
    Removing a link (directly or by failing an incident node) tombstones
    its id — the id keeps denoting that physical link forever, and every
    id-keyed accessor ({!get_link}, {!link_resource}, {!peer}) raises
    {!Stale_link} for it instead of silently aliasing a neighbor.  The
    iteration hot paths ({!links}, {!adjacent}) run over an internal
    dense view of the live links, so grounding/replay performance is
    unaffected by tombstones.  Failed nodes likewise stay resident (ids
    stable, resources zeroed by [Mutate.fail_node]) with their liveness
    exposed through {!node_alive}. *)

type node_id = int
type link_id = int
type link_kind = Lan | Wan

(** Raised by id-keyed link accessors for a link that existed but was
    removed by a mutation (tombstoned).  Ids that never existed raise
    [Invalid_argument] instead. *)
exception Stale_link of link_id

type node = {
  node_id : node_id;
  node_name : string;
  node_resources : (string * float) list;  (** e.g. [("cpu", 30.)] *)
}

type link = {
  link_id : link_id;
  ends : node_id * node_id;
  kind : link_kind;
  link_resources : (string * float) list;  (** e.g. [("lbw", 150.)] *)
}

type t

(** {1 Construction} *)

(** [make ~nodes ~links] builds a topology.  Node ids must be exactly
    [0 .. n-1]; link ids exactly [0 .. m-1]; link endpoints must be valid
    and distinct.  Everything starts live.
    @raise Invalid_argument otherwise. *)
val make : nodes:node list -> links:link list -> t

(** Convenience node/link constructors with the paper's defaults
    (CPU 30, LAN bandwidth 150, WAN bandwidth 70). *)
val node : ?cpu:float -> ?resources:(string * float) list -> int -> string -> node

val link :
  ?bw:float -> ?resources:(string * float) list -> link_kind -> int -> int -> int -> link

(** {1 Access} *)

val node_count : t -> int

(** Number of {e live} links. *)
val link_count : t -> int

(** Exclusive upper bound on every link id this topology has ever issued
    (live or tombstoned) — size arrays indexed by stable link id with
    this. *)
val link_id_bound : t -> int

(** All nodes, including failed ones (node ids are always stable). *)
val nodes : t -> node array

(** Dense view of the live links, in ascending stable-id order.  After a
    removal the array's index no longer equals [link_id] — iterate the
    records and use their [link_id] field. *)
val links : t -> link array

val get_node : t -> node_id -> node

(** [get_link t id] is the link with stable id [id].
    @raise Stale_link when the link was removed by a mutation.
    @raise Invalid_argument when [id] was never issued. *)
val get_link : t -> link_id -> link

(** Whether [id] currently denotes a live link ([false] for tombstoned
    and never-issued ids alike). *)
val link_is_live : t -> link_id -> bool

(** Tombstoned link ids, ascending. *)
val dead_links : t -> link_id list

(** Whether the node is live ([false] once it has failed).
    @raise Invalid_argument on out-of-range ids. *)
val node_alive : t -> node_id -> bool

(** Failed node ids, ascending. *)
val failed_nodes : t -> node_id list

(** Neighbours over live links only: [(peer, link_id)] list. *)
val adjacent : t -> node_id -> (node_id * link_id) list

(** The (lowest-id) live link joining two nodes, if any; symmetric. *)
val find_link : t -> node_id -> node_id -> link option

(** [node_resource t id name] looks up a node resource.
    @raise Not_found when absent. *)
val node_resource : t -> node_id -> string -> float

(** [link_resource t id name] looks up a link resource.
    @raise Not_found when absent.
    @raise Stale_link on tombstoned ids. *)
val link_resource : t -> link_id -> string -> float

(** The other endpoint of a link.
    @raise Stale_link on tombstoned ids. *)
val peer : t -> link_id -> node_id -> node_id

(** [node_by_name t name] finds a node by name.  @raise Not_found *)
val node_by_name : t -> string -> node

(** Connectivity over live links; failed nodes (which have no live
    links) count, so a topology with a failed node is disconnected. *)
val is_connected : t -> bool

(** All resource names appearing on any node (resp. live link). *)
val node_resource_names : t -> string list

val link_resource_names : t -> string list

(** {1 Identity-stable mutation primitives}

    The persistent building blocks behind {!Sekitei_network.Mutate}; all
    return a new topology and never renumber an id.  Prefer [Mutate]'s
    higher-level operations in application code. *)

(** Replace a node's resource list.  @raise Invalid_argument on unknown
    ids. *)
val with_node_resources : t -> node_id -> (string * float) list -> t

(** Replace a link's resource list.  @raise Stale_link on tombstoned
    ids, [Invalid_argument] on never-issued ones. *)
val with_link_resources : t -> link_id -> (string * float) list -> t

(** [map_link_resources t f] rewrites every live link's resource list in
    one pass (dead links are untouched). *)
val map_link_resources : t -> (link -> (string * float) list) -> t

(** Tombstone a link; its id keeps denoting the removed physical link
    and all id-keyed accessors raise {!Stale_link} for it from now on.
    @raise Stale_link when already removed. *)
val remove_link : t -> link_id -> t

(** Mark a node failed and tombstone its incident live links.  The node
    record itself stays resident (ids stable); idempotent on liveness.
    @raise Invalid_argument on out-of-range ids. *)
val mark_node_failed : t -> node_id -> t
