(** Topology perturbations for adaptation experiments.

    Redeployment scenarios (paper section 6) start from "the environment
    changed": a link degraded, a node failed, capacity was re-provisioned.
    These functions derive a new topology from an existing one; they never
    mutate in place. *)

open Topology

(** [set_link_resource t link res v] returns a copy with the link's
    resource set (added if absent). *)
val set_link_resource : t -> link_id -> string -> float -> t

(** [set_node_resource t node res v] likewise for a node. *)
val set_node_resource : t -> node_id -> string -> float -> t

(** [scale_links ?kind t res factor] multiplies [res] on every link (of
    the given kind, default all) by [factor]. *)
val scale_links : ?kind:link_kind -> t -> string -> float -> t

(** [remove_link t link] deletes a link (remaining links are re-numbered
    densely; returns the new topology).  Callers holding link ids across
    the mutation must translate them with {!renumber_map} — a pre-delta
    id silently names a {e different} surviving link afterwards. *)
val remove_link : t -> link_id -> t

(** [renumber_map ~removed ~link_count] is the old-to-new link id mapping
    induced by deleting the [removed] ids from a topology with
    [link_count] links and renumbering densely (what {!remove_link} and
    {!fail_node} do): [None] for removed (or out-of-range) ids, [Some]
    of the post-delta id otherwise.  Survivors keep their relative
    order. *)
val renumber_map : removed:link_id list -> link_count:int -> link_id -> link_id option

(** [fail_node t node] models a node failure: its CPU-style resources all
    drop to 0 and every incident link is removed.  The node itself remains
    (ids stay stable). *)
val fail_node : t -> node_id -> t
