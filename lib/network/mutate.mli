(** Topology perturbations for adaptation experiments.

    Redeployment scenarios (paper section 6) start from "the environment
    changed": a link degraded, a node failed, capacity was re-provisioned.
    These functions derive a new topology from an existing one; they never
    mutate in place.

    {b Identities are stable.}  No operation here renumbers a node or
    link id: {!remove_link} and {!fail_node} tombstone the affected link
    ids ({!Sekitei_network.Topology.Stale_link} from then on) and every
    surviving link keeps its id.  Link ids held across any mutation
    therefore stay valid and keep denoting the same physical link —
    there is no translation map to apply.  Unknown ids raise instead of
    silently no-opping: [Invalid_argument] for ids that never existed,
    [Topology.Stale_link] for ids removed by an earlier mutation. *)

open Topology

(** [set_link_resource t link res v] returns a copy with the link's
    resource set (added if absent).
    @raise Stale_link on a removed link, [Invalid_argument] on a
    never-issued id. *)
val set_link_resource : t -> link_id -> string -> float -> t

(** [set_node_resource t node res v] likewise for a node.
    @raise Invalid_argument on unknown node ids. *)
val set_node_resource : t -> node_id -> string -> float -> t

(** [scale_links ?kind t res factor] multiplies [res] on every live link
    (of the given kind, default all) by [factor]. *)
val scale_links : ?kind:link_kind -> t -> string -> float -> t

(** [remove_link t link] tombstones a link.  The id keeps denoting the
    removed physical link; surviving links keep their ids unchanged.
    @raise Stale_link when the link was already removed,
    [Invalid_argument] on never-issued ids. *)
val remove_link : t -> link_id -> t

(** [fail_node t node] models a node failure: its resources all drop to
    0, every incident live link is tombstoned, and the node is marked
    dead ({!Sekitei_network.Topology.node_alive} returns [false]).  The
    node record itself remains; all ids stay stable.
    @raise Invalid_argument on unknown node ids. *)
val fail_node : t -> node_id -> t
