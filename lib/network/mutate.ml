open Topology

let set_link_resource t link res v =
  if link < 0 || link >= link_id_bound t then
    invalid_arg (Printf.sprintf "Mutate.set_link_resource: unknown link %d" link);
  let l = get_link t link in
  with_link_resources t link ((res, v) :: List.remove_assoc res l.link_resources)

let set_node_resource t node res v =
  if node < 0 || node >= node_count t then
    invalid_arg (Printf.sprintf "Mutate.set_node_resource: unknown node %d" node);
  let n = get_node t node in
  with_node_resources t node ((res, v) :: List.remove_assoc res n.node_resources)

let scale_links ?kind t res factor =
  map_link_resources t (fun l ->
      let applies = match kind with None -> true | Some k -> l.kind = k in
      match (applies, List.assoc_opt res l.link_resources) with
      | true, Some v -> (res, v *. factor) :: List.remove_assoc res l.link_resources
      | _ -> l.link_resources)

let remove_link t link = Topology.remove_link t link

let fail_node t node =
  if node < 0 || node >= node_count t then
    invalid_arg (Printf.sprintf "Mutate.fail_node: unknown node %d" node);
  let n = get_node t node in
  let zeroed = List.map (fun (r, _) -> (r, 0.)) n.node_resources in
  mark_node_failed (with_node_resources t node zeroed) node
