open Topology

let rebuild nodes links = make ~nodes ~links

let renumber links = List.mapi (fun i l -> { l with link_id = i }) links

let set_link_resource t link res v =
  let links =
    Array.to_list (links t)
    |> List.map (fun l ->
           if l.link_id = link then
             { l with link_resources = (res, v) :: List.remove_assoc res l.link_resources }
           else l)
  in
  rebuild (Array.to_list (nodes t)) links

let set_node_resource t node res v =
  let nodes =
    Array.to_list (nodes t)
    |> List.map (fun n ->
           if n.node_id = node then
             { n with node_resources = (res, v) :: List.remove_assoc res n.node_resources }
           else n)
  in
  rebuild nodes (Array.to_list (links t))

let scale_links ?kind t res factor =
  let links =
    Array.to_list (links t)
    |> List.map (fun l ->
           let applies = match kind with None -> true | Some k -> l.kind = k in
           match (applies, List.assoc_opt res l.link_resources) with
           | true, Some v ->
               { l with
                 link_resources = (res, v *. factor) :: List.remove_assoc res l.link_resources }
           | _ -> l)
  in
  rebuild (Array.to_list (nodes t)) links

let remove_link t link =
  let links =
    Array.to_list (links t) |> List.filter (fun l -> l.link_id <> link) |> renumber
  in
  rebuild (Array.to_list (nodes t)) links

(* The old-to-new link id mapping induced by [renumber] after deleting
   [removed]: filtering preserves order, so survivors are renumbered
   densely in ascending old-id order. *)
let renumber_map ~removed ~link_count =
  let gone = Array.make (max link_count 0) false in
  List.iter
    (fun l -> if l >= 0 && l < link_count then gone.(l) <- true)
    removed;
  let map = Array.make (max link_count 0) (-1) in
  let next = ref 0 in
  for l = 0 to link_count - 1 do
    if not gone.(l) then begin
      map.(l) <- !next;
      incr next
    end
  done;
  fun l ->
    if l < 0 || l >= link_count || map.(l) < 0 then None else Some map.(l)

let fail_node t node =
  let nodes =
    Array.to_list (nodes t)
    |> List.map (fun n ->
           if n.node_id = node then
             { n with node_resources = List.map (fun (r, _) -> (r, 0.)) n.node_resources }
           else n)
  in
  let links =
    Array.to_list (links t)
    |> List.filter (fun l ->
           let a, b = l.ends in
           a <> node && b <> node)
    |> renumber
  in
  rebuild nodes links
