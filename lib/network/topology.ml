type node_id = int
type link_id = int
type link_kind = Lan | Wan

exception Stale_link of link_id

let () =
  Printexc.register_printer (function
    | Stale_link l -> Some (Printf.sprintf "Sekitei_network.Topology.Stale_link(%d)" l)
    | _ -> None)

type node = {
  node_id : node_id;
  node_name : string;
  node_resources : (string * float) list;
}

type link = {
  link_id : link_id;
  ends : node_id * node_id;
  kind : link_kind;
  link_resources : (string * float) list;
}

(* Link ids are persistent: [link_arr] is indexed by id and keeps a slot
   for every link the topology has ever had; [link_live] is the tombstone
   set.  The iteration/array hot paths (grounding, replay metrics) never
   see dead links — they run over [live_links], a dense view rebuilt once
   per (persistent) mutation — while id-keyed lookups stay O(1) through
   [link_arr] plus one liveness bit. *)
type t = {
  node_arr : node array;
  node_live : bool array;  (** false once the node has failed *)
  link_arr : link array;  (** indexed by stable id; includes tombstones *)
  link_live : bool array;
  live_links : link array;  (** dense view: live links, ascending id *)
  adj : (node_id * link_id) list array;  (** live links only *)
}

let default_cpu = 30.
let default_lan_bw = 150.
let default_wan_bw = 70.

let node ?(cpu = default_cpu) ?(resources = []) id name =
  {
    node_id = id;
    node_name = name;
    node_resources = ("cpu", cpu) :: resources;
  }

let link ?bw ?(resources = []) kind id a b =
  let bw =
    match bw with
    | Some bw -> bw
    | None -> ( match kind with Lan -> default_lan_bw | Wan -> default_wan_bw)
  in
  { link_id = id; ends = (a, b); kind; link_resources = ("lbw", bw) :: resources }

(* Recompute the dense live view and adjacency from the id-indexed
   arrays; every mutation funnels through here. *)
let of_parts ~node_arr ~node_live ~link_arr ~link_live =
  let n = Array.length node_arr in
  let live_links =
    Array.to_list link_arr
    |> List.filter (fun l -> link_live.(l.link_id))
    |> Array.of_list
  in
  let adj = Array.make (max n 1) [] in
  Array.iter
    (fun l ->
      let a, b = l.ends in
      adj.(a) <- (b, l.link_id) :: adj.(a);
      adj.(b) <- (a, l.link_id) :: adj.(b))
    live_links;
  (* Deterministic neighbour order: by peer id then link id. *)
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  { node_arr; node_live; link_arr; link_live; live_links; adj }

let make ~nodes ~links =
  let node_arr = Array.of_list nodes in
  let n = Array.length node_arr in
  Array.iteri
    (fun i nd ->
      if nd.node_id <> i then
        invalid_arg
          (Printf.sprintf "Topology.make: node ids must be 0..n-1 (got %d at %d)"
             nd.node_id i))
    node_arr;
  let link_arr = Array.of_list links in
  Array.iteri
    (fun i l ->
      let a, b = l.ends in
      if l.link_id <> i then
        invalid_arg "Topology.make: link ids must be 0..m-1 in order";
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Topology.make: link endpoint out of range";
      if a = b then invalid_arg "Topology.make: self-loop")
    link_arr;
  of_parts ~node_arr
    ~node_live:(Array.make n true)
    ~link_arr
    ~link_live:(Array.make (Array.length link_arr) true)

let node_count t = Array.length t.node_arr
let link_count t = Array.length t.live_links
let link_id_bound t = Array.length t.link_arr
let nodes t = t.node_arr
let links t = t.live_links

let get_node t id =
  if id < 0 || id >= node_count t then invalid_arg "Topology.get_node"
  else t.node_arr.(id)

let link_is_live t id =
  id >= 0 && id < Array.length t.link_arr && t.link_live.(id)

let dead_links t =
  let acc = ref [] in
  for id = Array.length t.link_arr - 1 downto 0 do
    if not t.link_live.(id) then acc := id :: !acc
  done;
  !acc

let get_link t id =
  if id < 0 || id >= Array.length t.link_arr then invalid_arg "Topology.get_link"
  else if not t.link_live.(id) then raise (Stale_link id)
  else t.link_arr.(id)

let node_alive t id =
  if id < 0 || id >= node_count t then invalid_arg "Topology.node_alive"
  else t.node_live.(id)

let failed_nodes t =
  let acc = ref [] in
  for id = node_count t - 1 downto 0 do
    if not t.node_live.(id) then acc := id :: !acc
  done;
  !acc

let adjacent t id =
  if id < 0 || id >= node_count t then invalid_arg "Topology.adjacent"
  else t.adj.(id)

let find_link t a b =
  let rec scan = function
    | [] -> None
    | (peer, lid) :: rest -> if peer = b then Some (get_link t lid) else scan rest
  in
  if a < 0 || a >= node_count t then None else scan t.adj.(a)

let node_resource t id name = List.assoc name (get_node t id).node_resources
let link_resource t id name = List.assoc name (get_link t id).link_resources

let peer t lid n =
  let l = get_link t lid in
  let a, b = l.ends in
  if n = a then b
  else if n = b then a
  else invalid_arg "Topology.peer: node not an endpoint"

let node_by_name t name =
  match Array.find_opt (fun n -> String.equal n.node_name name) t.node_arr with
  | Some n -> n
  | None -> raise Not_found

let is_connected t =
  let n = node_count t in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let rec dfs i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter (fun (peer, _) -> dfs peer) t.adj.(i)
      end
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

(* ------------------------------------------------------------------ *)
(* Identity-stable mutation primitives                                  *)
(* ------------------------------------------------------------------ *)

let with_node_resources t id resources =
  let _ = get_node t id in
  let node_arr = Array.copy t.node_arr in
  node_arr.(id) <- { node_arr.(id) with node_resources = resources };
  of_parts ~node_arr ~node_live:t.node_live ~link_arr:t.link_arr
    ~link_live:t.link_live

let with_link_resources t id resources =
  let _ = get_link t id in
  let link_arr = Array.copy t.link_arr in
  link_arr.(id) <- { link_arr.(id) with link_resources = resources };
  of_parts ~node_arr:t.node_arr ~node_live:t.node_live ~link_arr
    ~link_live:t.link_live

let map_link_resources t f =
  let link_arr =
    Array.mapi
      (fun id l ->
        if t.link_live.(id) then { l with link_resources = f l } else l)
      t.link_arr
  in
  of_parts ~node_arr:t.node_arr ~node_live:t.node_live ~link_arr
    ~link_live:t.link_live

let remove_link t id =
  let _ = get_link t id in
  let link_live = Array.copy t.link_live in
  link_live.(id) <- false;
  of_parts ~node_arr:t.node_arr ~node_live:t.node_live ~link_arr:t.link_arr
    ~link_live

let mark_node_failed t id =
  let _ = get_node t id in
  let node_live = Array.copy t.node_live in
  node_live.(id) <- false;
  let link_live = Array.copy t.link_live in
  Array.iteri
    (fun lid l ->
      if link_live.(lid) then begin
        let a, b = l.ends in
        if a = id || b = id then link_live.(lid) <- false
      end)
    t.link_arr;
  of_parts ~node_arr:t.node_arr ~node_live ~link_arr:t.link_arr ~link_live

(* ------------------------------------------------------------------ *)
(* Resource names                                                       *)
(* ------------------------------------------------------------------ *)

let collect_names proj arr =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (fun x ->
      List.iter
        (fun (name, _) ->
          if not (Hashtbl.mem seen name) then begin
            Hashtbl.add seen name ();
            acc := name :: !acc
          end)
        (proj x))
    arr;
  List.rev !acc

let node_resource_names t = collect_names (fun n -> n.node_resources) t.node_arr
let link_resource_names t = collect_names (fun l -> l.link_resources) t.live_links
