(* Fixed-size domain pool for shared-nothing batch parallelism.

   The batch planner maps one planning request per work item; items are
   independent (each builds its own problem, oracle, and search state),
   so the pool is deliberately minimal: an atomic next-item counter that
   workers race on (dynamic load balancing — planning times vary by
   orders of magnitude between instances), a results slot array indexed
   by item position (output order is input order regardless of which
   domain ran what), and first-failure exception propagation with the
   original backtrace.

   [jobs <= 1] short-circuits to a plain sequential [List.map] on the
   calling domain — no domains are spawned, so [~jobs:1] is byte-for-byte
   the sequential semantics (the determinism escape hatch). *)

type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

type worker_stats = {
  worker : int;
  items : int;
  busy_ms : float;
  wall_ms : float;
}

let default_jobs () = Domain.recommended_domain_count ()

let map ?(jobs = default_jobs ()) ?stats f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = min jobs n in
  if jobs <= 1 then
    match stats with
    | None -> List.map f xs
    | Some report ->
        let wall = Timer.start () in
        let busy = ref 0. in
        let out =
          List.map
            (fun x ->
              let t0 = Timer.start () in
              let r = f x in
              busy := !busy +. Timer.elapsed_ms t0;
              r)
            xs
        in
        report
          { worker = 0; items = n; busy_ms = !busy; wall_ms = Timer.elapsed_ms wall };
        out
  else begin
    let slots = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker w () =
      let wall = Timer.start () in
      let taken = ref 0 and busy = ref 0. in
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let t0 = Timer.start () in
          (slots.(i) <-
            (match f items.(i) with
            | v -> Done v
            | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
          busy := !busy +. Timer.elapsed_ms t0;
          incr taken;
          go ()
        end
      in
      go ();
      match stats with
      | None -> ()
      | Some report ->
          (* Runs on the worker domain, concurrently with the other
             workers' reports — the callback's contract. *)
          report
            {
              worker = w;
              items = !taken;
              busy_ms = !busy;
              wall_ms = Timer.elapsed_ms wall;
            }
    in
    (* jobs - 1 spawned domains; the calling domain is the last worker,
       so [jobs] counts total concurrency, not extra domains. *)
    let domains = Array.init (jobs - 1) (fun i -> Domain.spawn (worker (i + 1))) in
    worker 0 ();
    Array.iter Domain.join domains;
    (* Re-raise the earliest failure (deterministic choice independent of
       worker scheduling); later items may have completed or failed too —
       their results are discarded, like List.map on an exception. *)
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      slots;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Pending | Failed _ -> assert false (* all joined, none failed *))
         slots)
  end
