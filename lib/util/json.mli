(** Minimal JSON values with a hand-rolled writer and parser.

    The build environment has no JSON library, so the telemetry JSONL
    sink, the benchmark record emitter, and the trace-report tool share
    this module instead of each hand-rolling Printf emission.  The writer
    emits compact one-line documents, passing UTF-8 string bytes through
    verbatim; the parser decodes [\uXXXX] escapes to UTF-8, combining
    surrogate pairs into the supplementary code point and replacing an
    unpaired surrogate with U+FFFD. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line serialization.  Non-finite floats are emitted as
    the strings ["nan"], ["inf"], ["-inf"] (not valid JSON number
    literals otherwise). *)
val to_string : t -> string

(** Backslash-escape a string for inclusion between double quotes. *)
val escape : string -> string

val of_string : string -> (t, string) result

(** Field lookup on an [Obj]; [None] on other constructors. *)
val member : string -> t -> t option

val to_int : t -> int option

(** [Int] widens to float. *)
val to_float : t -> float option

val to_str : t -> string option
