/* Monotonic clock for planner-phase timing.

   Unix.gettimeofday is wall-clock time and can jump backwards under NTP
   adjustment; CLOCK_MONOTONIC never does.  Returned as seconds in a
   double: at 10^7 s of uptime a double still resolves ~1 ns. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value sekitei_monotonic_s(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
