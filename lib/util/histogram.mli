(** Log-bucketed (HDR/DDSketch-style) histograms with constant memory,
    exact counts, bounded relative error, and an associative merge.

    Built for always-on production metrics: recording a value is a
    handful of float operations plus one array increment, the footprint
    is bounded by the log of the tracked value range (independent of how
    many values are recorded), and two histograms recorded independently
    — by two worker domains, or two processes — merge into exactly the
    histogram a single recorder would have produced (bucket counts are
    integers, so merging is associative and commutative; only the
    floating-point [sum] accumulates in merge order).

    Buckets grow geometrically with ratio [gamma = (1+e)/(1-e)] where
    [e] is the configured {!rel_error}: any recorded value [v >=
    min_trackable] falls in the bucket [(gamma^(i-1), gamma^i]] and is
    later reported as the bucket's midpoint-in-ratio estimate, which is
    within [e * v] of [v].  Values below {!min_trackable} (including
    zero and negatives) are counted in a dedicated zero bucket and
    reported as [0.]. *)

type t

(** Smallest positive value tracked with relative-error guarantees
    ([1e-9]); anything smaller lands in the zero bucket. *)
val min_trackable : float

(** [create ?rel_error ()] — default relative error [0.01] (1%).
    @raise Invalid_argument unless [0 < rel_error < 1]. *)
val create : ?rel_error:float -> unit -> t

val rel_error : t -> float

(** Record one value.  Never raises: non-finite values are counted in
    the zero bucket (NaN) or the extreme buckets (infinities are clamped
    to the tracked range ends and pollute [sum]; callers feeding
    unsanitized data should filter first). *)
val add : t -> float -> unit

(** Number of values recorded (conserved exactly under {!merge}). *)
val count : t -> int

(** Count of values that fell below {!min_trackable}. *)
val zero_count : t -> int

val sum : t -> float

(** Exact smallest/largest recorded value; [nan] when empty. *)
val min_value : t -> float

val max_value : t -> float

(** [sum / count]; [nan] when empty. *)
val mean : t -> float

(** [percentile t p] for [p] in [0,1]: the estimate of the sample order
    statistic at rank [round (p * (count - 1))].  The estimate is within
    [rel_error] (relative) of that sample value, and is additionally
    clamped to the exact recorded [\[min_value, max_value\]] range.
    @raise Invalid_argument on an empty histogram or [p] outside [0,1]. *)
val percentile : t -> float -> float

(** [merge a b] — a new histogram with [a] and [b]'s counts summed
    bucket-wise.  Associative and commutative on everything except the
    floating-point [sum] (within rounding).  Neither input is mutated.
    @raise Invalid_argument when the two relative errors differ. *)
val merge : t -> t -> t

(** Deep copy (mutating the copy leaves the original untouched). *)
val copy : t -> t

(** Non-empty buckets, ascending: [(lo, hi, count)] with the bucket
    holding values in [(lo, hi]].  The zero bucket, when non-empty, is
    reported first as [(0., 0., n)].  Feeds the Prometheus/JSON
    exposition encoders and the merge/associativity tests. *)
val buckets : t -> (float * float * int) list

(** Upper bucket bounds only, with {e cumulative} counts — the shape
    Prometheus histogram exposition wants ([le] buckets). *)
val cumulative : t -> (float * int) list
