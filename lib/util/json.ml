(* Minimal JSON values: a hand-rolled writer and parser over the small
   subset the repository needs (telemetry traces, benchmark records).
   No JSON library is available in the build environment, so this module
   centralizes what used to be ad-hoc Printf emission in the harness. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- writing ---------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* Non-finite floats are not valid JSON literals; fall back to
         strings so a trace line never breaks a consumer's parser. *)
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else if Float.is_nan f then Buffer.add_string buf "\"nan\""
      else Buffer.add_string buf (if f > 0. then "\"inf\"" else "\"-inf\"")
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> raise (Parse_error (Printf.sprintf "expected '%c' at %d" c st.pos))

let parse_literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else raise (Parse_error (Printf.sprintf "bad literal at %d" st.pos))

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then
      raise (Parse_error "unterminated string")
    else
      match st.src.[st.pos] with
      | '"' -> st.pos <- st.pos + 1
      | '\\' ->
          st.pos <- st.pos + 1;
          (if st.pos >= String.length st.src then
             raise (Parse_error "unterminated escape")
           else
             match st.src.[st.pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
                 let read_hex pos =
                   if pos + 4 > String.length st.src then
                     raise (Parse_error "truncated \\u escape");
                   try int_of_string ("0x" ^ String.sub st.src pos 4)
                   with Failure _ -> raise (Parse_error "bad \\u escape")
                 in
                 let code = read_hex (st.pos + 1) in
                 st.pos <- st.pos + 4;
                 (* Decode to UTF-8, pairing surrogates; an unpaired
                    surrogate becomes U+FFFD (the second half of a broken
                    pair is left in place to decode on its own). *)
                 let uchar =
                   if code >= 0xD800 && code <= 0xDBFF then
                     if
                       st.pos + 2 < String.length st.src
                       && st.src.[st.pos + 1] = '\\'
                       && st.src.[st.pos + 2] = 'u'
                     then begin
                       let low = read_hex (st.pos + 3) in
                       if low >= 0xDC00 && low <= 0xDFFF then begin
                         st.pos <- st.pos + 6;
                         Uchar.of_int
                           (0x10000
                           + ((code - 0xD800) lsl 10)
                           + (low - 0xDC00))
                       end
                       else Uchar.rep
                     end
                     else Uchar.rep
                   else if code >= 0xDC00 && code <= 0xDFFF then Uchar.rep
                   else Uchar.of_int code
                 in
                 Buffer.add_utf_8_uchar buf uchar
             | c -> raise (Parse_error (Printf.sprintf "bad escape '\\%c'" c)));
          st.pos <- st.pos + 1;
          go ()
      | c ->
          Buffer.add_char buf c;
          st.pos <- st.pos + 1;
          go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> raise (Parse_error (Printf.sprintf "bad number %S" text)))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> raise (Parse_error "unexpected end of input")
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> raise (Parse_error "expected ',' or ']'")
        in
        List (items [])
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> raise (Parse_error "expected ',' or '}'")
        in
        Obj (fields [])
      end
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing garbage"
      else Ok v
  | exception Parse_error msg -> Error msg

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
