(* Log-bucketed histogram with a dense count array over the occupied
   bucket-index window.

   A value v >= min_trackable maps to bucket index ceil(ln v / ln gamma)
   with gamma = (1+e)/(1-e): bucket i covers (gamma^(i-1), gamma^i], and
   reporting the midpoint-in-ratio 2*gamma^i/(gamma+1) keeps the
   relative error of any reported value at most e.  Counts live in one
   int array indexed by (bucket - base); the window grows geometrically
   as new extremes are recorded, and is bounded by the log of the
   tracked range — ln(1e9 / 1e-9) / ln(1.0202) ~ 2100 buckets at the
   default 1% error even for a histogram fed everything from a
   nanosecond to a month — so memory is constant in the number of
   recorded values. *)

type t = {
  rel_error : float;
  gamma : float;
  inv_log_gamma : float;  (* 1 / ln gamma, hoisted out of the add path *)
  mutable counts : int array;
  mutable base : int;  (* bucket index of counts.(0); meaningless when empty *)
  mutable occupied : bool;  (* some positive-range bucket has been hit *)
  mutable zero : int;
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let min_trackable = 1e-9

let create ?(rel_error = 0.01) () =
  if not (rel_error > 0. && rel_error < 1.) then
    invalid_arg "Histogram.create: rel_error not in (0,1)";
  let gamma = (1. +. rel_error) /. (1. -. rel_error) in
  {
    rel_error;
    gamma;
    inv_log_gamma = 1. /. log gamma;
    counts = [||];
    base = 0;
    occupied = false;
    zero = 0;
    n = 0;
    sum = 0.;
    vmin = Float.nan;
    vmax = Float.nan;
  }

let rel_error t = t.rel_error
let count t = t.n
let zero_count t = t.zero
let sum t = t.sum
let min_value t = t.vmin
let max_value t = t.vmax
let mean t = if t.n = 0 then Float.nan else t.sum /. float_of_int t.n

let bucket_index t v = int_of_float (Float.ceil (log v *. t.inv_log_gamma))

(* Value estimate for bucket index i: the point whose relative distance
   to both bucket ends is the same, 2*gamma^i/(gamma+1). *)
let bucket_estimate t i =
  2. *. (t.gamma ** float_of_int i) /. (t.gamma +. 1.)

let bucket_lo t i = t.gamma ** float_of_int (i - 1)
let bucket_hi t i = t.gamma ** float_of_int i

(* Ensure bucket index [i] falls inside the window, growing front/back
   with geometric slack so repeated extremes amortize. *)
let ensure t i =
  if not t.occupied then begin
    t.counts <- (if t.counts = [||] then Array.make 8 0 else t.counts);
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.base <- i - (Array.length t.counts / 2);
    t.occupied <- true
  end;
  let len = Array.length t.counts in
  if i < t.base then begin
    let extra = Stdlib.max len (t.base - i) in
    let grown = Array.make (len + extra) 0 in
    Array.blit t.counts 0 grown extra len;
    t.counts <- grown;
    t.base <- t.base - extra
  end
  else if i >= t.base + len then begin
    let extra = Stdlib.max len (i - (t.base + len) + 1) in
    let grown = Array.make (len + extra) 0 in
    Array.blit t.counts 0 grown 0 len;
    t.counts <- grown
  end

let add t v =
  t.n <- t.n + 1;
  if v >= min_trackable then begin
    t.sum <- t.sum +. v;
    if Float.is_nan t.vmin || v < t.vmin then t.vmin <- v;
    if Float.is_nan t.vmax || v > t.vmax then t.vmax <- v;
    (* Infinities would overflow ceil-of-log; clamp to the float range's
       last representable bucket instead of raising mid-flight. *)
    let i =
      if Float.is_finite v then bucket_index t v
      else bucket_index t Float.max_float
    in
    ensure t i;
    t.counts.(i - t.base) <- t.counts.(i - t.base) + 1
  end
  else begin
    (* Zero bucket: zero, sub-min, negative, NaN. *)
    t.zero <- t.zero + 1;
    if Float.is_finite v then begin
      t.sum <- t.sum +. v;
      if Float.is_nan t.vmin || v < t.vmin then t.vmin <- v;
      if Float.is_nan t.vmax || v > t.vmax then t.vmax <- v
    end
  end

let percentile t p =
  if t.n = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0. || p > 1. then invalid_arg "Histogram.percentile: p not in [0,1]";
  (* Target the order statistic at rank round (p * (n-1)), 0-based — the
     same convention Running_stats.percentile resolves to when the
     interpolation lands on a sample, which is what the relative-error
     guarantee is stated against. *)
  let rank =
    int_of_float (Float.round (p *. float_of_int (t.n - 1)))
  in
  let rank = Stdlib.min (t.n - 1) (Stdlib.max 0 rank) in
  let clamp v =
    let v = if Float.is_nan t.vmin || v >= t.vmin then v else t.vmin in
    if Float.is_nan t.vmax || v <= t.vmax then v else t.vmax
  in
  if rank < t.zero then clamp 0.
  else begin
    let remaining = ref (rank - t.zero) in
    let answer = ref Float.nan in
    (try
       Array.iteri
         (fun off c ->
           if c > 0 then begin
             if !remaining < c then begin
               answer := bucket_estimate t (t.base + off);
               raise Exit
             end;
             remaining := !remaining - c
           end)
         t.counts
     with Exit -> ());
    if Float.is_nan !answer then
      (* Counts can only under-cover the rank when values were clamped
         or the histogram holds just zero-bucket entries; fall back to
         the exact max. *)
      t.vmax
    else clamp !answer
  end

let copy t = { t with counts = Array.copy t.counts }

let merge a b =
  if a.rel_error <> b.rel_error then
    invalid_arg "Histogram.merge: mismatched rel_error";
  let fmin x y =
    if Float.is_nan x then y else if Float.is_nan y then x else Float.min x y
  in
  let fmax x y =
    if Float.is_nan x then y else if Float.is_nan y then x else Float.max x y
  in
  let m = copy a in
  m.zero <- a.zero + b.zero;
  m.n <- a.n + b.n;
  m.sum <- a.sum +. b.sum;
  m.vmin <- fmin a.vmin b.vmin;
  m.vmax <- fmax a.vmax b.vmax;
  if b.occupied then
    Array.iteri
      (fun off c ->
        if c > 0 then begin
          let i = b.base + off in
          ensure m i;
          m.counts.(i - m.base) <- m.counts.(i - m.base) + c
        end)
      b.counts;
  m

let buckets t =
  let acc = ref [] in
  if t.occupied then
    for off = Array.length t.counts - 1 downto 0 do
      let c = t.counts.(off) in
      if c > 0 then
        let i = t.base + off in
        acc := (bucket_lo t i, bucket_hi t i, c) :: !acc
    done;
  if t.zero > 0 then (0., 0., t.zero) :: !acc else !acc

let cumulative t =
  let running = ref 0 in
  List.map
    (fun (_, hi, c) ->
      running := !running + c;
      (hi, !running))
    (buckets t)
