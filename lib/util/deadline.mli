(** Cooperative deadline/cancellation tokens for bounded planning.

    A token carries a predicate the planner phases poll at their loop
    heads; when it reports expiry the phase returns gracefully with the
    best evidence gathered so far (or raises {!Expired} where no partial
    answer is meaningful, e.g. mid-compilation).  Tokens are never
    preemptive — a phase that stops polling runs to completion.

    {!none} is free (one physical comparison per poll), so the phases
    thread a token unconditionally. *)

type t

(** Raised by {!guard} — and by phases without a partial result — when
    the token has expired; the payload names the phase that gave up. *)
exception Expired of string

(** The non-expiring token. *)
val none : t

(** [after_ms ms] expires once [ms] milliseconds of monotonic
    ({!Timer}) wall time have passed since the call.  Raises
    [Invalid_argument] on a negative or NaN budget. *)
val after_ms : float -> t

(** [counting n] expires on the [n+1]-th poll — deterministic expiry for
    tests that must stop a search mid-flight regardless of machine
    speed. *)
val counting : int -> t

(** [of_fn f] expires when [f ()] returns [true].  [f] must be cheap; it
    runs on search hot paths. *)
val of_fn : (unit -> bool) -> t

(** Poll the token.  [expired none] is [false] and costs one branch. *)
val expired : t -> bool

(** [guard d ~phase] raises [Expired phase] when [d] has expired. *)
val guard : t -> phase:string -> unit
