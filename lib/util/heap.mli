(** Imperative binary min-heap with float priorities and deterministic
    tie-breaking.

    The planner's A* searches (SLRG and RG, paper section 3.2) must be
    reproducible run-to-run, so equal priorities are broken by insertion
    order (FIFO). *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [create_sized n] pre-allocates room for [n] elements. *)
val create_sized : int -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

(** [add h ~prio ?prio2 ?seq x] inserts [x] with priority [prio]; [prio2]
    (default 0) breaks priority ties before insertion order — A* searches
    pass [-g] to prefer deeper nodes on f-plateaus.  [seq] overrides the
    final insertion-order tie key (by default the heap's own insertion
    counter): a search that removes and re-inserts an entry with a
    corrected priority passes the entry's original sequence number so
    deterministic tie-breaking is preserved across the re-insertion
    (deferred heuristic evaluation relies on this).  Raises
    [Invalid_argument] when either priority is NaN (a NaN would poison
    the ordering comparisons and silently corrupt the heap). *)
val add : 'a t -> prio:float -> ?prio2:float -> ?seq:int -> 'a -> unit

(** Minimum-priority element, FIFO among ties.  [None] when empty. *)
val peek : 'a t -> ('a * float) option

(** Remove and return the minimum. *)
val pop : 'a t -> ('a * float) option

(** [pop_exn h] is [pop] but raises [Not_found] when empty. *)
val pop_exn : 'a t -> 'a * float

val clear : 'a t -> unit

(** Total number of insertions performed over the heap's lifetime (search
    statistics). *)
val insertions : 'a t -> int

(** Drain the heap into a priority-sorted list (ascending). *)
val to_sorted_list : 'a t -> ('a * float) list
