(** Streaming summary statistics (Welford's algorithm).

    Used by the benchmark harness to aggregate per-run planner timings and
    graph sizes across repetitions. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

(** Convenience: statistics over a list in one pass. *)
val of_list : float list -> t

(** [percentile p xs] for [p] in [0,1]; linear interpolation on the sorted
    sample.  @raise Invalid_argument on an empty list or p outside [0,1]. *)
val percentile : float -> float list -> float

(** Streaming percentile estimation over a bounded reservoir
    (Vitter's algorithm R, deterministic seed).

    While at most [capacity] values have been added the reservoir holds
    the exact sample and {!Reservoir.percentile} equals
    {!Running_stats.percentile} of it; past that point each value kept
    is a uniform sample of the stream, so percentiles are unbiased
    estimates with bounded memory.  Used by the heuristic-quality
    profiler for its per-phase error histograms. *)
module Reservoir : sig
  type r

  (** [create ?capacity ()] — default capacity 1024.
      @raise Invalid_argument when [capacity <= 0]. *)
  val create : ?capacity:int -> unit -> r

  val add : r -> float -> unit

  (** Number of values ever added (not the number retained). *)
  val count : r -> int

  (** [percentile r p] for [p] in [0,1]; linear interpolation on the
      sorted retained sample.  @raise Invalid_argument on an empty
      reservoir or [p] outside [0,1]. *)
  val percentile : r -> float -> float

  (** The retained sample, unsorted. *)
  val to_list : r -> float list
end
