type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minv : float;
  mutable maxv : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; minv = Float.infinity; maxv = Float.neg_infinity; total = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x;
  t.total <- t.total +. x

let count t = t.n
let mean t = t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.minv
let max t = t.maxv
let total t = t.total

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let percentile_of_array arr =
  (* [arr] is sorted and non-empty; shared by the list and reservoir
     entry points. *)
  fun p ->
    if p < 0. || p > 1. then
      invalid_arg "Running_stats.percentile: p not in [0,1]";
    let n = Array.length arr in
    let idx = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor idx)
    and hi = int_of_float (Float.ceil idx) in
    let frac = idx -. Float.floor idx in
    (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)

let percentile p xs =
  if xs = [] then invalid_arg "Running_stats.percentile: empty";
  let arr = Array.of_list xs in
  Array.sort compare arr;
  percentile_of_array arr p

module Reservoir = struct
  type r = {
    capacity : int;
    buf : float array;
    mutable seen : int;
    rng : Prng.t;
  }

  (* Fixed seed: reservoir contents must be reproducible run to run so
     profiler reports and their tests stay deterministic. *)
  let create ?(capacity = 1024) () =
    if capacity <= 0 then
      invalid_arg "Running_stats.Reservoir.create: capacity <= 0";
    {
      capacity;
      buf = Array.make capacity 0.;
      seen = 0;
      rng = Prng.create ~seed:0x5EED5EEDL;
    }

  let add r x =
    if r.seen < r.capacity then r.buf.(r.seen) <- x
    else begin
      (* Algorithm R: keep the newcomer with probability capacity/seen+1,
         evicting a uniform resident — every stream element ends up
         retained with equal probability. *)
      let j = Prng.int r.rng (r.seen + 1) in
      if j < r.capacity then r.buf.(j) <- x
    end;
    r.seen <- r.seen + 1

  let count r = r.seen
  let filled r = Stdlib.min r.seen r.capacity

  let percentile r p =
    if r.seen = 0 then invalid_arg "Running_stats.Reservoir.percentile: empty";
    let arr = Array.sub r.buf 0 (filled r) in
    Array.sort compare arr;
    percentile_of_array arr p

  let to_list r = Array.to_list (Array.sub r.buf 0 (filled r))
end
