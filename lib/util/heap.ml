type 'a entry = { prio : float; prio2 : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create_sized n = { data = Array.make (max n 8) None; size = 0; next_seq = 0 }
let create () = create_sized 16
let is_empty h = h.size = 0
let length h = h.size
let insertions h = h.next_seq

(* An entry [a] sorts before [b] on smaller priority, then smaller
   insertion sequence number. *)
let before a b =
  a.prio < b.prio
  || (a.prio = b.prio
      && (a.prio2 < b.prio2 || (a.prio2 = b.prio2 && a.seq < b.seq)))

let get h i =
  match h.data.(i) with
  | Some e -> e
  | None -> assert false

let grow h =
  let data = Array.make (2 * Array.length h.data) None in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

(* Hole-based sifting: the moving entry is kept out of the array and
   written exactly once into its final slot, halving the array writes of
   the classic swap formulation on the planner's A* hot path. *)
let sift_up h i e =
  let i = ref i in
  let placed = ref false in
  while (not !placed) && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before e (get h parent) then begin
      h.data.(!i) <- h.data.(parent);
      i := parent
    end
    else placed := true
  done;
  h.data.(!i) <- Some e

let sift_down h i e =
  let n = h.size in
  let i = ref i in
  let placed = ref false in
  while not !placed do
    let l = (2 * !i) + 1 in
    if l >= n then placed := true
    else begin
      let r = l + 1 in
      let c = if r < n && before (get h r) (get h l) then r else l in
      if before (get h c) e then begin
        h.data.(!i) <- h.data.(c);
        i := c
      end
      else placed := true
    end
  done;
  h.data.(!i) <- Some e

let add h ~prio ?(prio2 = 0.) ?seq value =
  if Float.is_nan prio then invalid_arg "Heap.add: NaN priority";
  if Float.is_nan prio2 then invalid_arg "Heap.add: NaN secondary priority";
  if h.size = Array.length h.data then grow h;
  let seq = match seq with Some s -> s | None -> h.next_seq in
  let e = { prio; prio2; seq; value } in
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h (h.size - 1) e

let peek h =
  if h.size = 0 then None
  else
    let e = get h 0 in
    Some (e.value, e.prio)

let pop h =
  if h.size = 0 then None
  else begin
    let top = get h 0 in
    h.size <- h.size - 1;
    let last = get h h.size in
    h.data.(h.size) <- None;
    if h.size > 0 then sift_down h 0 last;
    Some (top.value, top.prio)
  end

let pop_exn h = match pop h with Some x -> x | None -> raise Not_found

let clear h =
  Array.fill h.data 0 (Array.length h.data) None;
  h.size <- 0

let to_sorted_list h =
  let rec drain acc = match pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  drain []
