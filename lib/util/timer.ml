external monotonic_s : unit -> float = "sekitei_monotonic_s"

type t = float

let now_s = monotonic_s
let start () = monotonic_s ()

(* Monotonic clocks never run backwards, but clamp anyway so a platform
   quirk can never surface a negative duration in stats or telemetry. *)
let elapsed_s t = Float.max 0. (monotonic_s () -. t)
let elapsed_ms t = 1000. *. elapsed_s t

let time f =
  let t = start () in
  let result = f () in
  (result, elapsed_ms t)
