(* Cooperative deadline/cancellation tokens.

   A token is polled, never preemptive: the planner phases call {!expired}
   (or {!guard}) at their loop heads — per grounded action group in
   Compile, per relaxation in Plrg, per A* expansion in Slrg/Rg — and wind
   down gracefully when it fires.  The common case is [none], which must
   cost one physical comparison, so the type is an option under the hood. *)

exception Expired of string

type t = (unit -> bool) option

let none : t = None
let of_fn f : t = Some f

let after_ms ms =
  if Float.is_nan ms || ms < 0. then invalid_arg "Deadline.after_ms";
  let limit = Timer.now_s () +. (ms /. 1000.) in
  Some (fun () -> Timer.now_s () > limit)

let counting n =
  let left = ref n in
  Some
    (fun () ->
      if !left <= 0 then true
      else begin
        decr left;
        false
      end)

let[@inline] expired (d : t) =
  match d with None -> false | Some f -> f ()

let guard (d : t) ~phase = if expired d then raise (Expired phase)
