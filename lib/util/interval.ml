type t = { lo : float; hi : float }

exception Empty_interval

(* Invariant: lo <= hi, lo finite, neither bound NaN.  lo = hi encodes the
   degenerate point interval {lo}; lo < hi encodes the half-open [lo, hi). *)

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then raise Empty_interval
  else if hi <= lo then raise Empty_interval
  else if not (Float.is_finite lo) then raise Empty_interval
  else { lo; hi }

let make_opt lo hi = try Some (make lo hi) with Empty_interval -> None
let full = { lo = 0.; hi = Float.infinity }

let point x =
  if not (Float.is_finite x) then raise Empty_interval else { lo = x; hi = x }

let lo i = i.lo
let hi i = i.hi
let is_point i = i.lo = i.hi
let mem x i = if is_point i then x = i.lo else i.lo <= x && x < i.hi
let operating_point ~cap i = if Float.is_finite i.hi then i.hi else cap

let inter a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo < hi then Some { lo; hi }
  else if lo = hi && (is_point a || is_point b) && mem lo a && mem lo b then
    Some { lo; hi }
  else None

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let equal a b = a.lo = b.lo && a.hi = b.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let overlaps a b = inter a b <> None

(* Arithmetic.  Point-ness is preserved only when both operands are points;
   mixing a point with a proper interval widens to the enclosing interval. *)

let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }

let sub a b =
  (* Sound enclosure of {x - y}; may contain negative values. *)
  let lo = a.lo -. b.hi and hi = a.hi -. b.lo in
  if Float.is_nan lo || Float.is_nan hi then raise Empty_interval
  else if lo > hi then
    (* Unreachable while both operands satisfy the lo <= hi invariant
       (a.lo - b.hi <= a.hi - b.lo then holds termwise); silently swapping
       the bounds here would mask a corrupted operand. *)
    invalid_arg "Interval.sub: operand bounds inverted"
  else { lo; hi }

let scale k i =
  if k < 0. then invalid_arg "Interval.scale: negative factor"
  else if k = 0. then point 0.
  else
    {
      lo = k *. i.lo;
      hi = (if Float.is_finite i.hi then k *. i.hi else Float.infinity);
    }

let shift c i = { lo = i.lo +. c; hi = i.hi +. c }
let min_scalar c i = { lo = Float.min c i.lo; hi = Float.min c i.hi }
let max_scalar c i = { lo = Float.max c i.lo; hi = Float.max c i.hi }
let min_ a b = { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }
let max_ a b = { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

(* Satisfiability against a scalar under half-open semantics: the interval
   contains values arbitrarily close to (but, for proper intervals, not
   equal to) hi. *)

let sat_ge i c = if is_point i then i.lo >= c else i.hi > c
let sat_gt i c = i.hi > c
let sat_le i c = i.lo <= c
let sat_lt i c = i.lo < c
let sat_eq a b = overlaps a b

let width i = i.hi -. i.lo

let to_string i =
  if is_point i then Printf.sprintf "{%g}" i.lo
  else if Float.is_finite i.hi then Printf.sprintf "[%g,%g)" i.lo i.hi
  else Printf.sprintf "[%g,inf)" i.lo

let pp fmt i = Format.pp_print_string fmt (to_string i)

let of_points = function
  | [] -> invalid_arg "Interval.of_points: empty"
  | x :: rest ->
      let lo = List.fold_left Float.min x rest
      and hi = List.fold_left Float.max x rest in
      if Float.is_nan lo || Float.is_nan hi || not (Float.is_finite lo) then
        invalid_arg "Interval.of_points: non-finite lower bound"
      else { lo; hi }

let of_cutpoints cuts =
  let rec check prev = function
    | [] -> ()
    | c :: rest ->
        if c <= prev || not (Float.is_finite c) then
          invalid_arg "Interval.of_cutpoints: not strictly increasing"
        else check c rest
  in
  check 0. cuts;
  let rec build lo = function
    | [] -> [ { lo; hi = Float.infinity } ]
    | c :: rest -> { lo; hi = c } :: build c rest
  in
  build 0. cuts
