(** Fixed-size domain pool for shared-nothing batch parallelism
    (OCaml 5 multicore).

    Built for the planner's batch executor: work items are independent
    and their run times vary wildly, so workers pull items off a shared
    atomic counter (dynamic load balancing) while results land in
    per-index slots (output order is always input order). *)

(** [Domain.recommended_domain_count ()] — the default worker count used
    by {!map} and the planner's batch entry points. *)
val default_jobs : unit -> int

(** Per-worker accounting reported through {!map}'s [stats] callback:
    [items] is how many work items this worker won off the shared
    counter (the steal balance), [busy_ms] its total time inside [f],
    and [wall_ms] its lifetime — [wall_ms - busy_ms] is the idle/wait
    overhead.  [worker] 0 is the calling domain. *)
type worker_stats = {
  worker : int;
  items : int;
  busy_ms : float;
  wall_ms : float;
}

(** [map ~jobs f xs] is [List.map f xs] computed by up to [jobs] domains
    ([jobs - 1] spawned plus the calling one), clamped to
    [List.length xs].  Results are returned in input order.

    If any application of [f] raises, all items still drain (workers are
    always joined), then the exception of the {e earliest-index} failure
    is re-raised with its original backtrace — a deterministic choice
    independent of domain scheduling.

    [jobs <= 1] (or a singleton/empty [xs]) runs a plain sequential
    [List.map] on the calling domain: no domains are spawned, making
    [~jobs:1] the exact sequential semantics.

    [f] must be safe to run on multiple domains at once: it must not
    share mutable state between items (or must synchronize it itself,
    e.g. {!Sekitei_telemetry.Telemetry.locked} for a shared sink).

    [stats] is called once per worker, {e on that worker's domain}, just
    before it finishes (after its last item; on the sequential path, once
    at the end) — so it runs concurrently with other workers' reports and
    must be domain-safe (the metric registry's per-domain shards are).
    It is not called when the sequential path propagates an exception. *)
val map : ?jobs:int -> ?stats:(worker_stats -> unit) -> ('a -> 'b) -> 'a list -> 'b list
