(** Monotonic timing helpers for planner-phase instrumentation.

    The paper's Table 2 reports total planning time and search-only time
    separately; the planner threads one {!t} per phase and the telemetry
    subsystem stamps every event with {!now_s}-derived offsets.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] — wall-clock sources like
    [Unix.gettimeofday] can go backwards under NTP adjustment, which
    would corrupt durations.  Elapsed values are additionally clamped at
    0 so no consumer ever sees a negative duration. *)

type t

(** Current monotonic time in seconds (arbitrary origin — only
    differences are meaningful). *)
val now_s : unit -> float

val start : unit -> t

(** Elapsed seconds since [start]; never negative. *)
val elapsed_s : t -> float

(** Elapsed milliseconds since [start] (the paper reports ms). *)
val elapsed_ms : t -> float

(** [time f] runs [f ()] and returns its result with elapsed milliseconds. *)
val time : (unit -> 'a) -> 'a * float
