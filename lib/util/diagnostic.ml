(* Structured diagnostics shared by the spec validator, the static
   preflight analyzer and the plan certifier.  Lives in [Sekitei_util]
   because producers sit on both sides of the spec/core boundary. *)

type severity = Warning | Error

type t = {
  severity : severity;
  code : string;
  loc : string;
  message : string;
  evidence : (string * string) list;
}

let make severity ~code ~loc ?(evidence = []) message =
  { severity; code; loc; message; evidence }

let error ~code ~loc ?evidence fmt =
  Printf.ksprintf (fun m -> make Error ~code ~loc ?evidence m) fmt

let warning ~code ~loc ?evidence fmt =
  Printf.ksprintf (fun m -> make Warning ~code ~loc ?evidence m) fmt

let severity_label = function Warning -> "warning" | Error -> "error"

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let max_severity ds =
  List.fold_left
    (fun acc d ->
      match (acc, d.severity) with
      | Some Error, _ | _, Error -> Some Error
      | _ -> Some Warning)
    None ds

(* Exit-code convention of `sekitei check`: clean / warnings / errors. *)
let exit_code ds =
  match max_severity ds with None -> 0 | Some Warning -> 1 | Some Error -> 2

(* Errors before warnings; insertion order preserved within a severity
   (sorting is stable), so producers control the secondary order. *)
let by_severity ds =
  List.stable_sort
    (fun a b ->
      match (a.severity, b.severity) with
      | Error, Warning -> -1
      | Warning, Error -> 1
      | _ -> 0)
    ds

let to_string d =
  let ev =
    match d.evidence with
    | [] -> ""
    | kvs ->
        " ("
        ^ String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        ^ ")"
  in
  Printf.sprintf "%s[%s] %s: %s%s"
    (severity_label d.severity)
    d.code d.loc d.message ev

let pp fmt d = Format.pp_print_string fmt (to_string d)

let to_json d =
  Json.Obj
    [
      ("severity", Json.Str (severity_label d.severity));
      ("code", Json.Str d.code);
      ("loc", Json.Str d.loc);
      ("message", Json.Str d.message);
      ("evidence", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) d.evidence));
    ]

let list_to_json ds = Json.List (List.map to_json ds)
