(** Structured diagnostics with stable [SKT###] codes.

    One diagnostic type is shared by every layer that judges a problem
    or a plan — the spec validator ({!Sekitei_spec.Validate}), the
    static preflight analyzer and the independent plan certifier
    (sekitei.analysis) — so tooling can consume all three through one
    text or JSON rendering.

    Code blocks (stable; renumbering is a breaking change):

    - [SKT0xx] specification validation
      {ul
       {- [SKT001] duplicate definition (interface / component / property)}
       {- [SKT002] illegal or unknown variable in a formula}
       {- [SKT003] formula not syntactically monotone in a stream property}
       {- [SKT004] dangling reference (interface / component / effect)}
       {- [SKT005] malformed deployment (pre-placement or goal)}
       {- [SKT006] no goals}}
    - [SKT1xx] static preflight over a compiled problem
      {ul
       {- [SKT101] interface with no producing component or source}
       {- [SKT102] component with no resource-feasible placement}
       {- [SKT103] interface level grid has gaps / overlaps / finite top}
       {- [SKT104] topology cut separates every producer from a goal node}
       {- [SKT105] goal proposition unreachable in the PLRG relaxation}
       {- [SKT106] goal component infeasible on its goal node}}
    - [SKT2xx] plan certification
      {ul
       {- [SKT201] precondition proposition not established}
       {- [SKT202] level assignment incompatible with the stream state}
       {- [SKT203] node resource overdrawn}
       {- [SKT204] link resource overdrawn}
       {- [SKT205] condition formula violated}
       {- [SKT206] computed output misses its declared level}
       {- [SKT207] recomputed cost bound differs from the plan's}
       {- [SKT208] action references a dead or mismatched topology element}
       {- [SKT209] goal proposition not satisfied at end of plan}}*)

type severity = Warning | Error

type t = {
  severity : severity;
  code : string;  (** stable machine code, ["SKT104"] *)
  loc : string;  (** subject, e.g. ["interface M"] or ["step 3"] *)
  message : string;  (** human explanation *)
  evidence : (string * string) list;  (** key/value supporting facts *)
}

val make :
  severity -> code:string -> loc:string -> ?evidence:(string * string) list ->
  string -> t

(** [error ~code ~loc fmt ...] / [warning ~code ~loc fmt ...] build a
    diagnostic with a printf-formatted message. *)
val error :
  code:string -> loc:string -> ?evidence:(string * string) list ->
  ('a, unit, string, t) format4 -> 'a

val warning :
  code:string -> loc:string -> ?evidence:(string * string) list ->
  ('a, unit, string, t) format4 -> 'a

val severity_label : severity -> string
val errors : t list -> t list
val warnings : t list -> t list
val max_severity : t list -> severity option

(** 0 when empty, 1 when the worst is a warning, 2 when any error — the
    exit-code convention of [sekitei check]. *)
val exit_code : t list -> int

(** Stable sort, errors first. *)
val by_severity : t list -> t list

(** ["error[SKT104] interface M: ... (k=v; ...)"] *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
val list_to_json : t list -> Json.t
