(** Heuristic-quality analysis of a profiled planner run.

    The RG search, run with [config.profile_h], records an
    {!Sekitei_core.Rg.hsample} for every node on the accepted solution's
    ancestor chain: the node's path cost [g], the SLRG heuristic it was
    queued with, and the PLRG h_max of the same pending set.  Against
    the solution cost [C*] the realized cost-to-go of such a node is
    [C* - g] (costs are set sums, so this holds for re-sequenced
    solutions too), which makes the per-node heuristic error
    [(C* - g) - h] directly measurable — the methodology of the
    heuristic-accuracy evaluations in the LAMA / Fast Downward
    tradition.

    [analyze] turns the samples into per-phase error statistics
    (percentiles over a {!Sekitei_util.Running_stats.Reservoir}),
    counts admissibility violations ([h > C* - g], which must be zero
    for both heuristics or the optimality claim is void), and computes
    the wasted-work ratio: the fraction of expansions spent on nodes
    off the returned path. *)

(** Error statistics of one heuristic ("phase"): all in cost units. *)
type phase_quality = {
  samples : int;
  mean_err : float;  (** mean of [(C* - g) - h] *)
  p50 : float;
  p90 : float;
  p99 : float;
  max_err : float;
  violations : int;  (** samples with [h > C* - g + 1e-6]; must be 0 *)
}

type report = {
  plan_cost : float;  (** [C*], the optimized cost lower bound *)
  path_nodes : int;  (** sampled nodes on the solution path *)
  expanded : int;  (** total RG expansions of the run *)
  wasted_ratio : float;
      (** [(expanded - path_nodes) / expanded]; 0 when nothing was
          expanded off the returned path *)
  slrg : phase_quality;  (** the search heuristic *)
  plrg : phase_quality;  (** the per-proposition h_max it refines *)
}

(** [analyze ~plan_cost ~expanded samples] — [samples] root first as
    {!Sekitei_core.Planner.report} delivers them. *)
val analyze :
  plan_cost:float -> expanded:int -> Sekitei_core.Rg.hsample list -> report

(** Pull everything out of a solved, profiled planner report; [None]
    when the run failed or was not profiled. *)
val of_report : Sekitei_core.Planner.report -> report option

(** Render as ASCII tables (one row per phase, plus a summary line). *)
val render : report -> string
