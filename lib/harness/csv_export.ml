module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Replay = Sekitei_core.Replay
module Media = Sekitei_domains.Media

let quote field =
  let needs =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') field
  in
  if needs then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let row_line cells = String.concat "," (List.map quote cells) ^ "\n"

let header =
  [
    "network"; "levels"; "found"; "cost_bound"; "plan_actions";
    "realized_cost"; "lan_peak"; "wan_peak"; "total_actions"; "plrg_props";
    "plrg_actions"; "slrg_nodes"; "rg_created"; "rg_open"; "rg_duplicates"; "time_total_ms";
    "time_search_ms";
  ]

let float_cell = Printf.sprintf "%.6g"

let table2_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (row_line header);
  List.iter
    (fun (r : Table2.row) ->
      let s = r.Table2.stats in
      let plan_cells =
        match r.Table2.plan with
        | Some p ->
            [
              "1";
              float_cell p.Plan.cost_lb;
              string_of_int (Plan.length p);
              float_cell p.Plan.metrics.Replay.realized_cost;
              float_cell p.Plan.metrics.Replay.lan_peak;
              float_cell p.Plan.metrics.Replay.wan_peak;
            ]
        | None -> [ "0"; ""; ""; ""; ""; "" ]
      in
      Buffer.add_string buf
        (row_line
           ([ r.Table2.network; Media.scenario_name r.Table2.level_scenario ]
           @ plan_cells
           @ [
               string_of_int s.Planner.total_actions;
               string_of_int s.Planner.plrg_props;
               string_of_int s.Planner.plrg_actions;
               string_of_int s.Planner.slrg_nodes;
               string_of_int s.Planner.rg_created;
               string_of_int s.Planner.rg_open_left;
               string_of_int s.Planner.rg_duplicates;
               float_cell s.Planner.t_total_ms;
               float_cell s.Planner.t_search_ms;
             ])))
    rows;
  Buffer.contents buf

let write_table2 rows path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (table2_csv rows))
