module Media = Sekitei_domains.Media
module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Replay = Sekitei_core.Replay
module Table = Sekitei_util.Ascii_table

type row = {
  network : string;
  level_scenario : Media.scenario;
  plan : Sekitei_core.Plan.t option;
  stats : Planner.stats;
}

let run_cell ?config (sc : Scenarios.t) level =
  let leveling = Media.leveling level sc.Scenarios.app in
  let report =
    Planner.plan (Planner.request ?config sc.Scenarios.topo sc.Scenarios.app ~leveling)
  in
  {
    network = sc.Scenarios.name;
    level_scenario = level;
    plan = Result.to_option report.Planner.result;
    stats = report.Planner.stats;
  }

let run ?config ?networks ?(levels = Media.all_scenarios) () =
  let networks =
    match networks with Some n -> n | None -> Scenarios.all ()
  in
  List.concat_map
    (fun sc -> List.map (run_cell ?config sc) levels)
    networks

let cell_or cell none = match cell with Some x -> x | None -> none

let render rows =
  let t =
    Table.create
      ~aligns:
        [
          Table.Left; Table.Center; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
        ]
      [
        "Scenario"; "Lvl"; "cost bound"; "actions in plan"; "reserved LAN bw";
        "total # actions"; "PLRG (p/a)"; "SLRG"; "RG (made/left)";
        "time ms (tot/search)";
      ]
  in
  let last_network = ref "" in
  List.iter
    (fun r ->
      if !last_network <> "" && !last_network <> r.network then
        Table.add_separator t;
      last_network := r.network;
      let s = r.stats in
      Table.add_row t
        [
          r.network;
          Media.scenario_name r.level_scenario;
          cell_or
            (Option.map (fun p -> Table.float_cell p.Plan.cost_lb) r.plan)
            "no plan";
          cell_or
            (Option.map (fun p -> string_of_int (Plan.length p)) r.plan)
            "-";
          cell_or
            (Option.map
               (fun p ->
                 let peak = p.Plan.metrics.Replay.lan_peak in
                 if peak > 0. then Table.float_cell peak else "N/A")
               r.plan)
            "-";
          string_of_int s.Planner.total_actions;
          Printf.sprintf "%d / %d" s.Planner.plrg_props s.Planner.plrg_actions;
          string_of_int s.Planner.slrg_nodes;
          Printf.sprintf "%d / %d" s.Planner.rg_created s.Planner.rg_open_left;
          Printf.sprintf "%.0f / %.0f" s.Planner.t_total_ms s.Planner.t_search_ms;
        ])
    rows;
  Table.render t

let row_summary r =
  match r.plan with
  | Some p ->
      Printf.sprintf "%s/%s: plan len=%d cost_lb=%g lan_peak=%g" r.network
        (Media.scenario_name r.level_scenario)
        (Plan.length p) p.Plan.cost_lb p.Plan.metrics.Replay.lan_peak
  | None ->
      Printf.sprintf "%s/%s: no plan" r.network
        (Media.scenario_name r.level_scenario)
