module I = Sekitei_util.Interval
module Table = Sekitei_util.Ascii_table
module Topology = Sekitei_network.Topology
module Generators = Sekitei_network.Generators
module Dot = Sekitei_network.Dot
module Leveling = Sekitei_spec.Leveling
module Media = Sekitei_domains.Media
module Chain = Sekitei_domains.Chain
module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Replay = Sekitei_core.Replay
module Compile = Sekitei_core.Compile
module Postprocess = Sekitei_core.Postprocess

let ivl_list_to_string ivls =
  String.concat ", " (List.map I.to_string ivls)

let table1 () =
  let sc = Scenarios.tiny () in
  let t =
    Table.create
      [ "Scenario"; "Levels of bandwidth of M"; "Levels of link bandwidth" ]
  in
  List.iter
    (fun level ->
      let leveling = Media.leveling level sc.Scenarios.app in
      Table.add_row t
        [
          Media.scenario_name level;
          ivl_list_to_string (Leveling.iface_levels leveling "M" "ibw");
          ivl_list_to_string (Leveling.link_levels leveling "lbw");
        ])
    Media.all_scenarios;
  "Table 1: resource level scenarios (T, I, Z levels are proportional to M)\n"
  ^ Table.render t

let solve_scenario (sc : Scenarios.t) level =
  let leveling = Media.leveling level sc.Scenarios.app in
  let pb = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
  (Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app ~leveling), pb)

let describe_outcome pb (report : Planner.report) =
  match report.Planner.result with
  | Ok p ->
      Printf.sprintf
        "plan with %d actions, cost bound %s (realized %s), LAN peak %s, WAN peak %s:\n%s"
        (Plan.length p)
        (Table.float_cell p.Plan.cost_lb)
        (Table.float_cell p.Plan.metrics.Replay.realized_cost)
        (Table.float_cell p.Plan.metrics.Replay.lan_peak)
        (Table.float_cell p.Plan.metrics.Replay.wan_peak)
        (Plan.to_string pb p)
  | Error r -> Format.asprintf "NO PLAN: %a" Planner.pp_failure r

let fig3_4 () =
  let sc = Scenarios.tiny () in
  let greedy, gpb = solve_scenario sc Media.A in
  let leveled, lpb = solve_scenario sc Media.C in
  Printf.sprintf
    "Figures 3-4: Tiny network (2 nodes, one 70-unit WAN link; supply 200, \
     demand 90, CPU 30)\n\n\
     Original greedy Sekitei (scenario A): %s\n\n\
     Leveled planner (scenario C): %s\n"
    (describe_outcome gpb greedy)
    (describe_outcome lpb leveled)

let fig5 ?(weights = [ 0.25; 0.5; 0.75; 1.0; 1.25; 1.5; 2.0; 3.0; 4.0 ]) () =
  let topo = Chain.topology () in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "link-cost weight"; "plan actions"; "cost bound"; "chosen route" ]
  in
  List.iter
    (fun alpha ->
      let app = Chain.app ~cross_weight:alpha () in
      let leveling = Chain.leveling app in
      let pb = Compile.compile topo app leveling in
      let o = Planner.plan (Planner.request topo app ~leveling) in
      match o.Planner.result with
      | Ok p ->
          let uses_zip =
            List.exists (fun (n, _) -> String.equal n "Zip") (Plan.placements pb p)
          in
          Table.add_row t
            [
              Printf.sprintf "%g" alpha;
              string_of_int (Plan.length p);
              Table.float_cell p.Plan.cost_lb;
              (if uses_zip then "2 links + Zip/Unzip" else "3 links direct");
            ]
      | Error r ->
          Table.add_row t
            [
              Printf.sprintf "%g" alpha; "-"; "-";
              Format.asprintf "no plan (%a)" Planner.pp_failure r;
            ])
    weights;
  "Figure 5: cost weights flip the chosen plan (chain domain; place weight \
   fixed at 1)\n" ^ Table.render t

let fig9 () =
  let sc = Scenarios.small () in
  let shortest, spb = solve_scenario sc Media.B in
  let optimal, opb = solve_scenario sc Media.C in
  Printf.sprintf
    "Figure 9: Small network (6 nodes; path server n4 -LAN- n3 -WAN- n2 -LAN- \
     n1 -LAN- n0 client)\n\n\
     Suboptimal shortest plan (scenario B): %s\n\n\
     Optimal plan (scenario C): %s\n"
    (describe_outcome spb shortest)
    (describe_outcome opb optimal)

let fig10 ?(dot = false) () =
  let sc = Scenarios.large () in
  let topo = sc.Scenarios.topo in
  let lan, wan =
    Array.fold_left
      (fun (lan, wan) (l : Topology.link) ->
        match l.Topology.kind with
        | Topology.Lan -> (lan + 1, wan)
        | Topology.Wan -> (lan, wan + 1))
      (0, 0) (Topology.links topo)
  in
  let summary =
    Printf.sprintf
      "Figure 10: Large transit-stub network\n\
       nodes: %d (3 transit + 9 stubs x 10)\n\
       links: %d (%d LAN @150, %d WAN @70)\n\
       server: n%d, client: n%d (shortest path LAN-WAN-WAN-LAN)\n\
       connected: %b\n"
      (Topology.node_count topo) (Topology.link_count topo) lan wan
      sc.Scenarios.server sc.Scenarios.client
      (Topology.is_connected topo)
  in
  if dot then
    summary ^ "\n"
    ^ Dot.to_dot ~highlight:[ sc.Scenarios.server; sc.Scenarios.client ] topo
  else summary

let postprocess_ablation () =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "Post-processing ablation (paper section 2.3)\n\n";
  (* (a) A resource-rich Tiny variant: one 150-unit LAN link, so greedy
     succeeds but wastes bandwidth; post-processing throttles it down. *)
  let rich_topo = Generators.line_kinds [ Topology.Lan ] in
  let app = Sekitei_domains.Media.app ~server:0 ~client:1 () in
  let greedy = Planner.plan (Planner.request rich_topo app) in
  (match greedy.Planner.result with
  | Ok p ->
      let pb = Compile.compile rich_topo app Leveling.empty in
      pf
        "(a) Resource-rich Tiny (150-unit LAN link): greedy plan of %d actions \
         pushes %s units (link use %s).\n"
        (Plan.length p)
        (Table.float_cell
           (List.fold_left
              (fun acc (_, _, v) -> Float.max acc v)
              0. p.Plan.metrics.Replay.delivered))
        (Table.float_cell p.Plan.metrics.Replay.lan_peak);
      (match Postprocess.minimize pb p with
      | Some r ->
          pf
          "    post-processing throttles supply to %.1f%%, delivering %s units \
           (link use %s) - the legacy optimizer works when greedy finds a plan.\n"
            (100. *. r.Postprocess.scale)
            (Table.float_cell
               (List.fold_left
                  (fun acc (_, _, v) -> Float.max acc v)
                  0. r.Postprocess.metrics.Replay.delivered))
            (Table.float_cell r.Postprocess.metrics.Replay.lan_peak)
      | None -> pf "    post-processing unexpectedly failed.\n")
  | Error r ->
      pf "(a) unexpected greedy failure: %a\n"
        (fun () -> Format.asprintf "%a" Planner.pp_failure) r);
  (* (b) The paper's Scenario 1: greedy has nothing to post-process. *)
  let sc = Scenarios.tiny () in
  let greedy = Planner.plan (Planner.request sc.Scenarios.topo sc.Scenarios.app) in
  let leveled =
    Planner.plan
      (Planner.request sc.Scenarios.topo sc.Scenarios.app
         ~leveling:(Media.leveling Media.C sc.Scenarios.app))
  in
  pf
    "(b) Scenario 1 (Tiny, 70-unit WAN link): greedy result: %s; leveled \
     planner: %s.\n\
    \    Post-processing cannot help when the greedy planner never finds a \
     plan - resource levels are required.\n"
    (match greedy.Planner.result with
    | Ok _ -> "found a plan (unexpected)"
    | Error r -> Format.asprintf "%a" Planner.pp_failure r)
    (match leveled.Planner.result with
    | Ok p -> Printf.sprintf "%d-action plan" (Plan.length p)
    | Error _ -> "no plan (unexpected)");
  Buffer.contents buf
