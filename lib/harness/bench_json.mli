(** Machine-readable planner benchmark records ([bench/main.exe --json]).

    Emits one flat JSON object per (scenario, level) pair —
    [{scenario, actions, rg_created, rg_expanded, rg_duplicates,
    slrg_cache_hits, slrg_suffix_harvested, slrg_bound_promoted,
    slrg_deferred, slrg_saved, search_ms, warm_search_ms, compile_ms,
    plrg_ms, slrg_ms, rg_ms, minor_words, major_collections, jobs,
    wall_ms_batch}] —
    collected into a JSON array written to [BENCH_rg.json] so the
    planner's perf trajectory (per-phase split, SLRG cache reuse,
    deferred-evaluation savings, search-phase GC footprint) is tracked
    across commits. *)

type record = {
  scenario : string;  (** e.g. ["Small-C"] *)
  actions : int;  (** leveled actions after pruning *)
  rg_created : int;
  rg_expanded : int;
  rg_duplicates : int;
  slrg_cache_hits : int;  (** SLRG queries answered from cache *)
  slrg_suffix_harvested : int;  (** harvested exact cache entries *)
  slrg_bound_promoted : int;  (** exhausted bounds promoted to exact *)
  slrg_deferred : int;  (** RG nodes queued under the cheap PLRG bound *)
  slrg_saved : int;  (** SLRG queries never run thanks to deferral *)
  search_ms : float;  (** graph phases total (plrg + slrg create + rg) *)
  search_ms_p50 : float;
      (** per-repeat distribution of [t_search_ms] through a
          {!Sekitei_util.Histogram} (1% relative error, so [p50] can
          differ from the interpolated median [search_ms] records);
          schema-checked but never gated — small-N tails are noise *)
  search_ms_p90 : float;
  search_ms_p99 : float;
  warm_search_ms : float;
      (** [t_search_ms] of a warm {!Sekitei_core.Planner.Session} re-plan
          (median over the repeats, after one untimed cold plan); [0.]
          when the run did not measure warm timings ([--warm] off), so
          the schema is fixed either way *)
  compile_ms : float;  (** {!Sekitei_core.Planner.phases} [compile.ms] *)
  plrg_ms : float;
  slrg_ms : float;
      (** oracle construction + lazy queries; the queries run {e inside}
          the RG search, so [slrg_ms] is a subset of [rg_ms] *)
  rg_ms : float;
  minor_words : float;
      (** minor-heap words allocated by the RG search phase (its bracket
          includes the lazy SLRG queries) *)
  major_collections : int;  (** major GCs triggered by the RG search *)
  jobs : int;  (** worker domains of the batch that produced the record *)
  wall_ms_batch : float;
      (** wall time of the whole batch run, stamped identically on every
          record of one {!run_default}; with [jobs > 1] compare it to the
          sum of [search_ms] to read the parallel speedup *)
}

(** Solve the scenario at the given level and collect its record.
    [repeat] (default 1) re-runs the planner and records the {e median}
    of every timing (and of [minor_words]); counters come from the first
    run — the planner is deterministic, so they agree across repeats.
    [warm] (default [false]) additionally opens a planning session, runs
    one untimed cold plan, and records the median [t_search_ms] of
    [repeat] warm re-plans as [warm_search_ms].

    [metrics_armed] (default [true]) measures the production
    observability configuration: a shared metric registry and a
    flight recorder armed on every run's telemetry handle, no sinks
    attached.  [false] disarms both — the bench's [--no-metrics], used
    for the overhead A/B recorded in EXPERIMENTS.md. *)
val measure :
  ?config:Sekitei_core.Planner.config ->
  ?repeat:int ->
  ?warm:bool ->
  ?metrics_armed:bool ->
  Scenarios.t ->
  Sekitei_domains.Media.scenario ->
  record

(** The default tracked set: Tiny-C, Small-C and Large-C, measured
    across [jobs] worker domains (default 1 — sequential, the
    configuration whose timings the regression gate compares; parallel
    runs contend for cores and time the contention too).  Stamps [jobs]
    and [wall_ms_batch] on every record. *)
val run_default :
  ?config:Sekitei_core.Planner.config ->
  ?repeat:int ->
  ?jobs:int ->
  ?warm:bool ->
  ?metrics_armed:bool ->
  unit ->
  record list

(** Serialize as a JSON array, one record per line.  [tag] adds a
    ["tag"] field to every record (e.g. a commit phase label). *)
val to_json : ?tag:string -> record list -> string

(** Structural schema check of an emitted document; [Ok n] is the record
    count.  Used by the test-suite smoke test. *)
val validate : string -> (int, string) result

(** Full parse of an emitted document through {!Sekitei_util.Json},
    checking every schema key's type; [Ok n] is the record count. *)
val parse_check : string -> (int, string) result

val write_file : string -> string -> unit

(** {1 Baseline regression gate}

    [bench --json --baseline BENCH_rg.json --max-regress PCT] diffs the
    current run against the checked-in baseline and exits non-zero when
    any gated metric regressed by more than [PCT] percent.  The gated
    metrics are [search_ms], [rg_created], [slrg_ms] and
    [warm_search_ms]; [rg_created] is machine-independent, so a
    search-space blowup trips the gate even on hardware fast enough to
    hide it in the timings, and [warm_search_ms] catches cross-request
    reuse regressions (compared only when measured on both sides — an
    unmeasured run records 0.0, and 0-vs-0 never trips). *)

(** One (scenario, metric) comparison.  [d_pct] is the relative change
    in percent, positive when the current run is worse (higher). *)
type delta = {
  d_scenario : string;
  d_metric : string;
  d_base : float;
  d_cur : float;
  d_pct : float;
}

(** The metrics compared by {!diff_baseline}, in row order. *)
val gated_metrics : string list

(** [diff_baseline ~baseline records] parses [baseline] (a previously
    emitted document) and compares every current record against the
    baseline record with the same [scenario].  Errors on a malformed
    baseline or a current scenario the baseline does not cover. *)
val diff_baseline : baseline:string -> record list -> (delta list, string) result

(** Deltas exceeding [max_regress] percent (worse-only; improvements
    never trip the gate). *)
val regressions : max_regress:float -> delta list -> delta list

val render_deltas : delta list -> string
