(* Machine-readable planner benchmark records.

   One record per (scenario, level) pair, serialized as a JSON array so
   the perf trajectory of the RG search can be tracked across commits
   (BENCH_rg.json at the repository root).  No JSON library is available
   in the build environment, so emission and the schema check are
   hand-rolled over the fixed, flat schema below. *)

module Planner = Sekitei_core.Planner
module Media = Sekitei_domains.Media

type record = {
  scenario : string;
  actions : int;
  rg_created : int;
  rg_expanded : int;
  rg_duplicates : int;
  search_ms : float;
}

let measure ?config (sc : Scenarios.t) level =
  let leveling = Media.leveling level sc.Scenarios.app in
  let o = Planner.solve ?config sc.Scenarios.topo sc.Scenarios.app leveling in
  let s = o.Planner.stats in
  {
    scenario =
      Printf.sprintf "%s-%s" sc.Scenarios.name (Media.scenario_name level);
    actions = s.Planner.total_actions;
    rg_created = s.Planner.rg_created;
    rg_expanded = s.Planner.rg_expanded;
    rg_duplicates = s.Planner.rg_duplicates;
    search_ms = s.Planner.t_search_ms;
  }

let run_default ?config () =
  [
    measure ?config (Scenarios.tiny ()) Media.C;
    measure ?config (Scenarios.small ()) Media.C;
  ]

let record_to_json ?tag r =
  let tag_field =
    match tag with
    | None -> ""
    | Some t -> Printf.sprintf "\"tag\": \"%s\", " (String.escaped t)
  in
  Printf.sprintf
    "{%s\"scenario\": \"%s\", \"actions\": %d, \"rg_created\": %d, \
     \"rg_expanded\": %d, \"rg_duplicates\": %d, \"search_ms\": %.3f}"
    tag_field (String.escaped r.scenario) r.actions r.rg_created r.rg_expanded
    r.rg_duplicates r.search_ms

let to_json ?tag records =
  "[\n  "
  ^ String.concat ",\n  " (List.map (record_to_json ?tag) records)
  ^ "\n]\n"

let required_keys =
  [
    "\"scenario\"";
    "\"actions\"";
    "\"rg_created\"";
    "\"rg_expanded\"";
    "\"rg_duplicates\"";
    "\"search_ms\"";
  ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

(* Minimal structural check of an emitted document: a JSON array of
   objects, each carrying every schema key.  Returns the record count. *)
let validate doc =
  let doc = String.trim doc in
  let n = String.length doc in
  if n < 2 || doc.[0] <> '[' || doc.[n - 1] <> ']' then
    Error "not a JSON array"
  else
    let body = String.trim (String.sub doc 1 (n - 2)) in
    if body = "" then Ok 0
    else
      (* Records are emitted one per line; split on '}' boundaries. *)
      let chunks =
        String.split_on_char '}' body
        |> List.filter (fun c -> String.trim c <> "" && String.trim c <> ",")
      in
      let check i chunk =
        match
          List.find_opt (fun k -> not (contains chunk k)) required_keys
        with
        | Some missing ->
            Error (Printf.sprintf "record %d: missing key %s" i missing)
        | None -> Ok ()
      in
      let rec go i = function
        | [] -> Ok (List.length chunks)
        | c :: rest -> (
            match check i c with Ok () -> go (i + 1) rest | Error e -> Error e)
      in
      go 0 chunks

let write_file path doc =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)
