(* Machine-readable planner benchmark records.

   One record per (scenario, level) pair, serialized as a JSON array so
   the perf trajectory of the RG search can be tracked across commits
   (BENCH_rg.json at the repository root).  Serialization goes through
   the shared {!Sekitei_util.Json} writer over the fixed, flat schema
   below; the structural check stays hand-rolled so it exercises the
   emitted text independently of the writer. *)

module Planner = Sekitei_core.Planner
module Media = Sekitei_domains.Media
module Json = Sekitei_util.Json

type record = {
  scenario : string;
  actions : int;
  rg_created : int;
  rg_expanded : int;
  rg_duplicates : int;
  slrg_cache_hits : int;
  slrg_suffix_harvested : int;
  slrg_bound_promoted : int;
  search_ms : float;
  compile_ms : float;
  plrg_ms : float;
  slrg_ms : float;
  rg_ms : float;
}

let measure ?config (sc : Scenarios.t) level =
  let leveling = Media.leveling level sc.Scenarios.app in
  let r =
    Planner.plan (Planner.request ?config sc.Scenarios.topo sc.Scenarios.app ~leveling)
  in
  let s = r.Planner.stats and ph = r.Planner.phases in
  {
    scenario =
      Printf.sprintf "%s-%s" sc.Scenarios.name (Media.scenario_name level);
    actions = s.Planner.total_actions;
    rg_created = s.Planner.rg_created;
    rg_expanded = s.Planner.rg_expanded;
    rg_duplicates = s.Planner.rg_duplicates;
    slrg_cache_hits = s.Planner.slrg_cache_hits;
    slrg_suffix_harvested = s.Planner.slrg_suffix_harvested;
    slrg_bound_promoted = s.Planner.slrg_bound_promoted;
    search_ms = s.Planner.t_search_ms;
    compile_ms = ph.Planner.compile.Planner.ms;
    plrg_ms = ph.Planner.plrg.Planner.ms;
    slrg_ms = ph.Planner.slrg.Planner.ms;
    rg_ms = ph.Planner.rg.Planner.ms;
  }

let run_default ?config () =
  [
    measure ?config (Scenarios.tiny ()) Media.C;
    measure ?config (Scenarios.small ()) Media.C;
    measure ?config (Scenarios.large ()) Media.C;
  ]

(* Timings are rounded to microseconds so records stay diff-friendly. *)
let ms v = Json.Float (Float.round (v *. 1000.) /. 1000.)

let record_to_json ?tag r =
  let tag_field =
    match tag with None -> [] | Some t -> [ ("tag", Json.Str t) ]
  in
  Json.Obj
    (tag_field
    @ [
        ("scenario", Json.Str r.scenario);
        ("actions", Json.Int r.actions);
        ("rg_created", Json.Int r.rg_created);
        ("rg_expanded", Json.Int r.rg_expanded);
        ("rg_duplicates", Json.Int r.rg_duplicates);
        ("slrg_cache_hits", Json.Int r.slrg_cache_hits);
        ("slrg_suffix_harvested", Json.Int r.slrg_suffix_harvested);
        ("slrg_bound_promoted", Json.Int r.slrg_bound_promoted);
        ("search_ms", ms r.search_ms);
        ("compile_ms", ms r.compile_ms);
        ("plrg_ms", ms r.plrg_ms);
        ("slrg_ms", ms r.slrg_ms);
        ("rg_ms", ms r.rg_ms);
      ])

let to_json ?tag records =
  "[\n  "
  ^ String.concat ",\n  "
      (List.map (fun r -> Json.to_string (record_to_json ?tag r)) records)
  ^ "\n]\n"

let required_keys =
  [
    "\"scenario\"";
    "\"actions\"";
    "\"rg_created\"";
    "\"rg_expanded\"";
    "\"rg_duplicates\"";
    "\"slrg_cache_hits\"";
    "\"slrg_suffix_harvested\"";
    "\"slrg_bound_promoted\"";
    "\"search_ms\"";
    "\"compile_ms\"";
    "\"plrg_ms\"";
    "\"slrg_ms\"";
    "\"rg_ms\"";
  ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

(* Minimal structural check of an emitted document: a JSON array of
   objects, each carrying every schema key.  Returns the record count.
   Cross-checked against the real parser by [parse_check]. *)
let validate doc =
  let doc = String.trim doc in
  let n = String.length doc in
  if n < 2 || doc.[0] <> '[' || doc.[n - 1] <> ']' then
    Error "not a JSON array"
  else
    let body = String.trim (String.sub doc 1 (n - 2)) in
    if body = "" then Ok 0
    else
      (* Records are emitted one per line; split on '}' boundaries. *)
      let chunks =
        String.split_on_char '}' body
        |> List.filter (fun c -> String.trim c <> "" && String.trim c <> ",")
      in
      let check i chunk =
        match
          List.find_opt (fun k -> not (contains chunk k)) required_keys
        with
        | Some missing ->
            Error (Printf.sprintf "record %d: missing key %s" i missing)
        | None -> Ok ()
      in
      let rec go i = function
        | [] -> Ok (List.length chunks)
        | c :: rest -> (
            match check i c with Ok () -> go (i + 1) rest | Error e -> Error e)
      in
      go 0 chunks

let parse_check doc =
  match Json.of_string doc with
  | Error e -> Error e
  | Ok (Json.List records) ->
      let bad_key obj k =
        match Json.member k obj with
        | None -> Some k
        | Some v -> (
            match (k, v) with
            | ("scenario" | "tag"), Json.Str _ -> None
            | ( ( "actions" | "rg_created" | "rg_expanded" | "rg_duplicates"
                | "slrg_cache_hits" | "slrg_suffix_harvested"
                | "slrg_bound_promoted" ),
                Json.Int _ ) ->
                None
            | ( ("search_ms" | "compile_ms" | "plrg_ms" | "slrg_ms" | "rg_ms"),
                (Json.Float _ | Json.Int _) ) ->
                None
            | _ -> Some k)
      in
      let keys =
        [
          "scenario"; "actions"; "rg_created"; "rg_expanded"; "rg_duplicates";
          "slrg_cache_hits"; "slrg_suffix_harvested"; "slrg_bound_promoted";
          "search_ms"; "compile_ms"; "plrg_ms"; "slrg_ms"; "rg_ms";
        ]
      in
      let rec go i = function
        | [] -> Ok (List.length records)
        | r :: rest -> (
            match List.find_map (bad_key r) keys with
            | Some k ->
                Error (Printf.sprintf "record %d: bad or missing key %s" i k)
            | None -> go (i + 1) rest)
      in
      go 0 records
  | Ok _ -> Error "not a JSON array"

let write_file path doc =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)
