(* Machine-readable planner benchmark records.

   One record per (scenario, level) pair, serialized as a JSON array so
   the perf trajectory of the RG search can be tracked across commits
   (BENCH_rg.json at the repository root).  Serialization goes through
   the shared {!Sekitei_util.Json} writer over the fixed, flat schema
   below; the structural check stays hand-rolled so it exercises the
   emitted text independently of the writer. *)

module Planner = Sekitei_core.Planner
module Media = Sekitei_domains.Media
module Json = Sekitei_util.Json
module Timer = Sekitei_util.Timer
module Domain_pool = Sekitei_util.Domain_pool
module Histogram = Sekitei_util.Histogram
module Telemetry = Sekitei_telemetry.Telemetry
module Registry = Sekitei_telemetry.Registry
module Certify = Sekitei_analysis.Certify
module Diagnostic = Sekitei_util.Diagnostic

type record = {
  scenario : string;
  actions : int;
  rg_created : int;
  rg_expanded : int;
  rg_duplicates : int;
  slrg_cache_hits : int;
  slrg_suffix_harvested : int;
  slrg_bound_promoted : int;
  slrg_deferred : int;
  slrg_saved : int;
  search_ms : float;
  search_ms_p50 : float;
  search_ms_p90 : float;
  search_ms_p99 : float;
  warm_search_ms : float;
  compile_ms : float;
  plrg_ms : float;
  slrg_ms : float;
  rg_ms : float;
  minor_words : float;
  major_collections : int;
  jobs : int;
  wall_ms_batch : float;
}

let median xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 0 then 0.
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let measure ?config ?(repeat = 1) ?(warm = false) ?(metrics_armed = true)
    (sc : Scenarios.t) level =
  let repeat = Stdlib.max 1 repeat in
  let leveling = Media.leveling level sc.Scenarios.app in
  (* The recorded timings measure the production configuration: metric
     registry shared across the repeats and a flight recorder armed on
     every run's telemetry handle, with no sinks attached — exactly the
     always-on observability a deployed planner carries.  [--no-metrics]
     (metrics_armed = false) disarms both for the overhead A/B tracked
     in EXPERIMENTS.md. *)
  let metrics = if metrics_armed then Some (Registry.create ()) else None in
  let telemetry () =
    if metrics_armed then Telemetry.create ~flight:(Telemetry.Flight.create ()) []
    else Telemetry.null
  in
  let runs =
    List.init repeat (fun _ ->
        (* Each timed run starts from a compacted heap: without this,
           garbage left by earlier scenarios/repeats of the same process
           charges its collection cost to whichever run happens to
           allocate next, and the medians drift with measurement order. *)
        Gc.compact ();
        Planner.plan ?metrics
          (Planner.request ?config ~telemetry:(telemetry ())
             sc.Scenarios.topo sc.Scenarios.app ~leveling))
  in
  (* The planner is deterministic, so the counters agree across repeats;
     they are read from the first run.  Timings (and the allocation
     figure, which GC state can perturb) take the median — one noisy
     run out of three no longer moves the checked-in record. *)
  let first = List.hd runs in
  (* Every benchmarked plan is independently certified, outside the
     timed runs — a perf record for a plan the certifier rejects would
     be tracking a planner bug, not a planner. *)
  (match first.Planner.result with
  | Ok p -> (
      let pb =
        Sekitei_core.Compile.compile sc.Scenarios.topo sc.Scenarios.app
          leveling
      in
      match Certify.check pb p with
      | [] -> ()
      | d :: _ ->
          failwith
            (Printf.sprintf "bench %s-%s: plan failed certification: %s"
               sc.Scenarios.name (Media.scenario_name level)
               (Diagnostic.to_string d)))
  | Error _ -> ());
  let s = first.Planner.stats in
  let med f = median (List.map f runs) in
  (* Warm timings come from a {!Planner.Session}: one cold plan compiles
     the problem and fills the oracle, then [repeat] warm re-plans are
     timed and the median recorded — the cross-request reuse the Session
     API exists for.  The cold figures above stay one-shot runs so they
     remain comparable with pre-session baselines; 0.0 when [warm] was
     not requested, keeping the schema fixed. *)
  let warm_search_ms =
    if not warm then 0.
    else begin
      Gc.compact ();
      let session =
        Planner.Session.create ?metrics
          (Planner.request ?config ~telemetry:(telemetry ())
             sc.Scenarios.topo sc.Scenarios.app ~leveling)
      in
      ignore (Planner.Session.plan session);
      median
        (List.init repeat (fun _ ->
             (Planner.Session.plan session).Planner.stats.Planner.t_search_ms))
    end
  in
  (* Per-repeat distribution of the search time, through the same
     log-bucketed histogram the metric registry uses: with --repeat 3
     the percentiles bracket the median that the gate tracks (p50 can
     differ from the even-count interpolated [median] by the histogram's
     1% relative error); schema-checked but never gated, since small-N
     tails are noise by construction. *)
  let search_hist = Histogram.create () in
  List.iter
    (fun r -> Histogram.add search_hist r.Planner.stats.Planner.t_search_ms)
    runs;
  let search_p q = Histogram.percentile search_hist q in
  {
    scenario =
      Printf.sprintf "%s-%s" sc.Scenarios.name (Media.scenario_name level);
    actions = s.Planner.total_actions;
    rg_created = s.Planner.rg_created;
    rg_expanded = s.Planner.rg_expanded;
    rg_duplicates = s.Planner.rg_duplicates;
    slrg_cache_hits = s.Planner.slrg_cache_hits;
    slrg_suffix_harvested = s.Planner.slrg_suffix_harvested;
    slrg_bound_promoted = s.Planner.slrg_bound_promoted;
    slrg_deferred = s.Planner.slrg_deferred;
    slrg_saved = s.Planner.slrg_saved;
    search_ms = med (fun r -> r.Planner.stats.Planner.t_search_ms);
    search_ms_p50 = search_p 0.50;
    search_ms_p90 = search_p 0.90;
    search_ms_p99 = search_p 0.99;
    warm_search_ms;
    compile_ms = med (fun r -> r.Planner.phases.Planner.compile.Planner.ms);
    plrg_ms = med (fun r -> r.Planner.phases.Planner.plrg.Planner.ms);
    slrg_ms = med (fun r -> r.Planner.phases.Planner.slrg.Planner.ms);
    rg_ms = med (fun r -> r.Planner.phases.Planner.rg.Planner.ms);
    minor_words =
      med (fun r -> r.Planner.phases.Planner.rg.Planner.minor_words);
    major_collections =
      first.Planner.phases.Planner.rg.Planner.major_collections;
    jobs = 1;
    wall_ms_batch = 0.;
  }

let run_default ?config ?(repeat = 1) ?(jobs = 1) ?(warm = false)
    ?(metrics_armed = true) () =
  let t = Timer.start () in
  let records =
    Domain_pool.map ~jobs
      (fun (sc, level) -> measure ?config ~repeat ~warm ~metrics_armed sc level)
      [
        (Scenarios.tiny (), Media.C);
        (Scenarios.small (), Media.C);
        (Scenarios.large (), Media.C);
      ]
  in
  let wall_ms_batch = Timer.elapsed_ms t in
  List.map (fun r -> { r with jobs; wall_ms_batch }) records

(* Timings are rounded to microseconds so records stay diff-friendly. *)
let ms v = Json.Float (Float.round (v *. 1000.) /. 1000.)

let record_to_json ?tag r =
  let tag_field =
    match tag with None -> [] | Some t -> [ ("tag", Json.Str t) ]
  in
  Json.Obj
    (tag_field
    @ [
        ("scenario", Json.Str r.scenario);
        ("actions", Json.Int r.actions);
        ("rg_created", Json.Int r.rg_created);
        ("rg_expanded", Json.Int r.rg_expanded);
        ("rg_duplicates", Json.Int r.rg_duplicates);
        ("slrg_cache_hits", Json.Int r.slrg_cache_hits);
        ("slrg_suffix_harvested", Json.Int r.slrg_suffix_harvested);
        ("slrg_bound_promoted", Json.Int r.slrg_bound_promoted);
        ("slrg_deferred", Json.Int r.slrg_deferred);
        ("slrg_saved", Json.Int r.slrg_saved);
        ("search_ms", ms r.search_ms);
        ("search_ms_p50", ms r.search_ms_p50);
        ("search_ms_p90", ms r.search_ms_p90);
        ("search_ms_p99", ms r.search_ms_p99);
        ("warm_search_ms", ms r.warm_search_ms);
        ("compile_ms", ms r.compile_ms);
        ("plrg_ms", ms r.plrg_ms);
        ("slrg_ms", ms r.slrg_ms);
        ("rg_ms", ms r.rg_ms);
        ("minor_words", Json.Float (Float.round r.minor_words));
        ("major_collections", Json.Int r.major_collections);
        ("jobs", Json.Int r.jobs);
        ("wall_ms_batch", ms r.wall_ms_batch);
      ])

let to_json ?tag records =
  "[\n  "
  ^ String.concat ",\n  "
      (List.map (fun r -> Json.to_string (record_to_json ?tag r)) records)
  ^ "\n]\n"

let required_keys =
  [
    "\"scenario\"";
    "\"actions\"";
    "\"rg_created\"";
    "\"rg_expanded\"";
    "\"rg_duplicates\"";
    "\"slrg_cache_hits\"";
    "\"slrg_suffix_harvested\"";
    "\"slrg_bound_promoted\"";
    "\"slrg_deferred\"";
    "\"slrg_saved\"";
    "\"search_ms\"";
    "\"search_ms_p50\"";
    "\"search_ms_p90\"";
    "\"search_ms_p99\"";
    "\"warm_search_ms\"";
    "\"compile_ms\"";
    "\"plrg_ms\"";
    "\"slrg_ms\"";
    "\"rg_ms\"";
    "\"minor_words\"";
    "\"major_collections\"";
    "\"jobs\"";
    "\"wall_ms_batch\"";
  ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

(* Minimal structural check of an emitted document: a JSON array of
   objects, each carrying every schema key.  Returns the record count.
   Cross-checked against the real parser by [parse_check]. *)
let validate doc =
  let doc = String.trim doc in
  let n = String.length doc in
  if n < 2 || doc.[0] <> '[' || doc.[n - 1] <> ']' then
    Error "not a JSON array"
  else
    let body = String.trim (String.sub doc 1 (n - 2)) in
    if body = "" then Ok 0
    else
      (* Records are emitted one per line; split on '}' boundaries. *)
      let chunks =
        String.split_on_char '}' body
        |> List.filter (fun c -> String.trim c <> "" && String.trim c <> ",")
      in
      let check i chunk =
        match
          List.find_opt (fun k -> not (contains chunk k)) required_keys
        with
        | Some missing ->
            Error (Printf.sprintf "record %d: missing key %s" i missing)
        | None -> Ok ()
      in
      let rec go i = function
        | [] -> Ok (List.length chunks)
        | c :: rest -> (
            match check i c with Ok () -> go (i + 1) rest | Error e -> Error e)
      in
      go 0 chunks

let parse_check doc =
  match Json.of_string doc with
  | Error e -> Error e
  | Ok (Json.List records) ->
      let bad_key obj k =
        match Json.member k obj with
        | None -> Some k
        | Some v -> (
            match (k, v) with
            | ("scenario" | "tag"), Json.Str _ -> None
            | ( ( "actions" | "rg_created" | "rg_expanded" | "rg_duplicates"
                | "slrg_cache_hits" | "slrg_suffix_harvested"
                | "slrg_bound_promoted" | "slrg_deferred" | "slrg_saved"
                | "major_collections" | "jobs" ),
                Json.Int _ ) ->
                None
            | ( ( "search_ms" | "search_ms_p50" | "search_ms_p90"
                | "search_ms_p99" | "warm_search_ms" | "compile_ms"
                | "plrg_ms" | "slrg_ms" | "rg_ms" | "minor_words"
                | "wall_ms_batch" ),
                (Json.Float _ | Json.Int _) ) ->
                None
            | _ -> Some k)
      in
      let keys =
        [
          "scenario"; "actions"; "rg_created"; "rg_expanded"; "rg_duplicates";
          "slrg_cache_hits"; "slrg_suffix_harvested"; "slrg_bound_promoted";
          "slrg_deferred"; "slrg_saved"; "search_ms"; "search_ms_p50";
          "search_ms_p90"; "search_ms_p99"; "warm_search_ms"; "compile_ms";
          "plrg_ms"; "slrg_ms"; "rg_ms"; "minor_words"; "major_collections";
          "jobs"; "wall_ms_batch";
        ]
      in
      let rec go i = function
        | [] -> Ok (List.length records)
        | r :: rest -> (
            match List.find_map (bad_key r) keys with
            | Some k ->
                Error (Printf.sprintf "record %d: bad or missing key %s" i k)
            | None -> go (i + 1) rest)
      in
      go 0 records
  | Ok _ -> Error "not a JSON array"

let write_file path doc =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)

(* ------------------------------------------------------------------ *)
(* Baseline regression diff                                            *)
(* ------------------------------------------------------------------ *)

type delta = {
  d_scenario : string;
  d_metric : string;
  d_base : float;
  d_cur : float;
  d_pct : float;
}

(* The gated metrics: RG search wall time, RG nodes created (exactly
   reproducible — it catches search-space blowups that a fast machine
   would hide), the SLRG share of the search, and the warm session
   re-plan time (a cross-request reuse regression shows up there first;
   when neither baseline nor current run measured warm, both sides are
   0.0 and the comparison is a no-op). *)
let gated_metrics = [ "search_ms"; "rg_created"; "slrg_ms"; "warm_search_ms" ]

let metric_of_record r = function
  | "search_ms" -> r.search_ms
  | "rg_created" -> float_of_int r.rg_created
  | "slrg_ms" -> r.slrg_ms
  | "warm_search_ms" -> r.warm_search_ms
  | m -> invalid_arg ("Bench_json.metric_of_record: " ^ m)

let diff_baseline ~baseline records =
  match Json.of_string baseline with
  | Error e -> Error ("baseline: " ^ e)
  | Ok (Json.List rows) -> (
      let lookup scenario =
        List.find_opt
          (fun row ->
            match Json.member "scenario" row with
            | Some (Json.Str s) -> String.equal s scenario
            | _ -> false)
          rows
      in
      let diff_record r =
        match lookup r.scenario with
        | None -> Error (Printf.sprintf "baseline has no record for %s" r.scenario)
        | Some row ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | m :: rest -> (
                  match Option.bind (Json.member m row) Json.to_float with
                  | None ->
                      Error
                        (Printf.sprintf "baseline %s: bad or missing %s"
                           r.scenario m)
                  | Some base ->
                      let cur = metric_of_record r m in
                      let pct =
                        if base > 0. then (cur -. base) /. base *. 100.
                        else if cur > 0. then Float.infinity
                        else 0.
                      in
                      go
                        ({
                           d_scenario = r.scenario;
                           d_metric = m;
                           d_base = base;
                           d_cur = cur;
                           d_pct = pct;
                         }
                        :: acc)
                        rest)
            in
            go [] gated_metrics
      in
      let rec all acc = function
        | [] -> Ok (List.concat (List.rev acc))
        | r :: rest -> (
            match diff_record r with
            | Ok ds -> all (ds :: acc) rest
            | Error _ as e -> e)
      in
      all [] records)
  | Ok _ -> Error "baseline: not a JSON array"

let regressions ~max_regress deltas =
  List.filter (fun d -> d.d_pct > max_regress) deltas

let render_deltas deltas =
  let module Table = Sekitei_util.Ascii_table in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "scenario"; "metric"; "baseline"; "current"; "delta %" ]
  in
  List.iter
    (fun d ->
      Table.add_row t
        [
          d.d_scenario;
          d.d_metric;
          Table.float_cell d.d_base;
          Table.float_cell d.d_cur;
          (if Float.is_finite d.d_pct then Printf.sprintf "%+.1f" d.d_pct
           else "+inf");
        ])
    deltas;
  Table.render t
