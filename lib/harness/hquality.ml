module Rg = Sekitei_core.Rg
module Planner = Sekitei_core.Planner
module Plan = Sekitei_core.Plan
module Stats = Sekitei_util.Running_stats
module Table = Sekitei_util.Ascii_table

type phase_quality = {
  samples : int;
  mean_err : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_err : float;
  violations : int;
}

type report = {
  plan_cost : float;
  path_nodes : int;
  expanded : int;
  wasted_ratio : float;
  slrg : phase_quality;
  plrg : phase_quality;
}

let admissibility_eps = 1e-6

let phase_of errs =
  match errs with
  | [] ->
      {
        samples = 0;
        mean_err = 0.;
        p50 = 0.;
        p90 = 0.;
        p99 = 0.;
        max_err = 0.;
        violations = 0;
      }
  | _ ->
      let res = Stats.Reservoir.create ~capacity:4096 () in
      List.iter (Stats.Reservoir.add res) errs;
      let st = Stats.of_list errs in
      {
        samples = List.length errs;
        mean_err = Stats.mean st;
        p50 = Stats.Reservoir.percentile res 0.5;
        p90 = Stats.Reservoir.percentile res 0.9;
        p99 = Stats.Reservoir.percentile res 0.99;
        max_err = Stats.max st;
        violations =
          List.length (List.filter (fun e -> e < -.admissibility_eps) errs);
      }

let analyze ~plan_cost ~expanded samples =
  let err h (s : Rg.hsample) = plan_cost -. s.Rg.g -. h s in
  let slrg_errs = List.map (err (fun s -> s.Rg.h_slrg)) samples in
  let plrg_errs = List.map (err (fun s -> s.Rg.h_plrg)) samples in
  let path_nodes = List.length samples in
  {
    plan_cost;
    path_nodes;
    expanded;
    wasted_ratio =
      (if expanded <= 0 then 0.
       else
         float_of_int (Stdlib.max 0 (expanded - path_nodes))
         /. float_of_int expanded);
    slrg = phase_of slrg_errs;
    plrg = phase_of plrg_errs;
  }

let of_report (r : Planner.report) =
  match (r.Planner.result, r.Planner.hquality) with
  | Ok plan, Some (_ :: _ as samples) ->
      Some
        (analyze ~plan_cost:plan.Plan.cost_lb
           ~expanded:r.Planner.stats.Planner.rg_expanded samples)
  | _ -> None

let render r =
  let t =
    Table.create
      ~aligns:
        [
          Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right;
        ]
      [
        "heuristic"; "samples"; "mean err"; "p50"; "p90"; "p99"; "max err";
        "violations";
      ]
  in
  let row name (q : phase_quality) =
    Table.add_row t
      [
        name;
        string_of_int q.samples;
        Table.float_cell q.mean_err;
        Table.float_cell q.p50;
        Table.float_cell q.p90;
        Table.float_cell q.p99;
        Table.float_cell q.max_err;
        string_of_int q.violations;
      ]
  in
  row "slrg" r.slrg;
  row "plrg" r.plrg;
  Table.render t
  ^ Printf.sprintf
      "plan cost %s; %d path node(s), %d expansion(s), wasted-work ratio \
       %.2f\n"
      (Table.float_cell r.plan_cost)
      r.path_nodes r.expanded r.wasted_ratio
