module Expr = Sekitei_expr.Expr
module Topology = Sekitei_network.Topology
module D = Sekitei_util.Diagnostic

type issue = { where : string; what : string }

let pp_issue fmt i = Format.fprintf fmt "%s: %s" i.where i.what

let split_var v =
  match String.index_opt v '.' with
  | Some dot ->
      Some (String.sub v 0 dot, String.sub v (dot + 1) (String.length v - dot - 1))
  | None -> None

(* All validation findings are errors: an invalid spec never reaches the
   compiler ([check_exn] raises on any of them).  Codes follow the SKT0xx
   block documented in {!Sekitei_util.Diagnostic}. *)
let check_diagnostics topo (app : Model.app) =
  let diags = ref [] in
  let report ~code where what = diags := D.make D.Error ~code ~loc:where what :: !diags in
  let node_resources = Topology.node_resource_names topo in
  (* A topology without links defines no link resources at all; treating
     every cross formula as dangling would reject otherwise-fine specs, so
     link-resource checks are skipped in that degenerate case (crossings
     are impossible anyway). *)
  let no_links = Array.length (Topology.links topo) = 0 in
  let link_resources = Topology.link_resource_names topo in
  let link_resource_ok r = no_links || List.mem r link_resources in
  let iface_names = List.map (fun (i : Model.iface) -> i.iface_name) app.interfaces in
  let dup names what where =
    let sorted = List.sort compare names in
    let rec scan = function
      | a :: (b :: _ as rest) ->
          if String.equal a b then
            report ~code:"SKT001" where (Printf.sprintf "duplicate %s %s" what a);
          scan rest
      | _ -> ()
    in
    scan sorted
  in
  dup iface_names "interface" "app";
  dup (List.map (fun (c : Model.component) -> c.comp_name) app.components)
    "component" "app";

  (* Variables legal in a component formula of [comp]. *)
  let component_var_ok (comp : Model.component) v =
    match split_var v with
    | Some ("node", r) -> List.mem r node_resources
    | Some (iface, prop) -> (
        (List.mem iface comp.requires || List.mem iface comp.provides)
        &&
        match Model.find_iface app iface with
        | Some i -> Model.find_property i prop <> None
        | None -> false)
    | None -> false
  in
  (* Variables legal in a cross formula of interface [i]. *)
  let cross_var_ok (i : Model.iface) v =
    match split_var v with
    | Some ("link", r) -> link_resource_ok r
    | Some _ -> false
    | None -> Model.find_property i v <> None
  in

  List.iter
    (fun (i : Model.iface) ->
      let where = "interface " ^ i.iface_name in
      dup (List.map (fun p -> p.Model.prop_name) i.properties) "property" where;
      if i.properties = [] then report ~code:"SKT004" where "no properties";
      let check_vars what e =
        List.iter
          (fun v ->
            if not (cross_var_ok i v) then
              report ~code:"SKT002" where
                (Printf.sprintf "%s references unknown variable %s" what v))
          (Expr.vars e)
      in
      List.iter
        (fun (p, e) ->
          if Model.find_property i p = None then
            report ~code:"SKT004" where
              (Printf.sprintf "cross transform targets unknown property %s" p);
          check_vars "cross transform" e;
          (* Endpoint interval evaluation requires monotone transforms. *)
          List.iter
            (fun v ->
              match split_var v with
              | Some _ -> ()
              | None -> (
                  match Expr.monotonicity e v with
                  | Expr.Increasing | Expr.Constant | Expr.Decreasing -> ()
                  | Expr.Unknown ->
                      report ~code:"SKT003" where
                        (Printf.sprintf
                           "cross transform for %s is not provably monotone in %s" p v)))
            (Expr.vars e))
        i.cross_transforms;
      List.iter
        (fun (r, e) ->
          if not (link_resource_ok r) then
            report ~code:"SKT004" where
              (Printf.sprintf "consumes unknown link resource %s" r);
          check_vars "cross consumption" e)
        i.cross_consumes;
      List.iter
        (fun c ->
          List.iter
            (fun v ->
              if not (cross_var_ok i v) then
                report ~code:"SKT002" where
                  (Printf.sprintf "cross condition references unknown variable %s" v))
            (Expr.cond_vars c))
        i.cross_conditions;
      check_vars "cross cost" i.cross_cost)
    app.interfaces;

  List.iter
    (fun (c : Model.component) ->
      let where = "component " ^ c.comp_name in
      List.iter
        (fun i ->
          if not (List.mem i iface_names) then
            report ~code:"SKT004" where
              (Printf.sprintf "requires unknown interface %s" i))
        c.requires;
      List.iter
        (fun i ->
          if not (List.mem i iface_names) then
            report ~code:"SKT004" where
              (Printf.sprintf "provides unknown interface %s" i))
        c.provides;
      let check_vars what e =
        List.iter
          (fun v ->
            if not (component_var_ok c v) then
              report ~code:"SKT002" where
                (Printf.sprintf "%s references unknown variable %s" what v))
          (Expr.vars e)
      in
      List.iter
        (fun cond ->
          List.iter
            (fun v ->
              if not (component_var_ok c v) then
                report ~code:"SKT002" where
                  (Printf.sprintf "condition references unknown variable %s" v))
            (Expr.cond_vars cond))
        c.conditions;
      List.iter
        (fun (iface, prop, e) ->
          if not (List.mem iface c.provides) then
            report ~code:"SKT004" where
              (Printf.sprintf "effect targets %s which is not provided" iface);
          (match Model.find_iface app iface with
          | Some i when Model.find_property i prop = None ->
              report ~code:"SKT004" where
                (Printf.sprintf "effect targets unknown property %s.%s" iface prop)
          | _ -> ());
          check_vars "effect" e;
          List.iter
            (fun v ->
              match Expr.monotonicity e v with
              | Expr.Increasing | Expr.Constant | Expr.Decreasing -> ()
              | Expr.Unknown ->
                  report ~code:"SKT003" where
                    (Printf.sprintf "effect for %s.%s is not provably monotone in %s"
                       iface prop v))
            (Expr.vars e))
        c.effects;
      (* Every provided primary property should be set by some effect. *)
      List.iter
        (fun iface ->
          match Model.find_iface app iface with
          | Some i ->
              let primary = (Model.primary_property i).prop_name in
              if
                not
                  (List.exists
                     (fun (fi, fp, _) ->
                       String.equal fi iface && String.equal fp primary)
                     c.effects)
              then
                report ~code:"SKT004" where
                  (Printf.sprintf "provides %s but never sets %s.%s" iface iface primary)
          | None -> ())
        c.provides;
      List.iter
        (fun (r, e) ->
          if not (List.mem r node_resources) then
            report ~code:"SKT004" where
              (Printf.sprintf "consumes unknown node resource %s" r);
          check_vars "consumption" e)
        c.consumes;
      check_vars "cost" c.place_cost)
    app.components;

  let n = Topology.node_count topo in
  List.iter
    (fun (comp, node) ->
      if Model.find_component app comp = None then
        report ~code:"SKT005" "pre_placed" (Printf.sprintf "unknown component %s" comp);
      if node < 0 || node >= n then
        report ~code:"SKT005" "pre_placed" (Printf.sprintf "node %d out of range" node))
    app.pre_placed;
  List.iter
    (fun g ->
      match g with
      | Model.Placed (comp, node) ->
          if Model.find_component app comp = None then
            report ~code:"SKT005" "goal" (Printf.sprintf "unknown component %s" comp);
          if node < 0 || node >= n then
            report ~code:"SKT005" "goal" (Printf.sprintf "node %d out of range" node)
      | Model.Available (iface, prop, node, _) ->
          (match Model.find_iface app iface with
          | None ->
              report ~code:"SKT005" "goal" (Printf.sprintf "unknown interface %s" iface)
          | Some i ->
              if Model.find_property i prop = None then
                report ~code:"SKT005" "goal"
                  (Printf.sprintf "unknown property %s.%s" iface prop));
          if node < 0 || node >= n then
            report ~code:"SKT005" "goal" (Printf.sprintf "node %d out of range" node))
    app.goals;
  if app.goals = [] then report ~code:"SKT006" "goal" "no goals";
  List.rev !diags

(* Historical API: the diagnostic's loc/message pair, codes dropped. *)
let check topo app =
  List.map
    (fun (d : D.t) -> { where = d.D.loc; what = d.D.message })
    (check_diagnostics topo app)

let check_exn topo app =
  match check topo app with
  | [] -> ()
  | issues ->
      let msgs =
        List.map (fun i -> Printf.sprintf "%s: %s" i.where i.what) issues
      in
      invalid_arg ("invalid CPP specification:\n  " ^ String.concat "\n  " msgs)
