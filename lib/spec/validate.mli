(** Static well-formedness checks for CPP specifications.

    Run before compilation: catches dangling interface references,
    formulae over unknown variables, non-monotone effect formulae (the
    planner's endpoint evaluation assumes monotonicity, paper section 2.2),
    and goals naming unknown components or out-of-range nodes. *)

type issue = { where : string; what : string }

val pp_issue : Format.formatter -> issue -> unit

(** Full check of an application against a topology; empty list = valid.
    Diagnostics accumulate — one pass reports every problem, not just the
    first — carrying the [SKT0xx] codes from {!Sekitei_util.Diagnostic}
    (all at [Error] severity: an invalid spec never reaches the
    compiler). *)
val check_diagnostics :
  Sekitei_network.Topology.t -> Model.app -> Sekitei_util.Diagnostic.t list

(** {!check_diagnostics} flattened to the historical [where]/[what]
    pairs (codes dropped). *)
val check : Sekitei_network.Topology.t -> Model.app -> issue list

(** [check_exn topo app] raises [Invalid_argument] with a readable summary
    when the spec is invalid. *)
val check_exn : Sekitei_network.Topology.t -> Model.app -> unit
