(* Exposition encoders for registry snapshots: Prometheus text format
   and a JSON document, plus structural validators the metrics smoke
   check runs over both. *)

module Json = Sekitei_util.Json
module Histogram = Sekitei_util.Histogram

(* Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
   names (e.g. "session.plans") become underscored. *)
let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  if s = "" then "_"
  else
    match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let float_str v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let percentiles = [ ("p50", 0.50); ("p90", 0.90); ("p99", 0.99) ]

let to_prometheus snap =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      line "# TYPE %s counter" n;
      line "%s %d" n v)
    (Registry.counters snap);
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      line "# TYPE %s gauge" n;
      line "%s %s" n (float_str v))
    (Registry.gauges snap);
  List.iter
    (fun (name, h) ->
      let n = sanitize name in
      line "# TYPE %s histogram" n;
      List.iter
        (fun (le, cum) -> line "%s_bucket{le=\"%s\"} %d" n (float_str le) cum)
        (Histogram.cumulative h);
      line "%s_bucket{le=\"+Inf\"} %d" n (Histogram.count h);
      line "%s_sum %s" n (float_str (Histogram.sum h));
      line "%s_count %d" n (Histogram.count h))
    (Registry.histograms snap);
  Buffer.contents buf

let json_of_histogram h =
  let summary =
    if Histogram.count h = 0 then []
    else
      List.map (fun (k, p) -> (k, Json.Float (Histogram.percentile h p))) percentiles
      @ [
          ("min", Json.Float (Histogram.min_value h));
          ("max", Json.Float (Histogram.max_value h));
          ("mean", Json.Float (Histogram.mean h));
        ]
  in
  Json.Obj
    ([
       ("count", Json.Int (Histogram.count h));
       ("zero_count", Json.Int (Histogram.zero_count h));
       ("sum", Json.Float (Histogram.sum h));
     ]
    @ summary
    @ [
        ( "buckets",
          Json.List
            (List.map
               (fun (le, cum) -> Json.List [ Json.Float le; Json.Int cum ])
               (Histogram.cumulative h)) );
      ])

let to_json snap =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (n, v) -> (n, Json.Int v)) (Registry.counters snap)) );
      ( "gauges",
        Json.Obj
          (List.map (fun (n, v) -> (n, Json.Float v)) (Registry.gauges snap)) );
      ( "histograms",
        Json.Obj
          (List.map (fun (n, h) -> (n, json_of_histogram h)) (Registry.histograms snap))
      );
    ]

(* ---------------- validators ---------------- *)

let check b msg = if b then Ok () else Error msg

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let rec check_all f = function
  | [] -> Ok ()
  | x :: rest ->
      let* () = f x in
      check_all f rest

let validate_histogram name j =
  let err fmt = Printf.ksprintf (fun m -> Printf.sprintf "histogram %s: %s" name m) fmt in
  let* () = check (Json.member "count" j |> Option.map Json.to_int |> Option.join |> Option.is_some) (err "missing int count") in
  let* () = check (Json.member "zero_count" j |> Option.map Json.to_int |> Option.join |> Option.is_some) (err "missing int zero_count") in
  let* () = check (Json.member "sum" j |> Option.map Json.to_float |> Option.join |> Option.is_some) (err "missing sum") in
  let count = Option.get (Option.join (Option.map Json.to_int (Json.member "count" j))) in
  let* () =
    if count = 0 then Ok ()
    else
      check_all
        (fun k ->
          check
            (Json.member k j |> Option.map Json.to_float |> Option.join |> Option.is_some)
            (err "missing %s on non-empty histogram" k))
        [ "p50"; "p90"; "p99"; "min"; "max"; "mean" ]
  in
  match Json.member "buckets" j with
  | Some (Json.List buckets) ->
      let rec walk prev = function
        | [] -> Ok ()
        | Json.List [ le; cum ] :: rest -> (
            match (Json.to_float le, Json.to_int cum) with
            | Some _, Some c ->
                let* () = check (c >= prev) (err "bucket counts not cumulative") in
                walk c rest
            | _ -> Error (err "bucket entry is not [le, count]"))
        | _ -> Error (err "bucket entry is not a pair")
      in
      let* () = walk 0 buckets in
      let last = List.fold_left (fun _ b -> b) Json.Null buckets in
      let last_cum =
        match last with
        | Json.List [ _; cum ] -> Option.value ~default:0 (Json.to_int cum)
        | _ -> 0
      in
      check
        (buckets = [] || last_cum = count)
        (err "cumulative bucket total %d <> count %d" last_cum count)
  | _ -> Error (err "missing buckets list")

let obj_members name j =
  match j with
  | Some (Json.Obj fields) -> Ok fields
  | _ -> Error (Printf.sprintf "missing %S object" name)

let validate_json j =
  match obj_members "metrics" (Some j) with
  | Error _ -> Error "top level is not an object"
  | Ok _ ->
      let section name = obj_members name (Json.member name j) in
      (match section "counters" with
      | Error _ as e -> e
      | Ok counters -> (
          let* () =
            check_all
              (fun (n, v) ->
                check (Json.to_int v |> Option.is_some)
                  (Printf.sprintf "counter %s is not an int" n))
              counters
          in
          match section "gauges" with
          | Error _ as e -> e
          | Ok gauges -> (
              let* () =
                check_all
                  (fun (n, v) ->
                    check
                      (Json.to_float v |> Option.is_some)
                      (Printf.sprintf "gauge %s is not a number" n))
                  gauges
              in
              match section "histograms" with
              | Error _ as e -> e
              | Ok histograms ->
                  check_all (fun (n, h) -> validate_histogram n h) histograms)))

(* The Prometheus validator is deliberately structural: every exposition
   line is either a comment or "name[{labels}] value", every sample name
   is legal, and every sample is preceded by a # TYPE declaring its
   family. *)
let validate_prometheus text =
  let typed = Hashtbl.create 16 in
  let family name =
    let base =
      match String.index_opt name '{' with
      | Some i -> String.sub name 0 i
      | None -> name
    in
    let strip suffix =
      if String.length base > String.length suffix
         && String.ends_with ~suffix base
      then Some (String.sub base 0 (String.length base - String.length suffix))
      else None
    in
    let candidates = List.filter_map strip [ "_sum"; "_count"; "_bucket" ] in
    match List.filter (Hashtbl.mem typed) candidates with
    | f :: _ -> f
    | [] -> base
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok ()
    | "" :: rest -> go (lineno + 1) rest
    | line :: rest ->
        let err msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
        if String.length line > 0 && line.[0] = '#' then begin
          (match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: _ -> Hashtbl.replace typed name ()
          | _ -> ());
          go (lineno + 1) rest
        end
        else begin
          (* name{labels} value — labels may contain spaces inside
             quotes, so split at the last space. *)
          match String.rindex_opt line ' ' with
          | None -> err "sample line has no value"
          | Some i ->
              let name = String.sub line 0 i in
              let value = String.sub line (i + 1) (String.length line - i - 1) in
              let fam = family name in
              if not (Hashtbl.mem typed fam) then
                err (Printf.sprintf "sample %s has no # TYPE" fam)
              else if
                (not (value = "NaN" || value = "+Inf" || value = "-Inf"))
                && Option.is_none (float_of_string_opt value)
              then err (Printf.sprintf "unparseable value %S" value)
              else
                let fam_ok =
                  sanitize fam = fam
                  && fam <> ""
                  && not (match fam.[0] with '0' .. '9' -> true | _ -> false)
                in
                if not fam_ok then err (Printf.sprintf "illegal metric name %S" fam)
                else go (lineno + 1) rest
        end
  in
  go 1 lines
