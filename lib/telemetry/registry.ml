(* Named metric registry with per-domain shards.

   Every recording domain gets its own shard — a trio of hashtables
   keyed by metric name — resolved once per handle creation, so a
   Domain_pool worker records into private cells with no cross-domain
   contention: incrementing a counter is an [int ref] bump, observing a
   latency is a Histogram array store.  Mutexes guard only the
   structural operations (finding/creating a shard, creating a metric in
   a shard, walking the tables for a snapshot); the recording fast path
   takes no lock.

   [snapshot] merges shards into one coherent view: counters sum,
   histograms merge bucket-wise (associative, so shard order is
   irrelevant), and gauges resolve to the most recent write anywhere
   (ordered by a global atomic sequence, not wall clock).  Recording
   races only with a concurrent snapshot, which may miss increments
   still in flight; once recorders are quiescent a snapshot is exact —
   identical to what single-domain recording would have produced. *)

module Histogram = Sekitei_util.Histogram

type counter = int ref
type gauge = { g_seq : int Atomic.t; cell : (float * int) ref }
type histogram = Histogram.t

type shard = {
  lock : Mutex.t;  (* guards metric creation and snapshot walks *)
  counters : (string, counter) Hashtbl.t;
  gauges : (string, (float * int) ref) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

type t = {
  rel_error : float;
  seq : int Atomic.t;  (* global gauge-write ordering *)
  reg_lock : Mutex.t;  (* guards the shard table *)
  shards : (int, shard) Hashtbl.t;  (* keyed by Domain id *)
}

let create ?(rel_error = 0.01) () =
  if not (rel_error > 0. && rel_error < 1.) then
    invalid_arg "Registry.create: rel_error not in (0,1)";
  {
    rel_error;
    seq = Atomic.make 1;
    reg_lock = Mutex.create ();
    shards = Hashtbl.create 8;
  }

let rel_error t = t.rel_error

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let shard_for t =
  let id = (Domain.self () :> int) in
  with_lock t.reg_lock (fun () ->
      match Hashtbl.find_opt t.shards id with
      | Some s -> s
      | None ->
          let s =
            {
              lock = Mutex.create ();
              counters = Hashtbl.create 16;
              gauges = Hashtbl.create 16;
              histograms = Hashtbl.create 16;
            }
          in
          Hashtbl.add t.shards id s;
          s)

let find_or_create shard table name make =
  with_lock shard.lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some v -> v
      | None ->
          let v = make () in
          Hashtbl.add table name v;
          v)

(* ---------------- handles ---------------- *)

let counter t name =
  let shard = shard_for t in
  find_or_create shard shard.counters name (fun () -> ref 0)

let incr c n = c := !c + n

let gauge t name =
  let shard = shard_for t in
  let cell = find_or_create shard shard.gauges name (fun () -> ref (Float.nan, 0)) in
  { g_seq = t.seq; cell }

let set g v = g.cell := (v, Atomic.fetch_and_add g.g_seq 1)

let histogram t name =
  let shard = shard_for t in
  find_or_create shard shard.histograms name (fun () ->
      Histogram.create ~rel_error:t.rel_error ())

let observe h v = Histogram.add h v

(* name-resolved conveniences for cold paths *)

let count t name n = incr (counter t name) n
let set_gauge t name v = set (gauge t name) v
let observe_ms t name v = observe (histogram t name) v

(* ---------------- snapshot ---------------- *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Histogram.t) list;
}

let snapshot t =
  let shards =
    with_lock t.reg_lock (fun () ->
        Hashtbl.fold (fun _ s acc -> s :: acc) t.shards [])
  in
  let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32 in
  let gauges : (string, (float * int) ref) Hashtbl.t = Hashtbl.create 16 in
  let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun shard ->
      with_lock shard.lock (fun () ->
          Hashtbl.iter
            (fun name c ->
              match Hashtbl.find_opt counters name with
              | Some acc -> acc := !acc + !c
              | None -> Hashtbl.add counters name (ref !c))
            shard.counters;
          Hashtbl.iter
            (fun name cell ->
              let (_, seq) as entry = !cell in
              match Hashtbl.find_opt gauges name with
              | Some acc -> if seq > snd !acc then acc := entry
              | None -> Hashtbl.add gauges name (ref entry))
            shard.gauges;
          Hashtbl.iter
            (fun name h ->
              (* [copy] under the shard lock so the merge below never
                 reads a bucket array mid-growth. *)
              let h = Histogram.copy h in
              match Hashtbl.find_opt histograms name with
              | Some acc -> Hashtbl.replace histograms name (Histogram.merge acc h)
              | None -> Hashtbl.add histograms name h)
            shard.histograms))
    shards;
  let sorted fold = List.sort (fun (a, _) (b, _) -> String.compare a b) fold in
  {
    counters =
      sorted (Hashtbl.fold (fun n c acc -> (n, !c) :: acc) counters []);
    gauges =
      sorted (Hashtbl.fold (fun n g acc -> (n, fst !g) :: acc) gauges []);
    histograms =
      sorted (Hashtbl.fold (fun n h acc -> (n, h) :: acc) histograms []);
  }

let counters snap = snap.counters
let gauges snap = snap.gauges
let histograms snap = snap.histograms

let counter_value snap name =
  match List.assoc_opt name snap.counters with Some n -> n | None -> 0

let gauge_value snap name = List.assoc_opt name snap.gauges
let histogram_value snap name = List.assoc_opt name snap.histograms

let merge_snapshots a b =
  let merge_assoc combine xs ys =
    let tbl = Hashtbl.create 32 in
    List.iter (fun (n, v) -> Hashtbl.replace tbl n v) xs;
    List.iter
      (fun (n, v) ->
        match Hashtbl.find_opt tbl n with
        | Some prev -> Hashtbl.replace tbl n (combine prev v)
        | None -> Hashtbl.add tbl n v)
      ys;
    Hashtbl.fold (fun n v acc -> (n, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    counters = merge_assoc ( + ) a.counters b.counters;
    (* Snapshots carry no write ordering, so on a gauge-name collision
       the right-hand snapshot wins. *)
    gauges = merge_assoc (fun _ v -> v) a.gauges b.gauges;
    histograms = merge_assoc Histogram.merge a.histograms b.histograms;
  }
