(* Zero-dependency tracing/metrics for the planner phases.

   The design pivot is the disabled path: [null] carries no sinks, and
   every emitting operation starts with a single [active] branch, so
   threading telemetry through the hot search loops costs one predictable
   branch per emit when tracing is off.  Span handles still carry a
   monotonic start time even when disabled, because the planner's phase
   report is populated from span durations whether or not any sink
   listens.

   A handle may also arm a {!Flight} recorder: a fixed-capacity ring that
   retains the last N events at the cost of one array store each, with no
   channel or allocation on the recording path, so it is safe to leave on
   in production and dump only when a plan fails. *)

module Timer = Sekitei_util.Timer
module Json = Sekitei_util.Json

let src = Logs.Src.create "sekitei.telemetry" ~doc:"Sekitei telemetry events"

module Log = (val Logs.src_log src : Logs.LOG)

type value = Bool of bool | Int of int | Float of float | Str of string

type event =
  | Span_begin of { id : int; parent : int; name : string; t_ms : float }
  | Span_end of {
      id : int;
      name : string;
      t_ms : float;
      dur_ms : float;
      attrs : (string * value) list;
    }
  | Counter of { name : string; total : int; t_ms : float }
  | Gauge of { name : string; value : float; t_ms : float }
  | Progress of { name : string; t_ms : float; attrs : (string * value) list }

type sink = { emit : event -> unit; close : unit -> unit }

(* ---------------- JSON encoding ----------------

   Defined before the sinks and the flight recorder, which both write
   it. *)

let json_of_value = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s

let json_of_event ev =
  let attr_fields attrs = List.map (fun (k, v) -> (k, json_of_value v)) attrs in
  let obj = function
    | Span_begin { id; parent; name; t_ms } ->
        [
          ("ev", Json.Str "span_begin");
          ("id", Json.Int id);
          ("parent", Json.Int parent);
          ("name", Json.Str name);
          ("t_ms", Json.Float t_ms);
        ]
    | Span_end { id; name; t_ms; dur_ms; attrs } ->
        [
          ("ev", Json.Str "span_end");
          ("id", Json.Int id);
          ("name", Json.Str name);
          ("t_ms", Json.Float t_ms);
          ("dur_ms", Json.Float dur_ms);
        ]
        @ attr_fields attrs
    | Counter { name; total; t_ms } ->
        [
          ("ev", Json.Str "counter");
          ("name", Json.Str name);
          ("total", Json.Int total);
          ("t_ms", Json.Float t_ms);
        ]
    | Gauge { name; value; t_ms } ->
        [
          ("ev", Json.Str "gauge");
          ("name", Json.Str name);
          ("value", Json.Float value);
          ("t_ms", Json.Float t_ms);
        ]
    | Progress { name; t_ms; attrs } ->
        [
          ("ev", Json.Str "progress");
          ("name", Json.Str name);
          ("t_ms", Json.Float t_ms);
        ]
        @ attr_fields attrs
  in
  Json.Obj (obj ev)

(* ---------------- flight recorder ---------------- *)

module Flight = struct
  type t = {
    capacity : int;
    ring : event array;
    mutable total : int;  (* events ever recorded; ring slot = total mod capacity *)
    dump_path : string option;
  }

  (* Ring slots start filled with a harmless placeholder that [events]
     never exposes (only the first [min total capacity] logical slots are
     read back). *)
  let placeholder = Counter { name = ""; total = 0; t_ms = 0. }

  let create ?(capacity = 512) ?dump_path () =
    if capacity < 1 then invalid_arg "Flight.create: capacity < 1";
    { capacity; ring = Array.make capacity placeholder; total = 0; dump_path }

  let capacity fl = fl.capacity
  let recorded fl = fl.total
  let dump_path fl = fl.dump_path

  let record fl ev =
    fl.ring.(fl.total mod fl.capacity) <- ev;
    fl.total <- fl.total + 1

  let events fl =
    let n = min fl.total fl.capacity in
    let first = fl.total - n in
    List.init n (fun i -> fl.ring.((first + i) mod fl.capacity))

  (* First line is a meta object so a reader knows how much history was
     dropped; the rest is ordinary telemetry JSONL (oldest first). *)
  let dump fl oc =
    let n = min fl.total fl.capacity in
    let meta =
      Json.Obj
        [
          ("ev", Json.Str "flight_dump");
          ("capacity", Json.Int fl.capacity);
          ("recorded", Json.Int fl.total);
          ("dropped", Json.Int (fl.total - n));
        ]
    in
    output_string oc (Json.to_string meta);
    output_char oc '\n';
    List.iter
      (fun ev ->
        output_string oc (Json.to_string (json_of_event ev));
        output_char oc '\n')
      (events fl);
    flush oc

  let dump_to_path fl =
    match fl.dump_path with
    | None -> None
    | Some path ->
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> dump fl oc);
        Some path
end

(* ---------------- handles ---------------- *)

type t = {
  sinks : sink list;
  flight : Flight.t option;
  active : bool;  (* sinks <> [] || flight armed; the one hot-path branch *)
  origin : Timer.t;
  progress_interval : int;
  mutable next_id : int;
  mutable open_stack : int list;  (** ids of currently open spans *)
  counters : (string, int ref) Hashtbl.t;
}

type span = { span_id : int; span_name : string; started : Timer.t }

let make ?flight sinks progress_interval =
  {
    sinks;
    flight;
    active = sinks <> [] || flight <> None;
    origin = Timer.start ();
    progress_interval;
    next_id = 1;
    open_stack = [];
    (* Pre-sized past the planner's worst-case live counter-name count so
       recording never rehashes mid-search. *)
    counters = Hashtbl.create 64;
  }

let null = make [] 0

let create ?(progress_every = 1000) ?flight sinks =
  make ?flight sinks (max 1 progress_every)

let enabled t = t.active
let flight t = t.flight
let progress_interval t = if t.active then t.progress_interval else 0
let elapsed_ms t = Timer.elapsed_ms t.origin

let emit t ev =
  (match t.flight with Some fl -> Flight.record fl ev | None -> ());
  List.iter (fun s -> s.emit ev) t.sinks

(* ---------------- spans ---------------- *)

let begin_span t name =
  let sp = { span_id = 0; span_name = name; started = Timer.start () } in
  if not t.active then sp
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let parent = match t.open_stack with [] -> 0 | p :: _ -> p in
    t.open_stack <- id :: t.open_stack;
    emit t (Span_begin { id; parent; name; t_ms = elapsed_ms t });
    { sp with span_id = id }
  end

let end_span ?(attrs = []) t sp =
  let dur_ms = Timer.elapsed_ms sp.started in
  if t.active then begin
    (* Pop through to this span's id: tolerates a child span leaked by an
       exception so the tree stays consistent for sinks. *)
    let rec pop = function
      | [] -> []
      | id :: rest -> if id = sp.span_id then rest else pop rest
    in
    t.open_stack <- pop t.open_stack;
    emit t
      (Span_end
         { id = sp.span_id; name = sp.span_name; t_ms = elapsed_ms t; dur_ms; attrs })
  end;
  dur_ms

let with_span ?attrs t name f =
  let sp = begin_span t name in
  Fun.protect
    ~finally:(fun () -> ignore (end_span ?attrs t sp))
    f

let with_span_timed ?attrs t name f =
  let sp = begin_span t name in
  match f () with
  | v -> (v, end_span ?attrs t sp)
  | exception e ->
      ignore (end_span ?attrs t sp);
      raise e

(* ---------------- counters / gauges / progress ---------------- *)

let find_cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let count t name n =
  if t.active then begin
    let r = find_cell t name in
    r := !r + n
  end

type counter = { c_active : bool; cell : int ref }

let counter t name =
  if t.active then { c_active = true; cell = find_cell t name }
  else { c_active = false; cell = ref 0 }

let incr c n = if c.c_active then c.cell := !(c.cell) + n

let counter_total t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let flush_counters t =
  if t.active then begin
    let t_ms = elapsed_ms t in
    Hashtbl.fold (fun name total acc -> (name, !total) :: acc) t.counters []
    |> List.sort compare
    |> List.iter (fun (name, total) -> emit t (Counter { name; total; t_ms }))
  end

let gauge t name value =
  if t.active then emit t (Gauge { name; value; t_ms = elapsed_ms t })

let progress t name attrs =
  if t.active then emit t (Progress { name; t_ms = elapsed_ms t; attrs })

let close t =
  flush_counters t;
  List.iter (fun s -> s.close ()) t.sinks

(* ---------------- sinks ---------------- *)

let sink ?(close = fun () -> ()) emit = { emit; close }

let memory () =
  let events = ref [] in
  ( { emit = (fun ev -> events := ev :: !events); close = (fun () -> ()) },
    fun () -> List.rev !events )

let locked s =
  let m = Mutex.create () in
  let guarded f x =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f x)
  in
  { emit = guarded s.emit; close = (fun () -> guarded s.close ()) }

let pp_value fmt = function
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.pp_print_string fmt s

let pp_attrs fmt attrs =
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%a" k pp_value v) attrs

let event_line ev =
  match ev with
  | Span_begin { name; t_ms; _ } -> Format.asprintf "[%8.2fms] > %s" t_ms name
  | Span_end { name; t_ms; dur_ms; attrs; _ } ->
      Format.asprintf "[%8.2fms] < %s (%.2fms)%a" t_ms name dur_ms pp_attrs
        attrs
  | Counter { name; total; t_ms } ->
      Format.asprintf "[%8.2fms] # %s = %d" t_ms name total
  | Gauge { name; value; t_ms } ->
      Format.asprintf "[%8.2fms] # %s = %g" t_ms name value
  | Progress { name; t_ms; attrs } ->
      Format.asprintf "[%8.2fms] . %s%a" t_ms name pp_attrs attrs

let logs_sink () =
  {
    emit = (fun ev -> Log.info (fun m -> m "%s" (event_line ev)));
    close = (fun () -> ());
  }

let jsonl oc =
  (* Track span nesting so the channel is flushed whenever a root span
     closes: a short traced run (one plan) reaches the file even if the
     process is killed before [close], and a long run flushes between
     requests rather than mid-span. *)
  let depth = ref 0 in
  {
    emit =
      (fun ev ->
        output_string oc (Json.to_string (json_of_event ev));
        output_char oc '\n';
        match ev with
        | Span_begin _ -> Stdlib.incr depth
        | Span_end _ ->
            depth := Stdlib.max 0 (!depth - 1);
            if !depth = 0 then flush oc
        | Progress _ ->
            (* Progress events are the live heartbeat of a long search;
               flush so tailing the trace file shows them as they happen
               instead of whenever the channel buffer fills. *)
            flush oc
        | _ -> ());
    close = (fun () -> flush oc);
  }
