(** Tracing and metrics for the planner phases.

    A {!t} is a handle threaded through {!Sekitei_core}'s phases
    ([compile], [plrg], [slrg], [rg], [replay]).  The phases wrap their
    work in {e spans} (well-nested, monotonically timestamped via
    {!Sekitei_util.Timer}), bump named {e counters}, record {e gauges},
    and emit periodic search {e progress} events; everything is delivered
    to pluggable {e sinks}.

    The default handle is {!null}: no sinks.  Every emitting operation
    begins with a single empty-sinks branch, so instrumented hot loops
    pay one branch per emit when tracing is off.  Span handles carry real
    monotonic start times even under {!null} — {!end_span} always returns
    the true duration — because {!Sekitei_core.Planner}'s per-phase
    report is populated from spans whether or not a sink listens.

    Counters are aggregated in the handle (no per-increment events) and
    emitted as [Counter] totals by {!flush_counters} / {!close}. *)

type value = Bool of bool | Int of int | Float of float | Str of string

type event =
  | Span_begin of { id : int; parent : int; name : string; t_ms : float }
      (** [parent] is 0 for root spans; ids start at 1. *)
  | Span_end of {
      id : int;
      name : string;
      t_ms : float;
      dur_ms : float;
      attrs : (string * value) list;
    }
  | Counter of { name : string; total : int; t_ms : float }
      (** cumulative total at flush time *)
  | Gauge of { name : string; value : float; t_ms : float }
  | Progress of { name : string; t_ms : float; attrs : (string * value) list }
      (** periodic search heartbeat (open-list size, best f, ...) *)

type sink = { emit : event -> unit; close : unit -> unit }

(** {1 Flight recorder}

    A fixed-capacity ring of the most recent telemetry events.  Arming
    one on a handle (see {!create}) activates event generation even with
    no sinks attached, but recording an event is a single array store —
    no channel, no allocation — so the recorder is safe to leave on in
    production.  When a plan fails, the planner dumps the ring as JSONL
    (readable by [tools/trace_report]) for a postmortem of the moments
    before the failure. *)
module Flight : sig
  type t

  (** [create ?capacity ?dump_path ()] — ring holding the last
      [capacity] (default 512) events.  [dump_path] is where
      {!dump_to_path} writes (the planner's failure hook dumps there
      automatically when set).
      @raise Invalid_argument when [capacity < 1]. *)
  val create : ?capacity:int -> ?dump_path:string -> unit -> t

  val capacity : t -> int

  (** Events ever recorded (not capped at capacity). *)
  val recorded : t -> int

  val dump_path : t -> string option
  val record : t -> event -> unit

  (** The retained events, oldest first — the last
      [min recorded capacity] recorded. *)
  val events : t -> event list

  (** JSONL dump: one meta line
      [{"ev":"flight_dump","capacity":..,"recorded":..,"dropped":..}]
      followed by the retained events, oldest first.  Flushes [oc]. *)
  val dump : t -> out_channel -> unit

  (** {!dump} to [dump_path] (truncating); [None] when no path is set,
      otherwise the path written. *)
  val dump_to_path : t -> string option
end

type t

(** The default: no sinks, no flight recorder, near-zero overhead. *)
val null : t

(** [create sinks] starts the monotonic origin clock now.
    [progress_every] (default 1000) is the expansion interval the RG
    search uses between {!progress} heartbeats.  [flight] arms a flight
    recorder: every event emitted to the sinks is also recorded in the
    ring, and events are generated even when [sinks] is empty. *)
val create : ?progress_every:int -> ?flight:Flight.t -> sink list -> t

(** True when any sink or a flight recorder is attached. *)
val enabled : t -> bool

(** The armed flight recorder, if any (for failure-path dumps). *)
val flight : t -> Flight.t option

(** The configured heartbeat interval; 0 when disabled (callers skip the
    modulo entirely). *)
val progress_interval : t -> int

(** Milliseconds since {!create} (event timestamps use this origin). *)
val elapsed_ms : t -> float

(** {1 Spans} *)

type span

(** Opens a span nested under the innermost open span. *)
val begin_span : t -> string -> span

(** Closes the span and returns its duration in ms (also meaningful under
    {!null}).  [attrs] land on the [Span_end] event.

    Well-known attrs: the planner's ["plan"] span ends with
    [("ok", Bool)] for the outcome, and on failure additionally
    [("failure", Str)] — the {!Sekitei_core.Planner.pp_failure}-rendered
    reason — so trace consumers (e.g. tools/trace_report) can surface
    why a traced run returned no plan without linking the core library;
    a session ["compile"] span triggered by an update carries
    [("invalidated", Int)], the actions it could not reuse. *)
val end_span : ?attrs:(string * value) list -> t -> span -> float

(** [with_span t name f] runs [f] inside a span; the span is closed even
    when [f] raises. *)
val with_span : ?attrs:(string * value) list -> t -> string -> (unit -> 'a) -> 'a

(** Like {!with_span} but also returns the duration in ms. *)
val with_span_timed :
  ?attrs:(string * value) list -> t -> string -> (unit -> 'a) -> 'a * float

(** {1 Counters, gauges, progress} *)

(** [count t name n] adds [n] to the named counter (aggregated; emitted
    by {!flush_counters}). *)
val count : t -> string -> int -> unit

(** A pre-resolved counter cell: {!incr} is a branch plus an integer
    add — no per-call name hashing — so hot loops (SLRG cache hits, RG
    expansions) can count unconditionally.  Under {!null} the handle is
    inert. *)
type counter

(** [counter t name] resolves (creating if needed) the named counter's
    cell.  Later {!count}/{!counter_total} calls for the same name see
    increments made through the handle. *)
val counter : t -> string -> counter

val incr : counter -> int -> unit

(** Current aggregate (0 for unknown names or under {!null}). *)
val counter_total : t -> string -> int

(** Emit every counter's total as a [Counter] event (sorted by name). *)
val flush_counters : t -> unit

val gauge : t -> string -> float -> unit
val progress : t -> string -> (string * value) list -> unit

(** {!flush_counters}, then close every sink. *)
val close : t -> unit

(** {1 Sinks} *)

(** Custom sink from an event callback. *)
val sink : ?close:(unit -> unit) -> (event -> unit) -> sink

(** In-memory sink for tests and reports: returns the sink and a function
    yielding the events captured so far, in emission order. *)
val memory : unit -> sink * (unit -> event list)

(** [locked s] wraps [s] so that [emit] and [close] hold a private mutex
    — a sink shared by several domains (e.g. one JSONL channel receiving
    events from the batch planner's workers) must be wrapped or its
    events interleave mid-line.  Events from different domains arrive in
    lock-acquisition order, which is {e not} deterministic; per-worker
    {!memory} sinks are the alternative when order matters. *)
val locked : sink -> sink

(** Renders events through the [logs] library (source
    ["sekitei.telemetry"], level [Info]). *)
val logs_sink : unit -> sink

(** One compact JSON object per event, one per line (JSONL).  The
    channel is flushed after every [Progress] event (so tailing a live
    trace of a long search shows the heartbeats as they happen), after
    every root [Span_end] (so short traced runs are never lost in the
    channel buffer), and on [close].  [close] flushes but does not close
    the channel. *)
val jsonl : out_channel -> sink

(** The JSONL encoding, exposed for the trace-report tool and tests. *)
val json_of_event : event -> Sekitei_util.Json.t
