(** Named metric registry — counters, last-value gauges, and
    {!Sekitei_util.Histogram} latency/size distributions — with
    per-domain shards.

    Handles resolve to the {e calling} domain's shard, so each
    [Domain_pool] worker records into private cells and never contends:
    {!incr} is an [int ref] bump, {!observe} a histogram array store,
    {!set} a ref store.  Locks guard only structure (shard/metric
    creation, snapshot walks), never the recording fast path.

    {!snapshot} merges every shard into one coherent view: counters sum,
    histograms merge (associatively — see {!Sekitei_util.Histogram}),
    gauges keep the most recent write program-wide.  A snapshot taken
    while other domains are mid-record may miss in-flight increments;
    once recorders are quiescent it is exact, equal to what
    single-domain recording would have produced.

    A handle is bound to the domain that created it — create handles
    from the domain that will record on them (sharing one handle across
    domains reintroduces the data race the shards exist to avoid). *)

type t

(** [create ?rel_error ()] — [rel_error] (default [0.01]) is passed to
    every histogram the registry creates.
    @raise Invalid_argument unless [0 < rel_error < 1]. *)
val create : ?rel_error:float -> unit -> t

val rel_error : t -> float

(** {1 Handles} *)

type counter
type gauge
type histogram

(** Find-or-create the named metric in the calling domain's shard. *)
val counter : t -> string -> counter

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram
val incr : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Name-resolved conveniences} — one-shot record on cold paths
    (resolve shard + metric per call). *)

val count : t -> string -> int -> unit

val set_gauge : t -> string -> float -> unit
val observe_ms : t -> string -> float -> unit

(** {1 Snapshots} *)

type snapshot

val snapshot : t -> snapshot

(** Each accessor returns entries sorted by metric name. *)
val counters : snapshot -> (string * int) list

val gauges : snapshot -> (string * float) list
val histograms : snapshot -> (string * Sekitei_util.Histogram.t) list

(** 0 for unknown names. *)
val counter_value : snapshot -> string -> int

val gauge_value : snapshot -> string -> float option
val histogram_value : snapshot -> string -> Sekitei_util.Histogram.t option

(** Combine two snapshots (e.g. from two registries, or saved points in
    time): counters add, histograms merge, and on a gauge-name collision
    the {e right} snapshot wins (snapshots carry no cross-registry write
    ordering).
    @raise Invalid_argument when histograms disagree on [rel_error]. *)
val merge_snapshots : snapshot -> snapshot -> snapshot
