(** Exposition encoders for {!Registry} snapshots.

    Two formats: Prometheus text (counters, gauges, and cumulative
    [le]-bucket histograms with [_sum]/[_count], dotted metric names
    sanitized to [a-zA-Z0-9_:]) and a single JSON document (exact bucket
    lists plus p50/p90/p99/min/max/mean summaries).  The validators are
    structural schema checks used by [make metrics-smoke] and the CLI's
    [--check] flag, so an encoder change that breaks consumers fails CI
    rather than a dashboard. *)

val sanitize : string -> string
val to_prometheus : Registry.snapshot -> string
val to_json : Registry.snapshot -> Sekitei_util.Json.t

(** Checks the {!to_json} shape: [counters]/[gauges]/[histograms]
    objects with the right member types, cumulative non-decreasing
    buckets summing to [count], and percentile summaries present on
    non-empty histograms. *)
val validate_json : Sekitei_util.Json.t -> (unit, string) result

(** Checks the {!to_prometheus} shape: every sample line parses as
    [name[{labels}] value], every metric family has a [# TYPE] line, and
    names are Prometheus-legal. *)
val validate_prometheus : string -> (unit, string) result
