module Heap = Sekitei_util.Heap
module Deadline = Sekitei_util.Deadline
module Telemetry = Sekitei_telemetry.Telemetry

type t = {
  problem : Problem.t;
  costs : float array;  (** per proposition *)
  action_costs : float array;  (** cost-to-enable + own cost, per action *)
  relevant_act : bool array;
  relevant_prop : bool array;
}

let build ?(telemetry = Telemetry.null) ?(deadline = Deadline.none)
    (pb : Problem.t) =
  let n_props = Prop.count pb.props in
  let n_acts = Array.length pb.actions in
  let costs = Array.make n_props Float.infinity in
  let action_costs = Array.make n_acts Float.infinity in
  (* Per-action countdown of unfinalized preconditions and the running max
     of their costs. *)
  let missing = Array.map (fun a -> Array.length a.Action.pre) pb.actions in
  let pre_max = Array.make n_acts 0. in
  let finalized = Array.make n_props false in
  let heap = Heap.create_sized 1024 in
  let relax_action aid =
    let a = pb.actions.(aid) in
    let total = a.Action.cost_lb +. pre_max.(aid) in
    action_costs.(aid) <- total;
    Array.iter
      (fun pid ->
        if total < costs.(pid) then begin
          costs.(pid) <- total;
          Heap.add heap ~prio:total pid
        end)
      a.Action.add_closure
  in
  (* Index actions by precondition for the countdown. *)
  let consumers = Array.make n_props [] in
  for aid = n_acts - 1 downto 0 do
    let a = pb.actions.(aid) in
    Array.iter (fun pid -> consumers.(pid) <- aid :: consumers.(pid)) a.Action.pre
  done;
  (* Seed: initial propositions cost 0; precondition-free actions ready. *)
  Array.iteri
    (fun pid holds ->
      if holds then begin
        costs.(pid) <- 0.;
        Heap.add heap ~prio:0. pid
      end)
    pb.init;
  Array.iteri (fun aid m -> if m = 0 then relax_action aid) missing;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (pid, c) ->
        Deadline.guard deadline ~phase:"plrg";
        if not finalized.(pid) then begin
          finalized.(pid) <- true;
          ignore c;
          List.iter
            (fun aid ->
              pre_max.(aid) <- Float.max pre_max.(aid) costs.(pid);
              missing.(aid) <- missing.(aid) - 1;
              if missing.(aid) = 0 then relax_action aid)
            consumers.(pid)
        end;
        loop ()
  in
  loop ();
  (* Backward-relevant cone from the goals: a proposition is relevant when
     needed by a relevant action or a goal; an action is relevant when it
     has finite cost and supports a relevant proposition. *)
  let relevant_prop = Array.make n_props false in
  let relevant_act = Array.make n_acts false in
  let queue = Queue.create () in
  Array.iter
    (fun g ->
      if not relevant_prop.(g) then begin
        relevant_prop.(g) <- true;
        Queue.add g queue
      end)
    pb.goal_props;
  while not (Queue.is_empty queue) do
    let pid = Queue.pop queue in
    if Float.is_finite costs.(pid) then
      List.iter
        (fun aid ->
          if (not relevant_act.(aid)) && Float.is_finite action_costs.(aid) then begin
            relevant_act.(aid) <- true;
            Array.iter
              (fun pre ->
                if not relevant_prop.(pre) then begin
                  relevant_prop.(pre) <- true;
                  Queue.add pre queue
                end)
              pb.actions.(aid).Action.pre
          end)
        pb.supports.(pid)
  done;
  let t = { problem = pb; costs; action_costs; relevant_act; relevant_prop } in
  if Telemetry.enabled telemetry then begin
    let count_true a =
      Array.fold_left (fun n b -> if b then n + 1 else n) 0 a
    in
    Telemetry.count telemetry "plrg.relevant_props" (count_true relevant_prop);
    Telemetry.count telemetry "plrg.relevant_actions" (count_true relevant_act)
  end;
  t

let cost t pid = t.costs.(pid)

let goals_reachable t =
  Array.for_all (fun g -> Float.is_finite t.costs.(g)) t.problem.Problem.goal_props

(* Goal proposition ids with infinite cost — the PLRG's unreachability
   proof, surfaced as evidence in {!Planner.Unreachable_goal}. *)
let unreachable_goals t =
  Array.to_list t.problem.Problem.goal_props
  |> List.filter (fun g -> not (Float.is_finite t.costs.(g)))

let relevant_actions t =
  let acc = ref [] in
  for aid = Array.length t.relevant_act - 1 downto 0 do
    if t.relevant_act.(aid) then acc := aid :: !acc
  done;
  !acc

let action_relevant t aid = t.relevant_act.(aid)

let stats t =
  let props = Array.fold_left (fun n b -> if b then n + 1 else n) 0 t.relevant_prop in
  let acts = Array.fold_left (fun n b -> if b then n + 1 else n) 0 t.relevant_act in
  (props, acts)
