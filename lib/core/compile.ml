module I = Sekitei_util.Interval
module Deadline = Sekitei_util.Deadline
module Expr = Sekitei_expr.Expr
module Topology = Sekitei_network.Topology
module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Telemetry = Sekitei_telemetry.Telemetry

exception Compile_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

let split_var v =
  match String.index_opt v '.' with
  | Some dot ->
      (String.sub v 0 dot, String.sub v (dot + 1) (String.length v - dot - 1))
  | None -> ("", v)

let rec cartesian = function
  | [] -> [ [] ]
  | xs :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun x -> List.map (fun tl -> x :: tl) tails) xs

(* ------------------------------------------------------------------ *)
(* Goal preprocessing: Available goals become sink components          *)
(* ------------------------------------------------------------------ *)

let rewrite_goals (app : Model.app) =
  let counter = ref 0 in
  let extra_comps = ref [] in
  let restrictions = ref [] in
  let goals =
    List.map
      (fun g ->
        match g with
        | Model.Placed _ -> g
        | Model.Available (iface, prop, node, minv) ->
            incr counter;
            let name = Printf.sprintf "__goal%d_%s" !counter iface in
            let sink =
              Model.component ~requires:[ iface ]
                ~conditions:
                  [ Expr.Cmp (Expr.Ge, Expr.Var (Model.qualified iface prop),
                              Expr.Const minv) ]
                ~place_cost:(Expr.Const 0.) name
            in
            extra_comps := sink :: !extra_comps;
            restrictions := (name, node) :: !restrictions;
            Model.Placed (name, node))
      app.goals
  in
  ( { app with components = app.components @ List.rev !extra_comps; goals },
    !restrictions )

(* ------------------------------------------------------------------ *)
(* Level machinery                                                     *)
(* ------------------------------------------------------------------ *)

(* Levels annotated with their index. *)
let indexed levels = List.mapi (fun i ivl -> (i, ivl)) levels

(* Which levels an achieved proposition implies, given the tag. *)
let implied_levels tag n_levels level =
  match tag with
  | Model.Degradable -> List.init (level + 1) Fun.id
  | Model.Upgradable -> List.init (n_levels - level) (fun k -> level + k)
  | Model.Neither -> [ level ]

(* ------------------------------------------------------------------ *)
(* Compilation proper                                                  *)
(* ------------------------------------------------------------------ *)

(* Incremental-recompilation hooks.  Grounding is organized in groups —
   one per (placeable component, node) and one per (interface, link,
   direction) — whose content depends only on the group's own site: node
   capacities for placements, link capacities and the (stable) endpoint
   names for crossings.  When a hook returns [Some acts], the group's
   actions are copied from a previous compilation (with freshly assigned
   sequential act_ids) instead of being re-grounded; cold compilation
   uses {!no_reuse}.  Groups are visited in a canonical order either way,
   so a recompile with every hook declining is byte-identical to a cold
   compile. *)
type reuse = {
  reuse_place : comp:int -> node:int -> Action.t list option;
  reuse_cross :
    iface:int -> link_id:int -> src:int -> dst:int -> Action.t list option;
}

let no_reuse =
  {
    reuse_place = (fun ~comp:_ ~node:_ -> None);
    reuse_cross = (fun ~iface:_ ~link_id:_ ~src:_ ~dst:_ -> None);
  }

let compile_with ~adjust ~telemetry ~deadline ~prune ~(reuse : reuse) topo
    (app0 : Model.app) leveling =
  let app, restrictions = rewrite_goals app0 in
  let ifaces = Array.of_list app.interfaces in
  let comps = Array.of_list app.components in
  let n_nodes = Topology.node_count topo in
  let iface_idx name =
    let rec go i =
      if i >= Array.length ifaces then fail "unknown interface %s" name
      else if String.equal ifaces.(i).Model.iface_name name then i
      else go (i + 1)
    in
    go 0
  in
  let comp_idx name =
    let rec go i =
      if i >= Array.length comps then fail "unknown component %s" name
      else if String.equal comps.(i).Model.comp_name name then i
      else go (i + 1)
    in
    go 0
  in
  let primary i = (Model.primary_property ifaces.(i)).Model.prop_name in
  let tag_of i = (Model.primary_property ifaces.(i)).Model.prop_tag in
  let iface_levels =
    Array.init (Array.length ifaces) (fun i ->
        Array.of_list
          (Leveling.iface_levels leveling ifaces.(i).Model.iface_name (primary i)))
  in
  let iface_tags = Array.init (Array.length ifaces) tag_of in
  let props =
    Prop.create ~n_comps:(Array.length comps) ~n_nodes
      ~levels_per_iface:(Array.map Array.length iface_levels)
  in
  let node_cap n r = try Topology.node_resource topo n r with Not_found -> 0. in
  let link_cap l r = try Topology.link_resource topo l r with Not_found -> 0. in

  let comp_allowed_node =
    Array.init (Array.length comps) (fun c ->
        List.assoc_opt comps.(c).Model.comp_name restrictions)
  in

  (* ---------------- initial state ---------------- *)
  let init = Array.make (Prop.count props) false in
  let init_consumed = ref [] in
  let sources = ref [] in
  List.iter
    (fun (comp_name, node) ->
      let c = comp_idx comp_name in
      let comp = comps.(c) in
      if comp.Model.requires <> [] then
        fail "pre-placed component %s has requirements" comp_name;
      let env v =
        match split_var v with
        | "node", r -> node_cap node r
        | _ -> raise (Expr.Unbound_variable v)
      in
      List.iter
        (fun cond ->
          if not (Expr.holds ~env cond) then
            fail "pre-placed component %s violates its conditions on node %d"
              comp_name node)
        comp.Model.conditions;
      List.iter
        (fun (r, e) ->
          let amount = Expr.eval ~env e in
          if amount > node_cap node r +. 1e-9 then
            fail "pre-placed component %s exceeds %s on node %d" comp_name r node;
          init_consumed := (node, r, amount) :: !init_consumed)
        comp.Model.consumes;
      init.(Prop.placed_id props ~comp:c ~node) <- true;
      List.iter
        (fun prov ->
          let i = iface_idx prov in
          let prim = primary i in
          let value_of prop_name =
            match
              List.find_opt
                (fun (fi, fp, _) ->
                  String.equal fi prov && String.equal fp prop_name)
                comp.Model.effects
            with
            | Some (_, _, e) -> Some (Expr.eval ~env e)
            | None -> None
          in
          let v =
            match value_of prim with
            | Some v -> v
            | None -> fail "pre-placed %s sets no %s.%s" comp_name prov prim
          in
          let tag = iface_tags.(i) in
          let src_interval =
            match tag with
            | Model.Degradable -> I.of_points [ 0.; v ]
            | Model.Neither -> I.point v
            | Model.Upgradable ->
                if Float.is_finite v then I.make v Float.infinity else I.point v
          in
          let src_secondary =
            List.filter_map
              (fun (p : Model.property) ->
                if String.equal p.Model.prop_name prim then None
                else
                  Some
                    ( p.Model.prop_name,
                      Option.value (value_of p.Model.prop_name)
                        ~default:p.Model.prop_default ))
              ifaces.(i).Model.properties
          in
          sources :=
            { Problem.src_iface = i; src_node = node; src_interval; src_secondary }
            :: !sources;
          Array.iteri
            (fun lvl ivl ->
              let available =
                match tag with
                | Model.Degradable -> I.lo ivl <= v
                | Model.Neither -> I.mem v ivl
                | Model.Upgradable -> (not (I.is_point ivl)) && I.hi ivl > v
              in
              if available then
                init.(Prop.avail_id props ~iface:i ~node ~level:lvl) <- true)
            iface_levels.(i))
        comp.Model.provides)
    app.pre_placed;

  (* ---------------- action construction ---------------- *)
  let actions = ref [] in
  let next_id = ref 0 in
  let emit ~kind ~pre ~add ~cost_lb ~in_levels ~out_levels ~checked_node
      ~checked_link ~label =
    if cost_lb < 0. || Float.is_nan cost_lb then
      fail "negative cost bound for action %s" label;
    let cost_extra =
      match kind with
      | Action.Place { comp; node } ->
          adjust ~comp:comps.(comp).Model.comp_name ~node
      | Action.Cross _ -> 0.
    in
    (* Adjustments may discount, but never below zero total. *)
    let cost_extra = Float.max cost_extra (-.cost_lb) in
    let cost_lb = cost_lb +. cost_extra in
    let add_closure =
      List.concat_map
        (fun pid ->
          match Prop.of_id props pid with
          | Prop.Placed _ -> [ pid ]
          | Prop.Avail (i, n, l) ->
              List.map
                (fun l' -> Prop.avail_id props ~iface:i ~node:n ~level:l')
                (implied_levels iface_tags.(i) (Array.length iface_levels.(i)) l))
        add
      |> List.sort_uniq compare
    in
    actions :=
      {
        Action.act_id = !next_id;
        kind;
        pre = Array.of_list pre;
        add = Array.of_list add;
        add_closure = Array.of_list add_closure;
        cost_lb;
        cost_extra;
        in_levels = Array.of_list in_levels;
        out_levels = Array.of_list out_levels;
        checked_node = Array.of_list checked_node;
        checked_link = Array.of_list checked_link;
        label;
      }
      :: !actions;
    incr next_id
  in

  (* Adopt an action from a previous compilation verbatim, fresh id.  The
     record copy shares the pre/add/closure arrays with the old problem —
     they are immutable and proposition ids are stable across reuses. *)
  let emit_copy (a : Action.t) =
    actions := { a with Action.act_id = !next_id } :: !actions;
    incr next_id
  in

  let lo_env_of ivl_env v = I.lo (ivl_env v) in

  (* Leveled grounding: everything from here to the [actions] array is
     schema replication over level assignments plus pruning — the
     "leveling" sub-span of compilation. *)
  let sp_leveling = Telemetry.begin_span telemetry "leveling" in

  (* ----- place actions ----- *)
  Array.iteri
    (fun c (comp : Model.component) ->
      if comp.Model.placeable then
        for node = 0 to n_nodes - 1 do
          let allowed =
            match comp_allowed_node.(c) with
            | Some only -> node = only
            | None -> true
          in
          if allowed then begin
            Deadline.guard deadline ~phase:"compile";
            match reuse.reuse_place ~comp:c ~node with
            | Some olds -> List.iter emit_copy olds
            | None ->
            let req = List.map iface_idx comp.Model.requires in
            (* Node resources this component touches. *)
            let node_resources =
              let mentioned = Hashtbl.create 4 in
              List.iter (fun (r, _) -> Hashtbl.replace mentioned r ()) comp.Model.consumes;
              let scan_vars vs =
                List.iter
                  (fun v ->
                    match split_var v with
                    | "node", r -> Hashtbl.replace mentioned r ()
                    | _ -> ())
                  vs
              in
              List.iter (fun cond -> scan_vars (Expr.cond_vars cond)) comp.Model.conditions;
              List.iter (fun (_, _, e) -> scan_vars (Expr.vars e)) comp.Model.effects;
              List.iter (fun (_, e) -> scan_vars (Expr.vars e)) comp.Model.consumes;
              scan_vars (Expr.vars comp.Model.place_cost);
              Hashtbl.fold (fun r () acc -> r :: acc) mentioned [] |> List.sort compare
            in
            (* Only non-trivially leveled resources contribute checked-level
               choices; unleveled ones default to full availability in the
               environment below and are never runtime-checked. *)
            let node_level_choices =
              List.filter_map
                (fun r ->
                  let cap = node_cap node r in
                  match Leveling.node_levels leveling r with
                  | [ single ] when I.equal single I.full -> None
                  | lvls ->
                      Some
                        (List.filter_map
                           (fun ivl ->
                             Option.map
                               (fun x -> (r, x))
                               (I.inter ivl (I.of_points [ 0.; cap ])))
                           lvls))
                node_resources
            in
            let in_choices =
              List.map
                (fun i -> List.map (fun (l, ivl) -> (i, l, ivl)) (indexed (Array.to_list iface_levels.(i))))
                req
            in
            List.iter
              (fun in_combo ->
                List.iter
                  (fun checked_node ->
                    let ivl_env v =
                      match split_var v with
                      | "node", r -> (
                          match List.assoc_opt r checked_node with
                          | Some ivl -> ivl
                          | None -> I.point (node_cap node r))
                      | iface_name, prop_name -> (
                          match
                            List.find_opt
                              (fun (i, _, _) ->
                                String.equal ifaces.(i).Model.iface_name iface_name)
                              in_combo
                          with
                          | Some (i, _, ivl) ->
                              if String.equal prop_name (primary i) then ivl else I.full
                          | None -> raise (Expr.Unbound_variable v))
                    in
                    let conditions_ok =
                      List.for_all (fun cond -> Expr.sat ~env:ivl_env cond)
                        comp.Model.conditions
                    in
                    let consumption_ok =
                      List.for_all
                        (fun (r, e) ->
                          match Expr.eval_interval ~env:ivl_env e with
                          | ivl -> I.lo ivl <= node_cap node r +. 1e-9
                          | exception Division_by_zero -> false)
                        comp.Model.consumes
                    in
                    if conditions_ok && consumption_ok then begin
                      (* Output level candidates per provided interface. *)
                      let out_choices =
                        List.map
                          (fun prov ->
                            let o = iface_idx prov in
                            let prim = primary o in
                            let effect =
                              match
                                List.find_opt
                                  (fun (fi, fp, _) ->
                                    String.equal fi prov && String.equal fp prim)
                                  comp.Model.effects
                              with
                              | Some (_, _, e) -> e
                              | None -> fail "component %s sets no %s.%s"
                                          comp.Model.comp_name prov prim
                            in
                            let out_ivl = Expr.eval_interval ~env:ivl_env effect in
                            List.filter_map
                              (fun (l, lvl_ivl) ->
                                Option.map
                                  (fun achieved -> (o, l, achieved))
                                  (I.inter lvl_ivl out_ivl))
                              (indexed (Array.to_list iface_levels.(o))))
                          comp.Model.provides
                      in
                      List.iter
                        (fun out_combo ->
                          let cost_lb =
                            Expr.eval ~env:(lo_env_of ivl_env) comp.Model.place_cost
                          in
                          let pre =
                            List.map
                              (fun (i, l, _) ->
                                Prop.avail_id props ~iface:i ~node ~level:l)
                              in_combo
                          in
                          let add =
                            Prop.placed_id props ~comp:c ~node
                            :: List.map
                                 (fun (o, l, _) ->
                                   Prop.avail_id props ~iface:o ~node ~level:l)
                                 out_combo
                          in
                          let label =
                            Printf.sprintf "place(%s,%s)%s" comp.Model.comp_name
                              (Topology.get_node topo node).Topology.node_name
                              (if in_combo = [] then ""
                               else
                                 "["
                                 ^ String.concat ","
                                     (List.map
                                        (fun (i, l, _) ->
                                          Printf.sprintf "%s:%d"
                                            ifaces.(i).Model.iface_name l)
                                        in_combo)
                                 ^ "]")
                          in
                          emit
                            ~kind:(Action.Place { comp = c; node })
                            ~pre ~add ~cost_lb
                            ~in_levels:(List.map (fun (i, _, ivl) -> (i, ivl)) in_combo)
                            ~out_levels:(List.map (fun (o, _, ivl) -> (o, ivl)) out_combo)
                            ~checked_node ~checked_link:[] ~label)
                        (cartesian out_choices)
                    end)
                  (cartesian node_level_choices))
              (cartesian in_choices)
          end
        done)
    comps;

  (* ----- cross actions ----- *)
  Array.iteri
    (fun i (iface : Model.iface) ->
      let prim = primary i in
      let link_resources =
        let mentioned = Hashtbl.create 4 in
        List.iter (fun (r, _) -> Hashtbl.replace mentioned r ()) iface.Model.cross_consumes;
        let scan_vars vs =
          List.iter
            (fun v ->
              match split_var v with
              | "link", r -> Hashtbl.replace mentioned r ()
              | _ -> ())
            vs
        in
        List.iter (fun (_, e) -> scan_vars (Expr.vars e)) iface.Model.cross_transforms;
        List.iter (fun (_, e) -> scan_vars (Expr.vars e)) iface.Model.cross_consumes;
        List.iter (fun c -> scan_vars (Expr.cond_vars c)) iface.Model.cross_conditions;
        scan_vars (Expr.vars iface.Model.cross_cost);
        Hashtbl.fold (fun r () acc -> r :: acc) mentioned [] |> List.sort compare
      in
      Array.iter
        (fun (l : Topology.link) ->
          let a, b = l.Topology.ends in
          let link_level_choices =
            List.filter_map
              (fun r ->
                let cap = link_cap l.Topology.link_id r in
                match Leveling.link_levels leveling r with
                | [ single ] when I.equal single I.full -> None
                | lvls ->
                    Some
                      (List.filter_map
                         (fun ivl ->
                           Option.map
                             (fun x -> (r, x))
                             (I.inter ivl (I.of_points [ 0.; cap ])))
                         lvls))
              link_resources
          in
          List.iter
            (fun (src, dst) ->
              Deadline.guard deadline ~phase:"compile";
              match
                reuse.reuse_cross ~iface:i ~link_id:l.Topology.link_id ~src ~dst
              with
              | Some olds -> List.iter emit_copy olds
              | None ->
              List.iter
                (fun (in_lvl, in_ivl) ->
                  List.iter
                    (fun checked_link ->
                      let ivl_env v =
                        match split_var v with
                        | "link", r -> (
                            match List.assoc_opt r checked_link with
                            | Some ivl -> ivl
                            | None -> I.point (link_cap l.Topology.link_id r))
                        | "", p ->
                            if String.equal p prim then in_ivl else I.full
                        | _ -> raise (Expr.Unbound_variable v)
                      in
                      let conditions_ok =
                        List.for_all (fun c -> Expr.sat ~env:ivl_env c)
                          iface.Model.cross_conditions
                      in
                      let consumption_ok =
                        List.for_all
                          (fun (r, e) ->
                            match Expr.eval_interval ~env:ivl_env e with
                            | ivl ->
                                I.lo ivl <= link_cap l.Topology.link_id r +. 1e-9
                            | exception Division_by_zero -> false)
                          iface.Model.cross_consumes
                      in
                      if conditions_ok && consumption_ok then begin
                        let transform =
                          match List.assoc_opt prim iface.Model.cross_transforms with
                          | Some e -> e
                          | None -> Expr.Var prim (* unchanged by crossing *)
                        in
                        let out_ivl = Expr.eval_interval ~env:ivl_env transform in
                        let candidates =
                          List.filter_map
                            (fun (lvl, lvl_ivl) ->
                              match I.inter lvl_ivl out_ivl with
                              | None -> None
                              | Some achieved ->
                                  (* Dominance pruning for monotone streams:
                                     entering at a higher level than what
                                     comes out is never useful. *)
                                  let dominated =
                                    match iface_tags.(i) with
                                    | Model.Degradable -> lvl < in_lvl
                                    | Model.Upgradable -> lvl > in_lvl
                                    | Model.Neither -> false
                                  in
                                  if dominated then None
                                  else Some (lvl, achieved))
                            (indexed (Array.to_list iface_levels.(i)))
                        in
                        List.iter
                          (fun (out_lvl, achieved) ->
                            let cost_lb =
                              Expr.eval ~env:(lo_env_of ivl_env)
                                iface.Model.cross_cost
                            in
                            let label =
                              Printf.sprintf "cross(%s,%s->%s)[%d]"
                                iface.Model.iface_name
                                (Topology.get_node topo src).Topology.node_name
                                (Topology.get_node topo dst).Topology.node_name
                                in_lvl
                            in
                            emit
                              ~kind:
                                (Action.Cross
                                   { iface = i; link = l.Topology.link_id; src; dst })
                              ~pre:[ Prop.avail_id props ~iface:i ~node:src ~level:in_lvl ]
                              ~add:[ Prop.avail_id props ~iface:i ~node:dst ~level:out_lvl ]
                              ~cost_lb
                              ~in_levels:[ (i, in_ivl) ]
                              ~out_levels:[ (i, achieved) ]
                              ~checked_node:[] ~checked_link ~label)
                          candidates
                      end)
                    (cartesian link_level_choices))
                (indexed (Array.to_list iface_levels.(i))))
            [ (a, b); (b, a) ])
        (Topology.links topo))
    ifaces;

  let actions = Array.of_list (List.rev !actions) in
  ignore
    (Telemetry.end_span telemetry sp_leveling
       ~attrs:[ ("actions", Telemetry.Int (Array.length actions)) ]);

  (* Network-ignorant maximum achievable value per interface: source
     capacities pushed through every component effect to a fixpoint (the
     paper's greedy "maximum possible utilization").  Computed before the
     dead-action pruning below, which consumes it. *)
  let iface_max = Array.make (Array.length ifaces) Float.neg_infinity in
  List.iter
    (fun (s : Problem.source) ->
      iface_max.(s.src_iface) <- Float.max iface_max.(s.src_iface) (I.hi s.src_interval))
    !sources;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 2 * Array.length ifaces do
    changed := false;
    incr rounds;
    Array.iter
      (fun (comp : Model.component) ->
        let inputs_known =
          List.for_all
            (fun req -> iface_max.(iface_idx req) > Float.neg_infinity)
            comp.Model.requires
        in
        if comp.Model.placeable && inputs_known then
          List.iter
            (fun prov ->
              let o = iface_idx prov in
              let prim_o = primary o in
              match
                List.find_opt
                  (fun (fi, fp, _) -> String.equal fi prov && String.equal fp prim_o)
                  comp.Model.effects
              with
              | None -> ()
              | Some (_, _, e) -> (
                  let env v =
                    match split_var v with
                    | "node", _ -> Float.infinity (* optimistic *)
                    | iface_name, prop_name -> (
                        let i = iface_idx iface_name in
                        if String.equal prop_name (primary i) then iface_max.(i)
                        else Float.infinity)
                  in
                  match Expr.eval ~env e with
                  | v ->
                      if v > iface_max.(o) +. 1e-12 then begin
                        iface_max.(o) <- v;
                        changed := true
                      end
                  | exception (Expr.Unbound_variable _ | Division_by_zero) -> ()))
            comp.Model.provides)
      comps
  done;
  (* A fixpoint still changing after the round bound indicates an
     amplifying effect cycle: the only sound finite answer is "unbounded". *)
  if !changed then
    Array.iteri
      (fun i v -> if v > Float.neg_infinity then iface_max.(i) <- Float.infinity)
      iface_max;
  let iface_max = Array.map (fun v -> Float.max v 0.) iface_max in

  (* ---------------- dead-action pruning ---------------- *)
  (* [iface_max] is the same admissible supply bound Regression replay
     seeds unknown streams with: a leveled action assuming an input level
     whose infimum exceeds it can never fire, and neither can an action
     whose preconditions only such actions could have produced (relaxed
     forward reachability over the survivors).  Pruning them here shrinks
     every downstream graph.  Survivors keep their relative order and are
     renumbered sequentially, so the result is exactly what grounding
     without the dead schemas would have produced. *)
  let ground_actions = actions in
  let actions, pruned_actions =
    if not prune then (actions, 0)
    else begin
      let n = Array.length actions in
      let live = Array.make n true in
      Array.iteri
        (fun k (a : Action.t) ->
          if
            Array.exists
              (fun (i, ivl) -> I.lo ivl > iface_max.(i))
              a.Action.in_levels
          then live.(k) <- false)
        actions;
      let producible = Array.copy init in
      let applied = Array.make n false in
      let fired = ref true in
      while !fired do
        fired := false;
        Array.iteri
          (fun k (a : Action.t) ->
            if
              live.(k) && (not applied.(k))
              && Array.for_all (fun p -> producible.(p)) a.Action.pre
            then begin
              applied.(k) <- true;
              fired := true;
              Array.iter (fun p -> producible.(p) <- true) a.Action.add_closure
            end)
          actions
      done;
      for k = 0 to n - 1 do
        if live.(k) && not applied.(k) then live.(k) <- false
      done;
      let survivors = ref [] in
      for k = n - 1 downto 0 do
        if live.(k) then survivors := actions.(k) :: !survivors
      done;
      match Array.of_list !survivors with
      | kept when Array.length kept = n -> (actions, 0)
      | kept ->
          Array.iteri
            (fun k a -> kept.(k) <- { a with Action.act_id = k })
            kept;
          (kept, n - Array.length kept)
    end
  in

  (* ---------------- supports ---------------- *)
  let supports = Array.make (Prop.count props) [] in
  (* Iterate in reverse so each support list ends up in ascending action
     id order (determinism). *)
  for k = Array.length actions - 1 downto 0 do
    let a = actions.(k) in
    Array.iter
      (fun pid -> supports.(pid) <- a.Action.act_id :: supports.(pid))
      a.Action.add_closure
  done;

  let goal_props =
    Array.of_list
      (List.map
         (function
           | Model.Placed (name, node) ->
               Prop.placed_id props ~comp:(comp_idx name) ~node
           | Model.Available _ -> assert false (* rewritten above *))
         app.goals)
  in

  {
    Problem.topo;
    app;
    ifaces;
    comps;
    iface_levels;
    iface_tags;
    props;
    actions;
    supports;
    init;
    init_consumed = !init_consumed;
    sources = List.rev !sources;
    goal_props;
    comp_allowed_node;
    iface_max;
    pruned_actions;
    (* Share the one array when pruning removed nothing. *)
    ground_actions =
      (if pruned_actions = 0 then actions else ground_actions);
  }

let no_adjust ~comp:_ ~node:_ = 0.

let compile ?(adjust = no_adjust) ?(telemetry = Telemetry.null)
    ?(deadline = Deadline.none) ?(prune = true) topo app leveling =
  compile_with ~adjust ~telemetry ~deadline ~prune ~reuse:no_reuse topo app
    leveling

(* Incremental recompilation after a topology delta.  The old problem's
   actions are indexed by grounding group — (comp, node) for placements,
   (iface, link id, src, dst) for crossings — and groups whose site the
   delta did not touch are copied instead of re-grounded.  Link ids are
   stable across every Mutate operation, so the crossing key needs no
   translation: a surviving link's group is found under the same id it
   always had, and a tombstoned link's group is simply never asked for
   (the new topology's live view no longer contains it).  A copied group
   is exactly what fresh grounding would produce: placement groups
   depend only on their node's capacities, crossing groups only on their
   link's capacities and the endpoint names, all unchanged at untouched
   sites (and [adjust] must be the same function that compiled [old] —
   {!Session} fixes it per session).  Because {!compile_with} walks
   groups in the canonical cold order and assigns sequential act_ids, the
   result is structurally identical to a cold [compile] of the mutated
   topology, just cheaper. *)
let recompile ?(adjust = no_adjust) ?(telemetry = Telemetry.null)
    ?(deadline = Deadline.none) ~(old : Problem.t) ~node_touched
    ~link_touched topo app leveling =
  (* Reuse groups are built from the *pre-prune* ground set: deadness is
     a global property (it flows through [iface_max] and the relaxed
     reachability cascade), so a delta at one site can revive an action
     pruned at an untouched one.  Serving the full ground groups keeps
     every candidate on the table, and the fresh compile's own prune
     pass re-proves deadness over the assembled set — both the kill and
     the revive direction land exactly where a cold compile would. *)
  let place_groups = Hashtbl.create 256 in
  let cross_groups = Hashtbl.create 256 in
  let push tbl key a =
    Hashtbl.replace tbl key
      (a :: Option.value (Hashtbl.find_opt tbl key) ~default:[])
  in
  Array.iter
    (fun (a : Action.t) ->
      match a.Action.kind with
      | Action.Place { comp; node } -> push place_groups (comp, node) a
      | Action.Cross { iface; link; src; dst } ->
          push cross_groups (iface, link, src, dst) a)
    old.Problem.ground_actions;
  (* Restore original emission order within each group. *)
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) place_groups;
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) cross_groups;
  let reused = ref 0 in
  let serve olds =
    reused := !reused + List.length olds;
    Some olds
  in
  let reuse =
    {
      reuse_place =
        (fun ~comp ~node ->
          if node_touched node then None
          else
            match Hashtbl.find_opt place_groups (comp, node) with
            | Some olds -> serve olds
            | None -> None);
      reuse_cross =
        (fun ~iface ~link_id ~src ~dst ->
          if link_touched link_id || node_touched src || node_touched dst then
            None
          else
            match Hashtbl.find_opt cross_groups (iface, link_id, src, dst) with
            | Some olds -> serve olds
            | None -> None);
    }
  in
  let pb =
    compile_with ~adjust ~telemetry ~deadline ~prune:true ~reuse topo app
      leveling
  in
  (* Invalidation is counted against the ground set the groups serve. *)
  (pb, Array.length old.Problem.ground_actions - !reused)
