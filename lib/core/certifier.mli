(** Registration point for the independent plan certifier.

    {!Session} re-validates every emitted plan when [config.certify] is
    set, but the checker itself (sekitei.analysis' [Certify]) lives in a
    library layered {e above} lib/core — deliberately, so it shares no
    code with the search and replay machinery it audits.  The session
    therefore calls through this hook; [Sekitei_analysis.Certify.install]
    registers the real implementation.

    With no checker installed, {!run} accepts every plan (and
    [config.certify] is a no-op). *)

type checker = Problem.t -> Plan.t -> (unit, string) result
(** Returns [Error reason] when the plan fails independent validation;
    [reason] is a rendered diagnostic. *)

val install : checker -> unit
val installed : unit -> bool
val run : Problem.t -> Plan.t -> (unit, string) result
