(** Canonical proposition sets, hash-consed handles, and fast regression.

    Both graph search phases (SLRG and RG) regress over {e sets} of pending
    propositions represented as canonical int arrays: sorted ascending,
    duplicate-free, with initially-true propositions dropped.  This module
    centralizes the representation so the two phases share one
    [Int.compare]-specialized implementation (no polymorphic [compare]),
    one hash function, and one precomputed per-action regression table.

    On top of the raw arrays the module hash-conses: a per-{!ctx}
    {!Interner} maps each distinct canonical array to a unique physical
    representative and a dense {!handle} id.  Search structures keyed by
    interned handles (the RG duplicate table, the SLRG solved/bound
    caches, the per-query g/parent maps) compare and hash a single int
    instead of re-walking the array on every probe — the FNV sweep runs
    once per distinct set, at interning time. *)

(** [canonical pb props] sorts, deduplicates and drops initially-true
    propositions. *)
val canonical : Problem.t -> int list -> int array

(** [canonical_array pb props] is {!canonical} over an array (the input is
    not mutated). *)
val canonical_array : Problem.t -> int array -> int array

(** Structural equality of canonical sets (length + element loop, no
    polymorphic compare). *)
val equal : int array -> int array -> bool

(** FNV-1a style hash of a canonical set. *)
val hash : int array -> int

(** [mem set p] — membership in a canonical (sorted) set, by binary
    search. *)
val mem : int array -> int -> bool

(** Hash table keyed structurally by canonical sets (hash walks the
    array).  Prefer id-keyed tables over interned {!handle}s on hot
    paths; this stays for callers without an interner at hand. *)
module Tbl : Hashtbl.S with type key = int array

(** An interned canonical set: [id] is dense (0, 1, 2, ... in first-seen
    order per interner) and [set] is the unique physical representative
    array — two handles of one interner satisfy
    [h1.id = h2.id  <=>  Propset.equal h1.set h2.set].  The array must
    not be mutated. *)
type handle = { id : int; set : int array }

module Interner : sig
  type t

  val create : unit -> t

  (** [intern t set] returns the handle of [set] (which must be
      canonical), allocating a fresh dense id on first sight.  The array
      is adopted as the representative when new — do not mutate it. *)
  val intern : t -> int array -> handle

  (** Number of distinct sets interned so far (= the next fresh id). *)
  val size : t -> int

  (** [get t id] — the handle registered under [id].  Raises
      [Invalid_argument] on an unknown id. *)
  val get : t -> int -> handle
end

(** Per-problem regression tables: each action's add-closure and
    precondition set pre-sorted (and the preconditions pre-canonicalized)
    so a regression step is a linear merge instead of quadratic scans.
    Also owns the {!Interner} and the regression memo — share one [ctx]
    across the SLRG oracle and the RG search of a query so their handle
    ids agree and repeated regression edges are computed once. *)
type ctx

val make_ctx : Problem.t -> ctx

(** [refresh_ctx ctx pb] rebinds the ctx to a recompiled problem: the
    per-action regression tables are rebuilt and the regression memo is
    cleared (both are keyed by action ids, which recompilation
    renumbers), while the interner — and with it every dense handle id —
    is kept, because proposition ids are stable across topology deltas.
    The caller must ensure [pb.init] equals the init array the ctx was
    created with; a changed initial section changes canonicalization
    itself and requires a fresh ctx ({!Session} checks this and rebuilds
    from scratch on a mismatch). *)
val refresh_ctx : ctx -> Problem.t -> unit

(** Intern a canonical set in the ctx's interner. *)
val intern : ctx -> int array -> handle

(** The handle registered under a dense id of this ctx's interner. *)
val handle_of_id : ctx -> int -> handle

(** Distinct sets interned in this ctx so far. *)
val interned_count : ctx -> int

(** [regress ctx set a] is the canonical set
    [(set \ add_closure a) ∪ pre a]: the propositions still pending after
    deciding that [a] closes the plan suffix.  [set] must be canonical;
    the result is canonical (raw arrays, no interning). *)
val regress : ctx -> int array -> Action.t -> int array

(** [regress_h ctx h a] is {!regress} over interned handles, memoized on
    (set id, action id): each distinct regression edge runs the merge
    once per ctx, every revisit — across SLRG queries and the RG search
    sharing the ctx — is one int-keyed table probe. *)
val regress_h : ctx -> handle -> Action.t -> handle
