(** Canonical proposition sets and fast regression over them.

    Both graph search phases (SLRG and RG) regress over {e sets} of pending
    propositions represented as canonical int arrays: sorted ascending,
    duplicate-free, with initially-true propositions dropped.  This module
    centralizes the representation so the two phases share one
    [Int.compare]-specialized implementation (no polymorphic [compare]),
    one hash function, and one precomputed per-action regression table. *)

(** [canonical pb props] sorts, deduplicates and drops initially-true
    propositions. *)
val canonical : Problem.t -> int list -> int array

(** [canonical_array pb props] is {!canonical} over an array (the input is
    not mutated). *)
val canonical_array : Problem.t -> int array -> int array

(** Structural equality of canonical sets (length + element loop, no
    polymorphic compare). *)
val equal : int array -> int array -> bool

(** FNV-1a style hash of a canonical set. *)
val hash : int array -> int

(** [mem set p] — membership in a canonical (sorted) set, by binary
    search. *)
val mem : int array -> int -> bool

(** Hash table keyed by canonical sets. *)
module Tbl : Hashtbl.S with type key = int array

(** Per-problem regression tables: each action's add-closure and
    precondition set pre-sorted (and the preconditions pre-canonicalized)
    so a regression step is a linear merge instead of quadratic scans. *)
type ctx

val make_ctx : Problem.t -> ctx

(** [regress ctx set a] is the canonical set
    [(set \ add_closure a) ∪ pre a]: the propositions still pending after
    deciding that [a] closes the plan suffix.  [set] must be canonical;
    the result is canonical. *)
val regress : ctx -> int array -> Action.t -> int array
