(** The planner façade: validate, compile, run the three phases, report.

    The one-shot entry point is {!plan} over a {!request} record; it
    returns a {!report} carrying the result, per-phase timings/sizes and
    the flat {!stats} record.  [plan (request topo app ~leveling)] is the
    modified Sekitei algorithm of the paper; omitting [~leveling] runs
    the trivial leveling (every variable one [0, inf) level), which
    degenerates to the original greedy Sekitei (Table 1, scenario A).

    Repeated or perturbed queries should use a long-lived
    {!Session.t} instead: it keeps the compiled problem and the SLRG
    oracle hot across requests, applies topology deltas with
    dependency-tracked invalidation, and bounds request latency with a
    deadline.  {!plan} itself is a thin wrapper over a throwaway
    session, so the two paths cannot drift apart.  The pipeline types
    below ({!config}, {!failure_reason}, {!stats}, {!phases}, ...) are
    re-exported from {!Session} by equation — values flow freely between
    the two modules. *)

(** The session engine ({!Session.create} / {!Session.plan} /
    {!Session.update}), re-exported under the planner namespace. *)
module Session = Session

type config = Session.config = {
  slrg_query_budget : int;  (** set-node budget per SLRG query *)
  rg_max_expansions : int;
  validate_spec : bool;  (** run {!Sekitei_spec.Validate} first *)
  explain : bool;
      (** derive a {!Explain.t} for solved runs and a
          {!Explain.certificate} for failed ones (default [false];
          costs one extra from-init replay of the final plan) *)
  profile_h : bool;
      (** record heuristic-quality samples ({!Rg.hsample}) along the
          solution path (default [false]; adds a PLRG sweep per queued
          RG node, so leave off when benchmarking) *)
  defer_h : bool;
      (** lazy two-stage heuristic evaluation in the RG search (default
          [true]): queue successors under the cheap PLRG bound and run
          the SLRG oracle only on nodes that reach the top of the open
          list.  Solvability and the optimal cost bound are unchanged
          either way (see {!Rg.search} for the fp-tie caveats); [false]
          restores eager per-successor oracle queries for A/B
          measurement *)
  deadline_ms : float option;
      (** per-request wall-clock budget (monotonic {!Sekitei_util.Timer}
          time, polled cooperatively by every phase); [None] (default)
          never expires.  See {!Session} *)
  certify : bool;
      (** re-validate every emitted plan through the installed
          {!Certifier} hook (default [false]; no-op until
          [Sekitei_analysis.Certify.install] has run).  A rejected plan
          becomes [Error (Certification_failed _)] *)
}

val default_config : config

type failure_reason = Session.failure_reason =
  | Invalid_spec of string
  | Unreachable_goal of string list
      (** the PLRG proves the goals logically unreachable; carries the
          labels of the goal propositions with infinite PLRG cost *)
  | Resource_exhausted
      (** goals logically reachable, but every candidate tail violates
          resources — the scenario-A failure mode *)
  | Search_limit of { expansions : int; best_f : float }
      (** RG expansion budget exceeded; [best_f] is an admissible lower
          bound on the cost of any plan a longer search could find *)
  | Deadline_exceeded of {
      phase : string;  (** ["compile"], ["plrg"], or ["rg"] *)
      expansions : int;  (** RG expansions completed (0 outside the RG) *)
      best_f : float option;
          (** admissible lower bound when the RG frontier was reached —
              the same evidence a {!Search_limit} carries *)
    }  (** the request's [config.deadline_ms] expired first *)
  | Certification_failed of string
      (** [config.certify] was set and the independent certifier
          rejected the emitted plan — always a planner bug *)

type stats = Session.stats = {
  total_actions : int;  (** Table 2 col 5: leveled actions after pruning *)
  plrg_props : int;  (** Table 2 col 6 (left) *)
  plrg_actions : int;  (** Table 2 col 6 (right) *)
  slrg_nodes : int;  (** Table 2 col 7 *)
  rg_created : int;  (** Table 2 col 8 (left) *)
  rg_open_left : int;  (** Table 2 col 8 (right) *)
  rg_expanded : int;
  replay_pruned : int;
  final_replay_rejected : int;
  rg_duplicates : int;
      (** RG nodes pruned by duplicate detection (pending set re-derived
          at an equal-or-worse g) *)
  order_repaired : int;
      (** candidate tails recovered by the RG backtracking re-sequencer
          after failing from-init validation *)
  slrg_cache_hits : int;
      (** SLRG queries answered from the solved or capped-bound caches.
          For warm session requests the [slrg_*] fields are per-request
          deltas; for a one-shot {!plan} they equal the oracle totals *)
  slrg_suffix_harvested : int;
      (** exact SLRG cache entries recorded by suffix-cost harvesting
          beyond the queried roots themselves *)
  slrg_bound_promoted : int;
      (** budget-exhausted SLRG bounds later replaced by exact entries *)
  slrg_deferred : int;
      (** RG nodes queued with the cheap PLRG bound instead of an
          up-front SLRG query ([0] with [config.defer_h = false]) *)
  slrg_saved : int;
      (** deferred nodes never refined — SLRG oracle queries eager
          evaluation would have paid that this run skipped entirely *)
  invalidated_actions : int;
      (** leveled actions the session's {!Session.update}s since the
          previous request could not reuse; always 0 for one-shot runs *)
  evicted_entries : int;
      (** SLRG cache entries those updates evicted; always 0 for
          one-shot runs *)
  t_total_ms : float;  (** Table 2 col 9 (left) *)
  t_search_ms : float;  (** Table 2 col 9 (right): graph phases only *)
}

(** Result + stats, the compact summary {!Redeploy.replan} returns. *)
type outcome = { result : (Plan.t, failure_reason) Stdlib.result; stats : stats }

(** Everything a planning run needs.  Build with {!request}; override
    fields with record update syntax ([{ req with config = ... }]). *)
type request = Session.request = {
  topo : Sekitei_network.Topology.t;
  app : Sekitei_spec.Model.app;
  leveling : Sekitei_spec.Leveling.t;
  config : config;
  telemetry : Sekitei_telemetry.Telemetry.t;
}

(** Smart constructor: [config] defaults to {!default_config}, [telemetry]
    to {!Sekitei_telemetry.Telemetry.null} (zero-overhead), [leveling] to
    the empty (greedy) leveling. *)
val request :
  ?config:config ->
  ?telemetry:Sekitei_telemetry.Telemetry.t ->
  ?leveling:Sekitei_spec.Leveling.t ->
  Sekitei_network.Topology.t ->
  Sekitei_spec.Model.app ->
  request

(** One phase of the pipeline: wall time, a characteristic size, and the
    phase's GC footprint ([Gc.quick_stat] deltas bracketing the phase —
    minor-heap words allocated and major collections triggered).  Rising
    allocation pressure is the usual early warning when a phase's wall
    time regresses.  Warm session requests report the compile and plrg
    phases with [ms = 0.] (the work happened in an earlier request or
    update). *)
type phase = Session.phase = {
  ms : float;
  items : int;
  minor_words : float;
  major_collections : int;
}

(** Cross-query reuse counters of the SLRG cost oracle (printed by
    {!pp_phases} as [slrg_cache=hits/harvested/promoted]). *)
type slrg_cache = Session.slrg_cache = {
  hits : int;  (** queries answered without running an A* *)
  harvested : int;  (** suffix entries recorded beyond queried roots *)
  promoted : int;  (** exhausted bounds replaced by exact entries *)
}

(** Session-reuse counters (printed by {!pp_phases} as
    [reuse=invalidated/evicted]); both 0 for one-shot runs. *)
type reuse_counters = Session.reuse_counters = {
  invalidated : int;
  evicted : int;
}

type phases = Session.phases = {
  compile : phase;  (** items = leveled actions after pruning *)
  plrg : phase;  (** items = relevant propositions *)
  slrg : phase;
      (** items = set nodes generated; [ms] (and the GC fields) = oracle
          construction plus the cumulative footprint of its lazy queries,
          which run {e inside} the RG search (so the slrg phase overlaps
          the rg one) *)
  slrg_cache : slrg_cache;
  rg : phase;  (** items = RG nodes created *)
  reuse : reuse_counters;
}

type report = Session.report = {
  result : (Plan.t, failure_reason) Stdlib.result;
  phases : phases;
      (** per-phase timings are measured monotonically even with the null
          telemetry; phases not reached report [{ ms = 0.; items = 0 }] *)
  stats : stats;
  explanation : Explain.t option;
      (** per-action cost/level/slack account; [Some] iff
          [config.explain] and the run solved *)
  certificate : Explain.certificate option;
      (** unsolvability evidence; [Some] iff [config.explain] and the
          run failed with {!Unreachable_goal}, {!Search_limit}, or an
          in-search {!Deadline_exceeded} *)
  hquality : Rg.hsample list option;
      (** solution-path heuristic samples, root first; [Some] iff
          [config.profile_h] (empty list when no solution was found) —
          analyze with [Sekitei_harness.Hquality] *)
}

(** Run the planner on a request via a throwaway {!Session.t}.  [adjust]
    is forwarded to {!Compile.compile} (per-placement cost adjustments,
    used by {!Redeploy}).  When the request carries a telemetry handle
    with sinks, the run emits a span tree rooted at ["plan"]
    (compile/leveling, plrg, slrg, rg, replay, replay.repair, per-query
    slrg.query), aggregated counters, and periodic ["rg"] progress
    events; failed runs attach the {!pp_failure}-rendered reason to the
    ["plan"] span end as a ["failure"] attribute.

    [metrics] records the run's lifetime metrics into a shared always-on
    registry (see {!Session.metrics}); a telemetry handle arming a
    {!Sekitei_telemetry.Telemetry.Flight} recorder with a dump path gets
    the ring dumped on [Search_limit] / [Deadline_exceeded] failures and
    escaping exceptions. *)
val plan :
  ?adjust:(comp:string -> node:int -> float) ->
  ?metrics:Sekitei_telemetry.Registry.t ->
  request ->
  report

(** [plan_batch reqs] runs {!plan} on every request, in parallel across
    up to [jobs] domains ({!Sekitei_util.Domain_pool.map}: dynamic load
    balancing, input-order results, earliest-index exception
    propagation).  [jobs] defaults to
    [Domain_pool.default_jobs ()] and is capped at the batch size; any
    value [< 1] also selects the default, and [~jobs:1] runs the batch
    sequentially on the calling domain (no domains spawned) — the
    determinism escape hatch.

    Requests are planned shared-nothing, with one caveat the caller
    owns: a {!Sekitei_telemetry.Telemetry.t} handle carries mutable
    counter state, so each request must have its own handle (or
    {!Sekitei_telemetry.Telemetry.null}); a sink shared between those
    handles must be wrapped with {!Sekitei_telemetry.Telemetry.locked}.

    [metrics] may be one registry shared by the whole batch: its
    per-domain shards keep worker recording contention-free, and each
    worker additionally reports pool-health metrics (["pool.workers"],
    ["pool.items"], ["pool.worker_busy_ms"], ["pool.worker_idle_ms"])
    from its own domain when it finishes. *)
val plan_batch :
  ?adjust:(comp:string -> node:int -> float) ->
  ?jobs:int ->
  ?metrics:Sekitei_telemetry.Registry.t ->
  request list ->
  report list

(** Render a failure reason for humans — the single formatter behind the
    CLI's "No plan:" line and the ["failure"] span attribute
    trace_report surfaces. *)
val pp_failure : Format.formatter -> failure_reason -> unit

val pp_stats : Format.formatter -> stats -> unit
val pp_phases : Format.formatter -> phases -> unit
