(** The planner façade: validate, compile, run the three phases, report.

    [solve topo app leveling] is the modified Sekitei algorithm of the
    paper; [solve_greedy] runs it with the trivial leveling (every variable
    one [0, inf) level), which degenerates to the original greedy Sekitei
    (Table 1, scenario A). *)

type config = {
  slrg_query_budget : int;  (** set-node budget per SLRG query *)
  rg_max_expansions : int;
  validate_spec : bool;  (** run {!Sekitei_spec.Validate} first *)
}

val default_config : config

type failure_reason =
  | Invalid_spec of string
  | Unreachable_goal
      (** the PLRG proves the goals logically unreachable *)
  | Resource_exhausted
      (** goals logically reachable, but every candidate tail violates
          resources — the scenario-A failure mode *)
  | Search_limit  (** RG expansion budget exceeded *)

type stats = {
  total_actions : int;  (** Table 2 col 5: leveled actions after pruning *)
  plrg_props : int;  (** Table 2 col 6 (left) *)
  plrg_actions : int;  (** Table 2 col 6 (right) *)
  slrg_nodes : int;  (** Table 2 col 7 *)
  rg_created : int;  (** Table 2 col 8 (left) *)
  rg_open_left : int;  (** Table 2 col 8 (right) *)
  rg_expanded : int;
  replay_pruned : int;
  final_replay_rejected : int;
  rg_duplicates : int;
      (** RG nodes pruned by duplicate detection (pending set re-derived
          at an equal-or-worse g) *)
  t_total_ms : float;  (** Table 2 col 9 (left) *)
  t_search_ms : float;  (** Table 2 col 9 (right): graph phases only *)
}

type outcome = { result : (Plan.t, failure_reason) Stdlib.result; stats : stats }

(** [adjust] is forwarded to {!Compile.compile} (per-placement cost
    adjustments, used by {!Redeploy}). *)
val solve :
  ?config:config ->
  ?adjust:(comp:string -> node:int -> float) ->
  Sekitei_network.Topology.t ->
  Sekitei_spec.Model.app ->
  Sekitei_spec.Leveling.t ->
  outcome

(** Original greedy Sekitei: [solve] with the empty leveling. *)
val solve_greedy :
  ?config:config ->
  Sekitei_network.Topology.t ->
  Sekitei_spec.Model.app ->
  outcome

val pp_failure_reason : Format.formatter -> failure_reason -> unit
val pp_stats : Format.formatter -> stats -> unit
