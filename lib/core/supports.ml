(* Shared relevant-supports precomputation for the two set-regression
   searches (SLRG and RG).  Both phases branch on "distinct relevant
   actions supporting any pending proposition"; keeping the filtered
   per-proposition tables and the scratch bitmap in one place means the
   phases cannot drift apart. *)

type t = {
  rel : int array array;
      (** per proposition: relevant supporting actions, ascending id *)
  seen : bool array;  (** scratch bitmap over action ids, false at rest *)
  memo : (int, int array) Hashtbl.t;
      (** per interned-set id: the candidate array, computed once — the
          searches re-expand the same pending sets across queries, and
          with hash-consed handles the cache probe is one int hash *)
}

let make (pb : Problem.t) plrg =
  let rel =
    Array.map
      (fun aids ->
        let arr =
          Array.of_list (List.filter (Plrg.action_relevant plrg) aids)
        in
        Array.sort Int.compare arr;
        arr)
      pb.Problem.supports
  in
  {
    rel;
    seen = Array.make (Array.length pb.Problem.actions) false;
    memo = Hashtbl.create 512;
  }

let candidates t (set : int array) =
  let acc = ref [] in
  let count = ref 0 in
  Array.iter
    (fun p ->
      Array.iter
        (fun aid ->
          if not t.seen.(aid) then begin
            t.seen.(aid) <- true;
            acc := aid :: !acc;
            incr count
          end)
        t.rel.(p))
    set;
  let out = Array.make !count 0 in
  List.iteri (fun i aid -> out.(i) <- aid) !acc;
  List.iter (fun aid -> t.seen.(aid) <- false) !acc;
  Array.sort Int.compare out;
  out

let candidates_h t (h : Propset.handle) =
  match Hashtbl.find_opt t.memo h.Propset.id with
  | Some out -> out
  | None ->
      let out = candidates t h.Propset.set in
      Hashtbl.replace t.memo h.Propset.id out;
      out
