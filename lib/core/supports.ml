(* Shared relevant-supports precomputation for the two set-regression
   searches (SLRG and RG).  Both phases branch on "distinct relevant
   actions supporting any pending proposition"; keeping the filtered
   per-proposition tables and the scratch bitmap in one place means the
   phases cannot drift apart. *)

type t = {
  rel : int array array;
      (** per proposition: relevant supporting actions, ascending id *)
  seen : bool array;  (** scratch bitmap over action ids, false at rest *)
  memo : (int, int array) Hashtbl.t;
      (** per interned-set id: the candidate array, computed once — the
          searches re-expand the same pending sets across queries, and
          with hash-consed handles the cache probe is one int hash *)
}

let make (pb : Problem.t) plrg =
  let rel =
    Array.map
      (fun aids ->
        let arr =
          Array.of_list (List.filter (Plrg.action_relevant plrg) aids)
        in
        Array.sort Int.compare arr;
        arr)
      pb.Problem.supports
  in
  {
    rel;
    seen = Array.make (Array.length pb.Problem.actions) false;
    memo = Hashtbl.create 512;
  }

let candidates t (set : int array) =
  let acc = ref [] in
  let count = ref 0 in
  Array.iter
    (fun p ->
      Array.iter
        (fun aid ->
          if not t.seen.(aid) then begin
            t.seen.(aid) <- true;
            acc := aid :: !acc;
            incr count
          end)
        t.rel.(p))
    set;
  let out = Array.make !count 0 in
  List.iteri (fun i aid -> out.(i) <- aid) !acc;
  List.iter (fun aid -> t.seen.(aid) <- false) !acc;
  Array.sort Int.compare out;
  out

(* Dependency-tracked invalidation support for long-lived sessions.

   A topology delta touches nodes and links; an action is {e tainted} when
   it is grounded at a touched site or (transitively) when one of its
   preconditions can only be produced by tainted actions whose outputs the
   delta may have changed.  We over-approximate with a worklist fixpoint:

   - every action at a touched site is tainted;
   - every add-closure proposition of a tainted action is {e dirty};
   - every action with a dirty precondition is tainted.

   The key soundness property (relied on by [Slrg.refresh]): any action
   applicable to a set with no dirty proposition is untainted, and an
   untainted action's preconditions are all clean — so regression from a
   clean set only ever meets actions identical in the old and new
   problems, and cached exact costs over clean sets stay valid. *)
let taint (pb : Problem.t) ~node_touched ~link_touched =
  let n_actions = Array.length pb.Problem.actions in
  let n_props = Array.length pb.Problem.init in
  let tainted = Array.make n_actions false in
  let dirty = Array.make n_props false in
  (* Reverse index: proposition -> actions consuming it as a
     precondition. *)
  let consumers = Array.make n_props [] in
  Array.iter
    (fun (a : Action.t) ->
      Array.iter
        (fun p -> consumers.(p) <- a.Action.act_id :: consumers.(p))
        a.Action.pre)
    pb.Problem.actions;
  let stack = Stack.create () in
  let taint_act aid =
    if not tainted.(aid) then begin
      tainted.(aid) <- true;
      Array.iter
        (fun p ->
          if not dirty.(p) then begin
            dirty.(p) <- true;
            Stack.push p stack
          end)
        pb.Problem.actions.(aid).Action.add_closure
    end
  in
  Array.iter
    (fun (a : Action.t) ->
      let touched =
        match a.Action.kind with
        | Action.Place { node; _ } -> node_touched node
        | Action.Cross { link; src; dst; _ } ->
            link_touched link || node_touched src || node_touched dst
      in
      if touched then taint_act a.Action.act_id)
    pb.Problem.actions;
  while not (Stack.is_empty stack) do
    let p = Stack.pop stack in
    List.iter taint_act consumers.(p)
  done;
  (tainted, dirty)

let candidates_h t (h : Propset.handle) =
  match Hashtbl.find_opt t.memo h.Propset.id with
  | Some out -> out
  | None ->
      let out = candidates t h.Propset.set in
      Hashtbl.replace t.memo h.Propset.id out;
      out
