(** Phase 2: the set logical regression graph (paper section 3.2.2).

    Estimates the minimum logical cost of achieving a {e set} of
    propositions together, by A* regression over proposition sets using the
    PLRG cost as heuristic.  Unlike the PLRG's max-aggregation, the SLRG
    accounts for the fact that actions in a serial plan pay their costs in
    sequence (the paper's example: the cost of [{placed(Cl,n1)}] rises from
    18 to 19 because two link crossings can no longer be counted in
    parallel).

    The oracle is lazy, memoized, and built for {e cross-query reuse} —
    one A* pays for many future queries:

    - {b Suffix-cost harvesting.}  A query that terminates exactly records
      the exact cost-to-empty for every set on its optimal path
      ([C* - g(set)], valid because the PLRG h_max heuristic is consistent
      under regression), turning one solve into a batch of solved cache
      entries.
    - {b Bound escalation.}  A budget-exhausted query caches its
      admissible bound {e together with the budget spent}; a re-query
      re-runs with a doubled budget until exact (the bound is then
      {e promoted} to a solved entry) or a fixed per-set cap is reached,
      after which the bound is served from cache.  Escalated re-runs
      additionally draw on one shared per-oracle expansion pool — when it
      runs dry, cached bounds are served as-is, so hard instances with
      thousands of exhausted sets cannot multiply planning time
      (escalation is opportunistic, never needed for soundness).
    - {b Bound seeding.}  Expansions reaching a set whose cost is known
      only as a cached bound fold that bound into the successor's f-value
      (still admissible), so exhausted queries sharpen later ones. *)

type t

(** [telemetry] attaches a ["slrg.query"] sub-span to every non-memoized
    query (set size, A* expansions, resulting cost) and counts cache hits
    ([slrg.cache_hit]), harvested suffix entries ([slrg.suffix_harvested])
    and bound promotions ([slrg.bound_promoted]).  [metrics] additionally
    records into the always-on registry: a ["slrg.query_ms"] per-query
    latency histogram plus ["slrg.queries"] / ["slrg.cache_hits"]
    counters (handles are resolved once here, on the creating domain, so
    recording stays off the registry's locks). *)
val create :
  ?telemetry:Sekitei_telemetry.Telemetry.t ->
  ?metrics:Sekitei_telemetry.Registry.t ->
  ?query_budget:int ->
  Problem.t ->
  Plrg.t ->
  t

(** The oracle's {!Propset.ctx} (regression tables + set interner).  The
    RG search shares it so both phases agree on handle ids, regression
    memoization, and the {!supports} candidate cache. *)
val ctx : t -> Propset.ctx

(** The oracle's relevant-supports table (see {!Supports}); shared with
    the RG search alongside {!ctx}. *)
val supports : t -> Supports.t

(** Admissible lower bound on the serial cost of achieving all the given
    propositions from the initial state; [infinity] when impossible. *)
val query : t -> int list -> float

(** [query] over an {b already-canonical} set (see {!Propset}); the set
    is interned in the oracle's ctx and delegated to {!query_h}. *)
val query_set : t -> int array -> float

(** [query_set] over an interned handle of this oracle's {!ctx} — the RG
    passes its nodes' handles straight through; results are memoized by
    the handle's dense id (one int-keyed probe per repeat query). *)
val query_h : t -> Propset.handle -> float

(** The cheap PLRG h_max bound of an interned set (the first-stage
    heuristic of deferred evaluation), memoized per dense id — the
    per-proposition sweep runs once per distinct set across the oracle's
    own A* expansions and the RG's deferred pushes. *)
val h_max_h : t -> Propset.handle -> float

(** Total number of set nodes generated across all queries so far
    (Table 2, column SLRG). *)
val nodes_generated : t -> int

(** Cumulative wall time (ms) spent inside non-memoized queries — the
    SLRG share of the RG search phase in the planner's report.  Tracked
    whether or not telemetry is enabled. *)
val query_ms : t -> float

(** Cumulative [Gc.minor_words] allocated inside non-memoized queries
    (the SLRG share of the search phase's allocation, reported next to
    {!query_ms}). *)
val gc_minor_words : t -> float

(** Major collections triggered inside non-memoized queries. *)
val gc_major_collections : t -> int

(** Queries answered from the solved or capped-bound caches without
    running an A*. *)
val cache_hits : t -> int

(** Exact cache entries recorded by suffix-cost harvesting beyond the
    queried roots themselves. *)
val suffix_harvested : t -> int

(** Budget-exhausted bounds later replaced by exact solved entries
    (escalated re-query or harvest). *)
val bound_promoted : t -> int

(** Iterate over every exact solved cache entry (canonical set, cost).
    Exposed for cache-consistency tests and diagnostics; the iteration
    order is unspecified. *)
val iter_solved : t -> (int array -> float -> unit) -> unit

(** [begin_request t ~deadline] resets the per-request state before a
    (possibly warm) plan request: every exhausted-query bound is dropped,
    the escalation pool is refilled, and [deadline] becomes the token
    polled (every 64 expansions) by subsequent queries.  Exact solved
    entries and memoized h_max values are kept — they are
    path-independent facts about the problem — while bounds depend on
    budgets and query order and would make warm results diverge from a
    cold run.  A query interrupted by the deadline behaves exactly like a
    budget-exhausted one: it returns (and caches) an admissible lower
    bound. *)
val begin_request : t -> deadline:Sekitei_util.Deadline.t -> unit

(** [refresh t pb plrg ~dirty] rebinds a live oracle to a recompiled
    problem after a topology delta: the supports table is rebuilt against
    the new PLRG, the shared {!Propset.ctx} regression tables are
    refreshed ({!Propset.refresh_ctx}), and every solved / h_max cache
    entry whose set contains a proposition with [dirty p = true] is
    evicted (see {!Supports.taint} for why clean entries stay exact).
    Returns the number of entries evicted.  The caller must have checked
    that [pb.init] is unchanged — otherwise the interner is invalid and
    the oracle must be rebuilt with {!create}. *)
val refresh : t -> Problem.t -> Plrg.t -> dirty:(int -> bool) -> int
