(** Phase 2: the set logical regression graph (paper section 3.2.2).

    Estimates the minimum logical cost of achieving a {e set} of
    propositions together, by A* regression over proposition sets using the
    PLRG cost as heuristic.  Unlike the PLRG's max-aggregation, the SLRG
    accounts for the fact that actions in a serial plan pay their costs in
    sequence (the paper's example: the cost of [{placed(Cl,n1)}] rises from
    18 to 19 because two link crossings can no longer be counted in
    parallel).

    The oracle is lazy and memoized: the RG phase queries it once per
    search node; query results and the closed sets they solve are cached
    across queries.  Every query is budgeted — on budget exhaustion the
    best open f-value (still an admissible lower bound, at least as strong
    as the PLRG estimate) is returned and not memoized as exact. *)

type t

(** [telemetry] attaches a ["slrg.query"] sub-span to every non-memoized
    query (set size, A* expansions, resulting cost) and counts cache hits
    ([slrg.cache_hit]). *)
val create :
  ?telemetry:Sekitei_telemetry.Telemetry.t ->
  ?query_budget:int ->
  Problem.t ->
  Plrg.t ->
  t

(** Admissible lower bound on the serial cost of achieving all the given
    propositions from the initial state; [infinity] when impossible. *)
val query : t -> int list -> float

(** [query] over an {b already-canonical} set (see {!Propset}) — the RG
    passes its nodes' sets straight through, skipping the list conversion
    and re-canonicalization; results are memoized under that key. *)
val query_set : t -> int array -> float

(** Total number of set nodes generated across all queries so far
    (Table 2, column SLRG). *)
val nodes_generated : t -> int

(** Cumulative wall time (ms) spent inside non-memoized queries — the
    SLRG share of the RG search phase in the planner's report.  Tracked
    whether or not telemetry is enabled. *)
val query_ms : t -> float
