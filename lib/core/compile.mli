(** Compilation of a CPP specification into leveled planning actions
    (paper sections 2.2 and 3.1).

    Grounding produces one action schema per (placeable component, node)
    and per (interface, link, direction).  Leveling replicates each schema
    over consistent level assignments and prunes:

    - combinations whose conditions are unsatisfiable on the level
      intervals;
    - combinations whose best-case resource consumption already exceeds
      static capacity (this reproduces the paper's "actions for crossing
      the link with the M stream with levels above 1 are pruned");
    - dominated crossings of degradable streams whose output level is
      below their input level (the same effect is available more cheaply
      by entering at the lower level).

    [Available] goals are rewritten into synthetic zero-cost sink
    components so the planner only ever pursues [Placed] goals. *)

exception Compile_error of string

(** [compile topo app leveling] builds the planning problem.

    [adjust ~comp ~node] (default 0) returns an additive cost adjustment
    applied to every placement of [comp] on [node] - the hook behind
    {!Redeploy}'s keep-discounts and migration surcharges.  A total action
    cost is never adjusted below zero.

    [telemetry] wraps the leveled-grounding stage in a ["leveling"]
    sub-span (attribute: leveled action count).

    @raise Compile_error on inconsistent specifications (pre-placed
    components with requirements, violated initial conditions, negative
    cost bounds). *)
val compile :
  ?adjust:(comp:string -> node:int -> float) ->
  ?telemetry:Sekitei_telemetry.Telemetry.t ->
  Sekitei_network.Topology.t ->
  Sekitei_spec.Model.app ->
  Sekitei_spec.Leveling.t ->
  Problem.t
