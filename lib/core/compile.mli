(** Compilation of a CPP specification into leveled planning actions
    (paper sections 2.2 and 3.1).

    Grounding produces one action schema per (placeable component, node)
    and per (interface, link, direction).  Leveling replicates each schema
    over consistent level assignments and prunes:

    - combinations whose conditions are unsatisfiable on the level
      intervals;
    - combinations whose best-case resource consumption already exceeds
      static capacity (this reproduces the paper's "actions for crossing
      the link with the M stream with levels above 1 are pruned");
    - dominated crossings of degradable streams whose output level is
      below their input level (the same effect is available more cheaply
      by entering at the lower level).

    [Available] goals are rewritten into synthetic zero-cost sink
    components so the planner only ever pursues [Placed] goals. *)

exception Compile_error of string

(** [compile topo app leveling] builds the planning problem.

    [adjust ~comp ~node] (default 0) returns an additive cost adjustment
    applied to every placement of [comp] on [node] - the hook behind
    {!Redeploy}'s keep-discounts and migration surcharges.  A total action
    cost is never adjusted below zero.

    [telemetry] wraps the leveled-grounding stage in a ["leveling"]
    sub-span (attribute: leveled action count).

    [deadline] is polled once per grounding group; on expiry compilation
    raises [Sekitei_util.Deadline.Expired "compile"].

    [prune] (default true) removes provably dead leveled actions after
    grounding: actions assuming an input level whose infimum exceeds the
    interface's achievable maximum ([iface_max], the same admissible
    bound Regression replay seeds unknown streams with), plus any action
    whose preconditions only such actions could have produced (relaxed
    forward reachability).  The removed count is surfaced as
    [Problem.pruned_actions]; survivors keep their relative order and
    are renumbered, so plans are unaffected.  Pass [~prune:false] to
    keep the raw grounding (used by tests comparing the two).

    @raise Compile_error on inconsistent specifications (pre-placed
    components with requirements, violated initial conditions, negative
    cost bounds). *)
val compile :
  ?adjust:(comp:string -> node:int -> float) ->
  ?telemetry:Sekitei_telemetry.Telemetry.t ->
  ?deadline:Sekitei_util.Deadline.t ->
  ?prune:bool ->
  Sekitei_network.Topology.t ->
  Sekitei_spec.Model.app ->
  Sekitei_spec.Leveling.t ->
  Problem.t

(** [recompile ~old ~node_touched ~link_touched topo app leveling]
    recompiles after a topology delta, reusing the grounding work of
    [old] (a problem compiled from the {e same} [app], [leveling] and
    [adjust] against the pre-delta topology).  Grounding groups — per
    (component, node) and per (interface, link, direction) — whose site
    the delta did not touch are copied from [old] with freshly assigned
    act_ids; touched groups are re-grounded against the new capacities.
    Link ids are stable across every {!Sekitei_network.Mutate}
    operation, so crossing groups are matched between [old] and the new
    topology by their link id directly; removed (tombstoned) links
    simply have no group on the new side.  [node_touched] /
    [link_touched] receive node indices and stable link ids.  The node
    set must be unchanged (deltas may zero a node's resources but never
    remove the node), which keeps the proposition id space stable.

    Returns the new problem — structurally identical to a cold
    {!compile} of the mutated topology — and the number of [old] actions
    that could not be reused (recompiled or dropped), surfaced as the
    session's [invalidated_actions] counter. *)
val recompile :
  ?adjust:(comp:string -> node:int -> float) ->
  ?telemetry:Sekitei_telemetry.Telemetry.t ->
  ?deadline:Sekitei_util.Deadline.t ->
  old:Problem.t ->
  node_touched:(int -> bool) ->
  link_touched:(int -> bool) ->
  Sekitei_network.Topology.t ->
  Sekitei_spec.Model.app ->
  Sekitei_spec.Leveling.t ->
  Problem.t * int
