(** Long-lived planning sessions: cross-request reuse of compiled state,
    delta invalidation, and deadline-bounded search.

    A session holds everything a plan request needs that survives the
    request — the leveled problem, the PLRG, and the SLRG cost oracle
    with its hash-consed proposition-set interner — and serves many
    {!plan} calls against it.  The first call compiles (its report
    carries cold compile/plrg timings, exactly like a one-shot run);
    subsequent calls for the same (topology, app, leveling) skip
    compilation entirely and start with a hot oracle.  {!update} applies
    a {!delta} with dependency-tracked invalidation: only grounding
    groups at the touched nodes/links are recompiled
    ({!Compile.recompile}) and only oracle entries whose proposition sets
    cross the delta's taint cone are evicted ({!Supports.taint},
    {!Slrg.refresh}); the work done is surfaced as the
    [invalidated_actions] / [evicted_entries] counters of the next
    report.

    {b Warm == cold.}  A warm re-plan agrees with a cold [Planner.plan]
    of the session's current topology on everything that matters: the
    result constructor, the optimal cost bound, and (on budget cutoffs)
    the admissible best-f evidence.  Exact oracle entries are
    path-independent, and the per-request reset ({!Slrg.begin_request})
    drops everything that is not — budget-exhausted bounds and the
    escalation pool — so carried cache state cannot steer the search.
    Two kinds of noise are tolerated, with provisos shared with
    {!Rg.search}'s [defer] contract: a cold run whose root queries
    exhaust their budget records order-dependent bounds a warm run may
    not reproduce, and exact costs of sets with several equally-optimal
    support paths are cached from whichever query harvested them first,
    so warm and cold h-values can differ in the last ulp and swap f-tied
    frontier nodes (possibly returning a different equally-cheap
    optimum).  Timing fields and cumulative oracle statistics naturally
    differ.

    {b Deadlines.}  [config.deadline_ms] arms a monotonic
    ({!Sekitei_util.Timer}) cancellation token for each request, polled
    per grounding group in compilation, per relaxation in the PLRG, and
    per expansion in the SLRG/RG searches.  An expired request returns
    [Error (Deadline_exceeded _)] carrying the phase that gave up and —
    when the RG frontier was reached — the same admissible best-[f]
    lower bound a [Search_limit] failure reports.

    This module is the engine; {!Planner} re-exports its types and wraps
    one-shot [plan] / [plan_batch] over throwaway sessions. *)

type config = {
  slrg_query_budget : int;  (** set-node budget per SLRG query *)
  rg_max_expansions : int;
  validate_spec : bool;  (** run {!Sekitei_spec.Validate} first *)
  explain : bool;
      (** derive a {!Explain.t} for solved runs and a
          {!Explain.certificate} for failed ones (default [false];
          costs one extra from-init replay of the final plan) *)
  profile_h : bool;
      (** record heuristic-quality samples ({!Rg.hsample}) along the
          solution path (default [false]; adds a PLRG sweep per queued
          RG node, so leave off when benchmarking) *)
  defer_h : bool;
      (** lazy two-stage heuristic evaluation in the RG search (default
          [true]); see {!Rg.search} *)
  deadline_ms : float option;
      (** per-request wall-clock budget (monotonic); [None] (default)
          never expires *)
  certify : bool;
      (** re-validate every emitted plan through the installed
          {!Certifier} hook (default [false]; a no-op until an
          implementation is installed — see
          [Sekitei_analysis.Certify.install]).  A rejected plan turns
          the request into [Error (Certification_failed _)] — the
          fail-loud mode for debug and test builds. *)
}

val default_config : config

type failure_reason =
  | Invalid_spec of string
  | Unreachable_goal of string list
      (** the PLRG proves the goals logically unreachable; carries the
          labels of the goal propositions with infinite PLRG cost *)
  | Resource_exhausted
      (** goals logically reachable, but every candidate tail violates
          resources — the scenario-A failure mode *)
  | Search_limit of { expansions : int; best_f : float }
      (** RG expansion budget exceeded; [best_f] is an admissible lower
          bound on the cost of any plan a longer search could find *)
  | Deadline_exceeded of {
      phase : string;  (** ["compile"], ["plrg"], or ["rg"] *)
      expansions : int;  (** RG expansions completed (0 outside the RG) *)
      best_f : float option;
          (** admissible lower bound when the RG frontier was reached *)
    }
  | Certification_failed of string
      (** [config.certify] was set and the independent certifier
          rejected the emitted plan — always a planner bug; carries the
          rendered diagnostic *)

type stats = {
  total_actions : int;  (** Table 2 col 5: leveled actions after pruning *)
  plrg_props : int;  (** Table 2 col 6 (left) *)
  plrg_actions : int;  (** Table 2 col 6 (right) *)
  slrg_nodes : int;  (** Table 2 col 7 — this request's share *)
  rg_created : int;  (** Table 2 col 8 (left) *)
  rg_open_left : int;  (** Table 2 col 8 (right) *)
  rg_expanded : int;
  replay_pruned : int;
  final_replay_rejected : int;
  rg_duplicates : int;
  order_repaired : int;
  slrg_cache_hits : int;
      (** SLRG queries answered from cache {e during this request} (warm
          sessions report per-request deltas; for a one-shot run these
          equal the oracle totals) *)
  slrg_suffix_harvested : int;
  slrg_bound_promoted : int;
  slrg_deferred : int;
  slrg_saved : int;
  invalidated_actions : int;
      (** actions the {!update}s since the previous plan call could not
          reuse (recompiled or dropped); 0 on cold runs *)
  evicted_entries : int;
      (** oracle cache entries (solved + h_max) evicted by those
          updates; 0 on cold runs *)
  t_total_ms : float;  (** Table 2 col 9 (left) *)
  t_search_ms : float;  (** Table 2 col 9 (right): graph phases only *)
}

(** Everything a planning run needs.  Build with {!request}; override
    fields with record update syntax ([{ req with config = ... }]). *)
type request = {
  topo : Sekitei_network.Topology.t;
  app : Sekitei_spec.Model.app;
  leveling : Sekitei_spec.Leveling.t;
  config : config;
  telemetry : Sekitei_telemetry.Telemetry.t;
}

(** Smart constructor: [config] defaults to {!default_config}, [telemetry]
    to {!Sekitei_telemetry.Telemetry.null} (zero-overhead), [leveling] to
    the empty (greedy) leveling. *)
val request :
  ?config:config ->
  ?telemetry:Sekitei_telemetry.Telemetry.t ->
  ?leveling:Sekitei_spec.Leveling.t ->
  Sekitei_network.Topology.t ->
  Sekitei_spec.Model.app ->
  request

(** One phase of the pipeline: wall time, a characteristic size, and the
    phase's GC footprint.  On a warm request the compile and plrg phases
    report [ms = 0.] (the work was done by an earlier request or update)
    while keeping their item counts. *)
type phase = {
  ms : float;
  items : int;
  minor_words : float;
  major_collections : int;
}

(** Cross-query reuse counters of the SLRG cost oracle (printed by
    {!pp_phases} as [slrg_cache=hits/harvested/promoted]). *)
type slrg_cache = {
  hits : int;  (** queries answered without running an A* *)
  harvested : int;  (** suffix entries recorded beyond queried roots *)
  promoted : int;  (** exhausted bounds replaced by exact entries *)
}

(** Session-reuse counters (printed by {!pp_phases} as
    [reuse=invalidated/evicted]); both 0 for one-shot runs and for warm
    requests with no intervening {!update}. *)
type reuse_counters = { invalidated : int; evicted : int }

type phases = {
  compile : phase;  (** items = leveled actions after pruning *)
  plrg : phase;  (** items = relevant propositions *)
  slrg : phase;
      (** items = set nodes generated this request; [ms] = oracle
          construction (first request only) plus the footprint of its
          lazy queries, which run {e inside} the RG search *)
  slrg_cache : slrg_cache;
  rg : phase;  (** items = RG nodes created *)
  reuse : reuse_counters;
}

type report = {
  result : (Plan.t, failure_reason) Stdlib.result;
  phases : phases;
  stats : stats;
  explanation : Explain.t option;
  certificate : Explain.certificate option;
  hquality : Rg.hsample list option;
}

(** A topology perturbation, mirroring {!Sekitei_network.Mutate}.  Node
    and link ids are {e stable}: [Remove_link] and [Fail_node] tombstone
    the affected link ids and never renumber survivors, so an id held
    from before any update keeps denoting the same physical link.  A
    delta naming a tombstoned link raises
    {!Sekitei_network.Topology.Stale_link}; one naming a never-issued id
    raises [Invalid_argument] (see {!update}). *)
type delta =
  | Set_node_resource of { node : int; resource : string; value : float }
  | Set_link_resource of { link : int; resource : string; value : float }
  | Remove_link of { link : int }
  | Fail_node of { node : int }

type t

(** [create req] opens a session on the request's (topology, app,
    leveling, config, telemetry).  Nothing is compiled until the first
    {!plan} call.  [adjust] (per-placement cost adjustments, see
    {!Compile.compile}) is fixed for the session's lifetime —
    incremental recompilation reuses grounded actions, which bake the
    adjustment into their cost bounds.

    [metrics] is the always-on registry the session records lifetime
    metrics into; by default each session owns a private one.  Pass a
    shared registry to aggregate several sessions (the batch planner
    does — its per-domain shards keep workers contention-free). *)
val create :
  ?adjust:(comp:string -> node:int -> float) ->
  ?metrics:Sekitei_telemetry.Registry.t ->
  request ->
  t

(** The session's current topology (reflecting every {!update} so far). *)
val topology : t -> Sekitei_network.Topology.t

(** Whether compiled state is resident, i.e. the next {!plan} skips the
    compile and plrg phases.  False before the first plan and after an
    {!update} had to flush. *)
val is_warm : t -> bool

(** The session's always-on metric registry.  Every {!plan} records
    lifetime counters (["session.plans"], [_ok]/[_failed], warm/cold
    splits, invalidation work), per-phase latency histograms
    (["phase.compile_ms"] ... ["phase.rg_ms"], ["plan.total_ms"],
    ["plan.search_ms"]), and the ["plan.last_cost"] gauge; the SLRG
    oracle and RG search add ["slrg.*"] / ["rg.*"] query and volume
    metrics; {!update} counts ["session.updates"].  Render a snapshot
    with {!Sekitei_telemetry.Export}. *)
val metrics : t -> Sekitei_telemetry.Registry.t

(** [Registry.snapshot (metrics t)]. *)
val metrics_snapshot : t -> Sekitei_telemetry.Registry.snapshot

(** Serve one plan request from the session state, compiling it first if
    this is the first call (or the state was flushed).  Emits the same
    telemetry span tree as the one-shot planner; on failure the ["plan"]
    span's end event additionally carries a ["failure"] string attribute
    with the {!pp_failure}-rendered reason.

    When the request's telemetry handle arms a
    {!Sekitei_telemetry.Telemetry.Flight} recorder with a dump path, a
    [Search_limit] or [Deadline_exceeded] failure — or an exception
    escaping a phase — dumps the ring to that path before returning
    (counter totals are flushed into the ring first, so the dump ends
    with the failure evidence). *)
val plan : t -> report

(** [update t delta] mutates the session's topology and incrementally
    revalidates the compiled state: untouched grounding groups are
    copied, touched ones recompiled, the PLRG is rebuilt, and oracle
    entries inside the delta's taint cone are evicted.  The invalidation
    work is accumulated into the next {!plan} report's
    [invalidated_actions] / [evicted_entries] counters.  Falls back to a
    full flush (next plan compiles cold) when the delta changes the
    initial proposition section — set canonicalization itself shifts —
    or when the mutated spec no longer compiles.  Returns [t] (the
    session is updated in place).

    A delta with a bad site id is rejected {e before} anything mutates:
    {!Sekitei_network.Topology.Stale_link} for a link id tombstoned by
    an earlier update, [Invalid_argument] for node/link ids that never
    existed.  The session's topology and compiled state are untouched in
    either case. *)
val update : t -> delta -> t

val pp_failure : Format.formatter -> failure_reason -> unit
val pp_stats : Format.formatter -> stats -> unit
val pp_phases : Format.formatter -> phases -> unit
