let src = Logs.Src.create "sekitei.planner" ~doc:"Sekitei planner phases"

module Log = (val Logs.src_log src : Logs.LOG)
module Timer = Sekitei_util.Timer
module Telemetry = Sekitei_telemetry.Telemetry
module Topology = Sekitei_network.Topology
module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Validate = Sekitei_spec.Validate
module Replay = Replay

type config = {
  slrg_query_budget : int;
  rg_max_expansions : int;
  validate_spec : bool;
  explain : bool;
  profile_h : bool;
  defer_h : bool;
}

let default_config =
  {
    slrg_query_budget = 500;
    rg_max_expansions = 500_000;
    validate_spec = true;
    explain = false;
    profile_h = false;
    defer_h = true;
  }

type failure_reason =
  | Invalid_spec of string
  | Unreachable_goal of string list
  | Resource_exhausted
  | Search_limit of { expansions : int; best_f : float }

type stats = {
  total_actions : int;
  plrg_props : int;
  plrg_actions : int;
  slrg_nodes : int;
  rg_created : int;
  rg_open_left : int;
  rg_expanded : int;
  replay_pruned : int;
  final_replay_rejected : int;
  rg_duplicates : int;
  order_repaired : int;
  slrg_cache_hits : int;
  slrg_suffix_harvested : int;
  slrg_bound_promoted : int;
  slrg_deferred : int;
  slrg_saved : int;
  t_total_ms : float;
  t_search_ms : float;
}

type outcome = { result : (Plan.t, failure_reason) Stdlib.result; stats : stats }

type request = {
  topo : Topology.t;
  app : Model.app;
  leveling : Leveling.t;
  config : config;
  telemetry : Telemetry.t;
}

let request ?(config = default_config) ?(telemetry = Telemetry.null)
    ?(leveling = Leveling.empty) topo app =
  { topo; app; leveling; config; telemetry }

type phase = {
  ms : float;
  items : int;
  minor_words : float;
  major_collections : int;
}

type slrg_cache = { hits : int; harvested : int; promoted : int }

type phases = {
  compile : phase;  (** items = leveled actions after pruning *)
  plrg : phase;  (** items = relevant propositions *)
  slrg : phase;  (** items = set nodes generated *)
  slrg_cache : slrg_cache;  (** cross-query reuse counters *)
  rg : phase;  (** items = RG nodes created *)
}

type report = {
  result : (Plan.t, failure_reason) Stdlib.result;
  phases : phases;
  stats : stats;
  explanation : Explain.t option;
  certificate : Explain.certificate option;
  hquality : Rg.hsample list option;
}

let empty_stats =
  {
    total_actions = 0;
    plrg_props = 0;
    plrg_actions = 0;
    slrg_nodes = 0;
    rg_created = 0;
    rg_open_left = 0;
    rg_expanded = 0;
    replay_pruned = 0;
    final_replay_rejected = 0;
    rg_duplicates = 0;
    order_repaired = 0;
    slrg_cache_hits = 0;
    slrg_suffix_harvested = 0;
    slrg_bound_promoted = 0;
    slrg_deferred = 0;
    slrg_saved = 0;
    t_total_ms = 0.;
    t_search_ms = 0.;
  }

let no_phase = { ms = 0.; items = 0; minor_words = 0.; major_collections = 0 }
let no_cache = { hits = 0; harvested = 0; promoted = 0 }

let empty_phases =
  {
    compile = no_phase;
    plrg = no_phase;
    slrg = no_phase;
    slrg_cache = no_cache;
    rg = no_phase;
  }

let plan ?adjust (req : request) =
  let { topo; app; leveling; config; telemetry } = req in
  let t_total = Timer.start () in
  let sp_plan = Telemetry.begin_span telemetry "plan" in
  let finish ?(phases = empty_phases) ?explanation ?certificate ?hquality
      result stats =
    Telemetry.flush_counters telemetry;
    ignore
      (Telemetry.end_span telemetry sp_plan
         ~attrs:[ ("ok", Telemetry.Bool (Result.is_ok result)) ]);
    { result; phases; stats; explanation; certificate; hquality }
  in
  let invalid msg = finish (Error (Invalid_spec msg)) empty_stats in
  match
    if config.validate_spec then
      match Validate.check topo app with
      | [] -> Ok ()
      | issues ->
          Error
            (String.concat "; "
               (List.map (fun i -> Format.asprintf "%a" Validate.pp_issue i) issues))
    else Ok ()
  with
  | Error msg -> invalid msg
  | Ok () -> (
      (* Each phase is bracketed by GC snapshots next to its timing span:
         minor-words allocated and major collections triggered are reported
         per phase (allocation pressure is the first thing to check when a
         phase's wall time regresses).  [Gc.minor_words] reads the live
         allocation pointer — [quick_stat]'s [minor_words] field is only
         refreshed at collection boundaries in native code, so a phase that
         triggers no minor GC would report zero allocation. *)
      let gc_snap () =
        (Gc.minor_words (), (Gc.quick_stat ()).Gc.major_collections)
      in
      let gc_delta (aw, ac) (bw, bc) = (bw -. aw, bc - ac) in
      let sp_compile = Telemetry.begin_span telemetry "compile" in
      let gc_compile0 = gc_snap () in
      match Compile.compile ?adjust ~telemetry topo app leveling with
      | exception Compile.Compile_error msg ->
          ignore (Telemetry.end_span telemetry sp_compile);
          invalid msg
      | pb ->
          let compile_gc = gc_delta gc_compile0 (gc_snap ()) in
          let total_actions = Array.length pb.Problem.actions in
          let compile_ms =
            Telemetry.end_span telemetry sp_compile
              ~attrs:
                [
                  ("actions", Telemetry.Int total_actions);
                  ("props", Telemetry.Int (Prop.count pb.Problem.props));
                ]
          in
          Log.info (fun m ->
              m "compiled: %d leveled actions, %d propositions" total_actions
                (Prop.count pb.Problem.props));
          let t_search = Timer.start () in
          let sp_plrg = Telemetry.begin_span telemetry "plrg" in
          let gc_plrg0 = gc_snap () in
          let plrg = Plrg.build ~telemetry pb in
          let plrg_gc = gc_delta gc_plrg0 (gc_snap ()) in
          let plrg_props, plrg_actions = Plrg.stats plrg in
          let plrg_ms =
            Telemetry.end_span telemetry sp_plrg
              ~attrs:
                [
                  ("relevant_props", Telemetry.Int plrg_props);
                  ("relevant_actions", Telemetry.Int plrg_actions);
                  ("reachable", Telemetry.Bool (Plrg.goals_reachable plrg));
                ]
          in
          Log.info (fun m ->
              m "PLRG: %d relevant propositions, %d relevant actions, goals %s"
                plrg_props plrg_actions
                (if Plrg.goals_reachable plrg then "reachable" else "UNREACHABLE"));
          let base_stats search_ms slrg rg_stats =
            {
              total_actions;
              plrg_props;
              plrg_actions;
              slrg_nodes =
                (match slrg with Some s -> Slrg.nodes_generated s | None -> 0);
              rg_created =
                (match rg_stats with Some (s : Rg.stats) -> s.Rg.created | None -> 0);
              rg_open_left =
                (match rg_stats with Some s -> s.Rg.open_left | None -> 0);
              rg_expanded =
                (match rg_stats with Some s -> s.Rg.expanded | None -> 0);
              replay_pruned =
                (match rg_stats with Some s -> s.Rg.replay_pruned | None -> 0);
              final_replay_rejected =
                (match rg_stats with
                | Some s -> s.Rg.final_replay_rejected
                | None -> 0);
              rg_duplicates =
                (match rg_stats with Some s -> s.Rg.duplicates | None -> 0);
              order_repaired =
                (match rg_stats with Some s -> s.Rg.order_repaired | None -> 0);
              slrg_cache_hits =
                (match slrg with Some s -> Slrg.cache_hits s | None -> 0);
              slrg_suffix_harvested =
                (match slrg with Some s -> Slrg.suffix_harvested s | None -> 0);
              slrg_bound_promoted =
                (match slrg with Some s -> Slrg.bound_promoted s | None -> 0);
              slrg_deferred =
                (match rg_stats with Some s -> s.Rg.slrg_deferred | None -> 0);
              slrg_saved =
                (match rg_stats with Some s -> s.Rg.slrg_saved | None -> 0);
              t_total_ms = Timer.elapsed_ms t_total;
              t_search_ms = search_ms;
            }
          in
          let mk_phase ms items (minor_words, major_collections) =
            { ms; items; minor_words; major_collections }
          in
          let base_phases ?(slrg_ms = 0.) ?(slrg_items = 0)
              ?(slrg_gc = (0., 0)) ?(slrg_cache = no_cache) ?(rg_ms = 0.)
              ?(rg_items = 0) ?(rg_gc = (0., 0)) () =
            {
              compile = mk_phase compile_ms total_actions compile_gc;
              plrg = mk_phase plrg_ms plrg_props plrg_gc;
              slrg = mk_phase slrg_ms slrg_items slrg_gc;
              slrg_cache;
              rg = mk_phase rg_ms rg_items rg_gc;
            }
          in
          if not (Plrg.goals_reachable plrg) then begin
            let unreachable =
              Plrg.unreachable_goals plrg
              |> List.map (Problem.prop_label pb)
            in
            let certificate =
              if config.explain then Explain.unreachable_certificate pb plrg
              else None
            in
            finish
              ~phases:(base_phases ())
              ?certificate
              (Error (Unreachable_goal unreachable))
              (base_stats (Timer.elapsed_ms t_search) None None)
          end
          else begin
            let sp_slrg = Telemetry.begin_span telemetry "slrg" in
            let gc_slrg0 = gc_snap () in
            let slrg =
              Slrg.create ~telemetry ~query_budget:config.slrg_query_budget pb
                plrg
            in
            let slrg_create_gc = gc_delta gc_slrg0 (gc_snap ()) in
            let slrg_create_ms = Telemetry.end_span telemetry sp_slrg in
            let sp_rg = Telemetry.begin_span telemetry "rg" in
            let gc_rg0 = gc_snap () in
            let profile = if config.profile_h then Some (ref []) else None in
            let result, rg_stats =
              Rg.search ~max_expansions:config.rg_max_expansions
                ~defer:config.defer_h ?profile ~telemetry pb plrg slrg
            in
            let rg_gc = gc_delta gc_rg0 (gc_snap ()) in
            let rg_ms =
              Telemetry.end_span telemetry sp_rg
                ~attrs:
                  [
                    ("created", Telemetry.Int rg_stats.Rg.created);
                    ("expanded", Telemetry.Int rg_stats.Rg.expanded);
                  ]
            in
            Log.info (fun m ->
                m
                  "RG: %d nodes created, %d expanded, %d pruned by replay, %d \
                   duplicates, %d final rejections"
                  rg_stats.Rg.created rg_stats.Rg.expanded
                  rg_stats.Rg.replay_pruned rg_stats.Rg.duplicates
                  rg_stats.Rg.final_replay_rejected);
            let stats =
              base_stats (Timer.elapsed_ms t_search) (Some slrg) (Some rg_stats)
            in
            (* SLRG queries run lazily inside the RG search; their cumulative
               wall time and GC footprint are attributed to the slrg phase
               and are therefore a subset of the rg phase's own bracket. *)
            let phases =
              base_phases
                ~slrg_ms:(slrg_create_ms +. Slrg.query_ms slrg)
                ~slrg_items:(Slrg.nodes_generated slrg)
                ~slrg_gc:
                  ( fst slrg_create_gc +. Slrg.gc_minor_words slrg,
                    snd slrg_create_gc + Slrg.gc_major_collections slrg )
                ~slrg_cache:
                  {
                    hits = Slrg.cache_hits slrg;
                    harvested = Slrg.suffix_harvested slrg;
                    promoted = Slrg.bound_promoted slrg;
                  }
                ~rg_ms ~rg_items:rg_stats.Rg.created ~rg_gc ()
            in
            let hquality =
              match profile with
              | None -> None
              | Some samples ->
                  let n = List.length !samples in
                  if Telemetry.enabled telemetry then begin
                    Telemetry.count telemetry "hq.path_nodes" n;
                    Telemetry.count telemetry "hq.wasted_expansions"
                      (Stdlib.max 0 (rg_stats.Rg.expanded - n))
                  end;
                  Some !samples
            in
            match result with
            | Rg.Solution (tail, metrics, cost_lb) ->
                Log.info (fun m ->
                    m "solution: %d actions, cost bound %g, realized %g"
                      (List.length tail) cost_lb metrics.Replay.realized_cost);
                let plan = { Plan.steps = tail; cost_lb; metrics } in
                let explanation =
                  if config.explain then
                    match Explain.explain pb plan with
                    | Ok e -> Some e
                    | Error _ -> None
                  else None
                in
                finish ~phases ?explanation ?hquality (Ok plan) stats
            | Rg.Exhausted ->
                finish ~phases ?hquality (Error Resource_exhausted) stats
            | Rg.Budget_exceeded { expansions; best_f; frontier } ->
                let certificate =
                  match frontier with
                  | Some fr when config.explain ->
                      Some (Explain.frontier_certificate pb ~best_f fr)
                  | _ -> None
                in
                finish ~phases ?certificate ?hquality
                  (Error (Search_limit { expansions; best_f }))
                  stats
          end)

let plan_batch ?adjust ?jobs (reqs : request list) =
  let jobs =
    match jobs with
    | Some j when j >= 1 -> j
    | _ -> Sekitei_util.Domain_pool.default_jobs ()
  in
  (* Shared-nothing: each request compiles its own problem and builds its
     own oracle, so workers touch no common mutable state — except the
     telemetry handles the caller put in the requests, which are the
     caller's contract (per-request handles, or sinks wrapped in
     [Telemetry.locked]). *)
  Sekitei_util.Domain_pool.map ~jobs (fun req -> plan ?adjust req) reqs

let solve ?config ?adjust topo app leveling =
  let report = plan ?adjust (request ?config topo app ~leveling) in
  ({ result = report.result; stats = report.stats } : outcome)

let solve_greedy ?config topo app =
  let report = plan (request ?config topo app) in
  ({ result = report.result; stats = report.stats } : outcome)

let pp_failure_reason fmt = function
  | Invalid_spec msg -> Format.fprintf fmt "invalid specification: %s" msg
  | Unreachable_goal [] -> Format.pp_print_string fmt "goal logically unreachable"
  | Unreachable_goal props ->
      Format.fprintf fmt "goal logically unreachable (%s)"
        (String.concat ", " props)
  | Resource_exhausted ->
      Format.pp_print_string fmt "no resource-feasible plan found"
  | Search_limit { expansions; best_f } ->
      Format.fprintf fmt
        "search budget exceeded after %d expansions (best open bound %g)"
        expansions best_f

let pp_stats fmt s =
  Format.fprintf fmt
    "actions=%d plrg=%d/%d slrg=%d rg=%d/%d expanded=%d pruned=%d dups=%d \
     rejected=%d repaired=%d deferred=%d/%d time=%.1f/%.1fms"
    s.total_actions s.plrg_props s.plrg_actions s.slrg_nodes s.rg_created
    s.rg_open_left s.rg_expanded s.replay_pruned s.rg_duplicates
    s.final_replay_rejected s.order_repaired s.slrg_deferred s.slrg_saved
    s.t_total_ms s.t_search_ms

let pp_phases fmt p =
  (* gc_minor_kw / gc_major list the four phases in pipeline order:
     compile, plrg, slrg, rg. *)
  Format.fprintf fmt
    "compile=%.1fms/%d plrg=%.1fms/%d slrg=%.1fms/%d slrg_cache=%d/%d/%d \
     rg=%.1fms/%d gc_minor_kw=%.0f/%.0f/%.0f/%.0f gc_major=%d/%d/%d/%d"
    p.compile.ms p.compile.items p.plrg.ms p.plrg.items p.slrg.ms p.slrg.items
    p.slrg_cache.hits p.slrg_cache.harvested p.slrg_cache.promoted p.rg.ms
    p.rg.items
    (p.compile.minor_words /. 1000.)
    (p.plrg.minor_words /. 1000.)
    (p.slrg.minor_words /. 1000.)
    (p.rg.minor_words /. 1000.)
    p.compile.major_collections p.plrg.major_collections
    p.slrg.major_collections p.rg.major_collections
