let src = Logs.Src.create "sekitei.planner" ~doc:"Sekitei planner phases"

module Log = (val Logs.src_log src : Logs.LOG)
module Timer = Sekitei_util.Timer
module Topology = Sekitei_network.Topology
module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Validate = Sekitei_spec.Validate
module Replay = Replay

type config = {
  slrg_query_budget : int;
  rg_max_expansions : int;
  validate_spec : bool;
}

let default_config =
  { slrg_query_budget = 500; rg_max_expansions = 500_000; validate_spec = true }

type failure_reason =
  | Invalid_spec of string
  | Unreachable_goal
  | Resource_exhausted
  | Search_limit

type stats = {
  total_actions : int;
  plrg_props : int;
  plrg_actions : int;
  slrg_nodes : int;
  rg_created : int;
  rg_open_left : int;
  rg_expanded : int;
  replay_pruned : int;
  final_replay_rejected : int;
  rg_duplicates : int;
  t_total_ms : float;
  t_search_ms : float;
}

type outcome = { result : (Plan.t, failure_reason) Stdlib.result; stats : stats }

let empty_stats =
  {
    total_actions = 0;
    plrg_props = 0;
    plrg_actions = 0;
    slrg_nodes = 0;
    rg_created = 0;
    rg_open_left = 0;
    rg_expanded = 0;
    replay_pruned = 0;
    final_replay_rejected = 0;
    rg_duplicates = 0;
    t_total_ms = 0.;
    t_search_ms = 0.;
  }

let solve ?(config = default_config) ?adjust topo app leveling =
  let t_total = Timer.start () in
  let invalid msg =
    { result = Error (Invalid_spec msg); stats = empty_stats }
  in
  match
    if config.validate_spec then
      match Validate.check topo app with
      | [] -> Ok ()
      | issues ->
          Error
            (String.concat "; "
               (List.map (fun i -> Format.asprintf "%a" Validate.pp_issue i) issues))
    else Ok ()
  with
  | Error msg -> invalid msg
  | Ok () -> (
      match Compile.compile ?adjust topo app leveling with
      | exception Compile.Compile_error msg -> invalid msg
      | pb ->
          Log.info (fun m ->
              m "compiled: %d leveled actions, %d propositions"
                (Array.length pb.Problem.actions)
                (Prop.count pb.Problem.props));
          let t_search = Timer.start () in
          let plrg = Plrg.build pb in
          let plrg_props, plrg_actions = Plrg.stats plrg in
          Log.info (fun m ->
              m "PLRG: %d relevant propositions, %d relevant actions, goals %s"
                plrg_props plrg_actions
                (if Plrg.goals_reachable plrg then "reachable" else "UNREACHABLE"));
          let base_stats search_ms slrg rg_stats =
            {
              total_actions = Array.length pb.Problem.actions;
              plrg_props;
              plrg_actions;
              slrg_nodes =
                (match slrg with Some s -> Slrg.nodes_generated s | None -> 0);
              rg_created =
                (match rg_stats with Some (s : Rg.stats) -> s.Rg.created | None -> 0);
              rg_open_left =
                (match rg_stats with Some s -> s.Rg.open_left | None -> 0);
              rg_expanded =
                (match rg_stats with Some s -> s.Rg.expanded | None -> 0);
              replay_pruned =
                (match rg_stats with Some s -> s.Rg.replay_pruned | None -> 0);
              final_replay_rejected =
                (match rg_stats with
                | Some s -> s.Rg.final_replay_rejected
                | None -> 0);
              rg_duplicates =
                (match rg_stats with Some s -> s.Rg.duplicates | None -> 0);
              t_total_ms = Timer.elapsed_ms t_total;
              t_search_ms = search_ms;
            }
          in
          if not (Plrg.goals_reachable plrg) then
            {
              result = Error Unreachable_goal;
              stats = base_stats (Timer.elapsed_ms t_search) None None;
            }
          else begin
            let slrg = Slrg.create ~query_budget:config.slrg_query_budget pb plrg in
            let result, rg_stats =
              Rg.search ~max_expansions:config.rg_max_expansions pb plrg slrg
            in
            Log.info (fun m ->
                m
                  "RG: %d nodes created, %d expanded, %d pruned by replay, %d \
                   duplicates, %d final rejections"
                  rg_stats.Rg.created rg_stats.Rg.expanded
                  rg_stats.Rg.replay_pruned rg_stats.Rg.duplicates
                  rg_stats.Rg.final_replay_rejected);
            let stats =
              base_stats (Timer.elapsed_ms t_search) (Some slrg) (Some rg_stats)
            in
            match result with
            | Rg.Solution (tail, metrics, cost_lb) ->
                Log.info (fun m ->
                    m "solution: %d actions, cost bound %g, realized %g"
                      (List.length tail) cost_lb metrics.Replay.realized_cost);
                {
                  result = Ok { Plan.steps = tail; cost_lb; metrics };
                  stats;
                }
            | Rg.Exhausted -> { result = Error Resource_exhausted; stats }
            | Rg.Budget_exceeded -> { result = Error Search_limit; stats }
          end)

let solve_greedy ?config topo app = solve ?config topo app Leveling.empty

let pp_failure_reason fmt = function
  | Invalid_spec msg -> Format.fprintf fmt "invalid specification: %s" msg
  | Unreachable_goal -> Format.pp_print_string fmt "goal logically unreachable"
  | Resource_exhausted ->
      Format.pp_print_string fmt "no resource-feasible plan found"
  | Search_limit -> Format.pp_print_string fmt "search budget exceeded"

let pp_stats fmt s =
  Format.fprintf fmt
    "actions=%d plrg=%d/%d slrg=%d rg=%d/%d expanded=%d pruned=%d dups=%d \
     rejected=%d time=%.1f/%.1fms"
    s.total_actions s.plrg_props s.plrg_actions s.slrg_nodes s.rg_created
    s.rg_open_left s.rg_expanded s.replay_pruned s.rg_duplicates
    s.final_replay_rejected s.t_total_ms s.t_search_ms
