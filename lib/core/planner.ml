(* The planner façade.  The pipeline itself lives in {!Session}; this
   module re-exports the session types under their historical names and
   keeps the one-shot entry points as thin wrappers over throwaway
   sessions, so [plan (request topo app ~leveling)] behaves — spans,
   timings, stats — exactly as it always did. *)

module Session = Session

type config = Session.config = {
  slrg_query_budget : int;
  rg_max_expansions : int;
  validate_spec : bool;
  explain : bool;
  profile_h : bool;
  defer_h : bool;
  deadline_ms : float option;
  certify : bool;
}

let default_config = Session.default_config

type failure_reason = Session.failure_reason =
  | Invalid_spec of string
  | Unreachable_goal of string list
  | Resource_exhausted
  | Search_limit of { expansions : int; best_f : float }
  | Deadline_exceeded of {
      phase : string;
      expansions : int;
      best_f : float option;
    }
  | Certification_failed of string

type stats = Session.stats = {
  total_actions : int;
  plrg_props : int;
  plrg_actions : int;
  slrg_nodes : int;
  rg_created : int;
  rg_open_left : int;
  rg_expanded : int;
  replay_pruned : int;
  final_replay_rejected : int;
  rg_duplicates : int;
  order_repaired : int;
  slrg_cache_hits : int;
  slrg_suffix_harvested : int;
  slrg_bound_promoted : int;
  slrg_deferred : int;
  slrg_saved : int;
  invalidated_actions : int;
  evicted_entries : int;
  t_total_ms : float;
  t_search_ms : float;
}

type outcome = { result : (Plan.t, failure_reason) Stdlib.result; stats : stats }

type request = Session.request = {
  topo : Sekitei_network.Topology.t;
  app : Sekitei_spec.Model.app;
  leveling : Sekitei_spec.Leveling.t;
  config : config;
  telemetry : Sekitei_telemetry.Telemetry.t;
}

let request = Session.request

type phase = Session.phase = {
  ms : float;
  items : int;
  minor_words : float;
  major_collections : int;
}

type slrg_cache = Session.slrg_cache = {
  hits : int;
  harvested : int;
  promoted : int;
}

type reuse_counters = Session.reuse_counters = {
  invalidated : int;
  evicted : int;
}

type phases = Session.phases = {
  compile : phase;
  plrg : phase;
  slrg : phase;
  slrg_cache : slrg_cache;
  rg : phase;
  reuse : reuse_counters;
}

type report = Session.report = {
  result : (Plan.t, failure_reason) Stdlib.result;
  phases : phases;
  stats : stats;
  explanation : Explain.t option;
  certificate : Explain.certificate option;
  hquality : Rg.hsample list option;
}

let plan ?adjust ?metrics (req : request) =
  Session.plan (Session.create ?adjust ?metrics req)

let plan_batch ?adjust ?jobs ?metrics (reqs : request list) =
  let jobs =
    match jobs with
    | Some j when j >= 1 -> j
    | _ -> Sekitei_util.Domain_pool.default_jobs ()
  in
  (* Worker-health accounting lands in the shared registry from each
     worker's own domain — the registry's per-domain shards make that
     contention-free. *)
  let stats =
    Option.map
      (fun m (ws : Sekitei_util.Domain_pool.worker_stats) ->
        let module Registry = Sekitei_telemetry.Registry in
        Registry.count m "pool.workers" 1;
        Registry.count m "pool.items" ws.items;
        Registry.observe_ms m "pool.worker_busy_ms" ws.busy_ms;
        Registry.observe_ms m "pool.worker_idle_ms"
          (Float.max 0. (ws.wall_ms -. ws.busy_ms)))
      metrics
  in
  (* Shared-nothing: each request gets its own throwaway session —
     problem, oracle, ctx — so workers touch no common mutable state
     except the telemetry handles the caller put in the requests, which
     are the caller's contract (per-request handles, or sinks wrapped in
     [Telemetry.locked]), and the optional shared registry, which is
     domain-sharded by design. *)
  Sekitei_util.Domain_pool.map ~jobs ?stats (fun req -> plan ?adjust ?metrics req) reqs

let pp_failure = Session.pp_failure
let pp_stats = Session.pp_stats
let pp_phases = Session.pp_phases
