module I = Sekitei_util.Interval
module Expr = Sekitei_expr.Expr
module Topology = Sekitei_network.Topology
module Model = Sekitei_spec.Model
module Telemetry = Sekitei_telemetry.Telemetry

type mode = Optimistic | From_init | Regression

type failure = { failed_index : int; failed_action : string; reason : string }

type metrics = {
  realized_cost : float;
  lan_peak : float;
  wan_peak : float;
  lan_total : float;
  wan_total : float;
  node_cpu_used : (int * float) list;
  link_used : (int * float) list;
  delivered : (int * int * float) list;
}

type outcome = (metrics, failure) result

exception Fail of string

type state = {
  prim : (int * int, I.t) Hashtbl.t;
  sec : (int * int * string, I.t) Hashtbl.t;
  node_rem : (int * string, float) Hashtbl.t;
  link_rem : (int * string, float) Hashtbl.t;
}

let split_var v =
  match String.index_opt v '.' with
  | Some dot ->
      (String.sub v 0 dot, String.sub v (dot + 1) (String.length v - dot - 1))
  | None -> ("", v)

(* Throttle the current interval into the consumer's assumed level,
   honouring the property's tag (see the .mli).  The suprema of proper
   (half-open) intervals are exclusive: a stream constrained to [0,10)
   cannot deliver exactly 10, so a meet that collapses onto a single
   boundary value succeeds only when the current interval is a genuine
   point (an exactly attainable capacity). *)
let meet tag cur assumed =
  let lo, hi =
    match tag with
    | Model.Degradable -> (I.lo assumed, Float.min (I.hi assumed) (I.hi cur))
    | Model.Upgradable -> (Float.max (I.lo assumed) (I.lo cur), I.hi assumed)
    | Model.Neither ->
        (Float.max (I.lo assumed) (I.lo cur), Float.min (I.hi assumed) (I.hi cur))
  in
  if hi > lo then Some (I.make lo hi)
  else if hi = lo && I.is_point cur && I.mem lo assumed then Some (I.point lo)
  else None

let scale_interval scale ivl =
  if scale >= 1. then ivl
  else
    let hi = I.hi ivl *. scale in
    let lo = Float.min (I.lo ivl) hi in
    if hi > lo then I.make lo hi else I.point hi

let init_state ?(source_scale = 1.) (pb : Problem.t) =
  let st =
    {
      prim = Hashtbl.create 32;
      sec = Hashtbl.create 32;
      node_rem = Hashtbl.create 32;
      link_rem = Hashtbl.create 32;
    }
  in
  List.iter
    (fun (s : Problem.source) ->
      Hashtbl.replace st.prim (s.src_iface, s.src_node)
        (scale_interval source_scale s.src_interval);
      List.iter
        (fun (p, v) ->
          Hashtbl.replace st.sec (s.src_iface, s.src_node, p) (I.point v))
        s.src_secondary)
    pb.sources;
  st

(* Capacity before any replayed action runs (but after statically
   pre-consumed amounts): the reference point for checked levels in
   [Regression] mode, where the state's running remainder reflects
   consumption by actions that execute *later* in plan time. *)
let node_base (pb : Problem.t) node r =
  let base = Problem.node_cap pb node r in
  let consumed =
    List.fold_left
      (fun acc (n, res, amt) ->
        if n = node && String.equal res r then acc +. amt else acc)
      0. pb.init_consumed
  in
  base -. consumed

let link_base (pb : Problem.t) link r = Problem.link_cap pb link r

let node_remaining (pb : Problem.t) st node r =
  match Hashtbl.find_opt st.node_rem (node, r) with
  | Some v -> v
  | None -> node_base pb node r

let link_remaining (pb : Problem.t) st link r =
  match Hashtbl.find_opt st.link_rem (link, r) with
  | Some v -> v
  | None -> link_base pb link r

(* Operating point of an interval during metric computation. *)
let op ivl = I.hi ivl

let eval_cost env_ivl cost =
  (* Cost at operating points; meaningless pieces (unbounded intervals in
     optimistic mode) degrade to the infimum. *)
  let env v =
    let ivl = env_ivl v in
    if Float.is_finite (I.hi ivl) then I.hi ivl else I.lo ivl
  in
  match Expr.eval ~env cost with
  | v -> v
  | exception (Expr.Unbound_variable _ | Division_by_zero) -> 0.

let find_iface_index (pb : Problem.t) name =
  let rec go i =
    if i >= Array.length pb.ifaces then raise (Fail ("unknown interface " ^ name))
    else if String.equal pb.ifaces.(i).Model.iface_name name then i
    else go (i + 1)
  in
  go 0

(* Fetch the effective input interval for [iface] at [node], seeding
   unknown inputs in optimistic mode, and throttle it into [assumed]. *)
let effective_input pb st ~mode iface node assumed =
  let tag = pb.Problem.iface_tags.(iface) in
  let cur =
    match Hashtbl.find_opt st.prim (iface, node) with
    | Some cur -> cur
    | None -> (
        match mode with
        | From_init ->
            raise
              (Fail
                 (Printf.sprintf "interface %s not available on node %d"
                    pb.ifaces.(iface).Model.iface_name node))
        | Optimistic | Regression -> I.of_points [ 0.; pb.iface_max.(iface) ])
  in
  match meet tag cur assumed with
  | Some eff ->
      Hashtbl.replace st.prim (iface, node) eff;
      eff
  | None ->
      raise
        (Fail
           (Printf.sprintf "interface %s at node %d: %s incompatible with level %s"
              pb.ifaces.(iface).Model.iface_name node (I.to_string cur)
              (I.to_string assumed)))

let secondary_value pb st ~mode iface node p =
  match Hashtbl.find_opt st.sec (iface, node, p) with
  | Some ivl -> ivl
  | None -> (
      let default () =
        match Model.find_property pb.Problem.ifaces.(iface) p with
        | Some prop -> I.point prop.Model.prop_default
        | None -> raise (Fail ("unknown property " ^ p))
      in
      match mode with
      | From_init | Optimistic | Regression -> default ())

let consume_node pb st node r amount =
  if not (Float.is_finite amount) then
    raise (Fail (Printf.sprintf "unbounded %s consumption on node %d" r node));
  let rem = node_remaining pb st node r -. amount in
  if rem < -1e-9 then
    raise
      (Fail (Printf.sprintf "node %d out of %s (needs %g more)" node r (-.rem)));
  Hashtbl.replace st.node_rem (node, r) rem

let consume_link pb st link r amount =
  if not (Float.is_finite amount) then
    raise (Fail (Printf.sprintf "unbounded %s consumption on link %d" r link));
  let rem = link_remaining pb st link r -. amount in
  if rem < -1e-9 then
    raise
      (Fail (Printf.sprintf "link %d out of %s (needs %g more)" link r (-.rem)));
  Hashtbl.replace st.link_rem (link, r) rem

(* A checked (unimportant) level assumption on the remaining amount of a
   node/link resource.  In [From_init] mode the remaining amount is exact,
   so the level must contain it (the upper boundary counts as inside: full
   capacity satisfies "at least the top cutpoint").  In [Optimistic] mode,
   actions prepended later can only lower the remaining amount, so the
   assumption is still reachable whenever the level's infimum is.
   [Regression] mode replays in regression order, so the state's running
   remainder includes consumption by actions that execute *after* this one
   in plan time; callers therefore pass the base remaining amount (full
   capacity minus static pre-consumption), against which the infimum test
   is the correct optimistic check. *)
let checked_level_ok ~mode rem ivl =
  match mode with
  | Optimistic | Regression -> rem >= I.lo ivl -. 1e-9
  | From_init -> I.mem rem ivl || rem = I.hi ivl

let store_output out_ivl assumed what =
  let narrowed =
    match I.inter out_ivl assumed with
    | Some x -> Some x
    | None ->
        (* A degradable output that computes above its assumed level can be
           throttled down into it; below it is a real failure. *)
        if I.lo out_ivl >= I.hi assumed then None
        else if I.hi out_ivl <= I.lo assumed then None
        else I.inter out_ivl assumed
  in
  match narrowed with
  | Some x -> x
  | None ->
      raise
        (Fail
           (Printf.sprintf "%s: computed %s misses level %s" what
              (I.to_string out_ivl) (I.to_string assumed)))

let exec_place pb st ~mode (act : Action.t) comp node =
  let c : Model.component = pb.Problem.comps.(comp) in
  (* 1. throttle inputs into their assumed levels *)
  Array.iter
    (fun (i, assumed) -> ignore (effective_input pb st ~mode i node assumed))
    act.Action.in_levels;
  (* 2. interval environment *)
  let env v =
    match split_var v with
    | "node", r ->
        I.point
          (match mode with
          | Regression -> node_base pb node r
          | Optimistic | From_init -> node_remaining pb st node r)
    | iface_name, prop_name -> (
        let i = find_iface_index pb iface_name in
        let primary = Problem.primary pb i in
        if String.equal prop_name primary then
          match Hashtbl.find_opt st.prim (i, node) with
          | Some ivl -> ivl
          | None -> I.full (* a provide not yet computed *)
        else secondary_value pb st ~mode i node prop_name)
  in
  (* 3. conditions and checked node levels *)
  List.iter
    (fun cond ->
      if not (Expr.sat ~env cond) then
        raise (Fail ("condition unsatisfiable: " ^ Expr.cond_to_string cond)))
    c.Model.conditions;
  Array.iter
    (fun (r, ivl) ->
      let rem =
        match mode with
        | Regression -> node_base pb node r
        | Optimistic | From_init -> node_remaining pb st node r
      in
      if not (checked_level_ok ~mode rem ivl) then
        raise
          (Fail
             (Printf.sprintf "node %s level %s violated (remaining %g)" r
                (I.to_string ivl) rem)))
    act.Action.checked_node;
  (* 4. consume at the supremum *)
  List.iter
    (fun (r, e) ->
      let civl = Expr.eval_interval ~env e in
      consume_node pb st node r (I.hi civl))
    c.Model.consumes;
  (* 5. outputs *)
  Array.iter
    (fun (o, assumed) ->
      let prov = pb.Problem.ifaces.(o).Model.iface_name in
      let primary = Problem.primary pb o in
      let effect =
        match
          List.find_opt
            (fun (fi, fp, _) -> String.equal fi prov && String.equal fp primary)
            c.Model.effects
        with
        | Some (_, _, e) -> e
        | None -> raise (Fail ("no effect for " ^ prov))
      in
      let out_ivl = Expr.eval_interval ~env effect in
      let narrowed = store_output out_ivl assumed act.Action.label in
      let final =
        match Hashtbl.find_opt st.prim (o, node) with
        | None -> narrowed
        | Some existing -> (
            match I.inter existing narrowed with
            | Some x -> x
            | None -> narrowed (* a fresh production supersedes *))
      in
      Hashtbl.replace st.prim (o, node) final;
      (* secondary properties of the produced interface *)
      List.iter
        (fun (p : Model.property) ->
          if not (String.equal p.Model.prop_name primary) then begin
            let value =
              match
                List.find_opt
                  (fun (fi, fp, _) ->
                    String.equal fi prov && String.equal fp p.Model.prop_name)
                  c.Model.effects
              with
              | Some (_, _, e) -> Expr.eval_interval ~env e
              | None -> I.point p.Model.prop_default
            in
            Hashtbl.replace st.sec (o, node, p.Model.prop_name) value
          end)
        pb.Problem.ifaces.(o).Model.properties)
    act.Action.out_levels;
  eval_cost env c.Model.place_cost

let exec_cross pb st ~mode (act : Action.t) iface link src dst =
  let ifc : Model.iface = pb.Problem.ifaces.(iface) in
  let primary = Problem.primary pb iface in
  let assumed_in =
    match act.Action.in_levels with
    | [| (_, ivl) |] -> ivl
    | _ -> assert false
  in
  let eff = effective_input pb st ~mode iface src assumed_in in
  let env v =
    match split_var v with
    | "link", r ->
        I.point
          (match mode with
          | Regression -> link_base pb link r
          | Optimistic | From_init -> link_remaining pb st link r)
    | "", p ->
        if String.equal p primary then eff
        else secondary_value pb st ~mode iface src p
    | _, _ -> raise (Fail ("unexpected variable in cross formula: " ^ v))
  in
  List.iter
    (fun cond ->
      if not (Expr.sat ~env cond) then
        raise (Fail ("cross condition unsatisfiable: " ^ Expr.cond_to_string cond)))
    ifc.Model.cross_conditions;
  Array.iter
    (fun (r, ivl) ->
      let rem =
        match mode with
        | Regression -> link_base pb link r
        | Optimistic | From_init -> link_remaining pb st link r
      in
      if not (checked_level_ok ~mode rem ivl) then
        raise
          (Fail
             (Printf.sprintf "link %s level %s violated (remaining %g)" r
                (I.to_string ivl) rem)))
    act.Action.checked_link;
  (* Evaluate all transforms against the pre-consumption environment. *)
  let transformed =
    List.map
      (fun (p : Model.property) ->
        let p = p.Model.prop_name in
        match List.assoc_opt p ifc.Model.cross_transforms with
        | Some e -> (p, Expr.eval_interval ~env e)
        | None ->
            ( p,
              if String.equal p primary then eff
              else secondary_value pb st ~mode iface src p ))
      ifc.Model.properties
  in
  List.iter
    (fun (r, e) ->
      let civl = Expr.eval_interval ~env e in
      consume_link pb st link r (I.hi civl))
    ifc.Model.cross_consumes;
  let assumed_out =
    match act.Action.out_levels with
    | [| (_, ivl) |] -> ivl
    | _ -> assert false
  in
  List.iter
    (fun (p, ivl) ->
      if String.equal p primary then begin
        let narrowed = store_output ivl assumed_out act.Action.label in
        let final =
          match Hashtbl.find_opt st.prim (iface, dst) with
          | None -> narrowed
          | Some existing -> (
              match I.inter existing narrowed with
              | Some x -> x
              | None -> narrowed)
        in
        Hashtbl.replace st.prim (iface, dst) final
      end
      else Hashtbl.replace st.sec (iface, dst, p) ivl)
    transformed;
  eval_cost env ifc.Model.cross_cost

let collect_metrics (pb : Problem.t) st realized_cost =
  let lan_peak = ref 0.
  and wan_peak = ref 0.
  and lan_total = ref 0.
  and wan_total = ref 0. in
  let link_used = ref [] in
  Array.iter
    (fun (l : Topology.link) ->
      let cap = Problem.link_cap pb l.Topology.link_id "lbw" in
      let used = cap -. link_remaining pb st l.Topology.link_id "lbw" in
      if used > 1e-9 then begin
        link_used := (l.Topology.link_id, used) :: !link_used;
        match l.Topology.kind with
        | Topology.Lan ->
            lan_peak := Float.max !lan_peak used;
            lan_total := !lan_total +. used
        | Topology.Wan ->
            wan_peak := Float.max !wan_peak used;
            wan_total := !wan_total +. used
      end)
    (Topology.links pb.topo);
  let node_cpu_used =
    Hashtbl.fold
      (fun (node, r) _rem acc ->
        if String.equal r "cpu" then
          (node, Problem.node_cap pb node r -. node_remaining pb st node r) :: acc
        else acc)
      st.node_rem []
    |> List.sort compare
  in
  let delivered =
    Hashtbl.fold
      (fun (iface, node) ivl acc ->
        if Float.is_finite (op ivl) then (iface, node, op ivl) :: acc else acc)
      st.prim []
    |> List.sort compare
  in
  {
    realized_cost;
    lan_peak = !lan_peak;
    wan_peak = !wan_peak;
    lan_total = !lan_total;
    wan_total = !wan_total;
    node_cpu_used;
    link_used = List.rev !link_used;
    delivered;
  }

(* Execute one action against [st] (mutating it), returning the action's
   realized cost contribution.  Raises [Fail] (or [Division_by_zero] out of
   a specification formula) on infeasibility. *)
let exec_action pb st ~mode (act : Action.t) =
  let c =
    match act.Action.kind with
    | Action.Place { comp; node } -> exec_place pb st ~mode act comp node
    | Action.Cross { iface; link; src; dst } ->
        exec_cross pb st ~mode act iface link src dst
  in
  Float.max 0. (c +. act.Action.cost_extra)

let run ?(telemetry = Telemetry.null) ?source_scale pb ~mode tail =
  let sp = Telemetry.begin_span telemetry "replay" in
  let st = init_state ?source_scale pb in
  let cost = ref 0. in
  let result = ref (Ok ()) in
  let rec go idx = function
    | [] -> ()
    | (act : Action.t) :: rest -> (
        match exec_action pb st ~mode act with
        | c ->
            cost := !cost +. c;
            go (idx + 1) rest
        | exception Fail reason ->
            result :=
              Error
                { failed_index = idx; failed_action = act.Action.label; reason }
        | exception Division_by_zero ->
            result :=
              Error
                {
                  failed_index = idx;
                  failed_action = act.Action.label;
                  reason = "division by zero in a specification formula";
                })
  in
  go 0 tail;
  let out =
    match !result with
    | Error f -> Error f
    | Ok () -> Ok (collect_metrics pb st !cost)
  in
  ignore
    (Telemetry.end_span telemetry sp
       ~attrs:
         [
           ("actions", Telemetry.Int (List.length tail));
           ("ok", Telemetry.Bool (Result.is_ok out));
         ]);
  out

(* ------------------------------------------------------------------ *)
(* Incremental replay states                                           *)
(* ------------------------------------------------------------------ *)

type rstate = { rst : state; rcost : float; rlen : int }

let copy_state st =
  {
    prim = Hashtbl.copy st.prim;
    sec = Hashtbl.copy st.sec;
    node_rem = Hashtbl.copy st.node_rem;
    link_rem = Hashtbl.copy st.link_rem;
  }

let initial ?source_scale pb =
  { rst = init_state ?source_scale pb; rcost = 0.; rlen = 0 }

let extend pb ~mode rs (act : Action.t) =
  let st = copy_state rs.rst in
  match exec_action pb st ~mode act with
  | c -> Ok { rst = st; rcost = rs.rcost +. c; rlen = rs.rlen + 1 }
  | exception Fail reason ->
      Error { failed_index = rs.rlen; failed_action = act.Action.label; reason }
  | exception Division_by_zero ->
      Error
        {
          failed_index = rs.rlen;
          failed_action = act.Action.label;
          reason = "division by zero in a specification formula";
        }

let rstate_cost rs = rs.rcost
let rstate_length rs = rs.rlen
let rstate_metrics pb rs = collect_metrics pb rs.rst rs.rcost

let pp_failure fmt f =
  Format.fprintf fmt "action %d (%s): %s" f.failed_index f.failed_action f.reason
