(* Stale-id audit (link renumbering): Mutate.remove_link / fail_node
   renumber the surviving links densely, so any identifier held across
   such a mutation must go through Mutate.renumber_map.  This module is
   safe by construction: the [previous] deployment and the computed
   [diff] speak only in component names and *node* ids, which are stable
   across every Mutate operation — no link id is ever stored here.
   Callers replanning after a removal (e.g. Session.update) own the
   translation for any link ids *they* hold. *)

type policy = { keep_discount : float; migrate_surcharge : float }

let default_policy = { keep_discount = 5.; migrate_surcharge = 3. }

type diff = {
  kept : (string * int) list;
  moved : (string * int * int) list;
  added : (string * int) list;
  removed : (string * int) list;
}

let adjust_of policy previous ~comp ~node =
  match List.assoc_opt comp previous with
  | Some prev_node when prev_node = node -> -.policy.keep_discount
  | Some _ -> policy.migrate_surcharge
  | None -> 0.

let replan ?config ?(policy = default_policy) ~previous topo app leveling =
  let report =
    Planner.plan
      ~adjust:(adjust_of policy previous)
      (Planner.request ?config topo app ~leveling)
  in
  { Planner.result = report.Planner.result; stats = report.Planner.stats }

let diff ~previous pb plan =
  let current = Plan.placements pb plan in
  let kept = ref [] and moved = ref [] and added = ref [] in
  List.iter
    (fun (comp, node) ->
      match List.assoc_opt comp previous with
      | Some prev when prev = node -> kept := (comp, node) :: !kept
      | Some prev -> moved := (comp, prev, node) :: !moved
      | None -> added := (comp, node) :: !added)
    current;
  let removed =
    List.filter (fun (comp, _) -> not (List.mem_assoc comp current)) previous
  in
  {
    kept = List.rev !kept;
    moved = List.rev !moved;
    added = List.rev !added;
    removed;
  }

let pp_diff fmt d =
  let pl = List.map (fun (c, n) -> Printf.sprintf "%s@n%d" c n) in
  Format.fprintf fmt "kept: %s; moved: %s; added: %s; removed: %s"
    (String.concat ", " (pl d.kept))
    (String.concat ", "
       (List.map (fun (c, a, b) -> Printf.sprintf "%s n%d->n%d" c a b) d.moved))
    (String.concat ", " (pl d.added))
    (String.concat ", " (pl d.removed))
