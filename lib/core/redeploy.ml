(* Identifier hygiene: every id this module stores — component names and
   node ids in [previous] and the computed [diff] — is stable across
   every Mutate operation, and since link ids are now persistent too
   (removals tombstone instead of renumbering), nothing held across a
   replan can silently change meaning.  A caller that does store link
   ids gets Topology.Stale_link on a removed one instead of a wrong
   neighbor. *)

type policy = { keep_discount : float; migrate_surcharge : float }

let default_policy = { keep_discount = 5.; migrate_surcharge = 3. }

type diff = {
  kept : (string * int) list;
  moved : (string * int * int) list;
  added : (string * int) list;
  removed : (string * int) list;
}

let adjust_of policy previous ~comp ~node =
  match List.assoc_opt comp previous with
  | Some prev_node when prev_node = node -> -.policy.keep_discount
  | Some _ -> policy.migrate_surcharge
  | None -> 0.

let replan ?config ?(policy = default_policy) ~previous topo app leveling =
  let report =
    Planner.plan
      ~adjust:(adjust_of policy previous)
      (Planner.request ?config topo app ~leveling)
  in
  { Planner.result = report.Planner.result; stats = report.Planner.stats }

let diff ~previous pb plan =
  let current = Plan.placements pb plan in
  let kept = ref [] and moved = ref [] and added = ref [] in
  List.iter
    (fun (comp, node) ->
      match List.assoc_opt comp previous with
      | Some prev when prev = node -> kept := (comp, node) :: !kept
      | Some prev -> moved := (comp, prev, node) :: !moved
      | None -> added := (comp, node) :: !added)
    current;
  let removed =
    List.filter (fun (comp, _) -> not (List.mem_assoc comp current)) previous
  in
  {
    kept = List.rev !kept;
    moved = List.rev !moved;
    added = List.rev !added;
    removed;
  }

let pp_diff fmt d =
  let pl = List.map (fun (c, n) -> Printf.sprintf "%s@n%d" c n) in
  Format.fprintf fmt "kept: %s; moved: %s; added: %s; removed: %s"
    (String.concat ", " (pl d.kept))
    (String.concat ", "
       (List.map (fun (c, a, b) -> Printf.sprintf "%s n%d->n%d" c a b) d.moved))
    (String.concat ", " (pl d.added))
    (String.concat ", " (pl d.removed))
