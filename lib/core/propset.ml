(* Canonical proposition sets shared by the SLRG and RG phases. *)

let sort_ints (a : int array) = Array.sort Int.compare a

(* Sort + dedup + drop initially-true propositions, from an array that the
   caller allows us to scratch. *)
let canonical_scratch (pb : Problem.t) (arr : int array) =
  sort_ints arr;
  let n = Array.length arr in
  let keep = Array.make n 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let p = arr.(i) in
    if (not pb.Problem.init.(p)) && (!k = 0 || keep.(!k - 1) <> p) then begin
      keep.(!k) <- p;
      incr k
    end
  done;
  if !k = n then keep else Array.sub keep 0 !k

let canonical pb props = canonical_scratch pb (Array.of_list props)
let canonical_array pb props = canonical_scratch pb (Array.copy props)

let equal (a : int array) (b : int array) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

(* FNV-1a over the elements; canonical sets hash identically iff equal
   modulo collisions. *)
let hash (a : int array) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length a - 1 do
    h := (!h lxor a.(i)) * 0x01000193
  done;
  !h land max_int

let mem (set : int array) (p : int) =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let v = set.(mid) in
      if v = p then true else if v < p then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length set)

module Tbl = Hashtbl.Make (struct
  type t = int array

  let equal = equal
  let hash = hash
end)

type ctx = {
  closure_sorted : int array array;  (** per action id, sorted add-closure *)
  pre_canon : int array array;  (** per action id, canonical preconditions *)
}

let make_ctx (pb : Problem.t) =
  let closure_sorted =
    Array.map
      (fun (a : Action.t) ->
        let c = Array.copy a.Action.add_closure in
        sort_ints c;
        c)
      pb.Problem.actions
  in
  let pre_canon =
    Array.map
      (fun (a : Action.t) -> canonical_array pb a.Action.pre)
      pb.Problem.actions
  in
  { closure_sorted; pre_canon }

(* Merge-based (set \ closure) ∪ pre over three sorted arrays. The result
   is sorted and duplicate-free; [set] and [pre] contain no initially-true
   propositions, so the result is canonical. *)
let regress ctx (set : int array) (a : Action.t) =
  let closure = ctx.closure_sorted.(a.Action.act_id)
  and pre = ctx.pre_canon.(a.Action.act_id) in
  let ns = Array.length set
  and nc = Array.length closure
  and np = Array.length pre in
  let out = Array.make (ns + np) 0 in
  let k = ref 0 in
  let push p =
    if !k = 0 || out.(!k - 1) <> p then begin
      out.(!k) <- p;
      incr k
    end
  in
  (* Walk [set] and [pre] in merged order, skipping [set] elements that
     appear in [closure]. *)
  let i = ref 0 and j = ref 0 and c = ref 0 in
  let in_closure p =
    while !c < nc && closure.(!c) < p do
      incr c
    done;
    !c < nc && closure.(!c) = p
  in
  while !i < ns || !j < np do
    if !j >= np || (!i < ns && set.(!i) <= pre.(!j)) then begin
      let p = set.(!i) in
      incr i;
      if not (in_closure p) then push p
    end
    else begin
      push pre.(!j);
      incr j
    end
  done;
  if !k = ns + np then out else Array.sub out 0 !k
