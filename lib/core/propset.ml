(* Canonical proposition sets shared by the SLRG and RG phases. *)

let sort_ints (a : int array) = Array.sort Int.compare a

(* Sort + dedup + drop initially-true propositions, from an array that the
   caller allows us to scratch. *)
let canonical_scratch (pb : Problem.t) (arr : int array) =
  sort_ints arr;
  let n = Array.length arr in
  let keep = Array.make n 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let p = arr.(i) in
    if (not pb.Problem.init.(p)) && (!k = 0 || keep.(!k - 1) <> p) then begin
      keep.(!k) <- p;
      incr k
    end
  done;
  if !k = n then keep else Array.sub keep 0 !k

let canonical pb props = canonical_scratch pb (Array.of_list props)
let canonical_array pb props = canonical_scratch pb (Array.copy props)

let equal (a : int array) (b : int array) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

(* FNV-1a over the elements; canonical sets hash identically iff equal
   modulo collisions. *)
let hash (a : int array) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length a - 1 do
    h := (!h lxor a.(i)) * 0x01000193
  done;
  !h land max_int

let mem (set : int array) (p : int) =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let v = set.(mid) in
      if v = p then true else if v < p then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length set)

module Tbl = Hashtbl.Make (struct
  type t = int array

  let equal = equal
  let hash = hash
end)

(* ------------------------------------------------------------------ *)
(* Hash-consed handles                                                 *)
(* ------------------------------------------------------------------ *)

type handle = { id : int; set : int array }

module Interner = struct
  (* Hash-consing of canonical sets: every distinct set gets one physical
     representative array and a dense id assigned in first-seen order.
     After interning, set equality is id equality and every id-keyed
     table probe hashes a single int — the FNV walk over the elements
     runs exactly once per distinct set, at interning time. *)
  type t = {
    table : handle Tbl.t;
    mutable by_id : handle array;  (** dense id -> handle, [size] live *)
    mutable size : int;
  }

  let dummy = { id = -1; set = [||] }
  let create () = { table = Tbl.create 256; by_id = Array.make 64 dummy; size = 0 }
  let size t = t.size

  let intern t (set : int array) =
    match Tbl.find_opt t.table set with
    | Some h -> h
    | None ->
        let h = { id = t.size; set } in
        Tbl.replace t.table set h;
        if t.size = Array.length t.by_id then begin
          let grown = Array.make (2 * t.size) dummy in
          Array.blit t.by_id 0 grown 0 t.size;
          t.by_id <- grown
        end;
        t.by_id.(t.size) <- h;
        t.size <- t.size + 1;
        h

  let get t id =
    if id < 0 || id >= t.size then invalid_arg "Propset.Interner.get";
    t.by_id.(id)
end

type ctx = {
  mutable closure_sorted : int array array;
      (** per action id, sorted add-closure *)
  mutable pre_canon : int array array;
      (** per action id, canonical preconditions *)
  interner : Interner.t;
  mutable n_actions : int;
  regress_memo : (int, handle) Hashtbl.t;
      (** (parent set id * n_actions + action id) -> interned result; one
          merge per distinct regression edge across every search sharing
          this ctx *)
}

let action_tables (pb : Problem.t) =
  let closure_sorted =
    Array.map
      (fun (a : Action.t) ->
        let c = Array.copy a.Action.add_closure in
        sort_ints c;
        c)
      pb.Problem.actions
  in
  let pre_canon =
    Array.map
      (fun (a : Action.t) -> canonical_array pb a.Action.pre)
      pb.Problem.actions
  in
  (closure_sorted, pre_canon)

let make_ctx (pb : Problem.t) =
  let closure_sorted, pre_canon = action_tables pb in
  {
    closure_sorted;
    pre_canon;
    interner = Interner.create ();
    n_actions = Array.length pb.Problem.actions;
    regress_memo = Hashtbl.create 1024;
  }

(* Rebinding a ctx to a recompiled problem keeps the interner (prop ids —
   and therefore canonical sets and their dense handle ids — are stable
   across topology deltas; see {!Session}) but rebuilds everything keyed
   by action ids, which the recompile renumbers.  The regression memo
   must go with them: its key mixes [n_actions] into the encoding, and
   its values depend on the per-action tables.  The caller is responsible
   for checking that [pb.init] is unchanged — a different initial section
   changes what "canonical" means and requires a fresh ctx. *)
let refresh_ctx ctx (pb : Problem.t) =
  let closure_sorted, pre_canon = action_tables pb in
  ctx.closure_sorted <- closure_sorted;
  ctx.pre_canon <- pre_canon;
  ctx.n_actions <- Array.length pb.Problem.actions;
  Hashtbl.reset ctx.regress_memo

let intern ctx set = Interner.intern ctx.interner set
let handle_of_id ctx id = Interner.get ctx.interner id
let interned_count ctx = Interner.size ctx.interner

(* Merge-based (set \ closure) ∪ pre over three sorted arrays. The result
   is sorted and duplicate-free; [set] and [pre] contain no initially-true
   propositions, so the result is canonical. *)
let regress ctx (set : int array) (a : Action.t) =
  let closure = ctx.closure_sorted.(a.Action.act_id)
  and pre = ctx.pre_canon.(a.Action.act_id) in
  let ns = Array.length set
  and nc = Array.length closure
  and np = Array.length pre in
  let out = Array.make (ns + np) 0 in
  let k = ref 0 in
  let push p =
    if !k = 0 || out.(!k - 1) <> p then begin
      out.(!k) <- p;
      incr k
    end
  in
  (* Walk [set] and [pre] in merged order, skipping [set] elements that
     appear in [closure]. *)
  let i = ref 0 and j = ref 0 and c = ref 0 in
  let in_closure p =
    while !c < nc && closure.(!c) < p do
      incr c
    done;
    !c < nc && closure.(!c) = p
  in
  while !i < ns || !j < np do
    if !j >= np || (!i < ns && set.(!i) <= pre.(!j)) then begin
      let p = set.(!i) in
      incr i;
      if not (in_closure p) then push p
    end
    else begin
      push pre.(!j);
      incr j
    end
  done;
  if !k = ns + np then out else Array.sub out 0 !k

let regress_h ctx (h : handle) (a : Action.t) =
  let key = (h.id * ctx.n_actions) + a.Action.act_id in
  match Hashtbl.find_opt ctx.regress_memo key with
  | Some h' -> h'
  | None ->
      let h' = intern ctx (regress ctx h.set a) in
      Hashtbl.replace ctx.regress_memo key h';
      h'
