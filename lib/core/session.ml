(* Long-lived planning sessions: the pipeline engine behind {!Planner}.

   A session holds the compiled state of one (topology, app, leveling)
   triple — the leveled problem, the PLRG, and the SLRG oracle with its
   hash-consing ctx — and serves many plan requests against it.  The
   first request compiles (and reports compile/plrg timings exactly like
   a one-shot run); later requests start from the hot state and skip
   straight to the search.  {!update} applies a topology delta with
   dependency-tracked invalidation: only grounding groups at touched
   sites are recompiled ({!Compile.recompile}) and only oracle entries
   whose sets contain a delta-dirtied proposition are evicted
   ({!Supports.taint} / {!Slrg.refresh}).

   Warm-equals-cold contract: a warm re-plan returns bit-identical
   results (plan actions, cost bounds, failure constructors) to a cold
   [Planner.plan] of the current topology, provided no SLRG root query
   exhausted its budget in the cold run.  Exact solved entries and h_max
   values are path-independent facts about the problem, so carrying them
   is invisible; budget-exhausted {e bounds} are query-order-dependent,
   which is why {!Slrg.begin_request} drops all of them (and refills the
   escalation pool) at every request start.  Under budget exhaustion the
   served bound may differ from the cold one — still admissible, and the
   search still returns a correct plan, but tie-breaking may diverge. *)

let src = Logs.Src.create "sekitei.planner" ~doc:"Sekitei planner phases"

module Log = (val Logs.src_log src : Logs.LOG)
module Timer = Sekitei_util.Timer
module Deadline = Sekitei_util.Deadline
module Telemetry = Sekitei_telemetry.Telemetry
module Registry = Sekitei_telemetry.Registry
module Topology = Sekitei_network.Topology
module Mutate = Sekitei_network.Mutate
module Model = Sekitei_spec.Model
module Leveling = Sekitei_spec.Leveling
module Validate = Sekitei_spec.Validate

type config = {
  slrg_query_budget : int;
  rg_max_expansions : int;
  validate_spec : bool;
  explain : bool;
  profile_h : bool;
  defer_h : bool;
  deadline_ms : float option;
  certify : bool;
}

let default_config =
  {
    slrg_query_budget = 500;
    rg_max_expansions = 500_000;
    validate_spec = true;
    explain = false;
    profile_h = false;
    defer_h = true;
    deadline_ms = None;
    certify = false;
  }

type failure_reason =
  | Invalid_spec of string
  | Unreachable_goal of string list
  | Resource_exhausted
  | Search_limit of { expansions : int; best_f : float }
  | Deadline_exceeded of {
      phase : string;
      expansions : int;
      best_f : float option;
    }
  | Certification_failed of string

type stats = {
  total_actions : int;
  plrg_props : int;
  plrg_actions : int;
  slrg_nodes : int;
  rg_created : int;
  rg_open_left : int;
  rg_expanded : int;
  replay_pruned : int;
  final_replay_rejected : int;
  rg_duplicates : int;
  order_repaired : int;
  slrg_cache_hits : int;
  slrg_suffix_harvested : int;
  slrg_bound_promoted : int;
  slrg_deferred : int;
  slrg_saved : int;
  invalidated_actions : int;
  evicted_entries : int;
  t_total_ms : float;
  t_search_ms : float;
}

type request = {
  topo : Topology.t;
  app : Model.app;
  leveling : Leveling.t;
  config : config;
  telemetry : Telemetry.t;
}

let request ?(config = default_config) ?(telemetry = Telemetry.null)
    ?(leveling = Leveling.empty) topo app =
  { topo; app; leveling; config; telemetry }

type phase = {
  ms : float;
  items : int;
  minor_words : float;
  major_collections : int;
}

type slrg_cache = { hits : int; harvested : int; promoted : int }

type reuse_counters = { invalidated : int; evicted : int }

type phases = {
  compile : phase;
  plrg : phase;
  slrg : phase;
  slrg_cache : slrg_cache;
  rg : phase;
  reuse : reuse_counters;
}

type report = {
  result : (Plan.t, failure_reason) Stdlib.result;
  phases : phases;
  stats : stats;
  explanation : Explain.t option;
  certificate : Explain.certificate option;
  hquality : Rg.hsample list option;
}

let empty_stats =
  {
    total_actions = 0;
    plrg_props = 0;
    plrg_actions = 0;
    slrg_nodes = 0;
    rg_created = 0;
    rg_open_left = 0;
    rg_expanded = 0;
    replay_pruned = 0;
    final_replay_rejected = 0;
    rg_duplicates = 0;
    order_repaired = 0;
    slrg_cache_hits = 0;
    slrg_suffix_harvested = 0;
    slrg_bound_promoted = 0;
    slrg_deferred = 0;
    slrg_saved = 0;
    invalidated_actions = 0;
    evicted_entries = 0;
    t_total_ms = 0.;
    t_search_ms = 0.;
  }

let no_phase = { ms = 0.; items = 0; minor_words = 0.; major_collections = 0 }
let no_cache = { hits = 0; harvested = 0; promoted = 0 }
let no_reuse = { invalidated = 0; evicted = 0 }

let empty_phases =
  {
    compile = no_phase;
    plrg = no_phase;
    slrg = no_phase;
    slrg_cache = no_cache;
    rg = no_phase;
    reuse = no_reuse;
  }

(* ------------------------------------------------------------------ *)
(* Pretty-printers                                                     *)
(* ------------------------------------------------------------------ *)

let pp_failure fmt = function
  | Invalid_spec msg -> Format.fprintf fmt "invalid specification: %s" msg
  | Unreachable_goal [] ->
      Format.pp_print_string fmt "goal logically unreachable"
  | Unreachable_goal props ->
      Format.fprintf fmt "goal logically unreachable (%s)"
        (String.concat ", " props)
  | Resource_exhausted ->
      Format.pp_print_string fmt "no resource-feasible plan found"
  | Search_limit { expansions; best_f } ->
      Format.fprintf fmt
        "search budget exceeded after %d expansions (best open bound %g)"
        expansions best_f
  | Deadline_exceeded { phase; expansions; best_f } -> (
      Format.fprintf fmt "deadline exceeded in %s phase" phase;
      if expansions > 0 then Format.fprintf fmt " after %d expansions" expansions;
      match best_f with
      | Some f -> Format.fprintf fmt " (best open bound %g)" f
      | None -> ())
  | Certification_failed reason ->
      Format.fprintf fmt "emitted plan failed independent certification: %s"
        reason

let pp_stats fmt s =
  Format.fprintf fmt
    "actions=%d plrg=%d/%d slrg=%d rg=%d/%d expanded=%d pruned=%d dups=%d \
     rejected=%d repaired=%d deferred=%d/%d invalidated=%d evicted=%d \
     time=%.1f/%.1fms"
    s.total_actions s.plrg_props s.plrg_actions s.slrg_nodes s.rg_created
    s.rg_open_left s.rg_expanded s.replay_pruned s.rg_duplicates
    s.final_replay_rejected s.order_repaired s.slrg_deferred s.slrg_saved
    s.invalidated_actions s.evicted_entries s.t_total_ms s.t_search_ms

let pp_phases fmt p =
  (* gc_minor_kw / gc_major list the four phases in pipeline order:
     compile, plrg, slrg, rg. *)
  Format.fprintf fmt
    "compile=%.1fms/%d plrg=%.1fms/%d slrg=%.1fms/%d slrg_cache=%d/%d/%d \
     rg=%.1fms/%d reuse=%d/%d gc_minor_kw=%.0f/%.0f/%.0f/%.0f \
     gc_major=%d/%d/%d/%d"
    p.compile.ms p.compile.items p.plrg.ms p.plrg.items p.slrg.ms p.slrg.items
    p.slrg_cache.hits p.slrg_cache.harvested p.slrg_cache.promoted p.rg.ms
    p.rg.items p.reuse.invalidated p.reuse.evicted
    (p.compile.minor_words /. 1000.)
    (p.plrg.minor_words /. 1000.)
    (p.slrg.minor_words /. 1000.)
    (p.rg.minor_words /. 1000.)
    p.compile.major_collections p.plrg.major_collections
    p.slrg.major_collections p.rg.major_collections

(* ------------------------------------------------------------------ *)
(* Session state                                                       *)
(* ------------------------------------------------------------------ *)

type delta =
  | Set_node_resource of { node : int; resource : string; value : float }
  | Set_link_resource of { link : int; resource : string; value : float }
  | Remove_link of { link : int }
  | Fail_node of { node : int }

(* Compiled state, built lazily at the first plan call (so a throwaway
   session reports cold compile timings like the one-shot planner always
   did) and patched incrementally by {!update}. *)
type compiled = {
  mutable pb : Problem.t;
  mutable plrg : Plrg.t;
  mutable oracle : Slrg.t option;
      (** created at the first plan call that survives the
          reachability check, so oracle-construction time lands in that
          request's slrg phase exactly as in a cold run *)
  mutable compile_phase : phase;
      (** pending compile timing to surface in the next report: the cold
          compile (first plan) or the latest recompile; zero-ms once
          reported — that request ran against already-hot state *)
  mutable plrg_phase : phase;
}

type t = {
  mutable topo : Topology.t;
  app : Model.app;
  leveling : Leveling.t;
  config : config;
  telemetry : Telemetry.t;
  metrics : Registry.t;
      (** always-on lifetime metrics: plans served, warm/cold splits,
          per-phase latency histograms, search volume *)
  adjust : (comp:string -> node:int -> float) option;
  mutable state : compiled option;
  mutable pending_invalidated : int;
      (** actions recompiled/dropped by updates since the last plan *)
  mutable pending_evicted : int;
      (** oracle entries evicted by updates since the last plan *)
}

let create ?adjust ?metrics (req : request) =
  {
    topo = req.topo;
    app = req.app;
    leveling = req.leveling;
    config = req.config;
    telemetry = req.telemetry;
    metrics = (match metrics with Some m -> m | None -> Registry.create ());
    adjust;
    state = None;
    pending_invalidated = 0;
    pending_evicted = 0;
  }

let topology t = t.topo
let is_warm t = t.state <> None
let metrics t = t.metrics
let metrics_snapshot t = Registry.snapshot t.metrics

let gc_snap () = (Gc.minor_words (), (Gc.quick_stat ()).Gc.major_collections)
let gc_delta (aw, ac) (bw, bc) = (bw -. aw, bc - ac)

let mk_phase ms items (minor_words, major_collections) =
  { ms; items; minor_words; major_collections }

(* Compile + PLRG for the current topology, with the standard telemetry
   spans and GC brackets.  Raises [Compile.Compile_error] and
   [Deadline.Expired] to the caller. *)
let build_state t ~deadline =
  let telemetry = t.telemetry in
  let sp_compile = Telemetry.begin_span telemetry "compile" in
  let gc_compile0 = gc_snap () in
  let pb =
    try Compile.compile ?adjust:t.adjust ~telemetry ~deadline t.topo t.app
        t.leveling
    with e ->
      ignore (Telemetry.end_span telemetry sp_compile);
      raise e
  in
  let compile_gc = gc_delta gc_compile0 (gc_snap ()) in
  let total_actions = Array.length pb.Problem.actions in
  let compile_ms =
    Telemetry.end_span telemetry sp_compile
      ~attrs:
        [
          ("actions", Telemetry.Int total_actions);
          ("props", Telemetry.Int (Prop.count pb.Problem.props));
        ]
  in
  Log.info (fun m ->
      m "compiled: %d leveled actions, %d propositions (%d pruned dead)"
        total_actions
        (Prop.count pb.Problem.props)
        pb.Problem.pruned_actions);
  Registry.count t.metrics "analysis.pruned_actions" pb.Problem.pruned_actions;
  (* The search clock starts before the PLRG build — search_ms has always
     covered plrg + slrg + rg (Table 2 col 9, right). *)
  let t_search = Timer.start () in
  let sp_plrg = Telemetry.begin_span telemetry "plrg" in
  let gc_plrg0 = gc_snap () in
  let plrg =
    try Plrg.build ~telemetry ~deadline pb
    with e ->
      ignore (Telemetry.end_span telemetry sp_plrg);
      raise e
  in
  let plrg_gc = gc_delta gc_plrg0 (gc_snap ()) in
  let plrg_props, plrg_actions = Plrg.stats plrg in
  let plrg_ms =
    Telemetry.end_span telemetry sp_plrg
      ~attrs:
        [
          ("relevant_props", Telemetry.Int plrg_props);
          ("relevant_actions", Telemetry.Int plrg_actions);
          ("reachable", Telemetry.Bool (Plrg.goals_reachable plrg));
        ]
  in
  Log.info (fun m ->
      m "PLRG: %d relevant propositions, %d relevant actions, goals %s"
        plrg_props plrg_actions
        (if Plrg.goals_reachable plrg then "reachable" else "UNREACHABLE"));
  let st =
    {
      pb;
      plrg;
      oracle = None;
      compile_phase = mk_phase compile_ms total_actions compile_gc;
      plrg_phase = mk_phase plrg_ms plrg_props plrg_gc;
    }
  in
  (st, t_search)

(* ------------------------------------------------------------------ *)
(* Plan                                                                *)
(* ------------------------------------------------------------------ *)

(* Postmortem hook: when the telemetry handle carries a flight recorder
   with a dump path, persist the ring (the last N events, ending with the
   "plan" span's failure attribute and the final counter totals) so the
   moments before the failure survive for tools/trace_report. *)
let flight_dump t =
  match Telemetry.flight t.telemetry with
  | None -> ()
  | Some fl -> (
      match Telemetry.Flight.dump_to_path fl with
      | None -> ()
      | Some path ->
          Registry.count t.metrics "session.flight_dumps" 1;
          Log.info (fun m ->
              m "flight recorder: dumped last %d event(s) to %s"
                (Stdlib.min
                   (Telemetry.Flight.recorded fl)
                   (Telemetry.Flight.capacity fl))
                path))

(* Lifetime metrics recorded for every plan call, successful or not.
   Phase histograms only take samples from requests that actually ran
   the phase (warm requests report compile/plrg as 0 ms — not a latency
   observation, just absence of work). *)
let record_metrics t ~was_warm (report : report) =
  let m = t.metrics in
  Registry.count m "session.plans" 1;
  Registry.count m
    (if Result.is_ok report.result then "session.plans_ok"
     else "session.plans_failed")
    1;
  Registry.count m
    (if was_warm then "session.warm_plans" else "session.cold_plans")
    1;
  Registry.observe_ms m "plan.total_ms" report.stats.t_total_ms;
  Registry.observe_ms m "plan.search_ms" report.stats.t_search_ms;
  let phase_sample name (p : phase) =
    if p.ms > 0. then Registry.observe_ms m name p.ms
  in
  phase_sample "phase.compile_ms" report.phases.compile;
  phase_sample "phase.plrg_ms" report.phases.plrg;
  phase_sample "phase.slrg_ms" report.phases.slrg;
  phase_sample "phase.rg_ms" report.phases.rg;
  Registry.count m "session.invalidated_actions"
    report.phases.reuse.invalidated;
  Registry.count m "session.evicted_entries" report.phases.reuse.evicted;
  match report.result with
  | Ok p -> Registry.set_gauge m "plan.last_cost" p.Plan.cost_lb
  | Error _ -> ()

let plan_exn t =
  let config = t.config and telemetry = t.telemetry in
  let t_total = Timer.start () in
  let deadline =
    match config.deadline_ms with
    | None -> Deadline.none
    | Some ms -> Deadline.after_ms ms
  in
  let reuse =
    { invalidated = t.pending_invalidated; evicted = t.pending_evicted }
  in
  t.pending_invalidated <- 0;
  t.pending_evicted <- 0;
  let sp_plan = Telemetry.begin_span telemetry "plan" in
  let finish ?(phases = empty_phases) ?explanation ?certificate ?hquality
      result stats =
    Telemetry.flush_counters telemetry;
    let attrs =
      ("ok", Telemetry.Bool (Result.is_ok result))
      ::
      (match result with
      | Ok _ -> []
      | Error r ->
          (* The centrally-formatted failure line rides the trace so
             tools linking only the telemetry reader (trace_report) can
             print it without re-implementing the formatter. *)
          [ ("failure", Telemetry.Str (Format.asprintf "%a" pp_failure r)) ])
    in
    ignore (Telemetry.end_span telemetry sp_plan ~attrs);
    let stats = { stats with invalidated_actions = reuse.invalidated;
                  evicted_entries = reuse.evicted } in
    { result; phases = { phases with reuse }; stats; explanation; certificate;
      hquality }
  in
  let invalid msg =
    finish (Error (Invalid_spec msg)) { empty_stats with t_total_ms = Timer.elapsed_ms t_total }
  in
  match
    if config.validate_spec then
      match Validate.check t.topo t.app with
      | [] -> Ok ()
      | issues ->
          Error
            (String.concat "; "
               (List.map
                  (fun i -> Format.asprintf "%a" Validate.pp_issue i)
                  issues))
    else Ok ()
  with
  | Error msg -> invalid msg
  | Ok () -> (
      match
        match t.state with
        | Some st -> Ok (st, Timer.start ())
        | None -> (
            match build_state t ~deadline with
            | st, t_search ->
                t.state <- Some st;
                Ok (st, t_search)
            | exception Compile.Compile_error msg -> Error (Invalid_spec msg)
            | exception Deadline.Expired phase ->
                Error
                  (Deadline_exceeded { phase; expansions = 0; best_f = None }))
      with
      | Error reason ->
          finish (Error reason)
            { empty_stats with t_total_ms = Timer.elapsed_ms t_total }
      | Ok (st, t_search) ->
          let pb = st.pb and plrg = st.plrg in
          let total_actions = Array.length pb.Problem.actions in
          let plrg_props, plrg_actions = Plrg.stats plrg in
          (* Consume the pending compile/plrg phase timings: they belong
             to this report; later warm requests report them as 0 ms. *)
          let compile_phase = st.compile_phase
          and plrg_phase = st.plrg_phase in
          st.compile_phase <- { st.compile_phase with ms = 0.; minor_words = 0.; major_collections = 0 };
          st.plrg_phase <- { st.plrg_phase with ms = 0.; minor_words = 0.; major_collections = 0 };
          let base_stats search_ms slrg rg_stats =
            {
              total_actions;
              plrg_props;
              plrg_actions;
              slrg_nodes =
                (match slrg with Some (n, _, _, _, _, _, _) -> n | None -> 0);
              rg_created =
                (match rg_stats with
                | Some (s : Rg.stats) -> s.Rg.created
                | None -> 0);
              rg_open_left =
                (match rg_stats with Some s -> s.Rg.open_left | None -> 0);
              rg_expanded =
                (match rg_stats with Some s -> s.Rg.expanded | None -> 0);
              replay_pruned =
                (match rg_stats with Some s -> s.Rg.replay_pruned | None -> 0);
              final_replay_rejected =
                (match rg_stats with
                | Some s -> s.Rg.final_replay_rejected
                | None -> 0);
              rg_duplicates =
                (match rg_stats with Some s -> s.Rg.duplicates | None -> 0);
              order_repaired =
                (match rg_stats with Some s -> s.Rg.order_repaired | None -> 0);
              slrg_cache_hits =
                (match slrg with Some (_, h, _, _, _, _, _) -> h | None -> 0);
              slrg_suffix_harvested =
                (match slrg with Some (_, _, h, _, _, _, _) -> h | None -> 0);
              slrg_bound_promoted =
                (match slrg with Some (_, _, _, p, _, _, _) -> p | None -> 0);
              slrg_deferred =
                (match rg_stats with Some s -> s.Rg.slrg_deferred | None -> 0);
              slrg_saved =
                (match rg_stats with Some s -> s.Rg.slrg_saved | None -> 0);
              invalidated_actions = reuse.invalidated;
              evicted_entries = reuse.evicted;
              t_total_ms = Timer.elapsed_ms t_total;
              t_search_ms = search_ms;
            }
          in
          let base_phases ?(slrg_ms = 0.) ?(slrg_items = 0) ?(slrg_gc = (0., 0))
              ?(slrg_cache = no_cache) ?(rg_ms = 0.) ?(rg_items = 0)
              ?(rg_gc = (0., 0)) () =
            {
              compile = compile_phase;
              plrg = plrg_phase;
              slrg = mk_phase slrg_ms slrg_items slrg_gc;
              slrg_cache;
              rg = mk_phase rg_ms rg_items rg_gc;
              reuse;
            }
          in
          if not (Plrg.goals_reachable plrg) then begin
            let unreachable =
              Plrg.unreachable_goals plrg |> List.map (Problem.prop_label pb)
            in
            let certificate =
              if config.explain then Explain.unreachable_certificate pb plrg
              else None
            in
            finish
              ~phases:(base_phases ())
              ?certificate
              (Error (Unreachable_goal unreachable))
              (base_stats (Timer.elapsed_ms t_search) None None)
          end
          else begin
            let sp_slrg = Telemetry.begin_span telemetry "slrg" in
            let gc_slrg0 = gc_snap () in
            let slrg =
              match st.oracle with
              | Some o -> o
              | None ->
                  let o =
                    Slrg.create ~telemetry ~metrics:t.metrics
                      ~query_budget:config.slrg_query_budget pb plrg
                  in
                  st.oracle <- Some o;
                  o
            in
            (* Per-request reset: drop every budget-exhausted bound and
               refill the escalation pool (warm == cold hinges on it),
               and arm the deadline the queries poll. *)
            Slrg.begin_request slrg ~deadline;
            let slrg_create_gc = gc_delta gc_slrg0 (gc_snap ()) in
            let slrg_create_ms = Telemetry.end_span telemetry sp_slrg in
            (* Snapshot the oracle's cumulative counters: a warm session
               reports per-request deltas, which for a fresh oracle equal
               the totals the one-shot planner always reported. *)
            let nodes0 = Slrg.nodes_generated slrg
            and hits0 = Slrg.cache_hits slrg
            and harv0 = Slrg.suffix_harvested slrg
            and prom0 = Slrg.bound_promoted slrg
            and qms0 = Slrg.query_ms slrg
            and qgcw0 = Slrg.gc_minor_words slrg
            and qgcm0 = Slrg.gc_major_collections slrg in
            let sp_rg = Telemetry.begin_span telemetry "rg" in
            let gc_rg0 = gc_snap () in
            let profile = if config.profile_h then Some (ref []) else None in
            let result, rg_stats =
              Rg.search ~max_expansions:config.rg_max_expansions
                ~defer:config.defer_h ?profile ~telemetry ~metrics:t.metrics
                ~deadline pb plrg slrg
            in
            let rg_gc = gc_delta gc_rg0 (gc_snap ()) in
            let rg_ms =
              Telemetry.end_span telemetry sp_rg
                ~attrs:
                  [
                    ("created", Telemetry.Int rg_stats.Rg.created);
                    ("expanded", Telemetry.Int rg_stats.Rg.expanded);
                  ]
            in
            Log.info (fun m ->
                m
                  "RG: %d nodes created, %d expanded, %d pruned by replay, %d \
                   duplicates, %d final rejections"
                  rg_stats.Rg.created rg_stats.Rg.expanded
                  rg_stats.Rg.replay_pruned rg_stats.Rg.duplicates
                  rg_stats.Rg.final_replay_rejected);
            let slrg_counters =
              ( Slrg.nodes_generated slrg - nodes0,
                Slrg.cache_hits slrg - hits0,
                Slrg.suffix_harvested slrg - harv0,
                Slrg.bound_promoted slrg - prom0,
                Slrg.query_ms slrg -. qms0,
                Slrg.gc_minor_words slrg -. qgcw0,
                Slrg.gc_major_collections slrg - qgcm0 )
            in
            let ( slrg_nodes_d,
                  hits_d,
                  harv_d,
                  prom_d,
                  qms_d,
                  qgcw_d,
                  qgcm_d ) =
              slrg_counters
            in
            let stats =
              base_stats (Timer.elapsed_ms t_search) (Some slrg_counters)
                (Some rg_stats)
            in
            (* SLRG queries run lazily inside the RG search; their
               cumulative wall time and GC footprint are attributed to
               the slrg phase and are therefore a subset of the rg
               phase's own bracket. *)
            let phases =
              base_phases
                ~slrg_ms:(slrg_create_ms +. qms_d)
                ~slrg_items:slrg_nodes_d
                ~slrg_gc:(fst slrg_create_gc +. qgcw_d, snd slrg_create_gc + qgcm_d)
                ~slrg_cache:{ hits = hits_d; harvested = harv_d; promoted = prom_d }
                ~rg_ms ~rg_items:rg_stats.Rg.created ~rg_gc ()
            in
            let hquality =
              match profile with
              | None -> None
              | Some samples ->
                  let n = List.length !samples in
                  if Telemetry.enabled telemetry then begin
                    Telemetry.count telemetry "hq.path_nodes" n;
                    Telemetry.count telemetry "hq.wasted_expansions"
                      (Stdlib.max 0 (rg_stats.Rg.expanded - n))
                  end;
                  Some !samples
            in
            match result with
            | Rg.Solution (tail, metrics, cost_lb) ->
                Log.info (fun m ->
                    m "solution: %d actions, cost bound %g, realized %g"
                      (List.length tail) cost_lb metrics.Replay.realized_cost);
                let plan = { Plan.steps = tail; cost_lb; metrics } in
                let certified =
                  if config.certify then Certifier.run pb plan else Ok ()
                in
                (match certified with
                | Error reason ->
                    Registry.count t.metrics "analysis.certify_failed" 1;
                    finish ~phases ?hquality
                      (Error (Certification_failed reason))
                      stats
                | Ok () ->
                    if config.certify then
                      Registry.count t.metrics "analysis.certified_plans" 1;
                    let explanation =
                      if config.explain then
                        match Explain.explain pb plan with
                        | Ok e -> Some e
                        | Error _ -> None
                      else None
                    in
                    finish ~phases ?explanation ?hquality (Ok plan) stats)
            | Rg.Exhausted ->
                finish ~phases ?hquality (Error Resource_exhausted) stats
            | Rg.Budget_exceeded { expansions; best_f; frontier } ->
                let certificate =
                  match frontier with
                  | Some fr when config.explain ->
                      Some (Explain.frontier_certificate pb ~best_f fr)
                  | _ -> None
                in
                finish ~phases ?certificate ?hquality
                  (Error (Search_limit { expansions; best_f }))
                  stats
            | Rg.Deadline_reached { expansions; best_f; frontier } ->
                let certificate =
                  match frontier with
                  | Some fr when config.explain ->
                      Some (Explain.frontier_certificate pb ~best_f fr)
                  | _ -> None
                in
                finish ~phases ?certificate ?hquality
                  (Error
                     (Deadline_exceeded
                        { phase = "rg"; expansions; best_f = Some best_f }))
                  stats
          end)

let plan t =
  let was_warm = is_warm t in
  match plan_exn t with
  | report ->
      record_metrics t ~was_warm report;
      (* The flight recorder holds its peace through ordinary failures
         (invalid specs, provably unreachable goals): the report already
         explains those.  Budget and deadline cutoffs are the cases where
         the trace of the final moments carries information the report
         cannot. *)
      (match report.result with
      | Error (Search_limit _ | Deadline_exceeded _) -> flight_dump t
      | _ -> ());
      report
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      (* An escaping exception means some phase died unexpectedly: flush
         counter totals into the ring, dump, and re-raise. *)
      Telemetry.flush_counters t.telemetry;
      Registry.count t.metrics "session.plans" 1;
      Registry.count t.metrics "session.plans_failed" 1;
      flight_dump t;
      Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Update                                                              *)
(* ------------------------------------------------------------------ *)

let apply_delta topo = function
  | Set_node_resource { node; resource; value } ->
      Mutate.set_node_resource topo node resource value
  | Set_link_resource { link; resource; value } ->
      Mutate.set_link_resource topo link resource value
  | Remove_link { link } -> Mutate.remove_link topo link
  | Fail_node { node } -> Mutate.fail_node topo node

(* Touched sites of a delta, in terms the invalidation machinery wants:
   node indices and link ids.  Link ids are stable across every Mutate
   operation, so one touched set speaks for both the pre- and post-delta
   problem — a tombstoned link's id still names it in the old problem's
   actions, and never occurs in the new one. *)
let touched_of old_topo = function
  | Set_node_resource { node; _ } -> ([ node ], [])
  | Set_link_resource { link; _ } -> ([], [ link ])
  | Remove_link { link } -> ([], [ link ])
  | Fail_node { node } ->
      let incident =
        Array.to_list (Topology.links old_topo)
        |> List.filter_map (fun (l : Topology.link) ->
               let a, b = l.Topology.ends in
               if a = node || b = node then Some l.Topology.link_id else None)
      in
      ([ node ], incident)

let update t delta =
  let old_topo = t.topo in
  let new_topo = apply_delta old_topo delta in
  t.topo <- new_topo;
  Registry.count t.metrics "session.updates" 1;
  (match t.state with
  | None -> ()  (* nothing compiled yet; the next plan starts cold *)
  | Some st -> (
      let touched_nodes, touched_links = touched_of old_topo delta in
      let node_touched n = List.mem n touched_nodes in
      let link_touched l = List.mem l touched_links in
      let telemetry = t.telemetry in
      match
        let sp_compile = Telemetry.begin_span telemetry "compile" in
        let gc_compile0 = gc_snap () in
        match
          Compile.recompile ?adjust:t.adjust ~telemetry ~old:st.pb
            ~node_touched ~link_touched new_topo t.app t.leveling
        with
        | exception e ->
            ignore (Telemetry.end_span telemetry sp_compile);
            raise e
        | pb, invalidated ->
            let compile_gc = gc_delta gc_compile0 (gc_snap ()) in
            let compile_ms =
              Telemetry.end_span telemetry sp_compile
                ~attrs:
                  [
                    ("actions", Telemetry.Int (Array.length pb.Problem.actions));
                    ("invalidated", Telemetry.Int invalidated);
                  ]
            in
            (pb, invalidated, compile_ms, compile_gc)
      with
      | exception Compile.Compile_error _ ->
          (* The mutated spec no longer compiles (e.g. a pre-placed
             component's node lost its resources).  Drop the state; the
             next plan recompiles cold and reports the error exactly as a
             one-shot run would. *)
          t.state <- None
      | pb, invalidated, compile_ms, compile_gc ->
          if st.pb.Problem.init <> pb.Problem.init then
            (* A changed initial section changes set canonicalization
               itself: every interned handle is suspect.  Full flush. *)
            t.state <- None
          else begin
            let sp_plrg = Telemetry.begin_span telemetry "plrg" in
            let gc_plrg0 = gc_snap () in
            let plrg = Plrg.build ~telemetry pb in
            let plrg_gc = gc_delta gc_plrg0 (gc_snap ()) in
            let plrg_props, _ = Plrg.stats plrg in
            let plrg_ms = Telemetry.end_span telemetry sp_plrg in
            (* Taint on both sides of the delta: the old problem catches
               chains through removed actions, the new one chains through
               novel actions at the touched sites.  Stable ids mean the
               same touched predicates serve both. *)
            let _, dirty_old =
              Supports.taint st.pb ~node_touched ~link_touched
            in
            let _, dirty_new =
              Supports.taint pb ~node_touched ~link_touched
            in
            let dirty p = dirty_old.(p) || dirty_new.(p) in
            let evicted =
              match st.oracle with
              | Some o -> Slrg.refresh o pb plrg ~dirty
              | None -> 0
            in
            st.pb <- pb;
            st.plrg <- plrg;
            st.compile_phase <-
              mk_phase compile_ms (Array.length pb.Problem.actions) compile_gc;
            st.plrg_phase <- mk_phase plrg_ms plrg_props plrg_gc;
            t.pending_invalidated <- t.pending_invalidated + invalidated;
            t.pending_evicted <- t.pending_evicted + evicted;
            Log.info (fun m ->
                m "delta applied: %d actions invalidated, %d entries evicted"
                  invalidated evicted)
          end));
  t
