module I = Sekitei_util.Interval
module Topology = Sekitei_network.Topology
module Model = Sekitei_spec.Model

type source = {
  src_iface : int;
  src_node : int;
  src_interval : I.t;
  src_secondary : (string * float) list;
}

type t = {
  topo : Topology.t;
  app : Model.app;
  ifaces : Model.iface array;
  comps : Model.component array;
  iface_levels : I.t array array;
  iface_tags : Model.tag array;
  props : Prop.interner;
  actions : Action.t array;
  supports : int list array;
  init : bool array;
  init_consumed : (int * string * float) list;
  sources : source list;
  goal_props : int array;
  comp_allowed_node : int option array;
  iface_max : float array;
  pruned_actions : int;
  ground_actions : Action.t array;
}

let index_of name proj arr what =
  let rec go i =
    if i >= Array.length arr then
      invalid_arg (Printf.sprintf "Problem: unknown %s %s" what name)
    else if String.equal (proj arr.(i)) name then i
    else go (i + 1)
  in
  go 0

let iface_index t name =
  index_of name (fun (i : Model.iface) -> i.iface_name) t.ifaces "interface"

let comp_index t name =
  index_of name (fun (c : Model.component) -> c.comp_name) t.comps "component"

let primary t i = (Model.primary_property t.ifaces.(i)).prop_name

let node_cap t node r =
  try Topology.node_resource t.topo node r with Not_found -> 0.

let link_cap t link r =
  try Topology.link_resource t.topo link r with Not_found -> 0.

let action t id = t.actions.(id)

let prop_label t id =
  match Prop.of_id t.props id with
  | Prop.Placed (c, n) ->
      Printf.sprintf "placed(%s,%s)" t.comps.(c).comp_name
        (Topology.get_node t.topo n).node_name
  | Prop.Avail (i, n, l) ->
      Printf.sprintf "avail(%s,%s,L%d=%s)" t.ifaces.(i).iface_name
        (Topology.get_node t.topo n).node_name l
        (I.to_string t.iface_levels.(i).(l))

let pp_prop t fmt id = Format.pp_print_string fmt (prop_label t id)
