module Heap = Sekitei_util.Heap
module Iset = Set.Make (Int)
module Telemetry = Sekitei_telemetry.Telemetry

type stats = {
  created : int;
  expanded : int;
  open_left : int;
  replay_pruned : int;
  final_replay_rejected : int;
  duplicates : int;
}

type result =
  | Solution of Action.t list * Replay.metrics * float
  | Exhausted
  | Budget_exceeded of { expansions : int; best_f : float }

type node = {
  tail : Action.t list;  (** plan suffix, execution order *)
  set : int array;  (** canonical pending propositions *)
  g : float;
  acts : Iset.t;  (** action ids in [tail] (repetition guard) *)
  rs : Replay.rstate;
      (** optimistic replay state of the suffix, built incrementally in
          regression order (one [Replay.extend] per search edge) *)
}

(* Per-proposition relevant supporting actions, ascending id.  Filtering
   and sorting once here replaces the per-expansion Hashtbl + polymorphic
   sort of the naive implementation. *)
let supports_relevant (pb : Problem.t) plrg =
  Array.map
    (fun aids ->
      let arr =
        Array.of_list (List.filter (Plrg.action_relevant plrg) aids)
      in
      Array.sort Int.compare arr;
      arr)
    pb.supports

(* Distinct relevant actions supporting any pending proposition, ascending.
   [seen] is a scratch bitmap over action ids, cleared before return. *)
let candidate_actions supports_rel (seen : bool array) (set : int array) =
  let acc = ref [] in
  let count = ref 0 in
  Array.iter
    (fun p ->
      Array.iter
        (fun aid ->
          if not seen.(aid) then begin
            seen.(aid) <- true;
            acc := aid :: !acc;
            incr count
          end)
        supports_rel.(p))
    set;
  let out = Array.make !count 0 in
  List.iteri (fun i aid -> out.(i) <- aid) !acc;
  List.iter (fun aid -> seen.(aid) <- false) !acc;
  Array.sort Int.compare out;
  out

(* Duplicate-detection key: canonical pending set plus the set of action
   ids in the tail.  The repetition guard makes tails action *sets*, so
   two nodes agreeing on both components are permutations of one another
   — same g (sum of the same cost bounds), same logical obligations —
   and only one needs expanding.  Nodes agreeing on the pending set but
   built from different actions are NOT interchangeable: their replay
   states differ in feasibility, and collapsing them by g-value loses
   solutions (observed on the tiny-E and small-B levelings). *)
module Key = struct
  type t = int array * Iset.t

  let equal (s1, a1) (s2, a2) = Propset.equal s1 s2 && Iset.equal a1 a2

  let hash (s, a) =
    let h = ref (Propset.hash s) in
    Iset.iter (fun x -> h := ((!h * 31) + x) land max_int) a;
    !h
end

module Ktbl = Hashtbl.Make (Key)

(* Greedy re-sequencing of a candidate tail under from-init semantics.
   Duplicate detection collapses permuted tails, so of several orderings
   of one action set only a single tail may survive to final validation —
   and from-init replay is order-sensitive.  When that surviving order
   fails, try to execute the same action set in any feasible order:
   repeatedly pick the first remaining action that extends the from-init
   state.  The greedy choice is safe in practice because feasibility here
   is dominated by dataflow availability, which is monotone in the set of
   executed actions. *)
let repair_order (pb : Problem.t) tail =
  let rec go rs acc remaining =
    match remaining with
    | [] -> Some (List.rev acc, Replay.rstate_metrics pb rs)
    | _ -> (
        let rec try_each tried = function
          | [] -> None
          | a :: rest -> (
              match Replay.extend pb ~mode:Replay.From_init rs a with
              | Ok rs' -> Some (rs', a, List.rev_append tried rest)
              | Error _ -> try_each (a :: tried) rest)
        in
        match try_each [] remaining with
        | None -> None
        | Some (rs', a, remaining') -> go rs' (a :: acc) remaining')
  in
  go (Replay.initial pb) [] tail

let search ?(max_expansions = 500_000) ?(dedup = true)
    ?(telemetry = Telemetry.null) (pb : Problem.t) plrg slrg =
  let progress_interval = Telemetry.progress_interval telemetry in
  let created = ref 0
  and expanded = ref 0
  and replay_pruned = ref 0
  and final_rejected = ref 0
  and duplicates = ref 0 in
  let ctx = Propset.make_ctx pb in
  let supports_rel = supports_relevant pb plrg in
  let seen = Array.make (Array.length pb.actions) false in
  (* (pending set, action set) pairs already on the open list.  A node
     re-deriving a recorded pair is a permutation of the recorded one —
     a duplicate, pruned.  Order sensitivity of the final from-init
     validation is restored by [repair_order] below.  The empty set is
     exempt: candidate solutions go to validation individually, so a
     greedy repair failure on one permutation cannot mask another. *)
  let seen_keys = Ktbl.create 256 in
  let heap = Heap.create () in
  let push node =
    let h = Slrg.query_set slrg node.set in
    if Float.is_finite h then begin
      let keep =
        (not dedup)
        || Array.length node.set = 0
        ||
        let key = (node.set, node.acts) in
        if Ktbl.mem seen_keys key then begin
          incr duplicates;
          false
        end
        else begin
          Ktbl.replace seen_keys key ();
          true
        end
      in
      if keep then begin
        incr created;
        Heap.add heap ~prio:(node.g +. h) ~prio2:(-.node.g) node
      end
    end
  in
  push
    {
      tail = [];
      set = Propset.canonical_array pb pb.goal_props;
      g = 0.;
      acts = Iset.empty;
      rs = Replay.initial pb;
    };
  let finish result =
    if Telemetry.enabled telemetry then begin
      Telemetry.count telemetry "rg.created" !created;
      Telemetry.count telemetry "rg.expanded" !expanded;
      Telemetry.count telemetry "rg.replay_pruned" !replay_pruned;
      Telemetry.count telemetry "rg.final_replay_rejected" !final_rejected;
      Telemetry.count telemetry "rg.duplicates" !duplicates;
      Telemetry.gauge telemetry "rg.open_left" (float_of_int (Heap.length heap))
    end;
    ( result,
      {
        created = !created;
        expanded = !expanded;
        open_left = Heap.length heap;
        replay_pruned = !replay_pruned;
        final_replay_rejected = !final_rejected;
        duplicates = !duplicates;
      } )
  in
  let rec loop () =
    match Heap.pop heap with
    | None -> finish Exhausted
    | Some (node, f) ->
        if !expanded >= max_expansions then
          finish (Budget_exceeded { expansions = !expanded; best_f = f })
        else begin
          incr expanded;
          if progress_interval > 0 && !expanded mod progress_interval = 0 then
            Telemetry.progress telemetry "rg"
              [
                ("expansions", Telemetry.Int !expanded);
                ("open", Telemetry.Int (Heap.length heap));
                ("best_f", Telemetry.Float f);
                ("created", Telemetry.Int !created);
                ("duplicates", Telemetry.Int !duplicates);
              ];
          if Array.length node.set = 0 then begin
            (* Candidate solution: validate against the true initial map. *)
            match Replay.run ~telemetry pb ~mode:Replay.From_init node.tail with
            | Ok metrics -> finish (Solution (node.tail, metrics, node.g))
            | Error _ -> (
                (* The order that survived dedup may be infeasible even
                   though a permutation of the same multiset is fine. *)
                match
                  Telemetry.with_span telemetry "replay.repair" (fun () ->
                      repair_order pb node.tail)
                with
                | Some (tail', metrics) ->
                    finish (Solution (tail', metrics, node.g))
                | None ->
                    incr final_rejected;
                    loop ())
          end
          else begin
            Array.iter
              (fun aid ->
                if not (Iset.mem aid node.acts) then begin
                  let a = pb.actions.(aid) in
                  match Replay.extend pb ~mode:Replay.Regression node.rs a with
                  | Error _ -> incr replay_pruned
                  | Ok rs' ->
                      push
                        {
                          tail = a :: node.tail;
                          set = Propset.regress ctx node.set a;
                          g = node.g +. a.Action.cost_lb;
                          acts = Iset.add aid node.acts;
                          rs = rs';
                        }
                end)
              (candidate_actions supports_rel seen node.set);
            loop ()
          end
        end
  in
  loop ()
