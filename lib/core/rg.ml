module Heap = Sekitei_util.Heap
module Iset = Set.Make (Int)
module Telemetry = Sekitei_telemetry.Telemetry

type stats = {
  created : int;
  expanded : int;
  open_left : int;
  replay_pruned : int;
  final_replay_rejected : int;
  duplicates : int;
  order_repaired : int;
}

type hsample = { set_size : int; g : float; h_slrg : float; h_plrg : float }
type frontier = { f_tail : Action.t list; f_pending : int array }

type result =
  | Solution of Action.t list * Replay.metrics * float
  | Exhausted
  | Budget_exceeded of {
      expansions : int;
      best_f : float;
      frontier : frontier option;
    }

type node = {
  tail : Action.t list;  (** plan suffix, execution order *)
  set : int array;  (** canonical pending propositions *)
  g : float;
  acts : Iset.t;  (** action ids in [tail] (repetition guard) *)
  rs : Replay.rstate;
      (** optimistic replay state of the suffix, built incrementally in
          regression order (one [Replay.extend] per search edge) *)
  mutable chain : hsample list;
      (** under [?profile]: this node's h-quality sample consed onto its
          ancestors' (leaf first); [[]] when profiling is off.  Set by
          [push] once the SLRG heuristic is known. *)
}

(* Duplicate-detection key: canonical pending set plus the set of action
   ids in the tail.  The repetition guard makes tails action *sets*, so
   two nodes agreeing on both components are permutations of one another
   — same g (sum of the same cost bounds), same logical obligations —
   and only one needs expanding.  Nodes agreeing on the pending set but
   built from different actions are NOT interchangeable: their replay
   states differ in feasibility, and collapsing them by g-value loses
   solutions (observed on the tiny-E and small-B levelings). *)
module Key = struct
  type t = int array * Iset.t

  let equal (s1, a1) (s2, a2) = Propset.equal s1 s2 && Iset.equal a1 a2

  let hash (s, a) =
    let h = ref (Propset.hash s) in
    Iset.iter (fun x -> h := ((!h * 31) + x) land max_int) a;
    !h
end

module Ktbl = Hashtbl.Make (Key)

(* Re-sequencing of a candidate tail under from-init semantics.
   Duplicate detection collapses permuted tails, so of several orderings
   of one action set only a single tail may survive to final validation —
   and from-init replay is order-sensitive.  When that surviving order
   fails, search for a feasible execution order of the same action set by
   depth-first backtracking over the remaining actions (an earlier greedy
   first-feasible pick could dead-end and lose a solution that dedup had
   collapsed).  Remaining sets proven infeasible are memoized — replay
   feasibility of a remainder depends on the executed action {e set}, not
   its order (consumption sums and produced availabilities are
   order-independent) — which caps the search at one attempt per subset.
   [steps] holds the remaining [Replay.extend] budget and is decremented
   in place, so one pool can be shared across many repair attempts;
   within the budget the search is exhaustive — [Infeasible] is a proof
   that no order of the action set replays from init, while [Gave_up]
   only says the budget ran out first. *)
type repair_outcome =
  | Repaired of Action.t list * Replay.metrics
  | Infeasible
  | Gave_up

let repair_search ~steps (pb : Problem.t) tail =
  let arr = Array.of_list tail in
  let failed = Hashtbl.create 32 in
  let exception Out_of_budget in
  let rec go rs acc remaining =
    match remaining with
    | [] ->
        Some
          (List.rev_map (fun i -> arr.(i)) acc, Replay.rstate_metrics pb rs)
    | _ ->
        let key = List.sort Int.compare remaining in
        if Hashtbl.mem failed key then None
        else begin
          let rec try_each tried = function
            | [] -> None
            | i :: rest -> (
                if !steps <= 0 then raise Out_of_budget;
                decr steps;
                match Replay.extend pb ~mode:Replay.From_init rs arr.(i) with
                | Error _ -> try_each (i :: tried) rest
                | Ok rs' -> (
                    match go rs' (i :: acc) (List.rev_append tried rest) with
                    | Some _ as found -> found
                    | None -> try_each (i :: tried) rest))
          in
          match try_each [] remaining with
          | Some _ as found -> found
          | None ->
              Hashtbl.replace failed key ();
              None
        end
  in
  match go (Replay.initial pb) [] (List.init (Array.length arr) Fun.id) with
  | Some (tail', metrics) -> Repaired (tail', metrics)
  | None -> Infeasible
  | exception Out_of_budget -> Gave_up

let repair_order ?(max_steps = 20_000) pb tail =
  match repair_search ~steps:(ref max_steps) pb tail with
  | Repaired (tail', metrics) -> Some (tail', metrics)
  | Infeasible | Gave_up -> None

let search ?(max_expansions = 500_000) ?(dedup = true) ?profile
    ?(telemetry = Telemetry.null) (pb : Problem.t) plrg slrg =
  let progress_interval = Telemetry.progress_interval telemetry in
  let created = ref 0
  and expanded = ref 0
  and replay_pruned = ref 0
  and final_rejected = ref 0
  and duplicates = ref 0
  and order_repaired = ref 0 in
  let ctx = Propset.make_ctx pb in
  let supports = Supports.make pb plrg in
  (* (pending set, action set) pairs already on the open list.  A node
     re-deriving a recorded pair is a permutation of the recorded one —
     a duplicate, pruned.  Order sensitivity of the final from-init
     validation is restored by [repair_search] below.  The empty set is
     exempt: candidate solutions go to validation individually, so a
     repair budget exhaustion on one permutation cannot mask another. *)
  let seen_keys = Ktbl.create 256 in
  (* Action sets whose exhaustive repair proved no order replays from
     init.  Candidates are exempt from dedup, so the same multiset keeps
     resurfacing in permuted tails; its infeasibility is a property of
     the set alone, and the proof is reused instead of re-derived.
     Budget-exhausted repairs are never cached here. *)
  let repair_failed = Hashtbl.create 32 in
  (* Shared [Replay.extend] pool for all repair attempts of one search.
     Repair is opportunistic — skipping it only forgoes a recovery, never
     soundness — and on infeasible instances thousands of candidates can
     otherwise each pay an exhaustive re-sequencing that cannot succeed.
     Each attempt is additionally capped so one pathological tail cannot
     drain the pool alone. *)
  let repair_pool = ref 500_000 in
  let heap = Heap.create () in
  (* PLRG h_max of a pending set: the per-proposition heuristic the SLRG
     refines.  Recorded next to h_slrg so the profiler can attribute
     heuristic error to either phase. *)
  let h_plrg set =
    Array.fold_left (fun acc p -> Float.max acc (Plrg.cost plrg p)) 0. set
  in
  let push node =
    let h = Slrg.query_set slrg node.set in
    if Float.is_finite h then begin
      let keep =
        (not dedup)
        || Array.length node.set = 0
        ||
        let key = (node.set, node.acts) in
        if Ktbl.mem seen_keys key then begin
          incr duplicates;
          false
        end
        else begin
          Ktbl.replace seen_keys key ();
          true
        end
      in
      if keep then begin
        incr created;
        (match profile with
        | None -> ()
        | Some _ ->
            node.chain <-
              {
                set_size = Array.length node.set;
                g = node.g;
                h_slrg = h;
                h_plrg = h_plrg node.set;
              }
              :: node.chain);
        Heap.add heap ~prio:(node.g +. h) ~prio2:(-.node.g) node
      end
    end
  in
  push
    {
      tail = [];
      set = Propset.canonical_array pb pb.goal_props;
      g = 0.;
      acts = Iset.empty;
      rs = Replay.initial pb;
      chain = [];
    };
  let finish result =
    if Telemetry.enabled telemetry then begin
      Telemetry.count telemetry "rg.created" !created;
      Telemetry.count telemetry "rg.expanded" !expanded;
      Telemetry.count telemetry "rg.replay_pruned" !replay_pruned;
      Telemetry.count telemetry "rg.final_replay_rejected" !final_rejected;
      Telemetry.count telemetry "rg.duplicates" !duplicates;
      Telemetry.count telemetry "rg.order_repaired" !order_repaired;
      Telemetry.gauge telemetry "rg.open_left" (float_of_int (Heap.length heap))
    end;
    ( result,
      {
        created = !created;
        expanded = !expanded;
        open_left = Heap.length heap;
        replay_pruned = !replay_pruned;
        final_replay_rejected = !final_rejected;
        duplicates = !duplicates;
        order_repaired = !order_repaired;
      } )
  in
  let solution node tail metrics =
    (match profile with
    | None -> ()
    | Some out -> out := List.rev node.chain);
    finish (Solution (tail, metrics, node.g))
  in
  let rec loop () =
    match Heap.pop heap with
    | None -> finish Exhausted
    | Some (node, f) ->
        if !expanded >= max_expansions then
          finish
            (Budget_exceeded
               {
                 expansions = !expanded;
                 best_f = f;
                 frontier =
                   Some { f_tail = node.tail; f_pending = node.set };
               })
        else begin
          incr expanded;
          if progress_interval > 0 && !expanded mod progress_interval = 0 then
            Telemetry.progress telemetry "rg"
              [
                ("expansions", Telemetry.Int !expanded);
                ("open", Telemetry.Int (Heap.length heap));
                ("best_f", Telemetry.Float f);
                ("created", Telemetry.Int !created);
                ("duplicates", Telemetry.Int !duplicates);
              ];
          if Array.length node.set = 0 then begin
            (* Candidate solution: validate against the true initial map. *)
            let akey = Iset.elements node.acts in
            if Hashtbl.mem repair_failed akey then begin
              incr final_rejected;
              loop ()
            end
            else
              match
                Replay.run ~telemetry pb ~mode:Replay.From_init node.tail
              with
              | Ok metrics -> solution node node.tail metrics
              | Error _ when !repair_pool <= 0 ->
                  incr final_rejected;
                  loop ()
              | Error _ -> (
                  (* The order that survived dedup may be infeasible even
                     though a permutation of the same multiset is fine. *)
                  let steps = ref (min 20_000 !repair_pool) in
                  let budget = !steps in
                  let outcome =
                    Telemetry.with_span telemetry "replay.repair" (fun () ->
                        repair_search ~steps pb node.tail)
                  in
                  repair_pool := !repair_pool - (budget - !steps);
                  match outcome with
                  | Repaired (tail', metrics) ->
                      incr order_repaired;
                      solution node tail' metrics
                  | Infeasible ->
                      Hashtbl.replace repair_failed akey ();
                      incr final_rejected;
                      loop ()
                  | Gave_up ->
                      incr final_rejected;
                      loop ())
          end
          else begin
            Array.iter
              (fun aid ->
                if not (Iset.mem aid node.acts) then begin
                  let a = pb.actions.(aid) in
                  match Replay.extend pb ~mode:Replay.Regression node.rs a with
                  | Error _ -> incr replay_pruned
                  | Ok rs' ->
                      push
                        {
                          tail = a :: node.tail;
                          set = Propset.regress ctx node.set a;
                          g = node.g +. a.Action.cost_lb;
                          acts = Iset.add aid node.acts;
                          rs = rs';
                          chain = node.chain;
                        }
                end)
              (Supports.candidates supports node.set);
            loop ()
          end
        end
  in
  loop ()
