module Heap = Sekitei_util.Heap
module Iset = Set.Make (Int)
module Deadline = Sekitei_util.Deadline
module Telemetry = Sekitei_telemetry.Telemetry
module Registry = Sekitei_telemetry.Registry

type stats = {
  created : int;
  expanded : int;
  open_left : int;
  replay_pruned : int;
  final_replay_rejected : int;
  duplicates : int;
  order_repaired : int;
  slrg_deferred : int;
  slrg_saved : int;
}

type hsample = { set_size : int; g : float; h_slrg : float; h_plrg : float }
type frontier = { f_tail : Action.t list; f_pending : int array }

type result =
  | Solution of Action.t list * Replay.metrics * float
  | Exhausted
  | Budget_exceeded of {
      expansions : int;
      best_f : float;
      frontier : frontier option;
    }
  | Deadline_reached of {
      expansions : int;
      best_f : float;
      frontier : frontier option;
    }

type node = {
  tail : Action.t list;  (** plan suffix, execution order *)
  set : Propset.handle;  (** interned canonical pending propositions *)
  g : float;
  serial : int;
      (** creation order; the heap tie-break key, preserved across
          deferred re-insertions so the expansion order is identical to
          eager evaluation *)
  acts : Iset.t;  (** action ids in [tail] (repetition guard) *)
  rs : Replay.rstate;
      (** optimistic replay state of the suffix, built incrementally in
          regression order (one [Replay.extend] per search edge) *)
  mutable refined : bool;
      (** whether [h] is the SLRG value (true) or the cheap PLRG bound a
          deferred push queued the node with (false) *)
  mutable chain : hsample list;
      (** under [?profile]: this node's h-quality sample consed onto its
          ancestors' (leaf first); [[]] when profiling is off.  Set by
          [push]; the [h_slrg] column of the head sample is patched in
          at refinement time under deferred evaluation. *)
}

(* Duplicate-detection key: interned pending set plus the set of action
   ids in the tail.  The repetition guard makes tails action *sets*, so
   two nodes agreeing on both components are permutations of one another
   — same g (sum of the same cost bounds), same logical obligations —
   and only one needs expanding.  Nodes agreeing on the pending set but
   built from different actions are NOT interchangeable: their replay
   states differ in feasibility, and collapsing them by g-value loses
   solutions (observed on the tiny-E and small-B levelings).  With
   hash-consed sets the key hashes and compares one int per component
   probe instead of re-walking the array. *)
module Key = struct
  type t = int * Iset.t  (* interned set id, tail action set *)

  let equal ((s1 : int), a1) (s2, a2) = s1 = s2 && Iset.equal a1 a2

  let hash ((s : int), a) =
    let h = ref ((s * 0x01000193) land max_int) in
    Iset.iter (fun x -> h := ((!h * 31) + x) land max_int) a;
    !h
end

module Ktbl = Hashtbl.Make (Key)

(* Re-sequencing of a candidate tail under from-init semantics.
   Duplicate detection collapses permuted tails, so of several orderings
   of one action set only a single tail may survive to final validation —
   and from-init replay is order-sensitive.  When that surviving order
   fails, search for a feasible execution order of the same action set by
   depth-first backtracking over the remaining actions (an earlier greedy
   first-feasible pick could dead-end and lose a solution that dedup had
   collapsed).  Remaining sets proven infeasible are memoized — replay
   feasibility of a remainder depends on the executed action {e set}, not
   its order (consumption sums and produced availabilities are
   order-independent) — which caps the search at one attempt per subset.
   [steps] holds the remaining [Replay.extend] budget and is decremented
   in place, so one pool can be shared across many repair attempts;
   within the budget the search is exhaustive — [Infeasible] is a proof
   that no order of the action set replays from init, while [Gave_up]
   only says the budget ran out first. *)
type repair_outcome =
  | Repaired of Action.t list * Replay.metrics
  | Infeasible
  | Gave_up

let repair_search ~steps (pb : Problem.t) tail =
  let arr = Array.of_list tail in
  let failed = Hashtbl.create 32 in
  let exception Out_of_budget in
  let rec go rs acc remaining =
    match remaining with
    | [] ->
        Some
          (List.rev_map (fun i -> arr.(i)) acc, Replay.rstate_metrics pb rs)
    | _ ->
        let key = List.sort Int.compare remaining in
        if Hashtbl.mem failed key then None
        else begin
          let rec try_each tried = function
            | [] -> None
            | i :: rest -> (
                if !steps <= 0 then raise Out_of_budget;
                decr steps;
                match Replay.extend pb ~mode:Replay.From_init rs arr.(i) with
                | Error _ -> try_each (i :: tried) rest
                | Ok rs' -> (
                    match go rs' (i :: acc) (List.rev_append tried rest) with
                    | Some _ as found -> found
                    | None -> try_each (i :: tried) rest))
          in
          match try_each [] remaining with
          | Some _ as found -> found
          | None ->
              Hashtbl.replace failed key ();
              None
        end
  in
  match go (Replay.initial pb) [] (List.init (Array.length arr) Fun.id) with
  | Some (tail', metrics) -> Repaired (tail', metrics)
  | None -> Infeasible
  | exception Out_of_budget -> Gave_up

let repair_order ?(max_steps = 20_000) pb tail =
  match repair_search ~steps:(ref max_steps) pb tail with
  | Repaired (tail', metrics) -> Some (tail', metrics)
  | Infeasible | Gave_up -> None

let search ?(max_expansions = 500_000) ?(dedup = true) ?(defer = true)
    ?profile ?(telemetry = Telemetry.null) ?metrics ?(deadline = Deadline.none)
    (pb : Problem.t) (_plrg : Plrg.t) slrg =
  let progress_interval = Telemetry.progress_interval telemetry in
  let created = ref 0
  and expanded = ref 0
  and replay_pruned = ref 0
  and final_rejected = ref 0
  and duplicates = ref 0
  and order_repaired = ref 0
  and deferred = ref 0
  and refined_count = ref 0 in
  (* The SLRG oracle owns the hash-consing ctx and the supports table;
     sharing them keeps handle ids consistent across the two phases and
     lets the regression memo and candidate cache pay off twice. *)
  let ctx = Slrg.ctx slrg in
  let supports = Slrg.supports slrg in
  (* (pending set, action set) pairs already on the open list.  A node
     re-deriving a recorded pair is a permutation of the recorded one —
     a duplicate, pruned.  Order sensitivity of the final from-init
     validation is restored by [repair_search] below.  The empty set is
     exempt: candidate solutions go to validation individually, so a
     repair budget exhaustion on one permutation cannot mask another. *)
  let seen_keys = Ktbl.create 256 in
  (* Action sets whose exhaustive repair proved no order replays from
     init.  Candidates are exempt from dedup, so the same multiset keeps
     resurfacing in permuted tails; its infeasibility is a property of
     the set alone, and the proof is reused instead of re-derived.
     Budget-exhausted repairs are never cached here. *)
  let repair_failed = Hashtbl.create 32 in
  (* Shared [Replay.extend] pool for all repair attempts of one search.
     Repair is opportunistic — skipping it only forgoes a recovery, never
     soundness — and on infeasible instances thousands of candidates can
     otherwise each pay an exhaustive re-sequencing that cannot succeed.
     Each attempt is additionally capped so one pathological tail cannot
     drain the pool alone. *)
  let repair_pool = ref 500_000 in
  let heap = Heap.create () in
  (* PLRG h_max of a pending set: the per-proposition heuristic the SLRG
     refines.  Under deferred evaluation it is also the cheap first-stage
     bound successors are queued with; served from the oracle's per-id
     memo, which the oracle's own A* expansions share. *)
  let h_plrg (h : Propset.handle) = Slrg.h_max_h slrg h in
  let push node =
    (* Two-stage heuristic evaluation (the deferred-evaluation trick from
       satisficing planners, applied admissibly): queue the successor
       with the cheap PLRG h_max bound and run the expensive SLRG oracle
       only when the node reaches the top of the heap — most generated
       nodes never do, and never pay an oracle query.  Since the SLRG h
       dominates the PLRG h, the refined f only grows; re-inserting the
       popped node under its refined value (below) is sound A*. *)
    let h =
      if defer && Array.length node.set.Propset.set > 0 then h_plrg node.set
      else begin
        node.refined <- true;
        Slrg.query_h slrg node.set
      end
    in
    if Float.is_finite h then begin
      let keep =
        (not dedup)
        || Array.length node.set.Propset.set = 0
        ||
        let key = (node.set.Propset.id, node.acts) in
        if Ktbl.mem seen_keys key then begin
          incr duplicates;
          false
        end
        else begin
          Ktbl.replace seen_keys key ();
          true
        end
      in
      if keep then begin
        incr created;
        if not node.refined then incr deferred;
        (match profile with
        | None -> ()
        | Some _ ->
            node.chain <-
              {
                set_size = Array.length node.set.Propset.set;
                g = node.g;
                h_slrg = (if node.refined then h else Float.nan);
                h_plrg = h_plrg node.set;
              }
              :: node.chain);
        Heap.add heap ~prio:(node.g +. h) ~prio2:(-.node.g) ~seq:node.serial
          node
      end
    end
  in
  let next_serial = ref 0 in
  let mk ~tail ~set ~g ~acts ~rs ~chain =
    let serial = !next_serial in
    incr next_serial;
    { tail; set; g; serial; acts; rs; refined = false; chain }
  in
  push
    (mk ~tail:[]
       ~set:(Propset.intern ctx (Propset.canonical_array pb pb.goal_props))
       ~g:0. ~acts:Iset.empty
       ~rs:(Replay.initial pb)
       ~chain:[]);
  let finish result =
    if Telemetry.enabled telemetry then begin
      Telemetry.count telemetry "rg.created" !created;
      Telemetry.count telemetry "rg.expanded" !expanded;
      Telemetry.count telemetry "rg.replay_pruned" !replay_pruned;
      Telemetry.count telemetry "rg.final_replay_rejected" !final_rejected;
      Telemetry.count telemetry "rg.duplicates" !duplicates;
      Telemetry.count telemetry "rg.order_repaired" !order_repaired;
      Telemetry.count telemetry "rg.slrg_deferred" !deferred;
      Telemetry.count telemetry "rg.slrg_saved" (!deferred - !refined_count);
      Telemetry.gauge telemetry "rg.open_left" (float_of_int (Heap.length heap))
    end;
    (match metrics with
    | Some m ->
        (* Lifetime search-volume counters in the always-on registry; one
           batch of records per search, so name resolution is fine. *)
        Registry.count m "rg.searches" 1;
        Registry.count m "rg.created" !created;
        Registry.count m "rg.expanded" !expanded;
        Registry.count m "rg.duplicates" !duplicates;
        Registry.set_gauge m "rg.open_left" (float_of_int (Heap.length heap))
    | None -> ());
    ( result,
      {
        created = !created;
        expanded = !expanded;
        open_left = Heap.length heap;
        replay_pruned = !replay_pruned;
        final_replay_rejected = !final_rejected;
        duplicates = !duplicates;
        order_repaired = !order_repaired;
        slrg_deferred = !deferred;
        slrg_saved = !deferred - !refined_count;
      } )
  in
  let solution node tail metrics =
    (match profile with
    | None -> ()
    | Some out -> out := List.rev node.chain);
    finish (Solution (tail, metrics, node.g))
  in
  let rec loop () =
    match Heap.pop heap with
    | None -> finish Exhausted
    | Some (node, f) ->
        if not node.refined then begin
          (* Second heuristic stage, on pop: refine the cheap bound with
             the SLRG oracle and re-insert unless the node is still the
             frontier minimum under the full (f, -g, serial) order — the
             serial is preserved, so ties resolve exactly as if the node
             had been queued with the refined value from the start. *)
          incr refined_count;
          let h = Slrg.query_h slrg node.set in
          if not (Float.is_finite h) then loop ()
          else begin
            node.refined <- true;
            (match profile with
            | None -> ()
            | Some _ -> (
                match node.chain with
                | top :: rest when Float.is_nan top.h_slrg ->
                    node.chain <- { top with h_slrg = h } :: rest
                | _ -> ()));
            let f' = node.g +. h in
            let still_min =
              f' = f
              ||
              match Heap.peek heap with
              | None -> true
              | Some (_, top_f) -> f' < top_f
            in
            if still_min then process node f'
            else begin
              Heap.add heap ~prio:f' ~prio2:(-.node.g) ~seq:node.serial node;
              loop ()
            end
          end
        end
        else process node f
  and process node f =
    if !expanded >= max_expansions then
      finish
        (Budget_exceeded
           {
             expansions = !expanded;
             best_f = f;
             frontier =
               Some { f_tail = node.tail; f_pending = node.set.Propset.set };
           })
    else if Deadline.expired deadline then
      (* Same evidence as budget exhaustion: the popped node's f is the
         frontier minimum, an admissible lower bound on any plan a longer
         search could still find. *)
      finish
        (Deadline_reached
           {
             expansions = !expanded;
             best_f = f;
             frontier =
               Some { f_tail = node.tail; f_pending = node.set.Propset.set };
           })
    else begin
      incr expanded;
      if progress_interval > 0 && !expanded mod progress_interval = 0 then
        Telemetry.progress telemetry "rg"
          [
            ("expansions", Telemetry.Int !expanded);
            ("open", Telemetry.Int (Heap.length heap));
            ("best_f", Telemetry.Float f);
            ("created", Telemetry.Int !created);
            ("duplicates", Telemetry.Int !duplicates);
          ];
      if Array.length node.set.Propset.set = 0 then begin
        (* Candidate solution: validate against the true initial map. *)
        let akey = Iset.elements node.acts in
        if Hashtbl.mem repair_failed akey then begin
          incr final_rejected;
          loop ()
        end
        else
          match
            Replay.run ~telemetry pb ~mode:Replay.From_init node.tail
          with
          | Ok metrics -> solution node node.tail metrics
          | Error _ when !repair_pool <= 0 ->
              incr final_rejected;
              loop ()
          | Error _ -> (
              (* The order that survived dedup may be infeasible even
                 though a permutation of the same multiset is fine. *)
              let steps = ref (min 20_000 !repair_pool) in
              let budget = !steps in
              let outcome =
                Telemetry.with_span telemetry "replay.repair" (fun () ->
                    repair_search ~steps pb node.tail)
              in
              repair_pool := !repair_pool - (budget - !steps);
              match outcome with
              | Repaired (tail', metrics) ->
                  incr order_repaired;
                  solution node tail' metrics
              | Infeasible ->
                  Hashtbl.replace repair_failed akey ();
                  incr final_rejected;
                  loop ()
              | Gave_up ->
                  incr final_rejected;
                  loop ())
      end
      else begin
        Array.iter
          (fun aid ->
            if not (Iset.mem aid node.acts) then begin
              let a = pb.actions.(aid) in
              match Replay.extend pb ~mode:Replay.Regression node.rs a with
              | Error _ -> incr replay_pruned
              | Ok rs' ->
                  push
                    (mk
                       ~tail:(a :: node.tail)
                       ~set:(Propset.regress_h ctx node.set a)
                       ~g:(node.g +. a.Action.cost_lb)
                       ~acts:(Iset.add aid node.acts)
                       ~rs:rs' ~chain:node.chain)
            end)
          (Supports.candidates_h supports node.set);
        loop ()
      end
    end
  in
  loop ()
