module Heap = Sekitei_util.Heap
module H = Propset.Tbl
module Timer = Sekitei_util.Timer
module Telemetry = Sekitei_telemetry.Telemetry

(* A budget-exhausted query caches its admissible bound together with the
   expansion budget it spent; a re-query re-runs the A* with that budget
   doubled (geometric, so total work per set stays linear in the final
   budget) until the answer is exact or the per-set cap is reached, after
   which the bound is served from cache like a solved entry. *)
let escalation_cap = 32

(* Escalated re-runs additionally draw on one shared pool of
   [escalation_pool_factor * query_budget] expansions per oracle.  Like
   order repair in the RG, escalation is opportunistic — serving the
   cached bound is always sound — and on hard instances thousands of
   distinct exhausted sets would otherwise each escalate to the per-set
   cap, multiplying total search work for bounds the caller never
   benefits from. *)
let escalation_pool_factor = 100

(* Adaptive bound harvesting is skipped when a solve closed more sets
   than this: huge closed sets (escalated runs on hard instances) are
   dominated by interior sets no later query revisits, and harvesting
   them bloats [bounds] — taxing the per-successor seeding lookup of
   every subsequent query — for no pruning in return. *)
let harvest_cap = 4096

type t = {
  problem : Problem.t;
  plrg : Plrg.t;
  ctx : Propset.ctx;
  supports : Supports.t;
  query_budget : int;
  solved : float H.t;  (** exact set costs *)
  bounds : (float * int) H.t;
      (** per budget-exhausted set: the admissible lower bound found so
          far and the expansion budget spent finding it (drives the
          doubled-budget escalation on re-query) *)
  mutable generated : int;
  mutable escalation_pool : int;
      (** remaining expansions escalated re-runs may spend, shared across
          all sets of this oracle *)
  mutable cache_hits : int;
  mutable suffix_harvested : int;
  mutable bound_promoted : int;
  telemetry : Telemetry.t;
  mutable query_ms : float;
      (** cumulative wall time of non-memoized queries (always tracked —
          the planner's phase report needs it even without telemetry) *)
}

let create ?(telemetry = Telemetry.null) ?(query_budget = 500)
    (problem : Problem.t) plrg =
  {
    problem;
    plrg;
    ctx = Propset.make_ctx problem;
    supports = Supports.make problem plrg;
    query_budget;
    solved = H.create 256;
    bounds = H.create 256;
    generated = 0;
    escalation_pool = escalation_pool_factor * query_budget;
    cache_hits = 0;
    suffix_harvested = 0;
    bound_promoted = 0;
    telemetry;
    query_ms = 0.;
  }

let h_max t set =
  Array.fold_left (fun acc p -> Float.max acc (Plrg.cost t.plrg p)) 0. set

(* Suffix-cost harvesting: at exact termination with optimum [cost], every
   set on the recorded best complete path satisfies
   [cost_to_empty set = cost - g(set)] — going through the set is one way
   to complete (so [cost <= g + cost_to_empty]) and the recorded suffix
   achieves exactly [cost - g].  One solve thus fills the [solved] cache
   for the whole chain.  [g_best] may exceed the optimal prefix cost on
   degenerate reopening orders, in which case the harvested value is an
   underestimate — still a sound lower bound, never an overestimate. *)
let harvest t ~root ~cost ~g_best ~parent from =
  match from with
  | None -> ()
  | Some s0 ->
      let rec walk s =
        if Array.length s > 0 && not (Propset.equal s root) then begin
          (match H.find_opt g_best s with
          | None -> ()
          | Some g ->
              let c = cost -. g in
              (* h_max is consistent under regression, hence admissible
                 against the exact suffix cost at every chain node. *)
              assert (h_max t s <= c +. 1e-6);
              if not (H.mem t.solved s) then begin
                H.replace t.solved s c;
                t.suffix_harvested <- t.suffix_harvested + 1;
                Telemetry.count t.telemetry "slrg.suffix_harvested" 1;
                if H.mem t.bounds s then begin
                  H.remove t.bounds s;
                  t.bound_promoted <- t.bound_promoted + 1;
                  Telemetry.count t.telemetry "slrg.bound_promoted" 1
                end
              end);
          match H.find_opt parent s with Some p -> walk p | None -> ()
        end
        else
          match H.find_opt parent s with Some p -> walk p | None -> ()
      in
      walk s0

(* One A* regression solve of [root] under [budget] expansions.  [prior]
   is the cached (bound, spent) pair from an earlier exhausted run, folded
   into the root heuristic and the returned bound. *)
let run_query t (root : int array) ~prior ~budget =
  let pb = t.problem in
  let t0 = Timer.start () in
  let sp =
    if Telemetry.enabled t.telemetry then
      Some (Telemetry.begin_span t.telemetry "slrg.query")
    else None
  in
  let expansions = ref 0 in
  let cost =
    let h_root =
      let h = h_max t root in
      match prior with Some (b, _) -> Float.max h b | None -> h
    in
    if not (Float.is_finite h_root) then begin
      H.replace t.solved root Float.infinity;
      Float.infinity
    end
    else begin
      let g_best = H.create 64 in
      let parent = H.create 64 in
      let heap = Heap.create () in
      H.replace g_best root 0.;
      Heap.add heap ~prio:h_root (root, 0.);
      t.generated <- t.generated + 1;
      let best_complete = ref Float.infinity in
      (* The g_best key the best complete path descends from; its parent
         chain is harvested on exact termination. *)
      let complete_from = ref None in
      let result = ref None in
      let exact = ref true in
      (* Bound seeding can make the heuristic inconsistent, and after a
         node reopening [g_best] values need not telescope along the
         parent chain any more — the root answer stays exact, but suffix
         harvesting is skipped for that (rare) run. *)
      let reopened = ref false in
      while !result = None do
        match Heap.peek heap with
        | None ->
            result := Some !best_complete
            (* infinity when nothing completed *)
        | Some ((set, g), f) ->
            if !best_complete <= f then result := Some !best_complete
            else if !expansions >= budget then begin
              (* Budget exhausted: the open minimum is still an
                 admissible bound, but not exact. *)
              exact := false;
              result := Some (Float.min !best_complete f)
            end
            else begin
              ignore (Heap.pop heap);
              let stale =
                match H.find_opt g_best set with
                | Some g' -> g' < g -. 1e-12
                | None -> false
              in
              if not stale then begin
                incr expansions;
                if Array.length set = 0 then begin
                  if g < !best_complete then begin
                    best_complete := g;
                    complete_from := Some set
                  end;
                  result := Some !best_complete
                end
                else
                  Array.iter
                    (fun aid ->
                      let a = pb.actions.(aid) in
                      let set' = Propset.regress t.ctx set a in
                      let g' = g +. a.Action.cost_lb in
                      match H.find_opt t.solved set' with
                      | Some rest ->
                          if g' +. rest < !best_complete then begin
                            best_complete := g' +. rest;
                            complete_from := Some set
                          end
                      | None -> (
                          let h = h_max t set' in
                          if Float.is_finite h then
                            (* Solved-subset seeding: a cached partial
                               bound for the successor strengthens its
                               f-value (still admissible), so exhausted
                               earlier queries sharpen later ones instead
                               of being discarded. *)
                            let h =
                              match H.find_opt t.bounds set' with
                              | Some (b, _) -> Float.max h b
                              | None -> h
                            in
                            (* Dominated successors (f no better than a
                               completion already in hand) can never
                               improve the answer; with the harvested
                               bounds folded into h this prunes most of
                               the frontier of a re-query. *)
                            if g' +. h < !best_complete then
                              match H.find_opt g_best set' with
                              | Some g_old when g_old <= g' +. 1e-12 -> ()
                              | existing ->
                                  if Option.is_some existing then
                                    reopened := true;
                                  H.replace g_best set' g';
                                  H.replace parent set' set;
                                  t.generated <- t.generated + 1;
                                  Heap.add heap ~prio:(g' +. h) (set', g')))
                    (Supports.candidates t.supports set)
              end
            end
      done;
      let cost = Option.get !result in
      if !exact then begin
        if not !reopened then
          harvest t ~root ~cost ~g_best ~parent !complete_from;
        (* Adaptive-A*-style bound harvesting: all queries regress toward
           the same target (the empty set), so cost-to-empty is one shared
           function across queries.  For every set touched by this exact
           solve, [cost - g] lower-bounds its cost-to-empty — a completion
           cheaper than that would contradict the optimality of [cost],
           and any recorded g only overestimates the optimal prefix.
           Folded into later queries' f-values by bound seeding, this is
           what makes correlated RG queries terminate almost immediately. *)
        if Float.is_finite cost && H.length g_best <= harvest_cap then
          H.iter
            (fun s g ->
              let b = cost -. g in
              if b > 0. && not (H.mem t.solved s) && b > h_max t s then
                match H.find_opt t.bounds s with
                | Some (b0, _) when b0 >= b -> ()
                | Some (_, spent) -> H.replace t.bounds s (b, spent)
                | None -> H.replace t.bounds s (b, 0))
            g_best;
        H.replace t.solved root cost;
        if H.mem t.bounds root then begin
          H.remove t.bounds root;
          t.bound_promoted <- t.bound_promoted + 1;
          Telemetry.count t.telemetry "slrg.bound_promoted" 1
        end;
        cost
      end
      else begin
        (* Keep the strongest admissible bound seen for this set and the
           budget this run spent, so the next re-query escalates. *)
        let cost =
          match prior with Some (b, _) -> Float.max b cost | None -> cost
        in
        H.replace t.bounds root (cost, budget);
        cost
      end
    end
  in
  if prior <> None then t.escalation_pool <- t.escalation_pool - !expansions;
  t.query_ms <- t.query_ms +. Timer.elapsed_ms t0;
  (match sp with
  | Some sp ->
      ignore
        (Telemetry.end_span t.telemetry sp
           ~attrs:
             [
               ("set", Telemetry.Int (Array.length root));
               ("expansions", Telemetry.Int !expansions);
               ("cost", Telemetry.Float cost);
             ])
  | None -> ());
  cost

let cache_hit t =
  t.cache_hits <- t.cache_hits + 1;
  Telemetry.count t.telemetry "slrg.cache_hit" 1

(* [root] must be canonical (the RG passes its nodes' sets through
   unchanged; results are memoized by that same canonical key). *)
let query_set t (root : int array) =
  if Array.length root = 0 then 0.
  else
    match H.find_opt t.solved root with
    | Some c ->
        cache_hit t;
        c
    | None -> (
        match H.find_opt t.bounds root with
        | Some (b, spent)
          when spent >= escalation_cap * t.query_budget
               || t.escalation_pool <= 0 ->
            (* Escalation cap or shared pool exhausted: serve the bound
               like a cache entry so pathological sets cannot dominate
               planning time. *)
            cache_hit t;
            b
        | Some (_, spent) as prior ->
            run_query t root ~prior ~budget:(max t.query_budget (2 * spent))
        | None -> run_query t root ~prior:None ~budget:t.query_budget)

let query t props = query_set t (Propset.canonical t.problem props)
let nodes_generated t = t.generated
let query_ms t = t.query_ms
let cache_hits t = t.cache_hits
let suffix_harvested t = t.suffix_harvested
let bound_promoted t = t.bound_promoted

let iter_solved t f = H.iter f t.solved
