module Heap = Sekitei_util.Heap
module Itbl = Hashtbl.Make (Int)
module Timer = Sekitei_util.Timer
module Deadline = Sekitei_util.Deadline
module Telemetry = Sekitei_telemetry.Telemetry
module Registry = Sekitei_telemetry.Registry

(* A budget-exhausted query caches its admissible bound together with the
   expansion budget it spent; a re-query re-runs the A* with that budget
   doubled (geometric, so total work per set stays linear in the final
   budget) until the answer is exact or the per-set cap is reached, after
   which the bound is served from cache like a solved entry. *)
let escalation_cap = 32

(* Escalated re-runs additionally draw on one shared pool of
   [escalation_pool_factor * query_budget] expansions per oracle.  Like
   order repair in the RG, escalation is opportunistic — serving the
   cached bound is always sound — and on hard instances thousands of
   distinct exhausted sets would otherwise each escalate to the per-set
   cap, multiplying total search work for bounds the caller never
   benefits from. *)
let escalation_pool_factor = 100

(* Adaptive bound harvesting is skipped when a solve closed more sets
   than this: huge closed sets (escalated runs on hard instances) are
   dominated by interior sets no later query revisits, and harvesting
   them bloats [bounds] — taxing the per-successor seeding lookup of
   every subsequent query — for no pruning in return. *)
let harvest_cap = 4096

(* All caches are keyed by the dense interned-set id ({!Propset.handle}).
   Interned ids are dense, so the three persistent caches (exact costs,
   exhausted bounds, PLRG h_max) are flat arrays indexed by id with NaN
   as the absent sentinel: the per-successor probes of the A* inner loop
   — the hottest reads of the whole planner — are plain array loads, no
   hashing and no option allocation.  The FNV walk over the set elements
   runs once per distinct set, inside the interner. *)
type t = {
  mutable problem : Problem.t;
  mutable plrg : Plrg.t;
  ctx : Propset.ctx;
  mutable supports : Supports.t;
  query_budget : int;
  mutable deadline : Deadline.t;
      (** per-request cancellation token (see {!begin_request}); polled
          every 64 expansions and treated exactly like budget exhaustion,
          so an interrupted query still records an admissible bound *)
  mutable solved_val : float array;
      (** exact set cost by interned id, NaN = not solved (infinity is a
          legitimate solved value: logically infeasible set) *)
  mutable solved_ids : int list;  (** ids with a solved entry, unordered *)
  mutable bound_val : float array;
      (** per budget-exhausted set id: the admissible lower bound found
          so far, NaN = no bound *)
  mutable bound_spent : int array;
      (** expansion budget spent finding [bound_val] (drives the
          doubled-budget escalation on re-query) *)
  mutable generated : int;
  mutable escalation_pool : int;
      (** remaining expansions escalated re-runs may spend, shared across
          all sets of this oracle *)
  mutable cache_hits : int;
  mutable suffix_harvested : int;
  mutable bound_promoted : int;
  telemetry : Telemetry.t;
  hit_ctr : Telemetry.counter;
      (** pre-resolved cell for the per-hit bump — the one counter on the
          memoized fast path, where a per-call name lookup would show *)
  harv_ctr : Telemetry.counter;
  prom_ctr : Telemetry.counter;
  m_queries : Registry.counter option;
  m_hits : Registry.counter option;
  m_query_ms : Registry.histogram option;
      (** per-query latency distribution in the always-on registry *)
  mutable query_ms : float;
      (** cumulative wall time of non-memoized queries (always tracked —
          the planner's phase report needs it even without telemetry) *)
  mutable gc_minor_words : float;
      (** cumulative [Gc.minor_words] allocated inside non-memoized
          queries (phase-level allocation accounting) *)
  mutable gc_major_collections : int;
  mutable hmax_by_id : float array;
      (** PLRG h_max per interned set id, [nan] = not yet computed — the
          same sets recur across queries (and in the RG push path), so
          the per-proposition sweep runs once per distinct set *)
}

let create ?(telemetry = Telemetry.null) ?metrics ?(query_budget = 500)
    (problem : Problem.t) plrg =
  {
    problem;
    plrg;
    ctx = Propset.make_ctx problem;
    supports = Supports.make problem plrg;
    query_budget;
    deadline = Deadline.none;
    solved_val = Array.make 1024 Float.nan;
    solved_ids = [];
    bound_val = Array.make 1024 Float.nan;
    bound_spent = Array.make 1024 0;
    generated = 0;
    escalation_pool = escalation_pool_factor * query_budget;
    cache_hits = 0;
    suffix_harvested = 0;
    bound_promoted = 0;
    telemetry;
    hit_ctr = Telemetry.counter telemetry "slrg.cache_hit";
    harv_ctr = Telemetry.counter telemetry "slrg.suffix_harvested";
    prom_ctr = Telemetry.counter telemetry "slrg.bound_promoted";
    m_queries = Option.map (fun m -> Registry.counter m "slrg.queries") metrics;
    m_hits = Option.map (fun m -> Registry.counter m "slrg.cache_hits") metrics;
    m_query_ms =
      Option.map (fun m -> Registry.histogram m "slrg.query_ms") metrics;
    query_ms = 0.;
    gc_minor_words = 0.;
    gc_major_collections = 0;
    hmax_by_id = Array.make 1024 Float.nan;
  }

let ctx t = t.ctx
let supports t = t.supports

(* Dense-id cache plumbing: reads tolerate ids beyond the current
   capacity (absent), writes grow geometrically. *)
let[@inline] dget arr id = if id < Array.length arr then arr.(id) else Float.nan

let grow_float arr cap =
  let grown = Array.make cap Float.nan in
  Array.blit arr 0 grown 0 (Array.length arr);
  grown

let grow_int arr cap =
  let grown = Array.make cap 0 in
  Array.blit arr 0 grown 0 (Array.length arr);
  grown

let[@inline] solved t id = dget t.solved_val id
let[@inline] bound t id = dget t.bound_val id

let set_solved t id c =
  let n = Array.length t.solved_val in
  if id >= n then
    t.solved_val <- grow_float t.solved_val (Stdlib.max (2 * n) (id + 1024));
  if Float.is_nan t.solved_val.(id) then t.solved_ids <- id :: t.solved_ids;
  t.solved_val.(id) <- c

let set_bound t id b spent =
  let n = Array.length t.bound_val in
  if id >= n then begin
    let cap = Stdlib.max (2 * n) (id + 1024) in
    t.bound_val <- grow_float t.bound_val cap;
    t.bound_spent <- grow_int t.bound_spent cap
  end;
  t.bound_val.(id) <- b;
  t.bound_spent.(id) <- spent

let clear_bound t id =
  if id < Array.length t.bound_val then t.bound_val.(id) <- Float.nan

let h_max t (set : int array) =
  let h = ref 0. in
  for i = 0 to Array.length set - 1 do
    let c = Plrg.cost t.plrg set.(i) in
    if c > !h then h := c
  done;
  !h

let h_max_h t (handle : Propset.handle) =
  let id = handle.Propset.id in
  let n = Array.length t.hmax_by_id in
  if id >= n then
    t.hmax_by_id <- grow_float t.hmax_by_id (Stdlib.max (2 * n) (id + 1024));
  let v = t.hmax_by_id.(id) in
  if Float.is_nan v then begin
    let v = h_max t handle.Propset.set in
    t.hmax_by_id.(id) <- v;
    v
  end
  else v

(* Suffix-cost harvesting: at exact termination with optimum [cost], every
   set on the recorded best complete path satisfies
   [cost_to_empty set = cost - g(set)] — going through the set is one way
   to complete (so [cost <= g + cost_to_empty]) and the recorded suffix
   achieves exactly [cost - g].  One solve thus fills the [solved] cache
   for the whole chain.  [g_best] may exceed the optimal prefix cost on
   degenerate reopening orders, in which case the harvested value is an
   underestimate — still a sound lower bound, never an overestimate. *)
let harvest t ~(root : Propset.handle) ~cost ~g_best ~parent from =
  match from with
  | None -> ()
  | Some (s0 : Propset.handle) ->
      let rec walk (s : Propset.handle) =
        if Array.length s.Propset.set > 0 && s.Propset.id <> root.Propset.id
        then begin
          (match Itbl.find_opt g_best s.Propset.id with
          | None -> ()
          | Some g ->
              let c = cost -. g in
              (* h_max is consistent under regression, hence admissible
                 against the exact suffix cost at every chain node. *)
              assert (h_max t s.Propset.set <= c +. 1e-6);
              if Float.is_nan (solved t s.Propset.id) then begin
                set_solved t s.Propset.id c;
                t.suffix_harvested <- t.suffix_harvested + 1;
                Telemetry.incr t.harv_ctr 1;
                if not (Float.is_nan (bound t s.Propset.id)) then begin
                  clear_bound t s.Propset.id;
                  t.bound_promoted <- t.bound_promoted + 1;
                  Telemetry.incr t.prom_ctr 1
                end
              end);
          match Itbl.find_opt parent s.Propset.id with
          | Some p -> walk p
          | None -> ()
        end
        else
          match Itbl.find_opt parent s.Propset.id with
          | Some p -> walk p
          | None -> ()
      in
      walk s0

(* One A* regression solve of [root] under [budget] expansions.  [prior]
   is the cached (bound, spent) pair from an earlier exhausted run, folded
   into the root heuristic and the returned bound. *)
let run_query t (root : Propset.handle) ~prior ~budget =
  let pb = t.problem in
  let t0 = Timer.start () in
  (* [Gc.minor_words] reads the live allocation pointer; [quick_stat]'s
     field is only refreshed at collection boundaries in native code. *)
  let gc0_minor = Gc.minor_words () in
  let gc0_major = (Gc.quick_stat ()).Gc.major_collections in
  let sp =
    if Telemetry.enabled t.telemetry then
      Some (Telemetry.begin_span t.telemetry "slrg.query")
    else None
  in
  let expansions = ref 0 in
  let cost =
    let h_root =
      let h = h_max_h t root in
      match prior with Some (b, _) -> Float.max h b | None -> h
    in
    if not (Float.is_finite h_root) then begin
      set_solved t root.Propset.id Float.infinity;
      Float.infinity
    end
    else begin
      let g_best = Itbl.create 64 in
      let parent = Itbl.create 64 in
      let heap = Heap.create () in
      Itbl.replace g_best root.Propset.id 0.;
      Heap.add heap ~prio:h_root (root, 0.);
      t.generated <- t.generated + 1;
      let best_complete = ref Float.infinity in
      (* The g_best key the best complete path descends from; its parent
         chain is harvested on exact termination. *)
      let complete_from = ref None in
      let result = ref None in
      let exact = ref true in
      (* Bound seeding can make the heuristic inconsistent, and after a
         node reopening [g_best] values need not telescope along the
         parent chain any more — the root answer stays exact, but suffix
         harvesting is skipped for that (rare) run. *)
      let reopened = ref false in
      while !result = None do
        match Heap.peek heap with
        | None ->
            result := Some !best_complete
            (* infinity when nothing completed *)
        | Some ((set, g), f) ->
            if !best_complete <= f then result := Some !best_complete
            else if
              !expansions >= budget
              || (!expansions land 63 = 0 && Deadline.expired t.deadline)
            then begin
              (* Budget exhausted (or the request deadline fired — same
                 graceful path): the open minimum is still an admissible
                 bound, but not exact. *)
              exact := false;
              result := Some (Float.min !best_complete f)
            end
            else begin
              ignore (Heap.pop heap);
              let stale =
                match Itbl.find_opt g_best set.Propset.id with
                | Some g' -> g' < g -. 1e-12
                | None -> false
              in
              if not stale then begin
                incr expansions;
                if Array.length set.Propset.set = 0 then begin
                  if g < !best_complete then begin
                    best_complete := g;
                    complete_from := Some set
                  end;
                  result := Some !best_complete
                end
                else
                  Array.iter
                    (fun aid ->
                      let a = pb.actions.(aid) in
                      let set' = Propset.regress_h t.ctx set a in
                      let g' = g +. a.Action.cost_lb in
                      let rest = solved t set'.Propset.id in
                      if not (Float.is_nan rest) then begin
                        if g' +. rest < !best_complete then begin
                          best_complete := g' +. rest;
                          complete_from := Some set
                        end
                      end
                      else
                        let h = h_max_h t set' in
                        if Float.is_finite h then begin
                          (* Solved-subset seeding: a cached partial
                             bound for the successor strengthens its
                             f-value (still admissible), so exhausted
                             earlier queries sharpen later ones instead
                             of being discarded. *)
                          let b = bound t set'.Propset.id in
                          let h = if Float.is_nan b then h else Float.max h b in
                          (* Dominated successors (f no better than a
                             completion already in hand) can never
                             improve the answer; with the harvested
                             bounds folded into h this prunes most of
                             the frontier of a re-query. *)
                          if g' +. h < !best_complete then
                            match Itbl.find_opt g_best set'.Propset.id with
                            | Some g_old when g_old <= g' +. 1e-12 -> ()
                            | existing ->
                                if Option.is_some existing then
                                  reopened := true;
                                Itbl.replace g_best set'.Propset.id g';
                                Itbl.replace parent set'.Propset.id set;
                                t.generated <- t.generated + 1;
                                Heap.add heap ~prio:(g' +. h) (set', g')
                        end)
                    (Supports.candidates_h t.supports set)
              end
            end
      done;
      let cost = Option.get !result in
      if !exact then begin
        if not !reopened then
          harvest t ~root ~cost ~g_best ~parent !complete_from;
        (* Adaptive-A*-style bound harvesting: all queries regress toward
           the same target (the empty set), so cost-to-empty is one shared
           function across queries.  For every set touched by this exact
           solve, [cost - g] lower-bounds its cost-to-empty — a completion
           cheaper than that would contradict the optimality of [cost],
           and any recorded g only overestimates the optimal prefix.
           Folded into later queries' f-values by bound seeding, this is
           what makes correlated RG queries terminate almost immediately. *)
        if Float.is_finite cost && Itbl.length g_best <= harvest_cap then
          Itbl.iter
            (fun sid g ->
              let b = cost -. g in
              if
                b > 0.
                && Float.is_nan (solved t sid)
                && b > h_max_h t (Propset.handle_of_id t.ctx sid)
              then
                let b0 = bound t sid in
                if Float.is_nan b0 then set_bound t sid b 0
                else if b0 < b then set_bound t sid b t.bound_spent.(sid))
            g_best;
        if not (Float.is_nan (bound t root.Propset.id)) then begin
          clear_bound t root.Propset.id;
          t.bound_promoted <- t.bound_promoted + 1;
          Telemetry.incr t.prom_ctr 1
        end;
        set_solved t root.Propset.id cost;
        cost
      end
      else begin
        (* Keep the strongest admissible bound seen for this set and the
           budget this run spent, so the next re-query escalates. *)
        let cost =
          match prior with Some (b, _) -> Float.max b cost | None -> cost
        in
        set_bound t root.Propset.id cost budget;
        cost
      end
    end
  in
  if prior <> None then t.escalation_pool <- t.escalation_pool - !expansions;
  let this_query_ms = Timer.elapsed_ms t0 in
  (match t.m_queries with Some c -> Registry.incr c 1 | None -> ());
  (match t.m_query_ms with
  | Some h -> Registry.observe h this_query_ms
  | None -> ());
  t.query_ms <- t.query_ms +. this_query_ms;
  t.gc_minor_words <- t.gc_minor_words +. (Gc.minor_words () -. gc0_minor);
  t.gc_major_collections <-
    t.gc_major_collections
    + ((Gc.quick_stat ()).Gc.major_collections - gc0_major);
  (match sp with
  | Some sp ->
      ignore
        (Telemetry.end_span t.telemetry sp
           ~attrs:
             [
               ("set", Telemetry.Int (Array.length root.Propset.set));
               ("expansions", Telemetry.Int !expansions);
               ("cost", Telemetry.Float cost);
             ])
  | None -> ());
  cost

let cache_hit t =
  t.cache_hits <- t.cache_hits + 1;
  Telemetry.incr t.hit_ctr 1;
  match t.m_hits with Some c -> Registry.incr c 1 | None -> ()

(* [root] must be a handle of this oracle's {!ctx} (the RG shares the ctx
   and passes its nodes' handles through unchanged; results are memoized
   by the handle's dense id). *)
let query_h t (root : Propset.handle) =
  if Array.length root.Propset.set = 0 then 0.
  else
    let c = solved t root.Propset.id in
    if not (Float.is_nan c) then begin
      cache_hit t;
      c
    end
    else
      let b = bound t root.Propset.id in
      if Float.is_nan b then run_query t root ~prior:None ~budget:t.query_budget
      else
        let spent = t.bound_spent.(root.Propset.id) in
        if spent >= escalation_cap * t.query_budget || t.escalation_pool <= 0
        then begin
          (* Escalation cap or shared pool exhausted: serve the bound
             like a cache entry so pathological sets cannot dominate
             planning time. *)
          cache_hit t;
          b
        end
        else
          run_query t root ~prior:(Some (b, spent))
            ~budget:(max t.query_budget (2 * spent))

(* [root] must be canonical (see {!Propset}); it is interned on entry. *)
let query_set t (root : int array) = query_h t (Propset.intern t.ctx root)
let query t props = query_set t (Propset.canonical t.problem props)
let nodes_generated t = t.generated
let query_ms t = t.query_ms
let gc_minor_words t = t.gc_minor_words
let gc_major_collections t = t.gc_major_collections
let cache_hits t = t.cache_hits
let suffix_harvested t = t.suffix_harvested
let bound_promoted t = t.bound_promoted

let iter_solved t f =
  List.iter
    (fun sid -> f (Propset.handle_of_id t.ctx sid).Propset.set t.solved_val.(sid))
    t.solved_ids

(* ------------------------------------------------------------------ *)
(* Session support: per-request reset and delta invalidation            *)
(* ------------------------------------------------------------------ *)

(* Exact solved entries and h_max values are path-independent facts about
   the problem, so they may be carried across requests; exhausted-query
   bounds are not — they depend on the budget, the escalation pool, and
   the order earlier queries arrived in.  Dropping every bound and
   refilling the escalation pool at each request start is what makes a
   warm re-plan bit-identical to a cold one (provided no root query
   exhausts its budget in the cold run; see {!Session}). *)
let begin_request t ~deadline =
  Array.fill t.bound_val 0 (Array.length t.bound_val) Float.nan;
  Array.fill t.bound_spent 0 (Array.length t.bound_spent) 0;
  t.escalation_pool <- escalation_pool_factor * t.query_budget;
  t.deadline <- deadline

let refresh t (pb : Problem.t) plrg ~dirty =
  t.problem <- pb;
  t.plrg <- plrg;
  t.supports <- Supports.make pb plrg;
  Propset.refresh_ctx t.ctx pb;
  let evicted = ref 0 in
  (* Solved entries over a set with a dirty proposition may regress
     through tainted actions; everything else regresses through actions
     identical in the old and new problems (see {!Supports.taint}) and
     stays exact. *)
  t.solved_ids <-
    List.filter
      (fun sid ->
        let set = (Propset.handle_of_id t.ctx sid).Propset.set in
        if Array.exists dirty set then begin
          t.solved_val.(sid) <- Float.nan;
          incr evicted;
          false
        end
        else true)
      t.solved_ids;
  (* PLRG h_max of a clean set is unchanged (clean propositions keep
     their per-proposition costs); dirty sets must recompute against the
     rebuilt PLRG. *)
  for id = 0 to Array.length t.hmax_by_id - 1 do
    if not (Float.is_nan t.hmax_by_id.(id)) then
      let set = (Propset.handle_of_id t.ctx id).Propset.set in
      if Array.exists dirty set then begin
        t.hmax_by_id.(id) <- Float.nan;
        incr evicted
      end
  done;
  !evicted
