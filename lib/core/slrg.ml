module Heap = Sekitei_util.Heap
module H = Propset.Tbl
module Timer = Sekitei_util.Timer
module Telemetry = Sekitei_telemetry.Telemetry

type t = {
  problem : Problem.t;
  plrg : Plrg.t;
  ctx : Propset.ctx;
  supports_rel : int array array;
      (** per proposition: relevant supporting actions, ascending id *)
  seen : bool array;  (** scratch bitmap over action ids *)
  query_budget : int;
  solved : float H.t;  (** exact set costs *)
  bounds : float H.t;
      (** admissible lower bounds from budget-exhausted queries; cached so
          repeated RG queries for the same pending set cost nothing *)
  mutable generated : int;
  telemetry : Telemetry.t;
  mutable query_ms : float;
      (** cumulative wall time of non-memoized queries (always tracked —
          the planner's phase report needs it even without telemetry) *)
}

let create ?(telemetry = Telemetry.null) ?(query_budget = 500)
    (problem : Problem.t) plrg =
  let supports_rel =
    Array.map
      (fun aids ->
        let arr =
          Array.of_list (List.filter (Plrg.action_relevant plrg) aids)
        in
        Array.sort Int.compare arr;
        arr)
      problem.Problem.supports
  in
  {
    problem;
    plrg;
    ctx = Propset.make_ctx problem;
    supports_rel;
    seen = Array.make (Array.length problem.Problem.actions) false;
    query_budget;
    solved = H.create 256;
    bounds = H.create 256;
    generated = 0;
    telemetry;
    query_ms = 0.;
  }

let h_max t set =
  Array.fold_left (fun acc p -> Float.max acc (Plrg.cost t.plrg p)) 0. set

let candidate_actions t (set : int array) =
  let acc = ref [] in
  let count = ref 0 in
  Array.iter
    (fun p ->
      Array.iter
        (fun aid ->
          if not t.seen.(aid) then begin
            t.seen.(aid) <- true;
            acc := aid :: !acc;
            incr count
          end)
        t.supports_rel.(p))
    set;
  let out = Array.make !count 0 in
  List.iteri (fun i aid -> out.(i) <- aid) !acc;
  List.iter (fun aid -> t.seen.(aid) <- false) !acc;
  Array.sort Int.compare out;
  out

(* [root] must be canonical (the RG passes its nodes' sets through
   unchanged; results are memoized by that same canonical key). *)
let query_set t (root : int array) =
  let pb = t.problem in
  if Array.length root = 0 then 0.
  else
    match H.find_opt t.solved root with
    | Some c ->
        Telemetry.count t.telemetry "slrg.cache_hit" 1;
        c
    | None when H.mem t.bounds root ->
        Telemetry.count t.telemetry "slrg.cache_hit" 1;
        H.find t.bounds root
    | None ->
        let t0 = Timer.start () in
        let sp =
          if Telemetry.enabled t.telemetry then
            Some (Telemetry.begin_span t.telemetry "slrg.query")
          else None
        in
        let expansions = ref 0 in
        let cost =
        let h_root = h_max t root in
        if not (Float.is_finite h_root) then begin
          H.replace t.solved root Float.infinity;
          Float.infinity
        end
        else begin
          let g_best = H.create 64 in
          let heap = Heap.create () in
          H.replace g_best root 0.;
          Heap.add heap ~prio:h_root (root, 0.);
          t.generated <- t.generated + 1;
          let best_complete = ref Float.infinity in
          let result = ref None in
          let exact = ref true in
          while !result = None do
            match Heap.peek heap with
            | None ->
                result := Some !best_complete
                (* infinity when nothing completed *)
            | Some ((set, g), f) ->
                if !best_complete <= f then result := Some !best_complete
                else if !expansions >= t.query_budget then begin
                  (* Budget exhausted: the open minimum is still an
                     admissible bound, but not exact. *)
                  exact := false;
                  result := Some (Float.min !best_complete f)
                end
                else begin
                  ignore (Heap.pop heap);
                  let stale =
                    match H.find_opt g_best set with
                    | Some g' -> g' < g -. 1e-12
                    | None -> false
                  in
                  if not stale then begin
                    incr expansions;
                    if Array.length set = 0 then begin
                      best_complete := Float.min !best_complete g;
                      result := Some !best_complete
                    end
                    else
                      Array.iter
                        (fun aid ->
                          let a = pb.actions.(aid) in
                          let set' = Propset.regress t.ctx set a in
                          let g' = g +. a.Action.cost_lb in
                          match H.find_opt t.solved set' with
                          | Some rest ->
                              best_complete := Float.min !best_complete (g' +. rest)
                          | None -> (
                              let h = h_max t set' in
                              if Float.is_finite h then
                                match H.find_opt g_best set' with
                                | Some g_old when g_old <= g' +. 1e-12 -> ()
                                | _ ->
                                    H.replace g_best set' g';
                                    t.generated <- t.generated + 1;
                                    Heap.add heap ~prio:(g' +. h) (set', g')))
                        (candidate_actions t set)
                  end
                end
          done;
          let cost = Option.get !result in
          if !exact then H.replace t.solved root cost
          else H.replace t.bounds root cost;
          cost
        end
        in
        t.query_ms <- t.query_ms +. Timer.elapsed_ms t0;
        (match sp with
        | Some sp ->
            ignore
              (Telemetry.end_span t.telemetry sp
                 ~attrs:
                   [
                     ("set", Telemetry.Int (Array.length root));
                     ("expansions", Telemetry.Int !expansions);
                     ("cost", Telemetry.Float cost);
                   ])
        | None -> ());
        cost

let query t props = query_set t (Propset.canonical t.problem props)
let nodes_generated t = t.generated
let query_ms t = t.query_ms
