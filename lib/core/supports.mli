(** Relevant-supports tables shared by the SLRG and RG regression searches.

    Both phases expand a pending proposition set by the distinct
    PLRG-relevant actions supporting any of its propositions.  This module
    owns the single filtered, [Int.compare]-sorted per-proposition table
    and the scratch bitmap used for deduplication, so the two phases run
    the identical branching rule. *)

type t

(** [make pb plrg] filters [pb.supports] down to the PLRG-relevant actions,
    sorted ascending per proposition. *)
val make : Problem.t -> Plrg.t -> t

(** [candidates t set] is the ascending array of distinct relevant action
    ids supporting at least one proposition of [set].  Not reentrant (one
    shared scratch bitmap), like the searches that call it. *)
val candidates : t -> int array -> int array

(** [candidates_h t h] is {!candidates} over an interned handle, memoized
    on the handle's dense id (one int-keyed probe per revisit).  All
    handles passed to one [t] must come from a single
    {!Propset.Interner}; the caller must not mutate the returned array.
    Not reentrant, like {!candidates}. *)
val candidates_h : t -> Propset.handle -> int array
