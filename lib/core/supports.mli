(** Relevant-supports tables shared by the SLRG and RG regression searches.

    Both phases expand a pending proposition set by the distinct
    PLRG-relevant actions supporting any of its propositions.  This module
    owns the single filtered, [Int.compare]-sorted per-proposition table
    and the scratch bitmap used for deduplication, so the two phases run
    the identical branching rule. *)

type t

(** [make pb plrg] filters [pb.supports] down to the PLRG-relevant actions,
    sorted ascending per proposition. *)
val make : Problem.t -> Plrg.t -> t

(** [candidates t set] is the ascending array of distinct relevant action
    ids supporting at least one proposition of [set].  Not reentrant (one
    shared scratch bitmap), like the searches that call it. *)
val candidates : t -> int array -> int array

(** [taint pb ~node_touched ~link_touched] computes the invalidation
    cone of a topology delta as a worklist fixpoint over the reverse
    (proposition -> consuming action) index: actions grounded at a
    touched node/link are tainted, their add-closure propositions become
    dirty, and actions with a dirty precondition are tainted in turn.
    Returns [(tainted, dirty)] — bool arrays over action ids and
    proposition ids.  Soundness invariant for cache eviction: a cached
    value over a set with no dirty proposition only ever regresses
    through untainted actions, which are identical in the old and new
    problems.  Callers apply this to both the pre- and post-delta
    problems and take the union (a delta can both remove and create
    grounded actions).  Link ids are stable across mutations, so the
    same [link_touched] predicate serves both problems — a tombstoned
    link's id still names it in the old problem's actions and never
    occurs in the new one. *)
val taint :
  Problem.t ->
  node_touched:(int -> bool) ->
  link_touched:(int -> bool) ->
  bool array * bool array

(** [candidates_h t h] is {!candidates} over an interned handle, memoized
    on the handle's dense id (one int-keyed probe per revisit).  All
    handles passed to one [t] must come from a single
    {!Propset.Interner}; the caller must not mutate the returned array.
    Not reentrant, like {!candidates}. *)
val candidates_h : t -> Propset.handle -> int array
