(** Phase 3: the main regression graph (paper section 3.2.3).

    A* over totally-ordered plan tails, regressing from the goal
    propositions.  Each node carries the tail built so far and the set of
    propositions still to achieve; expanding a node prepends an action that
    supports at least one pending proposition.  Every new tail is replayed
    forward in its optimistic resource map and pruned on failure (early
    detection of resource and QoS violations).  A node whose pending set is
    empty is a candidate solution; it is accepted only when the tail also
    replays successfully from the true initial state.

    The remaining-cost heuristic is the SLRG set cost; path cost is the sum
    of the leveled actions' cost lower bounds, so the first accepted
    solution minimizes the plan's cost lower bound (paper section 4:
    "our algorithm optimizes the minimum cost of the plan").

    The hot path is incremental: each node carries a {!Replay.rstate}
    snapshot of its suffix's optimistic resource map, extended by exactly
    one action per search edge in the [Regression] replay mode, and a
    duplicate table keyed by (canonical pending set, tail action set)
    prunes permutations of already-open nodes — nodes agreeing on both
    components regress the same obligations at the same cost.  Candidate
    solutions (empty pending set) are exempt from duplicate pruning and
    are still validated by a full from-init replay of the tail in
    execution order, with a backtracking re-sequencing fallback
    ({!repair_order}) because that validation is order-sensitive while
    dedup is not.  Re-sequencing is opportunistic: all attempts of one
    search share a step pool and action sets proven unrepairable are
    never retried, so infeasible instances rejecting thousands of
    candidates pay at most the pool. *)

type stats = {
  created : int;  (** RG nodes created *)
  expanded : int;
  open_left : int;  (** nodes left in the A* queue at termination *)
  replay_pruned : int;  (** successor edges discarded by optimistic replay *)
  final_replay_rejected : int;  (** complete tails rejected from the init map *)
  duplicates : int;
      (** successors pruned by the duplicate table: permutations of a
          (pending set, action set) pair already on the open list *)
  order_repaired : int;
      (** candidate tails whose surviving order failed from-init
          validation but were recovered by the backtracking re-sequencer
          {!repair_order} *)
  slrg_deferred : int;
      (** nodes queued with the cheap PLRG bound instead of an SLRG query
          (always [0] with [~defer:false]) *)
  slrg_saved : int;
      (** deferred nodes that terminated still unrefined — oracle queries
          the eager strategy would have paid and this search never ran *)
}

(** One heuristic-quality sample, recorded (under [?profile]) for every
    node on the ancestor chain of the accepted solution: the node's
    pending-set size, its path cost [g], the SLRG heuristic the search
    expanded it under (with [~defer:true] the value refined at pop), and
    the PLRG h_max value of the same pending set.
    Against the solution cost [C*], the realized cost-to-go of the node
    is [C* - g]; admissibility demands [h <= C* - g] for both columns. *)
type hsample = { set_size : int; g : float; h_slrg : float; h_plrg : float }

(** The best-f open node at budget exhaustion: its tail (execution
    order) and the propositions it still had to achieve — the evidence
    behind a {!Sekitei_core.Planner.failure_reason.Search_limit}
    explanation. *)
type frontier = { f_tail : Action.t list; f_pending : int array }

type result =
  | Solution of Action.t list * Replay.metrics * float  (** tail, metrics, cost bound *)
  | Exhausted  (** no resource-feasible plan (the scenario-A verdict) *)
  | Budget_exceeded of {
      expansions : int;
      best_f : float;  (** admissible lower bound on any plan a longer
                           search could still find *)
      frontier : frontier option;
          (** the node whose pop hit the budget (carries [best_f]) *)
    }
  | Deadline_reached of {
      expansions : int;
      best_f : float;
          (** same admissible lower-bound evidence as [Budget_exceeded],
              produced when the request deadline fired first *)
      frontier : frontier option;
    }

(** Re-sequence a candidate tail (an action set in some infeasible order)
    into an order that replays from the true initial state, by depth-first
    backtracking with infeasible-remainder memoization; [max_steps]
    (default 20000) bounds the total [Replay.extend] calls.  Returns the
    feasible order and its deployment metrics, or [None] when no ordering
    of the set replays (or the step budget runs out).  Used by {!search}
    on candidate solutions whose dedup-surviving order fails validation;
    exposed for direct testing against brute-force permutation search. *)
val repair_order :
  ?max_steps:int ->
  Problem.t ->
  Action.t list ->
  (Action.t list * Replay.metrics) option

(** [dedup] (default [true]) toggles the duplicate-detection table —
    exposed so tests can assert that pruning never changes the returned
    plan cost.

    [defer] (default [true]) enables lazy two-stage heuristic evaluation:
    successors are queued under the cheap PLRG h_max bound and the
    expensive SLRG oracle query runs only when a node first reaches the
    top of the open list, re-inserting it if the refined f-value exceeds
    the new frontier minimum.  Because the SLRG heuristic dominates the
    PLRG one and node serial numbers are preserved across re-insertion,
    a node is never expanded before its refined f is proven minimal, so
    the admissibility argument — and with it solvability and the optimal
    cost bound — is unchanged; [created]/[duplicates] differ by design
    (SLRG-infeasible successors are detected at pop instead of at push)
    and the savings are reported in [slrg_deferred]/[slrg_saved].

    The replay is {e not} guaranteed bit-identical, for two reasons the
    oracle shares with {!Session}'s warm-vs-cold contract.  First, a
    budget-exhausted query records a bound that depends on the shared
    escalation pool, which the two modes drain differently.  Second,
    even exact values are path-independent only mathematically: a set
    with several equally-optimal support paths caches the cost of
    whichever query harvested it first, and float addition is not
    associative, so h can differ in the last ulp between query orders —
    enough to swap f-tied frontier nodes, perturb [expanded], and return
    a different equally-cheap optimum.

    [profile], when given, turns on heuristic-quality recording: every
    queued node carries its (set size, g, h) sample chained to its
    ancestors', and on [Solution] the ref receives the accepted node's
    chain, root first.  Per queued node the overhead is one PLRG h_max
    sweep over the pending set and one cons; when absent the search pays
    a single [None] branch per push.

    [telemetry] emits a periodic ["rg"] progress heartbeat (every
    {!Sekitei_telemetry.Telemetry.progress_interval} expansions: open-list
    size, best f, expansions, duplicates), counts search totals
    ([rg.created], [rg.expanded], [rg.replay_pruned], [rg.duplicates],
    [rg.final_replay_rejected], [rg.order_repaired], [rg.slrg_deferred],
    [rg.slrg_saved]), and wraps final candidate validation in
    ["replay"] / ["replay.repair"] sub-spans.

    [deadline] is polled once per expansion (at pop, after heuristic
    refinement); on expiry the search stops with [Deadline_reached]
    carrying the frontier-minimum f as a valid lower bound.

    [metrics] records lifetime search volume into the always-on registry
    once per search: ["rg.searches"] / ["rg.created"] / ["rg.expanded"] /
    ["rg.duplicates"] counters and the ["rg.open_left"] gauge. *)
val search :
  ?max_expansions:int ->
  ?dedup:bool ->
  ?defer:bool ->
  ?profile:hsample list ref ->
  ?telemetry:Sekitei_telemetry.Telemetry.t ->
  ?metrics:Sekitei_telemetry.Registry.t ->
  ?deadline:Sekitei_util.Deadline.t ->
  Problem.t ->
  Plrg.t ->
  Slrg.t ->
  result * stats
