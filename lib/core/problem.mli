(** A compiled CPP instance: the output of {!Compile.compile} and the input
    of the three graph phases. *)

module I = Sekitei_util.Interval
module Topology = Sekitei_network.Topology
module Model = Sekitei_spec.Model

type source = {
  src_iface : int;
  src_node : int;
  src_interval : I.t;  (** initially available value range, e.g. [0,200] *)
  src_secondary : (string * float) list;
      (** initial values of non-primary properties *)
}

type t = {
  topo : Topology.t;
  app : Model.app;
  ifaces : Model.iface array;
  comps : Model.component array;
  iface_levels : I.t array array;  (** per iface: level intervals *)
  iface_tags : Model.tag array;  (** primary-property tag per iface *)
  props : Prop.interner;
  actions : Action.t array;
  supports : int list array;
      (** per proposition id: action ids whose add-closure contains it *)
  init : bool array;  (** proposition id -> holds initially *)
  init_consumed : (int * string * float) list;
      (** node resources consumed by pre-placed components *)
  sources : source list;
  goal_props : int array;
  comp_allowed_node : int option array;
      (** placement restriction, used for synthetic goal-sink components *)
  iface_max : float array;
      (** network-ignorant upper bound on each interface's primary property
          (the paper's "maximum possible utilization"): source capacities
          pushed through component effects to a fixpoint *)
  pruned_actions : int;
      (** leveled actions the compiler proved dead and removed: their
          input level's infimum exceeds the interface's achievable
          maximum, or a precondition became unproducible as a result
          (surfaced as the [analysis.pruned_actions] counter) *)
  ground_actions : Action.t array;
      (** the full grounded action set {e before} dead-action pruning,
          in emission order with pre-prune ids — physically [actions]
          when nothing was pruned.  Only {!Compile.recompile} reads it:
          reuse groups must carry every instance of an untouched site,
          dead ones included, because a delta elsewhere can revive them
          (the fresh compile re-proves deadness from scratch) *)
}

val iface_index : t -> string -> int
val comp_index : t -> string -> int

(** Primary-property name of an interface by index. *)
val primary : t -> int -> string

(** Static capacity of a node resource; 0.0 when the node lacks it. *)
val node_cap : t -> int -> string -> float

(** Static capacity of a link resource; 0.0 when the link lacks it. *)
val link_cap : t -> int -> string -> float

val action : t -> int -> Action.t
val pp_prop : t -> Format.formatter -> int -> unit
val prop_label : t -> int -> string
