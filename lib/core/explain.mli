(** Plan explanations and unsolvability certificates.

    The paper's claim is that the leveled regression search returns
    {e cost-optimal} throttled deployments; this module makes the claim
    inspectable.  For a solved run, {!explain} derives from the final
    plan a per-action account — cost-lower-bound contribution (the
    quantity the A* optimized; the column total is exactly
    [Plan.cost_lb]), realized cost at the operating points, the chosen
    level assignment, and the binding resource constraint of the step
    (node CPU for [place], link bandwidth for [cross]) with its
    remaining slack.  For a failed run, {!unreachable_certificate} and
    {!frontier_certificate} name the evidence: the first goal-relevant
    proposition the PLRG pruned (with its support chain back to a goal),
    or the best-f frontier node of an out-of-budget search with its
    unmet preconditions. *)

module I = Sekitei_util.Interval

(** The binding resource constraint of one step: the capacity pool the
    action draws from, what the step itself consumed, what the whole
    deployment ends up consuming, and the remaining slack
    ([capacity - total_used]). *)
type binding = {
  resource : string;  (** ["cpu"] for placements, ["lbw"] for crossings *)
  location : string;  (** node name, or ["src-dst (kind)"] for a link *)
  capacity : float;
  step_used : float;  (** this action's own consumption *)
  total_used : float;  (** deployment total on this pool *)
  slack : float;
}

type step = {
  index : int;  (** execution position, 0-based *)
  label : string;  (** action label, e.g. ["place(Splitter,n0)"] *)
  cost_lb : float;  (** admissible contribution (cost at level infima) *)
  realized_cost : float;  (** contribution at the operating points *)
  levels : (string * I.t) list;
      (** chosen level assignment: produced interfaces and their
          intervals (consumed ones when the action produces nothing) *)
  binding : binding option;
}

type t = {
  steps : step list;  (** execution order *)
  plan_cost : float;
      (** sum of the [cost_lb] column, accumulated in the same order as
          the search's [g] so it equals [Plan.cost_lb] {e exactly} *)
  realized_cost : float;
}

(** [explain pb plan] replays the plan from the initial state and
    tabulates.  [Error reason] when the plan does not replay (a planner
    bug — validated plans always replay). *)
val explain : Problem.t -> Plan.t -> (t, string) result

(** Render as an aligned ASCII table, one row per action plus a totals
    row. *)
val render : t -> string

(** Why a run failed, with evidence. *)
type certificate =
  | Unreachable_cut of {
      goal : string;  (** the unreachable goal proposition *)
      cut : string;
          (** the first goal-relevant proposition pruned by the PLRG:
              end of the support chain — no supporting action at all,
              or only cyclic support *)
      chain : string list;
          (** support chain from [goal] down to [cut], inclusive *)
    }
  | Search_frontier of {
      best_f : float;  (** admissible bound on any remaining plan *)
      tail : string list;  (** best-f node's action labels *)
      unmet : string list;  (** its pending (unmet) propositions *)
    }

(** Certificate for a {!Plrg}-proven unreachable goal; [None] when every
    goal is reachable. *)
val unreachable_certificate : Problem.t -> Plrg.t -> certificate option

(** Certificate for an out-of-budget search, from the frontier evidence
    {!Rg.search} returns with [Budget_exceeded]. *)
val frontier_certificate : Problem.t -> best_f:float -> Rg.frontier -> certificate

val render_certificate : certificate -> string
